// Recording your own application with TraceRecorder.
//
// The paper's pipeline starts from traces captured by an MPI interposition
// library. TraceRecorder is that capture API: report each rank's
// computation and MPI operations in program order, get a validated task
// graph back, then analyze/bound it like any generated trace.
//
// The "application" here is a 4-rank halo-step code with a naturally
// imbalanced domain: rank 0 owns the boundary (50% more work).
#include <cstdio>

#include "core/windowed.h"
#include "dag/analysis.h"
#include "dag/recorder.h"
#include "machine/power_model.h"
#include "sim/export.h"
#include "runtime/static_policy.h"
#include "sim/replay.h"

using namespace powerlim;

namespace {

machine::TaskWork compute_work(double seconds) {
  machine::TaskWork w;
  w.cpu_seconds = seconds * 0.7;
  w.mem_seconds = seconds * 0.3;
  w.parallel_fraction = 0.96;
  w.mem_parallel_threads = 5;
  return w;
}

}  // namespace

int main() {
  const int ranks = 4;
  const int iterations = 5;
  dag::TraceRecorder rec(ranks);

  for (int iter = 0; iter < iterations; ++iter) {
    for (int r = 0; r < ranks; ++r) {
      rec.pcontrol(r, iter);
      // Rank 0 owns the boundary: 50% heavier stencil.
      rec.compute(r, compute_work(r == 0 ? 3.0 : 2.0));
    }
    // Ring halo exchange: r sends to r+1.
    for (int r = 0; r < ranks; ++r) {
      rec.send(r, /*tag=*/100 * iter + r, 2e6);
    }
    for (int r = 0; r < ranks; ++r) {
      const int left = (r + ranks - 1) % ranks;
      rec.recv(r, 100 * iter + left);
      rec.compute(r, compute_work(0.3));  // unpack + update
    }
    rec.collective("residual_allreduce");
  }
  const dag::TaskGraph trace = rec.finish();
  std::printf("recorded: %zu MPI events, %zu tasks, %zu messages\n",
              trace.num_vertices(), trace.task_edges().size(),
              trace.num_edges() - trace.task_edges().size());

  const dag::TraceAnalysis a = dag::analyze(trace);
  std::printf("imbalance %.1f%%, p2p share %.0f%%\n\n", a.imbalance * 100,
              a.p2p_fraction * 100);

  const machine::PowerModel model{machine::SocketSpec{}};
  const machine::ClusterSpec cluster;
  const double socket_cap = 40.0;
  const auto lp = core::solve_windowed_lp(
      trace, model, cluster, {.power_cap = socket_cap * ranks});
  if (!lp.optimal()) {
    std::printf("infeasible at %.0f W/socket\n", socket_cap);
    return 1;
  }
  std::printf("LP bound @ %.0f W/socket: %.3f s; marginal value of power "
              "%.1f ms/W\n\n",
              socket_cap, lp.makespan, lp.power_price_s_per_watt * 1e3);

  sim::EngineOptions eo;
  eo.cluster = cluster;
  eo.idle_power = model.idle_power();
  runtime::StaticPolicy st(model, socket_cap);
  const sim::SimResult static_run = sim::simulate(trace, st, eo);
  std::printf("Static (uniform caps), %.3f s - light ranks idle ('.') at "
              "every exchange:\n%s\n",
              static_run.makespan,
              sim::ascii_timeline(trace, static_run, 92).c_str());

  sim::ReplayOptions ro;
  ro.engine = eo;
  const sim::SimResult run = sim::replay_schedule(
      trace, lp.schedule, lp.frontiers, ro, &lp.vertex_time);
  std::printf("LP schedule, %.3f s - slack is gone: light ranks run slower "
              "and cheaper,\nand the freed watts keep the heavy boundary "
              "owner (rank 0) on pace:\n%s",
              run.makespan, sim::ascii_timeline(trace, run, 92).c_str());
  return 0;
}
