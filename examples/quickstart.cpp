// Quickstart: compute the power-constrained performance bound of an
// application trace, and validate it by replay.
//
//   1. Generate (or load) a task-graph trace of an MPI+OpenMP app.
//   2. Solve the paper's fixed-vertex-order LP under a job power cap.
//   3. Replay the schedule on the simulated cluster and check that the
//      instantaneous job power never exceeds the cap.
//   4. Compare against the Static baseline (uniform RAPL caps).
//
// Run:  ./quickstart [cap_watts_per_socket]
#include <cstdio>
#include <cstdlib>

#include "apps/benchmarks.h"
#include "core/windowed.h"
#include "machine/power_model.h"
#include "runtime/static_policy.h"
#include "sim/replay.h"

using namespace powerlim;

int main(int argc, char** argv) {
  const double socket_cap = argc > 1 ? std::atof(argv[1]) : 45.0;
  const int ranks = 8;

  // The simulated machine: Xeon E5-2670-like sockets (8 cores, DVFS
  // 1.2-2.6 GHz, RAPL capping) on an InfiniBand-like network.
  const machine::PowerModel model{machine::SocketSpec{}};
  const machine::ClusterSpec cluster;

  // A CoMD-like trace: 10 iterations of force computation + Allreduce.
  const dag::TaskGraph trace =
      apps::make_comd({.ranks = ranks, .iterations = 10});
  std::printf("trace: %d ranks, %zu MPI events, %zu edges\n", ranks,
              trace.num_vertices(), trace.num_edges());

  // Near-optimal bound under the job-level power constraint.
  const double job_cap = socket_cap * ranks;
  const core::WindowedLpResult bound =
      core::solve_windowed_lp(trace, model, cluster, {.power_cap = job_cap});
  if (!bound.optimal()) {
    std::printf("cap %.0f W is below the minimum schedulable power "
                "(%.1f W)\n",
                job_cap, bound.min_feasible_power);
    return 1;
  }
  std::printf("LP bound: %.3f s under a %.0f W job cap (%.0f W/socket)\n",
              bound.makespan, job_cap, socket_cap);

  // Validate by replay (with DVFS-transition overheads charged).
  sim::ReplayOptions replay;
  replay.engine.cluster = cluster;
  replay.engine.idle_power = model.idle_power();
  const sim::SimResult validated = sim::replay_schedule(
      trace, bound.schedule, bound.frontiers, replay, &bound.vertex_time);
  std::printf("replayed:  %.3f s, peak power %.1f W (cap %.0f W) -> %s\n",
              validated.makespan, validated.peak_power, job_cap,
              validated.peak_power <= job_cap + 1e-3 ? "valid" : "VIOLATED");

  // Baseline: uniform static allocation, 8 threads, RAPL firmware only.
  runtime::StaticPolicy baseline(model, socket_cap);
  sim::EngineOptions engine;
  engine.cluster = cluster;
  engine.idle_power = model.idle_power();
  const sim::SimResult st = sim::simulate(trace, baseline, engine);
  std::printf("Static:    %.3f s -> the LP shows %.1f%% potential "
              "improvement\n",
              st.makespan, (st.makespan / validated.makespan - 1.0) * 100.0);
  return 0;
}
