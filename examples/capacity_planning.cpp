// Capacity planning: the operator's question the paper's introduction
// motivates - "my job was allocated N nodes; how much power does it
// actually need?". Sweeps the job power cap and reports, per cap, the
// LP-optimal slowdown vs. unconstrained execution, then locates the knee:
// the smallest budget whose optimal schedule is within a target slowdown.
//
// Run:  ./capacity_planning [bt|comd|lulesh|sp] [slowdown_pct]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/benchmarks.h"
#include "core/windowed.h"
#include "machine/power_model.h"
#include "util/table.h"

using namespace powerlim;

int main(int argc, char** argv) {
  const std::string app = argc > 1 ? argv[1] : "lulesh";
  const double target_pct = argc > 2 ? std::atof(argv[2]) : 5.0;
  const int ranks = 8, iterations = 8;

  const machine::PowerModel model{machine::SocketSpec{}};
  const machine::ClusterSpec cluster;

  dag::TaskGraph trace = [&] {
    if (app == "comd") {
      return apps::make_comd({.ranks = ranks, .iterations = iterations});
    }
    if (app == "bt") {
      return apps::make_bt({.ranks = ranks, .iterations = iterations});
    }
    if (app == "sp") {
      return apps::make_sp({.ranks = ranks, .iterations = iterations});
    }
    return apps::make_lulesh({.ranks = ranks, .iterations = iterations});
  }();

  // Unconstrained reference: effectively infinite power.
  const auto free_run = core::solve_windowed_lp(trace, model, cluster,
                                                {.power_cap = 1e6});
  if (!free_run.optimal()) return 1;

  std::printf("%s on %d sockets: unconstrained optimum %.3f s\n\n",
              app.c_str(), ranks, free_run.makespan);
  util::Table t({"socket_w", "job_w", "lp_time_s", "slowdown"});
  double knee = -1.0;
  for (double socket = 20.0; socket <= 90.0; socket += 2.5) {
    const auto res = core::solve_windowed_lp(
        trace, model, cluster, {.power_cap = socket * ranks});
    if (!res.optimal()) {
      t.add_row({util::Table::num(socket, 1), util::Table::num(socket * ranks, 0),
                 "n/s", "-"});
      continue;
    }
    const double slowdown = (res.makespan / free_run.makespan - 1.0) * 100.0;
    if (knee < 0 && slowdown <= target_pct) knee = socket;
    t.add_row({util::Table::num(socket, 1),
               util::Table::num(socket * ranks, 0),
               util::Table::num(res.makespan, 3),
               util::Table::pct(slowdown / 100.0, 1)});
  }
  std::printf("%s", t.to_string().c_str());
  if (knee > 0) {
    std::printf("\nknee: ~%.1f W/socket (%.0f W job budget) keeps the "
                "*optimally scheduled* job within %.1f%% of unconstrained "
                "speed.\nAnything above that is stranded power an operator "
                "could hand to other jobs.\n",
                knee, knee * ranks, target_pct);
  } else {
    std::printf("\nno cap in the sweep meets the %.1f%% target\n", target_pct);
  }
  return 0;
}
