// Schedule explorer: inspect *what* the LP schedule actually does - per
// rank, per task: which (frequency, threads) configuration each task
// runs, how power moves between ranks over time, and how that differs
// from Static's uniform allocation.
//
// This is the tool you'd use to understand WHY the bound beats a uniform
// allocation on your application (spoiler, per the paper: non-uniform
// power against load imbalance + Pareto-efficient thread counts).
//
// Run:  ./schedule_explorer [bt|comd|lulesh|sp] [cap_watts_per_socket]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "apps/benchmarks.h"
#include "core/windowed.h"
#include "machine/power_model.h"
#include "sim/replay.h"
#include "util/stats.h"
#include "util/table.h"

using namespace powerlim;

int main(int argc, char** argv) {
  const std::string app = argc > 1 ? argv[1] : "bt";
  const double socket_cap = argc > 2 ? std::atof(argv[2]) : 35.0;
  const int ranks = 8, iterations = 6;

  const machine::PowerModel model{machine::SocketSpec{}};
  const machine::ClusterSpec cluster;

  dag::TaskGraph trace = [&] {
    if (app == "comd") {
      return apps::make_comd({.ranks = ranks, .iterations = iterations});
    }
    if (app == "lulesh") {
      return apps::make_lulesh({.ranks = ranks, .iterations = iterations});
    }
    if (app == "sp") {
      return apps::make_sp({.ranks = ranks, .iterations = iterations});
    }
    return apps::make_bt({.ranks = ranks, .iterations = iterations});
  }();

  const double job_cap = socket_cap * ranks;
  const auto lp = core::solve_windowed_lp(trace, model, cluster,
                                          {.power_cap = job_cap});
  if (!lp.optimal()) {
    std::printf("infeasible below %.1f W total\n", lp.min_feasible_power);
    return 1;
  }

  std::printf("%s @ %.0f W/socket: LP makespan %.3f s\n\n", app.c_str(),
              socket_cap, lp.makespan);

  // Per-rank power/configuration summary over the steady iterations.
  util::Table t({"rank", "tasks", "avg_power_w", "avg_threads", "avg_ghz",
                 "share_of_job_power"});
  double total_power_time = 0.0;
  std::vector<double> rank_power_time(ranks, 0.0);
  std::vector<double> rank_busy(ranks, 0.0);
  std::vector<int> rank_tasks(ranks, 0);
  std::vector<double> rank_threads(ranks, 0.0), rank_ghz(ranks, 0.0);
  for (const dag::Edge& e : trace.edges()) {
    if (!e.is_task() || e.iteration < 3) continue;
    const double d = lp.schedule.duration[e.id];
    rank_power_time[e.rank] += lp.schedule.power[e.id] * d;
    rank_busy[e.rank] += d;
    ++rank_tasks[e.rank];
    for (const core::ConfigShare& s : lp.schedule.shares[e.id]) {
      const machine::Config& c = lp.frontiers[e.id][s.config_index];
      rank_threads[e.rank] += s.fraction * c.threads * d;
      rank_ghz[e.rank] += s.fraction * c.ghz * d;
    }
    total_power_time += lp.schedule.power[e.id] * d;
  }
  for (int r = 0; r < ranks; ++r) {
    if (rank_busy[r] <= 0) continue;
    t.add_row({std::to_string(r), std::to_string(rank_tasks[r]),
               util::Table::num(rank_power_time[r] / rank_busy[r], 1),
               util::Table::num(rank_threads[r] / rank_busy[r], 1),
               util::Table::num(rank_ghz[r] / rank_busy[r], 2),
               util::Table::pct(rank_power_time[r] / total_power_time, 1)});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\nUniform static allocation would give every rank %s of the "
              "job power;\nthe LP's deviation from that is its answer to "
              "load imbalance.\n",
              util::Table::pct(1.0 / ranks, 1).c_str());

  // Timeline of the first steady iteration for the heaviest + lightest
  // ranks.
  int heavy = 0, light = 0;
  for (int r = 1; r < ranks; ++r) {
    if (rank_power_time[r] > rank_power_time[heavy]) heavy = r;
    if (rank_power_time[r] < rank_power_time[light]) light = r;
  }
  std::printf("\ntimeline, iteration 3 (heaviest rank %d vs lightest %d):\n",
              heavy, light);
  util::Table tl({"rank", "task", "start_s", "dur_s", "power_w", "config"});
  for (int r : {heavy, light}) {
    for (int eid : trace.rank_chain(r)) {
      const dag::Edge& e = trace.edge(eid);
      if (e.iteration != 3) continue;
      std::string cfg;
      for (const core::ConfigShare& s : lp.schedule.shares[eid]) {
        const machine::Config& c = lp.frontiers[eid][s.config_index];
        if (!cfg.empty()) cfg += " + ";
        cfg += util::Table::num(100 * s.fraction, 0) + "% " +
               util::Table::num(c.ghz, 1) + "GHz/" +
               std::to_string(c.threads) + "t";
      }
      tl.add_row({std::to_string(r), trace.vertex(e.dst).label,
                  util::Table::num(lp.vertex_time[e.src], 3),
                  util::Table::num(lp.schedule.duration[eid], 3),
                  util::Table::num(lp.schedule.power[eid], 1), cfg});
    }
  }
  std::printf("%s", tl.to_string().c_str());
  return 0;
}
