// Building your own trace: the task-graph API end to end.
//
// Models a small 4-rank pipeline: ranks 0..2 each compute and send a
// chunk downstream; rank 3 reduces. Two iterations, then a final
// collective. Shows vertex/edge construction, per-task workload shaping,
// validation, and both the LP bound and the flow ILP (the trace is small
// enough for the exact formulation).
#include <cstdio>

#include "core/flow_ilp.h"
#include "core/lp_formulation.h"
#include "dag/graph.h"
#include "machine/power_model.h"

using namespace powerlim;

namespace {

machine::TaskWork compute(double seconds, double mem_share = 0.2) {
  machine::TaskWork w;
  w.cpu_seconds = seconds * (1.0 - mem_share);
  w.mem_seconds = seconds * mem_share;
  w.parallel_fraction = 0.96;
  w.mem_parallel_threads = 4;
  return w;
}

}  // namespace

int main() {
  const int ranks = 4;
  dag::TaskGraph g(ranks);

  const int init = g.add_vertex(dag::VertexKind::kInit, -1, "Init");
  const int fin = g.add_vertex(dag::VertexKind::kFinalize, -1, "Finalize");

  // Producers 0..2 compute (imbalanced: 2.0s, 1.4s, 0.9s), then send to
  // the reducer; the reducer folds the three chunks in arrival order.
  const double work[3] = {2.0, 1.4, 0.9};
  int reducer_at = init;
  std::vector<int> sends(3);
  for (int r = 0; r < 3; ++r) {
    const int send = g.add_vertex(dag::VertexKind::kSend, r, "send");
    g.add_task(init, send, r, compute(work[r]), 0);
    g.add_task(send, fin, r, compute(0.3), 0);  // post-send bookkeeping
    sends[r] = send;
  }
  for (int r = 0; r < 3; ++r) {
    const int recv = g.add_vertex(dag::VertexKind::kRecv, 3, "recv");
    g.add_task(reducer_at, recv, 3, compute(0.5), 0);  // fold previous chunk
    g.add_message(sends[r], recv, 8e6);
    reducer_at = recv;
  }
  g.add_task(reducer_at, fin, 3, compute(0.8), 0);  // final fold

  g.validate();
  std::printf("custom trace: %zu vertices, %zu edges (%zu tasks)\n",
              g.num_vertices(), g.num_edges(), g.task_edges().size());

  const machine::PowerModel model{machine::SocketSpec{}};
  const machine::ClusterSpec cluster;
  const core::LpFormulation lp(g, model, cluster);
  std::printf("unconstrained optimum: %.3f s; minimum schedulable power "
              "%.1f W\n\n",
              lp.unconstrained_makespan(), lp.min_feasible_power());

  std::printf("%-10s %-12s %-12s\n", "job_cap_w", "fixed_LP_s", "flow_ILP_s");
  for (double cap = 90.0; cap <= 220.0; cap += 20.0) {
    const auto fixed = lp.solve({.power_cap = cap});
    const auto flow = core::solve_flow_ilp(g, model, cluster,
                                           {.power_cap = cap});
    std::printf("%-10.0f %-12.4f %-12.4f\n", cap,
                fixed.optimal() ? fixed.makespan : -1.0,
                flow.optimal() ? flow.makespan : -1.0);
  }
  std::printf("\n(the flow ILP may beat the fixed-order LP slightly: it "
              "reorders events\nand frees task power at completion - "
              "Section 3.4 of the paper)\n");
  return 0;
}
