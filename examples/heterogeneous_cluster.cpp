// Heterogeneous silicon: same SKU, different watts.
//
// Real clusters mix parts whose power efficiency differs by several
// percent (manufacturing variation). Under uniform RAPL caps the hungry
// parts throttle deeper and drag every collective; the paper names this -
// alongside application imbalance - as what Conductor's power
// reallocation exploits. This example quantifies the effect on a
// perfectly balanced workload and shows where the watts go in the
// LP-optimal allocation.
//
// Run:  ./heterogeneous_cluster [spread_pct]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "apps/benchmarks.h"
#include "core/windowed.h"
#include "machine/power_model.h"
#include "runtime/static_policy.h"
#include "sim/engine.h"
#include "util/rng.h"
#include "util/table.h"

using namespace powerlim;

int main(int argc, char** argv) {
  const double spread = (argc > 1 ? std::atof(argv[1]) : 6.0) / 100.0;
  const int ranks = 8;
  const double socket_cap = 38.0;
  const machine::ClusterSpec cluster;

  // Balanced workload: any slowdown differences come from the silicon.
  const dag::TaskGraph trace =
      apps::make_sp({.ranks = ranks, .iterations = 6});

  machine::PowerModel model{machine::SocketSpec{}};
  std::vector<double> efficiency(ranks, 1.0);
  util::Rng rng(2718);
  for (double& e : efficiency) {
    e = rng.clamped_normal(1.0, spread, 0.8, 1.3);
  }
  model.set_rank_efficiency(efficiency);

  sim::EngineOptions eo;
  eo.cluster = cluster;
  eo.idle_power = model.idle_power();

  runtime::StaticPolicy st(model, socket_cap);
  const sim::SimResult static_run = sim::simulate(trace, st, eo);

  const auto lp = core::solve_windowed_lp(
      trace, model, cluster, {.power_cap = socket_cap * ranks});
  if (!lp.optimal()) {
    std::printf("infeasible at %.0f W/socket\n", socket_cap);
    return 1;
  }

  std::printf("balanced SP on %d sockets with %.0f%% efficiency spread, "
              "%.0f W/socket:\n",
              ranks, spread * 100, socket_cap);
  std::printf("  Static (uniform caps): %.3f s\n", static_run.makespan);
  std::printf("  LP (non-uniform):      %.3f s  (%.1f%% faster)\n\n",
              lp.makespan,
              (static_run.makespan / lp.makespan - 1.0) * 100.0);

  // Where do the watts go? Average LP power per rank vs its efficiency.
  util::Table t({"rank", "efficiency", "static_ghz", "lp_avg_power_w"});
  std::vector<double> watt_time(ranks, 0.0), busy(ranks, 0.0);
  for (const dag::Edge& e : trace.edges()) {
    if (!e.is_task() || e.iteration < 2) continue;
    watt_time[e.rank] += lp.schedule.power[e.id] * lp.schedule.duration[e.id];
    busy[e.rank] += lp.schedule.duration[e.id];
  }
  for (int r = 0; r < ranks; ++r) {
    // Static's frequency on this part for a main solve task.
    double static_ghz = 0;
    for (const dag::Edge& e : trace.edges()) {
      if (e.is_task() && e.rank == r && e.iteration == 2 &&
          static_run.tasks[e.id].duration() > 0.5) {
        static_ghz = static_run.tasks[e.id].ghz;
      }
    }
    t.add_row({std::to_string(r), util::Table::num(efficiency[r], 3),
               util::Table::num(static_ghz, 2),
               util::Table::num(watt_time[r] / busy[r], 1)});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\nhungrier parts (efficiency > 1) run slower under Static's "
              "uniform cap;\nthe LP hands them extra watts so every rank "
              "reaches the collective together.\n");
  return 0;
}
