// Discrete-event execution engine.
//
// Replaces wall-clock measurement on the paper's cluster: executes a task
// graph under a *policy* that decides, at each task start, which
// configuration to run (duration, power). The engine handles MPI
// semantics - collectives fire when the last participant arrives, messages
// add wire latency, ranks block (slack) until their next vertex fires -
// and produces a full per-task record plus the job's instantaneous power
// trace, which is how LP/ILP schedules are validated against the power
// constraint (paper Section 6.1) and how Static/Conductor are measured.
//
// Events are processed in wall-clock order (a priority queue of edge
// completions), so online policies like Conductor observe exactly the
// information they would at run time: nothing about the future.
#pragma once

#include <memory>
#include <vector>

#include "dag/graph.h"
#include "machine/power_model.h"

namespace powerlim::sim {

/// A policy's answer to "how should this task run?".
struct Decision {
  /// Execution seconds (excluding switch overhead).
  double duration = 0.0;
  /// Average socket power during execution, watts.
  double power = 0.0;
  /// Representative frequency (share-weighted for mixtures).
  double ghz = 0.0;
  /// Representative thread count; fractional for mixtures.
  double threads = 0.0;
  /// Seconds charged before execution (DVFS transition and similar).
  double switch_overhead = 0.0;
};

/// Record of one executed task edge.
struct TaskRecord {
  int edge_id = -1;
  int rank = -1;
  int iteration = -1;
  double start = 0.0;  ///< includes switch overhead at the front
  double end = 0.0;    ///< start + switch_overhead + duration
  double power = 0.0;
  double ghz = 0.0;
  double threads = 0.0;
  double switch_overhead = 0.0;

  double duration() const { return end - start; }
};

/// How much power a rank draws while blocked in MPI after a task
/// completes (its slack).
enum class SlackPower {
  /// Slack draws the preceding task's power - the paper's LP assumption
  /// (Section 3.3), and realistic for busy-wait MPI progress loops.
  kTaskPower,
  /// Slack draws the socket's idle power.
  kIdle,
};

class Policy {
 public:
  virtual ~Policy() = default;

  /// Called when `task` becomes ready on its rank at time `now`. Must
  /// return the configuration decision.
  virtual Decision choose(const dag::Edge& task, double now) = 0;

  /// Called when a task completes; policies use this for profiling.
  virtual void on_task_complete(const dag::Edge& task,
                                const TaskRecord& record) {
    (void)task;
    (void)record;
  }

  /// Called when an iteration boundary (MPI_Pcontrol at a collective)
  /// fires at time `now`; returns extra seconds to charge every rank
  /// (e.g. Conductor's 566 us power-reallocation step).
  virtual double on_pcontrol(int next_iteration, double now) {
    (void)next_iteration;
    (void)now;
    return 0.0;
  }
};

/// One step of the job's instantaneous power trace; power is constant on
/// [time, next.time).
struct PowerSample {
  double time = 0.0;
  double watts = 0.0;
};

struct SimResult {
  double makespan = 0.0;
  /// The slack-power policy and idle level the run used (recorded so
  /// post-hoc per-rank reconstructions match the job trace exactly).
  SlackPower slack_power_used = SlackPower::kTaskPower;
  double idle_power_used = 0.0;
  std::vector<TaskRecord> tasks;     ///< indexed by edge id (messages: empty)
  std::vector<double> vertex_time;   ///< firing time per vertex
  std::vector<PowerSample> power_trace;
  double peak_power = 0.0;
  double energy_joules = 0.0;
  double average_power = 0.0;

  /// Peak power minus `cap` (clamped at 0): how badly the job cap was
  /// violated, if at all.
  double cap_violation(double cap) const {
    return peak_power > cap ? peak_power - cap : 0.0;
  }

  /// Total time the job spent above `cap + tol`. DVFS-transition
  /// overheads skew replayed task boundaries by ~145 us, producing
  /// transient overlaps at tied events; RAPL enforces *average* power over
  /// millisecond windows, so transients shorter than that are within spec.
  double violation_seconds(double cap, double tol = 1e-6) const {
    double total = 0.0;
    for (std::size_t i = 0; i + 1 < power_trace.size(); ++i) {
      if (power_trace[i].watts > cap + tol) {
        total += power_trace[i + 1].time - power_trace[i].time;
      }
    }
    if (!power_trace.empty() && power_trace.back().watts > cap + tol) {
      total += makespan - power_trace.back().time;
    }
    return total;
  }
};

struct EngineOptions {
  SlackPower slack_power = SlackPower::kTaskPower;
  /// Used for message wire times.
  machine::ClusterSpec cluster;
  /// Socket idle power (for SlackPower::kIdle and pre-first-task time).
  double idle_power = 0.0;
  /// Optional per-vertex earliest firing times (size == num_vertices()).
  /// Used by paced schedule replay: an unpaced ASAP replay can fire
  /// vertices *earlier* than the LP's fixed event order assumed, shifting
  /// task overlaps and spiking power past the cap; holding each vertex to
  /// its scheduled time applies the schedule as prescribed.
  const std::vector<double>* vertex_floor = nullptr;
};

/// Runs the graph to completion under the policy. The graph must
/// validate(). Policies are invoked in wall-clock order.
SimResult simulate(const dag::TaskGraph& graph, Policy& policy,
                   const EngineOptions& options);

}  // namespace powerlim::sim
