// Schedule replay (paper Section 6.1, "Validation").
//
// Replays an LP- or ILP-derived schedule on the simulated cluster: as each
// MPI call is reached, the configuration prescribed for the next task is
// applied, charging the measured DVFS-transition overhead (145 us median)
// - but only when the upcoming task is long enough to justify a switch
// (1 ms threshold), exactly the mechanism the paper describes. The result
// lets callers verify that the schedule is realizable and that the job's
// instantaneous power stays under the constraint.
#pragma once

#include <vector>

#include "core/schedule.h"
#include "dag/graph.h"
#include "machine/machine.h"
#include "sim/engine.h"

namespace powerlim::sim {

struct ReplayOptions {
  /// Charge DVFS-transition overhead on configuration changes.
  bool charge_dvfs_overhead = true;
  double dvfs_overhead_s = machine::Overheads::kDvfsTransition;
  /// Only switch configuration before tasks at least this long.
  double switch_threshold_s = machine::Overheads::kSwitchThresholdSeconds;
  EngineOptions engine;
};

/// Replays `schedule` (fractional mixtures allowed: they incur one extra
/// mid-task transition per extra share) and returns the full simulation
/// result including the power trace.
///
/// When `vertex_times` is provided (the LP's v_j), the replay is *paced*:
/// each MPI call is held until its scheduled time, which is what keeps the
/// job under the cap on traces with cross-rank point-to-point ordering
/// (see EngineOptions::vertex_floor).
SimResult replay_schedule(
    const dag::TaskGraph& graph, const core::TaskSchedule& schedule,
    const std::vector<std::vector<machine::Config>>& frontiers,
    const ReplayOptions& options = {},
    const std::vector<double>* vertex_times = nullptr);

}  // namespace powerlim::sim
