// Schedule replay (paper Section 6.1, "Validation").
//
// Replays an LP- or ILP-derived schedule on the simulated cluster: as each
// MPI call is reached, the configuration prescribed for the next task is
// applied, charging the measured DVFS-transition overhead (145 us median)
// - but only when the upcoming task is long enough to justify a switch
// (1 ms threshold), exactly the mechanism the paper describes. The result
// lets callers verify that the schedule is realizable and that the job's
// instantaneous power stays under the constraint.
#pragma once

#include <vector>

#include "core/schedule.h"
#include "dag/graph.h"
#include "machine/machine.h"
#include "sim/engine.h"

namespace powerlim::sim {

struct ReplayOptions {
  /// Charge DVFS-transition overhead on configuration changes.
  bool charge_dvfs_overhead = true;
  double dvfs_overhead_s = machine::Overheads::kDvfsTransition;
  /// Only switch configuration before tasks at least this long.
  double switch_threshold_s = machine::Overheads::kSwitchThresholdSeconds;
  EngineOptions engine;
};

/// Replays `schedule` (fractional mixtures allowed: they incur one extra
/// mid-task transition per extra share) and returns the full simulation
/// result including the power trace.
///
/// When `vertex_times` is provided (the LP's v_j), the replay is *paced*:
/// each MPI call is held until its scheduled time, which is what keeps the
/// job under the cap on traces with cross-rank point-to-point ordering
/// (see EngineOptions::vertex_floor).
SimResult replay_schedule(
    const dag::TaskGraph& graph, const core::TaskSchedule& schedule,
    const std::vector<std::vector<machine::Config>>& frontiers,
    const ReplayOptions& options = {},
    const std::vector<double>* vertex_times = nullptr);

struct CapCheckOptions {
  /// Slack above the cap still considered compliant, watts.
  double tolerance_watts = 1e-3;
  /// RAPL control window for the max-windowed-average metric; <= 0 checks
  /// the instantaneous peak instead.
  double rapl_window_s = 0.01;
};

/// Post-replay cap-compliance verdict: the structured answer to "did the
/// replayed schedule actually stay under the power bound?". `ok` is the
/// RAPL-sense test (max windowed average vs. cap + tolerance); peak and
/// violation fields quantify any excursion for reports.
struct CapCheck {
  bool ok = false;
  double cap_watts = 0.0;
  double peak_power = 0.0;
  /// Max average power over the RAPL control window - the enforced metric.
  double max_windowed_power = 0.0;
  /// max_windowed_power - cap, clamped at 0.
  double violation_watts = 0.0;
  /// Total time spent above cap + tolerance (instantaneous).
  double violation_seconds = 0.0;
};

/// Checks a replayed (or simulated) run against a job-level power cap.
/// Never throws: an over-cap run returns ok == false with the violation
/// quantified, which robust::SolveDriver maps to kReplayCapViolation
/// instead of silently returning the trace.
CapCheck check_cap(const SimResult& result, double cap_watts,
                   const CapCheckOptions& options = {});

}  // namespace powerlim::sim
