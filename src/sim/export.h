// Result export: CSV for plotting, ASCII timeline for terminals.
//
// The paper's Figure 2(b) draws an execution timeline - tasks, slack, and
// messages per rank. ascii_timeline() renders the same view from a
// SimResult; the CSV exporters feed external plotting of the Gantt chart
// and the instantaneous power trace (Figures 3 and 12 style).
#pragma once

#include <string>

#include "dag/graph.h"
#include "sim/engine.h"

namespace powerlim::sim {

/// One row per executed task: edge, rank, iteration, label, start, end,
/// slack_end, power_w, ghz, threads, switch_overhead_s.
std::string gantt_csv(const dag::TaskGraph& graph, const SimResult& result);

/// One row per step of the instantaneous job power trace: time_s, watts.
std::string power_trace_csv(const SimResult& result);

/// Long-format per-rank power trace: time_s, rank, watts. Each rank's
/// series is a step function over its tasks and slack (using the same
/// slack-power policy the run used), suitable for stacked plots of how
/// the LP moves watts between ranks over time (the paper's Figure 3
/// mechanics).
std::string rank_power_csv(const dag::TaskGraph& graph,
                           const SimResult& result);

/// Terminal rendering: one lane per rank over [0, makespan], '#' while a
/// task executes, '.' while the rank sits in MPI slack, '|' at iteration
/// boundaries. `width` is the number of character columns.
std::string ascii_timeline(const dag::TaskGraph& graph,
                           const SimResult& result, int width = 80);

}  // namespace powerlim::sim
