#include "sim/power_window.h"

#include <algorithm>
#include <cmath>

namespace powerlim::sim {

double max_windowed_power(const SimResult& result, double window_seconds) {
  if (result.power_trace.empty()) return 0.0;
  // Non-positive and non-finite windows degrade to the instantaneous
  // peak: the averaging metric is undefined without a positive window.
  if (!(window_seconds > 0.0) || !std::isfinite(window_seconds)) {
    return result.peak_power;
  }

  // Prefix integral of the step function at each breakpoint.
  const auto& trace = result.power_trace;
  const std::size_t n = trace.size();
  std::vector<double> time(n + 1);
  std::vector<double> integral(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) time[i] = trace[i].time;
  time[n] = std::max(result.makespan, trace.back().time);
  // A zero-length trace (every breakpoint at one instant) carries no
  // energy; the windowed average would report 0 W while the job still
  // spiked. Treat it like the instantaneous metric.
  if (time[n] <= time[0]) return result.peak_power;
  for (std::size_t i = 0; i < n; ++i) {
    integral[i + 1] = integral[i] + trace[i].watts * (time[i + 1] - time[i]);
  }
  auto energy_until = [&](double t) {
    if (t <= time[0]) return 0.0;
    if (t >= time[n]) return integral[n];
    const auto it = std::upper_bound(time.begin(), time.end(), t);
    const std::size_t idx = static_cast<std::size_t>(it - time.begin()) - 1;
    return integral[idx] + trace[std::min(idx, n - 1)].watts *
                               (t - time[idx]);
  };

  // The maximum of a sliding-window average of a step function is attained
  // with the window's start (or end) at a breakpoint.
  double best = 0.0;
  for (std::size_t i = 0; i <= n; ++i) {
    for (double start : {time[i], time[i] - window_seconds}) {
      const double e =
          energy_until(start + window_seconds) - energy_until(start);
      best = std::max(best, e / window_seconds);
    }
  }
  return best;
}

}  // namespace powerlim::sim
