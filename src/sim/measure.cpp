#include "sim/measure.h"

#include <algorithm>

namespace powerlim::sim {

double iteration_start(const dag::TaskGraph& graph, const SimResult& result,
                       int from_iteration) {
  double start = -1.0;
  for (const dag::Edge& e : graph.edges()) {
    if (!e.is_task() || e.iteration < from_iteration) continue;
    const double s = result.tasks[e.id].start;
    start = start < 0.0 ? s : std::min(start, s);
  }
  return std::max(start, 0.0);
}

double steady_window_seconds(const dag::TaskGraph& graph,
                             const SimResult& result, int from_iteration) {
  return result.makespan - iteration_start(graph, result, from_iteration);
}

double steady_window_seconds(const dag::TaskGraph& graph,
                             const std::vector<double>& vertex_time,
                             double makespan, int from_iteration) {
  double start = -1.0;
  for (const dag::Edge& e : graph.edges()) {
    if (!e.is_task() || e.iteration < from_iteration) continue;
    const double s = vertex_time[e.src];
    start = start < 0.0 ? s : std::min(start, s);
  }
  return makespan - std::max(start, 0.0);
}

}  // namespace powerlim::sim
