// Measurement-window helpers.
//
// The paper discards the first three iterations of every run (Conductor's
// configuration-exploration phase, Section 5.3) and reports steady-state
// times. These helpers compute "time from the start of iteration K to job
// completion" for both simulated runs and raw LP schedules.
#pragma once

#include "dag/graph.h"
#include "sim/engine.h"

namespace powerlim::sim {

/// Start of iteration `from_iteration` in a simulated run: the earliest
/// start among its tasks (== the firing time of the boundary collective).
/// Returns 0 when the graph has no such iteration.
double iteration_start(const dag::TaskGraph& graph, const SimResult& result,
                       int from_iteration);

/// Steady-state window: makespan minus iteration_start.
double steady_window_seconds(const dag::TaskGraph& graph,
                             const SimResult& result, int from_iteration);

/// Same, for a schedule that only has vertex times (an LP solution that
/// was not replayed).
double steady_window_seconds(const dag::TaskGraph& graph,
                             const std::vector<double>& vertex_time,
                             double makespan, int from_iteration);

}  // namespace powerlim::sim
