#include "sim/engine.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

namespace powerlim::sim {

namespace {

struct Completion {
  double time;
  long serial;  // tie-break for determinism
  int edge_id;

  bool operator>(const Completion& other) const {
    if (time != other.time) return time > other.time;
    return serial > other.serial;
  }
};

}  // namespace

SimResult simulate(const dag::TaskGraph& graph, Policy& policy,
                   const EngineOptions& options) {
  graph.validate();
  SimResult out;
  out.slack_power_used = options.slack_power;
  out.idle_power_used = options.idle_power;
  out.vertex_time.assign(graph.num_vertices(), 0.0);
  out.tasks.assign(graph.num_edges(), TaskRecord{});

  std::vector<int> pending_in(graph.num_vertices(), 0);
  std::vector<double> last_arrival(graph.num_vertices(), 0.0);
  for (const dag::Edge& e : graph.edges()) ++pending_in[e.dst];

  std::priority_queue<Completion, std::vector<Completion>,
                      std::greater<Completion>>
      queue;
  long serial = 0;
  int current_window = -1;

  // Fires vertex `v` at time `t`: handles the Pcontrol hook and launches
  // all outgoing edges.
  auto fire = [&](int v, double t) {
    if (options.vertex_floor != nullptr &&
        v < static_cast<int>(options.vertex_floor->size())) {
      t = std::max(t, (*options.vertex_floor)[v]);
    }
    const dag::Vertex& vertex = graph.vertex(v);
    if (vertex.kind == dag::VertexKind::kCollective ||
        vertex.kind == dag::VertexKind::kPcontrol) {
      int next_iter = -1;
      for (int eid : vertex.out_edges) {
        const dag::Edge& e = graph.edge(eid);
        if (e.is_task() && e.iteration >= 0) {
          next_iter = next_iter < 0 ? e.iteration
                                    : std::min(next_iter, e.iteration);
        }
      }
      if (next_iter > current_window) {
        const double delay = policy.on_pcontrol(next_iter, t);
        if (!(delay >= 0.0)) {
          throw std::runtime_error(
              "simulate: policy returned negative Pcontrol delay");
        }
        t += delay;
        current_window = next_iter;
      }
    }
    out.vertex_time[v] = t;
    for (int eid : vertex.out_edges) {
      const dag::Edge& e = graph.edge(eid);
      if (e.is_task()) {
        const Decision d = policy.choose(e, t);
        if (!(d.duration >= 0.0) || !(d.power >= 0.0)) {
          throw std::runtime_error("simulate: policy returned bad decision");
        }
        TaskRecord& rec = out.tasks[eid];
        rec.edge_id = eid;
        rec.rank = e.rank;
        rec.iteration = e.iteration;
        rec.start = t;
        rec.end = t + d.switch_overhead + d.duration;
        rec.power = d.power;
        rec.ghz = d.ghz;
        rec.threads = d.threads;
        rec.switch_overhead = d.switch_overhead;
        queue.push({rec.end, serial++, eid});
      } else {
        queue.push({t + options.cluster.message_seconds(e.bytes), serial++,
                    eid});
      }
    }
  };

  fire(graph.init_vertex(), 0.0);

  while (!queue.empty()) {
    const Completion c = queue.top();
    queue.pop();
    const dag::Edge& e = graph.edge(c.edge_id);
    if (e.is_task()) {
      policy.on_task_complete(e, out.tasks[c.edge_id]);
    }
    last_arrival[e.dst] = std::max(last_arrival[e.dst], c.time);
    if (--pending_in[e.dst] == 0) {
      fire(e.dst, last_arrival[e.dst]);
    }
  }
  out.makespan = out.vertex_time[graph.finalize_vertex()];

  // ---- instantaneous power trace --------------------------------------------
  struct Delta {
    double time;
    double watts;
  };
  std::vector<Delta> deltas;
  deltas.reserve(graph.num_edges() * 4);
  for (const dag::Edge& e : graph.edges()) {
    if (!e.is_task()) continue;
    const TaskRecord& rec = out.tasks[e.id];
    if (rec.end > rec.start) {
      deltas.push_back({rec.start, rec.power});
      deltas.push_back({rec.end, -rec.power});
    }
    const double slack_end = out.vertex_time[e.dst];
    if (slack_end > rec.end + 1e-15) {
      const double w = options.slack_power == SlackPower::kTaskPower
                           ? rec.power
                           : options.idle_power;
      if (w > 0.0) {
        deltas.push_back({rec.end, w});
        deltas.push_back({slack_end, -w});
      }
    }
  }
  std::sort(deltas.begin(), deltas.end(),
            [](const Delta& a, const Delta& b) { return a.time < b.time; });
  double level = 0.0;
  double energy = 0.0;
  double prev_time = 0.0;
  for (std::size_t i = 0; i < deltas.size();) {
    const double t = deltas[i].time;
    energy += level * (t - prev_time);
    while (i < deltas.size() && deltas[i].time <= t + 1e-12) {
      level += deltas[i].watts;
      ++i;
    }
    if (level < 0.0 && level > -1e-9) level = 0.0;
    out.power_trace.push_back({t, level});
    out.peak_power = std::max(out.peak_power, level);
    prev_time = t;
  }
  out.energy_joules = energy;
  out.average_power = out.makespan > 0.0 ? energy / out.makespan : 0.0;
  return out;
}

}  // namespace powerlim::sim
