#include "sim/replay.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/power_window.h"

namespace powerlim::sim {

namespace {

/// Policy that follows a precomputed TaskSchedule verbatim, tracking each
/// rank's current configuration to decide when a DVFS transition must be
/// charged.
class FixedSchedulePolicy final : public Policy {
 public:
  FixedSchedulePolicy(const dag::TaskGraph& graph,
                      const core::TaskSchedule& schedule,
                      const std::vector<std::vector<machine::Config>>& frontiers,
                      const ReplayOptions& options)
      : schedule_(&schedule),
        frontiers_(&frontiers),
        options_(&options),
        current_ghz_(graph.num_ranks(), -1.0),
        current_threads_(graph.num_ranks(), -1.0) {
    if (schedule.num_edges() != graph.num_edges()) {
      throw std::invalid_argument("replay: schedule size mismatch");
    }
  }

  Decision choose(const dag::Edge& task, double now) override {
    (void)now;
    const auto& shares = schedule_->shares[task.id];
    if (shares.empty()) {
      throw std::runtime_error("replay: task without configuration");
    }
    Decision d;
    d.duration = schedule_->duration[task.id];
    d.power = schedule_->power[task.id];
    for (const core::ConfigShare& s : shares) {
      const machine::Config& c = (*frontiers_)[task.id].at(s.config_index);
      d.ghz += s.fraction * c.ghz;
      d.threads += s.fraction * c.threads;
    }
    if (options_->charge_dvfs_overhead &&
        d.duration >= options_->switch_threshold_s) {
      const bool differs =
          std::abs(d.ghz - current_ghz_[task.rank]) > 1e-9 ||
          std::abs(d.threads - current_threads_[task.rank]) > 1e-9;
      if (differs) d.switch_overhead += options_->dvfs_overhead_s;
      // Mid-task transitions realize a fractional mixture (Section 3.2's
      // continuous case): one extra transition per extra share.
      if (shares.size() > 1) {
        d.switch_overhead +=
            options_->dvfs_overhead_s * static_cast<double>(shares.size() - 1);
      }
    }
    current_ghz_[task.rank] = d.ghz;
    current_threads_[task.rank] = d.threads;
    return d;
  }

 private:
  const core::TaskSchedule* schedule_;
  const std::vector<std::vector<machine::Config>>* frontiers_;
  const ReplayOptions* options_;
  std::vector<double> current_ghz_;
  std::vector<double> current_threads_;
};

}  // namespace

SimResult replay_schedule(
    const dag::TaskGraph& graph, const core::TaskSchedule& schedule,
    const std::vector<std::vector<machine::Config>>& frontiers,
    const ReplayOptions& options, const std::vector<double>* vertex_times) {
  FixedSchedulePolicy policy(graph, schedule, frontiers, options);
  EngineOptions engine = options.engine;
  engine.vertex_floor = vertex_times;
  return simulate(graph, policy, engine);
}

CapCheck check_cap(const SimResult& result, double cap_watts,
                   const CapCheckOptions& options) {
  CapCheck check;
  check.cap_watts = cap_watts;
  check.peak_power = result.peak_power;
  check.max_windowed_power =
      options.rapl_window_s > 0.0
          ? max_windowed_power(result, options.rapl_window_s)
          : result.peak_power;
  check.violation_watts =
      std::max(0.0, check.max_windowed_power - cap_watts);
  check.violation_seconds =
      result.violation_seconds(cap_watts, options.tolerance_watts);
  check.ok = check.max_windowed_power <= cap_watts + options.tolerance_watts;
  return check;
}

}  // namespace powerlim::sim
