// Sliding-window power analysis.
//
// RAPL does not clamp instantaneous power; it holds the *average* over a
// control window (on Sandy Bridge-class parts, configurable around
// ~1-50 ms). A replayed schedule with a microsecond transient above the
// cap is therefore still compliant in the sense the hardware enforces.
// This module computes the maximum windowed average of a SimResult's
// power trace, which is the honest compliance metric for validation.
#pragma once

#include <vector>

#include "sim/engine.h"

namespace powerlim::sim {

/// Maximum over t of the mean power on [t, t + window); the trace is
/// treated as 0 W outside [0, makespan]. For window <= 0 returns the
/// instantaneous peak.
double max_windowed_power(const SimResult& result, double window_seconds);

/// Convenience: true when the job respects `cap` in the RAPL sense for
/// the given control window.
inline bool rapl_compliant(const SimResult& result, double cap,
                           double window_seconds = 0.01,
                           double tol = 1e-6) {
  return max_windowed_power(result, window_seconds) <= cap + tol;
}

}  // namespace powerlim::sim
