#include "sim/export.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace powerlim::sim {

std::string gantt_csv(const dag::TaskGraph& graph, const SimResult& result) {
  if (result.tasks.size() != graph.num_edges()) {
    throw std::invalid_argument("gantt_csv: result does not match graph");
  }
  std::ostringstream out;
  out.precision(9);
  out << "edge,rank,iteration,label,start_s,end_s,slack_end_s,power_w,ghz,"
         "threads,switch_overhead_s\n";
  for (const dag::Edge& e : graph.edges()) {
    if (!e.is_task()) continue;
    const TaskRecord& t = result.tasks[e.id];
    out << e.id << ',' << e.rank << ',' << e.iteration << ','
        << graph.vertex(e.dst).label << ',' << t.start << ',' << t.end << ','
        << result.vertex_time[e.dst] << ',' << t.power << ',' << t.ghz << ','
        << t.threads << ',' << t.switch_overhead << '\n';
  }
  return out.str();
}

std::string power_trace_csv(const SimResult& result) {
  std::ostringstream out;
  out.precision(9);
  out << "time_s,watts\n";
  for (const PowerSample& s : result.power_trace) {
    out << s.time << ',' << s.watts << '\n';
  }
  return out.str();
}

std::string rank_power_csv(const dag::TaskGraph& graph,
                           const SimResult& result) {
  if (result.tasks.size() != graph.num_edges()) {
    throw std::invalid_argument("rank_power_csv: result does not match graph");
  }
  std::ostringstream out;
  out.precision(9);
  out << "time_s,rank,watts\n";
  for (int r = 0; r < graph.num_ranks(); ++r) {
    // Each rank's chain yields a contiguous sequence of (task, slack)
    // intervals; emit the step changes.
    for (int eid : graph.rank_chain(r)) {
      const TaskRecord& t = result.tasks[eid];
      out << t.start << ',' << r << ',' << t.power << '\n';
      const double slack_end = result.vertex_time[graph.edge(eid).dst];
      if (slack_end > t.end + 1e-12) {
        const double w = result.slack_power_used == SlackPower::kTaskPower
                             ? t.power
                             : result.idle_power_used;
        out << t.end << ',' << r << ',' << w << '\n';
      }
    }
    out << result.makespan << ',' << r << ',' << 0.0 << '\n';
  }
  return out.str();
}

std::string ascii_timeline(const dag::TaskGraph& graph,
                           const SimResult& result, int width) {
  if (width < 10) throw std::invalid_argument("ascii_timeline: width < 10");
  if (result.makespan <= 0.0) return "(empty schedule)\n";
  const double scale = width / result.makespan;
  auto col = [&](double t) {
    return std::min(width - 1,
                    std::max(0, static_cast<int>(std::floor(t * scale))));
  };

  std::vector<std::string> lane(graph.num_ranks(),
                                std::string(width, ' '));
  for (const dag::Edge& e : graph.edges()) {
    if (!e.is_task()) continue;
    const TaskRecord& t = result.tasks[e.id];
    for (int c = col(t.start); c <= col(std::max(t.start, t.end - 1e-12));
         ++c) {
      lane[e.rank][c] = '#';
    }
    const double slack_end = result.vertex_time[e.dst];
    if (slack_end > t.end + 1e-12) {
      for (int c = col(t.end); c <= col(slack_end - 1e-12); ++c) {
        if (lane[e.rank][c] == ' ') lane[e.rank][c] = '.';
      }
    }
  }
  // Iteration boundaries: collective vertices with outgoing tasks of a new
  // iteration.
  std::vector<int> boundaries;
  int last_iter = 0;
  for (const dag::Vertex& v : graph.vertices()) {
    if (v.kind != dag::VertexKind::kCollective) continue;
    for (int eid : v.out_edges) {
      const dag::Edge& e = graph.edge(eid);
      if (e.is_task() && e.iteration > last_iter) {
        boundaries.push_back(col(result.vertex_time[v.id]));
        last_iter = e.iteration;
        break;
      }
    }
  }
  for (std::string& l : lane) {
    for (int b : boundaries) {
      l[b] = '|';
    }
  }

  std::ostringstream out;
  out << "time 0.." << result.makespan << " s, one column = "
      << result.makespan / width << " s ('#' task, '.' slack, '|' "
      << "iteration boundary)\n";
  for (int r = 0; r < graph.num_ranks(); ++r) {
    out << "r" << r << (r < 10 ? " " : "") << " [" << lane[r] << "]\n";
  }
  return out.str();
}

}  // namespace powerlim::sim
