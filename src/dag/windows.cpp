#include "dag/windows.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace powerlim::dag {

std::vector<int> barrier_vertices(const TaskGraph& graph) {
  graph.validate();
  // Count, per vertex, how many distinct ranks' chains visit it; a
  // barrier is visited by all ranks. Rank chains visit src of every task
  // plus the final Finalize.
  std::vector<int> visits(graph.num_vertices(), 0);
  for (int r = 0; r < graph.num_ranks(); ++r) {
    for (int eid : graph.rank_chain(r)) {
      ++visits[graph.edge(eid).src];
    }
    ++visits[graph.finalize_vertex()];
  }
  // Collect in rank-0 chain order (all barriers appear on every chain, so
  // rank 0's order is the global order).
  std::vector<int> barriers;
  for (int eid : graph.rank_chain(0)) {
    const int v = graph.edge(eid).src;
    if (visits[v] == graph.num_ranks()) barriers.push_back(v);
  }
  barriers.push_back(graph.finalize_vertex());
  return barriers;
}

std::vector<Window> split_at_barriers(const TaskGraph& graph) {
  const std::vector<int> barriers = barrier_vertices(graph);
  const std::size_t num_windows = barriers.size() - 1;
  // Barrier -> ordinal.
  std::unordered_map<int, int> barrier_index;
  for (std::size_t i = 0; i < barriers.size(); ++i) {
    barrier_index[barriers[i]] = static_cast<int>(i);
  }

  // Pre-split every rank chain into segments between barriers.
  // segment[w][r] = task edge ids of rank r inside window w, in order.
  std::vector<std::vector<std::vector<int>>> segment(
      num_windows, std::vector<std::vector<int>>(graph.num_ranks()));
  for (int r = 0; r < graph.num_ranks(); ++r) {
    int window = -1;
    for (int eid : graph.rank_chain(r)) {
      const Edge& e = graph.edge(eid);
      auto it = barrier_index.find(e.src);
      if (it != barrier_index.end()) {
        window = it->second;
      }
      if (window < 0 || window >= static_cast<int>(num_windows)) {
        throw std::runtime_error("split_at_barriers: chain escapes windows");
      }
      segment[window][r].push_back(eid);
    }
  }

  std::vector<Window> out;
  out.reserve(num_windows);
  for (std::size_t w = 0; w < num_windows; ++w) {
    Window win{TaskGraph(graph.num_ranks()), {}, {}};
    std::unordered_map<int, int> vmap;  // original vertex -> window vertex
    auto map_vertex = [&](int orig) {
      auto it = vmap.find(orig);
      if (it != vmap.end()) return it->second;
      int id;
      if (orig == barriers[w]) {
        id = win.graph.add_vertex(VertexKind::kInit, -1,
                                  graph.vertex(orig).label);
      } else if (orig == barriers[w + 1]) {
        id = win.graph.add_vertex(VertexKind::kFinalize, -1,
                                  graph.vertex(orig).label);
      } else {
        const Vertex& v = graph.vertex(orig);
        id = win.graph.add_vertex(v.kind, v.rank, v.label);
      }
      vmap.emplace(orig, id);
      if (static_cast<int>(win.vertex_map.size()) <= id) {
        win.vertex_map.resize(id + 1, -1);
      }
      win.vertex_map[id] = orig;
      return id;
    };
    // Ensure Init is vertex 0 and Finalize exists even for empty windows.
    map_vertex(barriers[w]);
    map_vertex(barriers[w + 1]);

    std::unordered_set<int> window_vertices;  // original ids in this window
    window_vertices.insert(barriers[w]);
    window_vertices.insert(barriers[w + 1]);
    for (int r = 0; r < graph.num_ranks(); ++r) {
      for (int eid : segment[w][r]) {
        const Edge& e = graph.edge(eid);
        const int s = map_vertex(e.src);
        const int d = map_vertex(e.dst);
        const int wid = win.graph.add_task(s, d, r, e.work, e.iteration);
        if (static_cast<int>(win.edge_map.size()) <= wid) {
          win.edge_map.resize(wid + 1, -1);
        }
        win.edge_map[wid] = eid;
        window_vertices.insert(e.src);
        window_vertices.insert(e.dst);
      }
    }
    // Messages whose endpoints both live in this window.
    for (const Edge& e : graph.edges()) {
      if (e.is_task()) continue;
      if (window_vertices.count(e.src) && window_vertices.count(e.dst)) {
        const int wid =
            win.graph.add_message(vmap.at(e.src), vmap.at(e.dst), e.bytes);
        if (static_cast<int>(win.edge_map.size()) <= wid) {
          win.edge_map.resize(wid + 1, -1);
        }
        win.edge_map[wid] = e.id;
      }
    }
    win.graph.validate();
    out.push_back(std::move(win));
  }
  // Every original edge must land in exactly one window (a message
  // crossing a barrier would violate the decomposition's exactness).
  std::vector<int> covered(graph.num_edges(), 0);
  for (const Window& w : out) {
    for (int orig : w.edge_map) {
      if (orig >= 0) ++covered[orig];
    }
  }
  for (std::size_t e = 0; e < covered.size(); ++e) {
    if (covered[e] != 1) {
      throw std::runtime_error(
          "split_at_barriers: edge " + std::to_string(e) +
          (covered[e] ? " mapped twice" : " crosses a barrier"));
    }
  }
  return out;
}

}  // namespace powerlim::dag
