// Trace analysis: the structural metrics that predict how much a power
// bound hurts and how much non-uniform allocation can recover.
//
// The paper's results are driven by two trace properties: load imbalance
// (BT's geometric zones vs SP's near-perfect balance) and the
// communication structure (CoMD's collectives-only vs LULESH's p2p).
// This module quantifies both so users can predict where their own
// application sits before running the LP.
#pragma once

#include <vector>

#include "dag/graph.h"

namespace powerlim::dag {

struct RankLoad {
  int rank = 0;
  /// Total single-thread nominal seconds of this rank's tasks.
  double work_seconds = 0.0;
  /// Share of the job's total work.
  double share = 0.0;
};

struct TraceAnalysis {
  int ranks = 0;
  std::size_t tasks = 0;
  std::size_t messages = 0;
  std::size_t collectives = 0;
  int iterations = 0;

  /// Per-rank nominal work, ascending by rank id.
  std::vector<RankLoad> load;
  /// Classic imbalance metric: max(work) / mean(work) - 1. Zero means
  /// perfectly balanced; BT-MZ style traces land around 0.6+.
  double imbalance = 0.0;
  /// Ratio of heaviest to lightest rank.
  double max_min_ratio = 1.0;
  /// Message bytes per second of nominal computation (communication
  /// intensity).
  double bytes_per_work_second = 0.0;
  /// Fraction of cross-rank coupling points that are point-to-point
  /// messages rather than global collectives (CoMD: 0, LULESH: high).
  double p2p_fraction = 0.0;
  /// Mean nominal task length (short tasks make DVFS switching costly).
  double mean_task_seconds = 0.0;
  /// Length of the nominal-duration critical path (messages at zero cost).
  double critical_path_seconds = 0.0;
  /// Share of the critical path's task time owned by each rank. A single
  /// dominant rank (BT) means power reallocation pays; an even spread
  /// (SP) means it cannot.
  std::vector<double> critical_path_share;
};

/// Computes all metrics in one pass. The graph must validate().
TraceAnalysis analyze(const TaskGraph& graph);

}  // namespace powerlim::dag
