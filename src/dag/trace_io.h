// Trace serialization.
//
// The paper's pipeline starts from files produced by an MPI tracing
// library; powerlim's equivalent is a small line-oriented text format so
// traces can be captured once, shipped, diffed, and re-analyzed:
//
//   powerlim-trace 1
//   ranks <N>
//   vertex <id> <kind> <rank> [label]
//   task <src> <dst> <rank> <iteration> <cpu_s> <mem_s> <parallel_frac>
//        <mem_parallel_threads> <cache_contention> <cache_knee>
//   message <src> <dst> <bytes>
//
// Vertex ids must be dense and ascending (they are written that way).
// Unknown directives raise errors - the format is versioned, not ignored.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "dag/graph.h"

namespace powerlim::dag {

/// Raised on malformed trace input. Carries full provenance - the source
/// name (file path, or "<stream>" for in-memory parses), the 1-based line
/// number, and the offending token when one can be identified - so sweep
/// drivers can report *which* input byte broke a batch instead of a
/// generic parse failure.
class TraceParseError : public std::runtime_error {
 public:
  TraceParseError(std::string source, int line, std::string token,
                  const std::string& what);

  const std::string& source() const { return source_; }
  int line() const { return line_; }
  /// Empty when the error is not tied to a single token (e.g. a short
  /// line or a whole-graph validation failure).
  const std::string& token() const { return token_; }

 private:
  std::string source_;
  int line_;
  std::string token_;
};

/// Writes `graph` in powerlim-trace format.
void write_trace(std::ostream& out, const TaskGraph& graph);

/// Parses a trace; throws TraceParseError naming `source_name`, the line
/// number and the offending token on any malformed input. The resulting
/// graph is validate()d.
TaskGraph read_trace(std::istream& in,
                     const std::string& source_name = "<stream>");

/// Parses a trace without running TaskGraph::validate() at the end.
/// Token-level errors (bad header, malformed fields, unknown directives,
/// non-dense vertex ids) still throw; structural problems (cycles,
/// broken rank chains, unreachable Finalize) are preserved in the
/// returned graph so the linter (src/check/lint.h) can report each one
/// with its source line instead of stopping at the first.
TaskGraph read_trace_unvalidated(std::istream& in,
                                 const std::string& source_name = "<stream>");

/// Convenience file wrappers.
void save_trace(const std::string& path, const TaskGraph& graph);
TaskGraph load_trace(const std::string& path);
TaskGraph load_trace_unvalidated(const std::string& path);

const char* to_string(VertexKind kind);
VertexKind vertex_kind_from_string(const std::string& name);

/// Graphviz rendering of the task graph (the paper's Figure 2a view):
/// vertices = MPI events (collectives as boxes), solid edges = tasks
/// labeled with rank and nominal seconds, dashed edges = messages labeled
/// with bytes. Feed to `dot -Tsvg`.
void write_dot(std::ostream& out, const TaskGraph& graph);
std::string to_dot(const TaskGraph& graph);

}  // namespace powerlim::dag
