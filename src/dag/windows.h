// Barrier decomposition of a task graph.
//
// Iterative MPI applications synchronize all ranks at global collectives.
// Any vertex every rank's chain passes through (Init, Finalize, global
// collectives) is a *barrier*: nothing before it can overlap anything
// after it, so schedules - and the paper's LP - decompose exactly into
// independent windows between consecutive barriers. This turns the
// LP's O(T^3) cost over a whole trace into a sum of small solves (one per
// iteration), which is what makes paper-scale sweeps tractable here.
//
// Exactness: task activity intervals never span a barrier, so event power
// constraints do not couple windows; window objectives are additive; and
// the fixed event order across windows is implied by barrier ordering.
// (The full formulation's eq. 13 would additionally pin *accidentally*
// simultaneous vertices in different windows to stay simultaneous - a
// restriction, not a relaxation, so windowed solutions are never worse.)
#pragma once

#include <vector>

#include "dag/graph.h"

namespace powerlim::dag {

/// One barrier-to-barrier slice of the original graph, with maps back to
/// original ids. The slice's Init/Finalize are the enclosing barriers.
struct Window {
  TaskGraph graph;
  /// Window edge id -> original edge id.
  std::vector<int> edge_map;
  /// Window vertex id -> original vertex id.
  std::vector<int> vertex_map;
};

/// Vertices every rank's chain passes through, in chain order (always
/// starts with Init and ends with Finalize).
std::vector<int> barrier_vertices(const TaskGraph& graph);

/// Splits the graph at its barriers. Concatenating the windows in order
/// reproduces the original schedule structure exactly.
std::vector<Window> split_at_barriers(const TaskGraph& graph);

}  // namespace powerlim::dag
