#include "dag/trace_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace powerlim::dag {

const char* to_string(VertexKind kind) {
  switch (kind) {
    case VertexKind::kInit:
      return "init";
    case VertexKind::kFinalize:
      return "finalize";
    case VertexKind::kCollective:
      return "collective";
    case VertexKind::kSend:
      return "send";
    case VertexKind::kRecv:
      return "recv";
    case VertexKind::kWait:
      return "wait";
    case VertexKind::kPcontrol:
      return "pcontrol";
    case VertexKind::kGeneric:
      return "generic";
  }
  return "generic";
}

VertexKind vertex_kind_from_string(const std::string& name) {
  if (name == "init") return VertexKind::kInit;
  if (name == "finalize") return VertexKind::kFinalize;
  if (name == "collective") return VertexKind::kCollective;
  if (name == "send") return VertexKind::kSend;
  if (name == "recv") return VertexKind::kRecv;
  if (name == "wait") return VertexKind::kWait;
  if (name == "pcontrol") return VertexKind::kPcontrol;
  if (name == "generic") return VertexKind::kGeneric;
  throw std::runtime_error("unknown vertex kind: " + name);
}

void write_trace(std::ostream& out, const TaskGraph& graph) {
  out << "powerlim-trace 1\n";
  out << "ranks " << graph.num_ranks() << "\n";
  for (const Vertex& v : graph.vertices()) {
    out << "vertex " << v.id << ' ' << to_string(v.kind) << ' ' << v.rank;
    if (!v.label.empty()) out << ' ' << v.label;
    out << '\n';
  }
  out.precision(17);
  for (const Edge& e : graph.edges()) {
    if (e.is_task()) {
      out << "task " << e.src << ' ' << e.dst << ' ' << e.rank << ' '
          << e.iteration << ' ' << e.work.cpu_seconds << ' '
          << e.work.mem_seconds << ' ' << e.work.parallel_fraction << ' '
          << e.work.mem_parallel_threads << ' ' << e.work.cache_contention
          << ' ' << e.work.cache_knee << '\n';
    } else {
      out << "message " << e.src << ' ' << e.dst << ' ' << e.bytes << '\n';
    }
  }
}

TraceParseError::TraceParseError(std::string source, int line,
                                 std::string token, const std::string& what)
    : std::runtime_error(
          "trace parse error in " + source + " at line " +
          std::to_string(line) + ": " + what +
          (token.empty() ? std::string() : " (near '" + token + "')")),
      source_(std::move(source)),
      line_(line),
      token_(std::move(token)) {}

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream ss(line);
  std::string tok;
  while (ss >> tok) out.push_back(tok);
  return out;
}

/// Line-scoped field parsing: every conversion failure names the source,
/// the line and the exact token that did not parse.
class LineParser {
 public:
  LineParser(const std::string* source, int line_no, const std::string& line)
      : source_(source), line_(line_no), tokens_(tokenize(line)) {}

  std::size_t size() const { return tokens_.size(); }
  const std::string& token(std::size_t i) const { return tokens_[i]; }

  [[noreturn]] void fail(const std::string& what,
                         const std::string& token = {}) const {
    throw TraceParseError(*source_, line_, token, what);
  }

  /// Requires exactly `n` fields after the directive word.
  void expect_fields(std::size_t n, const char* directive) const {
    if (tokens_.size() != n + 1) {
      fail(std::string("malformed ") + directive + ": expected " +
               std::to_string(n) + " fields, got " +
               std::to_string(tokens_.size() - 1),
           tokens_.empty() ? std::string() : tokens_.back());
    }
  }

  long parse_int(std::size_t i, const char* field) const {
    const std::string& t = tokens_.at(i);
    std::size_t used = 0;
    long v = 0;
    try {
      v = std::stol(t, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used != t.size()) {
      fail(std::string("field '") + field + "' is not an integer", t);
    }
    return v;
  }

  double parse_double(std::size_t i, const char* field) const {
    const std::string& t = tokens_.at(i);
    std::size_t used = 0;
    double v = 0.0;
    try {
      v = std::stod(t, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used != t.size()) {
      fail(std::string("field '") + field + "' is not a number", t);
    }
    return v;
  }

 private:
  const std::string* source_;
  int line_;
  std::vector<std::string> tokens_;
};

}  // namespace

namespace {

TaskGraph read_trace_impl(std::istream& in, const std::string& source_name,
                          bool validate) {
  std::string line;
  int line_no = 0;

  auto next_line = [&]() -> bool {
    while (std::getline(in, line)) {
      ++line_no;
      if (!line.empty() && line[0] != '#') return true;
    }
    return false;
  };
  auto fail = [&](const std::string& what, const std::string& token =
                                               std::string()) -> void {
    throw TraceParseError(source_name, line_no, token, what);
  };

  if (!next_line()) fail("empty input");
  {
    const LineParser p(&source_name, line_no, line);
    if (p.size() != 2 || p.token(0) != "powerlim-trace" ||
        p.token(1) != "1") {
      fail("bad header (expected 'powerlim-trace 1')",
           p.size() > 0 ? p.token(0) : std::string());
    }
  }
  if (!next_line()) fail("missing ranks directive");
  int ranks = 0;
  {
    const LineParser p(&source_name, line_no, line);
    if (p.size() != 2 || p.token(0) != "ranks") {
      fail("bad ranks directive",
           p.size() > 0 ? p.token(0) : std::string());
    }
    ranks = static_cast<int>(p.parse_int(1, "ranks"));
    if (ranks < 1) fail("ranks must be >= 1", p.token(1));
  }

  TaskGraph graph(ranks);
  while (next_line()) {
    const LineParser p(&source_name, line_no, line);
    if (p.size() == 0) continue;  // whitespace-only line
    const std::string& word = p.token(0);
    if (word == "vertex") {
      // Label may contain spaces: at least 3 fields, the tail is free-form.
      if (p.size() < 4) {
        p.fail("malformed vertex: expected at least 3 fields",
               p.token(p.size() - 1));
      }
      const int id = static_cast<int>(p.parse_int(1, "id"));
      VertexKind kind;
      try {
        kind = vertex_kind_from_string(p.token(2));
      } catch (const std::runtime_error&) {
        p.fail("unknown vertex kind", p.token(2));
      }
      const int rank = static_cast<int>(p.parse_int(3, "rank"));
      std::string label;
      for (std::size_t i = 4; i < p.size(); ++i) {
        if (!label.empty()) label += ' ';
        label += p.token(i);
      }
      int got = -1;
      try {
        got = graph.add_vertex(kind, rank, label);
      } catch (const std::exception& e) {
        p.fail(std::string("bad vertex: ") + e.what());
      }
      if (got != id) {
        p.fail("vertex ids must be dense and ascending", p.token(1));
      }
    } else if (word == "task") {
      p.expect_fields(10, "task");
      const int src = static_cast<int>(p.parse_int(1, "src"));
      const int dst = static_cast<int>(p.parse_int(2, "dst"));
      const int rank = static_cast<int>(p.parse_int(3, "rank"));
      const int iteration = static_cast<int>(p.parse_int(4, "iteration"));
      machine::TaskWork w;
      w.cpu_seconds = p.parse_double(5, "cpu_s");
      w.mem_seconds = p.parse_double(6, "mem_s");
      w.parallel_fraction = p.parse_double(7, "parallel_frac");
      w.mem_parallel_threads =
          static_cast<int>(p.parse_int(8, "mem_parallel_threads"));
      w.cache_contention = p.parse_double(9, "cache_contention");
      w.cache_knee = static_cast<int>(p.parse_int(10, "cache_knee"));
      try {
        graph.add_task(src, dst, rank, w, iteration);
      } catch (const std::exception& e) {
        p.fail(std::string("bad task: ") + e.what());
      }
    } else if (word == "message") {
      p.expect_fields(3, "message");
      const int src = static_cast<int>(p.parse_int(1, "src"));
      const int dst = static_cast<int>(p.parse_int(2, "dst"));
      const double bytes = p.parse_double(3, "bytes");
      try {
        graph.add_message(src, dst, bytes);
      } catch (const std::exception& e) {
        p.fail(std::string("bad message: ") + e.what());
      }
    } else {
      fail("unknown directive '" + word + "'", word);
    }
  }
  if (validate) {
    try {
      graph.validate();
    } catch (const std::exception& e) {
      throw TraceParseError(source_name, line_no, std::string(),
                            std::string("invalid graph: ") + e.what());
    }
  }
  return graph;
}

}  // namespace

TaskGraph read_trace(std::istream& in, const std::string& source_name) {
  return read_trace_impl(in, source_name, /*validate=*/true);
}

TaskGraph read_trace_unvalidated(std::istream& in,
                                 const std::string& source_name) {
  return read_trace_impl(in, source_name, /*validate=*/false);
}

void save_trace(const std::string& path, const TaskGraph& graph) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_trace(out, graph);
}

TaskGraph load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return read_trace(in, path);
}

TaskGraph load_trace_unvalidated(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return read_trace_unvalidated(in, path);
}

void write_dot(std::ostream& out, const TaskGraph& graph) {
  out << "digraph trace {\n  rankdir=LR;\n  node [fontsize=10];\n";
  for (const Vertex& v : graph.vertices()) {
    const bool shared = v.rank < 0;
    out << "  v" << v.id << " [label=\""
        << (v.label.empty() ? to_string(v.kind) : v.label);
    if (!shared) out << "\\nr" << v.rank;
    out << "\" shape=" << (shared ? "box" : "ellipse") << "];\n";
  }
  out.precision(4);
  for (const Edge& e : graph.edges()) {
    out << "  v" << e.src << " -> v" << e.dst;
    if (e.is_task()) {
      out << " [label=\"r" << e.rank << " " << e.work.nominal_seconds()
          << "s\"]";
    } else {
      out << " [style=dashed label=\"" << e.bytes << "B\"]";
    }
    out << ";\n";
  }
  out << "}\n";
}

std::string to_dot(const TaskGraph& graph) {
  std::ostringstream out;
  write_dot(out, graph);
  return out.str();
}

}  // namespace powerlim::dag
