#include "dag/trace_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace powerlim::dag {

const char* to_string(VertexKind kind) {
  switch (kind) {
    case VertexKind::kInit:
      return "init";
    case VertexKind::kFinalize:
      return "finalize";
    case VertexKind::kCollective:
      return "collective";
    case VertexKind::kSend:
      return "send";
    case VertexKind::kRecv:
      return "recv";
    case VertexKind::kWait:
      return "wait";
    case VertexKind::kPcontrol:
      return "pcontrol";
    case VertexKind::kGeneric:
      return "generic";
  }
  return "generic";
}

VertexKind vertex_kind_from_string(const std::string& name) {
  if (name == "init") return VertexKind::kInit;
  if (name == "finalize") return VertexKind::kFinalize;
  if (name == "collective") return VertexKind::kCollective;
  if (name == "send") return VertexKind::kSend;
  if (name == "recv") return VertexKind::kRecv;
  if (name == "wait") return VertexKind::kWait;
  if (name == "pcontrol") return VertexKind::kPcontrol;
  if (name == "generic") return VertexKind::kGeneric;
  throw std::runtime_error("unknown vertex kind: " + name);
}

void write_trace(std::ostream& out, const TaskGraph& graph) {
  out << "powerlim-trace 1\n";
  out << "ranks " << graph.num_ranks() << "\n";
  for (const Vertex& v : graph.vertices()) {
    out << "vertex " << v.id << ' ' << to_string(v.kind) << ' ' << v.rank;
    if (!v.label.empty()) out << ' ' << v.label;
    out << '\n';
  }
  out.precision(17);
  for (const Edge& e : graph.edges()) {
    if (e.is_task()) {
      out << "task " << e.src << ' ' << e.dst << ' ' << e.rank << ' '
          << e.iteration << ' ' << e.work.cpu_seconds << ' '
          << e.work.mem_seconds << ' ' << e.work.parallel_fraction << ' '
          << e.work.mem_parallel_threads << ' ' << e.work.cache_contention
          << ' ' << e.work.cache_knee << '\n';
    } else {
      out << "message " << e.src << ' ' << e.dst << ' ' << e.bytes << '\n';
    }
  }
}

namespace {
[[noreturn]] void fail(int line, const std::string& what) {
  throw std::runtime_error("trace parse error at line " +
                           std::to_string(line) + ": " + what);
}
}  // namespace

TaskGraph read_trace(std::istream& in) {
  std::string line;
  int line_no = 0;

  auto next_line = [&]() -> bool {
    while (std::getline(in, line)) {
      ++line_no;
      if (!line.empty() && line[0] != '#') return true;
    }
    return false;
  };

  if (!next_line()) fail(line_no, "empty input");
  {
    std::istringstream ss(line);
    std::string magic;
    int version = 0;
    ss >> magic >> version;
    if (magic != "powerlim-trace" || version != 1) {
      fail(line_no, "bad header (expected 'powerlim-trace 1')");
    }
  }
  if (!next_line()) fail(line_no, "missing ranks directive");
  int ranks = 0;
  {
    std::istringstream ss(line);
    std::string word;
    ss >> word >> ranks;
    if (word != "ranks" || ranks < 1) fail(line_no, "bad ranks directive");
  }

  TaskGraph graph(ranks);
  while (next_line()) {
    std::istringstream ss(line);
    std::string word;
    ss >> word;
    if (word == "vertex") {
      int id = -1, rank = -2;
      std::string kind, label;
      ss >> id >> kind >> rank;
      if (ss.fail()) fail(line_no, "malformed vertex");
      std::getline(ss, label);
      if (!label.empty() && label[0] == ' ') label.erase(0, 1);
      const int got = graph.add_vertex(vertex_kind_from_string(kind), rank,
                                       label);
      if (got != id) fail(line_no, "vertex ids must be dense and ascending");
    } else if (word == "task") {
      int src, dst, rank, iteration;
      machine::TaskWork w;
      ss >> src >> dst >> rank >> iteration >> w.cpu_seconds >>
          w.mem_seconds >> w.parallel_fraction >> w.mem_parallel_threads >>
          w.cache_contention >> w.cache_knee;
      if (ss.fail()) fail(line_no, "malformed task");
      graph.add_task(src, dst, rank, w, iteration);
    } else if (word == "message") {
      int src, dst;
      double bytes;
      ss >> src >> dst >> bytes;
      if (ss.fail()) fail(line_no, "malformed message");
      graph.add_message(src, dst, bytes);
    } else {
      fail(line_no, "unknown directive '" + word + "'");
    }
  }
  graph.validate();
  return graph;
}

void save_trace(const std::string& path, const TaskGraph& graph) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_trace(out, graph);
}

TaskGraph load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return read_trace(in);
}

void write_dot(std::ostream& out, const TaskGraph& graph) {
  out << "digraph trace {\n  rankdir=LR;\n  node [fontsize=10];\n";
  for (const Vertex& v : graph.vertices()) {
    const bool shared = v.rank < 0;
    out << "  v" << v.id << " [label=\""
        << (v.label.empty() ? to_string(v.kind) : v.label);
    if (!shared) out << "\\nr" << v.rank;
    out << "\" shape=" << (shared ? "box" : "ellipse") << "];\n";
  }
  out.precision(4);
  for (const Edge& e : graph.edges()) {
    out << "  v" << e.src << " -> v" << e.dst;
    if (e.is_task()) {
      out << " [label=\"r" << e.rank << " " << e.work.nominal_seconds()
          << "s\"]";
    } else {
      out << " [style=dashed label=\"" << e.bytes << "B\"]";
    }
    out << ";\n";
  }
  out << "}\n";
}

std::string to_dot(const TaskGraph& graph) {
  std::ostringstream out;
  write_dot(out, graph);
  return out.str();
}

}  // namespace powerlim::dag
