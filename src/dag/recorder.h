// Trace recording API.
//
// The paper obtains its DAGs "from an MPI tracing library" that interposes
// on MPI calls (PMPI). TraceRecorder is that library's API surface for
// this codebase: an application (or a driver that replays application
// logs) reports, per rank, the computation performed since the last MPI
// call and the MPI operations themselves; the recorder assembles the task
// graph incrementally and validates it at finish().
//
// Usage per rank mirrors an MPI timeline:
//
//   TraceRecorder rec(2);
//   rec.compute(0, work_a);            // computation since MPI_Init
//   rec.send(0, /*tag=*/7, bytes);     // MPI_Isend
//   rec.compute(0, work_b);
//   rec.compute(1, work_c);
//   rec.recv(1, /*tag=*/7);            // MPI_Recv (matches tag-7 send)
//   rec.compute(1, work_d);
//   rec.collective({/*all ranks*/});   // MPI_Allreduce
//   ...
//   dag::TaskGraph g = rec.finish();   // MPI_Finalize
//
// Out-of-order calls across ranks are fine (each rank's stream is
// independent); within a rank, calls must follow program order.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dag/graph.h"

namespace powerlim::dag {

class TraceRecorder {
 public:
  explicit TraceRecorder(int ranks);

  /// Accumulates computation on `rank` since its last MPI call. Multiple
  /// consecutive calls merge into one task (their work adds).
  void compute(int rank, const machine::TaskWork& work);

  /// Marks the following edges as belonging to iteration `iteration`
  /// (MPI_Pcontrol). Applies to work not yet closed into a task.
  void pcontrol(int rank, int iteration);

  /// Records a non-blocking send of `bytes` with a matching `tag`. The
  /// pending computation is closed into a task ending at the send event.
  void send(int rank, std::uint64_t tag, double bytes);

  /// Records a receive matching the oldest outstanding send with `tag`.
  /// Throws if no such send was recorded (recv-before-send across the
  /// recorder is a trace error; record sends first).
  void recv(int rank, std::uint64_t tag);

  /// Records a collective joining all ranks; every rank's pending
  /// computation closes into a task ending at the shared vertex.
  void collective(const std::string& label = "collective");

  /// Closes every rank into MPI_Finalize, validates, and returns the
  /// graph. The recorder cannot be used afterwards. Throws if any send is
  /// still unmatched.
  TaskGraph finish();

  int num_ranks() const { return graph_.num_ranks(); }

 private:
  /// Closes `rank`'s pending work into a task edge ending at `vertex`.
  void close_task(int rank, int vertex);

  TaskGraph graph_;
  int init_vertex_;
  std::vector<int> cursor_;                 // per rank: current vertex
  std::vector<machine::TaskWork> pending_;  // per rank: accumulated work
  std::vector<bool> has_pending_;           // explicit compute() recorded
  std::vector<int> iteration_;              // per rank: current window
  struct OutstandingSend {
    int vertex;
    double bytes;
  };
  std::map<std::uint64_t, std::vector<OutstandingSend>> outstanding_;
  bool finished_ = false;
};

}  // namespace powerlim::dag
