#include "dag/analysis.h"

#include <algorithm>
#include <vector>

namespace powerlim::dag {

TraceAnalysis analyze(const TaskGraph& graph) {
  graph.validate();
  TraceAnalysis out;
  out.ranks = graph.num_ranks();
  out.iterations = graph.max_iteration() + 1;
  out.load.resize(graph.num_ranks());
  for (int r = 0; r < graph.num_ranks(); ++r) out.load[r].rank = r;

  double total_work = 0.0;
  double total_bytes = 0.0;
  for (const Edge& e : graph.edges()) {
    if (e.is_task()) {
      ++out.tasks;
      const double w = e.work.nominal_seconds();
      out.load[e.rank].work_seconds += w;
      total_work += w;
    } else {
      ++out.messages;
      total_bytes += e.bytes;
    }
  }
  for (const Vertex& v : graph.vertices()) {
    if (v.kind == VertexKind::kCollective) ++out.collectives;
  }

  double max_work = 0.0, min_work = 1e300;
  for (RankLoad& l : out.load) {
    l.share = total_work > 0 ? l.work_seconds / total_work : 0.0;
    max_work = std::max(max_work, l.work_seconds);
    min_work = std::min(min_work, l.work_seconds);
  }
  const double mean_work = total_work / graph.num_ranks();
  out.imbalance = mean_work > 0 ? max_work / mean_work - 1.0 : 0.0;
  out.max_min_ratio = min_work > 0 ? max_work / min_work : 0.0;
  out.bytes_per_work_second = total_work > 0 ? total_bytes / total_work : 0.0;
  // Coupling points: collectives synchronize everyone once; each message
  // couples one pair.
  const double couplings =
      static_cast<double>(out.messages + out.collectives);
  out.p2p_fraction = couplings > 0 ? out.messages / couplings : 0.0;
  out.mean_task_seconds =
      out.tasks > 0 ? total_work / static_cast<double>(out.tasks) : 0.0;

  // Critical path under nominal durations (messages free): which rank's
  // work actually gates the application?
  std::vector<double> durations(graph.num_edges(), 0.0);
  for (const Edge& e : graph.edges()) {
    if (e.is_task()) durations[e.id] = e.work.nominal_seconds();
  }
  out.critical_path_share.assign(graph.num_ranks(), 0.0);
  double path_total = 0.0;
  for (int eid : critical_path(graph, durations)) {
    const Edge& e = graph.edge(eid);
    if (!e.is_task()) continue;
    out.critical_path_share[e.rank] += durations[eid];
    path_total += durations[eid];
  }
  out.critical_path_seconds = path_total;
  if (path_total > 0.0) {
    for (double& share : out.critical_path_share) share /= path_total;
  }
  return out;
}

}  // namespace powerlim::dag
