// Application task graph.
//
// The paper (Section 3.1) represents a traced MPI + OpenMP execution as a
// DAG: vertices are MPI calls (collectives, message initiation/reception,
// Init/Finalize), edges are either computation tasks between two
// consecutive MPI calls on one rank, or messages between ranks. This
// module is the in-memory form of that trace plus the scheduling passes
// the LP formulation needs (ASAP schedule, critical path, slack).
//
// Structural invariant (checked by validate()): the task edges of each
// rank form a chain from the Init vertex to the Finalize vertex, with
// consecutive tasks sharing a vertex. This mirrors reality - between any
// two MPI calls a rank is always executing exactly one computation task
// (possibly followed by slack while it waits) - and it is what lets the
// event-based LP treat "task + its slack" as covering each rank's
// timeline with no gaps (Section 3.3).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "machine/power_model.h"

namespace powerlim::dag {

enum class VertexKind {
  kInit,
  kFinalize,
  kCollective,
  kSend,
  kRecv,
  kWait,
  kPcontrol,
  kGeneric,
};

enum class EdgeKind { kTask, kMessage };

struct Vertex {
  int id = -1;
  VertexKind kind = VertexKind::kGeneric;
  /// Owning rank; -1 for vertices shared by all ranks (Init, Finalize,
  /// collectives).
  int rank = -1;
  std::string label;
  std::vector<int> in_edges;
  std::vector<int> out_edges;
};

struct Edge {
  int id = -1;
  int src = -1;
  int dst = -1;
  EdgeKind kind = EdgeKind::kTask;
  /// Executing rank for tasks; -1 for messages.
  int rank = -1;
  /// Workload characteristics (tasks only).
  machine::TaskWork work;
  /// Payload size (messages only).
  double bytes = 0.0;
  /// Application iteration (MPI_Pcontrol window) this edge belongs to;
  /// -1 when outside any window. The evaluation discards the first
  /// iterations as Conductor's exploration phase (Section 5.3).
  int iteration = -1;

  bool is_task() const { return kind == EdgeKind::kTask; }
};

class TaskGraph {
 public:
  explicit TaskGraph(int num_ranks);

  int num_ranks() const { return num_ranks_; }

  int add_vertex(VertexKind kind, int rank, std::string label = {});
  /// Adds a computation task executed by `rank` between vertices src->dst.
  int add_task(int src, int dst, int rank, const machine::TaskWork& work,
               int iteration = -1);
  /// Adds a message edge (payload `bytes`) between vertices src->dst.
  int add_message(int src, int dst, double bytes);

  const Vertex& vertex(int id) const { return vertices_[id]; }
  const Edge& edge(int id) const { return edges_[id]; }
  std::size_t num_vertices() const { return vertices_.size(); }
  std::size_t num_edges() const { return edges_.size(); }
  const std::vector<Vertex>& vertices() const { return vertices_; }
  const std::vector<Edge>& edges() const { return edges_; }

  int init_vertex() const { return init_vertex_; }
  int finalize_vertex() const { return finalize_vertex_; }

  /// Task edge ids of one rank in chain order (Init -> Finalize).
  /// Requires a validated graph.
  std::vector<int> rank_chain(int rank) const;

  /// All task edge ids (excludes messages).
  std::vector<int> task_edges() const;

  /// Vertex ids in a topological order. Throws std::runtime_error if the
  /// graph has a cycle.
  std::vector<int> topo_order() const;

  /// Checks all structural invariants; throws std::runtime_error with a
  /// description on the first violation.
  void validate() const;

  /// Highest iteration number present, or -1.
  int max_iteration() const;

 private:
  int num_ranks_;
  std::vector<Vertex> vertices_;
  std::vector<Edge> edges_;
  int init_vertex_ = -1;
  int finalize_vertex_ = -1;
};

/// Times resulting from scheduling the DAG with fixed per-edge durations.
struct ScheduleTimes {
  /// Firing time of each vertex (all inbound edges complete).
  std::vector<double> vertex_time;
  /// Start time of each edge (== vertex_time[src]).
  std::vector<double> start;
  /// The durations used (copied in for convenience).
  std::vector<double> duration;
  double makespan = 0.0;

  /// End of the edge's execution (start + duration); the edge's *activity*
  /// interval for power purposes extends to vertex_time[dst] (slack).
  double end(int edge_id) const { return start[edge_id] + duration[edge_id]; }
};

/// As-soon-as-possible schedule: every vertex fires the instant its last
/// inbound edge completes. `durations` is indexed by edge id and must
/// cover message edges too.
ScheduleTimes asap_schedule(const TaskGraph& graph,
                            std::span<const double> durations);

/// Per-edge slack: how much the edge could be stretched without growing
/// the makespan, holding all other durations fixed (latest-finish minus
/// actual finish in the ASAP schedule).
std::vector<double> edge_slack(const TaskGraph& graph,
                               std::span<const double> durations);

/// Edge ids of one longest (critical) path from Init to Finalize.
std::vector<int> critical_path(const TaskGraph& graph,
                               std::span<const double> durations);

}  // namespace powerlim::dag
