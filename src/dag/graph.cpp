#include "dag/graph.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>
#include <unordered_map>

namespace powerlim::dag {

TaskGraph::TaskGraph(int num_ranks) : num_ranks_(num_ranks) {
  if (num_ranks < 1) throw std::invalid_argument("TaskGraph: num_ranks < 1");
}

int TaskGraph::add_vertex(VertexKind kind, int rank, std::string label) {
  if (rank < -1 || rank >= num_ranks_) {
    throw std::invalid_argument("add_vertex: bad rank");
  }
  Vertex v;
  v.id = static_cast<int>(vertices_.size());
  v.kind = kind;
  v.rank = rank;
  v.label = std::move(label);
  if (kind == VertexKind::kInit) {
    if (init_vertex_ >= 0) throw std::invalid_argument("duplicate Init");
    init_vertex_ = v.id;
  }
  if (kind == VertexKind::kFinalize) {
    if (finalize_vertex_ >= 0) throw std::invalid_argument("duplicate Finalize");
    finalize_vertex_ = v.id;
  }
  vertices_.push_back(std::move(v));
  return vertices_.back().id;
}

int TaskGraph::add_task(int src, int dst, int rank,
                        const machine::TaskWork& work, int iteration) {
  if (src < 0 || src >= static_cast<int>(vertices_.size()) || dst < 0 ||
      dst >= static_cast<int>(vertices_.size()) || src == dst) {
    throw std::invalid_argument("add_task: bad vertices");
  }
  if (rank < 0 || rank >= num_ranks_) {
    throw std::invalid_argument("add_task: bad rank");
  }
  Edge e;
  e.id = static_cast<int>(edges_.size());
  e.src = src;
  e.dst = dst;
  e.kind = EdgeKind::kTask;
  e.rank = rank;
  e.work = work;
  e.iteration = iteration;
  vertices_[src].out_edges.push_back(e.id);
  vertices_[dst].in_edges.push_back(e.id);
  edges_.push_back(std::move(e));
  return edges_.back().id;
}

int TaskGraph::add_message(int src, int dst, double bytes) {
  if (src < 0 || src >= static_cast<int>(vertices_.size()) || dst < 0 ||
      dst >= static_cast<int>(vertices_.size()) || src == dst) {
    throw std::invalid_argument("add_message: bad vertices");
  }
  if (bytes < 0) throw std::invalid_argument("add_message: negative bytes");
  Edge e;
  e.id = static_cast<int>(edges_.size());
  e.src = src;
  e.dst = dst;
  e.kind = EdgeKind::kMessage;
  e.bytes = bytes;
  vertices_[src].out_edges.push_back(e.id);
  vertices_[dst].in_edges.push_back(e.id);
  edges_.push_back(std::move(e));
  return edges_.back().id;
}

std::vector<int> TaskGraph::task_edges() const {
  std::vector<int> out;
  for (const Edge& e : edges_) {
    if (e.is_task()) out.push_back(e.id);
  }
  return out;
}

std::vector<int> TaskGraph::rank_chain(int rank) const {
  if (rank < 0 || rank >= num_ranks_) {
    throw std::invalid_argument("rank_chain: bad rank");
  }
  // Map src vertex -> task edge of this rank; walk from Init.
  std::unordered_map<int, int> next;
  std::size_t total = 0;
  for (const Edge& e : edges_) {
    if (!e.is_task() || e.rank != rank) continue;
    if (!next.emplace(e.src, e.id).second) {
      throw std::runtime_error("rank_chain: rank has two tasks from vertex " +
                               std::to_string(e.src));
    }
    ++total;
  }
  std::vector<int> chain;
  chain.reserve(total);
  int at = init_vertex_;
  while (true) {
    auto it = next.find(at);
    if (it == next.end()) break;
    chain.push_back(it->second);
    at = edges_[it->second].dst;
  }
  if (chain.size() != total) {
    throw std::runtime_error("rank_chain: tasks of rank " +
                             std::to_string(rank) + " do not form a chain");
  }
  if (!chain.empty() && edges_[chain.back()].dst != finalize_vertex_) {
    throw std::runtime_error("rank_chain: chain does not end at Finalize");
  }
  return chain;
}

std::vector<int> TaskGraph::topo_order() const {
  std::vector<int> indegree(vertices_.size(), 0);
  for (const Edge& e : edges_) ++indegree[e.dst];
  std::deque<int> ready;
  for (const Vertex& v : vertices_) {
    if (indegree[v.id] == 0) ready.push_back(v.id);
  }
  std::vector<int> order;
  order.reserve(vertices_.size());
  while (!ready.empty()) {
    const int v = ready.front();
    ready.pop_front();
    order.push_back(v);
    for (int eid : vertices_[v].out_edges) {
      if (--indegree[edges_[eid].dst] == 0) {
        ready.push_back(edges_[eid].dst);
      }
    }
  }
  if (order.size() != vertices_.size()) {
    throw std::runtime_error("topo_order: graph has a cycle");
  }
  return order;
}

void TaskGraph::validate() const {
  if (init_vertex_ < 0) throw std::runtime_error("validate: no Init vertex");
  if (finalize_vertex_ < 0) {
    throw std::runtime_error("validate: no Finalize vertex");
  }
  const std::vector<int> order = topo_order();  // throws on cycles
  // Init must come first among vertices with edges; nothing precedes it.
  if (!vertices_[init_vertex_].in_edges.empty()) {
    throw std::runtime_error("validate: Init has inbound edges");
  }
  if (!vertices_[finalize_vertex_].out_edges.empty()) {
    throw std::runtime_error("validate: Finalize has outbound edges");
  }
  // Every vertex except Init has an inbound edge; every vertex except
  // Finalize has an outbound edge (no dangling synchronization points).
  for (const Vertex& v : vertices_) {
    if (v.id != init_vertex_ && v.in_edges.empty()) {
      throw std::runtime_error("validate: unreachable vertex " +
                               std::to_string(v.id));
    }
    if (v.id != finalize_vertex_ && v.out_edges.empty()) {
      throw std::runtime_error("validate: dead-end vertex " +
                               std::to_string(v.id));
    }
  }
  // Each rank's tasks must chain Init -> Finalize.
  for (int r = 0; r < num_ranks_; ++r) {
    const std::vector<int> chain = rank_chain(r);  // throws on violations
    if (chain.empty()) {
      throw std::runtime_error("validate: rank " + std::to_string(r) +
                               " has no tasks");
    }
  }
  // Tasks must stay on their rank's vertices (or shared vertices).
  for (const Edge& e : edges_) {
    if (!e.is_task()) continue;
    const Vertex& s = vertices_[e.src];
    const Vertex& d = vertices_[e.dst];
    if ((s.rank != -1 && s.rank != e.rank) ||
        (d.rank != -1 && d.rank != e.rank)) {
      throw std::runtime_error("validate: task " + std::to_string(e.id) +
                               " crosses ranks");
    }
  }
}

int TaskGraph::max_iteration() const {
  int best = -1;
  for (const Edge& e : edges_) best = std::max(best, e.iteration);
  return best;
}

ScheduleTimes asap_schedule(const TaskGraph& graph,
                            std::span<const double> durations) {
  if (durations.size() != graph.num_edges()) {
    throw std::invalid_argument("asap_schedule: durations size mismatch");
  }
  ScheduleTimes out;
  out.vertex_time.assign(graph.num_vertices(), 0.0);
  out.start.assign(graph.num_edges(), 0.0);
  out.duration.assign(durations.begin(), durations.end());
  for (int v : graph.topo_order()) {
    double t = 0.0;
    for (int eid : graph.vertex(v).in_edges) {
      const Edge& e = graph.edge(eid);
      t = std::max(t, out.vertex_time[e.src] + durations[eid]);
    }
    out.vertex_time[v] = t;
    for (int eid : graph.vertex(v).out_edges) {
      out.start[eid] = t;
    }
  }
  out.makespan = out.vertex_time[graph.finalize_vertex()];
  return out;
}

std::vector<double> edge_slack(const TaskGraph& graph,
                               std::span<const double> durations) {
  const ScheduleTimes asap = asap_schedule(graph, durations);
  // Backward pass: latest firing time of each vertex without growing the
  // makespan.
  std::vector<double> latest(graph.num_vertices(), asap.makespan);
  const std::vector<int> order = graph.topo_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const Vertex& v = graph.vertex(*it);
    double t = v.out_edges.empty() ? asap.makespan : 1e300;
    for (int eid : v.out_edges) {
      const Edge& e = graph.edge(eid);
      t = std::min(t, latest[e.dst] - durations[eid]);
    }
    latest[*it] = t;
  }
  std::vector<double> slack(graph.num_edges(), 0.0);
  for (std::size_t eid = 0; eid < graph.num_edges(); ++eid) {
    const Edge& e = graph.edge(static_cast<int>(eid));
    slack[eid] =
        latest[e.dst] - (asap.vertex_time[e.src] + durations[eid]);
    if (slack[eid] < 0.0 && slack[eid] > -1e-9) slack[eid] = 0.0;
  }
  return slack;
}

std::vector<int> critical_path(const TaskGraph& graph,
                               std::span<const double> durations) {
  const ScheduleTimes asap = asap_schedule(graph, durations);
  std::vector<int> path;
  int v = graph.finalize_vertex();
  constexpr double kTol = 1e-9;
  while (v != graph.init_vertex()) {
    const Vertex& vertex = graph.vertex(v);
    int chosen = -1;
    for (int eid : vertex.in_edges) {
      const Edge& e = graph.edge(eid);
      if (std::abs(asap.vertex_time[e.src] + durations[eid] -
                   asap.vertex_time[v]) <= kTol) {
        chosen = eid;
        break;
      }
    }
    if (chosen < 0) {
      // Vertex fired before any inbound edge finished (can't happen in a
      // consistent ASAP schedule).
      throw std::runtime_error("critical_path: inconsistent schedule");
    }
    path.push_back(chosen);
    v = graph.edge(chosen).src;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace powerlim::dag
