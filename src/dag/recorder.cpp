#include "dag/recorder.h"

#include <stdexcept>

namespace powerlim::dag {

namespace {
machine::TaskWork merge(const machine::TaskWork& a,
                        const machine::TaskWork& b) {
  // Adding times keeps totals right; shape parameters are time-weighted
  // toward the bigger contributor.
  machine::TaskWork out = a.nominal_seconds() >= b.nominal_seconds() ? a : b;
  out.cpu_seconds = a.cpu_seconds + b.cpu_seconds;
  out.mem_seconds = a.mem_seconds + b.mem_seconds;
  return out;
}
}  // namespace

TraceRecorder::TraceRecorder(int ranks)
    : graph_(ranks),
      cursor_(ranks),
      pending_(ranks),
      has_pending_(ranks, false),
      iteration_(ranks, -1) {
  init_vertex_ = graph_.add_vertex(VertexKind::kInit, -1, "Init");
  for (int r = 0; r < ranks; ++r) cursor_[r] = init_vertex_;
}

void TraceRecorder::compute(int rank, const machine::TaskWork& work) {
  if (finished_) throw std::logic_error("TraceRecorder: already finished");
  if (rank < 0 || rank >= num_ranks()) {
    throw std::invalid_argument("TraceRecorder::compute: bad rank");
  }
  pending_[rank] =
      has_pending_[rank] ? merge(pending_[rank], work) : work;
  has_pending_[rank] = true;
}

void TraceRecorder::pcontrol(int rank, int iteration) {
  if (finished_) throw std::logic_error("TraceRecorder: already finished");
  if (rank < 0 || rank >= num_ranks()) {
    throw std::invalid_argument("TraceRecorder::pcontrol: bad rank");
  }
  iteration_[rank] = iteration;
}

void TraceRecorder::close_task(int rank, int vertex) {
  // Even a rank with no recorded computation gets a (zero-work) task so
  // the rank chain stays contiguous - mirroring reality, where *some*
  // computation always separates MPI calls.
  graph_.add_task(cursor_[rank], vertex, rank, pending_[rank],
                  iteration_[rank]);
  pending_[rank] = machine::TaskWork{};
  has_pending_[rank] = false;
  cursor_[rank] = vertex;
}

void TraceRecorder::send(int rank, std::uint64_t tag, double bytes) {
  if (finished_) throw std::logic_error("TraceRecorder: already finished");
  if (rank < 0 || rank >= num_ranks()) {
    throw std::invalid_argument("TraceRecorder::send: bad rank");
  }
  const int v = graph_.add_vertex(VertexKind::kSend, rank, "Isend");
  close_task(rank, v);
  outstanding_[tag].push_back({v, bytes});
}

void TraceRecorder::recv(int rank, std::uint64_t tag) {
  if (finished_) throw std::logic_error("TraceRecorder: already finished");
  if (rank < 0 || rank >= num_ranks()) {
    throw std::invalid_argument("TraceRecorder::recv: bad rank");
  }
  auto it = outstanding_.find(tag);
  if (it == outstanding_.end() || it->second.empty()) {
    throw std::runtime_error(
        "TraceRecorder::recv: no outstanding send with tag " +
        std::to_string(tag));
  }
  const OutstandingSend s = it->second.front();
  it->second.erase(it->second.begin());
  const int v = graph_.add_vertex(VertexKind::kRecv, rank, "Recv");
  close_task(rank, v);
  graph_.add_message(s.vertex, v, s.bytes);
}

void TraceRecorder::collective(const std::string& label) {
  if (finished_) throw std::logic_error("TraceRecorder: already finished");
  const int v = graph_.add_vertex(VertexKind::kCollective, -1, label);
  for (int r = 0; r < num_ranks(); ++r) close_task(r, v);
}

TaskGraph TraceRecorder::finish() {
  if (finished_) throw std::logic_error("TraceRecorder: already finished");
  for (const auto& [tag, sends] : outstanding_) {
    if (!sends.empty()) {
      throw std::runtime_error(
          "TraceRecorder::finish: unmatched send with tag " +
          std::to_string(tag));
    }
  }
  const int fin = graph_.add_vertex(VertexKind::kFinalize, -1, "Finalize");
  for (int r = 0; r < num_ranks(); ++r) close_task(r, fin);
  finished_ = true;
  graph_.validate();
  return std::move(graph_);
}

}  // namespace powerlim::dag
