#include "runtime/conductor.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace powerlim::runtime {

ConductorPolicy::ConductorPolicy(const machine::PowerModel& model, int ranks,
                                 double job_cap_watts,
                                 const ConductorOptions& options)
    : model_(&model),
      options_(options),
      job_cap_(job_cap_watts),
      history_(model),
      budget_(ranks, job_cap_watts / ranks),
      ordinal_(ranks, 0),
      last_key_(ranks, {-1, -1}),
      last_end_(ranks, -1.0),
      cur_ghz_(ranks, -1.0),
      cur_threads_(ranks, -1.0),
      window_energy_(ranks, 0.0),
      window_slack_(ranks, 0.0),
      usable_watts_(ranks, job_cap_watts / ranks) {}

sim::Decision ConductorPolicy::choose(const dag::Edge& task, double now) {
  const int rank = task.rank;
  // Record the slack the rank just experienced (blocking time before this
  // task became ready).
  if (last_end_[rank] >= 0.0 && last_key_[rank].first >= 0) {
    const double slack = std::max(0.0, now - last_end_[rank]);
    history_.record_slack(last_key_[rank], slack);
    window_slack_[rank] += slack;
  }
  if (task.iteration > iteration_) {
    iteration_ = task.iteration;
    std::fill(ordinal_.begin(), ordinal_.end(), 0);
  }
  const TaskKey key{rank, ordinal_[rank]++};
  last_key_[rank] = key;

  const bool exploring = task.iteration >= 0 &&
                         task.iteration < options_.exploration_iterations;
  const auto& frontier = history_.frontier(key, task.work);
  usable_watts_[rank] = std::max(usable_watts_[rank], frontier.back().power);
  machine::Config chosen;
  if (exploring) {
    // Exploration phase: behave like Static (8 threads under the rank's
    // budget) while the profile is being gathered.
    machine::Rapl rapl(*model_, budget_[rank]);
    chosen = rapl.apply(task.work, model_->spec().cores, rank);
  } else {
    // Conductor selects the thread count; the frequency comes from RAPL
    // enforcing the rank's budget (Section 4.2: "RAPL can only scale the
    // processor frequency ... Conductor must select the optimal
    // configuration"), so the budget is spent fully rather than rounded
    // down to a discrete DVFS point.
    machine::Rapl rapl(*model_, budget_[rank]);
    int last_fit = -1;
    for (std::size_t k = 0; k < frontier.size(); ++k) {
      if (frontier[k].power <= budget_[rank] + 1e-9) {
        last_fit = static_cast<int>(k);
      }
    }
    const int threads = last_fit >= 0 ? frontier[last_fit].threads
                                      : frontier.front().threads;
    machine::Config fastest = rapl.apply(task.work, threads, rank);
    // Also consider the full-width configuration: under a loose budget the
    // frontier's fastest point may not use all cores.
    if (threads != model_->spec().cores) {
      const machine::Config wide =
          rapl.apply(task.work, model_->spec().cores, rank);
      if (wide.duration < fastest.duration &&
          wide.power <= budget_[rank] + 1e-9) {
        fastest = wide;
      }
    }
    chosen = fastest;
    const TaskObservation& obs = history_.observation(key);
    // Conservative slack estimate: never slower than the most recent
    // observation allows. Pure EWMA remembers stale slack for several
    // iterations after the critical path moves, which destabilizes the
    // reallocation loop.
    const double slack_est = std::min(obs.slack_seconds, obs.slack_ewma);
    if (obs.seen && slack_est > 0.0 && last_fit >= 0) {
      // Adagio step: lowest-power configuration that still finishes
      // within the fast duration plus the usable slack.
      const double allowed =
          fastest.duration + options_.slack_safety * slack_est;
      for (std::size_t k = 0; k <= static_cast<std::size_t>(last_fit); ++k) {
        if (frontier[k].duration <= allowed) {
          chosen = frontier[k];
          break;
        }
      }
      if (chosen.duration > allowed) chosen = fastest;
    }
  }

  sim::Decision d;
  d.duration = chosen.duration;
  d.power = chosen.power;
  d.ghz = chosen.ghz;
  d.threads = static_cast<double>(chosen.threads);
  if (!exploring && d.duration >= options_.switch_threshold_s) {
    const bool differs = std::abs(d.ghz - cur_ghz_[rank]) > 1e-9 ||
                         std::abs(d.threads - cur_threads_[rank]) > 1e-9;
    if (differs) d.switch_overhead = options_.dvfs_overhead_s;
  }
  cur_ghz_[rank] = d.ghz;
  cur_threads_[rank] = d.threads;
  return d;
}

void ConductorPolicy::on_task_complete(const dag::Edge& task,
                                       const sim::TaskRecord& record) {
  last_end_[task.rank] = record.end;
  window_energy_[task.rank] += record.power * record.duration();
}

double ConductorPolicy::on_pcontrol(int next_iteration, double now) {
  iteration_ = next_iteration;
  std::fill(ordinal_.begin(), ordinal_.end(), 0);
  if (next_iteration < options_.exploration_iterations) {
    window_start_ = now;
    std::fill(window_energy_.begin(), window_energy_.end(), 0.0);
    std::fill(window_slack_.begin(), window_slack_.end(), 0.0);
    return 0.0;
  }
  if (++windows_since_realloc_ < options_.realloc_period) {
    return 0.0;
  }
  windows_since_realloc_ = 0;
  reallocate(now);
  return options_.realloc_overhead_s;
}

void ConductorPolicy::reallocate(double now) {
  const int ranks = static_cast<int>(budget_.size());
  const double window = std::max(now - window_start_, 1e-9);

  // Measured draw per rank over the window (busy-wait slack draws task
  // power, so energy/time is close to what RAPL would report).
  std::vector<double> usage(ranks);
  for (int r = 0; r < ranks; ++r) usage[r] = window_energy_[r] / window;

  // Donations: under-consuming ranks give up part of their measured
  // headroom ("processes with no (or very few) critical tasks do not use
  // all of their power allocation", Section 4.2). After Adagio has slowed
  // non-critical tasks, those ranks' draw sits well below their budget.
  double pool = 0.0;
  // A rank must keep enough budget to do *some* work: at least the
  // configured floor, and never below the socket's idle draw plus margin
  // (donating below idle would stall the donor entirely on high-leakage
  // parts).
  const double floor_watts =
      std::max(options_.min_rank_watts, model_->idle_power() + 3.0);
  for (int r = 0; r < ranks; ++r) {
    const double headroom = budget_[r] - usage[r];
    if (headroom <= 0.25) continue;  // measurement noise floor
    double give = options_.donation_rate * headroom;
    give = std::min(give, budget_[r] - floor_watts);
    if (give > 0.0) {
      budget_[r] -= give;
      pool += give;
    }
  }

  // Receivers: ranks with the least observed slack (estimated critical
  // path) - using the *previous* window's data, hence the lag. Each is
  // filled only up to the most power its profiled fastest configuration
  // can exploit; boosting past that would strand watts.
  if (pool > 0.0) {
    std::vector<int> order(ranks);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return window_slack_[a] < window_slack_[b];
    });
    for (int r : order) {
      if (pool <= 0.0) break;
      const double usable =
          usable_watts_.empty() ? job_cap_ : usable_watts_[r];
      // Rate-limit each boost: large single-step transfers overshoot and
      // set up the allocation thrashing the paper observes.
      const double want =
          std::min(usable - budget_[r], options_.max_boost_watts);
      if (want <= 0.0) continue;
      const double give = std::min(want, pool);
      budget_[r] += give;
      pool -= give;
    }
    // Whatever no rank can use goes back uniformly.
    if (pool > 0.0) {
      for (int r = 0; r < ranks; ++r) budget_[r] += pool / ranks;
    }
  }

  window_start_ = now;
  std::fill(window_energy_.begin(), window_energy_.end(), 0.0);
  std::fill(window_slack_.begin(), window_slack_.end(), 0.0);
}

}  // namespace powerlim::runtime
