// Static: fixed, uniform power allocation (paper Section 4.1).
//
// The de facto production approach: the job-level budget is divided
// equally across sockets and written to RAPL; the thread count is pinned
// to all hardware cores (8); the firmware alone picks DVFS states (and
// clock modulation) to hold each socket under its share. No software
// overheads are charged - RAPL runs asynchronously in firmware.
#pragma once

#include "machine/power_model.h"
#include "machine/rapl.h"
#include "sim/engine.h"

namespace powerlim::runtime {

class StaticPolicy final : public sim::Policy {
 public:
  /// `socket_cap` is the per-socket RAPL limit (job cap / ranks).
  StaticPolicy(const machine::PowerModel& model, double socket_cap)
      : rapl_(model, socket_cap), threads_(model.spec().cores) {}

  sim::Decision choose(const dag::Edge& task, double now) override {
    (void)now;
    const machine::Config c = rapl_.apply(task.work, threads_, task.rank);
    sim::Decision d;
    d.duration = c.duration;
    d.power = c.power;
    d.ghz = c.ghz;
    d.threads = static_cast<double>(c.threads);
    return d;
  }

  double socket_cap() const { return rapl_.cap(); }

 private:
  machine::Rapl rapl_;
  int threads_;
};

}  // namespace powerlim::runtime
