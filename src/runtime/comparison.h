// End-to-end experiment driver: LP bound vs. Static vs. Conductor.
//
// This is the backbone of the paper's evaluation (Section 6): for one
// application trace and one job-level power cap it produces the
// steady-state times of
//   * Static    - uniform per-socket RAPL caps, 8 threads (Section 4.1),
//   * Conductor - adaptive allocation (Section 4.2),
//   * Adagio    - slack reclamation only (ablation; Section 6 discusses
//                 "only the configuration selection" as a variant),
//   * LP        - the near-optimal schedule from the fixed-vertex-order
//                 LP, *replayed* on the simulator with DVFS-transition
//                 overheads, as the paper validates (Section 6.1),
// all measured from iteration `discard_iterations` onward (Section 5.3).
#pragma once

#include <optional>

#include "core/lp_formulation.h"
#include "core/windowed.h"
#include "dag/graph.h"
#include "machine/power_model.h"
#include "runtime/conductor.h"
#include "sim/engine.h"

namespace powerlim::runtime {

struct ComparisonOptions {
  /// Total job power budget, watts (== per-socket cap x ranks).
  double job_cap_watts = 0.0;
  /// Iterations discarded as the exploration phase.
  int discard_iterations = 3;
  ConductorOptions conductor;
  /// `simplex.deadline` bounds the whole comparison, not just the LP:
  /// the solver observes it at pivot granularity, and the driver checks
  /// it between the Static/Conductor/Adagio simulations - methods not
  /// reached before expiry come back infeasible instead of running over
  /// budget.
  lp::SimplexOptions simplex;
  /// Also run the Adagio-only ablation.
  bool run_adagio = false;
  /// Solve the LP per barrier window (exact for the iterative traces
  /// generated here and dramatically faster; see dag/windows.h). Set false
  /// to solve the monolithic trace LP as the paper's text describes.
  bool windowed_lp = true;
};

struct MethodResult {
  bool feasible = false;
  /// Steady-state seconds (after the discard window).
  double window_seconds = 0.0;
  double makespan = 0.0;
  double peak_power = 0.0;
  double average_power = 0.0;
};

struct ComparisonResult {
  MethodResult lp;
  MethodResult static_alloc;
  MethodResult conductor;
  MethodResult adagio;

  /// (t_base / t_better - 1) * 100: the paper's "potential improvement".
  static double improvement_pct(const MethodResult& base,
                                const MethodResult& better) {
    if (!base.feasible || !better.feasible || better.window_seconds <= 0.0) {
      return 0.0;
    }
    return (base.window_seconds / better.window_seconds - 1.0) * 100.0;
  }

  double lp_vs_static() const { return improvement_pct(static_alloc, lp); }
  double lp_vs_conductor() const { return improvement_pct(conductor, lp); }
  double conductor_vs_static() const {
    return improvement_pct(static_alloc, conductor);
  }
};

/// Runs all methods on one trace under one cap. For multi-cap grids,
/// pass a precomputed `sweeper` (windowed path) or `formulation`
/// (monolithic path) so frontier/event construction is amortized.
ComparisonResult compare_methods(const dag::TaskGraph& graph,
                                 const machine::PowerModel& model,
                                 const machine::ClusterSpec& cluster,
                                 const ComparisonOptions& options,
                                 const core::LpFormulation* formulation =
                                     nullptr,
                                 const core::WindowSweeper* sweeper =
                                     nullptr);

}  // namespace powerlim::runtime
