#include "runtime/comparison.h"

#include "core/windowed.h"

#include "runtime/adagio.h"
#include "runtime/static_policy.h"
#include "sim/measure.h"
#include "sim/replay.h"

namespace powerlim::runtime {

namespace {

MethodResult from_sim(const dag::TaskGraph& graph, const sim::SimResult& res,
                      int discard_iterations) {
  MethodResult out;
  out.feasible = true;
  out.makespan = res.makespan;
  out.window_seconds =
      sim::steady_window_seconds(graph, res, discard_iterations);
  out.peak_power = res.peak_power;
  out.average_power = res.average_power;
  return out;
}

}  // namespace

ComparisonResult compare_methods(const dag::TaskGraph& graph,
                                 const machine::PowerModel& model,
                                 const machine::ClusterSpec& cluster,
                                 const ComparisonOptions& options,
                                 const core::LpFormulation* formulation,
                                 const core::WindowSweeper* sweeper) {
  ComparisonResult out;
  const int ranks = graph.num_ranks();
  const double socket_cap = options.job_cap_watts / ranks;

  sim::EngineOptions engine;
  engine.cluster = cluster;
  engine.idle_power = model.idle_power();

  // --- LP bound, replayed with overheads (Section 6.1) ---
  core::LpScheduleOptions lp_opt;
  lp_opt.power_cap = options.job_cap_watts;
  lp_opt.simplex = options.simplex;
  if (options.windowed_lp) {
    const core::WindowedLpResult lp_res =
        sweeper != nullptr
            ? sweeper->solve(lp_opt)
            : core::solve_windowed_lp(graph, model, cluster, lp_opt);
    if (lp_res.optimal()) {
      sim::ReplayOptions replay;
      replay.engine = engine;
      const sim::SimResult replayed =
          sim::replay_schedule(graph, lp_res.schedule, lp_res.frontiers,
                               replay, &lp_res.vertex_time);
      out.lp = from_sim(graph, replayed, options.discard_iterations);
    }
  } else {
    std::optional<core::LpFormulation> local_form;
    const core::LpFormulation* form = formulation;
    if (form == nullptr) {
      local_form.emplace(graph, model, cluster);
      form = &*local_form;
    }
    const core::LpScheduleResult lp_res = form->solve(lp_opt);
    if (lp_res.optimal()) {
      sim::ReplayOptions replay;
      replay.engine = engine;
      const sim::SimResult replayed = sim::replay_schedule(
          graph, lp_res.schedule, form->frontiers(), replay,
          &lp_res.vertex_time);
      out.lp = from_sim(graph, replayed, options.discard_iterations);
    }
  }

  // The simulations below are bounded (no LP), but a comparison under a
  // wall budget must not start them once the budget is gone.
  const util::Deadline& deadline = options.simplex.deadline;
  if (deadline.stop_reason() != util::StopReason::kNone) return out;

  // --- Static ---
  {
    StaticPolicy policy(model, socket_cap);
    const sim::SimResult res = sim::simulate(graph, policy, engine);
    out.static_alloc = from_sim(graph, res, options.discard_iterations);
  }

  // --- Conductor ---
  if (deadline.stop_reason() == util::StopReason::kNone) {
    ConductorOptions copt = options.conductor;
    copt.exploration_iterations = options.discard_iterations;
    ConductorPolicy policy(model, ranks, options.job_cap_watts, copt);
    const sim::SimResult res = sim::simulate(graph, policy, engine);
    out.conductor = from_sim(graph, res, options.discard_iterations);
  }

  // --- Adagio-only ablation ---
  if (options.run_adagio &&
      deadline.stop_reason() == util::StopReason::kNone) {
    AdagioPolicy policy(model, socket_cap);
    const sim::SimResult res = sim::simulate(graph, policy, engine);
    out.adagio = from_sim(graph, res, options.discard_iterations);
  }

  return out;
}

}  // namespace powerlim::runtime
