#include "runtime/adagio.h"

#include <algorithm>
#include <cmath>

namespace powerlim::runtime {

AdagioPolicy::AdagioPolicy(const machine::PowerModel& model,
                           double socket_cap, const AdagioOptions& options)
    : model_(&model),
      rapl_(model, socket_cap),
      options_(options),
      history_(model) {}

sim::Decision AdagioPolicy::choose(const dag::Edge& task, double now) {
  const int rank = task.rank;
  if (rank >= static_cast<int>(ordinal_.size())) {
    ordinal_.resize(rank + 1, 0);
    last_key_.resize(rank + 1, {-1, -1});
    last_end_.resize(rank + 1, -1.0);
    cur_ghz_.resize(rank + 1, -1.0);
    cur_threads_.resize(rank + 1, -1.0);
  }
  // Close out the previous task's slack observation: the gap between its
  // completion and this start is exactly what Adagio measures via MPI
  // blocking time.
  if (last_end_[rank] >= 0.0 && last_key_[rank].first >= 0) {
    history_.record_slack(last_key_[rank],
                          std::max(0.0, now - last_end_[rank]));
  }
  if (task.iteration != iteration_) {
    // New iteration boundary already handled in on_pcontrol; ordinals are
    // reset there. (Guard for graphs without Pcontrol windows.)
    if (task.iteration > iteration_) {
      iteration_ = task.iteration;
      std::fill(ordinal_.begin(), ordinal_.end(), 0);
    }
  }
  const TaskKey key{rank, ordinal_[rank]++};
  last_key_[rank] = key;

  const auto& frontier = history_.frontier(key, task.work);
  // Candidates under the per-socket cap.
  int last_fit = -1;
  for (std::size_t k = 0; k < frontier.size(); ++k) {
    if (frontier[k].power <= rapl_.cap() + 1e-9) {
      last_fit = static_cast<int>(k);
    }
  }
  machine::Config chosen;
  if (last_fit < 0) {
    // Even the cheapest frontier point exceeds the cap: fall back to RAPL
    // clamping at that thread count.
    chosen = rapl_.apply(task.work, frontier.front().threads, rank);
  } else {
    // Fastest configuration that fits = baseline.
    chosen = frontier[last_fit];
    const TaskObservation& obs = history_.observation(key);
    if (obs.seen && obs.slack_ewma > 0.0) {
      const double allowed =
          chosen.duration + options_.slack_safety * obs.slack_ewma;
      // Lowest-power configuration still finishing within the allowance.
      for (std::size_t k = 0; k <= static_cast<std::size_t>(last_fit); ++k) {
        if (frontier[k].duration <= allowed) {
          chosen = frontier[k];
          break;
        }
      }
    }
  }

  sim::Decision d;
  d.duration = chosen.duration;
  d.power = chosen.power;
  d.ghz = chosen.ghz;
  d.threads = static_cast<double>(chosen.threads);
  if (d.duration >= options_.switch_threshold_s) {
    const bool differs = std::abs(d.ghz - cur_ghz_[rank]) > 1e-9 ||
                         std::abs(d.threads - cur_threads_[rank]) > 1e-9;
    if (differs) d.switch_overhead = options_.dvfs_overhead_s;
  }
  cur_ghz_[rank] = d.ghz;
  cur_threads_[rank] = d.threads;
  return d;
}

void AdagioPolicy::on_task_complete(const dag::Edge& task,
                                    const sim::TaskRecord& record) {
  if (task.rank < static_cast<int>(last_end_.size())) {
    last_end_[task.rank] = record.end;
  }
}

double AdagioPolicy::on_pcontrol(int next_iteration, double now) {
  (void)now;
  iteration_ = next_iteration;
  std::fill(ordinal_.begin(), ordinal_.end(), 0);
  return 0.0;
}

}  // namespace powerlim::runtime
