// Conductor: adaptive configuration selection + power reallocation
// (Marathe et al., ISC'15; paper Section 4.2).
//
// Two cooperating mechanisms on top of a per-rank power budget:
//
//  1. Configuration selection with Adagio-style slack reclamation: per
//     task, run the fastest Pareto configuration fitting the rank's
//     current budget, degraded to the lowest-power configuration that
//     still finishes within the observed slack window.
//  2. Periodic power reallocation: every `realloc_period` Pcontrol
//     windows, compare each rank's *measured* power draw against its
//     budget; under-consuming (slack-rich) ranks donate headroom, which is
//     redistributed to the ranks with the least observed slack (the
//     estimated critical path). Decisions cost 566 us (paper Section 6.2)
//     and are based on the previous window's measurements - the lag that
//     produces the allocation thrashing and critical-path misprediction
//     the paper reports on SP (Section 6.4).
//
// The sum of rank budgets is invariant (== job cap), so the job-level
// constraint holds by construction, exactly as in the real system.
#pragma once

#include <vector>

#include "machine/power_model.h"
#include "machine/rapl.h"
#include "runtime/task_profile.h"
#include "sim/engine.h"

namespace powerlim::runtime {

struct ConductorOptions {
  /// Reallocate after this many Pcontrol windows (paper: "after every
  /// 5-10 MPI_Pcontrol calls").
  int realloc_period = 5;
  /// Iterations spent exploring configurations before adapting; the
  /// evaluation discards these (paper Section 5.3 discards 3).
  int exploration_iterations = 3;
  /// Fraction of measured headroom a rank donates per reallocation.
  double donation_rate = 0.2;
  /// Largest boost one rank may receive per reallocation.
  double max_boost_watts = 10.0;
  /// No rank's budget may fall below this (keeps RAPL attainable).
  double min_rank_watts = 22.0;
  /// Slack-reclamation safety factor (Adagio step).
  double slack_safety = 0.9;
  double dvfs_overhead_s = machine::Overheads::kDvfsTransition;
  double switch_threshold_s = machine::Overheads::kSwitchThresholdSeconds;
  double realloc_overhead_s = machine::Overheads::kPowerReallocation;
};

class ConductorPolicy final : public sim::Policy {
 public:
  ConductorPolicy(const machine::PowerModel& model, int ranks,
                  double job_cap_watts, const ConductorOptions& options = {});

  sim::Decision choose(const dag::Edge& task, double now) override;
  void on_task_complete(const dag::Edge& task,
                        const sim::TaskRecord& record) override;
  double on_pcontrol(int next_iteration, double now) override;

  /// Current per-rank budgets (diagnostics; Table 3's power spread).
  const std::vector<double>& rank_budgets() const { return budget_; }

 private:
  void reallocate(double now);

  const machine::PowerModel* model_;
  ConductorOptions options_;
  double job_cap_;
  TaskHistory history_;

  std::vector<double> budget_;       // per rank
  std::vector<int> ordinal_;         // per rank, resets each window
  std::vector<TaskKey> last_key_;    // per rank
  std::vector<double> last_end_;     // per rank
  std::vector<double> cur_ghz_, cur_threads_;

  // Measurement window for reallocation decisions.
  std::vector<double> window_energy_;      // per rank, joules
  std::vector<double> window_slack_;       // per rank, seconds
  /// Highest power each rank's profiled fastest configurations can draw;
  /// reallocation never boosts a rank beyond this.
  std::vector<double> usable_watts_;
  double window_start_ = 0.0;
  int windows_since_realloc_ = 0;
  int iteration_ = -1;
};

}  // namespace powerlim::runtime
