// Shared run-time bookkeeping for the online policies.
//
// Conductor and Adagio key their predictions on "the same task in the
// next iteration": iterative HPC codes repeat their task structure every
// time step, so (rank, ordinal-within-iteration) identifies a task across
// iterations. TaskHistory tracks, per key, the observed slack and the
// frontier of profiled configurations (standing in for Conductor's
// distributed configuration-exploration phase, which the paper discards
// from its measurements anyway).
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "core/pareto.h"
#include "machine/power_model.h"

namespace powerlim::runtime {

/// Identifies a task across iterations: (rank, ordinal within iteration).
using TaskKey = std::pair<int, int>;

struct TaskObservation {
  /// Slack observed after the task in the most recent completed instance
  /// (time between task end and the next task's start on the same rank).
  double slack_seconds = 0.0;
  /// Exponentially-weighted slack (smoother signal for Adagio).
  double slack_ewma = 0.0;
  bool seen = false;
};

class TaskHistory {
 public:
  explicit TaskHistory(const machine::PowerModel& model) : model_(&model) {}

  /// Convex frontier for a task's workload; cached per key (the workload
  /// of a keyed task is stable across iterations up to jitter, and the
  /// frontier shape is what matters).
  const std::vector<machine::Config>& frontier(const TaskKey& key,
                                               const machine::TaskWork& work) {
    auto it = frontier_cache_.find(key);
    if (it == frontier_cache_.end()) {
      it = frontier_cache_
               .emplace(key, core::convex_frontier(
                                 model_->enumerate(work, key.first)))
               .first;
    }
    return it->second;
  }

  TaskObservation& observation(const TaskKey& key) { return obs_[key]; }

  void record_slack(const TaskKey& key, double slack) {
    TaskObservation& o = obs_[key];
    o.slack_seconds = slack;
    o.slack_ewma = o.seen ? 0.5 * o.slack_ewma + 0.5 * slack : slack;
    o.seen = true;
  }

 private:
  const machine::PowerModel* model_;
  std::map<TaskKey, std::vector<machine::Config>> frontier_cache_;
  std::map<TaskKey, TaskObservation> obs_;
};

}  // namespace powerlim::runtime
