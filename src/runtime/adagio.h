// Adagio: slack-directed slowdown (Rountree et al., ICS'09; used by the
// paper as Conductor's first step, Section 4.2).
//
// For every task, Adagio observes how long the rank then waited in MPI
// (its slack) and, on the next instance of the same task, selects the
// lowest-power configuration that finishes within the fast duration plus
// that slack - slowing non-critical computation "for free". Critical tasks
// (no slack) keep running at full tilt. Adagio alone never reallocates
// power across ranks; pair it with a per-socket cap.
#pragma once

#include <vector>

#include "machine/power_model.h"
#include "machine/rapl.h"
#include "runtime/task_profile.h"
#include "sim/engine.h"

namespace powerlim::runtime {

struct AdagioOptions {
  /// Use only this fraction of the observed slack (guard against jitter).
  double slack_safety = 0.9;
  /// Charge a DVFS transition when the configuration changes and the task
  /// is at least the threshold long.
  double dvfs_overhead_s = machine::Overheads::kDvfsTransition;
  double switch_threshold_s = machine::Overheads::kSwitchThresholdSeconds;
};

class AdagioPolicy final : public sim::Policy {
 public:
  AdagioPolicy(const machine::PowerModel& model, double socket_cap,
               const AdagioOptions& options = {});

  sim::Decision choose(const dag::Edge& task, double now) override;
  void on_task_complete(const dag::Edge& task,
                        const sim::TaskRecord& record) override;
  double on_pcontrol(int next_iteration, double now) override;

 private:
  const machine::PowerModel* model_;
  machine::Rapl rapl_;
  AdagioOptions options_;
  TaskHistory history_;
  int iteration_ = -1;
  std::vector<int> ordinal_;       // per rank, resets each iteration
  std::vector<TaskKey> last_key_;  // per rank
  std::vector<double> last_end_;   // per rank
  std::vector<double> cur_ghz_, cur_threads_;
};

}  // namespace powerlim::runtime
