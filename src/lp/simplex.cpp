#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace powerlim::lp {

const char* to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal:
      return "optimal";
    case SolveStatus::kInfeasible:
      return "infeasible";
    case SolveStatus::kUnbounded:
      return "unbounded";
    case SolveStatus::kIterationLimit:
      return "iteration-limit";
    case SolveStatus::kNumericalError:
      return "numerical-error";
    case SolveStatus::kDeadlineExceeded:
      return "deadline-exceeded";
    case SolveStatus::kCancelled:
      return "cancelled";
  }
  return "?";
}

namespace {

enum class VarStatus : char { kAtLower, kAtUpper, kBasic, kFree };

/// The computational form:  A_full x = 0 with per-column bounds, where
/// A_full = [A_structural | -I_slack | sigma*I_artificial]. Row right-hand
/// sides are folded into slack bounds, so b == 0 throughout.
class Simplex {
 public:
  Simplex(const Model& model, const SimplexOptions& opt)
      : model_(model),
        opt_(opt),
        m_(model.num_constraints()),
        n_(model.num_variables()) {
    build_columns();
  }

  Solution run(WarmStart* warm = nullptr) {
    Solution sol;
    // An already-dead deadline exits before any setup work: the retry
    // ladder relies on exhausted budgets failing in O(1).
    const util::StopReason pre = opt_.deadline.stop_reason();
    if (pre != util::StopReason::kNone) {
      return finish(stop_status(pre), warm);
    }
    if (m_ == 0) {
      return solve_unconstrained();
    }
    if (opt_.bland_trigger <= 0) {
      bland_ = true;
      bland_used_ = true;
    }
    max_iter_ = opt_.max_iterations > 0
                    ? opt_.max_iterations
                    : 200 * static_cast<long>(m_ + n_) + 2000;

    const bool warmed = warm != nullptr && try_warm_init(*warm);
    if (!warmed) {
      const SolveStatus p1 = phase_one();
      if (p1 != SolveStatus::kOptimal) return finish(p1, warm);
    }

    // Phase II with drift verification: after the loop converges,
    // refactorize to recompute the point *exactly*; a catastrophic pivot
    // (tiny pivot element accepted by the ratio test) shows up here as
    // basics out of bounds or as newly improving candidates, both of
    // which we repair instead of returning a corrupted answer.
    for (int attempt = 0;; ++attempt) {
      if (!iterate(cost_)) return finish(stop_status_, warm);
      if (unbounded_) return finish(SolveStatus::kUnbounded, warm);
      refactor();
      if (!basics_within_bounds()) {
        if (attempt >= 2) return finish(SolveStatus::kNumericalError, warm);
        const SolveStatus p1 = phase_one();  // full cold restart
        if (p1 != SolveStatus::kOptimal) return finish(p1, warm);
        continue;
      }
      compute_duals(cost_);
      if (price(cost_) < 0) break;  // optimal at the exact point
      if (attempt >= 4) return finish(SolveStatus::kNumericalError, warm);
    }
    return finish(SolveStatus::kOptimal, warm);
  }

 private:
  // ---- setup -------------------------------------------------------------

  void build_columns() {
    const std::size_t total = n_ + m_ + m_;  // structural, slack, artificial
    col_start_.assign(total + 1, 0);
    lb_.resize(total);
    ub_.resize(total);
    cost_.assign(total, 0.0);
    phase1_cost_.assign(total, 0.0);

    const double sense_mult =
        model_.sense() == Sense::kMaximize ? -1.0 : 1.0;
    for (std::size_t j = 0; j < n_; ++j) {
      lb_[j] = model_.variable_lb(static_cast<int>(j));
      ub_[j] = model_.variable_ub(static_cast<int>(j));
      cost_[j] = sense_mult * model_.objective_coeff(static_cast<int>(j));
    }
    // Build CSC for structural columns from the model's row storage.
    std::vector<std::size_t> count(n_, 0);
    for (std::size_t i = 0; i < m_; ++i) {
      const Model::RowView r = model_.row(static_cast<int>(i));
      for (std::size_t k = 0; k < r.size; ++k) ++count[r.idx[k]];
    }
    for (std::size_t j = 0; j < n_; ++j) {
      col_start_[j + 1] = col_start_[j] + count[j];
    }
    // Slack and artificial columns are singletons.
    for (std::size_t j = n_; j < total; ++j) {
      col_start_[j + 1] = col_start_[j] + 1;
    }
    col_row_.resize(col_start_[total]);
    col_val_.resize(col_start_[total]);
    std::vector<std::size_t> fill(n_, 0);
    for (std::size_t i = 0; i < m_; ++i) {
      const Model::RowView r = model_.row(static_cast<int>(i));
      for (std::size_t k = 0; k < r.size; ++k) {
        const int j = r.idx[k];
        const std::size_t pos = col_start_[j] + fill[j]++;
        col_row_[pos] = static_cast<int>(i);
        col_val_[pos] = r.coeff[k];
      }
    }
    slack_begin_ = n_;
    art_begin_ = n_ + m_;
    for (std::size_t i = 0; i < m_; ++i) {
      // Slack column: a'x - s = 0 with s in [row_lb, row_ub].
      col_row_[col_start_[slack_begin_ + i]] = static_cast<int>(i);
      col_val_[col_start_[slack_begin_ + i]] = -1.0;
      lb_[slack_begin_ + i] = model_.row_lb(static_cast<int>(i));
      ub_[slack_begin_ + i] = model_.row_ub(static_cast<int>(i));
      // Artificial sign is fixed in initialize_point().
      col_row_[col_start_[art_begin_ + i]] = static_cast<int>(i);
      col_val_[col_start_[art_begin_ + i]] = 1.0;
      lb_[art_begin_ + i] = 0.0;
      ub_[art_begin_ + i] = kInfinity;
      phase1_cost_[art_begin_ + i] = 1.0;
    }
    num_cols_ = total;
  }

  /// Places structural and slack variables at their nearest finite bound
  /// (0 for free variables), then sizes the artificial basis to absorb the
  /// residual of every row.
  void initialize_point() {
    xval_.assign(num_cols_, 0.0);
    status_.assign(num_cols_, VarStatus::kAtLower);
    for (std::size_t j = 0; j < art_begin_; ++j) {
      const bool lo = is_finite_bound(lb_[j]);
      const bool hi = is_finite_bound(ub_[j]);
      if (lo && hi) {
        // Prefer the bound with smaller magnitude; ties go low.
        if (std::abs(ub_[j]) < std::abs(lb_[j])) {
          status_[j] = VarStatus::kAtUpper;
          xval_[j] = ub_[j];
        } else {
          status_[j] = VarStatus::kAtLower;
          xval_[j] = lb_[j];
        }
      } else if (lo) {
        status_[j] = VarStatus::kAtLower;
        xval_[j] = lb_[j];
      } else if (hi) {
        status_[j] = VarStatus::kAtUpper;
        xval_[j] = ub_[j];
      } else {
        status_[j] = VarStatus::kFree;
        xval_[j] = 0.0;
      }
    }
    // Row activities at the initial nonbasic point (slacks not counted).
    std::vector<double> activity(m_, 0.0);
    for (std::size_t j = 0; j < slack_begin_; ++j) {
      if (xval_[j] == 0.0) continue;
      for (std::size_t k = col_start_[j]; k < col_start_[j + 1]; ++k) {
        activity[col_row_[k]] += col_val_[k] * xval_[j];
      }
    }
    // Mixed crash basis: rows whose activity already fits inside the slack
    // bounds start with their slack basic (feasible, no phase-1 work);
    // only violated rows get an artificial. This typically leaves phase I
    // with a handful of pivots instead of one per row.
    basis_.resize(m_);
    binv_.assign(m_ * m_, 0.0);
    for (std::size_t i = 0; i < m_; ++i) {
      const std::size_t slack = slack_begin_ + i;
      const std::size_t art = art_begin_ + i;
      if (activity[i] >= lb_[slack] - 1e-12 &&
          activity[i] <= ub_[slack] + 1e-12) {
        // Slack basic at the row activity; artificial pinned at zero.
        basis_[i] = static_cast<int>(slack);
        status_[slack] = VarStatus::kBasic;
        xval_[slack] = activity[i];
        lb_[art] = ub_[art] = 0.0;
        xval_[art] = 0.0;
        status_[art] = VarStatus::kAtLower;
        binv_[i * m_ + i] = -1.0;  // slack column is -e_i
      } else {
        // Slack at its nearest bound; artificial absorbs the residual.
        const double sbar =
            activity[i] < lb_[slack] ? lb_[slack] : ub_[slack];
        status_[slack] = activity[i] < lb_[slack] ? VarStatus::kAtLower
                                                  : VarStatus::kAtUpper;
        xval_[slack] = sbar;
        const double resid = activity[i] - sbar;  // a'x - s
        const double sign = resid < 0.0 ? -1.0 : 1.0;
        col_val_[col_start_[art]] = -sign;  // so that art = |resid| >= 0
        basis_[i] = static_cast<int>(art);
        status_[art] = VarStatus::kBasic;
        xval_[art] = std::abs(resid);
        binv_[i * m_ + i] = -sign;
      }
    }
    pivots_since_refactor_ = 0;
  }

  /// Cold start: crash basis + phase I. Returns kOptimal when a feasible
  /// basis was reached.
  SolveStatus phase_one() {
    initialize_point();
    if (!iterate(phase1_cost_)) return stop_status_;
    double art_sum = 0.0;
    for (std::size_t k = 0; k < m_; ++k) art_sum += xval_[art_begin_ + k];
    if (art_sum > 1e-6) return SolveStatus::kInfeasible;
    // Pin artificials at zero so phase II can never reuse them.
    for (std::size_t k = 0; k < m_; ++k) {
      lb_[art_begin_ + k] = 0.0;
      ub_[art_begin_ + k] = 0.0;
      xval_[art_begin_ + k] = 0.0;
    }
    return SolveStatus::kOptimal;
  }

  /// All basic variables within their bounds (called right after an exact
  /// refactorization).
  bool basics_within_bounds() const {
    for (std::size_t i = 0; i < m_; ++i) {
      const int b = basis_[i];
      if (xval_[b] < lb_[b] - 10 * opt_.primal_tol ||
          xval_[b] > ub_[b] + 10 * opt_.primal_tol) {
        return false;
      }
    }
    return true;
  }

  /// Seeds statuses/basis from a snapshot of a structurally identical
  /// model and verifies primal feasibility under the *current* bounds.
  /// Returns false (leaving state untouched for a cold start) when the
  /// snapshot does not fit or the warmed point is infeasible.
  bool try_warm_init(const WarmStart& warm) {
    if (!warm.valid() || warm.status.size() != num_cols_ ||
        warm.basis.size() != m_) {
      return false;
    }
    // Reject bases containing artificials: their column signs are
    // solve-specific.
    for (int b : warm.basis) {
      if (b < 0 || b >= static_cast<int>(num_cols_) ||
          b >= static_cast<int>(art_begin_)) {
        return false;
      }
    }
    status_.resize(num_cols_);
    for (std::size_t j = 0; j < num_cols_; ++j) {
      status_[j] = static_cast<VarStatus>(warm.status[j]);
    }
    basis_.assign(warm.basis.begin(), warm.basis.end());
    // Artificials stay pinned out of the problem.
    for (std::size_t k = 0; k < m_; ++k) {
      lb_[art_begin_ + k] = 0.0;
      ub_[art_begin_ + k] = 0.0;
      status_[art_begin_ + k] = VarStatus::kAtLower;
    }
    // Nonbasic values snap to the (possibly changed) bounds.
    xval_.assign(num_cols_, 0.0);
    for (std::size_t j = 0; j < num_cols_; ++j) {
      switch (status_[j]) {
        case VarStatus::kAtLower:
          if (!is_finite_bound(lb_[j])) return false;
          xval_[j] = lb_[j];
          break;
        case VarStatus::kAtUpper:
          if (!is_finite_bound(ub_[j])) return false;
          xval_[j] = ub_[j];
          break;
        case VarStatus::kFree:
          xval_[j] = 0.0;
          break;
        case VarStatus::kBasic:
          break;
      }
    }
    try {
      refactor();  // builds Binv from the warmed basis, computes x_B
    } catch (const std::exception&) {
      return false;
    }
    // The warmed point must be primal feasible for a pure phase-II solve.
    for (std::size_t i = 0; i < m_; ++i) {
      const int b = basis_[i];
      if (xval_[b] < lb_[b] - opt_.primal_tol ||
          xval_[b] > ub_[b] + opt_.primal_tol) {
        return false;
      }
    }
    return true;
  }

  // ---- inner loop ----------------------------------------------------------

  static SolveStatus stop_status(util::StopReason reason) {
    return reason == util::StopReason::kCancelled
               ? SolveStatus::kCancelled
               : SolveStatus::kDeadlineExceeded;
  }

  /// Runs the simplex loop to optimality for the given cost vector.
  /// Returns false if the iteration limit / deadline / cancellation hit
  /// (stop_status_ says which). Sets unbounded_ when the problem is
  /// unbounded for this cost (only possible in phase II).
  bool iterate(const std::vector<double>& cost) {
    degenerate_run_ = 0;
    unbounded_ = false;
    for (;;) {
      if (iterations_ >= max_iter_) {
        stop_status_ = SolveStatus::kIterationLimit;
        return false;
      }
      // Cancellation is one relaxed atomic load, checked every pivot;
      // the clock read is amortized over 16 pivots.
      if (opt_.deadline.cancelled()) {
        stop_status_ = SolveStatus::kCancelled;
        return false;
      }
      if ((iterations_ & 15) == 0 && opt_.deadline.expired()) {
        stop_status_ = SolveStatus::kDeadlineExceeded;
        return false;
      }
      ++iterations_;
      if (pivots_since_refactor_ >= opt_.refactor_interval) refactor();

      compute_duals(cost);
      const int q = price(cost);
      if (q < 0) return true;  // optimal for this cost

      const double dq = reduced_cost(cost, q);
      double dir = 0.0;
      switch (status_[q]) {
        case VarStatus::kAtLower:
          dir = 1.0;
          break;
        case VarStatus::kAtUpper:
          dir = -1.0;
          break;
        case VarStatus::kFree:
          dir = dq < 0.0 ? 1.0 : -1.0;
          break;
        case VarStatus::kBasic:
          throw std::logic_error("basic column priced");
      }

      ftran(q);  // w_ = Binv * A_q

      // Ratio test: the entering variable moves by t >= 0 in direction dir;
      // basic variable at position i moves by -t * dir * w_[i].
      double t_best = kInfinity;
      int leave_pos = -1;
      double leave_piv = 0.0;
      for (std::size_t i = 0; i < m_; ++i) {
        const double wd = dir * w_[i];
        const int b = basis_[i];
        double t_i = kInfinity;
        if (wd > opt_.pivot_tol) {
          if (is_finite_bound(lb_[b])) t_i = (xval_[b] - lb_[b]) / wd;
        } else if (wd < -opt_.pivot_tol) {
          if (is_finite_bound(ub_[b])) t_i = (ub_[b] - xval_[b]) / (-wd);
        } else {
          continue;
        }
        if (t_i < -opt_.primal_tol) t_i = 0.0;
        t_i = std::max(t_i, 0.0);
        const bool better =
            bland_ ? (t_i < t_best - 1e-12 ||
                      (leave_pos >= 0 && t_i <= t_best + 1e-12 &&
                       basis_[i] < basis_[leave_pos]))
                   : (t_i < t_best - 1e-12 ||
                      (t_i <= t_best + 1e-12 &&
                       std::abs(w_[i]) > std::abs(leave_piv)));
        if (leave_pos < 0 ? t_i < t_best : better) {
          t_best = t_i;
          leave_pos = static_cast<int>(i);
          leave_piv = w_[i];
        }
      }

      // Bound-flip distance of the entering variable itself.
      double t_flip = kInfinity;
      if (is_finite_bound(lb_[q]) && is_finite_bound(ub_[q])) {
        t_flip = ub_[q] - lb_[q];
      }

      const double t = std::min(t_best, t_flip);
      if (t >= kInfinity / 2) {
        unbounded_ = true;
        return true;
      }

      // Move the basic variables.
      if (t > 0.0) {
        for (std::size_t i = 0; i < m_; ++i) {
          if (w_[i] != 0.0) xval_[basis_[i]] -= t * dir * w_[i];
        }
      }

      if (t_flip <= t_best) {
        // Bound flip: no basis change.
        status_[q] = status_[q] == VarStatus::kAtLower ? VarStatus::kAtUpper
                                                       : VarStatus::kAtLower;
        xval_[q] =
            status_[q] == VarStatus::kAtLower ? lb_[q] : ub_[q];
        note_progress(t);
        continue;
      }

      // Pivot: q enters at position leave_pos, b leaves to a bound.
      const int b = basis_[leave_pos];
      const double wd = dir * w_[leave_pos];
      if (wd > 0.0) {
        status_[b] = VarStatus::kAtLower;
        xval_[b] = lb_[b];
      } else {
        status_[b] = VarStatus::kAtUpper;
        xval_[b] = ub_[b];
      }
      xval_[q] = nonbasic_value(q) + dir * t;
      status_[q] = VarStatus::kBasic;
      basis_[leave_pos] = q;
      update_binv(leave_pos);
      ++pivots_since_refactor_;
      note_progress(t);
    }
  }

  double nonbasic_value(int j) const {
    // Value the entering variable had while nonbasic. For free variables
    // this is the stored value (0 until first entry).
    return xval_[j];
  }

  void note_progress(double step) {
    if (step > opt_.primal_tol) {
      degenerate_run_ = 0;
      if (opt_.bland_trigger > 0) bland_ = false;
    } else {
      ++degenerate_pivots_;
      if (++degenerate_run_ >= opt_.bland_trigger) {
        bland_ = true;
        bland_used_ = true;
      }
    }
  }

  // y = c_B^T * Binv
  void compute_duals(const std::vector<double>& cost) {
    y_.assign(m_, 0.0);
    for (std::size_t k = 0; k < m_; ++k) {
      const double cb = cost[basis_[k]];
      if (cb == 0.0) continue;
      const double* row = &binv_[k * m_];
      for (std::size_t i = 0; i < m_; ++i) y_[i] += cb * row[i];
    }
  }

  double reduced_cost(const std::vector<double>& cost, int j) const {
    double d = cost[j];
    for (std::size_t k = col_start_[j]; k < col_start_[j + 1]; ++k) {
      d -= y_[col_row_[k]] * col_val_[k];
    }
    return d;
  }

  /// Chooses the entering column, or -1 at optimality. Dantzig rule with a
  /// Bland fallback engaged by note_progress().
  int price(const std::vector<double>& cost) {
    int best = -1;
    double best_viol = opt_.dual_tol;
    for (std::size_t j = 0; j < num_cols_; ++j) {
      const VarStatus st = status_[j];
      if (st == VarStatus::kBasic) continue;
      if (ub_[j] - lb_[j] < opt_.primal_tol && st != VarStatus::kFree) {
        continue;  // fixed variable can never improve
      }
      const double d = reduced_cost(cost, j);
      double viol = 0.0;
      if (st == VarStatus::kAtLower) {
        viol = -d;
      } else if (st == VarStatus::kAtUpper) {
        viol = d;
      } else {  // free
        viol = std::abs(d);
      }
      if (viol > best_viol) {
        if (bland_) return static_cast<int>(j);
        best_viol = viol;
        best = static_cast<int>(j);
      }
    }
    return best;
  }

  // w = Binv * A_q
  void ftran(int q) {
    w_.assign(m_, 0.0);
    for (std::size_t k = col_start_[q]; k < col_start_[q + 1]; ++k) {
      const int row = col_row_[k];
      const double v = col_val_[k];
      for (std::size_t i = 0; i < m_; ++i) {
        w_[i] += binv_[i * m_ + row] * v;
      }
    }
  }

  /// Product-form update after basis position r changed to a column whose
  /// ftran result is in w_.
  void update_binv(int r) {
    const double piv = w_[r];
    double* rrow = &binv_[static_cast<std::size_t>(r) * m_];
    const double inv = 1.0 / piv;
    for (std::size_t i = 0; i < m_; ++i) rrow[i] *= inv;
    for (std::size_t k = 0; k < m_; ++k) {
      if (static_cast<int>(k) == r) continue;
      const double f = w_[k];
      if (f == 0.0) continue;
      double* krow = &binv_[k * m_];
      for (std::size_t i = 0; i < m_; ++i) krow[i] -= f * rrow[i];
    }
  }

  /// Rebuilds Binv by Gauss-Jordan with partial pivoting and recomputes the
  /// basic values exactly from the nonbasic point.
  void refactor() {
    pivots_since_refactor_ = 0;
    ++refactor_count_;
    // Dense B from basis columns.
    std::vector<double> B(m_ * m_, 0.0);
    for (std::size_t p = 0; p < m_; ++p) {
      const int j = basis_[p];
      for (std::size_t k = col_start_[j]; k < col_start_[j + 1]; ++k) {
        B[static_cast<std::size_t>(col_row_[k]) * m_ + p] = col_val_[k];
      }
    }
    // Invert [B | I] -> [I | Binv].
    std::vector<double> inv(m_ * m_, 0.0);
    for (std::size_t i = 0; i < m_; ++i) inv[i * m_ + i] = 1.0;
    for (std::size_t col = 0; col < m_; ++col) {
      std::size_t piv_row = col;
      double piv = std::abs(B[col * m_ + col]);
      for (std::size_t r = col + 1; r < m_; ++r) {
        if (std::abs(B[r * m_ + col]) > piv) {
          piv = std::abs(B[r * m_ + col]);
          piv_row = r;
        }
      }
      if (piv < 1e-12) throw std::runtime_error("singular simplex basis");
      if (piv_row != col) {
        for (std::size_t c = 0; c < m_; ++c) {
          std::swap(B[piv_row * m_ + c], B[col * m_ + c]);
          std::swap(inv[piv_row * m_ + c], inv[col * m_ + c]);
        }
      }
      const double p = B[col * m_ + col];
      const double ip = 1.0 / p;
      for (std::size_t c = 0; c < m_; ++c) {
        B[col * m_ + c] *= ip;
        inv[col * m_ + c] *= ip;
      }
      for (std::size_t r = 0; r < m_; ++r) {
        if (r == col) continue;
        const double f = B[r * m_ + col];
        if (f == 0.0) continue;
        for (std::size_t c = 0; c < m_; ++c) {
          B[r * m_ + c] -= f * B[col * m_ + c];
          inv[r * m_ + c] -= f * inv[col * m_ + c];
        }
      }
    }
    binv_ = std::move(inv);

    // Recompute basic values: x_B = Binv * (0 - N x_N).
    std::vector<double> rhs(m_, 0.0);
    for (std::size_t j = 0; j < num_cols_; ++j) {
      if (status_[j] == VarStatus::kBasic) continue;
      const double v = xval_[j];
      if (v == 0.0) continue;
      for (std::size_t k = col_start_[j]; k < col_start_[j + 1]; ++k) {
        rhs[col_row_[k]] -= col_val_[k] * v;
      }
    }
    for (std::size_t i = 0; i < m_; ++i) {
      double acc = 0.0;
      const double* row = &binv_[i * m_];
      for (std::size_t r = 0; r < m_; ++r) acc += row[r] * rhs[r];
      xval_[basis_[i]] = acc;
    }
  }

  // ---- result --------------------------------------------------------------

  Solution solve_unconstrained() {
    // No constraints: each variable independently goes to its best bound.
    Solution sol;
    sol.values.resize(n_);
    const double mult = model_.sense() == Sense::kMaximize ? -1.0 : 1.0;
    for (std::size_t j = 0; j < n_; ++j) {
      const double c = mult * model_.objective_coeff(static_cast<int>(j));
      double v;
      if (c > 0) {
        if (!is_finite_bound(model_.variable_lb(static_cast<int>(j)))) {
          sol.status = SolveStatus::kUnbounded;
          return sol;
        }
        v = model_.variable_lb(static_cast<int>(j));
      } else if (c < 0) {
        if (!is_finite_bound(model_.variable_ub(static_cast<int>(j)))) {
          sol.status = SolveStatus::kUnbounded;
          return sol;
        }
        v = model_.variable_ub(static_cast<int>(j));
      } else {
        const double lo = model_.variable_lb(static_cast<int>(j));
        v = is_finite_bound(lo) ? lo : 0.0;
        if (!is_finite_bound(lo) &&
            is_finite_bound(model_.variable_ub(static_cast<int>(j)))) {
          v = model_.variable_ub(static_cast<int>(j));
        }
      }
      sol.values[j] = v;
    }
    sol.status = SolveStatus::kOptimal;
    sol.objective = model_.objective_value(sol.values);
    sol.reduced_costs.assign(n_, 0.0);
    for (std::size_t j = 0; j < n_; ++j) {
      sol.reduced_costs[j] = mult * model_.objective_coeff(static_cast<int>(j));
    }
    return sol;
  }

  Solution finish(SolveStatus status, WarmStart* warm = nullptr) {
    Solution sol;
    sol.status = status;
    sol.iterations = iterations_;
    sol.degenerate_pivots = degenerate_pivots_;
    sol.refactor_count = refactor_count_;
    sol.bland_engaged = bland_used_;
    // Deadline/cancel exits can land here before initialize_point()
    // sized xval_ (the whole point of the O(1) pre-check); pad with
    // zeros instead of walking off the end of an empty vector.
    const std::size_t have = std::min(xval_.size(), n_);
    sol.values.assign(xval_.begin(), xval_.begin() + have);
    sol.values.resize(n_, 0.0);
    if (status == SolveStatus::kOptimal) {
      sol.objective = model_.objective_value(sol.values);
      compute_duals(cost_);
      sol.duals = y_;
      sol.reduced_costs.resize(n_);
      for (std::size_t j = 0; j < n_; ++j) {
        sol.reduced_costs[j] = reduced_cost(cost_, static_cast<int>(j));
      }
      sol.primal_infeasibility = model_.max_violation(sol.values);
      if (sol.primal_infeasibility > 1e-5) {
        sol.status = SolveStatus::kNumericalError;
      }
    }
    // Export the basis only for a verified-optimal finish; a poisoned
    // snapshot would sabotage the caller's next warm solve.
    if (warm != nullptr) {
      if (sol.status == SolveStatus::kOptimal) {
        warm->status.assign(num_cols_, 0);
        for (std::size_t j = 0; j < num_cols_; ++j) {
          warm->status[j] = static_cast<char>(status_[j]);
        }
        warm->basis.assign(basis_.begin(), basis_.end());
      } else {
        warm->clear();
      }
    }
    return sol;
  }

  const Model& model_;
  SimplexOptions opt_;
  std::size_t m_;
  std::size_t n_;
  std::size_t num_cols_ = 0;
  std::size_t slack_begin_ = 0;
  std::size_t art_begin_ = 0;

  // Column-compressed matrix over all columns.
  std::vector<std::size_t> col_start_;
  std::vector<int> col_row_;
  std::vector<double> col_val_;

  std::vector<double> lb_, ub_, cost_, phase1_cost_;
  std::vector<double> xval_;
  std::vector<VarStatus> status_;
  std::vector<int> basis_;
  std::vector<double> binv_;  // dense m x m, row-major
  std::vector<double> y_, w_;

  long iterations_ = 0;
  long max_iter_ = 0;
  int pivots_since_refactor_ = 0;
  int degenerate_run_ = 0;
  long degenerate_pivots_ = 0;
  long refactor_count_ = 0;
  bool bland_ = false;
  bool bland_used_ = false;
  bool unbounded_ = false;
  /// Why iterate() returned false (iteration limit, deadline, cancel).
  SolveStatus stop_status_ = SolveStatus::kIterationLimit;
};

}  // namespace

Solution solve_lp(const Model& model, const SimplexOptions& options) {
  return solve_lp(model, options, nullptr);
}

Solution solve_lp(const Model& model, const SimplexOptions& options,
                  WarmStart* warm) {
  Simplex solver(model, options);
  Solution sol = solver.run(warm);
  if (sol.status == SolveStatus::kNumericalError &&
      options.deadline.stop_reason() == util::StopReason::kNone) {
    // Product-form drift occasionally exceeds the feasibility check on
    // long solves; refactoring far more often is slower but much more
    // accurate, so retry once in high-accuracy mode.
    SimplexOptions retry = options;
    retry.refactor_interval = 20;
    retry.pivot_tol = std::max(options.pivot_tol, 1e-8);
    Simplex careful(model, retry);
    sol = careful.run(warm);  // retry cold: run() ignores a cleared warm
  }
  return sol;
}

}  // namespace powerlim::lp
