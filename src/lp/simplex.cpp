#include "lp/simplex.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "lp/kernels.h"
#include "lp/sparse_lu.h"

namespace powerlim::lp {

const char* to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal:
      return "optimal";
    case SolveStatus::kInfeasible:
      return "infeasible";
    case SolveStatus::kUnbounded:
      return "unbounded";
    case SolveStatus::kIterationLimit:
      return "iteration-limit";
    case SolveStatus::kNumericalError:
      return "numerical-error";
    case SolveStatus::kDeadlineExceeded:
      return "deadline-exceeded";
    case SolveStatus::kCancelled:
      return "cancelled";
  }
  return "?";
}

const char* to_string(BasisBackend backend) {
  switch (backend) {
    case BasisBackend::kDense:
      return "dense";
    case BasisBackend::kSparse:
      return "sparse";
  }
  return "?";
}

namespace {

enum class VarStatus : char { kAtLower, kAtUpper, kBasic, kFree };

/// Eta pivots below this magnitude are refused by the sparse backend:
/// a 1/piv that large amplifies drift faster than the refactorization
/// interval can repair, so the update is replaced by an immediate
/// refactorization of the (already-updated) basis.
constexpr double kEtaStabilityTol = 1e-7;

/// Pivot magnitude below which a basis is declared singular (shared by
/// both backends; the dense Gauss-Jordan historically used 1e-12).
constexpr double kSingularTol = 1e-12;

/// Relative margin under which two pricing violations / ratio-test pivot
/// magnitudes are treated as tied, with the earlier index winning.
/// Symmetric traces produce columns whose reduced costs are *exactly*
/// equal in real arithmetic; the two backends (and warm vs cold pivot
/// paths within one backend) compute them with different rounding, so a
/// strict comparison would break such ties by +-1ulp noise and send
/// otherwise-identical solves to different optimal bases. The sweep
/// pipeline's byte-identity contract (warm serial == cold worker) needs
/// tie-breaks that noise cannot flip.
constexpr double kTieRel = 1e-9;

/// RAII wall-clock bucket: adds the elapsed nanoseconds to *sink on
/// destruction. A null sink (timing disabled) costs two pointer tests
/// and no clock reads - SimplexOptions::collect_timing stays free for
/// production solves.
class ScopedTimer {
 public:
  ScopedTimer(bool enabled, double* sink) : sink_(enabled ? sink : nullptr) {
    if (sink_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (sink_ != nullptr) {
      *sink_ += std::chrono::duration<double, std::nano>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* sink_;
  std::chrono::steady_clock::time_point start_;
};

/// The computational form:  A_full x = 0 with per-column bounds, where
/// A_full = [A_structural | -I_slack | sigma*I_artificial]. Row right-hand
/// sides are folded into slack bounds, so b == 0 throughout.
///
/// SimplexCore owns everything backend-independent - the computational
/// columns, the two-phase driver, warm starts, the ratio test, the
/// anti-cycling state machine, and deadline/cancellation plumbing. The
/// basis representation is behind five hooks (refactor, duals, FTRAN,
/// pivot update, pricing) with a dense explicit-inverse and a sparse
/// LU+eta implementation below. Both backends share the exact same
/// pivot-acceptance logic, so they differ only in arithmetic path, never
/// in what counts as optimal.
class SimplexCore {
 public:
  SimplexCore(const Model& model, const SimplexOptions& opt)
      : model_(model),
        opt_(opt),
        m_(model.num_constraints()),
        n_(model.num_variables()) {
    build_columns();
  }
  virtual ~SimplexCore() = default;

  Solution run(WarmStart* warm = nullptr) {
    // An already-dead deadline exits before any setup work: the retry
    // ladder relies on exhausted budgets failing in O(1).
    const util::StopReason pre = opt_.deadline.stop_reason();
    if (pre != util::StopReason::kNone) {
      return finish(stop_status(pre), warm);
    }
    if (m_ == 0) {
      return solve_unconstrained();
    }
    if (opt_.bland_trigger <= 0) {
      bland_ = true;
      bland_used_ = true;
    }
    max_iter_ = opt_.max_iterations > 0
                    ? opt_.max_iterations
                    : 200 * static_cast<long>(m_ + n_) + 2000;

    const bool warmed = warm != nullptr && try_warm_init(*warm);
    if (!warmed) {
      const SolveStatus p1 = phase_one();
      if (p1 != SolveStatus::kOptimal) return finish(p1, warm);
    }

    // Phase II with drift verification: after the loop converges,
    // refactorize to recompute the point *exactly*; a catastrophic pivot
    // (tiny pivot element accepted by the ratio test) shows up here as
    // basics out of bounds or as newly improving candidates, both of
    // which we repair instead of returning a corrupted answer.
    for (int attempt = 0;; ++attempt) {
      if (!iterate(cost_)) return finish(stop_status_, warm);
      if (unbounded_) return finish(SolveStatus::kUnbounded, warm);
      refactor();
      if (!basics_within_bounds()) {
        if (attempt >= 2) return finish(SolveStatus::kNumericalError, warm);
        const SolveStatus p1 = phase_one();  // full cold restart
        if (p1 != SolveStatus::kOptimal) return finish(p1, warm);
        continue;
      }
      compute_duals(cost_);
      if (price(cost_) < 0) break;  // optimal at the exact point
      if (attempt >= 4) return finish(SolveStatus::kNumericalError, warm);
    }
    return finish(SolveStatus::kOptimal, warm);
  }

 protected:
  // ---- backend hooks -------------------------------------------------------

  /// Seeds the basis representation for the crash basis just laid down by
  /// initialize_point() (a signed diagonal: slack -1 or artificial -+1).
  virtual void on_basis_initialized() = 0;

  /// Rebuilds the basis representation exactly from basis_ and recomputes
  /// the basic values from the nonbasic point. Resets
  /// pivots_since_refactor_ and counts into refactor_count_. Throws
  /// std::runtime_error on a singular basis.
  virtual void refactor() = 0;

  /// y_ := duals for `cost` at the current basis (indexed by row).
  virtual void compute_duals(const std::vector<double>& cost) = 0;

  /// w_ := B^{-1} A_q (indexed by basis position) and wnz_ := the sorted
  /// positions where w_ is exactly nonzero.
  virtual void ftran_entering(int q) = 0;

  /// Absorbs the pivot that just put `entering` at basis position r
  /// (replacing `leaving`) into the basis representation; w_/wnz_ still
  /// hold the entering column's FTRAN result.
  virtual void pivot_update(int r, int entering, int leaving) = 0;

  /// True when the representation wants a refactorization before the
  /// next pivot (interval; sparse adds the eta-growth trigger).
  virtual bool should_refactor() const {
    return pivots_since_refactor_ >= opt_.refactor_interval;
  }

  /// Chooses the entering column, or -1 at optimality. This base
  /// implementation is the full Dantzig scan with a Bland fallback
  /// engaged by note_progress(); the sparse backend layers candidate-list
  /// partial pricing on top and delegates back here under Bland's rule.
  virtual int price(const std::vector<double>& cost) {
    ScopedTimer t(opt_.collect_timing, &stats_.pricing_ns);
    int best = -1;
    double best_viol = opt_.dual_tol;
    for (std::size_t j = 0; j < num_cols_; ++j) {
      const double viol = violation(cost, static_cast<int>(j));
      if (viol <= opt_.dual_tol) continue;
      if (bland_) return static_cast<int>(j);
      // Strictly-better-by-margin, so near-ties keep the earlier index
      // (see kTieRel).
      if (best < 0 || viol > best_viol * (1.0 + kTieRel)) {
        best_viol = viol;
        best = static_cast<int>(j);
      }
    }
    return best;
  }

  // ---- setup -------------------------------------------------------------

  void build_columns() {
    const std::size_t total = n_ + m_ + m_;  // structural, slack, artificial
    col_start_.assign(total + 1, 0);
    lb_.resize(total);
    ub_.resize(total);
    cost_.assign(total, 0.0);
    phase1_cost_.assign(total, 0.0);

    const double sense_mult =
        model_.sense() == Sense::kMaximize ? -1.0 : 1.0;
    for (std::size_t j = 0; j < n_; ++j) {
      lb_[j] = model_.variable_lb(static_cast<int>(j));
      ub_[j] = model_.variable_ub(static_cast<int>(j));
      cost_[j] = sense_mult * model_.objective_coeff(static_cast<int>(j));
    }
    // Build CSC for structural columns from the model's row storage.
    std::vector<std::size_t> count(n_, 0);
    for (std::size_t i = 0; i < m_; ++i) {
      const Model::RowView r = model_.row(static_cast<int>(i));
      for (std::size_t k = 0; k < r.size; ++k) ++count[r.idx[k]];
    }
    for (std::size_t j = 0; j < n_; ++j) {
      col_start_[j + 1] = col_start_[j] + count[j];
    }
    // Slack and artificial columns are singletons.
    for (std::size_t j = n_; j < total; ++j) {
      col_start_[j + 1] = col_start_[j] + 1;
    }
    col_row_.resize(col_start_[total]);
    col_val_.resize(col_start_[total]);
    std::vector<std::size_t> fill(n_, 0);
    for (std::size_t i = 0; i < m_; ++i) {
      const Model::RowView r = model_.row(static_cast<int>(i));
      for (std::size_t k = 0; k < r.size; ++k) {
        const int j = r.idx[k];
        const std::size_t pos = col_start_[j] + fill[j]++;
        col_row_[pos] = static_cast<int>(i);
        col_val_[pos] = r.coeff[k];
      }
    }
    slack_begin_ = n_;
    art_begin_ = n_ + m_;
    for (std::size_t i = 0; i < m_; ++i) {
      // Slack column: a'x - s = 0 with s in [row_lb, row_ub].
      col_row_[col_start_[slack_begin_ + i]] = static_cast<int>(i);
      col_val_[col_start_[slack_begin_ + i]] = -1.0;
      lb_[slack_begin_ + i] = model_.row_lb(static_cast<int>(i));
      ub_[slack_begin_ + i] = model_.row_ub(static_cast<int>(i));
      // Artificial sign is fixed in initialize_point().
      col_row_[col_start_[art_begin_ + i]] = static_cast<int>(i);
      col_val_[col_start_[art_begin_ + i]] = 1.0;
      lb_[art_begin_ + i] = 0.0;
      ub_[art_begin_ + i] = kInfinity;
      phase1_cost_[art_begin_ + i] = 1.0;
    }
    num_cols_ = total;
  }

  /// Places structural and slack variables at their nearest finite bound
  /// (0 for free variables), then sizes the artificial basis to absorb the
  /// residual of every row.
  void initialize_point() {
    // Re-arm the artificials. A previous phase I (or a warm init) pinned
    // their bounds to [0,0] and possibly flipped their column signs; a
    // restart that kept those pins would walk a different pivot path than
    // a fresh cold solve, and the drift-verification loop depends on its
    // cold restart reproducing the fresh-solve result exactly.
    for (std::size_t k = 0; k < m_; ++k) {
      lb_[art_begin_ + k] = 0.0;
      ub_[art_begin_ + k] = kInfinity;
      col_val_[col_start_[art_begin_ + k]] = 1.0;
    }
    xval_.assign(num_cols_, 0.0);
    status_.assign(num_cols_, VarStatus::kAtLower);
    for (std::size_t j = 0; j < art_begin_; ++j) {
      const bool lo = is_finite_bound(lb_[j]);
      const bool hi = is_finite_bound(ub_[j]);
      if (lo && hi) {
        // Prefer the bound with smaller magnitude; ties go low.
        if (std::abs(ub_[j]) < std::abs(lb_[j])) {
          status_[j] = VarStatus::kAtUpper;
          xval_[j] = ub_[j];
        } else {
          status_[j] = VarStatus::kAtLower;
          xval_[j] = lb_[j];
        }
      } else if (lo) {
        status_[j] = VarStatus::kAtLower;
        xval_[j] = lb_[j];
      } else if (hi) {
        status_[j] = VarStatus::kAtUpper;
        xval_[j] = ub_[j];
      } else {
        status_[j] = VarStatus::kFree;
        xval_[j] = 0.0;
      }
    }
    // Row activities at the initial nonbasic point (slacks not counted).
    std::vector<double> activity(m_, 0.0);
    for (std::size_t j = 0; j < slack_begin_; ++j) {
      if (xval_[j] == 0.0) continue;
      for (std::size_t k = col_start_[j]; k < col_start_[j + 1]; ++k) {
        activity[col_row_[k]] += col_val_[k] * xval_[j];
      }
    }
    // Mixed crash basis: rows whose activity already fits inside the slack
    // bounds start with their slack basic (feasible, no phase-1 work);
    // only violated rows get an artificial. This typically leaves phase I
    // with a handful of pivots instead of one per row.
    basis_.resize(m_);
    for (std::size_t i = 0; i < m_; ++i) {
      const std::size_t slack = slack_begin_ + i;
      const std::size_t art = art_begin_ + i;
      if (activity[i] >= lb_[slack] - 1e-12 &&
          activity[i] <= ub_[slack] + 1e-12) {
        // Slack basic at the row activity; artificial pinned at zero.
        basis_[i] = static_cast<int>(slack);
        status_[slack] = VarStatus::kBasic;
        xval_[slack] = activity[i];
        lb_[art] = ub_[art] = 0.0;
        xval_[art] = 0.0;
        status_[art] = VarStatus::kAtLower;
      } else {
        // Slack at its nearest bound; artificial absorbs the residual.
        const double sbar =
            activity[i] < lb_[slack] ? lb_[slack] : ub_[slack];
        status_[slack] = activity[i] < lb_[slack] ? VarStatus::kAtLower
                                                  : VarStatus::kAtUpper;
        xval_[slack] = sbar;
        const double resid = activity[i] - sbar;  // a'x - s
        const double sign = resid < 0.0 ? -1.0 : 1.0;
        col_val_[col_start_[art]] = -sign;  // so that art = |resid| >= 0
        basis_[i] = static_cast<int>(art);
        status_[art] = VarStatus::kBasic;
        xval_[art] = std::abs(resid);
      }
    }
    pivots_since_refactor_ = 0;
    on_basis_initialized();
  }

  /// Cold start: crash basis + phase I. Returns kOptimal when a feasible
  /// basis was reached.
  SolveStatus phase_one() {
    initialize_point();
    if (!iterate(phase1_cost_)) return stop_status_;
    double art_sum = 0.0;
    for (std::size_t k = 0; k < m_; ++k) art_sum += xval_[art_begin_ + k];
    if (art_sum > 1e-6) return SolveStatus::kInfeasible;
    // Pin artificials at zero so phase II can never reuse them.
    for (std::size_t k = 0; k < m_; ++k) {
      lb_[art_begin_ + k] = 0.0;
      ub_[art_begin_ + k] = 0.0;
      xval_[art_begin_ + k] = 0.0;
    }
    return SolveStatus::kOptimal;
  }

  /// All basic variables within their bounds (called right after an exact
  /// refactorization).
  bool basics_within_bounds() const {
    for (std::size_t i = 0; i < m_; ++i) {
      const int b = basis_[i];
      if (xval_[b] < lb_[b] - 10 * opt_.primal_tol ||
          xval_[b] > ub_[b] + 10 * opt_.primal_tol) {
        return false;
      }
    }
    return true;
  }

  /// Seeds statuses/basis from a snapshot of a structurally identical
  /// model and verifies primal feasibility under the *current* bounds.
  /// Returns false (leaving state untouched for a cold start) when the
  /// snapshot does not fit or the warmed point is infeasible.
  bool try_warm_init(const WarmStart& warm) {
    if (!warm.valid() || warm.status.size() != num_cols_ ||
        warm.basis.size() != m_) {
      return false;
    }
    // Reject bases containing artificials: their column signs are
    // solve-specific.
    for (int b : warm.basis) {
      if (b < 0 || b >= static_cast<int>(num_cols_) ||
          b >= static_cast<int>(art_begin_)) {
        return false;
      }
    }
    status_.resize(num_cols_);
    for (std::size_t j = 0; j < num_cols_; ++j) {
      status_[j] = static_cast<VarStatus>(warm.status[j]);
    }
    basis_.assign(warm.basis.begin(), warm.basis.end());
    // Artificials stay pinned out of the problem.
    for (std::size_t k = 0; k < m_; ++k) {
      lb_[art_begin_ + k] = 0.0;
      ub_[art_begin_ + k] = 0.0;
      status_[art_begin_ + k] = VarStatus::kAtLower;
    }
    // Nonbasic values snap to the (possibly changed) bounds.
    xval_.assign(num_cols_, 0.0);
    for (std::size_t j = 0; j < num_cols_; ++j) {
      switch (status_[j]) {
        case VarStatus::kAtLower:
          if (!is_finite_bound(lb_[j])) return false;
          xval_[j] = lb_[j];
          break;
        case VarStatus::kAtUpper:
          if (!is_finite_bound(ub_[j])) return false;
          xval_[j] = ub_[j];
          break;
        case VarStatus::kFree:
          xval_[j] = 0.0;
          break;
        case VarStatus::kBasic:
          break;
      }
    }
    try {
      refactor();  // rebuilds the basis representation, computes x_B
    } catch (const std::exception&) {
      return false;
    }
    // The warmed point must be primal feasible for a pure phase-II solve.
    for (std::size_t i = 0; i < m_; ++i) {
      const int b = basis_[i];
      if (xval_[b] < lb_[b] - opt_.primal_tol ||
          xval_[b] > ub_[b] + opt_.primal_tol) {
        return false;
      }
    }
    return true;
  }

  // ---- inner loop ----------------------------------------------------------

  static SolveStatus stop_status(util::StopReason reason) {
    return reason == util::StopReason::kCancelled
               ? SolveStatus::kCancelled
               : SolveStatus::kDeadlineExceeded;
  }

  /// Runs the simplex loop to optimality for the given cost vector.
  /// Returns false if the iteration limit / deadline / cancellation hit
  /// (stop_status_ says which). Sets unbounded_ when the problem is
  /// unbounded for this cost (only possible in phase II).
  bool iterate(const std::vector<double>& cost) {
    degenerate_run_ = 0;
    unbounded_ = false;
    for (;;) {
      if (iterations_ >= max_iter_) {
        stop_status_ = SolveStatus::kIterationLimit;
        return false;
      }
      // Cancellation is one relaxed atomic load, checked every pivot;
      // the clock read is amortized over 16 pivots.
      if (opt_.deadline.cancelled()) {
        stop_status_ = SolveStatus::kCancelled;
        return false;
      }
      if ((iterations_ & 15) == 0 && opt_.deadline.expired()) {
        stop_status_ = SolveStatus::kDeadlineExceeded;
        return false;
      }
      ++iterations_;
      if (should_refactor()) refactor();

      compute_duals(cost);
      const int q = price(cost);
      if (q < 0) return true;  // optimal for this cost

      const double dq = reduced_cost(cost, q);
      double dir = 0.0;
      switch (status_[q]) {
        case VarStatus::kAtLower:
          dir = 1.0;
          break;
        case VarStatus::kAtUpper:
          dir = -1.0;
          break;
        case VarStatus::kFree:
          dir = dq < 0.0 ? 1.0 : -1.0;
          break;
        case VarStatus::kBasic:
          throw std::logic_error("basic column priced");
      }

      ftran_entering(q);  // w_ = Binv * A_q, wnz_ = its support

      // Ratio test: the entering variable moves by t >= 0 in direction dir;
      // basic variable at position i moves by -t * dir * w_[i].
      double t_best = kInfinity;
      int leave_pos = -1;
      double leave_piv = 0.0;
      {
        ScopedTimer rt(opt_.collect_timing, &stats_.ratio_ns);
        for (const int i : wnz_) {
          const double wd = dir * w_[i];
          const int b = basis_[i];
          double t_i = kInfinity;
          if (wd > opt_.pivot_tol) {
            if (is_finite_bound(lb_[b])) t_i = (xval_[b] - lb_[b]) / wd;
          } else if (wd < -opt_.pivot_tol) {
            if (is_finite_bound(ub_[b])) t_i = (ub_[b] - xval_[b]) / (-wd);
          } else {
            continue;
          }
          if (t_i < -opt_.primal_tol) t_i = 0.0;
          t_i = std::max(t_i, 0.0);
          const bool better =
              bland_ ? (t_i < t_best - 1e-12 ||
                        (leave_pos >= 0 && t_i <= t_best + 1e-12 &&
                         basis_[i] < basis_[leave_pos]))
                     : (t_i < t_best - 1e-12 ||
                        (t_i <= t_best + 1e-12 &&
                         std::abs(w_[i]) >
                             std::abs(leave_piv) * (1.0 + kTieRel)));
          if (leave_pos < 0 ? t_i < t_best : better) {
            t_best = t_i;
            leave_pos = i;
            leave_piv = w_[i];
          }
        }
      }

      // Bound-flip distance of the entering variable itself.
      double t_flip = kInfinity;
      if (is_finite_bound(lb_[q]) && is_finite_bound(ub_[q])) {
        t_flip = ub_[q] - lb_[q];
      }

      const double t = std::min(t_best, t_flip);
      if (t >= kInfinity / 2) {
        unbounded_ = true;
        return true;
      }

      // Move the basic variables.
      if (t > 0.0) {
        for (const int i : wnz_) {
          if (w_[i] != 0.0) xval_[basis_[i]] -= t * dir * w_[i];
        }
      }

      if (t_flip <= t_best) {
        // Bound flip: no basis change.
        status_[q] = status_[q] == VarStatus::kAtLower ? VarStatus::kAtUpper
                                                       : VarStatus::kAtLower;
        xval_[q] =
            status_[q] == VarStatus::kAtLower ? lb_[q] : ub_[q];
        ++stats_.bound_flips;
        note_progress(t);
        continue;
      }

      // Pivot: q enters at position leave_pos, b leaves to a bound.
      const int b = basis_[leave_pos];
      const double wd = dir * w_[leave_pos];
      if (wd > 0.0) {
        status_[b] = VarStatus::kAtLower;
        xval_[b] = lb_[b];
      } else {
        status_[b] = VarStatus::kAtUpper;
        xval_[b] = ub_[b];
      }
      xval_[q] = nonbasic_value(q) + dir * t;
      status_[q] = VarStatus::kBasic;
      basis_[leave_pos] = q;
      pivot_update(leave_pos, q, b);
      ++pivots_since_refactor_;
      note_progress(t);
    }
  }

  double nonbasic_value(int j) const {
    // Value the entering variable had while nonbasic. For free variables
    // this is the stored value (0 until first entry).
    return xval_[j];
  }

  void note_progress(double step) {
    if (step > opt_.primal_tol) {
      degenerate_run_ = 0;
      if (opt_.bland_trigger > 0) bland_ = false;
    } else {
      ++degenerate_pivots_;
      if (++degenerate_run_ >= opt_.bland_trigger) {
        bland_ = true;
        bland_used_ = true;
      }
    }
  }

  double reduced_cost(const std::vector<double>& cost, int j) const {
    return cost[j] - kernels::gather_dot(col_start_[j + 1] - col_start_[j],
                                         col_row_.data() + col_start_[j],
                                         col_val_.data() + col_start_[j],
                                         y_.data());
  }

  /// How strongly column j wants to enter (0 when it does not qualify).
  double violation(const std::vector<double>& cost, int j) const {
    const VarStatus st = status_[j];
    if (st == VarStatus::kBasic) return 0.0;
    if (ub_[j] - lb_[j] < opt_.primal_tol && st != VarStatus::kFree) {
      return 0.0;  // fixed variable can never improve
    }
    const double d = reduced_cost(cost, j);
    if (st == VarStatus::kAtLower) return -d;
    if (st == VarStatus::kAtUpper) return d;
    return std::abs(d);  // free
  }

  // ---- result --------------------------------------------------------------

  Solution solve_unconstrained() {
    // No constraints: each variable independently goes to its best bound.
    Solution sol;
    sol.values.resize(n_);
    const double mult = model_.sense() == Sense::kMaximize ? -1.0 : 1.0;
    for (std::size_t j = 0; j < n_; ++j) {
      const double c = mult * model_.objective_coeff(static_cast<int>(j));
      double v;
      if (c > 0) {
        if (!is_finite_bound(model_.variable_lb(static_cast<int>(j)))) {
          sol.status = SolveStatus::kUnbounded;
          return sol;
        }
        v = model_.variable_lb(static_cast<int>(j));
      } else if (c < 0) {
        if (!is_finite_bound(model_.variable_ub(static_cast<int>(j)))) {
          sol.status = SolveStatus::kUnbounded;
          return sol;
        }
        v = model_.variable_ub(static_cast<int>(j));
      } else {
        const double lo = model_.variable_lb(static_cast<int>(j));
        v = is_finite_bound(lo) ? lo : 0.0;
        if (!is_finite_bound(lo) &&
            is_finite_bound(model_.variable_ub(static_cast<int>(j)))) {
          v = model_.variable_ub(static_cast<int>(j));
        }
      }
      sol.values[j] = v;
    }
    sol.status = SolveStatus::kOptimal;
    sol.objective = model_.objective_value(sol.values);
    sol.reduced_costs.assign(n_, 0.0);
    for (std::size_t j = 0; j < n_; ++j) {
      sol.reduced_costs[j] = mult * model_.objective_coeff(static_cast<int>(j));
    }
    sol.stats = stats_;
    return sol;
  }

  Solution finish(SolveStatus status, WarmStart* warm = nullptr) {
    Solution sol;
    sol.status = status;
    sol.iterations = iterations_;
    sol.degenerate_pivots = degenerate_pivots_;
    sol.refactor_count = refactor_count_;
    sol.bland_engaged = bland_used_;
    // Deadline/cancel exits can land here before initialize_point()
    // sized xval_ (the whole point of the O(1) pre-check); pad with
    // zeros instead of walking off the end of an empty vector.
    const std::size_t have = std::min(xval_.size(), n_);
    sol.values.assign(xval_.begin(), xval_.begin() + have);
    sol.values.resize(n_, 0.0);
    if (status == SolveStatus::kOptimal) {
      sol.objective = model_.objective_value(sol.values);
      compute_duals(cost_);
      sol.duals = y_;
      sol.reduced_costs.resize(n_);
      for (std::size_t j = 0; j < n_; ++j) {
        sol.reduced_costs[j] = reduced_cost(cost_, static_cast<int>(j));
      }
      sol.primal_infeasibility = model_.max_violation(sol.values);
      if (sol.primal_infeasibility > 1e-5) {
        sol.status = SolveStatus::kNumericalError;
      }
    }
    // Export the basis only for a verified-optimal finish; a poisoned
    // snapshot would sabotage the caller's next warm solve.
    if (warm != nullptr) {
      if (sol.status == SolveStatus::kOptimal) {
        warm->status.assign(num_cols_, 0);
        for (std::size_t j = 0; j < num_cols_; ++j) {
          warm->status[j] = static_cast<char>(status_[j]);
        }
        warm->basis.assign(basis_.begin(), basis_.end());
      } else {
        warm->clear();
      }
    }
    stats_.iterations = iterations_;
    stats_.degenerate_pivots = degenerate_pivots_;
    stats_.refactor_count = refactor_count_;
    stats_.bland_engaged = bland_used_;
    sol.stats = stats_;
    return sol;
  }

  const Model& model_;
  SimplexOptions opt_;
  std::size_t m_;
  std::size_t n_;
  std::size_t num_cols_ = 0;
  std::size_t slack_begin_ = 0;
  std::size_t art_begin_ = 0;

  // Column-compressed matrix over all columns.
  std::vector<std::size_t> col_start_;
  std::vector<int> col_row_;
  std::vector<double> col_val_;

  std::vector<double> lb_, ub_, cost_, phase1_cost_;
  std::vector<double> xval_;
  std::vector<VarStatus> status_;
  std::vector<int> basis_;
  std::vector<double> y_, w_;
  std::vector<int> wnz_;  // support of w_ (sorted basis positions)

  SimplexStats stats_;
  long iterations_ = 0;
  long max_iter_ = 0;
  int pivots_since_refactor_ = 0;
  int degenerate_run_ = 0;
  long degenerate_pivots_ = 0;
  long refactor_count_ = 0;
  bool bland_ = false;
  bool bland_used_ = false;
  bool unbounded_ = false;
  /// Why iterate() returned false (iteration limit, deadline, cancel).
  SolveStatus stop_status_ = SolveStatus::kIterationLimit;
};

/// The original backend: an explicit dense basis inverse, updated by
/// product form in O(m^2) per pivot and rebuilt by Gauss-Jordan in
/// O(m^3). Kept verbatim as the robustness fallback; pivot selection is
/// identical to the historical solver, so results are too.
class DenseSimplex final : public SimplexCore {
 public:
  DenseSimplex(const Model& model, const SimplexOptions& opt)
      : SimplexCore(model, opt) {
    stats_.backend = BasisBackend::kDense;
  }

 private:
  void on_basis_initialized() override {
    // The crash basis is a signed diagonal; its inverse is itself.
    binv_.assign(m_ * m_, 0.0);
    for (std::size_t i = 0; i < m_; ++i) {
      binv_[i * m_ + i] = col_val_[col_start_[basis_[i]]];
    }
  }

  // y = c_B^T * Binv
  void compute_duals(const std::vector<double>& cost) override {
    ScopedTimer t(opt_.collect_timing, &stats_.btran_ns);
    ++stats_.btran_calls;
    y_.assign(m_, 0.0);
    for (std::size_t k = 0; k < m_; ++k) {
      const double cb = cost[basis_[k]];
      if (cb == 0.0) continue;
      kernels::axpy(m_, cb, &binv_[k * m_], y_.data());
    }
  }

  // w = Binv * A_q
  void ftran_entering(int q) override {
    ScopedTimer t(opt_.collect_timing, &stats_.ftran_ns);
    ++stats_.ftran_calls;
    w_.assign(m_, 0.0);
    for (std::size_t k = col_start_[q]; k < col_start_[q + 1]; ++k) {
      const int row = col_row_[k];
      const double v = col_val_[k];
      for (std::size_t i = 0; i < m_; ++i) {
        w_[i] += binv_[i * m_ + row] * v;
      }
    }
    wnz_.clear();
    for (std::size_t i = 0; i < m_; ++i) {
      if (w_[i] != 0.0) wnz_.push_back(static_cast<int>(i));
    }
  }

  /// Product-form update folded straight into the explicit inverse.
  void pivot_update(int r, int /*entering*/, int /*leaving*/) override {
    ScopedTimer t(opt_.collect_timing, &stats_.update_ns);
    const double piv = w_[r];
    double* rrow = &binv_[static_cast<std::size_t>(r) * m_];
    kernels::scale(m_, 1.0 / piv, rrow);
    for (std::size_t k = 0; k < m_; ++k) {
      if (static_cast<int>(k) == r) continue;
      const double f = w_[k];
      if (f == 0.0) continue;
      kernels::axpy(m_, -f, rrow, &binv_[k * m_]);
    }
  }

  /// Rebuilds Binv by Gauss-Jordan with partial pivoting and recomputes the
  /// basic values exactly from the nonbasic point.
  void refactor() override {
    ScopedTimer t(opt_.collect_timing, &stats_.factor_ns);
    pivots_since_refactor_ = 0;
    ++refactor_count_;
    // Dense B from basis columns.
    std::vector<double> B(m_ * m_, 0.0);
    for (std::size_t p = 0; p < m_; ++p) {
      const int j = basis_[p];
      for (std::size_t k = col_start_[j]; k < col_start_[j + 1]; ++k) {
        B[static_cast<std::size_t>(col_row_[k]) * m_ + p] = col_val_[k];
      }
    }
    // Invert [B | I] -> [I | Binv].
    std::vector<double> inv(m_ * m_, 0.0);
    for (std::size_t i = 0; i < m_; ++i) inv[i * m_ + i] = 1.0;
    for (std::size_t col = 0; col < m_; ++col) {
      std::size_t piv_row = col;
      double piv = std::abs(B[col * m_ + col]);
      for (std::size_t r = col + 1; r < m_; ++r) {
        if (std::abs(B[r * m_ + col]) > piv) {
          piv = std::abs(B[r * m_ + col]);
          piv_row = r;
        }
      }
      if (piv < kSingularTol) {
        throw std::runtime_error("singular simplex basis");
      }
      if (piv_row != col) {
        for (std::size_t c = 0; c < m_; ++c) {
          std::swap(B[piv_row * m_ + c], B[col * m_ + c]);
          std::swap(inv[piv_row * m_ + c], inv[col * m_ + c]);
        }
      }
      const double p = B[col * m_ + col];
      const double ip = 1.0 / p;
      kernels::scale(m_, ip, &B[col * m_]);
      kernels::scale(m_, ip, &inv[col * m_]);
      for (std::size_t r = 0; r < m_; ++r) {
        if (r == col) continue;
        const double f = B[r * m_ + col];
        if (f == 0.0) continue;
        kernels::axpy(m_, -f, &B[col * m_], &B[r * m_]);
        kernels::axpy(m_, -f, &inv[col * m_], &inv[r * m_]);
      }
    }
    binv_ = std::move(inv);

    // Recompute basic values: x_B = Binv * (0 - N x_N).
    std::vector<double> rhs(m_, 0.0);
    for (std::size_t j = 0; j < num_cols_; ++j) {
      if (status_[j] == VarStatus::kBasic) continue;
      const double v = xval_[j];
      if (v == 0.0) continue;
      for (std::size_t k = col_start_[j]; k < col_start_[j + 1]; ++k) {
        rhs[col_row_[k]] -= col_val_[k] * v;
      }
    }
    for (std::size_t i = 0; i < m_; ++i) {
      xval_[basis_[i]] = kernels::dot(m_, &binv_[i * m_], rhs.data());
    }
  }

  std::vector<double> binv_;  // dense m x m, row-major
};

/// The production backend: sparse LU of the basis (sparse_lu.h) with
/// product-form eta updates and candidate-list partial pricing. Every
/// per-iteration step is O(nnz)-ish instead of O(m^2); the exactness
/// story is unchanged because the drift-verification loop and the
/// downstream certificate checker are backend-blind.
class SparseSimplex final : public SimplexCore {
 public:
  SparseSimplex(const Model& model, const SimplexOptions& opt)
      : SimplexCore(model, opt) {
    stats_.backend = BasisBackend::kSparse;
    // kAuto means Dantzig here too, NOT the candidate list: partial
    // pricing reaches different alternative-optimal vertices from warm
    // vs cold starts, and the sweep pipeline requires warm-started and
    // cold solves to agree byte-for-byte (serial sweeps warm-start,
    // parallel/distributed workers solve cold). Full Dantzig converges
    // to the same vertex from either start across the whole corpus, so
    // it is the default; the list and Devex are opt-in throughput modes
    // for callers that do not need cross-run identity.
    pricing_ = opt_.pricing == PricingRule::kAuto ? PricingRule::kDantzig
                                                  : opt_.pricing;
    if (pricing_ == PricingRule::kDevex) refw_.assign(num_cols_, 1.0);
  }

 private:
  void factor_current_basis() {
    if (!lu_.factor(col_start_.data(), col_row_.data(), col_val_.data(),
                    basis_.data(), m_, kSingularTol)) {
      throw std::runtime_error("singular simplex basis");
    }
    stats_.lu_fill_ratio = std::max(stats_.lu_fill_ratio, lu_.fill_ratio());
  }

  void on_basis_initialized() override {
    // The signed-diagonal crash basis factors with zero fill.
    factor_current_basis();
  }

  void refactor() override {
    ScopedTimer t(opt_.collect_timing, &stats_.factor_ns);
    pivots_since_refactor_ = 0;
    ++refactor_count_;
    factor_current_basis();
    // Recompute basic values exactly: x_B = B^{-1} * (0 - N x_N). The
    // eta file is empty right after factor(), so this is a pure LU solve.
    rhs_.assign(m_, 0.0);
    for (std::size_t j = 0; j < num_cols_; ++j) {
      if (status_[j] == VarStatus::kBasic) continue;
      const double v = xval_[j];
      if (v == 0.0) continue;
      kernels::scatter_axpy(col_start_[j + 1] - col_start_[j], -v,
                            col_row_.data() + col_start_[j],
                            col_val_.data() + col_start_[j], rhs_.data());
    }
    lu_.ftran(rhs_.data());
    for (std::size_t p = 0; p < m_; ++p) xval_[basis_[p]] = rhs_[p];
  }

  bool should_refactor() const override {
    return pivots_since_refactor_ >= opt_.refactor_interval ||
           static_cast<double>(lu_.eta_nonzeros()) >
               opt_.eta_growth_limit * static_cast<double>(m_);
  }

  // y^T = c_B^T B^{-1}, i.e. y = B^{-T} c_B.
  void compute_duals(const std::vector<double>& cost) override {
    ScopedTimer t(opt_.collect_timing, &stats_.btran_ns);
    ++stats_.btran_calls;
    y_.resize(m_);
    for (std::size_t p = 0; p < m_; ++p) y_[p] = cost[basis_[p]];
    lu_.btran(y_.data());
  }

  void ftran_entering(int q) override {
    ScopedTimer t(opt_.collect_timing, &stats_.ftran_ns);
    ++stats_.ftran_calls;
    // Clear only last iteration's support instead of O(m) memset.
    if (w_.size() != m_) {
      w_.assign(m_, 0.0);
    } else {
      for (const int i : wnz_) w_[i] = 0.0;
    }
    for (std::size_t k = col_start_[q]; k < col_start_[q + 1]; ++k) {
      w_[col_row_[k]] += col_val_[k];
    }
    lu_.ftran(w_.data());
    wnz_.clear();
    for (std::size_t i = 0; i < m_; ++i) {
      if (w_[i] != 0.0) wnz_.push_back(static_cast<int>(i));
    }
  }

  void pivot_update(int r, int entering, int leaving) override {
    ScopedTimer t(opt_.collect_timing, &stats_.update_ns);
    if (pricing_ == PricingRule::kDevex) {
      update_devex_weights(r, entering, leaving);
    }
    if (lu_.push_eta(r, w_.data(), wnz_.data(), wnz_.size(),
                     kEtaStabilityTol)) {
      stats_.eta_nonzeros = std::max(
          stats_.eta_nonzeros, static_cast<long>(lu_.eta_nonzeros()));
    } else {
      // Pivot too small to absorb as an eta: the basis already changed,
      // so rebuild the factorization before anyone ftran/btrans it.
      refactor();
    }
  }

  int price(const std::vector<double>& cost) override {
    // Bland's rule (anti-cycling) and an explicit Dantzig request both
    // need the full lowest-index / most-negative scan semantics of the
    // base implementation.
    if (bland_ || pricing_ == PricingRule::kDantzig) {
      return SimplexCore::price(cost);
    }
    ScopedTimer t(opt_.collect_timing, &stats_.pricing_ns);
    const std::size_t cap =
        opt_.candidate_list_size > 0
            ? static_cast<std::size_t>(opt_.candidate_list_size)
            : 64;
    // Re-price the surviving candidates first; most iterations are
    // served entirely from the list.
    int best = -1;
    double best_score = 0.0;
    std::size_t out = 0;
    for (const int j : cands_) {
      const double viol = violation(cost, j);
      if (viol <= opt_.dual_tol) continue;
      cands_[out++] = j;
      const double score = scored(j, viol);
      if (score > best_score || (score == best_score && best >= 0 && j < best)) {
        best_score = score;
        best = j;
      }
    }
    cands_.resize(out);
    if (best >= 0) return best;
    // List exhausted: refill from a rotating cursor. Declaring
    // optimality requires a full empty cycle, so partial pricing can
    // never terminate early on a non-optimal point.
    cands_.clear();
    for (std::size_t scanned = 0; scanned < num_cols_; ++scanned) {
      const int j = static_cast<int>(cursor_);
      cursor_ = cursor_ + 1 < num_cols_ ? cursor_ + 1 : 0;
      const double viol = violation(cost, j);
      if (viol <= opt_.dual_tol) continue;
      cands_.push_back(j);
      const double score = scored(j, viol);
      if (score > best_score || (score == best_score && best >= 0 && j < best)) {
        best_score = score;
        best = j;
      }
      if (cands_.size() >= cap) break;
    }
    return best;
  }

  double scored(int j, double viol) const {
    if (pricing_ != PricingRule::kDevex) return viol;
    return viol * viol / refw_[j];
  }

  /// Devex reference weights (approximate steepest edge), updated over
  /// the candidate list plus the leaving variable. Uses B_old, so it must
  /// run before the eta for this pivot is pushed.
  void update_devex_weights(int r, int entering, int leaving) {
    rho_.assign(m_, 0.0);
    rho_[r] = 1.0;
    lu_.btran(rho_.data());  // pivot row of B_old^{-1}, by original row
    const double alpha_q = w_[r];
    if (alpha_q == 0.0) return;
    const double wq = refw_[entering];
    for (const int j : cands_) {
      if (j == entering) continue;
      const double alpha =
          kernels::gather_dot(col_start_[j + 1] - col_start_[j],
                              col_row_.data() + col_start_[j],
                              col_val_.data() + col_start_[j], rho_.data());
      const double ratio = alpha / alpha_q;
      refw_[j] = std::max(refw_[j], ratio * ratio * wq);
    }
    refw_[leaving] = std::max(wq / (alpha_q * alpha_q), 1.0);
  }

  SparseLu lu_;
  PricingRule pricing_ = PricingRule::kCandidateList;
  std::vector<int> cands_;
  std::size_t cursor_ = 0;
  std::vector<double> refw_, rho_, rhs_;
};

/// The backend that will actually run: a dense request on a model whose
/// explicit inverse would not fit the worker memory budget is served
/// sparse (see kDenseBackendMaxRows).
BasisBackend effective_backend(const Model& model,
                               const SimplexOptions& options) {
  if (options.basis_backend == BasisBackend::kDense &&
      model.num_constraints() <= kDenseBackendMaxRows) {
    return BasisBackend::kDense;
  }
  return BasisBackend::kSparse;
}

Solution run_once(const Model& model, const SimplexOptions& options,
                  WarmStart* warm) {
  if (effective_backend(model, options) == BasisBackend::kDense) {
    DenseSimplex solver(model, options);
    return solver.run(warm);
  }
  SparseSimplex solver(model, options);
  return solver.run(warm);
}

}  // namespace

Solution solve_lp(const Model& model, const SimplexOptions& options) {
  return solve_lp(model, options, nullptr);
}

Solution solve_lp(const Model& model, const SimplexOptions& options,
                  WarmStart* warm) {
  Solution sol = run_once(model, options, warm);
  if (sol.status == SolveStatus::kNumericalError &&
      options.deadline.stop_reason() == util::StopReason::kNone) {
    // Numerical trouble: retry once in high-accuracy mode (refactor far
    // more often, stricter pivots). A failed *sparse* pass additionally
    // drops to the dense explicit-inverse backend - the instability
    // fallback rung - whenever the model is small enough for it.
    SimplexOptions retry = options;
    retry.refactor_interval = 20;
    retry.pivot_tol = std::max(options.pivot_tol, 1e-8);
    if (effective_backend(model, options) == BasisBackend::kSparse &&
        model.num_constraints() <= kDenseBackendMaxRows) {
      retry.basis_backend = BasisBackend::kDense;
    }
    sol = run_once(model, retry, warm);  // retry cold: a cleared warm is ignored
  }
  return sol;
}

}  // namespace powerlim::lp
