#include "lp/branch_bound.h"

#include "lp/presolve.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <queue>
#include <vector>

#include "util/log.h"

namespace powerlim::lp {

namespace {

struct Node {
  // Bound overrides accumulated down the tree: (var index, lb, ub).
  std::vector<std::tuple<int, double, double>> bounds;
  double parent_bound;  // relaxation objective of the parent (min sense)
};

struct NodeOrder {
  bool operator()(const std::shared_ptr<Node>& a,
                  const std::shared_ptr<Node>& b) const {
    return a->parent_bound > b->parent_bound;  // best-bound first
  }
};

int most_fractional(const Model& model, const std::vector<double>& x,
                    double tol) {
  int best = -1;
  double best_frac = tol;
  for (std::size_t j = 0; j < model.num_variables(); ++j) {
    if (!model.is_integer(static_cast<int>(j))) continue;
    const double f = x[j] - std::floor(x[j]);
    const double dist = std::min(f, 1.0 - f);
    if (dist > best_frac) {
      best_frac = dist;
      best = static_cast<int>(j);
    }
  }
  return best;
}

}  // namespace

MipSolution solve_mip(const Model& model, const BranchBoundOptions& options) {
  MipSolution out;
  if (!model.has_integers()) {
    const Solution relax = solve_lp(model, options.simplex);
    out.status = relax.status;
    out.objective = relax.objective;
    out.best_bound = relax.objective;
    out.values = relax.values;
    return out;
  }

  const double sense_mult = model.sense() == Sense::kMaximize ? -1.0 : 1.0;

  std::priority_queue<std::shared_ptr<Node>, std::vector<std::shared_ptr<Node>>,
                      NodeOrder>
      open;
  open.push(std::make_shared<Node>(Node{{}, -kInfinity}));

  double incumbent_obj = kInfinity;  // in minimization space
  std::vector<double> incumbent;
  bool any_feasible_relaxation = false;
  bool hit_limit = false;
  // Set when the wall-clock budget or a cancellation stops the search;
  // reported in preference to kIterationLimit (the relaxations below
  // also observe the same deadline at pivot granularity).
  SolveStatus stopped = SolveStatus::kOptimal;

  while (!open.empty()) {
    if (out.nodes >= options.max_nodes) {
      hit_limit = true;
      break;
    }
    const util::StopReason reason = options.simplex.deadline.stop_reason();
    if (reason != util::StopReason::kNone) {
      hit_limit = true;
      stopped = reason == util::StopReason::kCancelled
                    ? SolveStatus::kCancelled
                    : SolveStatus::kDeadlineExceeded;
      break;
    }
    auto node = open.top();
    open.pop();
    ++out.nodes;

    if (node->parent_bound >= incumbent_obj - options.relative_gap *
                                                  (1.0 + std::abs(incumbent_obj))) {
      continue;  // cannot improve
    }

    Model sub = model;  // clone, then tighten bounds along the path
    bool conflict = false;
    for (const auto& [var, lb, ub] : node->bounds) {
      const double new_lb = std::max(lb, sub.variable_lb(var));
      const double new_ub = std::min(ub, sub.variable_ub(var));
      if (new_lb > new_ub) {
        conflict = true;
        break;
      }
      sub.set_variable_bounds(Variable{var}, new_lb, new_ub);
    }
    if (conflict) continue;

    const Solution relax = solve_lp_presolved(sub, options.simplex);
    if (relax.status == SolveStatus::kInfeasible) continue;
    if (relax.status == SolveStatus::kUnbounded) {
      out.status = SolveStatus::kUnbounded;
      return out;
    }
    if (relax.status == SolveStatus::kDeadlineExceeded ||
        relax.status == SolveStatus::kCancelled) {
      hit_limit = true;
      stopped = relax.status;
      break;
    }
    if (relax.status != SolveStatus::kOptimal) {
      util::log_warn() << "branch&bound: relaxation " << to_string(relax.status);
      continue;
    }
    any_feasible_relaxation = true;
    const double bound = sense_mult * relax.objective;
    if (bound >= incumbent_obj -
                     options.relative_gap * (1.0 + std::abs(incumbent_obj))) {
      continue;
    }

    const int branch_var =
        most_fractional(sub, relax.values, options.integrality_tol);
    if (branch_var < 0) {
      // Integral: candidate incumbent.
      if (bound < incumbent_obj) {
        incumbent_obj = bound;
        incumbent = relax.values;
        // Snap integer values exactly.
        for (std::size_t j = 0; j < model.num_variables(); ++j) {
          if (model.is_integer(static_cast<int>(j))) {
            incumbent[j] = std::round(incumbent[j]);
          }
        }
      }
      continue;
    }

    const double v = relax.values[branch_var];
    auto down = std::make_shared<Node>(*node);
    down->parent_bound = bound;
    down->bounds.emplace_back(branch_var, -kInfinity, std::floor(v));
    auto up = std::make_shared<Node>(*node);
    up->parent_bound = bound;
    up->bounds.emplace_back(branch_var, std::ceil(v), kInfinity);
    open.push(std::move(down));
    open.push(std::move(up));
  }

  if (!incumbent.empty()) {
    out.values = std::move(incumbent);
    out.objective = sense_mult * incumbent_obj;
    double bound = incumbent_obj;
    if (hit_limit && !open.empty()) {
      bound = open.top()->parent_bound;
    }
    out.best_bound = sense_mult * bound;
    out.status = !hit_limit ? SolveStatus::kOptimal
                 : stopped != SolveStatus::kOptimal
                     ? stopped
                     : SolveStatus::kIterationLimit;
    return out;
  }
  (void)any_feasible_relaxation;
  out.status = !hit_limit ? SolveStatus::kInfeasible
               : stopped != SolveStatus::kOptimal
                   ? stopped
                   : SolveStatus::kIterationLimit;
  return out;
}

}  // namespace powerlim::lp
