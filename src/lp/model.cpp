#include "lp/model.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "util/rng.h"

namespace powerlim::lp {

Variable Model::add_variable(double lb, double ub, double obj,
                             std::string name) {
  if (lb > ub) throw std::invalid_argument("variable lb > ub: " + name);
  var_lb_.push_back(lb);
  var_ub_.push_back(ub);
  obj_.push_back(obj);
  integer_.push_back(0);
  var_name_.push_back(std::move(name));
  return Variable{static_cast<int>(var_lb_.size()) - 1};
}

Variable Model::add_integer_variable(double lb, double ub, double obj,
                                     std::string name) {
  Variable v = add_variable(lb, ub, obj, std::move(name));
  integer_[v.index] = 1;
  return v;
}

Variable Model::add_binary(double obj, std::string name) {
  return add_integer_variable(0.0, 1.0, obj, std::move(name));
}

Constraint Model::add_constraint(const std::vector<Term>& terms, double rlb,
                                 double rub, std::string name) {
  if (rlb > rub) throw std::invalid_argument("row lb > ub: " + name);
  // Merge duplicate variables so callers can build expressions naively.
  std::map<int, double> merged;
  for (const Term& t : terms) {
    if (!t.var.valid() ||
        t.var.index >= static_cast<int>(var_lb_.size())) {
      throw std::invalid_argument("constraint uses invalid variable: " + name);
    }
    merged[t.var.index] += t.coeff;
  }
  if (row_start_.empty()) row_start_.push_back(0);
  for (const auto& [idx, coeff] : merged) {
    if (std::abs(coeff) == 0.0) continue;
    col_index_.push_back(idx);
    value_.push_back(coeff);
  }
  row_start_.push_back(col_index_.size());
  row_lb_.push_back(rlb);
  row_ub_.push_back(rub);
  row_name_.push_back(std::move(name));
  return Constraint{static_cast<int>(row_lb_.size()) - 1};
}

void Model::set_variable_bounds(Variable v, double lb, double ub) {
  if (!v.valid() || v.index >= static_cast<int>(var_lb_.size())) {
    throw std::invalid_argument("set_variable_bounds: invalid variable");
  }
  if (lb > ub) throw std::invalid_argument("set_variable_bounds: lb > ub");
  var_lb_[v.index] = lb;
  var_ub_[v.index] = ub;
}

bool Model::has_integers() const {
  return std::any_of(integer_.begin(), integer_.end(),
                     [](char c) { return c != 0; });
}

Model::RowView Model::row(int i) const {
  const std::size_t begin = row_start_[i];
  const std::size_t end = row_start_[i + 1];
  return RowView{col_index_.data() + begin, value_.data() + begin,
                 end - begin};
}

double Model::objective_value(const std::vector<double>& x) const {
  double v = 0.0;
  for (std::size_t j = 0; j < obj_.size(); ++j) v += obj_[j] * x[j];
  return v;
}

void Model::perturb_nonzeros(double magnitude, std::uint64_t seed) {
  util::Rng rng(seed);
  for (double& v : value_) {
    v *= std::pow(10.0, rng.uniform(-magnitude, magnitude));
  }
}

double Model::max_violation(const std::vector<double>& x) const {
  double worst = 0.0;
  for (std::size_t j = 0; j < var_lb_.size(); ++j) {
    worst = std::max(worst, var_lb_[j] - x[j]);
    worst = std::max(worst, x[j] - var_ub_[j]);
  }
  for (std::size_t i = 0; i < row_lb_.size(); ++i) {
    const RowView r = row(static_cast<int>(i));
    double acc = 0.0;
    for (std::size_t k = 0; k < r.size; ++k) acc += r.coeff[k] * x[r.idx[k]];
    worst = std::max(worst, row_lb_[i] - acc);
    worst = std::max(worst, acc - row_ub_[i]);
  }
  return std::max(worst, 0.0);
}

}  // namespace powerlim::lp
