// Branch & bound for mixed integer-linear programs.
//
// The paper's flow ILP (Appendix) is only ever solved on small instances
// (< 30 application-DAG edges, Section 3.4), so a straightforward
// best-bound branch & bound over the simplex relaxation is sufficient and
// keeps the substrate dependency-free.
#pragma once

#include "lp/model.h"
#include "lp/simplex.h"

namespace powerlim::lp {

struct BranchBoundOptions {
  SimplexOptions simplex;
  /// Hard node cap; the solver reports kIterationLimit beyond it.
  long max_nodes = 200000;
  /// Values within this distance of an integer count as integral.
  double integrality_tol = 1e-6;
  /// Stop when the relative gap between incumbent and best bound falls
  /// below this.
  double relative_gap = 1e-9;
};

struct MipSolution {
  SolveStatus status = SolveStatus::kNumericalError;
  double objective = 0.0;
  std::vector<double> values;
  long nodes = 0;
  /// Best dual bound proven at termination (== objective when optimal).
  double best_bound = 0.0;

  bool optimal() const { return status == SolveStatus::kOptimal; }
};

/// Solves `model` honoring integrality flags. A model with no integer
/// variables degenerates to a single LP solve.
MipSolution solve_mip(const Model& model,
                      const BranchBoundOptions& options = {});

}  // namespace powerlim::lp
