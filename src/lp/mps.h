// MPS export for lp::Model.
//
// Writes the (free-form) MPS format understood by CBC, GLPK, Gurobi,
// CPLEX, HiGHS and lp_solve, so any LP/ILP powerlim builds can be handed
// to an external solver for cross-validation - the reproduction's answer
// to "is your home-grown simplex right?".
//
// Conventions: range constraints become RANGES entries; integer variables
// are wrapped in MARKER INTORG/INTEND; a maximization model is written as
// its negated minimization with a comment noting the flip (baseline MPS
// has no portable objective-sense field).
#pragma once

#include <iosfwd>
#include <string>

#include "lp/model.h"

namespace powerlim::lp {

/// Writes `model` as free-form MPS. `name` becomes the NAME record.
void write_mps(std::ostream& out, const Model& model,
               const std::string& name = "POWERLIM");

/// Convenience to-string wrapper.
std::string to_mps(const Model& model, const std::string& name = "POWERLIM");

/// Parses free-form MPS (the dialect write_mps emits, which is the common
/// subset: N/L/G/E rows, COLUMNS with INTORG/INTEND markers, RHS, RANGES,
/// FR/MI/PL/FX/LO/UP/BV bounds). The objective row becomes a minimization
/// objective; use Model::set_sense() afterwards if the source maximized.
/// Throws std::runtime_error with a line number on malformed input.
Model read_mps(std::istream& in);

}  // namespace powerlim::lp
