// Linear-program model builder.
//
// powerlim needs an LP solver for the paper's fixed-vertex-order
// formulation (Section 3) and a mixed integer-linear solver for the flow
// ILP (Appendix). No external solver is available in this environment, so
// lp/ is a from-scratch substrate: this header is the model-building API,
// simplex.h solves the continuous relaxation and branch_bound.h layers
// integrality on top.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace powerlim::lp {

/// Effective infinity for variable/row bounds.
inline constexpr double kInfinity = 1e30;

inline bool is_finite_bound(double b) {
  return b > -kInfinity / 2 && b < kInfinity / 2;
}

enum class Sense { kMinimize, kMaximize };

/// Typed handle to a model variable.
struct Variable {
  int index = -1;
  bool valid() const { return index >= 0; }
};

/// Typed handle to a model constraint (row).
struct Constraint {
  int index = -1;
  bool valid() const { return index >= 0; }
};

/// One term of a linear expression: coefficient * variable.
struct Term {
  Variable var;
  double coeff = 0.0;
};

/// A linear program / mixed-integer program in "row bounds" form:
///
///   optimize  c'x      (sense)
///   s.t.      rlb <= A x <= rub   (per row; rlb == rub for equalities)
///             lb  <=  x  <= rub   (per variable)
///             x_j integer for flagged variables
///
/// The model owns its data by value; copying a Model is cheap enough for
/// branch & bound to clone bound vectors per node.
class Model {
 public:
  explicit Model(Sense sense = Sense::kMinimize) : sense_(sense) {}

  Sense sense() const { return sense_; }
  void set_sense(Sense sense) { sense_ = sense; }

  /// Adds a variable with bounds [lb, ub] and objective coefficient obj.
  Variable add_variable(double lb, double ub, double obj,
                        std::string name = {});

  /// Adds an integer-constrained variable (used by the flow ILP's binary
  /// sequencing variables x_ij).
  Variable add_integer_variable(double lb, double ub, double obj,
                                std::string name = {});

  /// Convenience: binary variable in {0, 1}.
  Variable add_binary(double obj, std::string name = {});

  /// Adds a row  rlb <= sum(terms) <= rub. Duplicate variables in `terms`
  /// are merged. Throws std::invalid_argument on an invalid handle.
  Constraint add_constraint(const std::vector<Term>& terms, double rlb,
                            double rub, std::string name = {});

  Constraint add_eq(const std::vector<Term>& terms, double rhs,
                    std::string name = {}) {
    return add_constraint(terms, rhs, rhs, std::move(name));
  }
  Constraint add_le(const std::vector<Term>& terms, double rhs,
                    std::string name = {}) {
    return add_constraint(terms, -kInfinity, rhs, std::move(name));
  }
  Constraint add_ge(const std::vector<Term>& terms, double rhs,
                    std::string name = {}) {
    return add_constraint(terms, rhs, kInfinity, std::move(name));
  }

  /// Tightens the bounds of an existing variable (branch & bound uses this
  /// on cloned models).
  void set_variable_bounds(Variable v, double lb, double ub);

  std::size_t num_variables() const { return var_lb_.size(); }
  std::size_t num_constraints() const { return row_lb_.size(); }
  std::size_t num_nonzeros() const { return col_index_.size(); }

  double variable_lb(int j) const { return var_lb_[j]; }
  double variable_ub(int j) const { return var_ub_[j]; }
  double objective_coeff(int j) const { return obj_[j]; }
  bool is_integer(int j) const { return integer_[j] != 0; }
  bool has_integers() const;
  const std::string& variable_name(int j) const { return var_name_[j]; }
  const std::string& constraint_name(int i) const { return row_name_[i]; }

  double row_lb(int i) const { return row_lb_[i]; }
  double row_ub(int i) const { return row_ub_[i]; }

  /// Row i as (variable index, coefficient) pairs.
  struct RowView {
    const int* idx;
    const double* coeff;
    std::size_t size;
  };
  RowView row(int i) const;

  /// Evaluates the objective at a point.
  double objective_value(const std::vector<double>& x) const;

  /// Maximum constraint/bound violation at a point; 0 means feasible.
  double max_violation(const std::vector<double>& x) const;

  /// Fault-injection seam for robustness testing: multiplies every stored
  /// constraint coefficient by a seeded factor in [10^-magnitude,
  /// 10^+magnitude]. The corrupted model is still finite (no NaN/Inf) but
  /// badly scaled, which is how real numerical trouble presents to the
  /// simplex. Deterministic for a given seed.
  void perturb_nonzeros(double magnitude, std::uint64_t seed);

 private:
  Sense sense_;
  // Variables.
  std::vector<double> var_lb_, var_ub_, obj_;
  std::vector<char> integer_;
  std::vector<std::string> var_name_;
  // Rows in CSR-like storage.
  std::vector<double> row_lb_, row_ub_;
  std::vector<std::string> row_name_;
  std::vector<std::size_t> row_start_;  // size rows+1
  std::vector<int> col_index_;
  std::vector<double> value_;
};

}  // namespace powerlim::lp
