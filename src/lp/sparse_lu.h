// Sparse LU basis factorization with product-form eta updates - the
// engine behind SimplexOptions::basis_backend == kSparse.
//
// Factorization: left-looking Gilbert-Peierls column LU with partial
// (max-magnitude) row pivoting over a Markowitz-style column pre-order
// (ascending nonzero count, so singleton slack/artificial columns pivot
// first with zero fill). Each column's pattern is predicted by a DFS
// reachability pass over the L graph, so total work is proportional to
// the flops of the factorization, not m^2.
//
// Storage: L and U are compressed sparse columns in pivot coordinates
// (L's unit diagonal implicit, U's diagonal split out dense). One CSC
// layout serves both solve directions: the forward solves (FTRAN) are
// scatter-axpy column sweeps and the transposed solves (BTRAN) are
// gather-dot sweeps over the very same arrays (lp/kernels.h).
//
// Pivot updates: product-form eta file. After column q replaces basis
// position r, B_new = B_old * E where E is identity except column r,
// which holds the FTRAN'd entering column w = B_old^{-1} A_q. FTRAN
// applies the LU solves then the etas in creation order; BTRAN applies
// the etas in reverse then the transposed LU solves. The file is
// append-only between refactorizations and is wiped by factor(); the
// caller refactorizes on its existing interval/stability triggers plus
// the eta-growth trigger (see SimplexOptions::eta_growth_limit).
#pragma once

#include <cstddef>
#include <vector>

namespace powerlim::lp {

class SparseLu {
 public:
  /// Factorizes the m x m basis whose p-th column is computational
  /// column basis[p] of the CSC matrix (col_start/col_row/col_val).
  /// Returns false when the basis is structurally or numerically
  /// singular (no reachable pivot of magnitude > singular_tol in some
  /// column). Wipes the eta file either way.
  bool factor(const std::size_t* col_start, const int* col_row,
              const double* col_val, const int* basis, std::size_t m,
              double singular_tol);

  /// w := B^{-1} w. Input and output are dense length-m vectors indexed
  /// by row (equivalently basis position).
  void ftran(double* w);

  /// y := B^{-T} y (row-space transform: y^T B = c^T solved for y).
  void btran(double* y);

  /// Appends the product-form eta for a pivot at basis position r, where
  /// w = B^{-1} A_entering is dense and wnz lists its nonzero positions
  /// (r included). Returns false - leaving the file untouched - when
  /// |w[r]| <= stability_tol; the caller must then refactorize before
  /// the next ftran/btran, since the basis it tracks has changed.
  bool push_eta(int r, const double* w, const int* wnz, std::size_t nnz,
                double stability_tol);

  bool factored() const { return factored_; }
  std::size_t dim() const { return m_; }
  std::size_t eta_count() const { return eta_pos_.size(); }
  /// Off-pivot nonzeros currently in the eta file (the refactorization
  /// growth trigger and the SimplexStats::eta_nonzeros source).
  std::size_t eta_nonzeros() const { return eta_idx_.size(); }
  /// nnz(L) + nnz(U) including diagonals, from the latest factor().
  std::size_t factor_nonzeros() const {
    return l_idx_.size() + u_idx_.size() + m_;
  }
  /// Fill ratio factor_nonzeros() / nnz(B) of the latest factor().
  double fill_ratio() const { return fill_ratio_; }

 private:
  void lower_solve(double* x) const;
  void upper_solve(double* x) const;
  void lower_solve_t(double* x) const;
  void upper_solve_t(double* x) const;

  std::size_t m_ = 0;
  bool factored_ = false;
  double fill_ratio_ = 0.0;

  // L (unit lower) and U, CSC in pivot coordinates; L column k holds
  // rows > k, U column k holds rows < k, U's diagonal in u_diag_.
  std::vector<std::size_t> l_start_, u_start_;
  std::vector<int> l_idx_, u_idx_;
  std::vector<double> l_val_, u_val_, u_diag_;

  // Permutations: pivot_row_[k] = original row of pivot k (P), and
  // pivot_col_[k] = basis position factored as column k (Q).
  std::vector<int> pivot_row_, pivot_col_;
  std::vector<int> row_of_;  // original row -> pivot index
  std::vector<int> col_of_;  // basis position -> factor column

  // Eta file, flat: eta k pivots at position eta_pos_[k] with pivot
  // value eta_piv_[k]; its off-pivot entries are
  // eta_idx_/eta_val_[eta_start_[k] .. eta_start_[k+1]).
  std::vector<std::size_t> eta_start_;
  std::vector<int> eta_pos_;
  std::vector<double> eta_piv_;
  std::vector<int> eta_idx_;
  std::vector<double> eta_val_;

  // Factorization scratch, kept allocated across refactorizations.
  std::vector<double> work_;
  std::vector<int> stack_, visit_mark_, topo_, reach_;
  std::vector<std::size_t> stack_edge_;
  int mark_epoch_ = 0;

  // Solve scratch (permuted copies).
  std::vector<double> perm_;
};

}  // namespace powerlim::lp
