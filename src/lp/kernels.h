// Dense and scatter/gather inner kernels for the LP solvers.
//
// Every hot loop of both simplex backends bottoms out here: dense axpy /
// dot over the explicit inverse (dense backend), and sparse
// scatter-axpy / gather-dot over LU factors, eta files, and candidate
// pricing (sparse backend). The loops are written to auto-vectorize
// under -O2: raw pointers, no aliasing between input and output arrays
// (callers guarantee it), unit stride on the dense operands, and no
// early exits.
//
// Backend hook: POWERLIM_LP_KERNELS_BACKEND can be defined (before this
// header is seen) to a header providing explicit-SIMD replacements with
// the same signatures in namespace powerlim::lp::kernels. The default
// scalar forms below are the reference semantics any replacement must
// match bit-for-bit on the dense ops (the byte-identity suites compare
// solver output across processes, so a backend may reassociate only
// where the caller tolerates it - today: nowhere; swap kernels, not
// summation order).
//
// Solver arithmetic is IEEE double by design; exact arithmetic lives
// only in src/check/ (see powerlint's float-in-exact scope note).
#pragma once

#include <cstddef>

#if defined(POWERLIM_LP_KERNELS_BACKEND)
#include POWERLIM_LP_KERNELS_BACKEND
#else

namespace powerlim::lp::kernels {

/// y[i] += a * x[i] for i in [0, n). Dense backend's eta application and
/// inverse-row updates.
inline void axpy(std::size_t n, double a, const double* x, double* y) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

/// y[i] *= a for i in [0, n).
inline void scale(std::size_t n, double a, double* y) {
  for (std::size_t i = 0; i < n; ++i) y[i] *= a;
}

/// sum_i x[i] * y[i] over [0, n).
inline double dot(std::size_t n, const double* x, const double* y) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

/// x[idx[k]] += a * val[k] for k in [0, nnz): sparse column update into a
/// dense work vector (FTRAN lower solve, eta application, basis RHS).
inline void scatter_axpy(std::size_t nnz, double a, const int* idx,
                         const double* val, double* x) {
  for (std::size_t k = 0; k < nnz; ++k) x[idx[k]] += a * val[k];
}

/// sum_k val[k] * x[idx[k]] over [0, nnz): sparse dot of a compressed
/// column against a dense vector (BTRAN upper solve, reduced-cost
/// pricing of one candidate column).
inline double gather_dot(std::size_t nnz, const int* idx, const double* val,
                         const double* x) {
  double acc = 0.0;
  for (std::size_t k = 0; k < nnz; ++k) acc += val[k] * x[idx[k]];
  return acc;
}

}  // namespace powerlim::lp::kernels

#endif  // POWERLIM_LP_KERNELS_BACKEND
