// LP presolve.
//
// Standard reductions applied before the simplex sees the model:
//   * fixed variables (lb == ub) are substituted into every row;
//   * empty rows are checked for consistency and dropped;
//   * singleton rows (one variable) become variable-bound tightenings;
//   * rows whose activity bounds already imply the row (redundant) drop.
// Reductions iterate to a fixed point. The result maps back to the
// original variable space via restore(). Duals are not mapped (powerlim
// only consumes primal solutions; tests that need duals solve unreduced).
//
// This is most useful for the branch & bound tree, where every node fixes
// binaries: presolve collapses them out of the child LPs.
#pragma once

#include <optional>
#include <vector>

#include "lp/model.h"
#include "lp/simplex.h"

namespace powerlim::lp {

struct PresolveResult {
  /// The reduced model (valid only when `infeasible` is false).
  Model reduced;
  /// True when presolve already proved infeasibility.
  bool infeasible = false;
  /// Original index of each reduced-model variable.
  std::vector<int> kept_variables;
  /// Values pinned for removed variables (by original index); unset
  /// entries correspond to kept variables.
  std::vector<std::optional<double>> fixed_values;
  /// Constant objective contribution of the removed variables.
  double objective_offset = 0.0;

  std::size_t removed_variables() const;
  std::size_t removed_rows = 0;

  /// Lifts a reduced-model solution vector back to the original space.
  std::vector<double> restore(const std::vector<double>& reduced_values) const;
};

/// Applies the reductions to `model`.
PresolveResult presolve(const Model& model);

/// Convenience: presolve + solve + restore. Status and objective refer to
/// the original model; duals/reduced costs are not populated.
Solution solve_lp_presolved(const Model& model,
                            const SimplexOptions& options = {});

}  // namespace powerlim::lp
