#include "lp/sparse_lu.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "lp/kernels.h"

namespace powerlim::lp {

namespace {
// Work-vector entries at or below this magnitude after elimination are
// treated as symbolic-only fill and not stored in L / U. Exact zeros are
// common (cancellation in slack-heavy bases); anything else this small
// is noise that only bloats the factors.
constexpr double kFactorDrop = 0.0;
}  // namespace

bool SparseLu::factor(const std::size_t* col_start, const int* col_row,
                      const double* col_val, const int* basis, std::size_t m,
                      double singular_tol) {
  m_ = m;
  factored_ = false;
  fill_ratio_ = 0.0;
  eta_start_.assign(1, 0);
  eta_pos_.clear();
  eta_piv_.clear();
  eta_idx_.clear();
  eta_val_.clear();
  l_start_.assign(1, 0);
  u_start_.assign(1, 0);
  l_idx_.clear();
  l_val_.clear();
  u_idx_.clear();
  u_val_.clear();
  u_diag_.assign(m, 0.0);
  pivot_row_.assign(m, -1);
  pivot_col_.assign(m, -1);
  row_of_.assign(m, -1);
  col_of_.assign(m, -1);
  if (m == 0) {
    factored_ = true;
    fill_ratio_ = 1.0;
    return true;
  }

  // Markowitz-style pre-order: factor the sparsest columns first
  // (stable on basis position for determinism). Singleton slack /
  // artificial columns then pivot immediately with zero fill, and the
  // denser structural columns meet an already mostly-triangular front.
  std::vector<int> order(m);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    const std::size_t na = col_start[basis[a] + 1] - col_start[basis[a]];
    const std::size_t nb = col_start[basis[b] + 1] - col_start[basis[b]];
    return na < nb;
  });

  std::size_t basis_nnz = 0;
  for (std::size_t p = 0; p < m; ++p) {
    basis_nnz += col_start[basis[p] + 1] - col_start[basis[p]];
  }

  work_.assign(m, 0.0);
  visit_mark_.assign(m, 0);
  mark_epoch_ = 0;
  stack_.resize(m);
  stack_edge_.resize(m);
  topo_.reserve(m);
  reach_.reserve(m);
  l_idx_.reserve(basis_nnz);
  l_val_.reserve(basis_nnz);
  u_idx_.reserve(basis_nnz);
  u_val_.reserve(basis_nnz);

  // NOTE: while factoring, l_idx_ holds ORIGINAL row indices (the DFS
  // and the scatter updates both live in original-row space); the final
  // pass below remaps them to pivot coordinates for the solves.
  for (std::size_t kk = 0; kk < m; ++kk) {
    const int p = order[kk];  // basis position
    const int j = basis[p];   // computational column

    // Symbolic step: the nonzero pattern of L^{-1} b is the set of rows
    // reachable from pattern(b) in the graph where an already-assigned
    // row (pivot k) points at the rows of L's column k. Depth-first
    // post-order gives the pivots in reverse-topological order.
    ++mark_epoch_;
    topo_.clear();
    reach_.clear();
    for (std::size_t e = col_start[j]; e < col_start[j + 1]; ++e) {
      const int root = col_row[e];
      if (visit_mark_[root] == mark_epoch_) continue;
      int top = 0;
      stack_[0] = root;
      visit_mark_[root] = mark_epoch_;
      reach_.push_back(root);
      {
        const int k0 = row_of_[root];
        stack_edge_[0] = k0 >= 0 ? l_start_[k0] : 0;
      }
      while (top >= 0) {
        const int r = stack_[top];
        const int k = row_of_[r];
        bool descended = false;
        if (k >= 0) {
          while (stack_edge_[top] < l_start_[k + 1]) {
            const int child = l_idx_[stack_edge_[top]++];
            if (visit_mark_[child] != mark_epoch_) {
              visit_mark_[child] = mark_epoch_;
              reach_.push_back(child);
              ++top;
              stack_[top] = child;
              const int ck = row_of_[child];
              stack_edge_[top] = ck >= 0 ? l_start_[ck] : 0;
              descended = true;
              break;
            }
          }
        }
        if (!descended) {
          if (k >= 0) topo_.push_back(k);
          --top;
        }
      }
    }

    // Numeric step: scatter the column, then eliminate reached pivots
    // in dependency (reverse post-) order - this is the sparse lower
    // solve whose flops bound the whole factorization.
    for (std::size_t e = col_start[j]; e < col_start[j + 1]; ++e) {
      work_[col_row[e]] += col_val[e];
    }
    for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
      const int k = *it;
      const double piv = work_[pivot_row_[k]];
      if (piv != 0.0) {
        kernels::scatter_axpy(l_start_[k + 1] - l_start_[k], -piv,
                              l_idx_.data() + l_start_[k],
                              l_val_.data() + l_start_[k], work_.data());
      }
    }

    // U column kk = the values at already-assigned pivot rows.
    for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
      const int k = *it;
      const double v = work_[pivot_row_[k]];
      if (std::fabs(v) > kFactorDrop) {
        u_idx_.push_back(k);
        u_val_.push_back(v);
      }
    }
    u_start_.push_back(u_idx_.size());

    // Partial pivoting: max-magnitude unassigned row (ties to the
    // lowest original row for determinism).
    int best_row = -1;
    double best = 0.0;
    for (const int r : reach_) {
      if (row_of_[r] >= 0) continue;
      const double v = std::fabs(work_[r]);
      if (v > best || (v == best && best_row >= 0 && r < best_row)) {
        best = v;
        best_row = r;
      }
    }
    if (best_row < 0 || best <= singular_tol) {
      for (const int r : reach_) work_[r] = 0.0;
      return false;  // structurally or numerically singular
    }

    const int ki = static_cast<int>(kk);
    pivot_row_[ki] = best_row;
    row_of_[best_row] = ki;
    pivot_col_[ki] = p;
    col_of_[p] = ki;
    const double piv = work_[best_row];
    u_diag_[kk] = piv;

    for (const int r : reach_) {
      if (row_of_[r] >= 0) continue;  // best_row just got assigned
      const double v = work_[r];
      if (std::fabs(v) > kFactorDrop) {
        l_idx_.push_back(r);
        l_val_.push_back(v / piv);
      }
    }
    l_start_.push_back(l_idx_.size());

    for (const int r : reach_) work_[r] = 0.0;
  }

  // Remap L's row indices from original rows to pivot coordinates now
  // that the row permutation is complete.
  for (auto& r : l_idx_) r = row_of_[r];

  fill_ratio_ = static_cast<double>(factor_nonzeros()) /
                static_cast<double>(std::max<std::size_t>(basis_nnz, 1));
  factored_ = true;
  return true;
}

void SparseLu::lower_solve(double* x) const {
  for (std::size_t k = 0; k < m_; ++k) {
    const double xk = x[k];
    if (xk != 0.0) {
      kernels::scatter_axpy(l_start_[k + 1] - l_start_[k], -xk,
                            l_idx_.data() + l_start_[k],
                            l_val_.data() + l_start_[k], x);
    }
  }
}

void SparseLu::upper_solve(double* x) const {
  for (std::size_t k = m_; k-- > 0;) {
    const double xk = x[k] / u_diag_[k];
    x[k] = xk;
    if (xk != 0.0) {
      kernels::scatter_axpy(u_start_[k + 1] - u_start_[k], -xk,
                            u_idx_.data() + u_start_[k],
                            u_val_.data() + u_start_[k], x);
    }
  }
}

void SparseLu::upper_solve_t(double* x) const {
  for (std::size_t k = 0; k < m_; ++k) {
    const double acc =
        kernels::gather_dot(u_start_[k + 1] - u_start_[k],
                            u_idx_.data() + u_start_[k],
                            u_val_.data() + u_start_[k], x);
    x[k] = (x[k] - acc) / u_diag_[k];
  }
}

void SparseLu::lower_solve_t(double* x) const {
  for (std::size_t k = m_; k-- > 0;) {
    x[k] -= kernels::gather_dot(l_start_[k + 1] - l_start_[k],
                                l_idx_.data() + l_start_[k],
                                l_val_.data() + l_start_[k], x);
  }
}

void SparseLu::ftran(double* w) {
  if (m_ == 0) return;
  // B_0^{-1} via the LU factors: permute in, two triangular solves,
  // permute out.
  perm_.resize(m_);
  for (std::size_t k = 0; k < m_; ++k) perm_[k] = w[pivot_row_[k]];
  lower_solve(perm_.data());
  upper_solve(perm_.data());
  for (std::size_t k = 0; k < m_; ++k) w[pivot_col_[k]] = perm_[k];
  // Then the eta file in creation order: B_k = B_0 E_1 ... E_k, so
  // B_k^{-1} = E_k^{-1} ... E_1^{-1} B_0^{-1} applied oldest first.
  for (std::size_t e = 0; e < eta_pos_.size(); ++e) {
    const int r = eta_pos_[e];
    const double xr = w[r] / eta_piv_[e];
    w[r] = xr;
    if (xr != 0.0) {
      kernels::scatter_axpy(eta_start_[e + 1] - eta_start_[e], -xr,
                            eta_idx_.data() + eta_start_[e],
                            eta_val_.data() + eta_start_[e], w);
    }
  }
}

void SparseLu::btran(double* y) {
  if (m_ == 0) return;
  // Transposed order: eta file newest first, then the transposed LU
  // solves.
  for (std::size_t e = eta_pos_.size(); e-- > 0;) {
    const int r = eta_pos_[e];
    const double acc =
        kernels::gather_dot(eta_start_[e + 1] - eta_start_[e],
                            eta_idx_.data() + eta_start_[e],
                            eta_val_.data() + eta_start_[e], y);
    y[r] = (y[r] - acc) / eta_piv_[e];
  }
  perm_.resize(m_);
  for (std::size_t k = 0; k < m_; ++k) perm_[k] = y[pivot_col_[k]];
  upper_solve_t(perm_.data());
  lower_solve_t(perm_.data());
  for (std::size_t k = 0; k < m_; ++k) y[pivot_row_[k]] = perm_[k];
}

bool SparseLu::push_eta(int r, const double* w, const int* wnz,
                        std::size_t nnz, double stability_tol) {
  const double piv = w[r];
  if (std::fabs(piv) <= stability_tol) return false;
  eta_pos_.push_back(r);
  eta_piv_.push_back(piv);
  for (std::size_t k = 0; k < nnz; ++k) {
    const int i = wnz[k];
    if (i == r) continue;
    const double v = w[i];
    if (v != 0.0) {
      eta_idx_.push_back(i);
      eta_val_.push_back(v);
    }
  }
  eta_start_.push_back(eta_idx_.size());
  return true;
}

}  // namespace powerlim::lp
