#include "lp/presolve.h"

#include <cmath>
#include <stdexcept>

namespace powerlim::lp {

namespace {
constexpr double kFixTol = 1e-11;
constexpr double kFeasTol = 1e-9;
}  // namespace

std::size_t PresolveResult::removed_variables() const {
  std::size_t n = 0;
  for (const auto& v : fixed_values) {
    if (v.has_value()) ++n;
  }
  return n;
}

std::vector<double> PresolveResult::restore(
    const std::vector<double>& reduced_values) const {
  std::vector<double> full(fixed_values.size(), 0.0);
  for (std::size_t j = 0; j < fixed_values.size(); ++j) {
    if (fixed_values[j]) full[j] = *fixed_values[j];
  }
  for (std::size_t k = 0; k < kept_variables.size(); ++k) {
    full[kept_variables[k]] = reduced_values[k];
  }
  return full;
}

PresolveResult presolve(const Model& model) {
  const std::size_t n = model.num_variables();
  const std::size_t m = model.num_constraints();

  // Working copies of bounds; rows keep their structure, we only adjust
  // their bounds as fixed variables are substituted out.
  std::vector<double> lb(n), ub(n);
  for (std::size_t j = 0; j < n; ++j) {
    lb[j] = model.variable_lb(static_cast<int>(j));
    ub[j] = model.variable_ub(static_cast<int>(j));
  }
  std::vector<double> rlb(m), rub(m);
  for (std::size_t i = 0; i < m; ++i) {
    rlb[i] = model.row_lb(static_cast<int>(i));
    rub[i] = model.row_ub(static_cast<int>(i));
  }
  std::vector<char> row_dropped(m, 0);
  std::vector<char> var_fixed(n, 0);

  PresolveResult out;
  out.fixed_values.assign(n, std::nullopt);

  bool changed = true;
  while (changed) {
    changed = false;

    // Detect newly fixed variables and fold them into row bounds.
    for (std::size_t j = 0; j < n; ++j) {
      if (var_fixed[j]) continue;
      if (lb[j] > ub[j] + kFeasTol) {
        out.infeasible = true;
        return out;
      }
      if (ub[j] - lb[j] <= kFixTol) {
        var_fixed[j] = 1;
        out.fixed_values[j] = lb[j];
        changed = true;
      }
    }
    // Substitute all currently-fixed variables into rows by recomputing
    // each live row's constant contribution.
    for (std::size_t i = 0; i < m; ++i) {
      if (row_dropped[i]) continue;
      const Model::RowView r = model.row(static_cast<int>(i));
      double constant = 0.0;
      int live = 0;
      int last_var = -1;
      double last_coeff = 0.0;
      double min_act = 0.0, max_act = 0.0;
      bool min_finite = true, max_finite = true;
      for (std::size_t k = 0; k < r.size; ++k) {
        const int j = r.idx[k];
        if (var_fixed[j]) {
          constant += r.coeff[k] * *out.fixed_values[j];
          continue;
        }
        ++live;
        last_var = j;
        last_coeff = r.coeff[k];
        const double lo = r.coeff[k] > 0 ? lb[j] : ub[j];
        const double hi = r.coeff[k] > 0 ? ub[j] : lb[j];
        if (is_finite_bound(lo)) {
          min_act += r.coeff[k] * lo;
        } else {
          min_finite = false;
        }
        if (is_finite_bound(hi)) {
          max_act += r.coeff[k] * hi;
        } else {
          max_finite = false;
        }
      }
      const double eff_lb = rlb[i] - constant;
      const double eff_ub = rub[i] - constant;
      if (live == 0) {
        // Empty row: consistency check, then drop.
        if (eff_lb > kFeasTol || eff_ub < -kFeasTol) {
          out.infeasible = true;
          return out;
        }
        row_dropped[i] = 1;
        ++out.removed_rows;
        changed = true;
        continue;
      }
      if (live == 1) {
        // Singleton: tighten the variable's bounds and drop the row.
        const int j = last_var;
        double new_lo, new_hi;
        if (last_coeff > 0) {
          new_lo = is_finite_bound(eff_lb) ? eff_lb / last_coeff : -kInfinity;
          new_hi = is_finite_bound(eff_ub) ? eff_ub / last_coeff : kInfinity;
        } else {
          new_lo = is_finite_bound(eff_ub) ? eff_ub / last_coeff : -kInfinity;
          new_hi = is_finite_bound(eff_lb) ? eff_lb / last_coeff : kInfinity;
        }
        if (new_lo > lb[j] + kFixTol) {
          lb[j] = new_lo;
          changed = true;
        }
        if (new_hi < ub[j] - kFixTol) {
          ub[j] = new_hi;
          changed = true;
        }
        if (lb[j] > ub[j] + kFeasTol) {
          out.infeasible = true;
          return out;
        }
        row_dropped[i] = 1;
        ++out.removed_rows;
        changed = true;
        continue;
      }
      // Redundancy by activity bounds: the row can never bind.
      const bool lb_redundant =
          !is_finite_bound(rlb[i]) || (min_finite && min_act >= eff_lb - kFeasTol);
      const bool ub_redundant =
          !is_finite_bound(rub[i]) || (max_finite && max_act <= eff_ub + kFeasTol);
      if (lb_redundant && ub_redundant) {
        row_dropped[i] = 1;
        ++out.removed_rows;
        changed = true;
        continue;
      }
      // Provable infeasibility by activity bounds.
      if ((max_finite && max_act < eff_lb - kFeasTol) ||
          (min_finite && min_act > eff_ub + kFeasTol)) {
        out.infeasible = true;
        return out;
      }
    }
  }

  // Assemble the reduced model.
  Model reduced(model.sense());
  std::vector<int> new_index(n, -1);
  for (std::size_t j = 0; j < n; ++j) {
    if (var_fixed[j]) {
      out.objective_offset +=
          model.objective_coeff(static_cast<int>(j)) * *out.fixed_values[j];
      continue;
    }
    new_index[j] = static_cast<int>(out.kept_variables.size());
    out.kept_variables.push_back(static_cast<int>(j));
    reduced.add_variable(lb[j], ub[j],
                         model.objective_coeff(static_cast<int>(j)),
                         model.variable_name(static_cast<int>(j)));
  }
  for (std::size_t i = 0; i < m; ++i) {
    if (row_dropped[i]) continue;
    const Model::RowView r = model.row(static_cast<int>(i));
    std::vector<Term> terms;
    double constant = 0.0;
    for (std::size_t k = 0; k < r.size; ++k) {
      const int j = r.idx[k];
      if (var_fixed[j]) {
        constant += r.coeff[k] * *out.fixed_values[j];
      } else {
        terms.push_back({Variable{new_index[j]}, r.coeff[k]});
      }
    }
    reduced.add_constraint(terms, rlb[i] - constant, rub[i] - constant,
                           model.constraint_name(static_cast<int>(i)));
  }
  out.reduced = std::move(reduced);
  return out;
}

Solution solve_lp_presolved(const Model& model, const SimplexOptions& options) {
  const PresolveResult pre = presolve(model);
  Solution out;
  if (pre.infeasible) {
    out.status = SolveStatus::kInfeasible;
    return out;
  }
  Solution reduced_sol = solve_lp(pre.reduced, options);
  out.status = reduced_sol.status;
  out.iterations = reduced_sol.iterations;
  if (out.status != SolveStatus::kOptimal) return out;
  out.values = pre.restore(reduced_sol.values);
  out.objective = model.objective_value(out.values);
  out.primal_infeasibility = model.max_violation(out.values);
  if (out.primal_infeasibility > 1e-5) {
    out.status = SolveStatus::kNumericalError;
  }
  return out;
}

}  // namespace powerlim::lp
