// Bounded-variable revised primal simplex.
//
// Two-phase method: phase I drives artificial variables to zero starting
// from an all-artificial basis, phase II optimizes the real objective.
// The basis inverse is kept explicitly (dense) and updated with the
// product-form pivot; it is refactorized from scratch periodically for
// numerical stability. Anti-cycling is handled by falling back to Bland's
// rule after a run of degenerate pivots.
//
// This is sized for the LPs the paper reproduction generates (10^3-10^4
// nonzeros): dense O(m^2) per-iteration work is well within budget and a
// great deal simpler to make robust than sparse LU updates.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lp/model.h"
#include "util/deadline.h"

namespace powerlim::lp {

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kNumericalError,
  /// The wall-clock budget in SimplexOptions::deadline ran out; the
  /// partial point in Solution::values is not meaningful.
  kDeadlineExceeded,
  /// The CancelToken attached to the deadline was tripped (SIGINT/
  /// SIGTERM or a supervising driver); checked at pivot granularity.
  kCancelled,
};

const char* to_string(SolveStatus status);

struct SimplexOptions {
  /// Hard cap on simplex iterations across both phases; <= 0 means the
  /// solver picks 200 * (rows + cols) + 2000.
  long max_iterations = 0;
  /// Refactorize the basis inverse every this many pivots. Refactoring is
  /// O(m^3); product-form updates drift slowly, so this trades speed for
  /// accuracy. solve_lp() retries once at interval 20 if the fast pass
  /// ends with a feasibility check failure.
  int refactor_interval = 100;
  /// Primal feasibility tolerance on variable bounds.
  double primal_tol = 1e-7;
  /// Dual feasibility (reduced-cost) tolerance.
  double dual_tol = 1e-7;
  /// Smallest pivot magnitude accepted in the ratio test.
  double pivot_tol = 1e-9;
  /// Consecutive degenerate pivots before switching to Bland's rule;
  /// <= 0 engages Bland's rule from the very first pivot (the retry
  /// ladder's last-resort anti-cycling mode).
  int bland_trigger = 100;
  /// Wall-clock budget and cooperative cancellation, observed at pivot
  /// granularity (the cancel flag every pivot, the clock every few
  /// pivots). Default: unlimited. An expired deadline returns
  /// kDeadlineExceeded; a tripped token returns kCancelled.
  util::Deadline deadline;
};

/// Opaque basis snapshot for warm-started re-solves. Valid only for a
/// model with the *same constraint structure* (identical variables, rows
/// and nonzeros) as the solve that produced it - the cap-sweep pattern,
/// where only bounds change between solves. solve_lp() verifies primal
/// feasibility of the warmed basis under the new bounds and silently
/// falls back to a cold start when it does not hold (e.g. after a cap
/// decrease), so warm starting is always safe.
struct WarmStart {
  std::vector<char> status;  // internal column statuses
  std::vector<int> basis;    // basic column per row
  bool valid() const { return !basis.empty(); }
  void clear() {
    status.clear();
    basis.clear();
  }
};

struct Solution {
  SolveStatus status = SolveStatus::kNumericalError;
  /// Objective in the model's original sense; meaningful when optimal.
  double objective = 0.0;
  /// Per-variable values (size = model.num_variables()).
  std::vector<double> values;
  /// Per-row duals for the minimization form (size = num_constraints()).
  std::vector<double> duals;
  /// Per-variable reduced costs for the minimization form.
  std::vector<double> reduced_costs;
  long iterations = 0;
  /// Max primal violation of the returned point (diagnostic; ~0 when
  /// optimal).
  double primal_infeasibility = 0.0;
  /// Pivots that made no primal progress (step <= primal_tol). A high
  /// count flags degeneracy; it is what arms the Bland's-rule fallback.
  long degenerate_pivots = 0;
  /// Times the basis inverse was rebuilt from scratch (refactorizations
  /// are the numerical-accuracy lever the retry ladder turns).
  long refactor_count = 0;
  /// Whether the anti-cycling Bland's-rule fallback engaged at any point.
  bool bland_engaged = false;

  bool optimal() const { return status == SolveStatus::kOptimal; }
};

/// Solves the continuous relaxation of `model` (integrality flags are
/// ignored here; see branch_bound.h).
Solution solve_lp(const Model& model, const SimplexOptions& options = {});

/// Warm-started variant: `warm` (if valid) seeds the basis, and on an
/// optimal finish is overwritten with the final basis for the next solve.
Solution solve_lp(const Model& model, const SimplexOptions& options,
                  WarmStart* warm);

}  // namespace powerlim::lp
