// Bounded-variable revised primal simplex with two swappable basis
// backends.
//
// Two-phase method: phase I drives artificial variables to zero starting
// from a mixed crash basis, phase II optimizes the real objective.
// Anti-cycling is handled by falling back to Bland's rule after a run of
// degenerate pivots, and every optimal finish is re-verified at an
// exactly refactorized point before it is returned.
//
// Basis backends (SimplexOptions::basis_backend):
//
//   kSparse (default) - sparse LU factorization of the basis (Markowitz-
//     style pivot ordering, sparse triangular FTRAN/BTRAN), updated per
//     pivot by product-form eta files and refactorized on the
//     refactor_interval / eta-growth / stability triggers, with
//     optional candidate-list / Devex partial pricing. Per-iteration
//     cost is O(nnz), which is what makes 100k+-task traces tractable.
//
//   kDense - the original explicit O(m^2) basis inverse with full Dantzig
//     pricing. Slower but maximally simple, it is kept as the
//     instability fallback: solve_lp() retries a sparse solve that ends
//     in a numerical failure on the dense backend, and the robust retry
//     ladder's accuracy rungs (refactor-20 / bland / perturb) run dense
//     outright (src/robust/solve_driver.cpp).
//
// The "dense is well within budget" era ended with the exact certificate
// checker (PR 4): every accepted solve is independently re-verified in
// dyadic-rational arithmetic downstream, so the core is free to be fast
// and the checker - not solver conservatism - carries correctness.
// Inner loops shared by both backends live in lp/kernels.h.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lp/model.h"
#include "util/deadline.h"

namespace powerlim::lp {

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kNumericalError,
  /// The wall-clock budget in SimplexOptions::deadline ran out; the
  /// partial point in Solution::values is not meaningful.
  kDeadlineExceeded,
  /// The CancelToken attached to the deadline was tripped (SIGINT/
  /// SIGTERM or a supervising driver); checked at pivot granularity.
  kCancelled,
};

const char* to_string(SolveStatus status);

/// Which basis representation the solver keeps between pivots.
enum class BasisBackend { kDense, kSparse };

const char* to_string(BasisBackend backend);

/// Entering-variable selection rule. kAuto resolves to kDantzig on both
/// backends: under degenerate alternative optima, partial pricing can
/// reach a different optimal vertex from a warm start than from a cold
/// one, and the sweep pipeline requires warm and cold solves to agree
/// byte-for-byte (serial sweeps warm-start; parallel, distributed and
/// daemon workers solve cold). Dantzig converges to the same vertex from
/// either start, so it stays the default; the list and Devex modes are
/// opt-in for throughput-only callers. Bland's rule is not listed here:
/// it is the anti-cycling override (bland_trigger) and preempts any of
/// these.
enum class PricingRule {
  kAuto,
  /// Full scan, most-negative reduced cost. O(nnz) per iteration.
  kDantzig,
  /// Partial pricing: a rotating scan refills a small candidate list,
  /// iterations re-price only the list. Optimality is still certified by
  /// a full scan (a complete empty cycle). Sparse backend only.
  kCandidateList,
  /// Candidate-list selection weighted by Devex reference weights
  /// (approximate steepest edge; weights updated over the candidate
  /// list only). Costs one extra BTRAN per pivot.
  kDevex,
};

struct SimplexOptions {
  /// Hard cap on simplex iterations across both phases; <= 0 means the
  /// solver picks 200 * (rows + cols) + 2000.
  long max_iterations = 0;
  /// Refactorize the basis every this many pivots. Refactoring is the
  /// accuracy lever: product-form updates drift slowly, so this trades
  /// speed for accuracy. solve_lp() retries once in a high-accuracy mode
  /// if the fast pass ends with a feasibility check failure.
  int refactor_interval = 100;
  /// Primal feasibility tolerance on variable bounds.
  double primal_tol = 1e-7;
  /// Dual feasibility (reduced-cost) tolerance.
  double dual_tol = 1e-7;
  /// Smallest pivot magnitude accepted in the ratio test.
  double pivot_tol = 1e-9;
  /// Consecutive degenerate pivots before switching to Bland's rule;
  /// <= 0 engages Bland's rule from the very first pivot (the retry
  /// ladder's last-resort anti-cycling mode).
  int bland_trigger = 100;
  /// Basis representation. kSparse is the production default; kDense is
  /// the robustness fallback. A dense request on a model with more than
  /// kDenseBackendMaxRows rows is served sparse anyway - the explicit
  /// inverse would need O(m^2) memory the worker rlimits do not grant.
  BasisBackend basis_backend = BasisBackend::kSparse;
  /// Entering-variable rule; kAuto picks per backend (see PricingRule).
  PricingRule pricing = PricingRule::kAuto;
  /// Candidate-list capacity for partial pricing.
  int candidate_list_size = 64;
  /// Sparse backend: refactorize when the eta file exceeds this many
  /// nonzeros per row (eta_nnz > limit * m), independent of
  /// refactor_interval.
  double eta_growth_limit = 16.0;
  /// Collect per-bucket wall-clock timings (SimplexStats::*_ns). Off by
  /// default: the clock reads cost more than a sparse pivot on small
  /// models, and timings are bench telemetry, not solve output.
  bool collect_timing = false;
  /// Wall-clock budget and cooperative cancellation, observed at pivot
  /// granularity (the cancel flag every pivot, the clock every few
  /// pivots). Default: unlimited. An expired deadline returns
  /// kDeadlineExceeded; a tripped token returns kCancelled.
  util::Deadline deadline;
};

/// Hard row ceiling for the dense backend (see
/// SimplexOptions::basis_backend). 2048 rows ~ 32 MiB of explicit
/// inverse; beyond that the dense path is a memory hazard, not a
/// fallback.
inline constexpr std::size_t kDenseBackendMaxRows = 2048;

/// Per-solve counters and (optional) per-bucket timings. Counters are
/// deterministic for a given model/options/warm-start and are surfaced
/// into RunReport solver telemetry; the *_ns buckets are wall-clock
/// telemetry (bench only) and are zero unless
/// SimplexOptions::collect_timing was set.
struct SimplexStats {
  /// Backend that produced the accepted result (dense|sparse).
  BasisBackend backend = BasisBackend::kDense;
  long iterations = 0;
  /// Pivots that made no primal progress (step <= primal_tol). A high
  /// count flags degeneracy; it is what arms the Bland's-rule fallback.
  long degenerate_pivots = 0;
  /// Times the basis was refactorized from scratch.
  long refactor_count = 0;
  /// Whether the anti-cycling Bland's-rule fallback engaged at any point.
  bool bland_engaged = false;
  /// Bound flips (entering variable moved lower<->upper, no basis change).
  long bound_flips = 0;
  long ftran_calls = 0;
  long btran_calls = 0;
  /// Peak eta-file length (nonzeros) between refactorizations. 0 on the
  /// dense backend, whose product-form update is folded into the
  /// explicit inverse.
  long eta_nonzeros = 0;
  /// Worst fill ratio nnz(L + U) / nnz(B) across factorizations (1.0 is
  /// fill-free; 0 when the backend never factorized, e.g. dense).
  double lu_fill_ratio = 0.0;
  /// Wall-clock per bucket, nanoseconds (collect_timing only).
  double ftran_ns = 0.0;
  double btran_ns = 0.0;
  double pricing_ns = 0.0;
  double ratio_ns = 0.0;
  double update_ns = 0.0;
  double factor_ns = 0.0;
};

/// Opaque basis snapshot for warm-started re-solves. Valid only for a
/// model with the *same constraint structure* (identical variables, rows
/// and nonzeros) as the solve that produced it - the cap-sweep pattern,
/// where only bounds change between solves. solve_lp() verifies primal
/// feasibility of the warmed basis under the new bounds and silently
/// falls back to a cold start when it does not hold (e.g. after a cap
/// decrease), so warm starting is always safe. Snapshots are backend-
/// agnostic: a dense solve can seed a sparse one and vice versa.
struct WarmStart {
  std::vector<char> status;  // internal column statuses
  std::vector<int> basis;    // basic column per row
  bool valid() const { return !basis.empty(); }
  void clear() {
    status.clear();
    basis.clear();
  }
};

struct Solution {
  SolveStatus status = SolveStatus::kNumericalError;
  /// Objective in the model's original sense; meaningful when optimal.
  double objective = 0.0;
  /// Per-variable values (size = model.num_variables()).
  std::vector<double> values;
  /// Per-row duals for the minimization form (size = num_constraints()).
  std::vector<double> duals;
  /// Per-variable reduced costs for the minimization form.
  std::vector<double> reduced_costs;
  /// Mirrors stats.iterations (kept for call-site compatibility).
  long iterations = 0;
  /// Max primal violation of the returned point (diagnostic; ~0 when
  /// optimal).
  double primal_infeasibility = 0.0;
  /// Mirrors stats.degenerate_pivots.
  long degenerate_pivots = 0;
  /// Mirrors stats.refactor_count.
  long refactor_count = 0;
  /// Mirrors stats.bland_engaged.
  bool bland_engaged = false;
  /// Full per-solve counter set (see SimplexStats).
  SimplexStats stats;

  bool optimal() const { return status == SolveStatus::kOptimal; }
};

/// Solves the continuous relaxation of `model` (integrality flags are
/// ignored here; see branch_bound.h).
Solution solve_lp(const Model& model, const SimplexOptions& options = {});

/// Warm-started variant: `warm` (if valid) seeds the basis, and on an
/// optimal finish is overwritten with the final basis for the next solve.
Solution solve_lp(const Model& model, const SimplexOptions& options,
                  WarmStart* warm);

}  // namespace powerlim::lp
