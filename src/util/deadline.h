// Wall-clock deadlines and cooperative cancellation for long-running
// solves.
//
// Every solver loop in the stack (simplex pivots, branch & bound nodes,
// the retry ladder, cap sweeps) must be interruptible: production sweeps
// need bounded per-decision latency, and a killed process must be able
// to stop at a consistent point instead of being SIGKILLed mid-write.
// A Deadline is a cheap value type (one time_point + one pointer) checked
// at pivot granularity; a CancelToken is an atomic flag that is safe to
// trip from a signal handler.
#pragma once

#include <atomic>
#include <chrono>

namespace powerlim::util {

/// Cooperative cancellation flag. cancel() is async-signal-safe (a
/// relaxed atomic store), so SIGINT/SIGTERM handlers may trip it
/// directly; workers observe it at their next Deadline check.
class CancelToken {
 public:
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }
  /// Re-arms the token (tests and multi-run tools only).
  void reset() noexcept { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Why a solver loop should stop, in priority order: cancellation wins
/// over deadline expiry (the user asked to stop; report it as such).
enum class StopReason { kNone, kCancelled, kDeadline };

/// A wall-clock budget plus an optional cancel token. Default-constructed
/// deadlines are unlimited, so plumbing one through an options struct is
/// free for callers that never set it.
class Deadline {
 public:
  Deadline() = default;

  /// Expires `seconds` from now; also observes `cancel` when given.
  /// Non-positive or non-finite seconds mean "already expired" only for
  /// finite values <= 0; pass infinity for a cancel-only deadline.
  static Deadline after(double seconds, const CancelToken* cancel = nullptr);

  /// No time limit; stops only when `cancel` trips.
  static Deadline cancel_only(const CancelToken* cancel);

  /// Whichever of the two stops first (merges time limits and keeps any
  /// cancel token; when both have tokens, `a`'s wins).
  static Deadline sooner(const Deadline& a, const Deadline& b);

  bool has_time_limit() const { return has_time_; }
  bool unlimited() const { return !has_time_ && cancel_ == nullptr; }

  bool cancelled() const { return cancel_ != nullptr && cancel_->cancelled(); }
  bool expired() const {
    return has_time_ && std::chrono::steady_clock::now() >= end_;
  }

  /// The combined check solver loops call: kNone while work may continue.
  StopReason stop_reason() const {
    if (cancelled()) return StopReason::kCancelled;
    if (expired()) return StopReason::kDeadline;
    return StopReason::kNone;
  }

  /// Seconds until expiry (infinity when no time limit, clamped at 0).
  double remaining_seconds() const;

 private:
  bool has_time_ = false;
  std::chrono::steady_clock::time_point end_{};
  const CancelToken* cancel_ = nullptr;
};

}  // namespace powerlim::util
