#include "util/log.h"

#include <unistd.h>

#include <atomic>
#include <mutex>

#include "util/posix_io.h"

namespace powerlim::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::atomic<int> g_worker_id{-1};
// Serializes threads within one process; cross-process atomicity comes
// from the single write(2) per line.
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void set_log_worker_id(int id) { g_worker_id.store(id); }

int log_worker_id() { return g_worker_id.load(); }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::string line;
  line.reserve(message.size() + 32);
  line += '[';
  line += level_name(level);
  line += "] ";
  const int worker = g_worker_id.load();
  if (worker >= 0) {
    line += "[worker:";
    line += std::to_string(worker);
    line += "] ";
  }
  line += message;
  line += '\n';
  std::lock_guard<std::mutex> lock(g_mutex);
  // Best-effort: a logger must never fail the program over a full pipe.
  (void)write_full(STDERR_FILENO, line.data(), line.size());
}

}  // namespace powerlim::util
