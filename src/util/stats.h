// Small descriptive-statistics helpers used by the evaluation harness
// (medians, standard deviations and percentiles reported in the paper's
// tables, e.g. Table 3's "median time" and "std. dev. of power").
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace powerlim::util {

/// Summary of a sample; all fields are 0 for an empty sample.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double stdev = 0.0;  ///< sample standard deviation (n-1 denominator)
};

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 points.
double stdev(std::span<const double> xs);

/// Median (average of the two middle elements for even sizes).
double median(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::span<const double> xs, double p);

/// Full summary in one pass over a copy of the data.
Summary summarize(std::span<const double> xs);

/// Geometric mean; 0 for an empty span. All inputs must be positive.
double geomean(std::span<const double> xs);

/// Online mean/variance accumulator (Welford). Useful inside the
/// discrete-event simulator where samples arrive one at a time.
class Accumulator {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double stdev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace powerlim::util
