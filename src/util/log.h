// Minimal leveled logger. Off by default above WARN so library code stays
// quiet in tests; benches can raise verbosity to narrate experiment
// progress.
#pragma once

#include <sstream>
#include <string>

namespace powerlim::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit a message at the given level to stderr (thread-safe enough for our
/// single-threaded harness; a mutex keeps lines atomic if parallelized).
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace powerlim::util
