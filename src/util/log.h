// Minimal leveled logger. Off by default above WARN so library code stays
// quiet in tests; benches can raise verbosity to narrate experiment
// progress.
//
// Concurrency: each line is emitted as ONE write(2) to stderr, so
// parallel writers (the sweep supervisor and its forked workers all
// share the terminal) never interleave partial lines. Worker processes
// call set_log_worker_id() right after fork so every line they emit is
// tagged `[worker:<id>]`.
#pragma once

#include <sstream>
#include <string>

namespace powerlim::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Tags every subsequent line from this process with `[worker:<id>]`.
/// Called once in a freshly forked worker (before any logging); negative
/// clears the tag. Not thread-safe against concurrent logging - workers
/// are single-threaded and set it first thing.
void set_log_worker_id(int id);
int log_worker_id();

/// Emit a message at the given level to stderr as a single write(2)
/// (EINTR-retried), so concurrent processes sharing the stream never
/// tear a line apart.
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace powerlim::util
