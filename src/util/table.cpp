#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace powerlim::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table needs >=1 column");
}

Table& Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table row width mismatch");
  }
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string Table::pct(double fraction, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", digits, fraction * 100.0);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << "  ";
      out << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) out << ' ';
    }
    out << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      std::string cell = row[c];
      std::replace(cell.begin(), cell.end(), ',', ';');
      out << cell;
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string Table::to_json() const {
  std::ostringstream out;
  auto escape = [](const std::string& s) {
    std::string e;
    for (char c : s) {
      if (c == '"' || c == '\\') e += '\\';
      e += c;
    }
    return e;
  };
  out << "[\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (r) out << ",\n";
    out << "  {";
    const auto& row = rows_[r];
    for (std::size_t c = 0; c < headers_.size() && c < row.size(); ++c) {
      if (c) out << ",";
      out << '"' << escape(headers_[c]) << "\":\"" << escape(row[c]) << '"';
    }
    out << "}";
  }
  out << "\n]\n";
  return out.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

}  // namespace powerlim::util
