// EINTR-hardened POSIX IO helpers.
//
// Worker supervision is signal-heavy: SIGCHLD from exiting workers,
// SIGINT/SIGTERM from operators, and the alarm-style deadline kills the
// pool sends all land while the parent sits in read()/write()/fsync().
// A bare syscall then fails with EINTR (or returns a short count) and a
// naive caller misreads that as corruption. Every journal and pipe IO
// path goes through these helpers instead, so a retryable interruption
// is invisible and only real errors surface.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <string>

namespace powerlim::util {

/// Retries `call()` while it fails with EINTR. `call` must be a
/// syscall-shaped callable returning a signed count (< 0 = error with
/// errno set). Returns the first non-EINTR result.
template <typename Call>
auto retry_eintr(Call&& call) -> decltype(call());

/// Writes all `len` bytes, retrying EINTR and short writes. Returns 0 on
/// success, -1 on the first real error (errno preserved).
int write_full(int fd, const void* data, std::size_t len);

/// Reads exactly `len` bytes unless EOF comes first. Returns the byte
/// count actually read (possibly short at EOF), or -1 on a real error.
ssize_t read_full(int fd, void* data, std::size_t len);

/// Single read() that retries EINTR only (short reads are the caller's
/// business - this is the poll-loop primitive).
ssize_t read_some(int fd, void* data, std::size_t len);

/// fsync() with EINTR retry. Returns 0 or -1 (errno preserved).
int fsync_full(int fd);

/// Durability for file *creation*: fsync()s the directory containing
/// `path` (the path itself need not exist yet). fsync on a file makes
/// its bytes durable, but the directory entry pointing at a freshly
/// created file lives in the directory's own data - until that is
/// synced, a power loss can resurrect an empty directory with the file
/// (and its fsync'd contents) gone. Every create/rename of a durable
/// file must be followed by this. Returns 0 or -1 (errno preserved).
int fsync_parent_dir(const std::string& path);

/// Monotonic count of successful fsync_parent_dir() calls in this
/// process. Test observability: durability tests assert the
/// create -> dir-fsync sequence happened without strace.
long fsync_parent_dir_count();

/// Out-of-line errno check so the header does not drag <cerrno> into
/// every includer (and so tests can reference one symbol).
bool retry_errno_is_eintr();

// --- implementation ---

template <typename Call>
auto retry_eintr(Call&& call) -> decltype(call()) {
  for (;;) {
    const auto r = call();
    if (r >= 0) return r;
    if (!retry_errno_is_eintr()) return r;
  }
}

}  // namespace powerlim::util
