#include "util/posix_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>

namespace powerlim::util {

namespace {
std::atomic<long> g_dir_fsyncs{0};
}  // namespace

bool retry_errno_is_eintr() { return errno == EINTR; }

int write_full(int fd, const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n =
        retry_eintr([&] { return ::write(fd, p + done, len - done); });
    if (n < 0) return -1;
    done += static_cast<std::size_t>(n);
  }
  return 0;
}

ssize_t read_full(int fd, void* data, std::size_t len) {
  char* p = static_cast<char*>(data);
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n =
        retry_eintr([&] { return ::read(fd, p + done, len - done); });
    if (n < 0) return -1;
    if (n == 0) break;  // EOF: report the short count
    done += static_cast<std::size_t>(n);
  }
  return static_cast<ssize_t>(done);
}

ssize_t read_some(int fd, void* data, std::size_t len) {
  return retry_eintr([&] { return ::read(fd, data, len); });
}

int fsync_full(int fd) {
  return static_cast<int>(retry_eintr([&] { return ::fsync(fd); }));
}

int fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos
          ? std::string(".")
          : (slash == 0 ? std::string("/") : path.substr(0, slash));
  const int fd = static_cast<int>(retry_eintr(
      [&] { return ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC); }));
  if (fd < 0) return -1;
  const int rc = fsync_full(fd);
  const int saved = errno;
  ::close(fd);
  errno = saved;
  if (rc == 0) g_dir_fsyncs.fetch_add(1, std::memory_order_relaxed);
  return rc;
}

long fsync_parent_dir_count() {
  return g_dir_fsyncs.load(std::memory_order_relaxed);
}

}  // namespace powerlim::util
