#include "util/posix_io.h"

#include <unistd.h>

#include <cerrno>

namespace powerlim::util {

bool retry_errno_is_eintr() { return errno == EINTR; }

int write_full(int fd, const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n =
        retry_eintr([&] { return ::write(fd, p + done, len - done); });
    if (n < 0) return -1;
    done += static_cast<std::size_t>(n);
  }
  return 0;
}

ssize_t read_full(int fd, void* data, std::size_t len) {
  char* p = static_cast<char*>(data);
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n =
        retry_eintr([&] { return ::read(fd, p + done, len - done); });
    if (n < 0) return -1;
    if (n == 0) break;  // EOF: report the short count
    done += static_cast<std::size_t>(n);
  }
  return static_cast<ssize_t>(done);
}

ssize_t read_some(int fd, void* data, std::size_t len) {
  return retry_eintr([&] { return ::read(fd, data, len); });
}

int fsync_full(int fd) {
  return static_cast<int>(retry_eintr([&] { return ::fsync(fd); }));
}

}  // namespace powerlim::util
