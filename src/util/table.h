// Console table / CSV writers used by the bench harness to print the rows
// and series reported in the paper's tables and figures.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace powerlim::util {

/// A simple column-aligned text table. Cells are strings; numeric helpers
/// format with fixed precision. Intended for human-readable bench output
/// mirroring the paper's tables.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  /// Formats a double with `digits` decimal places.
  static std::string num(double v, int digits = 3);
  /// Formats as a percentage string ("12.3%").
  static std::string pct(double fraction, int digits = 1);

  /// Render column-aligned text, with a header separator line.
  std::string to_string() const;
  /// Render as CSV (no escaping needed for our content; commas are
  /// replaced with ';' defensively).
  std::string to_csv() const;
  /// Render as a JSON array of row objects keyed by header - the
  /// machine-readable bench artifact shape CI archives (quotes and
  /// backslashes in cells are escaped).
  std::string to_json() const;

  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace powerlim::util
