#include "util/deadline.h"

#include <cmath>
#include <limits>

namespace powerlim::util {

Deadline Deadline::after(double seconds, const CancelToken* cancel) {
  Deadline d;
  d.cancel_ = cancel;
  if (std::isfinite(seconds)) {
    d.has_time_ = true;
    // Saturate instead of overflowing the clock's representation.
    const double capped = std::min(seconds, 3.0e8);  // ~9.5 years
    d.end_ = std::chrono::steady_clock::now() +
             std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double>(std::max(capped, 0.0)));
  }
  return d;
}

Deadline Deadline::cancel_only(const CancelToken* cancel) {
  Deadline d;
  d.cancel_ = cancel;
  return d;
}

Deadline Deadline::sooner(const Deadline& a, const Deadline& b) {
  Deadline d;
  d.cancel_ = a.cancel_ != nullptr ? a.cancel_ : b.cancel_;
  if (a.has_time_ && b.has_time_) {
    d.has_time_ = true;
    d.end_ = std::min(a.end_, b.end_);
  } else if (a.has_time_ || b.has_time_) {
    d.has_time_ = true;
    d.end_ = a.has_time_ ? a.end_ : b.end_;
  }
  return d;
}

double Deadline::remaining_seconds() const {
  if (!has_time_) return std::numeric_limits<double>::infinity();
  const double left =
      std::chrono::duration<double>(end_ - std::chrono::steady_clock::now())
          .count();
  return left > 0.0 ? left : 0.0;
}

}  // namespace powerlim::util
