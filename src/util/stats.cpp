#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace powerlim::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double stdev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank =
      (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) return s;
  s.count = xs.size();
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  s.mean = mean(xs);
  s.median = median(xs);
  s.stdev = stdev(xs);
  return s;
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::stdev() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

}  // namespace powerlim::util
