// Socket-semantics siblings of the posix_io EINTR helpers.
//
// Distributed sweeps talk TCP to remote serve-worker processes, and a
// network peer fails in ways a pipe never does: partial send()s once the
// socket buffer fills, EPIPE/ECONNRESET when the peer vanishes, SIGPIPE
// delivered mid-write, connect() hanging on a dead host. These wrappers
// normalize all of that into a small IoStatus taxonomy so the scheduler
// can classify "peer died" distinctly from "real IO error" and never
// takes a fatal signal from a dead connection (ignore_sigpipe +
// MSG_NOSIGNAL belt-and-braces).
//
// Everything retries EINTR via util::retry_eintr - the coordinator is as
// signal-heavy as the worker pool (SIGCHLD, SIGINT/SIGTERM, deadlines).
#pragma once

#include <string>

namespace powerlim::util {

/// Suppresses SIGPIPE process-wide (idempotent). Called by every socket
/// entry point; a dead peer must surface as EPIPE from send(), never as
/// a process-killing signal.
void ignore_sigpipe();

/// "host:port" address of a remote worker. Numeric IPv4 or a resolvable
/// hostname; the port is the last ':'-separated token.
struct Endpoint {
  std::string host = "127.0.0.1";
  int port = 0;
};

/// Parses "host:port". Returns false (and leaves *out alone) on a
/// missing ':', empty host, or a port outside [0, 65535].
bool parse_endpoint(const std::string& text, Endpoint* out);

std::string to_string(const Endpoint& ep);

/// How one socket operation ended.
enum class IoStatus {
  kOk,
  /// The deadline passed before the operation completed (retryable).
  kTimeout,
  /// The peer closed or reset the connection (EOF, EPIPE, ECONNRESET):
  /// retryable against a *different* peer, fatal for this one.
  kDisconnected,
  /// A real local error (errno preserved by the caller's message).
  kError,
};

const char* to_string(IoStatus s);

/// Why listen_tcp_status failed, typed so callers can branch. The one
/// case that deserves different handling is kAddrInUse: a daemon
/// restarting over a dying predecessor races the kernel releasing the
/// port (SO_REUSEADDR covers TIME_WAIT, not a socket still held by the
/// exiting process), and the correct response is a brief bounded retry,
/// not a fatal error.
enum class ListenStatus {
  kOk,
  /// bind() failed with EADDRINUSE on every resolved address: retryable.
  kAddrInUse,
  /// The host did not resolve.
  kResolveError,
  /// Any other socket/bind/listen failure (message carries errno).
  kError,
};

const char* to_string(ListenStatus s);

/// Creates a listening TCP socket bound to host:port (port 0 picks an
/// ephemeral port; recover it with bound_port). SO_REUSEADDR is set
/// before bind. On success *fd_out holds the listening fd; otherwise the
/// typed status says why, with a message in *error.
ListenStatus listen_tcp_status(const std::string& host, int port,
                               int* fd_out, std::string* error);

/// Untyped convenience wrapper over listen_tcp_status. Returns the fd,
/// or -1 with a message in *error.
int listen_tcp(const std::string& host, int port, std::string* error);

/// The locally bound port of a listening socket (-1 on error).
int bound_port(int listen_fd);

/// accept() with a wall timeout so the accept loop stays responsive to
/// cancellation. Returns the connected fd, or -1 with *status set to
/// kTimeout / kError.
int accept_timeout(int listen_fd, double timeout_s, IoStatus* status);

/// Nonblocking connect with a wall timeout. Resolves `ep.host`, tries
/// each address, and returns a connected blocking-mode fd, or -1 with a
/// message in *error. A dead or unreachable peer costs at most
/// `timeout_s`, never a kernel-default SYN retry eternity.
int connect_timeout(const Endpoint& ep, double timeout_s,
                    std::string* error);

/// Starts a *nonblocking* connect toward `ep`. Returns a nonblocking fd
/// whose three-way handshake is complete or in progress, or -1 with a
/// message in *error (resolve/socket failure). Poll the fd for POLLOUT
/// and then settle it with connect_finish - this is the primitive for a
/// poll-loop daemon that must court a dead peer (a standby redialing
/// its primary) without ever blocking its own clients.
int connect_start(const Endpoint& ep, std::string* error);

/// Settles a connect_start fd after poll reported POLLOUT (or
/// POLLERR/POLLHUP): kOk = connected (the fd stays nonblocking),
/// kDisconnected = refused/unreachable/timed out (retryable later),
/// kError = a real local failure. The caller closes the fd on anything
/// but kOk.
IoStatus connect_finish(int fd, std::string* error);

/// Sends all `len` bytes, retrying EINTR and partial sends, polling for
/// writability up to `timeout_s` total (0 = wait forever). EPIPE /
/// ECONNRESET map to kDisconnected.
IoStatus send_all(int fd, const void* data, std::size_t len,
                  double timeout_s = 0.0);

/// One nonblocking drain for poll-loop writers flushing an outbuf:
/// sends as much as the socket buffer takes right now and reports
/// progress in *sent. kOk = all len bytes went out, kTimeout = buffer
/// filled first (*sent < len; re-arm POLLOUT and come back),
/// kDisconnected / kError as send_all. Never polls and never blocks.
IoStatus send_nonblock(int fd, const void* data, std::size_t len,
                       std::size_t* sent);

/// One recv() appended to *out (after the caller's poll said readable).
/// kOk = got bytes, kTimeout = spuriously unready (EAGAIN), and EOF /
/// ECONNRESET / EPIPE = kDisconnected.
IoStatus recv_some(int fd, std::string* out);

}  // namespace powerlim::util
