#include "util/socket_io.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "util/posix_io.h"

namespace powerlim::util {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

bool set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, want) == 0;
}

/// poll() one fd for `events`, retrying EINTR, up to `timeout_ms`.
/// Returns poll's count (0 = timeout).
int poll_one(int fd, short events, int timeout_ms) {
  struct pollfd p = {fd, events, 0};
  return static_cast<int>(
      retry_eintr([&] { return ::poll(&p, 1, timeout_ms); }));
}

}  // namespace

void ignore_sigpipe() {
  static const bool done = [] {
    struct sigaction sa = {};
    sa.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &sa, nullptr);
    return true;
  }();
  (void)done;
}

bool parse_endpoint(const std::string& text, Endpoint* out) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0) return false;
  const std::string host = text.substr(0, colon);
  const std::string port_text = text.substr(colon + 1);
  if (port_text.empty()) return false;
  char* end = nullptr;
  const long port = std::strtol(port_text.c_str(), &end, 10);
  if (end == port_text.c_str() || *end != '\0' || port < 0 || port > 65535) {
    return false;
  }
  out->host = host;
  out->port = static_cast<int>(port);
  return true;
}

std::string to_string(const Endpoint& ep) {
  return ep.host + ":" + std::to_string(ep.port);
}

const char* to_string(IoStatus s) {
  switch (s) {
    case IoStatus::kOk:
      return "ok";
    case IoStatus::kTimeout:
      return "timeout";
    case IoStatus::kDisconnected:
      return "disconnected";
    case IoStatus::kError:
      return "error";
  }
  return "?";
}

const char* to_string(ListenStatus s) {
  switch (s) {
    case ListenStatus::kOk:
      return "ok";
    case ListenStatus::kAddrInUse:
      return "address-in-use";
    case ListenStatus::kResolveError:
      return "resolve-error";
    case ListenStatus::kError:
      return "error";
  }
  return "?";
}

ListenStatus listen_tcp_status(const std::string& host, int port,
                               int* fd_out, std::string* error) {
  ignore_sigpipe();
  if (fd_out) *fd_out = -1;
  struct addrinfo hints = {};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  struct addrinfo* res = nullptr;
  const std::string port_text = std::to_string(port);
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               port_text.c_str(), &hints, &res);
  if (rc != 0) {
    if (error) {
      *error = "cannot resolve '" + host + "': " + ::gai_strerror(rc);
    }
    return ListenStatus::kResolveError;
  }
  int fd = -1;
  bool addr_in_use = false;
  int last_errno = 0;
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    // SO_REUSEADDR before bind: without it a restart inside the
    // predecessor's TIME_WAIT window fails spuriously.
    const int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, 64) == 0) {
      break;
    }
    last_errno = errno;
    addr_in_use = addr_in_use || errno == EADDRINUSE;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    errno = last_errno;
    if (error) {
      *error = errno_message(
          ("cannot listen on " + host + ":" + port_text).c_str());
    }
    return addr_in_use ? ListenStatus::kAddrInUse : ListenStatus::kError;
  }
  if (fd_out) *fd_out = fd;
  return ListenStatus::kOk;
}

int listen_tcp(const std::string& host, int port, std::string* error) {
  int fd = -1;
  (void)listen_tcp_status(host, port, &fd, error);
  return fd;
}

int bound_port(int listen_fd) {
  struct sockaddr_in addr = {};
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
                    &len) != 0 ||
      addr.sin_family != AF_INET) {
    return -1;
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

int accept_timeout(int listen_fd, double timeout_s, IoStatus* status) {
  const int ready =
      poll_one(listen_fd, POLLIN, static_cast<int>(timeout_s * 1000.0));
  if (ready < 0) {
    if (status) *status = IoStatus::kError;
    return -1;
  }
  if (ready == 0) {
    if (status) *status = IoStatus::kTimeout;
    return -1;
  }
  // ECONNABORTED means *that* connection died between SYN and accept();
  // the listening socket is fine, so report a timeout-like miss the
  // caller's accept loop simply retries, instead of a scary kError.
  // EINTR is retried inline (the daemon takes SIGCHLD constantly).
  const int fd = static_cast<int>(
      retry_eintr([&] { return ::accept(listen_fd, nullptr, nullptr); }));
  if (fd < 0) {
    if (status) {
      *status = errno == ECONNABORTED ? IoStatus::kTimeout : IoStatus::kError;
    }
    return -1;
  }
  if (status) *status = IoStatus::kOk;
  return fd;
}

int connect_timeout(const Endpoint& ep, double timeout_s,
                    std::string* error) {
  ignore_sigpipe();
  struct addrinfo hints = {};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const std::string port_text = std::to_string(ep.port);
  const int rc = ::getaddrinfo(ep.host.c_str(), port_text.c_str(), &hints,
                               &res);
  if (rc != 0) {
    if (error) {
      *error = "cannot resolve '" + ep.host + "': " + ::gai_strerror(rc);
    }
    return -1;
  }
  std::string last_error = "no usable address";
  int fd = -1;
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = errno_message("socket");
      continue;
    }
    if (!set_nonblocking(fd, true)) {
      last_error = errno_message("fcntl");
      ::close(fd);
      fd = -1;
      continue;
    }
    const int crc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    if (crc != 0 && errno != EINPROGRESS && errno != EINTR) {
      last_error = errno_message("connect");
      ::close(fd);
      fd = -1;
      continue;
    }
    if (crc != 0) {
      const int ready =
          poll_one(fd, POLLOUT, static_cast<int>(timeout_s * 1000.0));
      int so_error = ETIMEDOUT;
      if (ready > 0) {
        socklen_t len = sizeof so_error;
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0) {
          so_error = errno;
        }
      }
      if (ready <= 0 || so_error != 0) {
        last_error = std::string("connect: ") +
                     std::strerror(ready <= 0 ? ETIMEDOUT : so_error);
        ::close(fd);
        fd = -1;
        continue;
      }
    }
    if (!set_nonblocking(fd, false)) {
      last_error = errno_message("fcntl");
      ::close(fd);
      fd = -1;
      continue;
    }
    break;
  }
  ::freeaddrinfo(res);
  if (fd < 0 && error) {
    *error = "cannot connect to " + to_string(ep) + " (" + last_error + ")";
  }
  return fd;
}

int connect_start(const Endpoint& ep, std::string* error) {
  ignore_sigpipe();
  struct addrinfo hints = {};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const std::string port_text = std::to_string(ep.port);
  const int rc = ::getaddrinfo(ep.host.c_str(), port_text.c_str(), &hints,
                               &res);
  if (rc != 0) {
    if (error) {
      *error = "cannot resolve '" + ep.host + "': " + ::gai_strerror(rc);
    }
    return -1;
  }
  std::string last_error = "no usable address";
  int fd = -1;
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = errno_message("socket");
      continue;
    }
    if (!set_nonblocking(fd, true)) {
      last_error = errno_message("fcntl");
      ::close(fd);
      fd = -1;
      continue;
    }
    const int crc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    if (crc == 0 || errno == EINPROGRESS || errno == EINTR) break;
    last_error = errno_message("connect");
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0 && error) {
    *error = "cannot connect to " + to_string(ep) + " (" + last_error + ")";
  }
  return fd;
}

IoStatus connect_finish(int fd, std::string* error) {
  int so_error = 0;
  socklen_t len = sizeof so_error;
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0) {
    if (error) *error = errno_message("getsockopt");
    return IoStatus::kError;
  }
  if (so_error == 0) return IoStatus::kOk;
  if (error) {
    *error = std::string("connect: ") + std::strerror(so_error);
  }
  switch (so_error) {
    case ECONNREFUSED:
    case ECONNRESET:
    case EPIPE:
    case ETIMEDOUT:
    case EHOSTUNREACH:
    case ENETUNREACH:
    case EHOSTDOWN:
      return IoStatus::kDisconnected;
    default:
      return IoStatus::kError;
  }
}

IoStatus send_all(int fd, const void* data, std::size_t len,
                  double timeout_s) {
  ignore_sigpipe();
  const char* p = static_cast<const char*>(data);
  const auto start = Clock::now();
  while (len > 0) {
    // MSG_DONTWAIT even on blocking-mode fds: a full socket buffer must
    // surface as EAGAIN and fall through to the bounded poll below, not
    // block inside send() where the timeout cannot reach it.
    const ssize_t n = retry_eintr(
        [&] { return ::send(fd, p, len, MSG_NOSIGNAL | MSG_DONTWAIT); });
    if (n > 0) {
      p += n;
      len -= static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      return IoStatus::kDisconnected;
    }
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
      return IoStatus::kError;
    }
    // Socket buffer full (or a zero-byte send): wait for writability,
    // bounded by the overall timeout so a stalled peer cannot wedge the
    // scheduler inside a "blocking" send.
    int wait_ms = 100;
    if (timeout_s > 0.0) {
      const double left = timeout_s - seconds_since(start);
      if (left <= 0.0) return IoStatus::kTimeout;
      wait_ms = std::max(1, static_cast<int>(left * 1000.0));
      wait_ms = std::min(wait_ms, 100);
    }
    const int ready = poll_one(fd, POLLOUT, wait_ms);
    if (ready < 0) return IoStatus::kError;
  }
  return IoStatus::kOk;
}

IoStatus send_nonblock(int fd, const void* data, std::size_t len,
                       std::size_t* sent) {
  ignore_sigpipe();
  *sent = 0;
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = retry_eintr(
        [&] { return ::send(fd, p, len, MSG_NOSIGNAL | MSG_DONTWAIT); });
    if (n > 0) {
      p += n;
      len -= static_cast<std::size_t>(n);
      *sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return IoStatus::kTimeout;
    }
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      return IoStatus::kDisconnected;
    }
    return IoStatus::kError;
  }
  return IoStatus::kOk;
}

IoStatus recv_some(int fd, std::string* out) {
  char buf[1 << 16];
  const ssize_t n =
      retry_eintr([&] { return ::recv(fd, buf, sizeof buf, 0); });
  if (n > 0) {
    out->append(buf, static_cast<std::size_t>(n));
    return IoStatus::kOk;
  }
  if (n == 0) return IoStatus::kDisconnected;
  if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kTimeout;
  if (errno == ECONNRESET || errno == EPIPE) return IoStatus::kDisconnected;
  return IoStatus::kError;
}

}  // namespace powerlim::util
