// Deterministic random-number utilities.
//
// Every stochastic element in powerlim (load-imbalance draws, exploration
// order, jitter) flows through an explicitly seeded Rng so that every
// experiment in the paper reproduction is bit-reproducible.
#pragma once

#include <cstdint>
#include <random>

namespace powerlim::util {

/// Seeded random-number generator with the small set of distributions the
/// trace generators need. Copyable; copies evolve independently.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Normal draw with the given mean and standard deviation.
  double normal(double mean, double stdev) {
    return std::normal_distribution<double>(mean, stdev)(engine_);
  }

  /// Normal draw truncated to [lo, hi] by clamping (cheap and fine for
  /// imbalance factors that must stay positive).
  double clamped_normal(double mean, double stdev, double lo, double hi) {
    const double x = normal(mean, stdev);
    return x < lo ? lo : (x > hi ? hi : x);
  }

  /// Log-normal draw: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// Derive an independent child generator; used to give each MPI rank or
  /// iteration its own stream so adding ranks does not perturb others.
  Rng split() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ULL); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace powerlim::util
