// Simulated cluster hardware description.
//
// The paper's experiments ran on Cab (LLNL): 1296 nodes, two 8-core Xeon
// E5-2670 sockets per node, socket-level DVFS (1.2-2.6 GHz) and RAPL
// power capping. No such hardware exists here, so machine/ provides an
// analytic stand-in: socket specifications, an (f, threads) -> (duration,
// power) task model (power_model.h) and a RAPL-like capping loop
// (rapl.h). Everything downstream (LP formulation, replay simulator,
// runtime algorithms) consumes only the (duration, power) points this
// module produces, exactly as the paper's pipeline consumes profiled
// measurements.
#pragma once

#include <vector>

namespace powerlim::machine {

/// One processor socket. Defaults model a Xeon E5-2670: 8 cores, DVFS
/// 1.2-2.6 GHz in 0.1 GHz steps (15 states, matching Table 1 of the
/// paper), with clock modulation able to throttle below the lowest DVFS
/// state down to 22% of nominal frequency (the paper observes RAPL running
/// processors at 22% of max clock under a 30 W cap).
struct SocketSpec {
  int cores = 8;
  double fmin_ghz = 1.2;
  double fmax_ghz = 2.6;
  double fstep_ghz = 0.1;
  /// Clock-modulation floor: RAPL may throttle to this effective
  /// frequency, below the lowest architected DVFS state.
  double throttle_floor_ghz = 0.572;  // 22% of 2.6 GHz

  // --- analytic power model parameters (see power_model.h) ---
  /// Package static/leakage power, W.
  double p_static = 15.0;
  /// Per-core dynamic power at fmax and 100% compute activity, W.
  double p_core_max = 10.0;
  /// Uncore + DRAM-side power at 100% memory intensity, W.
  double p_uncore_max = 10.0;
  /// Dynamic power ~ (f/fmax)^alpha above the voltage floor (voltage
  /// scales with frequency there).
  double alpha = 2.4;
  /// Below this frequency the voltage regulator has bottomed out, so
  /// dynamic power only falls linearly with f (duty-cycle regime). This
  /// makes deep throttling disproportionately expensive in perf/watt,
  /// which is what the paper observes under 30 W caps.
  double f_vmin_ghz = 1.6;
  /// Fraction of per-core dynamic power drawn even when the core is
  /// stalled on memory (clock still toggling).
  double stall_power_fraction = 0.35;

  /// Architected DVFS states, descending from fmax to fmin.
  std::vector<double> dvfs_states() const;

  /// True if `ghz` is within the continuous throttling range.
  bool frequency_reachable(double ghz) const {
    return ghz >= throttle_floor_ghz - 1e-12 && ghz <= fmax_ghz + 1e-12;
  }
};

/// A cluster of identical sockets connected by a network. The paper runs
/// one multi-threaded MPI process per socket (Section 2.2), so "rank" and
/// "socket" are interchangeable here.
struct ClusterSpec {
  int sockets = 32;
  SocketSpec socket;
  /// Point-to-point message cost: latency + bytes / bandwidth.
  double net_latency_s = 2e-6;
  double net_bandwidth_bps = 4e9;  // ~QDR InfiniBand effective

  double message_seconds(double bytes) const {
    return net_latency_s + bytes / net_bandwidth_bps;
  }
};

/// Timing constants measured by the paper (Section 6.2); the replay
/// simulator and runtime algorithms charge these overheads.
struct Overheads {
  /// Median profiler overhead per instrumented MPI call.
  static constexpr double kProfilingPerMpiCall = 34e-6;
  /// Median per-task DVFS transition overhead during schedule replay.
  static constexpr double kDvfsTransition = 145e-6;
  /// Average cost of one Conductor power-reallocation decision.
  static constexpr double kPowerReallocation = 566e-6;
  /// Replay only switches configuration before tasks at least this long
  /// (Section 6.1).
  static constexpr double kSwitchThresholdSeconds = 1e-3;
};

}  // namespace powerlim::machine
