// Analytic task duration & power model.
//
// Maps (task workload, frequency, thread count) to (duration, socket
// power). Replaces the per-task configuration profiles the paper measures
// on real hardware (Figure 1 / Table 1). The model is deliberately simple
// but reproduces the phenomena the paper's evaluation hinges on:
//
//  * duration falls and power rises with frequency (Figure 1);
//  * more threads -> more performance and more power for compute-bound
//    tasks, so fewer-than-max threads are only Pareto-efficient at the
//    lowest frequency (Section 3.2's observation);
//  * memory-bound tasks with cache contention run *faster* with fewer
//    threads, letting remaining power budget raise frequency (the LULESH
//    Table 3 effect: 4-5 threads beat 8 under a 50 W cap).
#pragma once

#include <vector>

#include "machine/machine.h"

namespace powerlim::machine {

/// Workload characteristics of one computation task (a DAG edge between
/// two MPI calls). All times are for one thread at nominal (fmax)
/// frequency.
struct TaskWork {
  /// Compute-bound time: scales with 1/f and parallelizes per Amdahl.
  double cpu_seconds = 0.0;
  /// Memory-bound time: frequency-insensitive, parallelizes until the
  /// memory system saturates.
  double mem_seconds = 0.0;
  /// Amdahl parallel fraction of the compute part.
  double parallel_fraction = 0.99;
  /// Memory bandwidth stops improving beyond this many threads.
  int mem_parallel_threads = 4;
  /// Additional memory time per thread beyond `cache_knee` (fraction of
  /// mem_seconds per extra thread), modeling shared-cache contention.
  double cache_contention = 0.0;
  int cache_knee = 8;

  /// Total single-thread nominal duration.
  double nominal_seconds() const { return cpu_seconds + mem_seconds; }
};

/// One realizable configuration of a task: a DVFS state (or effective
/// throttled frequency) and an OpenMP thread count, with the resulting
/// task duration and average socket power.
struct Config {
  double ghz = 0.0;
  int threads = 0;
  double duration = 0.0;
  double power = 0.0;
};

/// Evaluates the analytic model for a given socket.
///
/// Manufacturing variation: real parts of the same SKU differ in power
/// efficiency (the paper names "differences in power efficiency between
/// individual processors" as a driver of Conductor's reallocation,
/// Section 4.2). set_rank_efficiency() installs a per-socket multiplier
/// on total power; every power-consuming query takes an optional `rank`
/// (default -1 = the nominal part).
class PowerModel {
 public:
  explicit PowerModel(SocketSpec spec) : spec_(spec) {}

  const SocketSpec& spec() const { return spec_; }

  /// Installs per-rank power multipliers (1.0 = nominal; 1.05 = this
  /// socket burns 5% more for the same work). Empty = homogeneous.
  void set_rank_efficiency(std::vector<double> factors);
  /// The multiplier for `rank` (1.0 when unset or out of range).
  double rank_efficiency(int rank) const;
  bool heterogeneous() const { return !rank_efficiency_.empty(); }

  /// Task duration at frequency `ghz` with `threads` active threads.
  /// `ghz` may be any value in the continuous throttling range.
  /// (Duration is rank-independent: variation affects watts, not speed.)
  double duration(const TaskWork& work, double ghz, int threads) const;

  /// Average socket power while running the task in this configuration.
  double power(const TaskWork& work, double ghz, int threads,
               int rank = -1) const;

  /// Socket power when idle (blocked in MPI at lowest frequency).
  double idle_power(int rank = -1) const;

  /// Bundles duration and power into a Config.
  Config config(const TaskWork& work, double ghz, int threads,
                int rank = -1) const;

  /// Every architected configuration: dvfs_states() x {1..cores} threads.
  /// Order: threads descending, frequency descending (so element 0 is the
  /// max-performance configuration).
  std::vector<Config> enumerate(const TaskWork& work, int rank = -1) const;

  /// The maximum-performance configuration (all cores, fmax).
  Config fastest(const TaskWork& work) const;

  /// Highest effective frequency (DVFS + clock modulation continuum) whose
  /// model power does not exceed `power_cap` with `threads` active.
  /// Clamped to the throttle floor if even that violates the cap — RAPL
  /// cannot reduce power further (mirrors the paper, where some benchmarks
  /// "were not able to be scheduled at the lowest power constraint").
  double rapl_frequency(const TaskWork& work, int threads, double power_cap,
                        int rank = -1) const;

 private:
  SocketSpec spec_;
  std::vector<double> rank_efficiency_;
};

}  // namespace powerlim::machine
