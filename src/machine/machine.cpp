#include "machine/machine.h"

#include <cmath>

namespace powerlim::machine {

std::vector<double> SocketSpec::dvfs_states() const {
  std::vector<double> states;
  // Descending from fmax so states[0] is the fastest, matching the paper's
  // Table 1 ordering (C_{i,1} = 2.6 GHz ... C_{i,15} = 1.2 GHz).
  const int count =
      static_cast<int>(std::round((fmax_ghz - fmin_ghz) / fstep_ghz)) + 1;
  states.reserve(count);
  for (int i = 0; i < count; ++i) {
    states.push_back(fmax_ghz - i * fstep_ghz);
  }
  return states;
}

}  // namespace powerlim::machine
