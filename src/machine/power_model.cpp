#include "machine/power_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace powerlim::machine {

namespace {
/// Memory-time multiplier at `threads`: bandwidth parallelism up to the
/// saturation point, then shared-cache contention beyond the knee.
double memory_factor(const TaskWork& work, int threads) {
  const int eff = std::min(threads, std::max(work.mem_parallel_threads, 1));
  double factor = 1.0 / static_cast<double>(eff);
  if (threads > work.cache_knee) {
    factor += work.cache_contention *
              static_cast<double>(threads - work.cache_knee);
  }
  return factor;
}

/// Dynamic-power scale factor vs. frequency: ~f^alpha while voltage tracks
/// frequency, linear in f once the regulator hits its floor.
double dynamic_scale(const SocketSpec& spec, double ghz) {
  if (ghz >= spec.f_vmin_ghz) {
    return std::pow(ghz / spec.fmax_ghz, spec.alpha);
  }
  const double at_floor = std::pow(spec.f_vmin_ghz / spec.fmax_ghz, spec.alpha);
  return at_floor * (ghz / spec.f_vmin_ghz);
}
}  // namespace

double PowerModel::duration(const TaskWork& work, double ghz,
                            int threads) const {
  if (threads < 1 || threads > spec_.cores) {
    throw std::invalid_argument("duration: bad thread count");
  }
  if (!(ghz > 0.0)) throw std::invalid_argument("duration: bad frequency");
  const double fscale = spec_.fmax_ghz / ghz;
  const double pf = work.parallel_fraction;
  const double cpu =
      work.cpu_seconds * fscale * ((1.0 - pf) + pf / threads);
  const double mem = work.mem_seconds * memory_factor(work, threads);
  return cpu + mem;
}

void PowerModel::set_rank_efficiency(std::vector<double> factors) {
  for (double f : factors) {
    if (!(f > 0.0)) {
      throw std::invalid_argument("rank efficiency factors must be > 0");
    }
  }
  rank_efficiency_ = std::move(factors);
}

double PowerModel::rank_efficiency(int rank) const {
  if (rank < 0 || rank >= static_cast<int>(rank_efficiency_.size())) {
    return 1.0;
  }
  return rank_efficiency_[rank];
}

double PowerModel::power(const TaskWork& work, double ghz, int threads,
                         int rank) const {
  const double fscale = spec_.fmax_ghz / ghz;
  const double pf = work.parallel_fraction;
  const double cpu = work.cpu_seconds * fscale * ((1.0 - pf) + pf / threads);
  const double mem = work.mem_seconds * memory_factor(work, threads);
  const double total = cpu + mem;
  // Compute activity: share of time cores are retiring instructions rather
  // than stalled on memory. Stalled cores still draw a fraction of their
  // dynamic power.
  const double activity = total > 0.0 ? cpu / total : 1.0;
  const double fdyn = dynamic_scale(spec_, ghz);
  const double core_power =
      threads * spec_.p_core_max * fdyn *
      (spec_.stall_power_fraction + (1.0 - spec_.stall_power_fraction) * activity);
  // Uncore/DRAM power follows memory intensity (stall share).
  const double uncore_power = spec_.p_uncore_max * (1.0 - activity);
  return rank_efficiency(rank) *
         (spec_.p_static + core_power + uncore_power);
}

double PowerModel::idle_power(int rank) const {
  // One core spinning in the MPI progress loop at the lowest DVFS state.
  const double fdyn = dynamic_scale(spec_, spec_.fmin_ghz);
  return rank_efficiency(rank) *
         (spec_.p_static +
          spec_.p_core_max * fdyn * spec_.stall_power_fraction);
}

Config PowerModel::config(const TaskWork& work, double ghz, int threads,
                          int rank) const {
  return Config{ghz, threads, duration(work, ghz, threads),
                power(work, ghz, threads, rank)};
}

std::vector<Config> PowerModel::enumerate(const TaskWork& work,
                                          int rank) const {
  std::vector<Config> out;
  const std::vector<double> states = spec_.dvfs_states();
  out.reserve(states.size() * spec_.cores);
  for (int t = spec_.cores; t >= 1; --t) {
    for (double f : states) {
      out.push_back(config(work, f, t, rank));
    }
  }
  return out;
}

Config PowerModel::fastest(const TaskWork& work) const {
  // Max frequency; pick the thread count with the shortest duration (all
  // cores except for contention-limited tasks).
  Config best = config(work, spec_.fmax_ghz, spec_.cores);
  for (int t = 1; t < spec_.cores; ++t) {
    const Config c = config(work, spec_.fmax_ghz, t);
    if (c.duration < best.duration) best = c;
  }
  return best;
}

double PowerModel::rapl_frequency(const TaskWork& work, int threads,
                                  double power_cap, int rank) const {
  double lo = spec_.throttle_floor_ghz;
  double hi = spec_.fmax_ghz;
  if (power(work, hi, threads, rank) <= power_cap) return hi;
  if (power(work, lo, threads, rank) > power_cap) {
    return lo;  // cap unattainable
  }
  // Power is monotone increasing in frequency: bisect.
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (power(work, mid, threads, rank) <= power_cap) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace powerlim::machine
