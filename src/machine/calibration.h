// Power-model calibration from measurements.
//
// The analytic model ships with Xeon E5-2670-like constants; porting the
// reproduction to another machine means fitting those constants to
// measured (frequency, threads, activity) -> watts samples (e.g. RAPL
// counters read while running single-task kernels - exactly the profiling
// pass the paper's Conductor performs). The model is linear in
// (p_static, p_core_max, p_uncore_max) once alpha is fixed, so the fit is
// ordinary least squares inside a 1-D search over alpha.
#pragma once

#include <vector>

#include "machine/machine.h"

namespace powerlim::machine {

/// One measured operating point.
struct PowerSample {
  double ghz = 0.0;
  int threads = 0;
  /// Compute activity in [0, 1]: share of cycles not stalled on memory
  /// (from performance counters; 1.0 for a pure compute kernel).
  double activity = 1.0;
  double watts = 0.0;
};

struct CalibrationResult {
  /// Input spec with p_static / p_core_max / p_uncore_max / alpha
  /// replaced by the fitted values.
  SocketSpec spec;
  /// Root-mean-square error of the fit, watts.
  double rms_error = 0.0;
  /// Largest absolute residual, watts.
  double max_error = 0.0;
};

/// Fits the three linear power parameters and alpha to `samples`,
/// starting from `base` (which supplies the frequency grid, core count and
/// voltage-floor/stall-fraction shape parameters). Requires at least 4
/// samples spaning more than one frequency and thread count; throws
/// std::invalid_argument otherwise.
CalibrationResult fit_power_model(const std::vector<PowerSample>& samples,
                                  const SocketSpec& base = SocketSpec{});

}  // namespace powerlim::machine
