// Simulated RAPL socket power capping.
//
// Intel RAPL (Running Average Power Limit) runs as a firmware control
// loop: given a socket power limit written to an MSR, it selects DVFS
// states (and clock modulation below the lowest state) so that average
// socket power stays under the limit. Crucially - as the paper stresses in
// Section 4.1 - RAPL acts on frequency only; it cannot change the
// application's thread count. This class mirrors that contract: callers
// choose the thread count, Rapl chooses the effective frequency.
#pragma once

#include "machine/power_model.h"

namespace powerlim::machine {

class Rapl {
 public:
  Rapl(const PowerModel& model, double cap_watts)
      : model_(&model), cap_(cap_watts) {}

  double cap() const { return cap_; }
  void set_cap(double cap_watts) { cap_ = cap_watts; }

  /// The configuration the firmware converges to for a task running with
  /// `threads` threads under the current cap: the highest effective
  /// frequency whose model power fits, or the throttle floor if none does.
  Config apply(const TaskWork& work, int threads, int rank = -1) const {
    const double f = model_->rapl_frequency(work, threads, cap_, rank);
    return model_->config(work, f, threads, rank);
  }

  /// False when even the deepest throttle exceeds the cap (the paper's
  /// "not able to be scheduled at the lowest power constraint" case).
  bool attainable(const TaskWork& work, int threads, int rank = -1) const {
    return model_->power(work, model_->spec().throttle_floor_ghz, threads,
                         rank) <= cap_ + 1e-9;
  }

  const PowerModel& model() const { return *model_; }

 private:
  const PowerModel* model_;
  double cap_;
};

}  // namespace powerlim::machine
