#include "machine/calibration.h"

#include <array>
#include <cmath>
#include <set>
#include <stdexcept>

namespace powerlim::machine {

namespace {

/// Dynamic-power scale factor (mirrors power_model.cpp's shape).
double dynamic_scale(const SocketSpec& spec, double ghz, double alpha) {
  if (ghz >= spec.f_vmin_ghz) {
    return std::pow(ghz / spec.fmax_ghz, alpha);
  }
  const double at_floor = std::pow(spec.f_vmin_ghz / spec.fmax_ghz, alpha);
  return at_floor * (ghz / spec.f_vmin_ghz);
}

/// Solves the 3x3 normal equations A^T A x = A^T b by Cramer's rule.
std::array<double, 3> solve3(const std::array<std::array<double, 3>, 3>& m,
                             const std::array<double, 3>& rhs) {
  auto det3 = [](const std::array<std::array<double, 3>, 3>& a) {
    return a[0][0] * (a[1][1] * a[2][2] - a[1][2] * a[2][1]) -
           a[0][1] * (a[1][0] * a[2][2] - a[1][2] * a[2][0]) +
           a[0][2] * (a[1][0] * a[2][1] - a[1][1] * a[2][0]);
  };
  const double d = det3(m);
  if (std::abs(d) < 1e-12) {
    throw std::invalid_argument(
        "fit_power_model: samples do not determine the parameters "
        "(degenerate design matrix)");
  }
  std::array<double, 3> out{};
  for (int col = 0; col < 3; ++col) {
    auto mm = m;
    for (int row = 0; row < 3; ++row) mm[row][col] = rhs[row];
    out[col] = det3(mm) / d;
  }
  return out;
}

struct Fit {
  double p_static, p_core, p_uncore, rms, max_err;
};

Fit fit_for_alpha(const std::vector<PowerSample>& samples,
                  const SocketSpec& base, double alpha) {
  // power = p_static * 1
  //       + p_core  * [threads * g(f) * (sf + (1-sf) * act)]
  //       + p_uncore* [1 - act]
  std::array<std::array<double, 3>, 3> ata{};
  std::array<double, 3> atb{};
  for (const PowerSample& s : samples) {
    const double g = dynamic_scale(base, s.ghz, alpha);
    const std::array<double, 3> row{
        1.0,
        s.threads * g *
            (base.stall_power_fraction +
             (1.0 - base.stall_power_fraction) * s.activity),
        1.0 - s.activity};
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) ata[i][j] += row[i] * row[j];
      atb[i] += row[i] * s.watts;
    }
  }
  const auto x = solve3(ata, atb);
  Fit fit{x[0], x[1], x[2], 0.0, 0.0};
  double sq = 0.0;
  for (const PowerSample& s : samples) {
    const double g = dynamic_scale(base, s.ghz, alpha);
    const double predicted =
        fit.p_static +
        fit.p_core * s.threads * g *
            (base.stall_power_fraction +
             (1.0 - base.stall_power_fraction) * s.activity) +
        fit.p_uncore * (1.0 - s.activity);
    const double r = predicted - s.watts;
    sq += r * r;
    fit.max_err = std::max(fit.max_err, std::abs(r));
  }
  fit.rms = std::sqrt(sq / samples.size());
  return fit;
}

}  // namespace

CalibrationResult fit_power_model(const std::vector<PowerSample>& samples,
                                  const SocketSpec& base) {
  if (samples.size() < 4) {
    throw std::invalid_argument("fit_power_model: need at least 4 samples");
  }
  std::set<double> freqs;
  std::set<int> threads;
  for (const PowerSample& s : samples) {
    if (!(s.ghz > 0.0) || s.threads < 1 || !(s.watts > 0.0) ||
        s.activity < 0.0 || s.activity > 1.0) {
      throw std::invalid_argument("fit_power_model: malformed sample");
    }
    freqs.insert(s.ghz);
    threads.insert(s.threads);
  }
  if (freqs.size() < 2 || threads.size() < 2) {
    throw std::invalid_argument(
        "fit_power_model: samples must span multiple frequencies and "
        "thread counts");
  }

  // 1-D search over alpha (coarse grid, then golden refinement).
  double best_alpha = 2.4;
  Fit best = fit_for_alpha(samples, base, best_alpha);
  for (double a = 1.5; a <= 3.5 + 1e-9; a += 0.05) {
    const Fit f = fit_for_alpha(samples, base, a);
    if (f.rms < best.rms) {
      best = f;
      best_alpha = a;
    }
  }
  // Local refinement.
  double lo = best_alpha - 0.05, hi = best_alpha + 0.05;
  for (int it = 0; it < 40; ++it) {
    const double m1 = lo + (hi - lo) / 3.0;
    const double m2 = hi - (hi - lo) / 3.0;
    if (fit_for_alpha(samples, base, m1).rms <
        fit_for_alpha(samples, base, m2).rms) {
      hi = m2;
    } else {
      lo = m1;
    }
  }
  best_alpha = 0.5 * (lo + hi);
  best = fit_for_alpha(samples, base, best_alpha);

  CalibrationResult out;
  out.spec = base;
  out.spec.p_static = best.p_static;
  out.spec.p_core_max = best.p_core;
  out.spec.p_uncore_max = best.p_uncore;
  out.spec.alpha = best_alpha;
  out.rms_error = best.rms;
  out.max_error = best.max_err;
  return out;
}

}  // namespace powerlim::machine
