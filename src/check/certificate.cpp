// powerlint: allow-file(float-in-exact) -- this TU converts solver doubles to Dyadic at its edges (from_double on ingest, to_double only for report text); the comparison path is exact throughout
#include "check/certificate.h"

#include <cmath>
#include <sstream>
#include <vector>

#include "check/rational.h"
#include "core/lp_formulation.h"
#include "dag/windows.h"
#include "lp/model.h"

namespace powerlim::check {

namespace {

using core::LpFormulation;

/// Fixed rule order so reports are deterministic.
const char* const kRules[] = {"structure",      "frontier-membership",
                              "share-weights",  "precedence",
                              "event-cap",      "event-order",
                              "objective",      "weak-duality"};

/// Aggregates per-rule verdicts across windows.
class Rules {
 public:
  Rules() {
    for (const char* rule : kRules) checks_.push_back({rule, true, 0.0, ""});
  }

  void fail(const std::string& rule, double violation, std::string detail) {
    CertificateCheck& c = find(rule);
    if (c.ok || violation > c.violation) c.violation = violation;
    if (c.ok) c.detail = std::move(detail);
    c.ok = false;
  }

  bool ok(const std::string& rule) { return find(rule).ok; }

  CertificateVerdict finish(bool duality_checked, double duality_gap) {
    CertificateVerdict v;
    v.checked = true;
    v.duality_checked = duality_checked;
    v.duality_gap = duality_gap;
    v.ok = true;
    for (CertificateCheck& c : checks_) {
      if (!c.ok) {
        if (v.detail.empty()) v.detail = "[" + c.rule + "] " + c.detail;
        v.ok = false;
      }
      if (c.rule != "weak-duality") {
        v.max_violation = std::max(v.max_violation, c.violation);
      }
    }
    v.checks = std::move(checks_);
    return v;
  }

 private:
  CertificateCheck& find(const std::string& rule) {
    for (CertificateCheck& c : checks_) {
      if (c.rule == rule) return c;
    }
    checks_.push_back({rule, true, 0.0, ""});
    return checks_.back();
  }

  std::vector<CertificateCheck> checks_;
};

std::string fmt(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

bool same_config(const machine::Config& a, const machine::Config& b) {
  // Bitwise-equal doubles: both sides come from the same deterministic
  // model evaluation, so any difference means tampering or corruption.
  return a.ghz == b.ghz && a.threads == b.threads &&
         a.duration == b.duration && a.power == b.power;
}

}  // namespace

struct CertificateChecker::Impl {
  const dag::TaskGraph* graph;
  const machine::PowerModel* model;
  const machine::ClusterSpec* cluster;
  CertificateOptions options;
  std::vector<dag::Window> windows;
  /// Independent per-window formulations: frontiers and event orders
  /// re-derived from the machine model with no hooks in the path.
  std::vector<std::unique_ptr<LpFormulation>> forms;
};

CertificateChecker::CertificateChecker(const dag::TaskGraph& graph,
                                       const machine::PowerModel& model,
                                       const machine::ClusterSpec& cluster,
                                       CertificateOptions options)
    : impl_(std::make_unique<Impl>()) {
  impl_->graph = &graph;
  impl_->model = &model;
  impl_->cluster = &cluster;
  impl_->options = options;
  impl_->windows = dag::split_at_barriers(graph);
  impl_->forms.reserve(impl_->windows.size());
  for (const dag::Window& win : impl_->windows) {
    impl_->forms.push_back(
        std::make_unique<LpFormulation>(win.graph, model, cluster));
  }
}

CertificateChecker::~CertificateChecker() = default;
CertificateChecker::CertificateChecker(CertificateChecker&&) noexcept =
    default;
CertificateChecker& CertificateChecker::operator=(
    CertificateChecker&&) noexcept = default;

CertificateVerdict CertificateChecker::verify(
    const core::WindowedLpResult& result, double job_cap_watts,
    double effective_cap_watts) const {
  const Impl& im = *impl_;
  const dag::TaskGraph& graph = *im.graph;
  Rules rules;

  // Structure: the result must be shaped like this graph at all, or no
  // deeper check is meaningful.
  if (!result.optimal()) {
    rules.fail("structure", 0.0, "solution status is not optimal");
  }
  if (result.vertex_time.size() != graph.num_vertices() ||
      result.schedule.shares.size() != graph.num_edges() ||
      result.frontiers.size() != graph.num_edges()) {
    rules.fail("structure", 0.0,
               "solution arrays do not match the trace's shape");
  }
  for (double t : result.vertex_time) {
    if (!std::isfinite(t)) {
      rules.fail("structure", 0.0, "non-finite vertex time");
      break;
    }
  }
  if (!std::isfinite(result.makespan)) {
    rules.fail("structure", 0.0, "non-finite makespan");
  }
  if (!rules.ok("structure")) return rules.finish(false, 0.0);

  const Dyadic tol = Dyadic::from_double(im.options.feasibility_tol);
  const Dyadic cap = Dyadic::from_double(job_cap_watts);
  const Dyadic zero;

  // Blended per-edge duration and power, recomputed exactly from the
  // independent frontiers (never from result.schedule.duration/power).
  std::vector<Dyadic> edge_duration(graph.num_edges());
  std::vector<Dyadic> edge_power(graph.num_edges());

  bool duals_available = !result.window_duals.empty();
  Dyadic total_gap;
  Dyadic total_obj;

  for (std::size_t w = 0; w < im.windows.size(); ++w) {
    const dag::Window& win = im.windows[w];
    const LpFormulation& form = *im.forms[w];

    // Frontier membership + share weights + blended values per edge.
    for (std::size_t we = 0; we < win.graph.num_edges(); ++we) {
      const int orig = win.edge_map[we];
      const dag::Edge& e = graph.edge(orig);
      const std::vector<machine::Config>& truth = form.frontiers()[we];
      const std::vector<machine::Config>& claimed = result.frontiers[orig];
      if (!e.is_task()) {
        edge_duration[orig] =
            Dyadic::from_double(im.cluster->message_seconds(e.bytes));
        continue;
      }
      if (claimed.size() != truth.size()) {
        rules.fail("frontier-membership",
                   std::abs(static_cast<double>(claimed.size()) -
                            static_cast<double>(truth.size())),
                   "task " + std::to_string(orig) + " frontier has " +
                       std::to_string(claimed.size()) + " points, expected " +
                       std::to_string(truth.size()));
      } else {
        for (std::size_t k = 0; k < truth.size(); ++k) {
          if (!same_config(claimed[k], truth[k])) {
            rules.fail("frontier-membership", 0.0,
                       "task " + std::to_string(orig) + " frontier point " +
                           std::to_string(k) +
                           " differs from the machine model's frontier");
            break;
          }
        }
      }

      Dyadic sum;
      Dyadic dur;
      Dyadic pow;
      bool shares_ok = true;
      for (const core::ConfigShare& s :
           result.schedule.shares[orig]) {
        if (s.config_index < 0 ||
            s.config_index >= static_cast<int>(truth.size())) {
          rules.fail("share-weights", 0.0,
                     "task " + std::to_string(orig) +
                         " references config index " +
                         std::to_string(s.config_index) +
                         " outside its frontier");
          shares_ok = false;
          break;
        }
        if (!std::isfinite(s.fraction)) {
          rules.fail("share-weights", 0.0,
                     "task " + std::to_string(orig) +
                         " has a non-finite share fraction");
          shares_ok = false;
          break;
        }
        const Dyadic frac = Dyadic::from_double(s.fraction);
        if (frac < zero - tol || frac > Dyadic::from_int(1) + tol) {
          rules.fail("share-weights", std::abs(s.fraction),
                     "task " + std::to_string(orig) +
                         " share fraction " + fmt(s.fraction) +
                         " outside [0, 1]");
        }
        sum += frac;
        const machine::Config& cfg = truth[s.config_index];
        dur += frac * Dyadic::from_double(cfg.duration);
        pow += frac * Dyadic::from_double(cfg.power);
      }
      if (!shares_ok) continue;
      const Dyadic dev = (sum - Dyadic::from_int(1)).abs();
      if (result.schedule.shares[orig].empty() || dev > tol) {
        rules.fail("share-weights", dev.to_double(),
                   "task " + std::to_string(orig) +
                       " share weights sum to " + fmt(sum.to_double()) +
                       ", not 1");
      }
      edge_duration[orig] = dur;
      edge_power[orig] = pow;
    }

    // Precedence: v_dst - v_src >= blended duration, for every edge.
    for (std::size_t we = 0; we < win.graph.num_edges(); ++we) {
      const int orig = win.edge_map[we];
      const dag::Edge& e = graph.edge(orig);
      const Dyadic lhs = Dyadic::from_double(result.vertex_time[e.dst]) -
                         Dyadic::from_double(result.vertex_time[e.src]);
      const Dyadic slack = lhs - edge_duration[orig];
      if (slack < -tol) {
        rules.fail("precedence", (-slack).to_double(),
                   (e.is_task() ? "task " : "message ") +
                       std::to_string(orig) + " finishes " +
                       fmt((-slack).to_double()) +
                       " s before its duration allows");
      }
    }

    // Power cap at every event: the task-activity sets are re-derived by
    // this checker's own formulation of the window.
    const core::EventOrder& events = form.events();
    for (std::size_t g = 0; g < events.num_groups(); ++g) {
      Dyadic total;
      for (int weid : events.active_tasks[g]) {
        total += edge_power[win.edge_map[weid]];
      }
      const Dyadic excess = total - cap;
      if (excess > tol) {
        rules.fail("event-cap", excess.to_double(),
                   "window " + std::to_string(w) + " event " +
                       std::to_string(g) + " draws " +
                       fmt(total.to_double()) + " W, " +
                       fmt(excess.to_double()) + " W over the cap");
      }
    }

    // Event order: group leaders non-decreasing, members pinned to their
    // leader, nothing before the window's start.
    const Dyadic offset = Dyadic::from_double(
        result.vertex_time[win.vertex_map[win.graph.init_vertex()]]);
    Dyadic prev_leader;
    for (std::size_t g = 0; g < events.num_groups(); ++g) {
      const Dyadic leader = Dyadic::from_double(
          result.vertex_time[win.vertex_map[events.groups[g].front()]]);
      if (g > 0 && leader < prev_leader - tol) {
        rules.fail("event-order", (prev_leader - leader).to_double(),
                   "window " + std::to_string(w) + " event " +
                       std::to_string(g) + " fires before its predecessor");
      }
      if (leader < offset - tol) {
        rules.fail("event-order", (offset - leader).to_double(),
                   "window " + std::to_string(w) + " event " +
                       std::to_string(g) + " fires before the window opens");
      }
      for (std::size_t m = 1; m < events.groups[g].size(); ++m) {
        const Dyadic member = Dyadic::from_double(
            result.vertex_time[win.vertex_map[events.groups[g][m]]]);
        if ((member - leader).abs() > tol) {
          rules.fail("event-order", (member - leader).abs().to_double(),
                     "window " + std::to_string(w) +
                         " simultaneous vertices drifted apart at event " +
                         std::to_string(g));
        }
      }
      prev_leader = leader;
    }

    // Weak duality for this window (LP solves only; see header).
    const std::vector<double>* duals = nullptr;
    if (w < result.window_duals.size() &&
        !result.window_duals[w].empty()) {
      duals = &result.window_duals[w];
    } else {
      duals_available = false;
    }
    if (duals != nullptr && rules.ok("weak-duality")) {
      core::LpScheduleOptions build_options;
      build_options.power_cap = effective_cap_watts;
      const core::BuiltModel built = form.build_model(build_options);
      const lp::Model& m = built.model;
      if (duals->size() != m.num_constraints()) {
        rules.fail("weak-duality", 0.0,
                   "window " + std::to_string(w) + " has " +
                       std::to_string(duals->size()) +
                       " duals for " + std::to_string(m.num_constraints()) +
                       " constraint rows");
      } else {
        // Window-local primal point x: vertex times rebased to the
        // window, share fractions (absent shares are zero).
        std::vector<Dyadic> x(m.num_variables());
        for (std::size_t j = 0; j < built.vertex_var.size(); ++j) {
          x[built.vertex_var[j].index] =
              Dyadic::from_double(
                  result.vertex_time[win.vertex_map[j]]) -
              offset;
        }
        for (std::size_t we = 0; we < win.graph.num_edges(); ++we) {
          const int orig = win.edge_map[we];
          for (const core::ConfigShare& s :
               result.schedule.shares[orig]) {
            if (s.config_index >= 0 &&
                s.config_index <
                    static_cast<int>(built.share_var[we].size())) {
              x[built.share_var[we][s.config_index].index] =
                  Dyadic::from_double(s.fraction);
            }
          }
        }
        Dyadic obj;
        std::vector<Dyadic> z(m.num_variables());
        for (std::size_t j = 0; j < m.num_variables(); ++j) {
          const double cj = m.objective_coeff(static_cast<int>(j));
          if (cj != 0.0) {
            const Dyadic d = Dyadic::from_double(cj);
            obj += d * x[j];
            z[j] = d;
          }
        }
        // g(y) = sum_i y_i * picked_row_bound + box-min of (c - A'y)'x.
        // Sign-inconsistent duals are zeroed: any multiplier vector gives
        // a valid Lagrangian bound, so sanitizing never produces a false
        // certificate - only (deservedly) a weak one.
        Dyadic g;
        for (std::size_t i = 0; i < m.num_constraints(); ++i) {
          double yi = (*duals)[i];
          if (!std::isfinite(yi)) yi = 0.0;
          if (yi > 0.0 && !lp::is_finite_bound(m.row_lb(i))) yi = 0.0;
          if (yi < 0.0 && !lp::is_finite_bound(m.row_ub(i))) yi = 0.0;
          if (yi == 0.0) continue;
          const Dyadic y = Dyadic::from_double(yi);
          g += y * Dyadic::from_double(yi > 0.0 ? m.row_lb(i)
                                                : m.row_ub(i));
          const lp::Model::RowView row = m.row(static_cast<int>(i));
          for (std::size_t t = 0; t < row.size; ++t) {
            z[row.idx[t]] -= y * Dyadic::from_double(row.coeff[t]);
          }
        }
        // Vertex-time variables have no finite upper bound in the model,
        // but every feasible point keeps them at or below the Finalize
        // time (event-order rows), so boxing them at H > the claimed
        // window makespan preserves the optimum (FORMULATION.md).
        const double claimed_span =
            result.vertex_time[win.vertex_map[win.graph.finalize_vertex()]] -
            result.vertex_time[win.vertex_map[win.graph.init_vertex()]];
        const Dyadic box =
            Dyadic::from_double(2.0 * std::max(0.0, claimed_span) + 1.0);
        bool bound_ok = true;
        for (std::size_t j = 0; j < m.num_variables(); ++j) {
          const int s = z[j].sign();
          if (s == 0) continue;
          if (s > 0) {
            const double lb = m.variable_lb(static_cast<int>(j));
            if (!lp::is_finite_bound(lb)) {
              rules.fail("weak-duality", 0.0,
                         "variable with infinite lower bound");
              bound_ok = false;
              break;
            }
            g += z[j] * Dyadic::from_double(lb);
          } else {
            const double ub = m.variable_ub(static_cast<int>(j));
            g += z[j] * (lp::is_finite_bound(ub) ? Dyadic::from_double(ub)
                                                 : box);
          }
        }
        if (bound_ok) {
          Dyadic gap = obj - g;
          if (gap.sign() < 0) gap = Dyadic();
          total_gap += gap;
          total_obj += obj;
        }
      }
    }
  }

  // Objective consistency: the reported makespan is the Finalize time,
  // and the job starts at t = 0.
  const Dyadic t_init =
      Dyadic::from_double(result.vertex_time[graph.init_vertex()]);
  if (t_init.abs() > tol) {
    rules.fail("objective", t_init.abs().to_double(),
               "Init fires at " + fmt(t_init.to_double()) + " s, not 0");
  }
  const Dyadic t_fin =
      Dyadic::from_double(result.vertex_time[graph.finalize_vertex()]);
  const Dyadic obj_dev =
      (Dyadic::from_double(result.makespan) - t_fin).abs();
  if (obj_dev > tol) {
    rules.fail("objective", obj_dev.to_double(),
               "reported makespan " + fmt(result.makespan) +
                   " s differs from the Finalize time " +
                   fmt(t_fin.to_double()) + " s");
  }

  // Aggregate weak duality across windows: the whole-trace bound is the
  // sum of window bounds, so gaps add.
  double rel_gap = 0.0;
  bool duality_checked = false;
  if (duals_available && rules.ok("weak-duality")) {
    duality_checked = true;
    const Dyadic scale =
        dyadic_max(Dyadic::from_int(1), total_obj.abs());
    const Dyadic limit =
        Dyadic::from_double(im.options.duality_gap_tol) * scale;
    const double scale_d = scale.to_double();
    rel_gap = scale_d > 0.0 ? total_gap.to_double() / scale_d : 0.0;
    if (total_gap > limit) {
      rules.fail("weak-duality", rel_gap,
                 "certified duality gap " + fmt(total_gap.to_double()) +
                     " s exceeds " + fmt(im.options.duality_gap_tol) +
                     " relative tolerance");
    }
  } else if (im.options.require_duals && rules.ok("weak-duality")) {
    rules.fail("weak-duality", 0.0,
               "solver provided no duals but require_duals is set");
  }

  return rules.finish(duality_checked, rel_gap);
}

CertificateVerdict verify_certificate(const dag::TaskGraph& graph,
                                      const machine::PowerModel& model,
                                      const machine::ClusterSpec& cluster,
                                      const core::WindowedLpResult& result,
                                      double job_cap_watts,
                                      const CertificateOptions& options) {
  const CertificateChecker checker(graph, model, cluster, options);
  return checker.verify(result, job_cap_watts, job_cap_watts);
}

}  // namespace powerlim::check
