#include "check/rational.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace powerlim::check {

namespace {

constexpr std::uint64_t kBase = 1ull << 32;

}  // namespace

BigInt::BigInt(long long value) {
  if (value == 0) return;
  sign_ = value < 0 ? -1 : 1;
  // Negate via unsigned arithmetic so LLONG_MIN is well-defined.
  std::uint64_t mag = value < 0
                          ? ~static_cast<std::uint64_t>(value) + 1
                          : static_cast<std::uint64_t>(value);
  while (mag != 0) {
    mag_.push_back(static_cast<std::uint32_t>(mag & 0xffffffffu));
    mag >>= 32;
  }
}

void BigInt::trim() {
  while (!mag_.empty() && mag_.back() == 0) mag_.pop_back();
  if (mag_.empty()) sign_ = 0;
}

int BigInt::compare_mag(const std::vector<std::uint32_t>& a,
                        const std::vector<std::uint32_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

std::vector<std::uint32_t> BigInt::add_mag(
    const std::vector<std::uint32_t>& a,
    const std::vector<std::uint32_t>& b) {
  const std::vector<std::uint32_t>& lo = a.size() < b.size() ? a : b;
  const std::vector<std::uint32_t>& hi = a.size() < b.size() ? b : a;
  std::vector<std::uint32_t> out;
  out.reserve(hi.size() + 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < hi.size(); ++i) {
    std::uint64_t sum = carry + hi[i] + (i < lo.size() ? lo[i] : 0u);
    out.push_back(static_cast<std::uint32_t>(sum & 0xffffffffu));
    carry = sum >> 32;
  }
  if (carry != 0) out.push_back(static_cast<std::uint32_t>(carry));
  return out;
}

std::vector<std::uint32_t> BigInt::sub_mag(
    const std::vector<std::uint32_t>& a,
    const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> out;
  out.reserve(a.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a[i]) - borrow -
                        (i < b.size() ? static_cast<std::int64_t>(b[i]) : 0);
    borrow = 0;
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    }
    out.push_back(static_cast<std::uint32_t>(diff));
  }
  return out;
}

BigInt BigInt::operator+(const BigInt& o) const {
  if (sign_ == 0) return o;
  if (o.sign_ == 0) return *this;
  BigInt out;
  if (sign_ == o.sign_) {
    out.sign_ = sign_;
    out.mag_ = add_mag(mag_, o.mag_);
  } else {
    const int cmp = compare_mag(mag_, o.mag_);
    if (cmp == 0) return out;  // zero
    if (cmp > 0) {
      out.sign_ = sign_;
      out.mag_ = sub_mag(mag_, o.mag_);
    } else {
      out.sign_ = o.sign_;
      out.mag_ = sub_mag(o.mag_, mag_);
    }
  }
  out.trim();
  return out;
}

BigInt BigInt::operator-() const {
  BigInt out = *this;
  out.sign_ = -out.sign_;
  return out;
}

BigInt BigInt::operator-(const BigInt& o) const { return *this + (-o); }

BigInt BigInt::operator*(const BigInt& o) const {
  BigInt out;
  if (sign_ == 0 || o.sign_ == 0) return out;
  out.sign_ = sign_ * o.sign_;
  out.mag_.assign(mag_.size() + o.mag_.size(), 0);
  for (std::size_t i = 0; i < mag_.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < o.mag_.size(); ++j) {
      std::uint64_t cur = out.mag_[i + j] + carry +
                          static_cast<std::uint64_t>(mag_[i]) * o.mag_[j];
      out.mag_[i + j] = static_cast<std::uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    std::size_t k = i + o.mag_.size();
    while (carry != 0) {
      std::uint64_t cur = out.mag_[k] + carry;
      out.mag_[k] = static_cast<std::uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++k;
    }
  }
  out.trim();
  return out;
}

int BigInt::compare(const BigInt& o) const {
  if (sign_ != o.sign_) return sign_ < o.sign_ ? -1 : 1;
  const int mag_cmp = compare_mag(mag_, o.mag_);
  return sign_ >= 0 ? mag_cmp : -mag_cmp;
}

BigInt BigInt::shifted_left(std::int64_t bits) const {
  if (bits < 0) return shifted_right(-bits);
  if (sign_ == 0 || bits == 0) return *this;
  BigInt out;
  out.sign_ = sign_;
  const std::size_t limb_shift = static_cast<std::size_t>(bits / 32);
  const unsigned bit_shift = static_cast<unsigned>(bits % 32);
  out.mag_.assign(mag_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < mag_.size(); ++i) {
    const std::uint64_t shifted = static_cast<std::uint64_t>(mag_[i])
                                  << bit_shift;
    out.mag_[i + limb_shift] |= static_cast<std::uint32_t>(shifted);
    out.mag_[i + limb_shift + 1] |=
        static_cast<std::uint32_t>(shifted >> 32);
  }
  out.trim();
  return out;
}

BigInt BigInt::shifted_right(std::int64_t bits) const {
  if (bits < 0) return shifted_left(-bits);
  if (sign_ == 0 || bits == 0) return *this;
  const std::size_t limb_shift = static_cast<std::size_t>(bits / 32);
  const unsigned bit_shift = static_cast<unsigned>(bits % 32);
  BigInt out;
  if (limb_shift >= mag_.size()) return out;
  out.sign_ = sign_;
  out.mag_.assign(mag_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.mag_.size(); ++i) {
    std::uint64_t cur = mag_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < mag_.size()) {
      cur |= static_cast<std::uint64_t>(mag_[i + limb_shift + 1])
             << (32 - bit_shift);
    }
    out.mag_[i] = static_cast<std::uint32_t>(cur);
  }
  out.trim();
  return out;
}

std::int64_t BigInt::trailing_zero_bits() const {
  if (sign_ == 0) return 0;
  std::int64_t bits = 0;
  for (std::size_t i = 0; i < mag_.size(); ++i) {
    if (mag_[i] == 0) {
      bits += 32;
      continue;
    }
    std::uint32_t limb = mag_[i];
    while ((limb & 1u) == 0) {
      ++bits;
      limb >>= 1;
    }
    break;
  }
  return bits;
}

std::int64_t BigInt::bit_length() const {
  if (sign_ == 0) return 0;
  std::int64_t bits = static_cast<std::int64_t>(mag_.size() - 1) * 32;
  std::uint32_t top = mag_.back();
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

double BigInt::to_double() const {  // powerlint: allow(float-in-exact) -- report boundary
  if (sign_ == 0) return 0.0;
  // Take the top <= 64 bits exactly, then scale; precise enough for
  // reporting (the comparison path never uses doubles).
  const std::int64_t bits = bit_length();
  const std::int64_t drop = bits > 64 ? bits - 64 : 0;
  const BigInt top = shifted_right(drop);
  std::uint64_t mag = 0;
  for (std::size_t i = top.mag_.size(); i-- > 0;) {
    mag = (mag << 32) | top.mag_[i];
  }
  // powerlint: allow(float-in-exact) -- top 64 bits fit a double mantissa path exactly enough for reporting
  return sign_ * std::ldexp(static_cast<double>(mag),
                            static_cast<int>(drop));
}

std::string BigInt::to_string() const {
  if (sign_ == 0) return "0";
  // Repeated short division by 10^9.
  std::vector<std::uint32_t> work = mag_;
  std::string digits;
  while (!work.empty()) {
    std::uint64_t rem = 0;
    for (std::size_t i = work.size(); i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | work[i];
      work[i] = static_cast<std::uint32_t>(cur / 1000000000ull);
      rem = cur % 1000000000ull;
    }
    while (!work.empty() && work.back() == 0) work.pop_back();
    for (int d = 0; d < 9; ++d) {
      digits.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (sign_ < 0) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

Dyadic::Dyadic(BigInt mant, std::int64_t exp2)
    : mant_(std::move(mant)), exp2_(exp2) {
  normalize();
}

void Dyadic::normalize() {
  if (mant_.is_zero()) {
    exp2_ = 0;
    return;
  }
  const std::int64_t tz = mant_.trailing_zero_bits();
  if (tz > 0) {
    mant_ = mant_.shifted_right(tz);
    exp2_ += tz;
  }
}

Dyadic Dyadic::from_double(double value) {  // powerlint: allow(float-in-exact) -- ingest boundary
  if (!std::isfinite(value)) {
    throw std::invalid_argument("Dyadic::from_double: non-finite value");
  }
  if (value == 0.0) return Dyadic();  // powerlint: allow(float-in-exact) -- exact zero test on the ingested IEEE value
  int exp = 0;
  // powerlint: allow(float-in-exact) -- frexp decomposition is exact; |frac| in [0.5, 1)
  const double frac = std::frexp(value, &exp);
  // frac * 2^53 is an odd-or-even integer <= 2^53, exactly representable.
  const long long mant = static_cast<long long>(std::ldexp(frac, 53));
  return Dyadic(BigInt(mant), static_cast<std::int64_t>(exp) - 53);
}

Dyadic Dyadic::from_int(long long value) { return Dyadic(BigInt(value), 0); }

Dyadic Dyadic::operator+(const Dyadic& o) const {
  if (is_zero()) return o;
  if (o.is_zero()) return *this;
  // Align to the smaller exponent; shifting left is exact.
  if (exp2_ <= o.exp2_) {
    return Dyadic(mant_ + o.mant_.shifted_left(o.exp2_ - exp2_), exp2_);
  }
  return Dyadic(mant_.shifted_left(exp2_ - o.exp2_) + o.mant_, o.exp2_);
}

Dyadic Dyadic::operator-() const {
  Dyadic out = *this;
  out.mant_ = -out.mant_;
  return out;
}

Dyadic Dyadic::operator-(const Dyadic& o) const { return *this + (-o); }

Dyadic Dyadic::operator*(const Dyadic& o) const {
  return Dyadic(mant_ * o.mant_, exp2_ + o.exp2_);
}

int Dyadic::compare(const Dyadic& o) const {
  const int sa = sign();
  const int sb = o.sign();
  if (sa != sb) return sa < sb ? -1 : 1;
  if (sa == 0) return 0;
  return (*this - o).sign();
}

Dyadic Dyadic::abs() const { return sign() < 0 ? -*this : *this; }

double Dyadic::to_double() const {  // powerlint: allow(float-in-exact) -- report boundary
  if (is_zero()) return 0.0;
  // Reduce the mantissa to <= 64 bits first so a huge mantissa paired
  // with a very negative exponent cannot overflow on the way through.
  const std::int64_t bits = mant_.bit_length();
  const std::int64_t drop = bits > 64 ? bits - 64 : 0;
  // powerlint: allow(float-in-exact) -- report boundary continuation
  const double top = mant_.shifted_right(drop).to_double();
  const std::int64_t e =
      std::clamp<std::int64_t>(drop + exp2_, -100000, 100000);
  return std::ldexp(top, static_cast<int>(e));
}

}  // namespace powerlim::check
