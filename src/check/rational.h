// Exact dyadic-rational arithmetic for the certificate checker.
//
// Every number the LP pipeline touches is an IEEE-754 double, and every
// finite double is exactly a (long) integer times a power of two. The
// certificate checker therefore does not need general rationals: dyadic
// rationals  mant * 2^exp2  with an arbitrary-precision mantissa are
// closed under +, -, * and capture each input exactly. Re-deriving a
// constraint row and evaluating it at the solver's point in this type
// involves no rounding anywhere - the only approximation in the whole
// verification is the final comparison against the (also exactly
// converted) tolerance.
//
// Division is deliberately absent: the checker never divides, so the
// dyadic closure property is never broken.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace powerlim::check {

/// Arbitrary-precision signed integer. Supports exactly the operations
/// the certificate needs: add, subtract, multiply, shift, compare.
class BigInt {
 public:
  BigInt() = default;
  explicit BigInt(long long value);

  bool is_zero() const { return sign_ == 0; }
  /// -1, 0, or +1.
  int sign() const { return sign_; }

  BigInt operator+(const BigInt& o) const;
  BigInt operator-(const BigInt& o) const;
  BigInt operator*(const BigInt& o) const;
  BigInt operator-() const;

  /// <0, 0, >0 like strcmp.
  int compare(const BigInt& o) const;

  BigInt shifted_left(std::int64_t bits) const;
  /// Number of trailing zero bits (0 for zero).
  std::int64_t trailing_zero_bits() const;
  BigInt shifted_right(std::int64_t bits) const;
  /// Bit length of the magnitude (0 for zero).
  std::int64_t bit_length() const;

  /// Nearest double (rounding only happens here, for reporting).
  // powerlint: allow(float-in-exact) -- the one sanctioned BigInt->double boundary
  double to_double() const;
  /// Decimal string, exact (for diagnostics and tests).
  std::string to_string() const;

 private:
  static int compare_mag(const std::vector<std::uint32_t>& a,
                         const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> add_mag(
      const std::vector<std::uint32_t>& a,
      const std::vector<std::uint32_t>& b);
  /// Requires |a| >= |b|.
  static std::vector<std::uint32_t> sub_mag(
      const std::vector<std::uint32_t>& a,
      const std::vector<std::uint32_t>& b);
  void trim();

  int sign_ = 0;
  /// Little-endian base-2^32 limbs of the magnitude; empty iff zero.
  std::vector<std::uint32_t> mag_;
};

/// Exact dyadic rational: mant * 2^exp2. Normalized so the mantissa is
/// odd (or zero), keeping limb growth bounded across long sums.
class Dyadic {
 public:
  Dyadic() = default;

  /// Exact conversion; throws std::invalid_argument on NaN/Inf.
  // powerlint: allow(float-in-exact) -- ingest boundary; conversion is exact, no FP arithmetic
  static Dyadic from_double(double value);
  static Dyadic from_int(long long value);

  bool is_zero() const { return mant_.is_zero(); }
  int sign() const { return mant_.sign(); }

  Dyadic operator+(const Dyadic& o) const;
  Dyadic operator-(const Dyadic& o) const;
  Dyadic operator*(const Dyadic& o) const;
  Dyadic operator-() const;
  Dyadic& operator+=(const Dyadic& o) { return *this = *this + o; }
  Dyadic& operator-=(const Dyadic& o) { return *this = *this - o; }

  /// <0, 0, >0 like strcmp. Exact.
  int compare(const Dyadic& o) const;
  bool operator<(const Dyadic& o) const { return compare(o) < 0; }
  bool operator<=(const Dyadic& o) const { return compare(o) <= 0; }
  bool operator>(const Dyadic& o) const { return compare(o) > 0; }
  bool operator>=(const Dyadic& o) const { return compare(o) >= 0; }
  bool operator==(const Dyadic& o) const { return compare(o) == 0; }

  Dyadic abs() const;

  /// Nearest double (for violation reports; never used in comparisons).
  // powerlint: allow(float-in-exact) -- report boundary; never feeds a comparison
  double to_double() const;

 private:
  Dyadic(BigInt mant, std::int64_t exp2);
  void normalize();

  BigInt mant_;
  std::int64_t exp2_ = 0;
};

/// max(a, b) by exact comparison.
inline const Dyadic& dyadic_max(const Dyadic& a, const Dyadic& b) {
  return a.compare(b) >= 0 ? a : b;
}

}  // namespace powerlim::check
