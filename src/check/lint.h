// Model linter: static analysis over problem inputs.
//
// Everything downstream of a trace - the event-order LP, the replay
// simulator, the sweep journal - silently assumes structural invariants
// that nothing re-checks once violated input slips past construction: the
// task DAG is acyclic, every rank's chain reaches MPI_Finalize, message
// endpoints pair a Send with a Recv, config tables have positive
// duration/power, Pareto frontiers are convex and dominance-free, the
// DVFS grid is monotone, and the LP covers every event with exactly one
// cap row. A trace that breaks one of these can yield a *vacuous* bound
// (e.g. zero-work chains bound the makespan at 0 s) rather than an error.
//
// The linter re-checks all of it up front and reports every violation
// with file/line provenance, using a source map derived from the trace
// format's determinism: vertex ids are dense and ascending (= file
// order) and edge ids are add-order (= file order of task/message
// directives), so entity k maps back to the k-th directive's line.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/events.h"
#include "core/lp_formulation.h"
#include "dag/graph.h"
#include "machine/machine.h"
#include "machine/power_model.h"

namespace powerlim::check {

enum class LintSeverity { kWarning, kError };

const char* to_string(LintSeverity severity);

struct LintFinding {
  /// Stable rule identifier, e.g. "dag-acyclic" (see README table).
  std::string rule;
  LintSeverity severity = LintSeverity::kError;
  std::string message;
  /// Source file when known; empty for in-memory inputs.
  std::string file;
  /// 1-based source line; 0 when the finding is not tied to one line.
  int line = 0;

  /// "file:line: error: [rule] message" (file/line parts elided when
  /// unknown).
  std::string to_string() const;
};

struct LintReport {
  std::vector<LintFinding> findings;

  int errors() const;
  int warnings() const;
  /// True when no error-severity finding exists (warnings allowed).
  bool ok() const { return errors() == 0; }
  void merge(LintReport other);
  /// One finding per line.
  std::string to_string() const;
};

/// Maps vertex/edge ids of a parsed trace back to their source lines.
struct TraceSourceMap {
  std::string file;
  std::vector<int> vertex_line;
  std::vector<int> edge_line;

  /// 0 when the id is out of range (e.g. synthetic graphs).
  int line_of_vertex(int id) const;
  int line_of_edge(int id) const;
};

/// Builds the source map by scanning the trace text; never throws on
/// malformed content (unparseable lines simply contribute no entries).
TraceSourceMap build_trace_source_map(std::istream& in, std::string file);
TraceSourceMap build_trace_source_map_from_file(const std::string& path);

/// Structural rules over a (possibly unvalidated) task graph: Init /
/// Finalize presence, acyclicity, reachability of Finalize, per-rank
/// chain integrity, rank-monotone event order along each chain, matched
/// Send/Recv message endpoints, and per-edge workload sanity (positive
/// work, fractions in range). `src` (optional) adds file/line provenance.
LintReport lint_trace(const dag::TaskGraph& graph,
                      const TraceSourceMap* src = nullptr);

/// Per-task configuration tables: every enumerated config has positive
/// finite duration and power, and the derived Pareto/convex frontier is
/// non-empty, dominance-free, and convex. Requires a structurally sound
/// graph (call after lint_trace reports no errors).
LintReport lint_configs(const dag::TaskGraph& graph,
                        const machine::PowerModel& model,
                        const TraceSourceMap* src = nullptr);

/// One frontier in isolation (the building block of lint_configs,
/// exposed so hand-built frontiers can be checked directly).
LintReport lint_frontier(int edge_id,
                         const std::vector<machine::Config>& frontier,
                         const TraceSourceMap* src = nullptr);

/// Machine model: DVFS grid monotone descending fmax -> fmin with a
/// positive step, throttle floor at or below fmin, positive power-model
/// parameters, positive network bandwidth.
LintReport lint_machine(const machine::ClusterSpec& cluster);

/// LP model well-formedness for one built window: every event group with
/// active tasks is covered by exactly one cap row, no free columns
/// (variables appearing in no row), no duplicate columns within a row,
/// ordered finite row bounds, no non-finite coefficients, and event
/// groups ordered by non-decreasing initial time.
LintReport lint_model(const core::BuiltModel& built,
                      const core::EventOrder& events);

/// Everything above for one trace file: parses leniently (parse errors
/// become findings, not exceptions), then runs lint_trace, lint_machine,
/// lint_configs, and lint_model on every barrier window. This is what
/// `powerlim lint` and the bound/sweep input gates call.
LintReport lint_trace_file(const std::string& path,
                           const machine::PowerModel& model,
                           const machine::ClusterSpec& cluster);

}  // namespace powerlim::check
