// Exact certificate checker for accepted LP/ILP solutions.
//
// A solution that the simplex labels "optimal" is still just a vector of
// doubles produced by thousands of floating-point pivots - and after
// PRs 1-3 it may additionally have passed through retry rungs, fault
// seams, a fork/pipe round trip, and a journal replay. verify_certificate
// re-validates the claim from first principles, independently of the
// solver:
//
//   1. The problem data (frontiers, event order, constraint rows) are
//      re-derived from the trace and machine model - NOT taken from the
//      solver's state - so corruption injected anywhere in the solve path
//      is caught.
//   2. Primal feasibility (precedence, the power cap at every event,
//      share weights summing to 1, the frozen event order) is evaluated
//      in exact dyadic-rational arithmetic (check/rational.h): the only
//      approximation is the final comparison against the configured
//      tolerance, itself converted exactly.
//   3. Weak duality: from the solver's duals y, the Lagrangian bound
//      g(y) <= opt is computed exactly and the reported objective must
//      satisfy  objective - g(y) <= gap tolerance. Any y gives a valid
//      bound, so sign-inconsistent duals are sanitized to zero rather
//      than trusted; a corrupted solve therefore yields a huge gap, not
//      a wrong certificate. (See FORMULATION.md for why box bounds on the
//      vertex times preserve the optimum.)
//
// Verdicts feed RunReport (schema 4) and the `certificate-failed` status.
//
// powerlint: allow-file(float-in-exact) -- the checker's interface ingests the solver's IEEE doubles and reports tolerances as doubles by contract; every comparison and all internal math is Dyadic (rational.h), whose own boundary lines carry per-line suppressions
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/windowed.h"
#include "dag/graph.h"
#include "machine/machine.h"
#include "machine/power_model.h"

namespace powerlim::check {

struct CertificateOptions {
  /// Absolute feasibility tolerance in each constraint's native unit
  /// (seconds for precedence/order rows, watts for cap rows, unitless for
  /// share weights).
  double feasibility_tol = 1e-6;
  /// Relative weak-duality gap tolerance: the reported objective may
  /// exceed the certified lower bound by at most this fraction of
  /// max(1, objective).
  double duality_gap_tol = 1e-4;
  /// Fail (rather than skip) the weak-duality check when the solver
  /// provided no duals. Leave false for discrete (branch & bound) solves,
  /// which have no duals by nature.
  bool require_duals = false;
};

/// One rule's aggregated verdict across all windows.
struct CertificateCheck {
  std::string rule;
  bool ok = true;
  /// Worst violation seen, in the rule's native unit (0 when ok).
  double violation = 0.0;
  /// First failure's description; empty when ok.
  std::string detail;
};

struct CertificateVerdict {
  /// False when verification could not run at all (malformed result).
  bool checked = false;
  bool ok = false;
  /// True when the weak-duality check ran (duals were available).
  bool duality_checked = false;
  /// Worst primal violation across rules (native units).
  double max_violation = 0.0;
  /// Certified relative duality gap (0 when not checked).
  double duality_gap = 0.0;
  std::vector<CertificateCheck> checks;
  /// First failing rule's message; empty when ok.
  std::string detail;
};

/// Re-derives the per-window verification structures (frontiers, event
/// orders, LP rows) once per (graph, machine) pair; verify() may then be
/// called for every accepted cap of a sweep. The rebuild deliberately
/// bypasses all fault-injection hooks.
class CertificateChecker {
 public:
  CertificateChecker(const dag::TaskGraph& graph,
                     const machine::PowerModel& model,
                     const machine::ClusterSpec& cluster,
                     CertificateOptions options = {});
  ~CertificateChecker();
  CertificateChecker(CertificateChecker&&) noexcept;
  CertificateChecker& operator=(CertificateChecker&&) noexcept;

  /// Verifies one accepted solve. `job_cap_watts` is the cap the bound
  /// claims to honor (used for the event-cap check); `effective_cap_watts`
  /// is the cap the solver was actually given (the perturb rung shaves it
  /// slightly), used to rebuild the model rows the duals price. For an
  /// unmodified solve pass the same value twice.
  CertificateVerdict verify(const core::WindowedLpResult& result,
                            double job_cap_watts,
                            double effective_cap_watts) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// One-shot convenience over CertificateChecker.
CertificateVerdict verify_certificate(const dag::TaskGraph& graph,
                                      const machine::PowerModel& model,
                                      const machine::ClusterSpec& cluster,
                                      const core::WindowedLpResult& result,
                                      double job_cap_watts,
                                      const CertificateOptions& options = {});

}  // namespace powerlim::check
