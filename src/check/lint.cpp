#include "check/lint.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "core/pareto.h"
#include "core/windowed.h"
#include "dag/trace_io.h"
#include "dag/windows.h"
#include "lp/model.h"

namespace powerlim::check {

namespace {

/// Cap on findings emitted per rule so a pathological trace (thousands of
/// unreachable vertices) stays readable; a summary line reports the rest.
constexpr int kMaxFindingsPerRule = 20;

class Reporter {
 public:
  Reporter(LintReport* report, const TraceSourceMap* src)
      : report_(report), src_(src) {}

  void add(const std::string& rule, LintSeverity severity, int line,
           std::string message) {
    int& count = per_rule_[rule];
    ++count;
    if (count == kMaxFindingsPerRule + 1) {
      report_->findings.push_back(
          {rule, severity, "further '" + rule + "' findings suppressed",
           src_ != nullptr ? src_->file : std::string(), 0});
    }
    if (count > kMaxFindingsPerRule) return;
    report_->findings.push_back(
        {rule, severity, std::move(message),
         src_ != nullptr ? src_->file : std::string(), line});
  }

  void error(const std::string& rule, int line, std::string message) {
    add(rule, LintSeverity::kError, line, std::move(message));
  }
  void warn(const std::string& rule, int line, std::string message) {
    add(rule, LintSeverity::kWarning, line, std::move(message));
  }

  int vertex_line(int id) const {
    return src_ != nullptr ? src_->line_of_vertex(id) : 0;
  }
  int edge_line(int id) const {
    return src_ != nullptr ? src_->line_of_edge(id) : 0;
  }

 private:
  LintReport* report_;
  const TraceSourceMap* src_;
  std::unordered_map<std::string, int> per_rule_;
};

bool positive_finite(double v) { return std::isfinite(v) && v > 0.0; }

}  // namespace

const char* to_string(LintSeverity severity) {
  return severity == LintSeverity::kError ? "error" : "warning";
}

std::string LintFinding::to_string() const {
  std::string out;
  if (!file.empty()) {
    out += file;
    out += ':';
    if (line > 0) {
      out += std::to_string(line);
      out += ':';
    }
    out += ' ';
  } else if (line > 0) {
    out += "line " + std::to_string(line) + ": ";
  }
  out += check::to_string(severity);
  out += ": [" + rule + "] " + message;
  return out;
}

int LintReport::errors() const {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(), [](const auto& f) {
        return f.severity == LintSeverity::kError;
      }));
}

int LintReport::warnings() const {
  return static_cast<int>(findings.size()) - errors();
}

void LintReport::merge(LintReport other) {
  findings.insert(findings.end(),
                  std::make_move_iterator(other.findings.begin()),
                  std::make_move_iterator(other.findings.end()));
}

std::string LintReport::to_string() const {
  std::string out;
  for (const LintFinding& f : findings) {
    out += f.to_string();
    out += '\n';
  }
  return out;
}

int TraceSourceMap::line_of_vertex(int id) const {
  if (id < 0 || id >= static_cast<int>(vertex_line.size())) return 0;
  return vertex_line[id];
}

int TraceSourceMap::line_of_edge(int id) const {
  if (id < 0 || id >= static_cast<int>(edge_line.size())) return 0;
  return edge_line[id];
}

TraceSourceMap build_trace_source_map(std::istream& in, std::string file) {
  TraceSourceMap map;
  map.file = std::move(file);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream toks(line);
    std::string word;
    if (!(toks >> word)) continue;
    // Vertex ids are dense/ascending and edge ids are add-order, so the
    // k-th directive of each family is entity k.
    if (word == "vertex") {
      map.vertex_line.push_back(line_no);
    } else if (word == "task" || word == "message") {
      map.edge_line.push_back(line_no);
    }
  }
  return map;
}

TraceSourceMap build_trace_source_map_from_file(const std::string& path) {
  std::ifstream in(path);
  return build_trace_source_map(in, path);
}

LintReport lint_trace(const dag::TaskGraph& graph,
                      const TraceSourceMap* src) {
  LintReport report;
  Reporter r(&report, src);
  const int n = static_cast<int>(graph.num_vertices());

  // Init / Finalize presence and edge direction.
  if (graph.init_vertex() < 0) {
    r.error("dag-init", 0, "trace has no Init vertex");
  } else if (!graph.vertex(graph.init_vertex()).in_edges.empty()) {
    r.error("dag-init", r.vertex_line(graph.init_vertex()),
            "Init vertex has inbound edges");
  }
  if (graph.finalize_vertex() < 0) {
    r.error("dag-finalize", 0, "trace has no Finalize vertex");
  } else if (!graph.vertex(graph.finalize_vertex()).out_edges.empty()) {
    r.error("dag-finalize", r.vertex_line(graph.finalize_vertex()),
            "Finalize vertex has outbound edges");
  }

  // Acyclicity via Kahn's algorithm; vertices left over sit on a cycle.
  std::vector<int> indegree(n, 0);
  for (const dag::Edge& e : graph.edges()) ++indegree[e.dst];
  std::deque<int> ready;
  for (int v = 0; v < n; ++v) {
    if (indegree[v] == 0) ready.push_back(v);
  }
  int removed = 0;
  std::vector<char> off_cycle(n, 0);
  while (!ready.empty()) {
    const int v = ready.front();
    ready.pop_front();
    off_cycle[v] = 1;
    ++removed;
    for (int eid : graph.vertex(v).out_edges) {
      if (--indegree[graph.edge(eid).dst] == 0) {
        ready.push_back(graph.edge(eid).dst);
      }
    }
  }
  const bool acyclic = removed == n;
  if (!acyclic) {
    for (const dag::Edge& e : graph.edges()) {
      if (!off_cycle[e.src] && !off_cycle[e.dst]) {
        r.error("dag-acyclic", r.edge_line(e.id),
                "edge " + std::to_string(e.id) + " (" +
                    std::to_string(e.src) + " -> " + std::to_string(e.dst) +
                    ") lies on a cycle");
      }
    }
  }

  // Reachability from Init; Finalize gets its own rule because an
  // unreachable Finalize is what turns the LP bound vacuous.
  if (graph.init_vertex() >= 0) {
    std::vector<char> seen(n, 0);
    std::deque<int> queue{graph.init_vertex()};
    seen[graph.init_vertex()] = 1;
    while (!queue.empty()) {
      const int v = queue.front();
      queue.pop_front();
      for (int eid : graph.vertex(v).out_edges) {
        const int d = graph.edge(eid).dst;
        if (!seen[d]) {
          seen[d] = 1;
          queue.push_back(d);
        }
      }
    }
    if (graph.finalize_vertex() >= 0 && !seen[graph.finalize_vertex()]) {
      r.error("dag-finalize-reach", r.vertex_line(graph.finalize_vertex()),
              "Finalize vertex " + std::to_string(graph.finalize_vertex()) +
                  " is unreachable from Init; any makespan bound over this "
                  "trace is vacuous");
    }
    for (int v = 0; v < n; ++v) {
      if (!seen[v] && v != graph.finalize_vertex()) {
        r.error("dag-reach", r.vertex_line(v),
                "vertex " + std::to_string(v) +
                    " is unreachable from Init");
      }
    }
  }
  for (int v = 0; v < n; ++v) {
    if (v != graph.finalize_vertex() && graph.vertex(v).out_edges.empty()) {
      r.error("dag-dead-end", r.vertex_line(v),
              "vertex " + std::to_string(v) +
                  " has no outbound edge (dead end before Finalize)");
    }
  }

  // Per-rank chains: each rank's tasks must form one chain Init ->
  // Finalize (the invariant that lets events cover every rank timeline),
  // and the chain must visit events in the order they appear -
  // rank-monotone event order is chain order by construction, so a task
  // whose source is not the previous task's destination breaks it.
  for (int rank = 0; rank < graph.num_ranks(); ++rank) {
    std::unordered_map<int, int> next;
    int total = 0;
    bool chain_ok = true;
    for (const dag::Edge& e : graph.edges()) {
      if (!e.is_task() || e.rank != rank) continue;
      ++total;
      if (!next.emplace(e.src, e.id).second) {
        r.error("dag-rank-chain", r.edge_line(e.id),
                "rank " + std::to_string(rank) +
                    " has two tasks starting at vertex " +
                    std::to_string(e.src));
        chain_ok = false;
      }
    }
    if (total == 0) {
      r.error("dag-rank-chain", 0,
              "rank " + std::to_string(rank) + " has no tasks");
      continue;
    }
    if (!chain_ok || graph.init_vertex() < 0) continue;
    int at = graph.init_vertex();
    int visited = 0;
    int last_edge = -1;
    std::unordered_set<int> walked;
    while (true) {
      auto it = next.find(at);
      if (it == next.end()) break;
      if (!walked.insert(it->second).second) break;  // cyclic chain
      last_edge = it->second;
      ++visited;
      at = graph.edge(it->second).dst;
    }
    if (visited != total) {
      // Some task never got consumed by the walk: report the first one.
      for (const dag::Edge& e : graph.edges()) {
        if (e.is_task() && e.rank == rank && walked.count(e.id) == 0) {
          r.error("dag-rank-chain", r.edge_line(e.id),
                  "tasks of rank " + std::to_string(rank) +
                      " do not form a chain from Init (task " +
                      std::to_string(e.id) + " is disconnected)");
          break;
        }
      }
    } else if (last_edge >= 0 &&
               graph.edge(last_edge).dst != graph.finalize_vertex()) {
      r.error("dag-rank-chain", r.edge_line(last_edge),
              "rank " + std::to_string(rank) +
                  "'s task chain ends at vertex " +
                  std::to_string(graph.edge(last_edge).dst) +
                  ", not Finalize");
    }
  }

  // Tasks must stay on their rank's vertices (or shared rank -1 ones).
  for (const dag::Edge& e : graph.edges()) {
    if (!e.is_task()) continue;
    const dag::Vertex& s = graph.vertex(e.src);
    const dag::Vertex& d = graph.vertex(e.dst);
    if ((s.rank != -1 && s.rank != e.rank) ||
        (d.rank != -1 && d.rank != e.rank)) {
      r.error("dag-task-rank", r.edge_line(e.id),
              "task " + std::to_string(e.id) + " of rank " +
                  std::to_string(e.rank) + " touches a vertex of rank " +
                  std::to_string(s.rank != -1 && s.rank != e.rank ? s.rank
                                                                  : d.rank));
    }
  }

  // Message endpoints: src must be a Send, dst a Recv, and every
  // Send/Recv vertex must participate in at least one message.
  for (const dag::Edge& e : graph.edges()) {
    if (e.is_task()) continue;
    const dag::Vertex& s = graph.vertex(e.src);
    const dag::Vertex& d = graph.vertex(e.dst);
    if (s.kind != dag::VertexKind::kSend) {
      r.error("msg-endpoints", r.edge_line(e.id),
              "message " + std::to_string(e.id) +
                  " originates at a non-Send vertex " +
                  std::to_string(e.src));
    }
    if (d.kind != dag::VertexKind::kRecv) {
      r.error("msg-endpoints", r.edge_line(e.id),
              "message " + std::to_string(e.id) +
                  " terminates at a non-Recv vertex " +
                  std::to_string(e.dst));
    }
    if (s.rank >= 0 && s.rank == d.rank) {
      r.warn("msg-endpoints", r.edge_line(e.id),
             "message " + std::to_string(e.id) + " stays on rank " +
                 std::to_string(s.rank));
    }
    if (!std::isfinite(e.bytes) || e.bytes < 0.0) {
      r.error("msg-bytes", r.edge_line(e.id),
              "message " + std::to_string(e.id) +
                  " has a non-finite or negative payload");
    }
  }
  for (const dag::Vertex& v : graph.vertices()) {
    if (v.kind == dag::VertexKind::kSend) {
      const bool has_msg =
          std::any_of(v.out_edges.begin(), v.out_edges.end(),
                      [&](int eid) { return !graph.edge(eid).is_task(); });
      if (!has_msg) {
        r.error("msg-endpoints", r.vertex_line(v.id),
                "Send vertex " + std::to_string(v.id) +
                    " has no outgoing message (unmatched send)");
      }
    } else if (v.kind == dag::VertexKind::kRecv) {
      const bool has_msg =
          std::any_of(v.in_edges.begin(), v.in_edges.end(),
                      [&](int eid) { return !graph.edge(eid).is_task(); });
      if (!has_msg) {
        r.error("msg-endpoints", r.vertex_line(v.id),
                "Recv vertex " + std::to_string(v.id) +
                    " has no incoming message (unmatched receive)");
      }
    }
  }

  // Per-task workload sanity. Zero total work gets its own message: a
  // chain of zero-work tasks reaches Finalize at t=0, so the "bound" the
  // LP reports is vacuous rather than wrong, which is worse.
  for (const dag::Edge& e : graph.edges()) {
    if (!e.is_task()) continue;
    const machine::TaskWork& w = e.work;
    if (!std::isfinite(w.cpu_seconds) || w.cpu_seconds < 0.0 ||
        !std::isfinite(w.mem_seconds) || w.mem_seconds < 0.0) {
      r.error("task-work", r.edge_line(e.id),
              "task " + std::to_string(e.id) +
                  " has negative or non-finite work");
    } else if (w.cpu_seconds + w.mem_seconds == 0.0) {
      r.error("task-work", r.edge_line(e.id),
              "task " + std::to_string(e.id) +
                  " has zero total work; zero-duration tasks make the LP "
                  "bound vacuous");
    }
    if (!std::isfinite(w.parallel_fraction) || w.parallel_fraction < 0.0 ||
        w.parallel_fraction > 1.0) {
      r.error("task-work", r.edge_line(e.id),
              "task " + std::to_string(e.id) +
                  " has parallel_fraction outside [0, 1]");
    }
    if (w.mem_parallel_threads < 1) {
      r.error("task-work", r.edge_line(e.id),
              "task " + std::to_string(e.id) +
                  " has mem_parallel_threads < 1");
    }
    if (!std::isfinite(w.cache_contention) || w.cache_contention < 0.0) {
      r.error("task-work", r.edge_line(e.id),
              "task " + std::to_string(e.id) +
                  " has negative or non-finite cache_contention");
    }
    if (w.cache_knee < 1) {
      r.error("task-work", r.edge_line(e.id),
              "task " + std::to_string(e.id) + " has cache_knee < 1");
    }
  }

  return report;
}

LintReport lint_frontier(int edge_id,
                         const std::vector<machine::Config>& frontier,
                         const TraceSourceMap* src) {
  LintReport report;
  Reporter r(&report, src);
  const int line = r.edge_line(edge_id);
  const std::string task = "task " + std::to_string(edge_id);
  if (frontier.empty()) {
    r.error("frontier-empty", line,
            task + " has an empty configuration frontier");
    return report;
  }
  for (const machine::Config& cfg : frontier) {
    if (!positive_finite(cfg.duration) || !positive_finite(cfg.power)) {
      r.error("config-positive", line,
              task + " has a frontier point with non-positive or "
                     "non-finite duration/power");
      return report;
    }
  }
  // Dominance-free: sorted by strictly increasing power, strictly
  // decreasing duration. Any tie or inversion means one point dominates
  // (or equals) a neighbor.
  for (std::size_t k = 1; k < frontier.size(); ++k) {
    if (frontier[k].power <= frontier[k - 1].power ||
        frontier[k].duration >= frontier[k - 1].duration) {
      r.error("frontier-dominance", line,
              task + " frontier point " + std::to_string(k) +
                  " is dominated by or ties its neighbor");
    }
  }
  if (!core::is_convex_frontier(frontier)) {
    r.error("frontier-convex", line,
            task + " configuration frontier is not convex");
  }
  return report;
}

LintReport lint_configs(const dag::TaskGraph& graph,
                        const machine::PowerModel& model,
                        const TraceSourceMap* src) {
  LintReport report;
  Reporter r(&report, src);
  for (const dag::Edge& e : graph.edges()) {
    if (!e.is_task()) continue;
    const std::vector<machine::Config> configs =
        model.enumerate(e.work, e.rank);
    if (configs.empty()) {
      r.error("config-positive", r.edge_line(e.id),
              "task " + std::to_string(e.id) +
                  " has no machine configurations");
      continue;
    }
    bool table_ok = true;
    for (const machine::Config& cfg : configs) {
      if (!positive_finite(cfg.duration) || !positive_finite(cfg.power)) {
        r.error("config-positive", r.edge_line(e.id),
                "task " + std::to_string(e.id) + " config (" +
                    std::to_string(cfg.ghz) + " GHz, " +
                    std::to_string(cfg.threads) +
                    " threads) has non-positive or non-finite "
                    "duration/power");
        table_ok = false;
      }
    }
    if (!table_ok) continue;
    report.merge(lint_frontier(e.id, core::convex_frontier(configs), src));
  }
  return report;
}

LintReport lint_machine(const machine::ClusterSpec& cluster) {
  LintReport report;
  Reporter r(&report, nullptr);
  const machine::SocketSpec& s = cluster.socket;
  if (s.cores < 1) r.error("machine-spec", 0, "socket has no cores");
  if (cluster.sockets < 1) r.error("machine-spec", 0, "cluster is empty");
  bool range_ok = true;
  if (!positive_finite(s.fstep_ghz)) {
    r.error("dvfs-grid", 0, "DVFS step must be positive and finite");
    range_ok = false;
  }
  if (!positive_finite(s.fmin_ghz) || !positive_finite(s.fmax_ghz) ||
      s.fmin_ghz > s.fmax_ghz) {
    r.error("dvfs-grid", 0, "DVFS range requires 0 < fmin <= fmax");
    range_ok = false;
  }
  if (s.throttle_floor_ghz > s.fmin_ghz + 1e-12 ||
      !positive_finite(s.throttle_floor_ghz)) {
    r.error("dvfs-grid", 0,
            "throttle floor must be positive and at or below fmin");
  }
  // Only enumerate the grid when the range parameters are coherent -
  // dvfs_states() on an inverted range is free to throw.
  const std::vector<double> grid =
      range_ok ? s.dvfs_states() : std::vector<double>{};
  if (grid.empty()) {
    if (range_ok) r.error("dvfs-grid", 0, "DVFS grid is empty");
  } else {
    if (std::abs(grid.front() - s.fmax_ghz) > 1e-9) {
      r.error("dvfs-grid", 0, "DVFS grid does not start at fmax");
    }
    for (std::size_t i = 1; i < grid.size(); ++i) {
      if (grid[i] >= grid[i - 1]) {
        r.error("dvfs-grid", 0,
                "DVFS grid is not strictly descending at state " +
                    std::to_string(i));
        break;
      }
    }
    if (grid.back() < s.fmin_ghz - 1e-9) {
      r.error("dvfs-grid", 0, "DVFS grid descends below fmin");
    }
  }
  if (s.p_static < 0.0 || !positive_finite(s.p_core_max) ||
      !positive_finite(s.p_uncore_max) || !positive_finite(s.alpha)) {
    r.error("machine-power", 0,
            "power-model parameters must be positive and finite");
  }
  if (!positive_finite(cluster.net_bandwidth_bps) ||
      cluster.net_latency_s < 0.0 ||
      !std::isfinite(cluster.net_latency_s)) {
    r.error("machine-net", 0,
            "network requires positive bandwidth and non-negative latency");
  }
  return report;
}

LintReport lint_model(const core::BuiltModel& built,
                      const core::EventOrder& events) {
  LintReport report;
  Reporter r(&report, nullptr);
  const lp::Model& m = built.model;

  // Cap coverage: every event group with active tasks has exactly one
  // power row, groups without active tasks none, and no two groups share
  // a row.
  std::unordered_set<int> seen_rows;
  for (std::size_t g = 0; g < events.num_groups(); ++g) {
    const int row = g < built.power_row_of_group.size()
                        ? built.power_row_of_group[g]
                        : -1;
    if (!events.active_tasks[g].empty()) {
      if (row < 0 || row >= static_cast<int>(m.num_constraints())) {
        r.error("lp-cap-coverage", 0,
                "event group " + std::to_string(g) +
                    " has active tasks but no power-cap row");
        continue;
      }
      if (!seen_rows.insert(row).second) {
        r.error("lp-cap-coverage", 0,
                "power-cap row " + std::to_string(row) +
                    " covers more than one event group");
      }
      // A cap row must be a pure upper bound.
      if (lp::is_finite_bound(m.row_lb(row)) ||
          !lp::is_finite_bound(m.row_ub(row))) {
        r.error("lp-cap-coverage", 0,
                "power-cap row " + std::to_string(row) +
                    " is not a <= row with a finite cap");
      }
    } else if (row >= 0) {
      r.error("lp-cap-coverage", 0,
              "event group " + std::to_string(g) +
                  " has no active task yet owns power-cap row " +
                  std::to_string(row));
    }
  }

  // Event groups must be ordered by the initial schedule.
  for (std::size_t g = 1; g < events.num_groups(); ++g) {
    if (events.group_time[g] < events.group_time[g - 1]) {
      r.error("event-order", 0,
              "event group " + std::to_string(g) +
                  " is ordered before an earlier time");
    }
  }

  // Row sanity: ordered bounds, at least one term, no duplicate columns,
  // finite coefficients; and column coverage for the free-column check.
  std::vector<char> referenced(m.num_variables(), 0);
  for (std::size_t i = 0; i < m.num_constraints(); ++i) {
    const lp::Model::RowView row = m.row(static_cast<int>(i));
    if (row.size == 0) {
      r.error("lp-empty-row", 0,
              "constraint row " + std::to_string(i) + " has no terms");
    }
    if (m.row_lb(i) > m.row_ub(i)) {
      r.error("lp-row-bounds", 0,
              "constraint row " + std::to_string(i) +
                  " has crossed bounds (lb > ub)");
    }
    if (!lp::is_finite_bound(m.row_lb(i)) &&
        !lp::is_finite_bound(m.row_ub(i))) {
      r.error("lp-row-bounds", 0,
              "constraint row " + std::to_string(i) +
                  " constrains nothing (both bounds infinite)");
    }
    std::unordered_set<int> cols;
    for (std::size_t t = 0; t < row.size; ++t) {
      if (!cols.insert(row.idx[t]).second) {
        r.error("lp-duplicate-column", 0,
                "constraint row " + std::to_string(i) +
                    " references column " + std::to_string(row.idx[t]) +
                    " twice");
      }
      if (!std::isfinite(row.coeff[t])) {
        r.error("lp-coefficient", 0,
                "constraint row " + std::to_string(i) +
                    " has a non-finite coefficient");
      }
      if (row.idx[t] >= 0 &&
          row.idx[t] < static_cast<int>(referenced.size())) {
        referenced[row.idx[t]] = 1;
      }
    }
  }
  for (std::size_t j = 0; j < m.num_variables(); ++j) {
    if (!referenced[j]) {
      r.error("lp-free-column", 0,
              "variable " + std::to_string(j) + " (" + m.variable_name(
                  static_cast<int>(j)) +
                  ") appears in no constraint row");
    }
    if (m.variable_lb(static_cast<int>(j)) >
        m.variable_ub(static_cast<int>(j))) {
      r.error("lp-var-bounds", 0,
              "variable " + std::to_string(j) +
                  " has crossed bounds (lb > ub)");
    }
  }
  return report;
}

LintReport lint_trace_file(const std::string& path,
                           const machine::PowerModel& model,
                           const machine::ClusterSpec& cluster) {
  LintReport report;
  std::ifstream in(path);
  if (!in) {
    report.findings.push_back(
        {"io", LintSeverity::kError, "cannot open for reading", path, 0});
    return report;
  }
  std::stringstream text;
  text << in.rdbuf();

  TraceSourceMap src = build_trace_source_map(text, path);
  text.clear();
  text.seekg(0);

  dag::TaskGraph graph(1);
  try {
    graph = dag::read_trace_unvalidated(text, path);
  } catch (const dag::TraceParseError& e) {
    report.findings.push_back({"parse", LintSeverity::kError, e.what(),
                               e.source(), e.line()});
    return report;
  }

  report.merge(lint_trace(graph, &src));
  report.merge(lint_machine(cluster));
  if (!report.ok()) return report;  // deeper passes need sound structure

  report.merge(lint_configs(graph, model, &src));
  if (!report.ok()) return report;

  // Per-window LP well-formedness over the exact models a solve would
  // build. The cap value does not affect structure; any finite cap works.
  try {
    graph.validate();
    for (const dag::Window& win : dag::split_at_barriers(graph)) {
      const core::LpFormulation form(win.graph, model, cluster);
      core::LpScheduleOptions options;
      options.power_cap = std::max(1.0, form.min_feasible_power());
      report.merge(
          lint_model(form.build_model(options), form.events()));
    }
  } catch (const std::exception& e) {
    report.findings.push_back({"dag-structure", LintSeverity::kError,
                               std::string("cannot build LP windows: ") +
                                   e.what(),
                               path, 0});
  }
  return report;
}

}  // namespace powerlim::check
