// Synthetic trace generators for the paper's four benchmarks (Section 5.2).
//
// The paper profiles CoMD, LULESH 2.0, and NAS-MZ SP / BT on 32 processes
// x 8 cores on the Cab cluster. The binaries and the cluster are not
// available here, so each generator emits a task DAG with the same
// communication *structure* and load-imbalance *signature* the paper
// describes and depends on:
//
//  CoMD   - all communication is collectives (Section 5.2); compute-bound
//           force kernels; mild static imbalance from spatial decomposition.
//           The only optimization opportunity is power reallocation across
//           ranks at every collective (paper's words).
//  LULESH - many point-to-point halo messages between collectives;
//           memory-heavy kernels whose shared-cache contention makes 4-5
//           threads optimal under a cap (Table 3); moderate imbalance.
//  SP-MZ  - well load-balanced multi-zone solver; per-iteration noise is
//           uncorrelated, which is exactly what makes Conductor misidentify
//           the critical path (Section 6.4, Figure 14).
//  BT-MZ  - strongly imbalanced zone sizes (geometric zone growth), stable
//           across iterations: the best case for non-uniform power
//           allocation (75% potential gain over Static at 30 W, Figure 13).
//
// All randomness is drawn from the seed in the params; generation is
// deterministic and independent of platform.
#pragma once

#include <array>
#include <cstdint>

#include "dag/graph.h"

namespace powerlim::apps {

struct ComdParams {
  int ranks = 32;
  int iterations = 20;
  std::uint64_t seed = 17;
  /// Nominal single-thread seconds of one force-computation step.
  double step_seconds = 8.0;
  /// Static per-rank imbalance (std-dev of the rank weight around 1).
  double imbalance_stdev = 0.035;
  /// Per-iteration multiplicative jitter.
  double jitter_stdev = 0.008;
};
dag::TaskGraph make_comd(const ComdParams& params = {});

struct LuleshParams {
  int ranks = 32;
  int iterations = 20;
  std::uint64_t seed = 23;
  /// Nominal single-thread seconds of one full Lagrange step.
  double step_seconds = 24.0;
  double imbalance_stdev = 0.08;
  double jitter_stdev = 0.015;
  /// Halo payload per neighbor message.
  double halo_bytes = 2e6;
  /// Exchange topology. The default ring keeps the calibrated evaluation
  /// stable; the 3D torus (6 face neighbors over a near-cubic rank grid)
  /// matches the real code's domain decomposition more closely.
  bool use_3d_halo = false;
};
dag::TaskGraph make_lulesh(const LuleshParams& params = {});

/// Near-cubic factorization of `ranks` into (px, py, pz) with
/// px*py*pz == ranks and px >= py >= pz (used by the 3D halo topology).
std::array<int, 3> factor_3d(int ranks);

struct NasMzParams {
  int ranks = 32;
  int iterations = 20;
  std::uint64_t seed = 31;
  /// Nominal single-thread seconds of one time step over a rank's zones.
  double step_seconds = 12.0;
  /// Boundary-exchange payload.
  double exchange_bytes = 1e6;
};

/// SP-MZ: balanced zones, uncorrelated per-iteration noise.
dag::TaskGraph make_sp(const NasMzParams& params = {});

/// BT-MZ: geometric zone-size growth concentrates work on few ranks.
dag::TaskGraph make_bt(const NasMzParams& params = {});

/// The per-rank static weight vectors used by the generators (exposed for
/// tests and for the runtime algorithms' oracle baselines).
std::vector<double> comd_rank_weights(const ComdParams& params);
std::vector<double> lulesh_rank_weights(const LuleshParams& params);
std::vector<double> bt_rank_weights(const NasMzParams& params);

}  // namespace powerlim::apps
