// Random structured application generator.
//
// Produces valid iterative traces with randomized structure: per
// iteration, each rank runs 1-3 computation phases with optional
// point-to-point exchanges to random peers, closing on a global
// collective. Workload shapes (compute/memory split, parallel fraction,
// contention) are randomized per task within physical ranges.
//
// Purpose: property-based fuzzing of the whole pipeline - any graph this
// emits must validate, window-split, solve, and replay under the cap.
#pragma once

#include <cstdint>

#include "dag/graph.h"

namespace powerlim::apps {

struct RandomAppParams {
  int ranks = 4;
  int iterations = 3;
  std::uint64_t seed = 1;
  /// Probability that a rank posts a p2p exchange in a given phase.
  double p2p_probability = 0.5;
  /// Mean nominal single-thread seconds per phase.
  double phase_seconds = 2.0;
};

dag::TaskGraph make_random_app(const RandomAppParams& params);

}  // namespace powerlim::apps
