#include "apps/benchmarks.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.h"

namespace powerlim::apps {

namespace {

/// Per-rank static weights: clamped normal around 1.
std::vector<double> normal_weights(int ranks, double stdev,
                                   std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> w(ranks);
  for (double& x : w) x = rng.clamped_normal(1.0, stdev, 0.7, 1.4);
  return w;
}

}  // namespace

std::vector<double> comd_rank_weights(const ComdParams& p) {
  return normal_weights(p.ranks, p.imbalance_stdev, p.seed);
}

dag::TaskGraph make_comd(const ComdParams& p) {
  dag::TaskGraph g(p.ranks);
  util::Rng rng(p.seed + 1);
  const std::vector<double> weight = comd_rank_weights(p);

  const int init = g.add_vertex(dag::VertexKind::kInit, -1, "Init");
  const int fin = g.add_vertex(dag::VertexKind::kFinalize, -1, "Finalize");
  int prev = init;
  for (int it = 0; it < p.iterations; ++it) {
    // One force/integrate step per rank, then a global Allreduce (energy).
    const int coll = (it + 1 == p.iterations)
                         ? fin
                         : g.add_vertex(dag::VertexKind::kCollective, -1,
                                        "Allreduce" + std::to_string(it));
    for (int r = 0; r < p.ranks; ++r) {
      const double jitter = rng.clamped_normal(1.0, p.jitter_stdev, 0.9, 1.1);
      machine::TaskWork w;
      const double seconds = p.step_seconds * weight[r] * jitter;
      // Compute-bound: pair interactions dominate; small neighbor-list
      // traffic.
      w.cpu_seconds = seconds * 0.88;
      w.mem_seconds = seconds * 0.12;
      w.parallel_fraction = 0.97;
      w.mem_parallel_threads = 6;
      g.add_task(prev, coll, r, w, it);
    }
    prev = coll;
  }
  g.validate();
  return g;
}

std::array<int, 3> factor_3d(int ranks) {
  std::array<int, 3> best{ranks, 1, 1};
  long best_surface = 1L << 60;
  for (int pz = 1; pz * pz * pz <= ranks; ++pz) {
    if (ranks % pz) continue;
    const int rest = ranks / pz;
    for (int py = pz; py * py <= rest; ++py) {
      if (rest % py) continue;
      const int px = rest / py;
      // Prefer the most cubic split: minimize total face surface.
      const long surface =
          static_cast<long>(px) * py + static_cast<long>(py) * pz +
          static_cast<long>(px) * pz;
      if (surface < best_surface) {
        best_surface = surface;
        best = {px, py, pz};
      }
    }
  }
  return best;
}

namespace {

/// Unique face-neighbor ranks of `r` on a (px, py, pz) torus.
std::vector<int> torus_neighbors(int r, const std::array<int, 3>& dims) {
  const int px = dims[0], py = dims[1], pz = dims[2];
  const int x = r % px, y = (r / px) % py, z = r / (px * py);
  auto id = [&](int xx, int yy, int zz) {
    return ((zz + pz) % pz) * px * py + ((yy + py) % py) * px +
           ((xx + px) % px);
  };
  std::vector<int> out;
  for (int n : {id(x - 1, y, z), id(x + 1, y, z), id(x, y - 1, z),
                id(x, y + 1, z), id(x, y, z - 1), id(x, y, z + 1)}) {
    if (n != r &&
        std::find(out.begin(), out.end(), n) == out.end()) {
      out.push_back(n);
    }
  }
  return out;
}

}  // namespace

std::vector<double> lulesh_rank_weights(const LuleshParams& p) {
  return normal_weights(p.ranks, p.imbalance_stdev, p.seed);
}

dag::TaskGraph make_lulesh(const LuleshParams& p) {
  dag::TaskGraph g(p.ranks);
  util::Rng rng(p.seed + 1);
  const std::vector<double> weight = lulesh_rank_weights(p);

  const int init = g.add_vertex(dag::VertexKind::kInit, -1, "Init");
  const int fin = g.add_vertex(dag::VertexKind::kFinalize, -1, "Finalize");

  auto shaped = [&](double seconds) {
    machine::TaskWork w;
    // Shock hydro is bandwidth-heavy; shared-LLC contention beyond ~5
    // threads (drives the paper's Table 3: 4-5 threads optimal at 50 W).
    w.cpu_seconds = seconds * 0.55;
    w.mem_seconds = seconds * 0.45;
    w.parallel_fraction = 0.98;
    w.mem_parallel_threads = 5;
    w.cache_contention = 0.05;
    w.cache_knee = 5;
    return w;
  };

  // prev[r] = last vertex of rank r's chain.
  std::vector<int> prev(p.ranks, init);
  for (int it = 0; it < p.iterations; ++it) {
    // Phase 1: stress/hourglass kernels, then post halo sends.
    std::vector<int> send_v(p.ranks), recv_v(p.ranks);
    for (int r = 0; r < p.ranks; ++r) {
      const double jitter = rng.clamped_normal(1.0, p.jitter_stdev, 0.9, 1.1);
      const double seconds = p.step_seconds * weight[r] * jitter;
      send_v[r] = g.add_vertex(dag::VertexKind::kSend, r,
                             "halo_post" + std::to_string(it));
      g.add_task(prev[r], send_v[r], r, shaped(seconds * 0.6), it);
    }
    // Halo: ring neighbors (structure stands in for the 3D 26-neighbor
    // exchange; what matters to the LP is cross-rank coupling between
    // collectives).
    for (int r = 0; r < p.ranks; ++r) {
      recv_v[r] = g.add_vertex(dag::VertexKind::kRecv, r,
                             "halo_wait" + std::to_string(it));
      // Local pack/unpack work between the post and the wait.
      g.add_task(send_v[r], recv_v[r], r, shaped(p.step_seconds * 0.02), it);
    }
    if (p.use_3d_halo && p.ranks > 1) {
      const std::array<int, 3> dims = factor_3d(p.ranks);
      for (int r = 0; r < p.ranks; ++r) {
        for (int n : torus_neighbors(r, dims)) {
          g.add_message(send_v[r], recv_v[n], p.halo_bytes);
        }
      }
    } else if (p.ranks > 1) {
      for (int r = 0; r < p.ranks; ++r) {
        const int left = (r + p.ranks - 1) % p.ranks;
        const int right = (r + 1) % p.ranks;
        g.add_message(send_v[r], recv_v[left], p.halo_bytes);
        if (right != left) g.add_message(send_v[r], recv_v[right], p.halo_bytes);
      }
    }
    // Phase 2: element kernels, then the dt Allreduce.
    const int coll = (it + 1 == p.iterations)
                         ? fin
                         : g.add_vertex(dag::VertexKind::kCollective, -1,
                                        "dt_allreduce" + std::to_string(it));
    for (int r = 0; r < p.ranks; ++r) {
      const double jitter = rng.clamped_normal(1.0, p.jitter_stdev, 0.9, 1.1);
      const double seconds = p.step_seconds * weight[r] * jitter;
      g.add_task(recv_v[r], coll, r, shaped(seconds * 0.38), it);
    }
    std::fill(prev.begin(), prev.end(), coll);
  }
  g.validate();
  return g;
}

namespace {

/// Shared NAS-MZ structure: per iteration, boundary exchange with ring
/// neighbors followed by the zone solves and a timestep collective.
dag::TaskGraph make_nasmz(const NasMzParams& p,
                          const std::vector<double>& weight,
                          double jitter_stdev, std::uint64_t seed,
                          double memory_share) {
  dag::TaskGraph g(p.ranks);
  util::Rng rng(seed);
  const int init = g.add_vertex(dag::VertexKind::kInit, -1, "Init");
  const int fin = g.add_vertex(dag::VertexKind::kFinalize, -1, "Finalize");

  auto shaped = [&](double seconds) {
    machine::TaskWork w;
    w.cpu_seconds = seconds * (1.0 - memory_share);
    w.mem_seconds = seconds * memory_share;
    w.parallel_fraction = 0.975;
    w.mem_parallel_threads = 5;
    return w;
  };

  std::vector<int> prev(p.ranks, init);
  for (int it = 0; it < p.iterations; ++it) {
    std::vector<int> send_v(p.ranks), recv_v(p.ranks);
    for (int r = 0; r < p.ranks; ++r) {
      send_v[r] = g.add_vertex(dag::VertexKind::kSend, r,
                             "exch_post" + std::to_string(it));
      // Boundary copy-out is cheap and balanced.
      g.add_task(prev[r], send_v[r], r, shaped(p.step_seconds * 0.02), it);
    }
    for (int r = 0; r < p.ranks; ++r) {
      recv_v[r] = g.add_vertex(dag::VertexKind::kRecv, r,
                             "exch_wait" + std::to_string(it));
      g.add_task(send_v[r], recv_v[r], r, shaped(p.step_seconds * 0.01), it);
    }
    for (int r = 0; r < p.ranks && p.ranks > 1; ++r) {
      const int left = (r + p.ranks - 1) % p.ranks;
      const int right = (r + 1) % p.ranks;
      g.add_message(send_v[r], recv_v[left], p.exchange_bytes);
      if (right != left) g.add_message(send_v[r], recv_v[right], p.exchange_bytes);
    }
    const int coll = (it + 1 == p.iterations)
                         ? fin
                         : g.add_vertex(dag::VertexKind::kCollective, -1,
                                        "step_sync" + std::to_string(it));
    for (int r = 0; r < p.ranks; ++r) {
      const double jitter = rng.clamped_normal(1.0, jitter_stdev, 0.85, 1.15);
      g.add_task(recv_v[r], coll, r,
                 shaped(p.step_seconds * weight[r] * jitter * 0.97), it);
    }
    std::fill(prev.begin(), prev.end(), coll);
  }
  g.validate();
  return g;
}

}  // namespace

dag::TaskGraph make_sp(const NasMzParams& p) {
  // SP-MZ: equal-size zones -> near-perfect static balance, but visible
  // per-iteration noise whose rank-to-rank ordering changes every step.
  const std::vector<double> weight(p.ranks, 1.0);
  return make_nasmz(p, weight, /*jitter_stdev=*/0.025, p.seed,
                    /*memory_share=*/0.30);
}

std::vector<double> bt_rank_weights(const NasMzParams& p) {
  // BT-MZ zone sizes grow geometrically; with zones dealt round-robin the
  // per-rank totals still spread widely. Model: weight ratio ~3x from the
  // lightest to the heaviest rank.
  std::vector<double> w(p.ranks);
  for (int r = 0; r < p.ranks; ++r) {
    w[r] = std::pow(3.0, static_cast<double>(r) /
                             std::max(1, p.ranks - 1));
  }
  // Normalize mean to 1 so step_seconds keeps its meaning.
  double sum = 0;
  for (double x : w) sum += x;
  for (double& x : w) x *= p.ranks / sum;
  return w;
}

dag::TaskGraph make_bt(const NasMzParams& p) {
  return make_nasmz(p, bt_rank_weights(p), /*jitter_stdev=*/0.01, p.seed,
                    /*memory_share=*/0.22);
}

}  // namespace powerlim::apps
