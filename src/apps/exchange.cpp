#include "apps/exchange.h"

namespace powerlim::apps {

namespace {
machine::TaskWork shaped_work(double seconds, const ExchangeParams& p) {
  machine::TaskWork w;
  w.cpu_seconds = seconds * (1.0 - p.memory_share);
  w.mem_seconds = seconds * p.memory_share;
  w.parallel_fraction = p.parallel_fraction;
  w.mem_parallel_threads = 4;
  return w;
}
}  // namespace

dag::TaskGraph two_rank_exchange(const ExchangeParams& params) {
  dag::TaskGraph g(2);
  const int init = g.add_vertex(dag::VertexKind::kInit, -1, "Init");
  const int isend = g.add_vertex(dag::VertexKind::kSend, 0, "Isend");
  const int wait = g.add_vertex(dag::VertexKind::kWait, 0, "Wait");
  const int recv = g.add_vertex(dag::VertexKind::kRecv, 1, "Recv");
  const int fin = g.add_vertex(dag::VertexKind::kFinalize, -1, "Finalize");

  g.add_task(init, isend, 0, shaped_work(params.pre_seconds, params), 0);
  g.add_task(isend, wait, 0, shaped_work(params.overlap_seconds, params), 0);
  g.add_task(wait, fin, 0, shaped_work(params.post_seconds, params), 0);
  g.add_task(init, recv, 1, shaped_work(params.recv_pre_seconds, params), 0);
  g.add_task(recv, fin, 1, shaped_work(params.recv_post_seconds, params), 0);
  g.add_message(isend, recv, params.bytes);

  g.validate();
  return g;
}

}  // namespace powerlim::apps
