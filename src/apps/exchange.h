// Two-rank asynchronous message exchange (paper Figures 2 and 8).
//
// The micro-benchmark the paper uses to compare the flow ILP against the
// fixed-vertex-order LP: rank 0 computes, posts an Isend, overlaps
// computation with the transfer, then Waits; rank 1 computes briefly and
// blocks in Recv. Small enough (7 DAG edges) for the ILP to solve.
//
//   r0: Init --A1--> Isend --A2--> Wait --A3--> Finalize
//   r1: Init --A4--> Recv  --A5--> Finalize
//   message: Isend ~~> Recv
#pragma once

#include <cstdint>

#include "dag/graph.h"

namespace powerlim::apps {

struct ExchangeParams {
  /// Rank 0 compute before posting the send (single-thread seconds at
  /// nominal frequency).
  double pre_seconds = 1.0;
  /// Rank 0 compute overlapped with the message flight (Isend..Wait).
  double overlap_seconds = 2.0;
  /// Rank 0 compute after the Wait completes.
  double post_seconds = 0.8;
  /// Rank 1 compute before blocking in Recv.
  double recv_pre_seconds = 0.9;
  /// Rank 1 compute after the message arrives.
  double recv_post_seconds = 2.7;
  /// Message payload.
  double bytes = 1 << 20;
  /// Workload shape shared by all tasks.
  double parallel_fraction = 0.95;
  double memory_share = 0.15;  ///< fraction of each task that is mem-bound
};

/// Builds the exchange DAG; validate()s before returning.
dag::TaskGraph two_rank_exchange(const ExchangeParams& params = {});

}  // namespace powerlim::apps
