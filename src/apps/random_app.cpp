#include "apps/random_app.h"

#include <algorithm>
#include <string>
#include <vector>

#include "util/rng.h"

namespace powerlim::apps {

dag::TaskGraph make_random_app(const RandomAppParams& p) {
  util::Rng rng(p.seed);
  dag::TaskGraph g(p.ranks);
  const int init = g.add_vertex(dag::VertexKind::kInit, -1, "Init");
  const int fin = g.add_vertex(dag::VertexKind::kFinalize, -1, "Finalize");

  auto random_work = [&]() {
    machine::TaskWork w;
    const double seconds =
        p.phase_seconds * rng.uniform(0.3, 1.8);
    const double mem_share = rng.uniform(0.05, 0.55);
    w.cpu_seconds = seconds * (1.0 - mem_share);
    w.mem_seconds = seconds * mem_share;
    w.parallel_fraction = rng.uniform(0.85, 0.995);
    w.mem_parallel_threads = static_cast<int>(rng.uniform_int(2, 8));
    if (rng.uniform(0, 1) < 0.3) {
      w.cache_contention = rng.uniform(0.0, 0.12);
      w.cache_knee = static_cast<int>(rng.uniform_int(3, 7));
    }
    return w;
  };

  std::vector<int> prev(p.ranks, init);
  for (int it = 0; it < p.iterations; ++it) {
    const int phases = static_cast<int>(rng.uniform_int(1, 3));
    for (int phase = 0; phase + 1 < phases; ++phase) {
      // Optional p2p exchange: every participating rank posts a send and
      // then waits at a recv vertex; messages pair ranks randomly.
      std::vector<int> senders;
      std::vector<int> send_vertex(p.ranks, -1), recv_vertex(p.ranks, -1);
      for (int r = 0; r < p.ranks; ++r) {
        if (rng.uniform(0, 1) < p.p2p_probability) senders.push_back(r);
      }
      for (int r = 0; r < p.ranks; ++r) {
        const bool exchanging =
            std::find(senders.begin(), senders.end(), r) != senders.end();
        if (exchanging && p.ranks > 1) {
          send_vertex[r] = g.add_vertex(dag::VertexKind::kSend, r, "send");
          recv_vertex[r] = g.add_vertex(dag::VertexKind::kRecv, r, "recv");
          g.add_task(prev[r], send_vertex[r], r, random_work(), it);
          g.add_task(send_vertex[r], recv_vertex[r], r, random_work(), it);
          prev[r] = recv_vertex[r];
        } else {
          const int v = g.add_vertex(dag::VertexKind::kGeneric, r, "phase");
          g.add_task(prev[r], v, r, random_work(), it);
          prev[r] = v;
        }
      }
      // Pair each sender with the next sender (ring over participants) so
      // every recv vertex gets at least its own chain edge plus a message.
      for (std::size_t s = 0; s + 1 < senders.size(); ++s) {
        g.add_message(send_vertex[senders[s]],
                      recv_vertex[senders[s + 1]],
                      rng.uniform(1e4, 5e6));
      }
      if (senders.size() >= 2) {
        g.add_message(send_vertex[senders.back()],
                      recv_vertex[senders.front()], rng.uniform(1e4, 5e6));
      }
    }
    // Closing collective for the iteration.
    const int coll = (it + 1 == p.iterations)
                         ? fin
                         : g.add_vertex(dag::VertexKind::kCollective, -1,
                                        "sync" + std::to_string(it));
    for (int r = 0; r < p.ranks; ++r) {
      g.add_task(prev[r], coll, r, random_work(), it);
      prev[r] = coll;
    }
  }
  g.validate();
  return g;
}

}  // namespace powerlim::apps
