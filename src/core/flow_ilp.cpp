#include "core/flow_ilp.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "core/pareto.h"
#include "lp/model.h"

namespace powerlim::core {

namespace {

using lp::Model;
using lp::Term;
using lp::Variable;

/// Sequencing status of an ordered pair (a, b): does a finish before b
/// starts?
enum class Seq : char { kFree, kZero, kOne };

/// Vertex-to-vertex reachability (TE' in the paper): reach[u][v] is true
/// when there is a directed path u ->* v (u == v included).
std::vector<std::vector<char>> vertex_reachability(
    const dag::TaskGraph& graph) {
  const std::size_t n = graph.num_vertices();
  std::vector<std::vector<char>> reach(n, std::vector<char>(n, 0));
  for (std::size_t v = 0; v < n; ++v) reach[v][v] = 1;
  const std::vector<int> order = graph.topo_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const int u = *it;
    for (int eid : graph.vertex(u).out_edges) {
      const int w = graph.edge(eid).dst;
      for (std::size_t v = 0; v < n; ++v) {
        reach[u][v] = static_cast<char>(reach[u][v] | reach[w][v]);
      }
    }
  }
  return reach;
}

/// The flow formulation's "things that hold power over a time interval":
/// application edges (tasks and messages), optional per-task slack, and
/// the artificial source/sink.
struct Entity {
  enum class Kind : char { kEdge, kSlack, kSource, kSink };
  Kind kind;
  int edge_id = -1;  // underlying edge for kEdge / kSlack
};

/// Builds and solves the flow ILP over the entity space.
class FlowBuilder {
 public:
  FlowBuilder(const dag::TaskGraph& graph, const machine::PowerModel& model,
              const machine::ClusterSpec& cluster,
              const FlowIlpOptions& options)
      : graph_(graph), options_(options), reach_(vertex_reachability(graph)) {
    frontiers_.resize(graph.num_edges());
    msg_duration_.assign(graph.num_edges(), 0.0);
    horizon_ = 0.0;
    for (const dag::Edge& e : graph.edges()) {
      if (e.is_task()) {
        frontiers_[e.id] = convex_frontier(model.enumerate(e.work, e.rank));
        horizon_ += frontiers_[e.id].front().duration;  // slowest point
      } else {
        msg_duration_[e.id] = cluster.message_seconds(e.bytes);
        horizon_ += msg_duration_[e.id];
      }
    }
    big_m_ = horizon_ * 1.05 + 1.0;
    build_entities();
    classify_pairs();
  }

  FlowIlpResult solve();

 private:
  void build_entities() {
    for (const dag::Edge& e : graph_.edges()) {
      entities_.push_back({Entity::Kind::kEdge, e.id});
    }
    if (options_.separate_slack) {
      slack_entity_of_edge_.assign(graph_.num_edges(), -1);
      for (const dag::Edge& e : graph_.edges()) {
        if (e.is_task()) {
          slack_entity_of_edge_[e.id] = static_cast<int>(entities_.size());
          entities_.push_back({Entity::Kind::kSlack, e.id});
        }
      }
    }
    source_ = static_cast<int>(entities_.size());
    entities_.push_back({Entity::Kind::kSource});
    sink_ = static_cast<int>(entities_.size());
    entities_.push_back({Entity::Kind::kSink});
  }

  /// Vertex whose firing time is an *upper anchor* for the entity's end:
  /// the entity has certainly finished by the time this vertex fires.
  int end_anchor(int a) const {
    const Entity& e = entities_[a];
    switch (e.kind) {
      case Entity::Kind::kEdge:
      case Entity::Kind::kSlack:
        return graph_.edge(e.edge_id).dst;
      case Entity::Kind::kSource:
        return graph_.init_vertex();
      case Entity::Kind::kSink:
        return graph_.finalize_vertex();
    }
    return -1;
  }

  /// Vertex whose firing time is a *lower anchor* for the entity's start.
  int start_anchor(int a) const {
    const Entity& e = entities_[a];
    switch (e.kind) {
      case Entity::Kind::kEdge:
      case Entity::Kind::kSlack:
        return graph_.edge(e.edge_id).src;
      case Entity::Kind::kSource:
        return graph_.init_vertex();
      case Entity::Kind::kSink:
        return graph_.finalize_vertex();
    }
    return -1;
  }

  bool strictly_precedes(int u, int v) const {
    return u != v && reach_[u][v];
  }

  void classify_pairs() {
    const int n = static_cast<int>(entities_.size());
    seq_.assign(n, std::vector<Seq>(n, Seq::kFree));
    for (int a = 0; a < n; ++a) seq_[a][a] = Seq::kZero;  // eq. (18)
    for (int a = 0; a < n; ++a) {
      if (a == source_ || a == sink_) continue;
      seq_[source_][a] = Seq::kOne;
      seq_[a][source_] = Seq::kZero;
      seq_[a][sink_] = Seq::kOne;
      seq_[sink_][a] = Seq::kZero;
    }
    seq_[source_][sink_] = Seq::kOne;
    seq_[sink_][source_] = Seq::kZero;

    for (int a = 0; a < n; ++a) {
      if (a == source_ || a == sink_) continue;
      for (int b = 0; b < n; ++b) {
        if (a == b || b == source_ || b == sink_) continue;
        const Entity& ea = entities_[a];
        const Entity& eb = entities_[b];
        // A task precedes its own slack (slack follows the task by
        // construction).
        if (ea.kind == Entity::Kind::kEdge &&
            eb.kind == Entity::Kind::kSlack && ea.edge_id == eb.edge_id) {
          seq_[a][b] = Seq::kOne;
          continue;
        }
        if (ea.kind == Entity::Kind::kSlack &&
            eb.kind == Entity::Kind::kEdge && ea.edge_id == eb.edge_id) {
          seq_[a][b] = Seq::kZero;
          continue;
        }
        // eq. (15): structural precedence via anchors.
        if (reach_[end_anchor(a)][start_anchor(b)]) {
          seq_[a][b] = Seq::kOne;
          continue;
        }
        // eq. (16) with the reverse fixed.
        if (reach_[end_anchor(b)][start_anchor(a)]) {
          seq_[a][b] = Seq::kZero;
          continue;
        }
        // eqs. (21), (22): entities sharing a start or end anchor.
        // For vertex-pinned entities (edges) also eqs. (19), (20):
        // upstream-start / upstream-end forbids sequencing.
        const bool both_edges = ea.kind == Entity::Kind::kEdge &&
                                eb.kind == Entity::Kind::kEdge;
        if (both_edges && (start_anchor(a) == start_anchor(b) ||
                           end_anchor(a) == end_anchor(b))) {
          seq_[a][b] = Seq::kZero;
          continue;
        }
        if (ea.kind == Entity::Kind::kSlack &&
            eb.kind == Entity::Kind::kSlack &&
            end_anchor(a) == end_anchor(b)) {
          seq_[a][b] = Seq::kZero;  // both end at the same vertex
          continue;
        }
        if (both_edges &&
            (strictly_precedes(start_anchor(b), start_anchor(a)) ||
             strictly_precedes(end_anchor(b), end_anchor(a)))) {
          seq_[a][b] = Seq::kZero;  // eqs. (19), (20)
          continue;
        }
      }
    }
  }

  // ---- model-building helpers ----------------------------------------------

  /// Appends coeff * duration(edge) to `terms`; returns the constant part.
  double duration_expr(int edge_id, double coeff, std::vector<Term>& terms) {
    const dag::Edge& e = graph_.edge(edge_id);
    if (!e.is_task()) return coeff * msg_duration_[edge_id];
    for (std::size_t k = 0; k < c_[edge_id].size(); ++k) {
      terms.push_back({c_[edge_id][k],
                       coeff * frontiers_[edge_id][k].duration});
    }
    return 0.0;
  }

  /// Appends coeff * start(entity); returns the constant part.
  double start_expr(int a, double coeff, std::vector<Term>& terms) {
    const Entity& e = entities_[a];
    switch (e.kind) {
      case Entity::Kind::kEdge:
        terms.push_back({v_[graph_.edge(e.edge_id).src], coeff});
        return 0.0;
      case Entity::Kind::kSlack: {
        // Slack starts when its task completes: v_src + d.
        terms.push_back({v_[graph_.edge(e.edge_id).src], coeff});
        return duration_expr(e.edge_id, coeff, terms);
      }
      case Entity::Kind::kSource:
        terms.push_back({v_[graph_.init_vertex()], coeff});
        return 0.0;
      case Entity::Kind::kSink:
        terms.push_back({v_[graph_.finalize_vertex()], coeff});
        return 0.0;
    }
    return 0.0;
  }

  /// Appends coeff * end(entity); returns the constant part.
  double end_expr(int a, double coeff, std::vector<Term>& terms) {
    const Entity& e = entities_[a];
    switch (e.kind) {
      case Entity::Kind::kEdge: {
        terms.push_back({v_[graph_.edge(e.edge_id).src], coeff});
        return duration_expr(e.edge_id, coeff, terms);
      }
      case Entity::Kind::kSlack:
        // Slack ends exactly when the destination vertex fires.
        terms.push_back({v_[graph_.edge(e.edge_id).dst], coeff});
        return 0.0;
      case Entity::Kind::kSource:
        terms.push_back({v_[graph_.init_vertex()], coeff});
        return 0.0;
      case Entity::Kind::kSink:
        terms.push_back({v_[graph_.finalize_vertex()], coeff});
        return 0.0;
    }
    return 0.0;
  }

  /// Appends coeff * power(entity); returns the constant part.
  double power_expr(int a, double coeff, std::vector<Term>& terms) {
    const Entity& e = entities_[a];
    switch (e.kind) {
      case Entity::Kind::kEdge: {
        const dag::Edge& edge = graph_.edge(e.edge_id);
        if (!edge.is_task()) return 0.0;  // messages carry no socket power
        for (std::size_t k = 0; k < c_[e.edge_id].size(); ++k) {
          terms.push_back({c_[e.edge_id][k],
                           coeff * frontiers_[e.edge_id][k].power});
        }
        return 0.0;
      }
      case Entity::Kind::kSlack:
        return coeff * options_.slack_power_watts;  // eq. (25) analog
      case Entity::Kind::kSource:
      case Entity::Kind::kSink:
        return coeff * options_.power_cap;  // eq. (25)
    }
    return 0.0;
  }

  const dag::TaskGraph& graph_;
  FlowIlpOptions options_;
  std::vector<std::vector<char>> reach_;
  std::vector<std::vector<machine::Config>> frontiers_;
  std::vector<double> msg_duration_;
  double horizon_ = 0.0;
  double big_m_ = 0.0;

  std::vector<Entity> entities_;
  std::vector<int> slack_entity_of_edge_;
  int source_ = -1;
  int sink_ = -1;
  std::vector<std::vector<Seq>> seq_;

  // Model variables (populated in solve()).
  std::vector<Variable> v_;                  // per graph vertex
  std::vector<std::vector<Variable>> c_;     // per edge: config shares
};

FlowIlpResult FlowBuilder::solve() {
  const int n = static_cast<int>(entities_.size());
  const double pc = options_.power_cap;
  Model m(lp::Sense::kMinimize);

  // Vertex times.
  v_.resize(graph_.num_vertices());
  for (std::size_t u = 0; u < graph_.num_vertices(); ++u) {
    const bool is_init = static_cast<int>(u) == graph_.init_vertex();
    const bool is_fin = static_cast<int>(u) == graph_.finalize_vertex();
    v_[u] = m.add_variable(0.0, is_init ? 0.0 : big_m_, is_fin ? 1.0 : 0.0,
                           "v" + std::to_string(u));
  }

  // Configuration shares and the one-configuration rows (eqs. 5/6, 9).
  c_.resize(graph_.num_edges());
  for (const dag::Edge& e : graph_.edges()) {
    if (!e.is_task()) continue;
    for (std::size_t k = 0; k < frontiers_[e.id].size(); ++k) {
      const std::string name =
          "c" + std::to_string(e.id) + "_" + std::to_string(k);
      c_[e.id].push_back(options_.discrete_configs
                             ? m.add_integer_variable(0, 1, 0, name)
                             : m.add_variable(0, 1, 0, name));
    }
    std::vector<Term> one;
    for (const Variable& var : c_[e.id]) one.push_back({var, 1.0});
    m.add_eq(one, 1.0, "one" + std::to_string(e.id));
  }

  // Vertex firing after edge completion (also makes slack durations >= 0).
  for (const dag::Edge& e : graph_.edges()) {
    std::vector<Term> terms{{v_[e.dst], 1.0}, {v_[e.src], -1.0}};
    const double constant = duration_expr(e.id, -1.0, terms);
    m.add_ge(terms, -constant, "fire" + std::to_string(e.id));
  }

  // Sequencing binaries for free pairs (eq. 14).
  std::vector<std::vector<Variable>> x(n, std::vector<Variable>(n));
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      if (seq_[a][b] == Seq::kFree) {
        x[a][b] = m.add_binary(0.0, "x" + std::to_string(a) + "_" +
                                        std::to_string(b));
      }
    }
  }
  auto x_term = [&](int a, int b, double coeff,
                    std::vector<Term>& terms) -> double {
    switch (seq_[a][b]) {
      case Seq::kFree:
        terms.push_back({x[a][b], coeff});
        return 0.0;
      case Seq::kOne:
        return coeff;
      case Seq::kZero:
        return 0.0;
    }
    return 0.0;
  };

  // eq. (16): x_ab + x_ba <= 1 where both free.
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      if (seq_[a][b] == Seq::kFree && seq_[b][a] == Seq::kFree) {
        m.add_le({{x[a][b], 1.0}, {x[b][a], 1.0}}, 1.0);
      }
    }
  }

  // eq. (17): transitivity x_ac >= x_ab + x_bc - 1, non-trivial rows only.
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      if (a == b || seq_[a][b] == Seq::kZero) continue;
      for (int ccc = 0; ccc < n; ++ccc) {
        if (ccc == a || ccc == b) continue;
        if (seq_[b][ccc] == Seq::kZero || seq_[a][ccc] == Seq::kOne) continue;
        if (seq_[a][b] == Seq::kOne && seq_[b][ccc] == Seq::kOne) {
          if (seq_[a][ccc] != Seq::kOne) {
            throw std::logic_error("flow ILP: inconsistent fixed sequencing");
          }
          continue;
        }
        std::vector<Term> terms;
        double constant = 0.0;
        constant += x_term(a, ccc, 1.0, terms);
        constant += x_term(a, b, -1.0, terms);
        constant += x_term(b, ccc, -1.0, terms);
        m.add_ge(terms, -1.0 - constant);
      }
    }
  }

  // eq. (23): start(b) - end(a) >= -M (1 - x_ab).
  for (int a = 0; a < n; ++a) {
    if (a == sink_) continue;
    for (int b = 0; b < n; ++b) {
      if (a == b || b == source_ || seq_[a][b] == Seq::kZero) continue;
      std::vector<Term> terms;
      double constant = 0.0;
      constant += start_expr(b, 1.0, terms);
      constant += end_expr(a, -1.0, terms);
      double rhs = -constant;
      if (seq_[a][b] == Seq::kFree) {
        terms.push_back({x[a][b], -big_m_});
        rhs -= big_m_;
      }
      m.add_ge(terms, rhs);
    }
  }

  // ---- power flow (eqs. 26-29) ---------------------------------------------
  std::vector<std::vector<Variable>> f(n, std::vector<Variable>(n));
  for (int a = 0; a < n; ++a) {
    if (a == sink_) continue;
    for (int b = 0; b < n; ++b) {
      if (a == b || b == source_ || seq_[a][b] == Seq::kZero) continue;
      f[a][b] = m.add_variable(0.0, pc, 0.0,
                               "f" + std::to_string(a) + "_" +
                                   std::to_string(b));
      if (seq_[a][b] == Seq::kFree) {
        m.add_le({{f[a][b], 1.0}, {x[a][b], -pc}}, 0.0);  // eq. (27) pt 1
      }
      for (int side : {a, b}) {  // eq. (27) pts 2, 3: f <= p_a, f <= p_b
        std::vector<Term> terms{{f[a][b], 1.0}};
        const double constant = power_expr(side, -1.0, terms);
        m.add_le(terms, -constant);
      }
    }
  }
  // eq. (28): outflow equals the entity's power.
  for (int a = 0; a < n; ++a) {
    if (a == sink_) continue;
    std::vector<Term> terms;
    for (int b = 0; b < n; ++b) {
      if (f[a][b].valid()) terms.push_back({f[a][b], 1.0});
    }
    const double constant = power_expr(a, -1.0, terms);
    m.add_eq(terms, -constant);
  }
  // eq. (29): inflow equals the entity's power.
  for (int b = 0; b < n; ++b) {
    if (b == source_) continue;
    std::vector<Term> terms;
    for (int a = 0; a < n; ++a) {
      if (a != sink_ && f[a][b].valid()) terms.push_back({f[a][b], 1.0});
    }
    const double constant = power_expr(b, -1.0, terms);
    m.add_eq(terms, -constant);
  }

  // ---- solve ---------------------------------------------------------------
  FlowIlpResult out;
  const lp::MipSolution sol = lp::solve_mip(m, options_.branch_bound);
  out.status = sol.status;
  out.nodes = sol.nodes;
  if (!sol.optimal()) return out;
  out.makespan = sol.objective;

  out.start.assign(graph_.num_edges(), 0.0);
  out.schedule.shares.assign(graph_.num_edges(), {});
  out.schedule.duration.assign(graph_.num_edges(), 0.0);
  out.schedule.power.assign(graph_.num_edges(), 0.0);
  for (const dag::Edge& e : graph_.edges()) {
    out.start[e.id] = sol.values[v_[e.src].index];
    if (!e.is_task()) {
      out.schedule.duration[e.id] = msg_duration_[e.id];
      continue;
    }
    auto& shares = out.schedule.shares[e.id];
    double tot = 0.0;
    for (std::size_t k = 0; k < c_[e.id].size(); ++k) {
      const double frac = sol.values[c_[e.id][k].index];
      if (frac > 1e-9) {
        shares.push_back({static_cast<int>(k), frac});
        tot += frac;
      }
    }
    if (shares.empty()) {
      throw std::runtime_error("flow ILP: task has no configuration");
    }
    for (ConfigShare& s : shares) s.fraction /= tot;
  }
  blend(out.schedule, frontiers_);
  return out;
}

}  // namespace

FlowIlpResult solve_flow_ilp(const dag::TaskGraph& graph,
                             const machine::PowerModel& model,
                             const machine::ClusterSpec& cluster,
                             const FlowIlpOptions& options) {
  graph.validate();
  FlowBuilder builder(graph, model, cluster, options);
  return builder.solve();
}

}  // namespace powerlim::core
