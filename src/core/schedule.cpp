#include "core/schedule.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace powerlim::core {

void blend(TaskSchedule& schedule,
           const std::vector<std::vector<machine::Config>>& frontiers) {
  if (schedule.shares.size() != frontiers.size()) {
    throw std::invalid_argument("blend: size mismatch");
  }
  for (std::size_t e = 0; e < schedule.shares.size(); ++e) {
    const auto& shares = schedule.shares[e];
    if (shares.empty()) continue;  // message edge
    double d = 0.0, p = 0.0, total = 0.0;
    for (const ConfigShare& s : shares) {
      const machine::Config& c = frontiers[e].at(s.config_index);
      d += s.fraction * c.duration;
      p += s.fraction * c.power;
      total += s.fraction;
    }
    if (std::abs(total - 1.0) > 1e-6) {
      throw std::invalid_argument("blend: shares of edge do not sum to 1");
    }
    schedule.duration[e] = d;
    schedule.power[e] = p;
  }
}

TaskSchedule round_to_discrete(
    const TaskSchedule& schedule,
    const std::vector<std::vector<machine::Config>>& frontiers) {
  TaskSchedule out = schedule;
  for (std::size_t e = 0; e < out.shares.size(); ++e) {
    auto& shares = out.shares[e];
    if (shares.empty()) continue;
    const double d_target = schedule.duration[e];
    const double p_target = schedule.power[e];
    // Scale by the frontier's spans so duration and power distances are
    // comparable.
    const auto& frontier = frontiers[e];
    double d_span = 0.0, p_span = 0.0;
    for (const machine::Config& c : frontier) {
      d_span = std::max(d_span, c.duration);
      p_span = std::max(p_span, c.power);
    }
    d_span = std::max(d_span, 1e-12);
    p_span = std::max(p_span, 1e-12);
    int best = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < frontier.size(); ++k) {
      const double dd = (frontier[k].duration - d_target) / d_span;
      const double dp = (frontier[k].power - p_target) / p_span;
      const double dist = dd * dd + dp * dp;
      if (dist < best_dist) {
        best_dist = dist;
        best = static_cast<int>(k);
      }
    }
    shares.assign(1, ConfigShare{best, 1.0});
    out.duration[e] = frontier[best].duration;
    out.power[e] = frontier[best].power;
  }
  return out;
}

int max_shares_per_task(const TaskSchedule& schedule) {
  std::size_t most = 0;
  for (const auto& shares : schedule.shares) {
    most = std::max(most, shares.size());
  }
  return static_cast<int>(most);
}

}  // namespace powerlim::core
