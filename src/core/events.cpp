#include "core/events.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace powerlim::core {

EventOrder build_event_order(const dag::TaskGraph& graph,
                             const dag::ScheduleTimes& initial,
                             double time_tol) {
  if (initial.vertex_time.size() != graph.num_vertices()) {
    throw std::invalid_argument("build_event_order: schedule mismatch");
  }
  EventOrder out;
  std::vector<int> order(graph.num_vertices());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return initial.vertex_time[a] < initial.vertex_time[b];
  });

  out.group_of_vertex.assign(graph.num_vertices(), -1);
  for (int v : order) {
    const double t = initial.vertex_time[v];
    if (out.groups.empty() || t > out.group_time.back() + time_tol) {
      out.groups.emplace_back();
      out.group_time.push_back(t);
    }
    out.groups.back().push_back(v);
    out.group_of_vertex[v] = static_cast<int>(out.groups.size()) - 1;
  }

  out.active_tasks.assign(out.groups.size(), {});
  for (const dag::Edge& e : graph.edges()) {
    if (!e.is_task()) continue;
    const int g0 = out.group_of_vertex[e.src];
    const int g1 = out.group_of_vertex[e.dst];
    for (int g = g0; g < g1; ++g) {
      out.active_tasks[g].push_back(e.id);
    }
  }
  return out;
}

}  // namespace powerlim::core
