#include "core/pareto.h"

#include <algorithm>
#include <cmath>

namespace powerlim::core {

using machine::Config;

std::vector<Config> pareto_filter(std::vector<Config> configs) {
  if (configs.empty()) return configs;
  std::sort(configs.begin(), configs.end(), [](const Config& a,
                                               const Config& b) {
    if (a.power != b.power) return a.power < b.power;
    return a.duration < b.duration;
  });
  std::vector<Config> out;
  double best_duration = std::numeric_limits<double>::infinity();
  for (const Config& c : configs) {
    if (c.duration < best_duration - 1e-15) {
      out.push_back(c);
      best_duration = c.duration;
    }
  }
  return out;
}

std::vector<Config> convex_frontier(std::vector<Config> configs) {
  std::vector<Config> pts = pareto_filter(std::move(configs));
  if (pts.size() <= 2) return pts;
  // Andrew monotone chain, lower hull over (power, duration). Points are
  // sorted by power with strictly decreasing duration, so the hull is the
  // convex decreasing envelope.
  std::vector<Config> hull;
  for (const Config& c : pts) {
    while (hull.size() >= 2) {
      const Config& a = hull[hull.size() - 2];
      const Config& b = hull[hull.size() - 1];
      // Keep b only if it lies strictly below the chord a-c, i.e.
      // cross(a->b, a->c) > 0 in the (power, duration) plane.
      const double cross = (b.power - a.power) * (c.duration - a.duration) -
                           (c.power - a.power) * (b.duration - a.duration);
      if (cross <= 1e-15) {
        hull.pop_back();  // b is on or above the chord: not convex
      } else {
        break;
      }
    }
    hull.push_back(c);
  }
  return hull;
}

bool is_convex_frontier(const std::vector<Config>& frontier, double tol) {
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    if (frontier[i].power <= frontier[i - 1].power) return false;
    if (frontier[i].duration >= frontier[i - 1].duration) return false;
  }
  for (std::size_t i = 2; i < frontier.size(); ++i) {
    const Config& a = frontier[i - 2];
    const Config& b = frontier[i - 1];
    const Config& c = frontier[i];
    const double slope_ab = (b.duration - a.duration) / (b.power - a.power);
    const double slope_bc = (c.duration - b.duration) / (c.power - b.power);
    if (slope_bc < slope_ab - tol) return false;
  }
  return true;
}

}  // namespace powerlim::core
