// Event order and task-activity sets (Section 3.3).
//
// The fixed-vertex-order LP constrains job power at discrete events, one
// per DAG vertex, with the *order* of events frozen to the order they
// occur in an initial, power-unconstrained schedule. Tasks are "active" at
// an event if they start at or are running at the event's time in that
// initial schedule - and because the paper folds each task's trailing
// slack into the task (slack power == task power, Section 3.3), a task's
// activity interval is exactly [time(src vertex), time(dst vertex)).
//
// We exploit a key consequence: activity is determined by event
// *positions*, not times. A task is active at every event ordered at or
// after its source vertex and strictly before its destination vertex.
// Because the LP preserves the event order (eqs. 12-13), the activity
// sets remain exact for any schedule the LP can produce, which is what
// makes replayed LP schedules respect the power cap.
//
// Vertices that coincide in time in the initial schedule form one event
// group and are pinned equal by eq. (13).
#pragma once

#include <vector>

#include "dag/graph.h"

namespace powerlim::core {

struct EventOrder {
  /// Vertex ids per event group, ordered by initial schedule time.
  std::vector<std::vector<int>> groups;
  /// Group index of each vertex.
  std::vector<int> group_of_vertex;
  /// Task edge ids active at each event group: tasks i with
  /// group(src(i)) <= g < group(dst(i)).
  std::vector<std::vector<int>> active_tasks;
  /// Initial-schedule time of each group (diagnostic).
  std::vector<double> group_time;

  std::size_t num_groups() const { return groups.size(); }
};

/// Builds the event order from an initial schedule. Vertices within
/// `time_tol` of each other share a group.
EventOrder build_event_order(const dag::TaskGraph& graph,
                             const dag::ScheduleTimes& initial,
                             double time_tol = 1e-9);

}  // namespace powerlim::core
