#include "core/partition.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/windowed.h"

namespace powerlim::core {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

PowerProfile::PowerProfile(std::vector<Point> points)
    : points_(std::move(points)) {
  if (points_.empty()) {
    throw std::invalid_argument("PowerProfile: no points");
  }
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].cap_watts <= points_[i - 1].cap_watts) {
      throw std::invalid_argument("PowerProfile: caps must ascend");
    }
    if (points_[i].seconds > points_[i - 1].seconds + 1e-9) {
      throw std::invalid_argument(
          "PowerProfile: time must not increase with power");
    }
  }
}

double PowerProfile::time_at(double cap_watts) const {
  if (cap_watts < points_.front().cap_watts - 1e-12) return kInf;
  if (cap_watts >= points_.back().cap_watts) return points_.back().seconds;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (cap_watts <= points_[i].cap_watts) {
      const Point& a = points_[i - 1];
      const Point& b = points_[i];
      const double t = (cap_watts - a.cap_watts) / (b.cap_watts - a.cap_watts);
      return a.seconds + t * (b.seconds - a.seconds);
    }
  }
  return points_.back().seconds;
}

double PowerProfile::cap_for(double seconds) const {
  if (seconds < points_.back().seconds - 1e-12) return kInf;
  if (seconds >= points_.front().seconds) return points_.front().cap_watts;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (seconds >= points_[i].seconds) {
      const Point& a = points_[i - 1];
      const Point& b = points_[i];
      if (a.seconds - b.seconds < 1e-15) return b.cap_watts;
      const double t = (a.seconds - seconds) / (a.seconds - b.seconds);
      return a.cap_watts + t * (b.cap_watts - a.cap_watts);
    }
  }
  return points_.back().cap_watts;
}

double PowerProfile::max_useful_cap() const {
  // The smallest cap achieving the best time (power beyond it is wasted).
  for (const Point& p : points_) {
    if (p.seconds <= points_.back().seconds + 1e-12) return p.cap_watts;
  }
  return points_.back().cap_watts;
}

PowerProfile profile_job(const dag::TaskGraph& graph,
                         const machine::PowerModel& model,
                         const machine::ClusterSpec& cluster,
                         const std::vector<double>& caps) {
  const WindowSweeper sweeper(graph, model, cluster);
  std::vector<PowerProfile::Point> points;
  double best = kInf;
  for (double cap : caps) {
    const WindowedLpResult res = sweeper.solve({.power_cap = cap});
    if (!res.optimal()) continue;
    // Enforce monotonicity against LP noise.
    best = std::min(best, res.makespan);
    points.push_back({cap, best});
  }
  if (points.empty()) {
    throw std::runtime_error("profile_job: no feasible cap in the sweep");
  }
  return PowerProfile(std::move(points));
}

PartitionResult partition_power(const std::vector<PowerProfile>& jobs,
                                double total_watts) {
  PartitionResult out;
  if (jobs.empty()) return out;
  // Feasibility: every job needs at least its minimum cap.
  double min_total = 0.0;
  for (const PowerProfile& j : jobs) min_total += j.min_cap();
  if (min_total > total_watts + 1e-9) return out;

  // Bisect on the target completion time T: needed(T) = sum of inverse
  // profiles is non-increasing in T.
  double lo = 0.0, hi = 0.0;
  for (const PowerProfile& j : jobs) {
    lo = std::max(lo, j.best_time());
    hi = std::max(hi, j.worst_time());
  }
  auto needed = [&](double t) {
    double total = 0.0;
    for (const PowerProfile& j : jobs) {
      const double c = j.cap_for(t);
      if (c == kInf) return kInf;
      total += c;
    }
    return total;
  };
  if (needed(lo) <= total_watts) {
    hi = lo;  // every job can run flat out
  } else {
    for (int iter = 0; iter < 100; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (needed(mid) <= total_watts) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
  }
  out.feasible = true;
  out.makespan = 0.0;
  out.caps.reserve(jobs.size());
  out.times.reserve(jobs.size());
  double spent = 0.0;
  for (const PowerProfile& j : jobs) {
    double cap = std::min(j.cap_for(hi), j.max_useful_cap());
    cap = std::max(cap, j.min_cap());
    out.caps.push_back(cap);
    spent += cap;
    const double t = j.time_at(cap);
    out.times.push_back(t);
    out.makespan = std::max(out.makespan, t);
  }
  // Numerical guard: if rounding overshot the budget, scale the slack
  // back pro-rata above each job's minimum.
  if (spent > total_watts + 1e-9) {
    const double excess = spent - total_watts;
    double above_min = 0.0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      above_min += out.caps[i] - jobs[i].min_cap();
    }
    if (above_min > 0.0) {
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        const double share = (out.caps[i] - jobs[i].min_cap()) / above_min;
        out.caps[i] -= excess * share;
        out.times[i] = jobs[i].time_at(out.caps[i]);
        out.makespan = std::max(out.makespan, out.times[i]);
      }
    }
  }
  return out;
}

}  // namespace powerlim::core
