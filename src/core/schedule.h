// Configuration schedules and rounding (Section 3.2).
//
// The LP's continuous relaxation assigns each task a point on the
// continuum between two discrete configurations; a schedule stores that as
// fractional shares over the task's convex frontier. Two realization modes
// exist, both from the paper:
//   * continuous - keep the mixture; at run time the configuration is
//     switched mid-task so that the time-weighted average matches
//     (negligible-overhead emulation of the fractional point);
//   * discrete   - snap each task to the frontier configuration closest to
//     the blended optimum (may slightly violate the cap; replay verifies).
#pragma once

#include <vector>

#include "dag/graph.h"
#include "machine/power_model.h"

namespace powerlim::core {

/// One component of a task's configuration mixture: an index into the
/// task's convex frontier plus the fraction of the task completed in it.
struct ConfigShare {
  int config_index = -1;
  double fraction = 0.0;
};

/// Per-edge configuration assignment for a whole task graph. Message
/// edges carry no shares and zero power; their duration is the wire time.
struct TaskSchedule {
  /// Indexed by edge id; empty for messages.
  std::vector<std::vector<ConfigShare>> shares;
  /// Blended execution duration per edge (messages: wire time).
  std::vector<double> duration;
  /// Blended average power per edge (messages: 0).
  std::vector<double> power;

  std::size_t num_edges() const { return duration.size(); }
};

/// Recomputes `duration` and `power` from `shares` and the per-task
/// frontiers (message durations are left untouched).
void blend(TaskSchedule& schedule,
           const std::vector<std::vector<machine::Config>>& frontiers);

/// Discrete rounding: per task, pick the single frontier configuration
/// whose (duration, power) is nearest (scaled Euclidean) to the blended
/// fractional point. Returns a schedule where every task has exactly one
/// share of fraction 1.
TaskSchedule round_to_discrete(
    const TaskSchedule& schedule,
    const std::vector<std::vector<machine::Config>>& frontiers);

/// Largest number of distinct configurations any task mixes; the LP at a
/// basic optimum mixes at most two adjacent frontier points per task.
int max_shares_per_task(const TaskSchedule& schedule);

}  // namespace powerlim::core
