#include "core/windowed.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "dag/windows.h"

namespace powerlim::core {

namespace {

/// Shared per-window driver; `make_options` sees each window's
/// formulation (to derive window-local deadlines) and returns the solve
/// options for it.
template <typename MakeOptions>
WindowedLpResult solve_windows(const dag::TaskGraph& graph,
                               const machine::PowerModel& model,
                               const machine::ClusterSpec& cluster,
                               MakeOptions&& make_options) {
  WindowedLpResult out;
  out.schedule.shares.assign(graph.num_edges(), {});
  out.schedule.duration.assign(graph.num_edges(), 0.0);
  out.schedule.power.assign(graph.num_edges(), 0.0);
  out.vertex_time.assign(graph.num_vertices(), 0.0);
  out.frontiers.resize(graph.num_edges());

  const std::vector<dag::Window> windows = dag::split_at_barriers(graph);
  double offset = 0.0;
  for (std::size_t w = 0; w < windows.size(); ++w) {
    const dag::Window& win = windows[w];
    const LpFormulation form(win.graph, model, cluster);
    out.min_feasible_power =
        std::max(out.min_feasible_power, form.min_feasible_power());
    const LpScheduleResult res = form.solve(make_options(form));
    out.iterations += res.iterations;
    out.energy_joules += res.energy_joules;
    out.power_price_s_per_watt += res.power_price_s_per_watt;
    out.degenerate_pivots += res.degenerate_pivots;
    out.refactor_count += res.refactor_count;
    out.bland_engaged = out.bland_engaged || res.bland_engaged;
    out.primal_infeasibility =
        std::max(out.primal_infeasibility, res.primal_infeasibility);
    out.eta_nonzeros += res.eta_nonzeros;
    out.lu_fill_ratio = std::max(out.lu_fill_ratio, res.lu_fill_ratio);
    out.window_duals.push_back(res.row_duals);
    if (!res.optimal()) {
      out.status = res.status;
      out.failed_window = static_cast<int>(w);
      return out;
    }
    for (std::size_t wv = 0; wv < win.graph.num_vertices(); ++wv) {
      out.vertex_time[win.vertex_map[wv]] = offset + res.vertex_time[wv];
    }
    for (std::size_t we = 0; we < win.graph.num_edges(); ++we) {
      const int orig = win.edge_map[we];
      out.schedule.shares[orig] = res.schedule.shares[we];
      out.schedule.duration[orig] = res.schedule.duration[we];
      out.schedule.power[orig] = res.schedule.power[we];
      out.frontiers[orig] = form.frontiers()[we];
    }
    for (double p : res.event_power) {
      out.peak_event_power = std::max(out.peak_event_power, p);
    }
    offset += res.makespan;
  }
  out.makespan = offset;
  out.status = lp::SolveStatus::kOptimal;
  return out;
}

}  // namespace

WindowedLpResult solve_windowed_lp(const dag::TaskGraph& graph,
                                   const machine::PowerModel& model,
                                   const machine::ClusterSpec& cluster,
                                   const LpScheduleOptions& options) {
  return solve_windows(graph, model, cluster,
                       [&](const LpFormulation&) { return options; });
}

WindowedLpResult solve_windowed_energy_lp(const dag::TaskGraph& graph,
                                          const machine::PowerModel& model,
                                          const machine::ClusterSpec& cluster,
                                          double slowdown_allowance,
                                          double power_cap) {
  if (slowdown_allowance < 0.0) {
    throw std::invalid_argument("solve_windowed_energy_lp: allowance < 0");
  }
  return solve_windows(graph, model, cluster,
                       [&](const LpFormulation& form) {
                         LpScheduleOptions o;
                         o.power_cap = power_cap;
                         o.objective = LpObjective::kEnergy;
                         o.max_makespan = (1.0 + slowdown_allowance) *
                                          form.unconstrained_makespan();
                         return o;
                       });
}

struct WindowSweeper::Impl {
  const dag::TaskGraph* graph;
  std::vector<dag::Window> windows;
  std::vector<std::unique_ptr<LpFormulation>> forms;
  /// Per-window warm-start slots: a logically-invisible cache, hence
  /// mutable (solve() is const).
  mutable std::vector<lp::WarmStart> warm;
};

WindowSweeper::WindowSweeper(const dag::TaskGraph& graph,
                             const machine::PowerModel& model,
                             const machine::ClusterSpec& cluster,
                             const FormulationHooks* hooks)
    : impl_(std::make_unique<Impl>()) {
  impl_->graph = &graph;
  impl_->windows = dag::split_at_barriers(graph);
  impl_->forms.reserve(impl_->windows.size());
  for (const dag::Window& win : impl_->windows) {
    impl_->forms.push_back(
        std::make_unique<LpFormulation>(win.graph, model, cluster, hooks));
  }
  impl_->warm.resize(impl_->windows.size());
}

void WindowSweeper::clear_warm_starts() const {
  for (lp::WarmStart& w : impl_->warm) w.clear();
}

std::vector<lp::WarmStart> WindowSweeper::warm_starts() const {
  return impl_->warm;
}

void WindowSweeper::restore_warm_starts(
    std::vector<lp::WarmStart> warm) const {
  if (warm.size() != impl_->warm.size()) return;
  impl_->warm = std::move(warm);
}

WindowSweeper::~WindowSweeper() = default;
WindowSweeper::WindowSweeper(WindowSweeper&&) noexcept = default;
WindowSweeper& WindowSweeper::operator=(WindowSweeper&&) noexcept = default;

std::size_t WindowSweeper::num_windows() const {
  return impl_->windows.size();
}

double WindowSweeper::min_feasible_power() const {
  double worst = 0.0;
  for (const auto& form : impl_->forms) {
    worst = std::max(worst, form->min_feasible_power());
  }
  return worst;
}

double WindowSweeper::unconstrained_makespan() const {
  double total = 0.0;
  for (const auto& form : impl_->forms) {
    total += form->unconstrained_makespan();
  }
  return total;
}

WindowedLpResult WindowSweeper::solve(const LpScheduleOptions& options) const {
  const dag::TaskGraph& graph = *impl_->graph;
  WindowedLpResult out;
  out.schedule.shares.assign(graph.num_edges(), {});
  out.schedule.duration.assign(graph.num_edges(), 0.0);
  out.schedule.power.assign(graph.num_edges(), 0.0);
  out.vertex_time.assign(graph.num_vertices(), 0.0);
  out.frontiers.resize(graph.num_edges());
  out.min_feasible_power = min_feasible_power();

  double offset = 0.0;
  for (std::size_t w = 0; w < impl_->windows.size(); ++w) {
    const dag::Window& win = impl_->windows[w];
    const LpFormulation& form = *impl_->forms[w];
    LpScheduleOptions per_window = options;
    if (!options.discrete && per_window.warm == nullptr) {
      per_window.warm = &impl_->warm[w];
    }
    const LpScheduleResult res = form.solve(per_window);
    out.iterations += res.iterations;
    out.energy_joules += res.energy_joules;
    out.power_price_s_per_watt += res.power_price_s_per_watt;
    out.degenerate_pivots += res.degenerate_pivots;
    out.refactor_count += res.refactor_count;
    out.bland_engaged = out.bland_engaged || res.bland_engaged;
    out.primal_infeasibility =
        std::max(out.primal_infeasibility, res.primal_infeasibility);
    out.eta_nonzeros += res.eta_nonzeros;
    out.lu_fill_ratio = std::max(out.lu_fill_ratio, res.lu_fill_ratio);
    out.window_duals.push_back(res.row_duals);
    if (!res.optimal()) {
      out.status = res.status;
      out.failed_window = static_cast<int>(w);
      return out;
    }
    for (std::size_t wv = 0; wv < win.graph.num_vertices(); ++wv) {
      out.vertex_time[win.vertex_map[wv]] = offset + res.vertex_time[wv];
    }
    for (std::size_t we = 0; we < win.graph.num_edges(); ++we) {
      const int orig = win.edge_map[we];
      out.schedule.shares[orig] = res.schedule.shares[we];
      out.schedule.duration[orig] = res.schedule.duration[we];
      out.schedule.power[orig] = res.schedule.power[we];
      out.frontiers[orig] = form.frontiers()[we];
    }
    for (double p : res.event_power) {
      out.peak_event_power = std::max(out.peak_event_power, p);
    }
    offset += res.makespan;
  }
  out.makespan = offset;
  out.status = lp::SolveStatus::kOptimal;
  return out;
}

}  // namespace powerlim::core
