// Pareto-efficient and convex configuration frontiers (Section 3.2).
//
// Each task can run in ~120 configurations (15 DVFS states x 8 thread
// counts). The LP needs, per task, the subset that is (a) Pareto-efficient
// in (time, power) and (b) convex, because a non-convex frontier cannot be
// represented as a convex piecewise-linear function and would force the
// formulation to become mixed integer-linear (paper, Section 3.2 and
// Figure 1).
#pragma once

#include <vector>

#include "machine/power_model.h"

namespace powerlim::core {

/// Removes dominated configurations. Config a dominates b when a is no
/// worse in both duration and power and strictly better in at least one.
/// Result is sorted by increasing power; duration strictly decreases along
/// the result.
std::vector<machine::Config> pareto_filter(
    std::vector<machine::Config> configs);

/// The convex (lower-left) hull of the Pareto frontier in the
/// (power, duration) plane, sorted by increasing power. Along the result
/// duration strictly decreases and the slope d(duration)/d(power)
/// (negative) is non-decreasing, so any fractional mixture of two
/// neighboring points is itself Pareto-optimal in the relaxed problem.
std::vector<machine::Config> convex_frontier(
    std::vector<machine::Config> configs);

/// True if `frontier` (sorted by power) is convex within tolerance; used
/// by tests and as a debug check in the LP builder.
bool is_convex_frontier(const std::vector<machine::Config>& frontier,
                        double tol = 1e-9);

}  // namespace powerlim::core
