#include "core/lp_formulation.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "core/pareto.h"
#include "lp/model.h"

namespace powerlim::core {

using lp::Model;
using lp::Term;
using lp::Variable;

LpFormulation::LpFormulation(const dag::TaskGraph& graph,
                             const machine::PowerModel& model,
                             const machine::ClusterSpec& cluster,
                             const FormulationHooks* hooks)
    : graph_(&graph), model_(&model), cluster_(&cluster) {
  graph.validate();
  frontiers_.resize(graph.num_edges());
  message_duration_.assign(graph.num_edges(), 0.0);
  std::vector<double> fastest(graph.num_edges(), 0.0);
  for (const dag::Edge& e : graph.edges()) {
    if (e.is_task()) {
      frontiers_[e.id] = convex_frontier(model.enumerate(e.work, e.rank));
      if (hooks != nullptr && hooks->frontier) {
        hooks->frontier(e.id, frontiers_[e.id]);
      }
      if (frontiers_[e.id].empty()) {
        throw EmptyFrontierError(e.id);
      }
      // Fastest = minimum duration = last frontier point.
      fastest[e.id] = frontiers_[e.id].back().duration;
    } else {
      message_duration_[e.id] = cluster.message_seconds(e.bytes);
      fastest[e.id] = message_duration_[e.id];
    }
  }
  // Initial power-unconstrained schedule (paper 3.3): every task at its
  // fastest configuration. Task activity intervals already absorb slack
  // because activity is [src event, dst event) by construction.
  initial_ = asap_schedule(graph, fastest);
  events_ = build_event_order(graph, initial_);
}

double LpFormulation::min_feasible_power() const {
  double worst = 0.0;
  for (std::size_t g = 0; g < events_.num_groups(); ++g) {
    double total = 0.0;
    for (int eid : events_.active_tasks[g]) {
      // Cheapest frontier point is the first (lowest power).
      total += frontiers_[eid].front().power;
    }
    worst = std::max(worst, total);
  }
  return worst;
}

BuiltModel LpFormulation::build_model(const LpScheduleOptions& options) const {
  const dag::TaskGraph& graph = *graph_;

  const bool energy_mode = options.objective == LpObjective::kEnergy;
  if (energy_mode && options.max_makespan <= 0.0) {
    throw std::invalid_argument(
        "LpFormulation: kEnergy requires a positive max_makespan");
  }

  BuiltModel built;
  built.model = Model(lp::Sense::kMinimize);
  built.duration_row_of_edge.assign(graph.num_edges(), -1);
  built.convexity_row_of_edge.assign(graph.num_edges(), -1);
  built.power_row_of_group.assign(events_.num_groups(), -1);
  Model& lp_model = built.model;

  // Vertex-time variables; in makespan mode only Finalize carries
  // objective weight (eq. 1). An optional deadline caps Finalize either
  // way (the energy objective requires one).
  std::vector<Variable>& v = built.vertex_var;
  v.resize(graph.num_vertices());
  for (std::size_t j = 0; j < graph.num_vertices(); ++j) {
    const bool is_init = static_cast<int>(j) == graph.init_vertex();
    const bool is_fin = static_cast<int>(j) == graph.finalize_vertex();
    double ub = is_init ? 0.0 : lp::kInfinity;
    if (is_fin && options.max_makespan > 0.0) ub = options.max_makespan;
    // v_init = 0 (eq. 2) via fixed bounds.
    v[j] = lp_model.add_variable(0.0, ub,
                                 (is_fin && !energy_mode) ? 1.0 : 0.0,
                                 "v" + std::to_string(j));
  }

  // Configuration share variables c_ik (eq. 6 continuous / eq. 5
  // discrete). In energy mode each share costs its execution energy.
  std::vector<std::vector<Variable>>& c = built.share_var;
  c.resize(graph.num_edges());
  for (const dag::Edge& e : graph.edges()) {
    if (!e.is_task()) continue;
    c[e.id].reserve(frontiers_[e.id].size());
    for (std::size_t k = 0; k < frontiers_[e.id].size(); ++k) {
      const std::string name =
          "c" + std::to_string(e.id) + "_" + std::to_string(k);
      const machine::Config& cfg = frontiers_[e.id][k];
      const double obj = energy_mode ? cfg.duration * cfg.power : 0.0;
      c[e.id].push_back(options.discrete
                            ? lp_model.add_integer_variable(0, 1, obj, name)
                            : lp_model.add_variable(0, 1, obj, name));
    }
  }

  // Task duration rows (eqs. 3, 4, 7 combined) and message rows.
  for (const dag::Edge& e : graph.edges()) {
    if (e.is_task()) {
      std::vector<Term> terms{{v[e.dst], 1.0}, {v[e.src], -1.0}};
      for (std::size_t k = 0; k < c[e.id].size(); ++k) {
        terms.push_back({c[e.id][k], -frontiers_[e.id][k].duration});
      }
      built.duration_row_of_edge[e.id] =
          lp_model.add_ge(terms, 0.0, "dur" + std::to_string(e.id)).index;
    } else {
      built.duration_row_of_edge[e.id] =
          lp_model
              .add_ge({{v[e.dst], 1.0}, {v[e.src], -1.0}},
                      message_duration_[e.id], "msg" + std::to_string(e.id))
              .index;
    }
  }

  // Each task completes exactly once (eq. 9).
  for (const dag::Edge& e : graph.edges()) {
    if (!e.is_task()) continue;
    std::vector<Term> terms;
    for (const Variable& var : c[e.id]) terms.push_back({var, 1.0});
    built.convexity_row_of_edge[e.id] =
        lp_model.add_eq(terms, 1.0, "one" + std::to_string(e.id)).index;
  }

  // Event power rows (eqs. 8, 10, 11 combined): sum of active task power
  // at each event group must fit under the job-level cap.
  for (std::size_t g = 0; g < events_.num_groups(); ++g) {
    if (events_.active_tasks[g].empty()) continue;
    std::vector<Term> terms;
    for (int eid : events_.active_tasks[g]) {
      for (std::size_t k = 0; k < c[eid].size(); ++k) {
        terms.push_back({c[eid][k], frontiers_[eid][k].power});
      }
    }
    built.power_row_of_group[g] =
        lp_model.add_le(terms, options.power_cap, "pow" + std::to_string(g))
            .index;
  }

  // Event-order rows (eqs. 12, 13): chain group leaders; pin group members
  // to their leader.
  for (std::size_t g = 0; g < events_.num_groups(); ++g) {
    const int leader = events_.groups[g].front();
    for (std::size_t m = 1; m < events_.groups[g].size(); ++m) {
      lp_model.add_eq({{v[events_.groups[g][m]], 1.0}, {v[leader], -1.0}},
                      0.0);
    }
    if (g > 0) {
      const int prev_leader = events_.groups[g - 1].front();
      lp_model.add_ge({{v[leader], 1.0}, {v[prev_leader], -1.0}}, 0.0);
    }
  }
  return built;
}

LpScheduleResult LpFormulation::solve(const LpScheduleOptions& options) const {
  const dag::TaskGraph& graph = *graph_;
  LpScheduleResult out;
  const bool energy_mode = options.objective == LpObjective::kEnergy;

  BuiltModel built = build_model(options);
  Model& lp_model = built.model;
  const std::vector<Variable>& v = built.vertex_var;
  const std::vector<std::vector<Variable>>& c = built.share_var;

  // Solve.
  if (options.mutate_model) options.mutate_model(lp_model);
  std::vector<double> values;
  if (options.discrete) {
    lp::BranchBoundOptions bb = options.branch_bound;
    bb.simplex = options.simplex;
    const lp::MipSolution sol = lp::solve_mip(lp_model, bb);
    out.status = sol.status;
    out.iterations = sol.nodes;
    if (!sol.optimal()) return out;
    values = sol.values;
  } else {
    const lp::Solution sol =
        lp::solve_lp(lp_model, options.simplex, options.warm);
    out.status = sol.status;
    out.iterations = sol.iterations;
    out.degenerate_pivots = sol.degenerate_pivots;
    out.refactor_count = sol.refactor_count;
    out.bland_engaged = sol.bland_engaged;
    out.primal_infeasibility = sol.primal_infeasibility;
    out.eta_nonzeros = sol.stats.eta_nonzeros;
    out.lu_fill_ratio = sol.stats.lu_fill_ratio;
    if (!sol.optimal()) return out;
    values = sol.values;
    out.row_duals = sol.duals;
    // Duals of the power rows price the cap: raising every row's bound by
    // one watt changes the (minimized) objective by the sum of their
    // duals, which is <= 0 for binding <= rows. Only meaningful for the
    // makespan objective.
    if (!energy_mode && !sol.duals.empty()) {
      double total = 0.0;
      for (int row : built.power_row_of_group) {
        if (row >= 0) total += sol.duals[row];
      }
      out.power_price_s_per_watt = std::max(0.0, -total);
    }
  }
  out.makespan = values[v[graph.finalize_vertex()].index];

  // Extract schedule.
  out.vertex_time.resize(graph.num_vertices());
  for (std::size_t j = 0; j < graph.num_vertices(); ++j) {
    out.vertex_time[j] = values[v[j].index];
  }
  out.schedule.shares.assign(graph.num_edges(), {});
  out.schedule.duration.assign(graph.num_edges(), 0.0);
  out.schedule.power.assign(graph.num_edges(), 0.0);
  for (const dag::Edge& e : graph.edges()) {
    if (!e.is_task()) {
      out.schedule.duration[e.id] = message_duration_[e.id];
      continue;
    }
    auto& shares = out.schedule.shares[e.id];
    double total = 0.0;
    for (std::size_t k = 0; k < c[e.id].size(); ++k) {
      const double frac = values[c[e.id][k].index];
      if (frac > 1e-9) {
        shares.push_back({static_cast<int>(k), frac});
        total += frac;
      }
    }
    if (shares.empty() || std::abs(total - 1.0) > 1e-5) {
      throw std::runtime_error("LP produced inconsistent shares for task " +
                               std::to_string(e.id));
    }
    for (ConfigShare& s : shares) s.fraction /= total;
  }
  blend(out.schedule, frontiers_);

  // Event powers for diagnostics / validation.
  out.event_power.assign(events_.num_groups(), 0.0);
  for (std::size_t g = 0; g < events_.num_groups(); ++g) {
    for (int eid : events_.active_tasks[g]) {
      out.event_power[g] += out.schedule.power[eid];
    }
  }
  // Execution energy of the chosen schedule (the objective in kEnergy
  // mode; informative otherwise).
  for (const dag::Edge& e : graph.edges()) {
    if (!e.is_task()) continue;
    for (const ConfigShare& s : out.schedule.shares[e.id]) {
      const machine::Config& cfg = frontiers_[e.id][s.config_index];
      out.energy_joules += s.fraction * cfg.duration * cfg.power;
    }
  }
  return out;
}

}  // namespace powerlim::core
