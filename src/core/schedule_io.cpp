#include "core/schedule_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace powerlim::core {

namespace {
[[noreturn]] void fail(int line, const std::string& what) {
  throw std::runtime_error("schedule parse error at line " +
                           std::to_string(line) + ": " + what);
}
}  // namespace

void write_schedule(std::ostream& out, const SavedSchedule& saved) {
  out.precision(17);
  out << "powerlim-schedule 1\n";
  out << "edges " << saved.schedule.num_edges() << "\n";
  out << "cap " << saved.job_cap_watts << "\n";
  out << "makespan " << saved.makespan << "\n";
  for (std::size_t e = 0; e < saved.schedule.num_edges(); ++e) {
    const auto& shares = saved.schedule.shares[e];
    if (shares.empty()) {
      out << "message " << e << ' ' << saved.schedule.duration[e] << "\n";
      continue;
    }
    out << "task " << e << ' ' << saved.schedule.duration[e] << ' '
        << saved.schedule.power[e] << ' ' << shares.size();
    for (const ConfigShare& s : shares) {
      const machine::Config& c = saved.frontiers[e].at(s.config_index);
      out << ' ' << s.config_index << ' ' << s.fraction << ' ' << c.ghz
          << ' ' << c.threads << ' ' << c.duration << ' ' << c.power;
    }
    out << "\n";
  }
  for (std::size_t v = 0; v < saved.vertex_time.size(); ++v) {
    out << "vertex " << v << ' ' << saved.vertex_time[v] << "\n";
  }
}

SavedSchedule read_schedule(std::istream& in) {
  SavedSchedule saved;
  std::string line;
  int line_no = 0;
  auto next = [&]() -> bool {
    while (std::getline(in, line)) {
      ++line_no;
      if (!line.empty() && line[0] != '#') return true;
    }
    return false;
  };
  if (!next()) fail(line_no, "empty input");
  {
    std::istringstream ss(line);
    std::string magic;
    int version = 0;
    ss >> magic >> version;
    if (magic != "powerlim-schedule" || version != 1) {
      fail(line_no, "bad header");
    }
  }
  std::size_t edges = 0;
  if (!next()) fail(line_no, "missing edges directive");
  {
    std::istringstream ss(line);
    std::string word;
    ss >> word >> edges;
    if (word != "edges") fail(line_no, "expected edges directive");
  }
  saved.schedule.shares.assign(edges, {});
  saved.schedule.duration.assign(edges, 0.0);
  saved.schedule.power.assign(edges, 0.0);
  saved.frontiers.assign(edges, {});

  while (next()) {
    std::istringstream ss(line);
    std::string word;
    ss >> word;
    if (word == "cap") {
      ss >> saved.job_cap_watts;
    } else if (word == "makespan") {
      ss >> saved.makespan;
    } else if (word == "task") {
      std::size_t e = 0, n = 0;
      ss >> e;
      if (e >= edges) fail(line_no, "edge out of range");
      ss >> saved.schedule.duration[e] >> saved.schedule.power[e] >> n;
      if (ss.fail() || n == 0) fail(line_no, "malformed task");
      for (std::size_t k = 0; k < n; ++k) {
        ConfigShare s;
        machine::Config c;
        ss >> s.config_index >> s.fraction >> c.ghz >> c.threads >>
            c.duration >> c.power;
        if (ss.fail() || s.config_index < 0) {
          fail(line_no, "malformed share");
        }
        if (static_cast<int>(saved.frontiers[e].size()) <= s.config_index) {
          saved.frontiers[e].resize(s.config_index + 1);
        }
        saved.frontiers[e][s.config_index] = c;
        saved.schedule.shares[e].push_back(s);
      }
    } else if (word == "message") {
      std::size_t e = 0;
      ss >> e;
      if (e >= edges) fail(line_no, "edge out of range");
      ss >> saved.schedule.duration[e];
      if (ss.fail()) fail(line_no, "malformed message");
    } else if (word == "vertex") {
      std::size_t v = 0;
      double t = 0;
      ss >> v >> t;
      if (ss.fail()) fail(line_no, "malformed vertex");
      if (saved.vertex_time.size() <= v) saved.vertex_time.resize(v + 1);
      saved.vertex_time[v] = t;
    } else {
      fail(line_no, "unknown directive '" + word + "'");
    }
  }
  return saved;
}

void save_schedule(const std::string& path, const SavedSchedule& saved) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_schedule(out, saved);
}

SavedSchedule load_schedule(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return read_schedule(in);
}

}  // namespace powerlim::core
