// Windowed (barrier-decomposed) LP solve.
//
// Solves the fixed-vertex-order LP independently on each barrier-to-
// barrier window of the trace (see dag/windows.h for why this is exact)
// and stitches the results back together on original edge/vertex ids.
// This is the production entry point for paper-scale sweeps: cost is
// linear in the number of iterations instead of cubic.
#pragma once

#include <memory>
#include <vector>

#include "core/lp_formulation.h"
#include "dag/graph.h"
#include "machine/power_model.h"

namespace powerlim::core {

struct WindowedLpResult {
  lp::SolveStatus status = lp::SolveStatus::kNumericalError;
  /// Sum of per-window makespans == time of Finalize.
  double makespan = 0.0;
  /// Execution energy of the schedule, joules.
  double energy_joules = 0.0;
  /// Per-task mixtures on the *original* edge ids.
  TaskSchedule schedule;
  /// Firing times of the original vertices (window offsets accumulated).
  std::vector<double> vertex_time;
  /// Convex frontier per original edge id (for replay).
  std::vector<std::vector<machine::Config>> frontiers;
  /// Highest event-power sum across all windows (diagnostic; <= cap).
  double peak_event_power = 0.0;
  /// Marginal value of power summed over windows: seconds of total
  /// makespan saved per extra watt of job budget (0 when nothing binds).
  double power_price_s_per_watt = 0.0;
  long iterations = 0;
  /// Smallest cap for which every window is feasible.
  double min_feasible_power = 0.0;
  /// Solver diagnostics aggregated across windows (for RunReports):
  /// summed degenerate pivots and refactorizations, whether Bland's rule
  /// engaged in any window, and the worst primal violation seen.
  long degenerate_pivots = 0;
  long refactor_count = 0;
  bool bland_engaged = false;
  double primal_infeasibility = 0.0;
  /// Sparse-backend basis telemetry: summed peak eta-file nonzeros and
  /// the worst LU fill ratio across windows (0 on the dense backend).
  long eta_nonzeros = 0;
  double lu_fill_ratio = 0.0;
  /// Index of the window whose solve failed (-1 when optimal): localizes
  /// a numerical failure to one barrier interval of the trace.
  int failed_window = -1;
  /// Per-window row duals of the solved LP (minimization form), aligned
  /// with the rows of that window's LpFormulation::build_model. Empty
  /// inner vectors in discrete mode. check::verify_certificate uses them
  /// for the exact weak-duality validation of the reported bound.
  std::vector<std::vector<double>> window_duals;

  bool optimal() const { return status == lp::SolveStatus::kOptimal; }
};

/// Solves each window under the same job-level cap. Returns on first
/// infeasible/failed window with that window's status.
WindowedLpResult solve_windowed_lp(const dag::TaskGraph& graph,
                                   const machine::PowerModel& model,
                                   const machine::ClusterSpec& cluster,
                                   const LpScheduleOptions& options);

/// Energy-minimization extension (the Rountree et al. SC'07 problem over
/// this repo's machinery): minimize execution energy while every window
/// finishes within (1 + slowdown_allowance) of its power-unconstrained
/// optimum, optionally under a job power cap. The per-window deadline is
/// the natural windowed form of the global bound - iterative codes
/// re-synchronize at every barrier, so allowance cannot usefully be
/// banked across iterations anyway.
WindowedLpResult solve_windowed_energy_lp(const dag::TaskGraph& graph,
                                          const machine::PowerModel& model,
                                          const machine::ClusterSpec& cluster,
                                          double slowdown_allowance,
                                          double power_cap = lp::kInfinity);

/// Multi-cap sweeps: splits the trace and builds each window's
/// formulation (frontiers, initial schedule, event sets - all
/// cap-independent) exactly once, then solves any number of caps against
/// the prebuilt structures. Use this for Figure 9-style grids,
/// `powerlim sweep`, and job profiling; a one-shot solve is equivalent to
/// the free functions above.
class WindowSweeper {
 public:
  /// `hooks` (optional, not owned; must outlive the sweeper) is the
  /// fault-injection seam forwarded to each window's formulation.
  WindowSweeper(const dag::TaskGraph& graph,
                const machine::PowerModel& model,
                const machine::ClusterSpec& cluster,
                const FormulationHooks* hooks = nullptr);
  ~WindowSweeper();
  WindowSweeper(WindowSweeper&&) noexcept;
  WindowSweeper& operator=(WindowSweeper&&) noexcept;

  /// Solves all windows under `options` (same semantics as
  /// solve_windowed_lp).
  WindowedLpResult solve(const LpScheduleOptions& options) const;

  /// Drops the internal per-window warm-start cache. The retry ladder
  /// uses this to guarantee a genuinely cold re-solve after a warm-started
  /// attempt fails (a poisoned basis must not seed the retry).
  void clear_warm_starts() const;

  /// Snapshot of the per-window warm-start cache (one slot per window;
  /// slots without a cached basis are invalid()). Journaled sweeps
  /// checkpoint this after each completed cap so a resumed run does not
  /// start its first solve cold.
  std::vector<lp::WarmStart> warm_starts() const;

  /// Seeds the warm-start cache from a snapshot. Ignored (cache left
  /// untouched) when the slot count does not match this trace's window
  /// count; each slot is further feasibility-checked by the solver, so a
  /// stale or corrupt basis degrades to a cold start, never an error.
  void restore_warm_starts(std::vector<lp::WarmStart> warm) const;

  /// Smallest job cap for which every window is feasible.
  double min_feasible_power() const;
  /// Sum of window optima with unlimited power.
  double unconstrained_makespan() const;
  std::size_t num_windows() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace powerlim::core
