// Fixed-vertex-order LP formulation (paper Section 3, Figures 4-6).
//
// Given an application task graph, a machine model, and a job-level power
// constraint PC, build and solve the linear program that the paper uses to
// compute the near-optimal performance bound:
//
//   minimize   v_finalize                                       (eq. 1)
//   subject to v_init = 0                                       (eq. 2)
//     per task i:    v_dst(i) - v_src(i) >= sum_k d_ik c_ik     (eqs. 3,4,7)
//     per message m: v_dst(m) - v_src(m) >= wire time
//     per task i:    sum_k c_ik = 1,  0 <= c_ik <= 1            (eqs. 6,9)
//     per event g:   sum_{i in R_g} sum_k p_ik c_ik <= PC       (eqs. 8,10,11)
//     event order:   v's keep the initial-schedule order        (eqs. 12,13)
//
// Variable substitutions vs. the paper's presentation (no loss of
// generality, large gain in LP size): s_i == v_src(i) (eq. 4 is an
// equality, so s is eliminated); d_i and p_i are substituted by their
// defining sums (eqs. 7, 8); P_j is eliminated by combining eqs. 10 and 11
// into one row per event.
//
// The same builder can pin c_ik to {0,1} and call branch & bound, giving
// the *discrete-configuration* variant (eq. 5) for small instances.
#pragma once

#include <functional>
#include <stdexcept>
#include <vector>

#include "core/events.h"
#include "core/schedule.h"
#include "dag/graph.h"
#include "lp/branch_bound.h"
#include "lp/simplex.h"
#include "machine/power_model.h"

namespace powerlim::core {

/// What the LP optimizes. kMakespan is the paper's formulation (eq. 1);
/// kEnergy is the related Rountree et al. SC'07 problem the paper builds
/// on - minimize energy subject to a performance bound - implemented here
/// as an extension over the same constraint system. Energy is execution
/// energy sum(d_ik * p_ik * c_ik), linear in the shares.
enum class LpObjective { kMakespan, kEnergy };

/// Raised when a task's configuration frontier reduces to nothing - the
/// LP cannot be formulated without at least one (time, power) point per
/// task. Typed (rather than a bare runtime_error) so robust sweep drivers
/// can classify the failure without string matching.
class EmptyFrontierError : public std::runtime_error {
 public:
  explicit EmptyFrontierError(int edge_id)
      : std::runtime_error("empty configuration frontier for task edge " +
                           std::to_string(edge_id)),
        edge_id_(edge_id) {}
  int edge_id() const { return edge_id_; }

 private:
  int edge_id_;
};

/// Build-time seams consulted while constructing a formulation. Used by
/// the fault-injection harness (robust/fault_injection.h) to corrupt the
/// pipeline at the exact layer a real failure would surface; production
/// callers pass none.
struct FormulationHooks {
  /// Called per task edge after its convex frontier is built; may modify
  /// the frontier in place (e.g. drop every point).
  std::function<void(int edge_id, std::vector<machine::Config>&)> frontier;
};

struct LpScheduleOptions {
  /// Job-level power constraint PC, watts (total across all sockets).
  /// Use lp::kInfinity for unconstrained-power energy minimization.
  double power_cap = 0.0;
  /// Solve with integral configurations (eq. 5) via branch & bound.
  /// Exponentially expensive; only for small instances.
  bool discrete = false;
  LpObjective objective = LpObjective::kMakespan;
  /// Upper bound on the Finalize time (required, and > 0, when the
  /// objective is kEnergy; optional extra constraint otherwise).
  double max_makespan = 0.0;
  lp::SimplexOptions simplex;
  lp::BranchBoundOptions branch_bound;
  /// Optional warm-start slot (continuous mode only). Reuse one slot per
  /// formulation across solves with different caps to skip phase I; the
  /// solver falls back to a cold start whenever the snapshot does not fit
  /// (see lp::WarmStart).
  lp::WarmStart* warm = nullptr;
  /// Fault-injection seam: invoked on the fully built LP model right
  /// before the solve (robust/fault_injection.h uses it to corrupt
  /// coefficients). Production callers leave it empty.
  std::function<void(lp::Model&)> mutate_model;
};

/// One window's LP in lp::Model form plus the structural metadata the
/// verification layer (src/check/) audits: which row caps which event
/// group, which row covers which edge, and which columns belong to whom.
/// Produced by LpFormulation::build_model and consumed both by solve()
/// and by check::lint_model / check::verify_certificate, so the model
/// that is linted or certified is bit-identical to the one solved.
struct BuiltModel {
  lp::Model model;
  /// Vertex-time variable per vertex id.
  std::vector<lp::Variable> vertex_var;
  /// Share variables c_ik per edge id (empty for messages).
  std::vector<std::vector<lp::Variable>> share_var;
  /// Row index of each task's duration row / message's wire row, by edge.
  std::vector<int> duration_row_of_edge;
  /// Row index of each task's share-sum row (eq. 9), by edge; -1 for
  /// messages.
  std::vector<int> convexity_row_of_edge;
  /// Row index of each event group's power-cap row; -1 when the group has
  /// no active task (such a group constrains nothing and needs no row).
  std::vector<int> power_row_of_group;
};

struct LpScheduleResult {
  lp::SolveStatus status = lp::SolveStatus::kNumericalError;
  /// Time of the Finalize vertex (the objective in kMakespan mode).
  double makespan = 0.0;
  /// Execution energy of the schedule, joules (the objective in kEnergy
  /// mode; reported in both modes).
  double energy_joules = 0.0;
  /// Per-task configuration mixture.
  TaskSchedule schedule;
  /// LP vertex times v_j.
  std::vector<double> vertex_time;
  /// Sum of active task power per event group (must be <= power_cap).
  std::vector<double> event_power;
  /// Marginal value of power: seconds of makespan saved per additional
  /// watt of job budget (from the duals of the binding event-power rows;
  /// 0 when the cap does not bind, and in discrete mode where duals do
  /// not exist). The "quantitative optimization target" in sensitivity
  /// form: it prices the cap.
  double power_price_s_per_watt = 0.0;
  long iterations = 0;
  /// Solver diagnostics surfaced for RunReports (see robust/): degenerate
  /// pivot count, refactorization count, whether Bland's rule engaged, and
  /// the max primal violation of the returned point.
  long degenerate_pivots = 0;
  long refactor_count = 0;
  bool bland_engaged = false;
  double primal_infeasibility = 0.0;
  /// Sparse-backend basis telemetry (schema 8): peak eta-file length
  /// between refactorizations and worst LU fill ratio nnz(L+U)/nnz(B).
  /// Both 0 on the dense backend / in discrete mode.
  long eta_nonzeros = 0;
  double lu_fill_ratio = 0.0;
  /// Per-row duals of the solved model (minimization form), aligned with
  /// the rows of build_model(options); empty in discrete mode where duals
  /// do not exist. The certificate checker turns these into an exact
  /// weak-duality bound on the reported objective.
  std::vector<double> row_duals;

  bool optimal() const { return status == lp::SolveStatus::kOptimal; }
};

/// Builds the formulation once per (graph, machine) pair; solve() may then
/// be called for many power caps, which is how the paper sweeps Figure 9.
/// Throws EmptyFrontierError when a task has no usable configuration.
class LpFormulation {
 public:
  LpFormulation(const dag::TaskGraph& graph,
                const machine::PowerModel& model,
                const machine::ClusterSpec& cluster,
                const FormulationHooks* hooks = nullptr);

  /// Convex configuration frontier per edge id (empty for messages).
  const std::vector<std::vector<machine::Config>>& frontiers() const {
    return frontiers_;
  }
  /// Event order derived from the power-unconstrained initial schedule.
  const EventOrder& events() const { return events_; }
  /// The power-unconstrained (fastest-configuration) schedule.
  const dag::ScheduleTimes& initial_schedule() const { return initial_; }
  /// Makespan with unlimited power.
  double unconstrained_makespan() const { return initial_.makespan; }
  /// Smallest event-power sum achievable (every task at its cheapest
  /// frontier point); caps below this are infeasible.
  double min_feasible_power() const;

  /// Builds the LP (deterministic row/column order for a given graph and
  /// machine) without solving it. solve() calls this internally; the
  /// verification layer calls it to rebuild the exact model a solution
  /// claims to satisfy. Note options.mutate_model is NOT applied here -
  /// it is a solve-time fault seam, so an independent rebuild sees the
  /// uncorrupted model.
  BuiltModel build_model(const LpScheduleOptions& options) const;

  LpScheduleResult solve(const LpScheduleOptions& options) const;

  const dag::TaskGraph& graph() const { return *graph_; }

 private:
  const dag::TaskGraph* graph_;
  const machine::PowerModel* model_;
  const machine::ClusterSpec* cluster_;
  std::vector<std::vector<machine::Config>> frontiers_;
  std::vector<double> message_duration_;  // per edge id (0 for tasks)
  dag::ScheduleTimes initial_;
  EventOrder events_;
};

}  // namespace powerlim::core
