// Flow-based ILP formulation (paper Section 3.4 and Appendix).
//
// In contrast to the fixed-vertex-order LP, the flow ILP lets the solver
// determine the event order: binary sequencing variables x_ij say whether
// task i finishes before task j starts, and continuous flow variables
// f_ij route the job's power budget PC forward in time from an artificial
// source task (before MPI_Init) to an artificial sink task (after
// MPI_Finalize). Conservation of flow guarantees that any set of tasks
// that can overlap in time draws at most PC watts in total.
//
// Implementation notes relative to the paper's equations (14)-(29):
//  * eq. (23)'s product d_i * x_ij (d_i is a variable when configurations
//    are selectable) is linearized in the standard way:
//    s_j - s_i >= d_i - M (1 - x_ij);
//  * eq. (27)'s min(p_i, p_j) x_ij is linearized as three rows:
//    f_ij <= PC x_ij, f_ij <= p_i, f_ij <= p_j;
//  * task starts are tied to their source vertex (s_i == v_src(i)), the
//    role eqs. (19)/(21) play in the paper ("edges start immediately after
//    their source vertex's dependencies are completed");
//  * slack carries no power here (the LP variant folds slack power into
//    the task; the ILP frees a task's power at completion). This makes the
//    ILP weakly more permissive, so ILP makespan <= LP makespan, the
//    relationship Figure 8 shows.
//
// Structurally-implied x values (precedence (15), mutual exclusion (16),
// common source/destination (19)-(22)) are folded to constants before any
// binaries are created; transitivity rows (17) are added only when not
// trivially satisfied. Practical instance limit: ~15 DAG edges (the paper
// reports < 30 with a commercial solver).
#pragma once

#include <vector>

#include "core/schedule.h"
#include "dag/graph.h"
#include "lp/branch_bound.h"
#include "machine/power_model.h"

namespace powerlim::core {

struct FlowIlpOptions {
  /// Job-level power constraint PC, watts.
  double power_cap = 0.0;
  /// Pin configurations to {0,1} too (fully discrete schedules).
  bool discrete_configs = false;
  /// Appendix-faithful slack treatment: each task's trailing slack becomes
  /// its own flow entity with the fixed power `slack_power_watts`
  /// ("slack power is no longer assumed equal to its corresponding task
  /// power. The ILP formulation assigns a specific power consumption to
  /// all slack based on observed slack power"). When false (default),
  /// slack carries no power and a task's watts are freed at completion.
  bool separate_slack = false;
  /// Observed slack power (paper: measured on the test system). Ignored
  /// unless separate_slack is set; callers typically pass
  /// PowerModel::idle_power().
  double slack_power_watts = 0.0;
  lp::BranchBoundOptions branch_bound;
};

struct FlowIlpResult {
  lp::SolveStatus status = lp::SolveStatus::kNumericalError;
  double makespan = 0.0;
  TaskSchedule schedule;
  /// Start time per edge id.
  std::vector<double> start;
  /// Branch & bound nodes explored.
  long nodes = 0;

  bool optimal() const { return status == lp::SolveStatus::kOptimal; }
};

FlowIlpResult solve_flow_ilp(const dag::TaskGraph& graph,
                             const machine::PowerModel& model,
                             const machine::ClusterSpec& cluster,
                             const FlowIlpOptions& options);

}  // namespace powerlim::core
