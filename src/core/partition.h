// Machine-level power partitioning across jobs.
//
// The paper assumes each job already *has* a power budget and a node set
// (Section 2.2, deferring the allocation problem to resource-manager work
// like Patki et al.). This module closes that loop using the LP itself:
// sweep each job's cap to get its power-performance profile, then split
// the machine's total power so the slowest job finishes as early as
// possible. Because each profile is monotone (more power never hurts -
// guaranteed by the LP), the min-max split is found by bisecting on the
// target finish time and summing each job's inverse profile.
#pragma once

#include <vector>

#include "dag/graph.h"
#include "machine/power_model.h"

namespace powerlim::core {

/// A job's cap -> optimal-time curve, piecewise-linear between sweep
/// points. Points must be sorted by ascending cap with non-increasing
/// times (profile_job() guarantees this).
class PowerProfile {
 public:
  struct Point {
    double cap_watts;
    double seconds;
  };

  explicit PowerProfile(std::vector<Point> points);

  /// LP-optimal time at `cap` (linear interpolation; clamped to the last
  /// point above the sweep range; +infinity below the first point).
  double time_at(double cap_watts) const;

  /// Smallest cap achieving `seconds` (inverse interpolation; +infinity
  /// when the job can never run that fast).
  double cap_for(double seconds) const;

  double min_cap() const { return points_.front().cap_watts; }
  double max_useful_cap() const;
  double best_time() const { return points_.back().seconds; }
  double worst_time() const { return points_.front().seconds; }
  const std::vector<Point>& points() const { return points_; }

 private:
  std::vector<Point> points_;
};

/// Builds a job's profile by sweeping the windowed LP over `caps`
/// (infeasible caps are skipped; at least one cap must be feasible).
PowerProfile profile_job(const dag::TaskGraph& graph,
                         const machine::PowerModel& model,
                         const machine::ClusterSpec& cluster,
                         const std::vector<double>& caps);

struct PartitionResult {
  bool feasible = false;
  /// Minimized maximum job completion time.
  double makespan = 0.0;
  /// Per-job power allocation (sums to <= total).
  std::vector<double> caps;
  /// Per-job predicted times at those caps.
  std::vector<double> times;
};

/// Min-max partition of `total_watts` across the jobs. Leftover power
/// (when every job is already at its max useful cap) stays unallocated.
PartitionResult partition_power(const std::vector<PowerProfile>& jobs,
                                double total_watts);

}  // namespace powerlim::core
