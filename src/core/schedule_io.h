// Schedule serialization.
//
// An LP run's product is a schedule: per task, a mixture over its
// configuration frontier. Persisting it (next to its trace) completes the
// offline workflow the paper describes - solve once, then replay/validate
// on the target system:
//
//   powerlim-schedule 1
//   edges <E>
//   cap <job_cap_watts>
//   makespan <seconds>
//   task <edge> <duration> <power> <n> (<config_index> <fraction> <ghz>
//        <threads> <cfg_duration> <cfg_power>)*n
//   message <edge> <duration>
//   vertex <id> <time>
//
// Frontier points are embedded (index, ghz, threads, duration, power) so
// a schedule file is self-contained: replay does not need to re-derive
// frontiers from a machine model.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/schedule.h"
#include "machine/power_model.h"

namespace powerlim::core {

/// A schedule bundled with everything replay needs.
struct SavedSchedule {
  TaskSchedule schedule;
  /// Frontier per edge (only the points the mixture references are
  /// required, but full frontiers round-trip when available).
  std::vector<std::vector<machine::Config>> frontiers;
  std::vector<double> vertex_time;
  double job_cap_watts = 0.0;
  double makespan = 0.0;
};

void write_schedule(std::ostream& out, const SavedSchedule& saved);
SavedSchedule read_schedule(std::istream& in);

void save_schedule(const std::string& path, const SavedSchedule& saved);
SavedSchedule load_schedule(const std::string& path);

}  // namespace powerlim::core
