#include "robust/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "util/posix_io.h"

namespace powerlim::robust {

namespace {

constexpr char kMagic[] = "powerlim-journal v1";

std::string errno_message(const char* what, const std::string& path) {
  std::string msg = what;
  msg += " '";
  msg += path;
  msg += "': ";
  msg += std::strerror(errno);
  return msg;
}

/// Max-precision decimal: round-trips every finite double bit-exactly.
std::string format_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string crc_hex(std::uint32_t crc) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%08" PRIx32, crc);
  return buf;
}

/// Full append frame for one record.
std::string frame(char tag, const std::string& payload) {
  std::string out;
  out.reserve(payload.size() + 32);
  out += tag;
  out += ' ';
  out += crc_hex(crc32(payload.data(), payload.size()));
  out += ' ';
  out += std::to_string(payload.size());
  out += '\n';
  out += payload;
  out += '\n';
  return out;
}

}  // namespace

bool journal_entry_trusted(const JournalEntry& entry,
                           bool require_certificate) {
  if (entry.verdict != StatusCode::kOk) return true;
  if (!require_certificate) return true;
  // RunReport::to_json emits keys in a fixed order, so these exact
  // substrings appear iff the report is schema >= 4 and the accepted
  // solution passed verification. (The schema check alone is not enough:
  // a run with verification disabled also stamps schema 4.)
  const std::string& json = entry.report_json;
  const std::size_t v = json.find("\"schema_version\":");
  if (v == std::string::npos) return false;
  const int schema =
      static_cast<int>(std::strtol(json.c_str() + v + 17, nullptr, 10));
  if (schema < 4) return false;
  return json.find("\"certificate\":{\"checked\":true,\"ok\":true") !=
         std::string::npos;
}

std::string serialize_journal_entry(const JournalEntry& e) {
  std::string out = "cap=";
  out += format_double(e.job_cap_watts);
  out += " verdict=";
  out += to_string(e.verdict);
  out += " degraded=";
  out += e.degraded ? '1' : '0';
  out += " bound=";
  out += format_double(e.bound_seconds);
  out += " fallback=";
  out += e.fallback.empty() ? "-" : e.fallback;
  out += '\n';
  out += e.report_json;
  return out;
}

namespace {

bool take_field(std::istringstream& is, const char* key, std::string* value) {
  std::string tok;
  if (!(is >> tok)) return false;
  const std::size_t klen = std::strlen(key);
  if (tok.compare(0, klen, key) != 0 || tok.size() <= klen ||
      tok[klen] != '=') {
    return false;
  }
  *value = tok.substr(klen + 1);
  return true;
}

}  // namespace

namespace {

bool single_token(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') return false;
  }
  return true;
}

}  // namespace

std::string serialize_journal_request(const JournalRequest& r) {
  if (!single_token(r.id) || !single_token(r.kind) || r.caps.empty()) {
    return std::string();
  }
  std::string out = "req=";
  out += r.id;
  out += " kind=";
  out += r.kind;
  out += " deadline_ms=";
  out += format_double(r.deadline_ms);
  out += " caps=";
  for (std::size_t i = 0; i < r.caps.size(); ++i) {
    if (i) out += ',';
    out += format_double(r.caps[i]);
  }
  return out;
}

bool parse_journal_request(const std::string& payload, JournalRequest* out) {
  std::istringstream is(payload);
  std::string id, kind, deadline, caps;
  if (!take_field(is, "req", &id) || !take_field(is, "kind", &kind) ||
      !take_field(is, "deadline_ms", &deadline) ||
      !take_field(is, "caps", &caps)) {
    return false;
  }
  std::string extra;
  if (is >> extra) return false;
  JournalRequest r;
  r.id = id;
  r.kind = kind;
  char* end = nullptr;
  r.deadline_ms = std::strtod(deadline.c_str(), &end);
  if (end == deadline.c_str() || *end != '\0') return false;
  std::size_t pos = 0;
  while (pos <= caps.size()) {
    std::size_t comma = caps.find(',', pos);
    if (comma == std::string::npos) comma = caps.size();
    const std::string tok = caps.substr(pos, comma - pos);
    const double cap = std::strtod(tok.c_str(), &end);
    if (tok.empty() || end == tok.c_str() || *end != '\0') return false;
    r.caps.push_back(cap);
    pos = comma + 1;
  }
  if (r.caps.empty()) return false;
  *out = std::move(r);
  return true;
}

bool parse_journal_entry(const std::string& payload, JournalEntry* out) {
  const std::size_t nl = payload.find('\n');
  if (nl == std::string::npos) return false;
  std::istringstream head(payload.substr(0, nl));
  std::string cap, verdict, degraded, bound, fallback;
  if (!take_field(head, "cap", &cap) ||
      !take_field(head, "verdict", &verdict) ||
      !take_field(head, "degraded", &degraded) ||
      !take_field(head, "bound", &bound) ||
      !take_field(head, "fallback", &fallback)) {
    return false;
  }
  JournalEntry e;
  char* end = nullptr;
  e.job_cap_watts = std::strtod(cap.c_str(), &end);
  if (end == cap.c_str() || *end != '\0') return false;
  if (!status_code_from_string(verdict, &e.verdict)) return false;
  if (degraded != "0" && degraded != "1") return false;
  e.degraded = degraded == "1";
  e.bound_seconds = std::strtod(bound.c_str(), &end);
  if (end == bound.c_str() || *end != '\0') return false;
  e.fallback = fallback == "-" ? std::string() : fallback;
  e.report_json = payload.substr(nl + 1);
  *out = std::move(e);
  return true;
}

std::uint32_t crc32(const void* data, std::size_t len) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string serialize_warm_starts(const std::vector<lp::WarmStart>& warm) {
  std::string out;
  for (const lp::WarmStart& w : warm) {
    if (!w.valid()) {
      out += "-\n";
      continue;
    }
    out += std::to_string(w.status.size());
    out += ' ';
    out += std::to_string(w.basis.size());
    for (char s : w.status) {
      out += ' ';
      out += std::to_string(static_cast<int>(s));
    }
    for (int b : w.basis) {
      out += ' ';
      out += std::to_string(b);
    }
    out += '\n';
  }
  return out;
}

bool parse_warm_starts(const std::string& text,
                       std::vector<lp::WarmStart>* out) {
  std::vector<lp::WarmStart> warm;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    lp::WarmStart w;
    if (line == "-") {
      warm.push_back(std::move(w));
      continue;
    }
    std::istringstream is(line);
    std::size_t ns = 0, nb = 0;
    if (!(is >> ns >> nb)) return false;
    // Basis snapshots are bounded by the LP size; a journal claiming a
    // multi-million-entry basis is corrupt, not big.
    if (ns > 1'000'000 || nb > 1'000'000) return false;
    w.status.reserve(ns);
    w.basis.reserve(nb);
    for (std::size_t i = 0; i < ns; ++i) {
      int v = 0;
      if (!(is >> v)) return false;
      w.status.push_back(static_cast<char>(v));
    }
    for (std::size_t i = 0; i < nb; ++i) {
      int v = 0;
      if (!(is >> v)) return false;
      w.basis.push_back(v);
    }
    std::string extra;
    if (is >> extra) return false;
    warm.push_back(std::move(w));
  }
  *out = std::move(warm);
  return true;
}

struct SweepJournal::Impl {
  std::string path;
  int fd = -1;
  RecoverySummary recovery;
  std::vector<JournalEntry> entries;
  std::vector<lp::WarmStart> warm;
  std::vector<JournalRequest> requests;

  ~Impl() {
    if (fd >= 0) ::close(fd);
  }

  Status write_durable(const std::string& bytes) {
    // One EINTR-retried write of the whole frame (the fd is O_APPEND, so
    // concurrent appenders from other processes cannot interleave with
    // or clobber it), then a retried fsync for durability.
    if (util::write_full(fd, bytes.data(), bytes.size()) != 0) {
      return Status(StatusCode::kInternal,
                    errno_message("journal write failed", path));
    }
    if (util::fsync_full(fd) != 0) {
      return Status(StatusCode::kInternal,
                    errno_message("journal fsync failed", path));
    }
    return Status::Ok();
  }
};

SweepJournal::SweepJournal() : impl_(std::make_unique<Impl>()) {}
SweepJournal::~SweepJournal() = default;
SweepJournal::SweepJournal(SweepJournal&&) noexcept = default;
SweepJournal& SweepJournal::operator=(SweepJournal&&) noexcept = default;

const std::string& SweepJournal::path() const { return impl_->path; }
const RecoverySummary& SweepJournal::recovery() const {
  return impl_->recovery;
}
const std::vector<JournalEntry>& SweepJournal::entries() const {
  return impl_->entries;
}
const std::vector<lp::WarmStart>& SweepJournal::warm_starts() const {
  return impl_->warm;
}
const std::vector<JournalRequest>& SweepJournal::requests() const {
  return impl_->requests;
}

bool SweepJournal::contains(double job_cap_watts) const {
  return find(job_cap_watts) != nullptr;
}

const JournalEntry* SweepJournal::find(double job_cap_watts) const {
  for (const JournalEntry& e : impl_->entries) {
    if (e.job_cap_watts == job_cap_watts) return &e;
  }
  return nullptr;
}

Result<SweepJournal> SweepJournal::open(const std::string& path) {
  SweepJournal journal;
  Impl& im = *journal.impl_;
  im.path = path;
  const bool existed = ::access(path.c_str(), F_OK) == 0;
  im.fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND | O_CLOEXEC,
                 0644);
  if (im.fd < 0) {
    return Status(StatusCode::kBadInput,
                  errno_message("cannot open journal", path));
  }
  // A freshly created journal is only durable once the directory entry
  // pointing at it is too: fsync the parent directory, or a power loss
  // after the first record's fsync can still lose the whole file.
  if (!existed && util::fsync_parent_dir(path) != 0) {
    return Status(StatusCode::kInternal,
                  errno_message("cannot fsync journal directory", path));
  }

  // Slurp the whole file; sweep journals are tens of KB.
  std::string data;
  {
    char buf[1 << 16];
    for (;;) {
      const ssize_t n = util::read_some(im.fd, buf, sizeof buf);
      if (n < 0) {
        return Status(StatusCode::kInternal,
                      errno_message("cannot read journal", path));
      }
      if (n == 0) break;
      data.append(buf, static_cast<std::size_t>(n));
    }
  }

  if (data.empty()) {
    std::string header = kMagic;
    header += '\n';
    Status st = im.write_durable(header);
    if (!st.ok()) return st;
    return journal;
  }

  // Version / magic check. A mismatch is another tool's (or a future
  // version's) file: move it aside rather than guess at its framing.
  const std::size_t header_end = data.find('\n');
  if (header_end == std::string::npos ||
      data.compare(0, header_end, kMagic) != 0) {
    const std::string moved = path + ".quarantined";
    ::close(im.fd);
    im.fd = -1;
    if (::rename(path.c_str(), moved.c_str()) != 0) {
      return Status(StatusCode::kInternal,
                    errno_message("cannot quarantine journal", path));
    }
    im.fd = ::open(path.c_str(),
                   O_RDWR | O_CREAT | O_EXCL | O_APPEND | O_CLOEXEC, 0644);
    if (im.fd < 0) {
      return Status(StatusCode::kInternal,
                    errno_message("cannot recreate journal", path));
    }
    // The rotate (rename + recreate) rewrote two directory entries; make
    // both durable before trusting the fresh journal.
    if (util::fsync_parent_dir(path) != 0) {
      return Status(StatusCode::kInternal,
                    errno_message("cannot fsync journal directory", path));
    }
    im.recovery.quarantined_file = true;
    im.recovery.quarantine_path = moved;
    std::string header = kMagic;
    header += '\n';
    Status st = im.write_durable(header);
    if (!st.ok()) return st;
    return journal;
  }

  // Frame-by-frame recovery. `good` tracks the offset just past the
  // last fully-verified frame; anything beyond it at the first sign of
  // damage is a torn tail and gets truncated away.
  std::size_t good = header_end + 1;
  std::size_t pos = good;
  while (pos < data.size()) {
    const std::size_t line_end = data.find('\n', pos);
    if (line_end == std::string::npos) break;  // torn frame header
    const std::string line = data.substr(pos, line_end - pos);
    char tag = 0;
    char crc_text[16] = {0};
    unsigned long long len = 0;
    if (std::sscanf(line.c_str(), "%c %15s %llu", &tag, crc_text, &len) !=
            3 ||
        (tag != 'R' && tag != 'B' && tag != 'Q') ||
        std::strlen(crc_text) != 8) {
      break;
    }
    const std::size_t payload_start = line_end + 1;
    if (len > data.size() - payload_start) break;  // torn payload
    const std::size_t payload_end = payload_start + len;
    if (payload_end >= data.size() || data[payload_end] != '\n') break;
    const std::string payload = data.substr(payload_start, len);
    char* end = nullptr;
    const std::uint32_t want =
        static_cast<std::uint32_t>(std::strtoul(crc_text, &end, 16));
    if (end == crc_text || *end != '\0' ||
        crc32(payload.data(), payload.size()) != want) {
      break;  // bit rot / torn write inside the payload
    }

    if (tag == 'R') {
      JournalEntry e;
      if (!parse_journal_entry(payload, &e)) break;
      if (journal.contains(e.job_cap_watts)) {
        ++im.recovery.duplicates_dropped;
      } else {
        im.entries.push_back(std::move(e));
        ++im.recovery.records;
      }
    } else if (tag == 'Q') {
      JournalRequest r;
      if (!parse_journal_request(payload, &r)) break;
      im.requests.push_back(std::move(r));
      ++im.recovery.request_records;
    } else {
      std::vector<lp::WarmStart> warm;
      if (!parse_warm_starts(payload, &warm)) break;
      im.warm = std::move(warm);
      ++im.recovery.basis_records;
    }
    pos = payload_end + 1;
    good = pos;
  }

  if (good < data.size()) {
    im.recovery.quarantined_bytes = static_cast<long>(data.size() - good);
    if (::ftruncate(im.fd, static_cast<off_t>(good)) != 0) {
      return Status(StatusCode::kInternal,
                    errno_message("cannot truncate torn journal", path));
    }
  }
  if (::lseek(im.fd, 0, SEEK_END) < 0) {
    return Status(StatusCode::kInternal,
                  errno_message("cannot seek journal", path));
  }
  return journal;
}

Status SweepJournal::append(const JournalEntry& entry) {
  if (contains(entry.job_cap_watts)) {
    ++impl_->recovery.duplicates_dropped;
    return Status::Ok();
  }
  Status st =
      impl_->write_durable(frame('R', serialize_journal_entry(entry)));
  if (!st.ok()) return st;
  impl_->entries.push_back(entry);
  ++impl_->recovery.records;
  return Status::Ok();
}

Status SweepJournal::append_request(const JournalRequest& request) {
  const std::string payload = serialize_journal_request(request);
  if (payload.empty()) {
    return Status(StatusCode::kBadInput,
                  "journal request needs a whitespace-free id/kind and at "
                  "least one cap");
  }
  Status st = impl_->write_durable(frame('Q', payload));
  if (!st.ok()) return st;
  impl_->requests.push_back(request);
  ++impl_->recovery.request_records;
  return Status::Ok();
}

Status SweepJournal::append_basis(const std::vector<lp::WarmStart>& warm) {
  bool any = false;
  for (const lp::WarmStart& w : warm) any = any || w.valid();
  if (!any) return Status::Ok();
  Status st = impl_->write_durable(frame('B', serialize_warm_starts(warm)));
  if (!st.ok()) return st;
  impl_->warm = warm;
  ++impl_->recovery.basis_records;
  return Status::Ok();
}

}  // namespace powerlim::robust
