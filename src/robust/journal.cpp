#include "robust/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "util/posix_io.h"

namespace powerlim::robust {

namespace {

constexpr char kMagic[] = "powerlim-journal v1";

std::string errno_message(const char* what, const std::string& path) {
  std::string msg = what;
  msg += " '";
  msg += path;
  msg += "': ";
  msg += std::strerror(errno);
  return msg;
}

/// Max-precision decimal: round-trips every finite double bit-exactly.
std::string format_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string crc_hex(std::uint32_t crc) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%08" PRIx32, crc);
  return buf;
}

/// Full append frame for one record.
std::string frame(char tag, const std::string& payload) {
  std::string out;
  out.reserve(payload.size() + 32);
  out += tag;
  out += ' ';
  out += crc_hex(crc32(payload.data(), payload.size()));
  out += ' ';
  out += std::to_string(payload.size());
  out += '\n';
  out += payload;
  out += '\n';
  return out;
}

std::string serialize_epoch(std::uint64_t epoch) {
  return "epoch=" + std::to_string(epoch);
}

bool parse_epoch(const std::string& payload, std::uint64_t* out) {
  constexpr char kPrefix[] = "epoch=";
  constexpr std::size_t kPrefixLen = sizeof(kPrefix) - 1;
  if (payload.compare(0, kPrefixLen, kPrefix) != 0 ||
      payload.size() <= kPrefixLen) {
    return false;
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long v =
      std::strtoull(payload.c_str() + kPrefixLen, &end, 10);
  if (errno != 0 || end == payload.c_str() + kPrefixLen || *end != '\0') {
    return false;
  }
  *out = v;
  return true;
}

/// Walks framed records in `data` starting at `start`, invoking
/// `on_frame` for each intact one (known tag, 8-hex CRC that matches,
/// newline terminator in place). Returns the offset just past the last
/// accepted frame; damage - or `on_frame` returning false - stops the
/// walk there. Shared by recovery, foreign-append absorption, the
/// replication apply path, and compaction so all four agree byte-for-
/// byte on what an intact frame is.
std::size_t scan_frames(
    const std::string& data, std::size_t start,
    const std::function<bool(char, const std::string&)>& on_frame) {
  std::size_t good = start;
  std::size_t pos = start;
  while (pos < data.size()) {
    const std::size_t line_end = data.find('\n', pos);
    if (line_end == std::string::npos) break;  // torn frame header
    const std::string line = data.substr(pos, line_end - pos);
    char tag = 0;
    char crc_text[16] = {0};
    unsigned long long len = 0;
    if (std::sscanf(line.c_str(), "%c %15s %llu", &tag, crc_text, &len) !=
            3 ||
        (tag != 'R' && tag != 'B' && tag != 'Q' && tag != 'E') ||
        std::strlen(crc_text) != 8) {
      break;
    }
    const std::size_t payload_start = line_end + 1;
    if (len > data.size() - payload_start) break;  // torn payload
    const std::size_t payload_end =
        payload_start + static_cast<std::size_t>(len);
    if (payload_end >= data.size() || data[payload_end] != '\n') break;
    const std::string payload = data.substr(payload_start, len);
    char* end = nullptr;
    const std::uint32_t want =
        static_cast<std::uint32_t>(std::strtoul(crc_text, &end, 16));
    if (end == crc_text || *end != '\0' ||
        crc32(payload.data(), payload.size()) != want) {
      break;  // bit rot / torn write inside the payload
    }
    if (!on_frame(tag, payload)) break;
    pos = payload_end + 1;
    good = pos;
  }
  return good;
}

}  // namespace

bool journal_entry_trusted(const JournalEntry& entry,
                           bool require_certificate) {
  if (entry.verdict != StatusCode::kOk) return true;
  if (!require_certificate) return true;
  // RunReport::to_json emits keys in a fixed order, so these exact
  // substrings appear iff the report is schema >= 4 and the accepted
  // solution passed verification. (The schema check alone is not enough:
  // a run with verification disabled also stamps schema 4.)
  const std::string& json = entry.report_json;
  const std::size_t v = json.find("\"schema_version\":");
  if (v == std::string::npos) return false;
  const int schema =
      static_cast<int>(std::strtol(json.c_str() + v + 17, nullptr, 10));
  if (schema < 4) return false;
  return json.find("\"certificate\":{\"checked\":true,\"ok\":true") !=
         std::string::npos;
}

std::string serialize_journal_entry(const JournalEntry& e) {
  std::string out = "cap=";
  out += format_double(e.job_cap_watts);
  out += " verdict=";
  out += to_string(e.verdict);
  out += " degraded=";
  out += e.degraded ? '1' : '0';
  out += " bound=";
  out += format_double(e.bound_seconds);
  out += " fallback=";
  out += e.fallback.empty() ? "-" : e.fallback;
  out += '\n';
  out += e.report_json;
  return out;
}

namespace {

bool take_field(std::istringstream& is, const char* key, std::string* value) {
  std::string tok;
  if (!(is >> tok)) return false;
  const std::size_t klen = std::strlen(key);
  if (tok.compare(0, klen, key) != 0 || tok.size() <= klen ||
      tok[klen] != '=') {
    return false;
  }
  *value = tok.substr(klen + 1);
  return true;
}

}  // namespace

namespace {

bool single_token(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') return false;
  }
  return true;
}

}  // namespace

std::string serialize_journal_request(const JournalRequest& r) {
  if (!single_token(r.id) || !single_token(r.kind) || r.caps.empty()) {
    return std::string();
  }
  std::string out = "req=";
  out += r.id;
  out += " kind=";
  out += r.kind;
  out += " deadline_ms=";
  out += format_double(r.deadline_ms);
  out += " caps=";
  for (std::size_t i = 0; i < r.caps.size(); ++i) {
    if (i) out += ',';
    out += format_double(r.caps[i]);
  }
  return out;
}

bool parse_journal_request(const std::string& payload, JournalRequest* out) {
  std::istringstream is(payload);
  std::string id, kind, deadline, caps;
  if (!take_field(is, "req", &id) || !take_field(is, "kind", &kind) ||
      !take_field(is, "deadline_ms", &deadline) ||
      !take_field(is, "caps", &caps)) {
    return false;
  }
  std::string extra;
  if (is >> extra) return false;
  JournalRequest r;
  r.id = id;
  r.kind = kind;
  char* end = nullptr;
  r.deadline_ms = std::strtod(deadline.c_str(), &end);
  if (end == deadline.c_str() || *end != '\0') return false;
  std::size_t pos = 0;
  while (pos <= caps.size()) {
    std::size_t comma = caps.find(',', pos);
    if (comma == std::string::npos) comma = caps.size();
    const std::string tok = caps.substr(pos, comma - pos);
    const double cap = std::strtod(tok.c_str(), &end);
    if (tok.empty() || end == tok.c_str() || *end != '\0') return false;
    r.caps.push_back(cap);
    pos = comma + 1;
  }
  if (r.caps.empty()) return false;
  *out = std::move(r);
  return true;
}

bool parse_journal_entry(const std::string& payload, JournalEntry* out) {
  const std::size_t nl = payload.find('\n');
  if (nl == std::string::npos) return false;
  std::istringstream head(payload.substr(0, nl));
  std::string cap, verdict, degraded, bound, fallback;
  if (!take_field(head, "cap", &cap) ||
      !take_field(head, "verdict", &verdict) ||
      !take_field(head, "degraded", &degraded) ||
      !take_field(head, "bound", &bound) ||
      !take_field(head, "fallback", &fallback)) {
    return false;
  }
  JournalEntry e;
  char* end = nullptr;
  e.job_cap_watts = std::strtod(cap.c_str(), &end);
  if (end == cap.c_str() || *end != '\0') return false;
  if (!status_code_from_string(verdict, &e.verdict)) return false;
  if (degraded != "0" && degraded != "1") return false;
  e.degraded = degraded == "1";
  e.bound_seconds = std::strtod(bound.c_str(), &end);
  if (end == bound.c_str() || *end != '\0') return false;
  e.fallback = fallback == "-" ? std::string() : fallback;
  e.report_json = payload.substr(nl + 1);
  *out = std::move(e);
  return true;
}

std::size_t journal_header_bytes() {
  return sizeof(kMagic) - 1 + 1;  // magic line + its newline
}

std::uint32_t crc32(const void* data, std::size_t len) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string serialize_warm_starts(const std::vector<lp::WarmStart>& warm) {
  std::string out;
  for (const lp::WarmStart& w : warm) {
    if (!w.valid()) {
      out += "-\n";
      continue;
    }
    out += std::to_string(w.status.size());
    out += ' ';
    out += std::to_string(w.basis.size());
    for (char s : w.status) {
      out += ' ';
      out += std::to_string(static_cast<int>(s));
    }
    for (int b : w.basis) {
      out += ' ';
      out += std::to_string(b);
    }
    out += '\n';
  }
  return out;
}

bool parse_warm_starts(const std::string& text,
                       std::vector<lp::WarmStart>* out) {
  std::vector<lp::WarmStart> warm;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    lp::WarmStart w;
    if (line == "-") {
      warm.push_back(std::move(w));
      continue;
    }
    std::istringstream is(line);
    std::size_t ns = 0, nb = 0;
    if (!(is >> ns >> nb)) return false;
    // Basis snapshots are bounded by the LP size; a journal claiming a
    // multi-million-entry basis is corrupt, not big.
    if (ns > 1'000'000 || nb > 1'000'000) return false;
    w.status.reserve(ns);
    w.basis.reserve(nb);
    for (std::size_t i = 0; i < ns; ++i) {
      int v = 0;
      if (!(is >> v)) return false;
      w.status.push_back(static_cast<char>(v));
    }
    for (std::size_t i = 0; i < nb; ++i) {
      int v = 0;
      if (!(is >> v)) return false;
      w.basis.push_back(v);
    }
    std::string extra;
    if (is >> extra) return false;
    warm.push_back(std::move(w));
  }
  *out = std::move(warm);
  return true;
}

struct SweepJournal::Impl {
  std::string path;
  int fd = -1;
  RecoverySummary recovery;
  std::vector<JournalEntry> entries;
  std::vector<lp::WarmStart> warm;
  std::vector<JournalRequest> requests;
  std::uint64_t epoch = 0;
  bool pinned = false;
  std::uint64_t pinned_epoch = 0;
  /// Offset just past the last frame this handle has absorbed; always a
  /// frame boundary of the bytes it has seen.
  std::uint64_t durable_size = 0;
  std::function<void()> listener;

  ~Impl() {
    if (fd >= 0) ::close(fd);
  }

  /// Parses one intact frame's payload and (when `apply`) folds it into
  /// the recovered state. Returns false on an unparseable payload.
  bool absorb_frame(char tag, const std::string& payload, bool apply) {
    if (tag == 'R') {
      JournalEntry e;
      if (!parse_journal_entry(payload, &e)) return false;
      if (!apply) return true;
      for (const JournalEntry& have : entries) {
        if (have.job_cap_watts == e.job_cap_watts) {
          ++recovery.duplicates_dropped;
          return true;
        }
      }
      entries.push_back(std::move(e));
      ++recovery.records;
    } else if (tag == 'Q') {
      JournalRequest r;
      if (!parse_journal_request(payload, &r)) return false;
      if (!apply) return true;
      requests.push_back(std::move(r));
      ++recovery.request_records;
    } else if (tag == 'E') {
      std::uint64_t e = 0;
      if (!parse_epoch(payload, &e)) return false;
      if (!apply) return true;
      if (e > epoch) epoch = e;
      ++recovery.epoch_records;
    } else {
      std::vector<lp::WarmStart> w;
      if (!parse_warm_starts(payload, &w)) return false;
      if (!apply) return true;
      warm = std::move(w);
      ++recovery.basis_records;
    }
    return true;
  }

  /// Catches this handle up with frames other writers appended to the
  /// file (O_APPEND keeps them whole). Only complete intact frames are
  /// absorbed: a writer caught mid-write leaves a partial tail that the
  /// next absorption re-reads once it is complete. This is how a fenced
  /// writer learns about a foreign epoch stamp before it writes.
  Status absorb_external() {
    struct stat st {};
    if (::fstat(fd, &st) != 0) {
      return Status(StatusCode::kInternal,
                    errno_message("cannot stat journal", path));
    }
    const auto size = static_cast<std::uint64_t>(st.st_size);
    if (size <= durable_size) return Status::Ok();
    std::string delta;
    delta.resize(static_cast<std::size_t>(size - durable_size));
    std::size_t got = 0;
    while (got < delta.size()) {
      const ssize_t n =
          ::pread(fd, &delta[got], delta.size() - got,
                  static_cast<off_t>(durable_size + got));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      got += static_cast<std::size_t>(n);
    }
    delta.resize(got);
    const std::size_t good =
        scan_frames(delta, 0, [this](char tag, const std::string& payload) {
          return absorb_frame(tag, payload, true);
        });
    durable_size += good;
    return Status::Ok();
  }

  /// Pre-append gate: absorb foreign appends, then enforce the epoch
  /// fence. A pinned writer refuses to append once any writer has
  /// stamped a higher epoch.
  Status prepare_append() {
    Status st = absorb_external();
    if (!st.ok()) return st;
    if (pinned && epoch > pinned_epoch) {
      return Status(StatusCode::kStaleEpoch,
                    "journal '" + path + "' carries epoch " +
                        std::to_string(epoch) +
                        " but this writer is fenced at epoch " +
                        std::to_string(pinned_epoch));
    }
    return Status::Ok();
  }

  Status write_durable(const std::string& bytes) {
    // One EINTR-retried write of the whole frame (the fd is O_APPEND, so
    // concurrent appenders from other processes cannot interleave with
    // or clobber it), then a retried fsync for durability.
    const std::uint64_t before = durable_size;
    if (util::write_full(fd, bytes.data(), bytes.size()) != 0) {
      return Status(StatusCode::kInternal,
                    errno_message("journal write failed", path));
    }
    if (util::fsync_full(fd) != 0) {
      return Status(StatusCode::kInternal,
                    errno_message("journal fsync failed", path));
    }
    struct stat st {};
    if (::fstat(fd, &st) == 0 &&
        static_cast<std::uint64_t>(st.st_size) == before + bytes.size()) {
      // Common case: nothing interleaved, so the new end of file is a
      // frame boundary this handle has fully absorbed.
      durable_size = before + bytes.size();
    }
    // Otherwise a concurrent appender interleaved ahead of this write.
    // Keep the old boundary: the next absorption re-scans from it, picks
    // up the foreign frames, and re-sees this write as a duplicate
    // (duplicate caps dedup; epoch stamps are max-merged).
    if (listener) listener();
    return Status::Ok();
  }
};

SweepJournal::SweepJournal() : impl_(std::make_unique<Impl>()) {}
SweepJournal::~SweepJournal() = default;
SweepJournal::SweepJournal(SweepJournal&&) noexcept = default;
SweepJournal& SweepJournal::operator=(SweepJournal&&) noexcept = default;

const std::string& SweepJournal::path() const { return impl_->path; }
const RecoverySummary& SweepJournal::recovery() const {
  return impl_->recovery;
}
const std::vector<JournalEntry>& SweepJournal::entries() const {
  return impl_->entries;
}
const std::vector<lp::WarmStart>& SweepJournal::warm_starts() const {
  return impl_->warm;
}
const std::vector<JournalRequest>& SweepJournal::requests() const {
  return impl_->requests;
}

bool SweepJournal::contains(double job_cap_watts) const {
  return find(job_cap_watts) != nullptr;
}

const JournalEntry* SweepJournal::find(double job_cap_watts) const {
  for (const JournalEntry& e : impl_->entries) {
    if (e.job_cap_watts == job_cap_watts) return &e;
  }
  return nullptr;
}

Result<SweepJournal> SweepJournal::open(const std::string& path) {
  SweepJournal journal;
  Impl& im = *journal.impl_;
  im.path = path;
  const bool existed = ::access(path.c_str(), F_OK) == 0;
  im.fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND | O_CLOEXEC,
                 0644);
  if (im.fd < 0) {
    return Status(StatusCode::kBadInput,
                  errno_message("cannot open journal", path));
  }
  // A freshly created journal is only durable once the directory entry
  // pointing at it is too: fsync the parent directory, or a power loss
  // after the first record's fsync can still lose the whole file.
  if (!existed && util::fsync_parent_dir(path) != 0) {
    return Status(StatusCode::kInternal,
                  errno_message("cannot fsync journal directory", path));
  }

  // Slurp the whole file; sweep journals are tens of KB.
  std::string data;
  {
    char buf[1 << 16];
    for (;;) {
      const ssize_t n = util::read_some(im.fd, buf, sizeof buf);
      if (n < 0) {
        return Status(StatusCode::kInternal,
                      errno_message("cannot read journal", path));
      }
      if (n == 0) break;
      data.append(buf, static_cast<std::size_t>(n));
    }
  }

  if (data.empty()) {
    std::string header = kMagic;
    header += '\n';
    Status st = im.write_durable(header);
    if (!st.ok()) return st;
    return journal;
  }

  // Version / magic check. A mismatch is another tool's (or a future
  // version's) file: move it aside rather than guess at its framing.
  const std::size_t header_end = data.find('\n');
  if (header_end == std::string::npos ||
      data.compare(0, header_end, kMagic) != 0) {
    const std::string moved = path + ".quarantined";
    ::close(im.fd);
    im.fd = -1;
    if (::rename(path.c_str(), moved.c_str()) != 0) {
      return Status(StatusCode::kInternal,
                    errno_message("cannot quarantine journal", path));
    }
    im.fd = ::open(path.c_str(),
                   O_RDWR | O_CREAT | O_EXCL | O_APPEND | O_CLOEXEC, 0644);
    if (im.fd < 0) {
      return Status(StatusCode::kInternal,
                    errno_message("cannot recreate journal", path));
    }
    // The rotate (rename + recreate) rewrote two directory entries; make
    // both durable before trusting the fresh journal.
    if (util::fsync_parent_dir(path) != 0) {
      return Status(StatusCode::kInternal,
                    errno_message("cannot fsync journal directory", path));
    }
    im.recovery.quarantined_file = true;
    im.recovery.quarantine_path = moved;
    std::string header = kMagic;
    header += '\n';
    Status st = im.write_durable(header);
    if (!st.ok()) return st;
    return journal;
  }

  // Frame-by-frame recovery. `good` tracks the offset just past the
  // last fully-verified frame; anything beyond it at the first sign of
  // damage is a torn tail and gets truncated away.
  const std::size_t good =
      scan_frames(data, header_end + 1,
                  [&im](char tag, const std::string& payload) {
                    return im.absorb_frame(tag, payload, true);
                  });
  im.durable_size = good;

  if (good < data.size()) {
    im.recovery.quarantined_bytes = static_cast<long>(data.size() - good);
    if (::ftruncate(im.fd, static_cast<off_t>(good)) != 0) {
      return Status(StatusCode::kInternal,
                    errno_message("cannot truncate torn journal", path));
    }
  }
  if (::lseek(im.fd, 0, SEEK_END) < 0) {
    return Status(StatusCode::kInternal,
                  errno_message("cannot seek journal", path));
  }
  return journal;
}

Status SweepJournal::append(const JournalEntry& entry) {
  Status st = impl_->prepare_append();
  if (!st.ok()) return st;
  if (contains(entry.job_cap_watts)) {
    ++impl_->recovery.duplicates_dropped;
    return Status::Ok();
  }
  st = impl_->write_durable(frame('R', serialize_journal_entry(entry)));
  if (!st.ok()) return st;
  impl_->entries.push_back(entry);
  ++impl_->recovery.records;
  return Status::Ok();
}

Status SweepJournal::append_request(const JournalRequest& request) {
  const std::string payload = serialize_journal_request(request);
  if (payload.empty()) {
    return Status(StatusCode::kBadInput,
                  "journal request needs a whitespace-free id/kind and at "
                  "least one cap");
  }
  Status st = impl_->prepare_append();
  if (!st.ok()) return st;
  st = impl_->write_durable(frame('Q', payload));
  if (!st.ok()) return st;
  impl_->requests.push_back(request);
  ++impl_->recovery.request_records;
  return Status::Ok();
}

Status SweepJournal::append_basis(const std::vector<lp::WarmStart>& warm) {
  bool any = false;
  for (const lp::WarmStart& w : warm) any = any || w.valid();
  if (!any) return Status::Ok();
  Status st = impl_->prepare_append();
  if (!st.ok()) return st;
  st = impl_->write_durable(frame('B', serialize_warm_starts(warm)));
  if (!st.ok()) return st;
  impl_->warm = warm;
  ++impl_->recovery.basis_records;
  return Status::Ok();
}

std::uint64_t SweepJournal::epoch() const { return impl_->epoch; }

Status SweepJournal::advance_epoch(std::uint64_t epoch) {
  Impl& im = *impl_;
  Status st = im.absorb_external();
  if (!st.ok()) return st;
  if (epoch < im.epoch) {
    return Status(StatusCode::kStaleEpoch,
                  "journal '" + im.path + "' already carries epoch " +
                      std::to_string(im.epoch) + "; refusing to regress to " +
                      std::to_string(epoch));
  }
  if (epoch == im.epoch) return Status::Ok();
  st = im.write_durable(frame('E', serialize_epoch(epoch)));
  if (!st.ok()) return st;
  im.epoch = epoch;
  ++im.recovery.epoch_records;
  return Status::Ok();
}

void SweepJournal::pin_epoch(std::uint64_t epoch) {
  impl_->pinned = true;
  impl_->pinned_epoch = epoch;
}

std::uint64_t SweepJournal::size_bytes() {
  // A failed refresh (fstat error on the journal fd) leaves durable_size
  // at its last known-good value, which is the right answer for a size
  // query: callers use it as a replication watermark, never as proof of
  // durability.
  (void)impl_->absorb_external();
  return impl_->durable_size;
}

void SweepJournal::set_append_listener(std::function<void()> listener) {
  impl_->listener = std::move(listener);
}

Status SweepJournal::append_raw(std::uint64_t offset,
                                const std::string& bytes) {
  Impl& im = *impl_;
  Status st = im.absorb_external();
  if (!st.ok()) return st;
  if (offset != im.durable_size) {
    return Status(StatusCode::kBadInput,
                  "replication stream at byte " + std::to_string(offset) +
                      " but journal '" + im.path + "' is at " +
                      std::to_string(im.durable_size) + "; resync required");
  }
  if (bytes.empty()) return Status::Ok();
  // Validate before writing: the whole batch must be intact frames, or
  // nothing is applied (a torn replication read never half-lands).
  const std::size_t good =
      scan_frames(bytes, 0, [&im](char tag, const std::string& payload) {
        return im.absorb_frame(tag, payload, false);
      });
  if (good != bytes.size()) {
    return Status(StatusCode::kWireMalformed,
                  "replicated journal bytes are torn or corrupt (" +
                      std::to_string(good) + " of " +
                      std::to_string(bytes.size()) +
                      " bytes verified); nothing applied");
  }
  st = im.write_durable(bytes);
  if (!st.ok()) return st;
  scan_frames(bytes, 0, [&im](char tag, const std::string& payload) {
    return im.absorb_frame(tag, payload, true);
  });
  return Status::Ok();
}

CompactResult compact_journal(const std::string& path,
                              const CompactOptions& options) {
  CompactResult result;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    result.status = Status(StatusCode::kBadInput,
                           errno_message("cannot open journal", path));
    return result;
  }
  std::string data;
  {
    char buf[1 << 16];
    for (;;) {
      const ssize_t n = util::read_some(fd, buf, sizeof buf);
      if (n < 0) {
        ::close(fd);
        result.status = Status(StatusCode::kInternal,
                               errno_message("cannot read journal", path));
        return result;
      }
      if (n == 0) break;
      data.append(buf, static_cast<std::size_t>(n));
    }
  }
  ::close(fd);
  result.bytes_before = data.size();

  const std::size_t header_end = data.find('\n');
  if (header_end == std::string::npos ||
      data.compare(0, header_end, kMagic) != 0) {
    result.status = Status(StatusCode::kBadInput,
                           "'" + path + "' is not a " + kMagic + " file");
    return result;
  }

  // Raw scan (not SweepJournal::open): recovery dedups first-wins, but
  // compaction must see *every* R frame to keep the latest proven one.
  struct CapRecord {
    double cap;
    std::string payload;
  };
  std::vector<CapRecord> kept;  // first-appearance order of caps
  std::vector<std::string> request_payloads;
  std::vector<JournalRequest> request_parsed;
  std::string basis_payload;
  int r_frames = 0;
  int basis_frames = 0;
  int epoch_frames = 0;
  std::uint64_t epoch = 0;
  scan_frames(data, header_end + 1, [&](char tag,
                                        const std::string& payload) {
    if (tag == 'R') {
      JournalEntry e;
      if (!parse_journal_entry(payload, &e)) return false;
      ++r_frames;
      // The certificate gate is re-checked here: a kOk record whose
      // report no longer proves its bound does not survive compaction
      // (the cap re-solves on the next resume instead).
      if (!journal_entry_trusted(e, options.require_certificate)) {
        return true;
      }
      for (CapRecord& c : kept) {
        if (c.cap == e.job_cap_watts) {
          c.payload = payload;  // latest proven record wins
          return true;
        }
      }
      kept.push_back(CapRecord{e.job_cap_watts, payload});
    } else if (tag == 'Q') {
      JournalRequest r;
      if (!parse_journal_request(payload, &r)) return false;
      request_payloads.push_back(payload);
      request_parsed.push_back(std::move(r));
    } else if (tag == 'E') {
      std::uint64_t e = 0;
      if (!parse_epoch(payload, &e)) return false;
      ++epoch_frames;
      if (e > epoch) epoch = e;
    } else {
      std::vector<lp::WarmStart> w;
      if (!parse_warm_starts(payload, &w)) return false;
      ++basis_frames;
      basis_payload = payload;
    }
    return true;
  });
  // A torn tail past the last intact frame does not survive the rewrite
  // (recovery would have truncated it on the next open anyway).

  result.records_kept = static_cast<int>(kept.size());
  result.records_dropped = r_frames - static_cast<int>(kept.size());
  result.epoch = epoch;
  result.epoch_records_dropped = epoch_frames > 0 ? epoch_frames - 1 : 0;
  result.basis_dropped = basis_frames > 0 ? basis_frames - 1 : 0;

  std::string out;
  out += kMagic;
  out += '\n';
  if (epoch > 0) out += frame('E', serialize_epoch(epoch));
  for (const CapRecord& c : kept) out += frame('R', c.payload);
  for (std::size_t i = 0; i < request_parsed.size(); ++i) {
    bool owes = false;
    for (double cap : request_parsed[i].caps) {
      bool have = false;
      for (const CapRecord& c : kept) have = have || c.cap == cap;
      if (!have) {
        owes = true;
        break;
      }
    }
    if (owes) {
      out += frame('Q', request_payloads[i]);
      ++result.requests_kept;
    } else {
      ++result.requests_dropped;
    }
  }
  if (!basis_payload.empty()) out += frame('B', basis_payload);

  const std::string tmp = path + ".compact.tmp";
  const int out_fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (out_fd < 0) {
    result.status = Status(StatusCode::kInternal,
                           errno_message("cannot create", tmp));
    return result;
  }
  if (util::write_full(out_fd, out.data(), out.size()) != 0 ||
      util::fsync_full(out_fd) != 0) {
    ::close(out_fd);
    result.status =
        Status(StatusCode::kInternal, errno_message("cannot write", tmp));
    return result;
  }
  ::close(out_fd);
  result.bytes_after = out.size();
  if (options.crash_before_rename) {
    // Simulated crash: the fsynced replacement exists but was never
    // renamed in. The original journal is untouched and the `.compact.
    // tmp` leftover is inert (a re-run recreates it with O_TRUNC).
    result.status = Status::Ok();
    return result;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    result.status = Status(StatusCode::kInternal,
                           errno_message("cannot rename over", path));
    return result;
  }
  if (util::fsync_parent_dir(path) != 0) {
    result.status = Status(
        StatusCode::kInternal,
        errno_message("cannot fsync journal directory", path));
    return result;
  }
  result.renamed = true;
  result.status = Status::Ok();
  return result;
}

}  // namespace powerlim::robust
