#include "robust/remote_worker.h"

#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <exception>
#include <fstream>
#include <new>
#include <optional>
#include <ostream>
#include <sstream>
#include <utility>

#include "core/schedule_io.h"
#include "dag/trace_io.h"
#include "machine/power_model.h"
#include "robust/journal.h"
#include "robust/wire.h"
#include "util/log.h"
#include "util/posix_io.h"
#include "util/rng.h"

namespace powerlim::robust {
namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

void sleep_ms(double ms) {
  if (ms <= 0.0) return;
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(ms / 1000.0);
  ts.tv_nsec = static_cast<long>(std::fmod(ms, 1000.0) * 1e6);
  nanosleep(&ts, nullptr);
}

long child_peak_rss_kb() {
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<long>(ru.ru_maxrss);
}

JournalEntry entry_from_report(const RunReport& rep) {
  JournalEntry e;
  e.job_cap_watts = rep.job_cap_watts;
  e.verdict = rep.verdict;
  e.degraded = rep.degraded;
  e.bound_seconds = rep.bound_seconds;
  e.fallback = rep.fallback;
  e.report_json = rep.to_json();
  return e;
}

}  // namespace

// --- handshake / job payloads ----------------------------------------

std::string encode_handshake(const RemoteSolveConfig& config,
                             const dag::TaskGraph& graph) {
  std::ostringstream os;
  os << kRemoteProtoMagic << "\n";
  char line[192];
  std::snprintf(line, sizeof line,
                "config cap_deadline_ms=%.17g validate_replay=%d "
                "verify_certificate=%d discrete=%d\n",
                config.cap_deadline_ms, config.validate_replay ? 1 : 0,
                config.verify_certificate ? 1 : 0, config.discrete ? 1 : 0);
  os << line;
  dag::write_trace(os, graph);
  return os.str();
}

bool decode_handshake(const std::string& payload, RemoteSolveConfig* config,
                      std::string* trace_text, std::string* error) {
  const std::size_t eol1 = payload.find('\n');
  if (eol1 == std::string::npos) {
    if (error) *error = "truncated handshake (no magic line)";
    return false;
  }
  if (payload.substr(0, eol1) != kRemoteProtoMagic) {
    if (error) {
      *error = "protocol mismatch (want \"" + std::string(kRemoteProtoMagic) +
               "\", got \"" + payload.substr(0, std::min<std::size_t>(eol1, 64)) +
               "\")";
    }
    return false;
  }
  const std::size_t eol2 = payload.find('\n', eol1 + 1);
  if (eol2 == std::string::npos) {
    if (error) *error = "truncated handshake (no config line)";
    return false;
  }
  const std::string line = payload.substr(eol1 + 1, eol2 - eol1 - 1);
  RemoteSolveConfig c;
  int replay = 1;
  int certificate = 1;
  int discrete = 0;
  if (std::sscanf(line.c_str(),
                  "config cap_deadline_ms=%lg validate_replay=%d "
                  "verify_certificate=%d discrete=%d",
                  &c.cap_deadline_ms, &replay, &certificate, &discrete) != 4) {
    if (error) *error = "malformed handshake config line";
    return false;
  }
  c.validate_replay = replay != 0;
  c.verify_certificate = certificate != 0;
  c.discrete = discrete != 0;
  if (config) *config = c;
  if (trace_text) *trace_text = payload.substr(eol2 + 1);
  return true;
}

std::string encode_job(double job_cap_watts, int attempt) {
  char line[96];
  std::snprintf(line, sizeof line, "cap=%.17g attempt=%d", job_cap_watts,
                attempt);
  return line;
}

bool decode_job(const std::string& payload, double* job_cap_watts,
                int* attempt) {
  double cap = 0.0;
  int att = 0;
  if (std::sscanf(payload.c_str(), "cap=%lg attempt=%d", &cap, &att) != 2) {
    return false;
  }
  if (job_cap_watts) *job_cap_watts = cap;
  if (attempt) *attempt = att;
  return true;
}

// --- serve-worker ----------------------------------------------------

namespace {

/// One accepted scheduler connection with its framing state.
struct ServeConn {
  int fd = -1;
  FrameStream stream;
};

enum class RecvOutcome { kFrame, kDisconnected, kCancelled, kCorrupt };

/// Blocks (in 100 ms poll slices, cancel-checked) until one complete
/// frame is decoded. Used between jobs, where no heartbeats flow.
RecvOutcome recv_frame(ServeConn& conn, WireFrame* frame,
                       const util::CancelToken* cancel) {
  for (;;) {
    const WireDecode d = conn.stream.next(frame);
    if (d == WireDecode::kOk) return RecvOutcome::kFrame;
    if (conn.stream.poisoned()) return RecvOutcome::kCorrupt;
    if (cancel && cancel->cancelled()) return RecvOutcome::kCancelled;
    struct pollfd pfd;
    pfd.fd = conn.fd;
    pfd.events = POLLIN;
    const int ready =
        util::retry_eintr([&] { return ::poll(&pfd, 1, 100); });
    if (ready < 0) return RecvOutcome::kDisconnected;
    if (ready == 0) continue;
    std::string chunk;
    const util::IoStatus st = util::recv_some(conn.fd, &chunk);
    if (st == util::IoStatus::kDisconnected || st == util::IoStatus::kError) {
      return RecvOutcome::kDisconnected;
    }
    conn.stream.feed(chunk);
  }
}

bool send_frame(int fd, char tag, const std::string& payload) {
  const std::string frame = encode_wire_frame(tag, payload);
  if (frame.empty()) return false;
  return util::send_all(fd, frame.data(), frame.size(), 10.0) ==
         util::IoStatus::kOk;
}

/// The forked per-job solve. Mirrors the local pool's child exactly
/// (same rlimits, same exit codes); additionally ships the accepted
/// schedule as an 'S' frame so the scheduler's certificate gate can
/// re-verify the result it cannot otherwise trust.
[[noreturn]] void serve_child_run(int write_fd, const dag::TaskGraph& graph,
                                  const machine::PowerModel& model,
                                  const machine::ClusterSpec& cluster,
                                  const RemoteSolveConfig& config, double cap,
                                  int attempt, bool lie,
                                  const ServeWorkerOptions& options) {
  util::set_log_worker_id(static_cast<int>(::getpid() % 1000));
  apply_worker_limits(options.limits);
  JournalEntry entry;
  std::string solution;
  try {
    SolveDriverOptions opt;
    opt.cap_deadline_ms = config.cap_deadline_ms;
    opt.validate_replay = config.validate_replay;
    opt.verify_certificate = lie ? false : config.verify_certificate;
    opt.lp.discrete = config.discrete;
    opt.cancel = options.cancel;
    FaultPlan lie_plan;
    std::optional<ScopedFaultPlan> lie_scope;
    if (lie) {
      // The Byzantine worker: skip local verification and ship a bound
      // shrunk just past feasibility. Invisible to replay; only the
      // scheduler's exact certificate gate can catch it.
      lie_plan.corrupt_solution_epsilon = 0.05;
      lie_scope.emplace(lie_plan);
    }
    const SolveDriver driver(graph, model, cluster, opt);
    SolveOutcome out = driver.solve(cap);
    out.report.worker.isolated = true;
    out.report.worker.spawns = attempt + 1;
    out.report.worker.retries = attempt;
    out.report.worker.peak_rss_kb = child_peak_rss_kb();
    entry = entry_from_report(out.report);
    if (out.report.verdict == StatusCode::kOk) {
      core::SavedSchedule saved;
      saved.schedule = out.lp.schedule;
      saved.frontiers = out.lp.frontiers;
      saved.vertex_time = out.lp.vertex_time;
      saved.job_cap_watts = cap;
      saved.makespan = out.lp.makespan;
      std::ostringstream ss;
      core::write_schedule(ss, saved);
      solution = ss.str();
    }
  } catch (const std::bad_alloc&) {
    _exit(kWorkerExitOom);
  } catch (...) {
    _exit(kWorkerExitFailure);
  }
  Status st = write_wire_frame(write_fd, 'R', serialize_journal_entry(entry));
  if (st.ok() && !solution.empty()) {
    st = write_wire_frame(write_fd, 'S', solution);
  }
  _exit(st.ok() ? 0 : kWorkerExitFailure);
}

enum class JobServe { kServed, kClientGone, kCancelled };

/// Forks one solve child for the job and supervises it: heartbeats to
/// the scheduler while it runs, client-EOF kills it, cancellation drains
/// it gracefully (SIGTERM -> the child's pivot-granularity cancel ->
/// its final 'R' frame is still flushed). Worker-side fault injection
/// happens here, on the *delivery* of an honest result (except kLie,
/// which corrupts the solve itself).
JobServe supervise_job(ServeConn& conn, const dag::TaskGraph& graph,
                       const machine::PowerModel& model,
                       const machine::ClusterSpec& cluster,
                       const RemoteSolveConfig& config, double cap,
                       int attempt, double wall_seconds,
                       const ServeWorkerOptions& options, std::ostream& err) {
  const bool injured =
      options.fault != NetFault::kNone && attempt < options.fault_attempts;

  if (injured && options.fault == NetFault::kStall) {
    // Dead-peer simulation: accept the job, then fall silent. Drain the
    // socket so the eventual client disconnect is observed.
    for (;;) {
      if (options.cancel && options.cancel->cancelled()) {
        return JobServe::kCancelled;
      }
      struct pollfd pfd;
      pfd.fd = conn.fd;
      pfd.events = POLLIN;
      const int ready =
          util::retry_eintr([&] { return ::poll(&pfd, 1, 100); });
      if (ready < 0) return JobServe::kClientGone;
      if (ready == 0) continue;
      std::string sink;
      const util::IoStatus st = util::recv_some(conn.fd, &sink);
      if (st == util::IoStatus::kDisconnected ||
          st == util::IoStatus::kError) {
        return JobServe::kClientGone;
      }
    }
  }

  const bool lie = injured && options.fault == NetFault::kLie;

  int fds[2];
  if (::pipe(fds) != 0) {
    send_frame(conn.fd, 'E',
               std::string("worker-crashed cannot pipe: ") +
                   std::strerror(errno));
    return JobServe::kServed;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    send_frame(conn.fd, 'E',
               std::string("worker-crashed cannot fork: ") +
                   std::strerror(errno));
    return JobServe::kServed;
  }
  if (pid == 0) {
    ::close(fds[0]);
    ::close(conn.fd);
    serve_child_run(fds[1], graph, model, cluster, config, cap, attempt, lie,
                    options);
  }
  ::close(fds[1]);
  const int pipe_fd = fds[0];

  const Clock::time_point start = Clock::now();
  Clock::time_point last_beat = start;
  // kSlow widens the heartbeat cadence: every frame arrives late, but
  // below the scheduler's dead-peer threshold - slow, provably alive.
  const double beat_interval =
      options.heartbeat_ms +
      (injured && options.fault == NetFault::kSlow ? options.slow_delay_ms
                                                   : 0.0);
  bool termed = false;
  bool killed = false;
  bool deadline_killed = false;
  bool client_gone = false;
  Clock::time_point term_at = start;
  std::string pipe_bytes;

  for (;;) {
    const Clock::time_point now = Clock::now();
    if (options.cancel && options.cancel->cancelled() && !termed && !killed) {
      ::kill(pid, SIGTERM);  // graceful: the child flushes a kCancelled 'R'
      termed = true;
      term_at = now;
    }
    if (termed && !killed && ms_between(term_at, now) > 5000.0) {
      ::kill(pid, SIGKILL);
      killed = true;
    }
    if (wall_seconds > 0.0 && !killed &&
        ms_between(start, now) > wall_seconds * 1000.0) {
      ::kill(pid, SIGKILL);
      killed = true;
      deadline_killed = true;
    }
    if (!client_gone && ms_between(last_beat, now) >= beat_interval) {
      if (!send_frame(conn.fd, 'H', "")) client_gone = true;
      last_beat = now;
    }
    if (client_gone && !killed) {
      ::kill(pid, SIGKILL);
      killed = true;
    }

    struct pollfd pfds[2];
    pfds[0].fd = pipe_fd;
    pfds[0].events = POLLIN;
    pfds[1].fd = conn.fd;
    pfds[1].events = POLLIN;
    const int ready = util::retry_eintr(
        [&] { return ::poll(pfds, client_gone ? 1 : 2, 50); });
    if (ready > 0 && !client_gone && (pfds[1].revents & (POLLIN | POLLHUP))) {
      std::string chunk;
      const util::IoStatus st = util::recv_some(conn.fd, &chunk);
      if (st == util::IoStatus::kDisconnected ||
          st == util::IoStatus::kError) {
        client_gone = true;
      } else {
        conn.stream.feed(chunk);  // e.g. a pipelined 'Q'
      }
    }
    if (ready > 0 && (pfds[0].revents & (POLLIN | POLLHUP))) {
      char buf[4096];
      const ssize_t n = util::read_some(pipe_fd, buf, sizeof buf);
      if (n > 0) {
        pipe_bytes.append(buf, static_cast<std::size_t>(n));
      } else if (n == 0) {
        break;  // child closed its pipe: done (or dead)
      }
    }
  }
  ::close(pipe_fd);
  int wait_status = 0;
  util::retry_eintr([&] { return ::waitpid(pid, &wait_status, 0); });

  if (client_gone) return JobServe::kClientGone;

  const WorkerAttemptVerdict v =
      classify_worker_exit(deadline_killed, wait_status, pipe_bytes, cap);

  if (v.outcome != WorkerOutcome::kOk) {
    const std::string payload =
        std::string(to_string(v.outcome)) + " " + v.detail;
    if (!send_frame(conn.fd, 'E', payload)) return JobServe::kClientGone;
    return (options.cancel && options.cancel->cancelled())
               ? JobServe::kCancelled
               : JobServe::kServed;
  }

  std::string result = encode_wire_frame('R', serialize_journal_entry(v.entry));
  if (injured && options.fault == NetFault::kDrop) {
    // Torn frame: ship half the result, then hang up.
    util::send_all(conn.fd, result.data(), result.size() / 2, 10.0);
    ::shutdown(conn.fd, SHUT_RDWR);
    return JobServe::kClientGone;
  }
  if (injured && options.fault == NetFault::kCorrupt) {
    // Flip one payload byte but keep the original CRC in the header:
    // the scheduler's decoder must reject the frame, not misread it.
    const std::size_t body = result.find('\n');
    if (body != std::string::npos && body + 1 < result.size()) {
      result[body + 1] ^= 0x20;
    }
  }
  if (injured && options.fault == NetFault::kSlow) {
    sleep_ms(options.slow_delay_ms);
  }
  if (util::send_all(conn.fd, result.data(), result.size(), 10.0) !=
      util::IoStatus::kOk) {
    return JobServe::kClientGone;
  }
  if (!v.solution_text.empty() &&
      !send_frame(conn.fd, 'S', v.solution_text)) {
    return JobServe::kClientGone;
  }
  if (options.cancel && options.cancel->cancelled()) {
    return JobServe::kCancelled;
  }
  (void)err;
  return JobServe::kServed;
}

/// One scheduler connection: handshake, then jobs until 'Q' / EOF /
/// cancellation.
void handle_connection(int fd, const ServeWorkerOptions& options,
                       std::ostream& err) {
  ServeConn conn;
  conn.fd = fd;

  WireFrame frame;
  const RecvOutcome hs = recv_frame(conn, &frame, options.cancel);
  if (hs != RecvOutcome::kFrame) {
    if (hs == RecvOutcome::kCorrupt) {
      err << "serve-worker: rejecting connection: " << conn.stream.last_error()
          << "\n";
      send_frame(fd, 'A', "error " + conn.stream.last_error());
    }
    return;
  }
  if (frame.tag != 'T') {
    send_frame(fd, 'A', "error expected handshake frame");
    return;
  }
  RemoteSolveConfig config;
  std::string trace_text;
  std::string hs_error;
  if (!decode_handshake(frame.payload, &config, &trace_text, &hs_error)) {
    err << "serve-worker: bad handshake: " << hs_error << "\n";
    send_frame(fd, 'A', "error " + hs_error);
    return;
  }
  std::optional<dag::TaskGraph> graph;
  try {
    std::istringstream in(trace_text);
    graph.emplace(dag::read_trace(in, "<remote>"));
  } catch (const std::exception& e) {
    err << "serve-worker: bad trace in handshake: " << e.what() << "\n";
    send_frame(fd, 'A', std::string("error bad trace: ") + e.what());
    return;
  }
  // The scheduler solves against the CLI's default machine model; the
  // worker must build the identical one for byte-identical results.
  const machine::PowerModel model{machine::SocketSpec{}};
  const machine::ClusterSpec cluster{};

  if (!send_frame(fd, 'A', "ok")) return;

  double wall_seconds = options.limits.wall_seconds;
  if (wall_seconds <= 0.0 && config.cap_deadline_ms > 0.0) {
    // Same derivation as the local pool: cap deadline plus grace for
    // the fallback simulation and result serialization.
    wall_seconds = config.cap_deadline_ms / 1000.0 + 2.0;
  }

  for (;;) {
    if (options.cancel && options.cancel->cancelled()) return;
    const RecvOutcome r = recv_frame(conn, &frame, options.cancel);
    if (r != RecvOutcome::kFrame) {
      if (r == RecvOutcome::kCorrupt) {
        err << "serve-worker: dropping connection: "
            << conn.stream.last_error() << "\n";
      }
      return;
    }
    if (frame.tag == 'Q') return;
    if (frame.tag != 'J') continue;
    double cap = 0.0;
    int attempt = 0;
    if (!decode_job(frame.payload, &cap, &attempt)) {
      err << "serve-worker: malformed job payload; dropping connection\n";
      return;
    }
    const JobServe served = supervise_job(conn, *graph, model, cluster, config,
                                          cap, attempt, wall_seconds, options,
                                          err);
    if (served != JobServe::kServed) return;
  }
}

}  // namespace

int serve_worker(const ServeWorkerOptions& options, std::ostream& out,
                 std::ostream& err) {
  util::ignore_sigpipe();
  std::string listen_error;
  const int listen_fd =
      util::listen_tcp(options.listen.host, options.listen.port,
                       &listen_error);
  if (listen_fd < 0) {
    err << "serve-worker: " << listen_error << "\n";
    return 1;
  }
  const int port = util::bound_port(listen_fd);
  out << "serve-worker: listening on " << options.listen.host << ":" << port
      << "\n";
  out.flush();
  if (!options.port_file.empty()) {
    // Write-then-rename so a polling reader never sees a partial file.
    const std::string tmp = options.port_file + ".tmp";
    {
      std::ofstream pf(tmp, std::ios::trunc);
      pf << port << "\n";
      if (!pf) {
        err << "serve-worker: cannot write port file '" << options.port_file
            << "'\n";
        ::close(listen_fd);
        return 1;
      }
    }
    if (std::rename(tmp.c_str(), options.port_file.c_str()) != 0) {
      err << "serve-worker: cannot move port file into place: "
          << std::strerror(errno) << "\n";
      ::close(listen_fd);
      return 1;
    }
  }

  while (!(options.cancel && options.cancel->cancelled())) {
    util::IoStatus st = util::IoStatus::kOk;
    const int fd = util::accept_timeout(listen_fd, 0.1, &st);
    if (fd < 0) {
      if (st == util::IoStatus::kError) {
        err << "serve-worker: accept failed: " << std::strerror(errno)
            << "\n";
      }
      continue;
    }
    handle_connection(fd, options, err);
    ::close(fd);
    if (options.once) break;
  }
  ::close(listen_fd);
  out << "serve-worker: shutting down\n";
  return 0;
}

// --- scheduler side --------------------------------------------------

namespace {

/// Per-task progress through the reassignment ladder.
struct TaskState {
  int failures = 0;
  /// Session indices this cap already failed on (never retried there).
  std::vector<std::size_t> failed_remotes;
  bool settled = false;
  bool in_flight = false;
  double wall_ms = 0.0;
  long peak_rss_kb = 0;
  WorkerOutcome last_outcome = WorkerOutcome::kCrashed;
  std::string last_detail;
};

/// A cap walks the ladder: attempt 0 anywhere, one retry on a different
/// worker, then forced local. kMaxTaskFailures lost attempts degrade it.
constexpr int kMaxTaskFailures = 3;
constexpr int kForceLocalAfterFailures = 2;

struct Session {
  util::Endpoint endpoint;
  std::string name;
  util::Rng rng{1};

  enum class State { kBackoff, kHandshaking, kIdle, kBusy, kDead };
  State state = State::kBackoff;
  int fd = -1;
  FrameStream stream;
  Clock::time_point retry_at = Clock::now();
  int connect_failures = 0;
  double backoff_ms_total = 0.0;

  // In-flight job state (kBusy).
  std::size_t task = 0;
  Clock::time_point job_start;
  Clock::time_point last_heard;
  int heartbeat_misses = 0;
  bool miss_flagged = false;
  bool have_entry = false;
  JournalEntry entry;
  // Scheduler-side fault injection for this job.
  bool inj_stall = false;
  bool inj_corrupt = false;
  bool inj_slow = false;
  bool corrupt_done = false;
  double slow_budget_ms = 0.0;
};

struct LocalWorker {
  pid_t pid = -1;
  int read_fd = -1;
  std::size_t task = 0;
  Clock::time_point start;
  bool deadline_killed = false;
  std::string buffer;
};

WorkerOutcome outcome_from_wire_name(const std::string& name) {
  if (name == "resource-exhausted") return WorkerOutcome::kResourceExhausted;
  if (name == "timed-out") return WorkerOutcome::kTimedOut;
  return WorkerOutcome::kCrashed;
}

}  // namespace

WorkerPoolResult run_distributed_pool(
    const std::vector<WorkerTaskSpec>& tasks,
    const WorkerPoolOptions& local, const RemoteWorkerOptions& remote,
    const RemoteResultGate& gate, const util::Deadline& deadline,
    const std::function<void(const WorkerTaskResult&, std::size_t,
                             const TransportResult&)>& on_result) {
  util::ignore_sigpipe();

  WorkerPoolResult out;
  out.results.resize(tasks.size());
  out.stats.tasks = static_cast<int>(tasks.size());

  const std::size_t max_local =
      static_cast<std::size_t>(std::max(0, local.workers));

  std::vector<TaskState> states(tasks.size());
  std::deque<std::size_t> pending;
  for (std::size_t i = 0; i < tasks.size(); ++i) pending.push_back(i);

  std::vector<Session> sessions;
  sessions.reserve(remote.remotes.size());
  for (std::size_t i = 0; i < remote.remotes.size(); ++i) {
    Session s;
    s.endpoint = remote.remotes[i];
    s.name = util::to_string(remote.remotes[i]);
    s.rng = util::Rng(remote.jitter_seed + 0x9e3779b9u * (i + 1));
    sessions.push_back(std::move(s));
  }

  std::vector<LocalWorker> locals;
  int worker_seq = 0;
  std::size_t settled = 0;

  const auto count_failure_stat = [&](WorkerOutcome o) {
    switch (o) {
      case WorkerOutcome::kCrashed:
        ++out.stats.crashes;
        break;
      case WorkerOutcome::kResourceExhausted:
        ++out.stats.resource_exhausted;
        break;
      case WorkerOutcome::kTimedOut:
        ++out.stats.timeouts;
        break;
      default:
        break;
    }
  };

  const auto settle_failed = [&](std::size_t t) {
    TaskState& ts = states[t];
    WorkerTaskResult& r = out.results[t];
    r.outcome = ts.last_outcome;
    r.spawns = ts.failures;
    r.peak_rss_kb = ts.peak_rss_kb;
    r.wall_ms = ts.wall_ms;
    r.detail = ts.last_detail;
    ts.settled = true;
    ++settled;
    if (on_result) {
      TransportResult tr;
      tr.retries = ts.failures;
      on_result(r, t, tr);
    }
  };

  const auto settle_ok = [&](std::size_t t, JournalEntry entry,
                             const Session* via) {
    TaskState& ts = states[t];
    WorkerTaskResult& r = out.results[t];
    r.outcome = WorkerOutcome::kOk;
    r.entry = std::move(entry);
    r.spawns = ts.failures + 1;
    r.peak_rss_kb = ts.peak_rss_kb;
    r.wall_ms = ts.wall_ms;
    r.detail.clear();
    ts.settled = true;
    ++settled;
    ++out.stats.clean;
    TransportResult tr;
    tr.retries = ts.failures;
    if (via != nullptr) {
      tr.remote = true;
      tr.endpoint = via->name;
      tr.backoff_ms = via->backoff_ms_total;
      tr.heartbeat_misses = via->heartbeat_misses;
      ++out.stats.remote_clean;
    }
    if (on_result) on_result(r, t, tr);
  };

  /// One lost attempt: charge the task, remember where it failed, and
  /// requeue (front, so retries settle promptly) or settle degraded.
  const auto fail_attempt = [&](std::size_t t, const Session* via,
                                WorkerOutcome outcome,
                                const std::string& detail) {
    TaskState& ts = states[t];
    ts.in_flight = false;
    ++ts.failures;
    ts.last_outcome = outcome;
    ts.last_detail = detail;
    count_failure_stat(outcome);
    if (via != nullptr) {
      ++out.stats.remote_failures;
      ts.failed_remotes.push_back(
          static_cast<std::size_t>(via - sessions.data()));
    }
    util::log_warn() << "cap " << tasks[t].job_cap_watts << " attempt "
                     << ts.failures << "/" << kMaxTaskFailures << " lost"
                     << (via ? " on " + via->name : std::string(" locally"))
                     << ": " << detail;
    if (ts.failures >= kMaxTaskFailures) {
      settle_failed(t);
    } else {
      ++out.stats.retries;
      pending.push_front(t);
    }
  };

  const auto schedule_backoff = [&](Session& s) {
    ++s.connect_failures;
    if (s.connect_failures >= remote.max_connect_failures) {
      util::log_warn() << "remote " << s.name << " declared dead after "
                       << s.connect_failures << " consecutive failures";
      s.state = Session::State::kDead;
      return;
    }
    const int doublings = std::min(s.connect_failures - 1, 20);
    const double base =
        std::min(remote.backoff_max_ms,
                 remote.backoff_initial_ms *
                     static_cast<double>(1 << doublings));
    const double delay = base * s.rng.uniform(0.5, 1.5);
    s.backoff_ms_total += delay;
    s.retry_at = Clock::now() + std::chrono::microseconds(
                                    static_cast<long>(delay * 1000.0));
    s.state = Session::State::kBackoff;
  };

  const auto close_session = [&](Session& s, bool to_backoff) {
    if (s.fd >= 0) {
      ::close(s.fd);
      s.fd = -1;
    }
    s.stream = FrameStream();
    s.have_entry = false;
    if (to_backoff && s.state != Session::State::kDead) {
      schedule_backoff(s);
    }
  };

  /// The busy session lost its job (disconnect / silence / poison):
  /// charge the attempt and recycle the connection through backoff.
  const auto fail_busy_session = [&](Session& s, WorkerOutcome outcome,
                                     const std::string& detail) {
    const std::size_t t = s.task;
    s.state = Session::State::kBackoff;  // close_session keeps non-dead state
    close_session(s, true);
    const TaskState& ts = states[t];
    if (!ts.settled) {
      TaskState& mut = states[t];
      mut.wall_ms += ms_between(s.job_start, Clock::now());
      fail_attempt(t, &s, outcome, detail);
    }
  };

  const auto session_eligible = [&](const Session& s, std::size_t t) {
    const TaskState& ts = states[t];
    if (ts.failures >= kForceLocalAfterFailures) return false;
    const std::size_t idx = static_cast<std::size_t>(&s - sessions.data());
    for (std::size_t f : ts.failed_remotes) {
      if (f == idx) return false;
    }
    return true;
  };

  const auto all_remotes_dead = [&] {
    for (const Session& s : sessions) {
      if (s.state != Session::State::kDead) return false;
    }
    return true;
  };

  // A cap is forced local when its failure count says so, or when no
  // live remote may take it (every survivor already lost it): with one
  // remote endpoint, "retry on a different worker" collapses straight
  // to the local rung instead of waiting for a peer that cannot exist.
  const auto forced_local = [&](std::size_t t) {
    if (states[t].failures >= kForceLocalAfterFailures) return true;
    if (states[t].failures == 0) return false;
    for (const Session& s : sessions) {
      if (s.state != Session::State::kDead && session_eligible(s, t)) {
        return false;
      }
    }
    return true;
  };

  bool interrupted = false;
  util::StopReason stop = util::StopReason::kNone;

  while (settled < tasks.size()) {
    stop = deadline.stop_reason();
    if (stop != util::StopReason::kNone) {
      interrupted = true;
      break;
    }
    const Clock::time_point now = Clock::now();

    // --- session lifecycle: connect / handshake / liveness ---
    for (Session& s : sessions) {
      switch (s.state) {
        case Session::State::kBackoff: {
          if (now < s.retry_at) break;
          std::string cerr_msg;
          const int fd = util::connect_timeout(
              s.endpoint, remote.connect_timeout_ms / 1000.0, &cerr_msg);
          if (fd < 0) {
            schedule_backoff(s);
            break;
          }
          const std::string hs =
              encode_wire_frame('T', remote.handshake);
          if (hs.empty() ||
              util::send_all(fd, hs.data(), hs.size(), 10.0) !=
                  util::IoStatus::kOk) {
            ::close(fd);
            schedule_backoff(s);
            break;
          }
          s.fd = fd;
          s.stream = FrameStream();
          s.state = Session::State::kHandshaking;
          s.last_heard = now;
          break;
        }
        case Session::State::kHandshaking: {
          if (ms_between(s.last_heard, now) > remote.heartbeat_timeout_ms) {
            close_session(s, true);
          }
          break;
        }
        case Session::State::kBusy: {
          const double silence = ms_between(s.last_heard, now);
          if (!s.miss_flagged &&
              silence > remote.heartbeat_timeout_ms / 4.0) {
            ++s.heartbeat_misses;
            s.miss_flagged = true;
          }
          if (silence > remote.heartbeat_timeout_ms) {
            fail_busy_session(
                s, WorkerOutcome::kTimedOut,
                "no heartbeat from " + s.name + " for " +
                    std::to_string(static_cast<long>(silence)) +
                    " ms (dead peer)");
            break;
          }
          if (remote.job_timeout_ms > 0.0 &&
              ms_between(s.job_start, now) > remote.job_timeout_ms) {
            fail_busy_session(s, WorkerOutcome::kTimedOut,
                              "remote attempt on " + s.name +
                                  " overran its job timeout");
          }
          break;
        }
        default:
          break;
      }
    }

    // --- dispatch: idle remotes pull from the FRONT of the queue ---
    for (Session& s : sessions) {
      if (s.state != Session::State::kIdle || pending.empty()) continue;
      std::size_t pick = pending.size();
      for (std::size_t i = 0; i < pending.size(); ++i) {
        if (session_eligible(s, pending[i])) {
          pick = i;
          break;
        }
      }
      if (pick == pending.size()) continue;
      const std::size_t t = pending[pick];
      pending.erase(pending.begin() + static_cast<long>(pick));
      TaskState& ts = states[t];
      const double cap = tasks[t].job_cap_watts;

      const FaultPlan* plan = ScopedFaultPlan::active();
      const bool injured = plan && plan->net_fault != NetFault::kNone &&
                           plan->applies_to_cap(cap) &&
                           ts.failures < plan->net_fault_attempts;
      if (injured && plan->net_fault == NetFault::kDrop) {
        // Scheduler-side drop: lose the connection instead of the job.
        close_session(s, true);
        ++out.stats.spawned;
        fail_attempt(t, &s, WorkerOutcome::kCrashed,
                     "injected net-drop: connection lost before dispatch");
        continue;
      }
      const std::string job =
          encode_wire_frame('J', encode_job(cap, ts.failures));
      if (util::send_all(s.fd, job.data(), job.size(), 5.0) !=
          util::IoStatus::kOk) {
        close_session(s, true);
        fail_attempt(t, &s, WorkerOutcome::kCrashed,
                     "connection to " + s.name + " lost sending the job");
        continue;
      }
      s.state = Session::State::kBusy;
      s.task = t;
      s.job_start = s.last_heard = Clock::now();
      s.heartbeat_misses = 0;
      s.miss_flagged = false;
      s.have_entry = false;
      s.inj_stall = injured && plan->net_fault == NetFault::kStall;
      s.inj_corrupt = injured && plan->net_fault == NetFault::kCorrupt;
      s.inj_slow = injured && plan->net_fault == NetFault::kSlow;
      s.corrupt_done = false;
      s.slow_budget_ms = 500.0;
      ts.in_flight = true;
      ++out.stats.spawned;
    }

    // --- dispatch: free local slots pull from the BACK (and any cap
    // the ladder forced local, from wherever it sits) ---
    while (!pending.empty()) {
      std::size_t pick = pending.size();
      for (std::size_t i = 0; i < pending.size(); ++i) {
        if (forced_local(pending[i])) {
          pick = i;
          break;
        }
      }
      const bool forced = pick != pending.size();
      // local.workers == 0 disables ordinary local mixing, but the
      // ladder's forced-local rung (and a pool whose remotes all died)
      // always has at least one slot - the sweep must finish even with
      // every peer gone.
      std::size_t slots = max_local;
      if (forced || all_remotes_dead()) {
        slots = std::max<std::size_t>(slots, 1);
      }
      if (locals.size() >= slots) break;
      if (!forced) {
        if (max_local == 0 && !all_remotes_dead()) break;
        pick = all_remotes_dead() ? 0 : pending.size() - 1;
      }
      const std::size_t t = pending[pick];
      pending.erase(pending.begin() + static_cast<long>(pick));
      TaskState& ts = states[t];

      std::vector<int> extra;
      for (const LocalWorker& w : locals) extra.push_back(w.read_fd);
      for (const Session& s : sessions) {
        if (s.fd >= 0) extra.push_back(s.fd);
      }
      SpawnedWorker sw;
      if (!spawn_worker(tasks[t], ts.failures, local.limits, worker_seq++,
                        extra, &sw)) {
        fail_attempt(t, nullptr, WorkerOutcome::kCrashed,
                     std::string("cannot spawn worker: ") +
                         std::strerror(errno));
        continue;
      }
      LocalWorker w;
      w.pid = sw.pid;
      w.read_fd = sw.read_fd;
      w.task = t;
      w.start = Clock::now();
      locals.push_back(std::move(w));
      ts.in_flight = true;
      ++out.stats.spawned;
    }

    // --- local wall budgets ---
    for (LocalWorker& w : locals) {
      if (local.limits.wall_seconds > 0.0 && !w.deadline_killed &&
          ms_between(w.start, now) > local.limits.wall_seconds * 1000.0) {
        ::kill(w.pid, SIGKILL);
        w.deadline_killed = true;
      }
    }

    // --- poll local pipes + live sockets ---
    std::vector<struct pollfd> pfds;
    std::vector<Session*> pfd_session;
    for (const LocalWorker& w : locals) {
      pfds.push_back({w.read_fd, POLLIN, 0});
      pfd_session.push_back(nullptr);
    }
    for (Session& s : sessions) {
      if (s.fd < 0) continue;
      pfds.push_back({s.fd, POLLIN, 0});
      pfd_session.push_back(&s);
    }
    if (pfds.empty()) {
      sleep_ms(10.0);
      continue;
    }
    const int ready = util::retry_eintr([&] {
      return ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 20);
    });
    if (ready <= 0) continue;

    // --- local pipe events ---
    for (std::size_t i = 0; i < locals.size();) {
      LocalWorker& w = locals[i];
      bool finished = false;
      if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
        char buf[4096];
        const ssize_t n = util::read_some(w.read_fd, buf, sizeof buf);
        if (n > 0) {
          w.buffer.append(buf, static_cast<std::size_t>(n));
        } else if (n == 0) {
          finished = true;
        }
      }
      if (!finished) {
        ++i;
        continue;
      }
      ::close(w.read_fd);
      int wait_status = 0;
      struct rusage ru {};
      util::retry_eintr([&] { return ::wait4(w.pid, &wait_status, 0, &ru); });
      const std::size_t t = w.task;
      TaskState& ts = states[t];
      ts.wall_ms += ms_between(w.start, Clock::now());
      ts.peak_rss_kb =
          std::max(ts.peak_rss_kb, static_cast<long>(ru.ru_maxrss));
      out.stats.max_peak_rss_kb =
          std::max(out.stats.max_peak_rss_kb, ts.peak_rss_kb);
      const WorkerAttemptVerdict v = classify_worker_exit(
          w.deadline_killed, wait_status, w.buffer, tasks[t].job_cap_watts);
      // Erase before settling so the pollfd indexing stays aligned on
      // the next loop iteration.
      locals.erase(locals.begin() + static_cast<long>(i));
      pfds.erase(pfds.begin() + static_cast<long>(i));
      pfd_session.erase(pfd_session.begin() + static_cast<long>(i));
      ts.in_flight = false;
      if (v.outcome == WorkerOutcome::kOk) {
        settle_ok(t, v.entry, nullptr);
      } else {
        fail_attempt(t, nullptr, v.outcome, v.detail);
      }
    }

    // --- socket events ---
    for (std::size_t i = locals.size(); i < pfds.size(); ++i) {
      Session* sp = pfd_session[i];
      if (sp == nullptr || sp->fd < 0) continue;
      Session& s = *sp;
      if (!(pfds[i].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      std::string chunk;
      const util::IoStatus st = util::recv_some(s.fd, &chunk);
      if (st == util::IoStatus::kDisconnected ||
          st == util::IoStatus::kError) {
        if (s.state == Session::State::kBusy) {
          fail_busy_session(s, WorkerOutcome::kCrashed,
                            "connection to " + s.name + " lost mid-job");
        } else {
          close_session(s, true);
        }
        continue;
      }
      if (chunk.empty()) continue;
      if (s.state == Session::State::kBusy && s.inj_stall) {
        // Scheduler-side stall: pretend nothing arrives. last_heard is
        // left alone so the dead-peer timer fires.
        continue;
      }
      if (s.state == Session::State::kBusy && s.inj_slow &&
          s.slow_budget_ms > 0.0) {
        sleep_ms(50.0);
        s.slow_budget_ms -= 50.0;
      }
      if (s.state == Session::State::kBusy && s.inj_corrupt &&
          !s.corrupt_done) {
        chunk[chunk.size() - 1] ^= 0x01;
        s.corrupt_done = true;
      }
      if (s.state == Session::State::kBusy && !s.miss_flagged &&
          ms_between(s.last_heard, Clock::now()) >
              remote.heartbeat_timeout_ms / 4.0) {
        // The frame arrived, but only after a whole silent interval: a
        // slow worker, recorded as a miss (vs a dead one, which never
        // resets the timer and trips the timeout above).
        ++s.heartbeat_misses;
      }
      s.last_heard = Clock::now();
      s.miss_flagged = false;
      s.stream.feed(chunk);

      WireFrame f;
      bool closed = false;
      while (!closed && s.stream.next(&f) == WireDecode::kOk) {
        switch (f.tag) {
          case 'A': {
            if (s.state != Session::State::kHandshaking) break;
            if (f.payload == "ok") {
              s.state = Session::State::kIdle;
              s.connect_failures = 0;
            } else {
              // A config/version rejection will not heal with retries.
              util::log_warn() << "remote " << s.name
                               << " rejected the handshake: " << f.payload;
              s.state = Session::State::kDead;
              close_session(s, false);
              closed = true;
            }
            break;
          }
          case 'H':
            break;  // liveness only; last_heard is already updated
          case 'R': {
            if (s.state != Session::State::kBusy) break;
            JournalEntry e;
            if (!parse_journal_entry(f.payload, &e) ||
                std::abs(e.job_cap_watts - tasks[s.task].job_cap_watts) >
                    1e-9) {
              fail_busy_session(s, WorkerOutcome::kCrashed,
                                "unusable result payload from " + s.name);
              closed = true;
              break;
            }
            if (e.verdict == StatusCode::kCancelled) {
              // The worker is draining for shutdown; the cap did not
              // really settle.
              const std::size_t t = s.task;
              s.state = Session::State::kIdle;
              states[t].wall_ms += ms_between(s.job_start, Clock::now());
              fail_attempt(t, &s, WorkerOutcome::kCrashed,
                           "remote worker " + s.name +
                               " cancelled the attempt (shutting down)");
              break;
            }
            if (e.verdict == StatusCode::kOk) {
              s.entry = std::move(e);
              s.have_entry = true;  // accept once the 'S' artifact lands
              break;
            }
            // Degraded / infeasible verdicts carry no bound worth
            // forging; accept as reported.
            const std::size_t t = s.task;
            s.state = Session::State::kIdle;
            states[t].wall_ms += ms_between(s.job_start, Clock::now());
            states[t].in_flight = false;
            settle_ok(t, std::move(e), &s);
            break;
          }
          case 'S': {
            if (s.state != Session::State::kBusy || !s.have_entry) {
              fail_busy_session(s, WorkerOutcome::kCrashed,
                                "unexpected solution frame from " + s.name);
              closed = true;
              break;
            }
            const std::size_t t = s.task;
            const Status verdict =
                gate ? gate(s.entry, f.payload) : Status::Ok();
            s.have_entry = false;
            states[t].wall_ms += ms_between(s.job_start, Clock::now());
            if (!verdict.ok()) {
              ++out.stats.certificate_rejects;
              // The peer is lying but alive: keep the session for other
              // caps; this cap never returns to it.
              s.state = Session::State::kIdle;
              fail_attempt(t, &s, WorkerOutcome::kCrashed,
                           "remote result from " + s.name +
                               " rejected: " + verdict.to_string());
            } else {
              s.state = Session::State::kIdle;
              states[t].in_flight = false;
              settle_ok(t, s.entry, &s);
            }
            break;
          }
          case 'E': {
            if (s.state != Session::State::kBusy) break;
            const std::size_t t = s.task;
            s.state = Session::State::kIdle;
            states[t].wall_ms += ms_between(s.job_start, Clock::now());
            const std::size_t space = f.payload.find(' ');
            const WorkerOutcome o =
                outcome_from_wire_name(f.payload.substr(0, space));
            fail_attempt(t, &s, o,
                         "remote attempt on " + s.name + " failed: " +
                             (space == std::string::npos
                                  ? f.payload
                                  : f.payload.substr(space + 1)));
            break;
          }
          default:
            break;  // unknown frame tags are ignored for forward compat
        }
      }
      if (!closed && s.stream.poisoned()) {
        if (s.state == Session::State::kBusy) {
          fail_busy_session(s, WorkerOutcome::kCrashed,
                            "wire-malformed from " + s.name + ": " +
                                s.stream.last_error());
        } else {
          close_session(s, true);
        }
      }
    }
  }

  // --- teardown ---
  if (interrupted) {
    for (LocalWorker& w : locals) {
      ::kill(w.pid, SIGKILL);
      int wait_status = 0;
      util::retry_eintr([&] { return ::waitpid(w.pid, &wait_status, 0); });
      ::close(w.read_fd);
      WorkerTaskResult& r = out.results[w.task];
      r.outcome = WorkerOutcome::kSkipped;
      r.detail = "pool interrupted mid-solve";
    }
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      if (!states[t].settled &&
          out.results[t].outcome == WorkerOutcome::kSkipped &&
          out.results[t].detail.empty()) {
        out.results[t].detail = "pool interrupted before dispatch";
      }
    }
    out.interrupted = true;
    out.stop = stop;
  }
  for (Session& s : sessions) {
    if (s.fd >= 0) {
      const std::string quit = encode_wire_frame('Q', "");
      util::send_all(s.fd, quit.data(), quit.size(), 0.5);
      ::close(s.fd);
      s.fd = -1;
    }
  }
  return out;
}

}  // namespace powerlim::robust
