// Crash-consistent sweep journal: the durable half of the supervision
// layer (tentpole of the robustness work, part 2).
//
// A journaled sweep appends one framed record per *completed* cap, so a
// run killed mid-sweep can restart with `--resume` and skip straight to
// the first unsolved cap, merging journaled rows with fresh ones into a
// result identical to an uninterrupted run (modulo timing fields).
//
// File format (`powerlim-journal v1`, line-oriented, self-describing):
//
//   powerlim-journal v1\n
//   R <crc32-hex> <payload-bytes>\n<payload>\n        (one per cap)
//   B <crc32-hex> <payload-bytes>\n<payload>\n        (basis checkpoint)
//   Q <crc32-hex> <payload-bytes>\n<payload>\n        (request intent)
//   E <crc32-hex> <payload-bytes>\n<payload>\n        (epoch stamp)
//
// An `R` payload is a structured row line (cap / verdict / degraded /
// bound / fallback - everything the sweep table needs) followed by the
// full RunReport JSON. A `Q` payload records a *request intent* (the
// powerlimd daemon journals every admitted request before its first
// solve starts), so a daemon killed mid-request can resume: caps from
// recovered `Q` records that lack a trusted `R` record are exactly the
// work still owed. A `B` payload is a text serialization of the
// per-window warm-start cache; on resume the *last* intact `B` record
// seeds the solver so the restarted sweep warm-starts where the dead
// run left off (stale snapshots are safe: the solver feasibility-checks
// warmed bases and cold-starts on mismatch). An `E` payload
// (`epoch=<n>`) is a failover-epoch stamp: the high-availability layer
// appends one whenever a daemon opens the journal under a newer epoch
// than the journal has seen, and recovery reports the highest intact
// stamp via `epoch()`. A writer that `pin_epoch()`s itself is *fenced*:
// every later append re-checks the file for foreign appends first and
// refuses with kStaleEpoch once any writer has stamped a higher epoch -
// a deposed primary cannot scribble over a promoted standby's history.
//
// Durability and recovery:
//   * every append is a single write() of the whole frame (on an
//     O_APPEND fd, so concurrent appenders - e.g. two sweep processes
//     sharing one journal - never clobber each other's offsets)
//     followed by fsync() - a record is either fully durable or torn,
//     never half-trusted;
//   * a torn / CRC-corrupt / malformed tail is *quarantined by
//     truncation*: recovery keeps every intact prefix record, truncates
//     the file back to the last good frame boundary, and reports the
//     dropped bytes (truncate-and-continue - crash on crash is fine);
//   * corruption sandwiched before intact frames also truncates there:
//     trusting records past a corrupt region would re-order history;
//   * a version/magic mismatch renames the file to `<path>.quarantined`
//     and starts a fresh journal (never silently reinterpret another
//     format);
//   * duplicate caps keep the first record and count the drops (a crash
//     between "solve finished" and "resume check" can legally duplicate
//     the in-flight cap).
//
// No dependencies: CRC-32 (IEEE, table-driven) and the framing live
// here; IO is plain POSIX.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "lp/simplex.h"
#include "robust/status.h"

namespace powerlim::robust {

/// CRC-32 (IEEE 802.3, reflected, init/final 0xFFFFFFFF) - the frame
/// checksum. Exposed for the corrupt-journal tests.
std::uint32_t crc32(const void* data, std::size_t len);

/// Size of the magic header line every journal file starts with
/// ("powerlim-journal v1\n"). A journal of exactly this size holds zero
/// records; the replication layer uses that to recognize a
/// freshly-reset replica without trusting the peer.
std::size_t journal_header_bytes();

/// One recovered (or appended) per-cap record.
struct JournalEntry {
  double job_cap_watts = 0.0;
  StatusCode verdict = StatusCode::kInternal;
  bool degraded = false;
  /// LP bound / degraded fallback time; < 0 when no bound survived.
  double bound_seconds = -1.0;
  /// Fallback name when degraded ("static-policy"), else empty.
  std::string fallback;
  /// Full RunReport JSON for the cap (artifact parity with a fresh run).
  std::string report_json;
};

/// One durable request intent (`Q` record): what a daemon promised to
/// solve before it started solving. Ids and kinds are single tokens
/// (no whitespace - the serialization is token-framed).
struct JournalRequest {
  std::string id;
  /// "bound" (one cap) or "sweep" (many).
  std::string kind;
  /// Client deadline echoed at admission, ms (0 = none).
  double deadline_ms = 0.0;
  std::vector<double> caps;
};

/// What recovery found when the journal was opened.
struct RecoverySummary {
  /// Intact per-cap records recovered (after duplicate dedup).
  int records = 0;
  /// Intact basis checkpoints seen (only the last one is kept).
  int basis_records = 0;
  /// Intact request-intent records recovered.
  int request_records = 0;
  /// Intact epoch stamps seen (only the highest value matters).
  int epoch_records = 0;
  /// Duplicate-cap records dropped (first occurrence wins).
  int duplicates_dropped = 0;
  /// Bytes of torn/corrupt tail removed by truncate-and-continue.
  long quarantined_bytes = 0;
  /// True when a version/magic mismatch moved the old file aside.
  bool quarantined_file = false;
  /// Where the mismatched file went (empty unless quarantined_file).
  std::string quarantine_path;

  bool clean() const {
    return quarantined_bytes == 0 && !quarantined_file &&
           duplicates_dropped == 0;
  }
};

/// Resume-trust predicate: may a recovered record be replayed into a
/// resumed sweep without re-solving its cap? Failure and degraded
/// records are always trusted (their bound, when any, is a simulated
/// fallback, not an LP claim). A kOk record claims an LP bound, so when
/// `require_certificate` is set (the resuming sweep verifies
/// certificates) its RunReport JSON must show schema >= 4 with a passed
/// certificate - records journaled before the verification layer, or
/// tampered after the fact, are re-solved instead of trusted.
bool journal_entry_trusted(const JournalEntry& entry,
                           bool require_certificate);

/// Serialize / parse one per-cap record payload (the `R` frame body).
/// Shared with the worker-pool wire protocol: a worker ships its result
/// to the supervisor in exactly the bytes the journal would append, so
/// a journaled parallel sweep stores what a serial sweep would have.
std::string serialize_journal_entry(const JournalEntry& entry);
bool parse_journal_entry(const std::string& payload, JournalEntry* out);

/// Serialize / parse one request-intent payload (the `Q` frame body):
/// `req=<id> kind=<kind> deadline_ms=<g17> caps=<c1,c2,...>`. Ids and
/// kinds containing whitespace are rejected on serialize (empty result)
/// and parse alike.
std::string serialize_journal_request(const JournalRequest& request);
bool parse_journal_request(const std::string& payload, JournalRequest* out);

/// Serialize / parse the warm-start cache for `B` records. Exposed for
/// tests; the format is one window per line: `<status-chars> <basis
/// ints...>` (`-` for an empty slot).
std::string serialize_warm_starts(const std::vector<lp::WarmStart>& warm);
bool parse_warm_starts(const std::string& text,
                       std::vector<lp::WarmStart>* out);

class SweepJournal {
 public:
  /// Opens (creating if absent) and recovers a journal. Fails only on
  /// real IO errors (unwritable path); corruption never fails an open -
  /// it is truncated or quarantined and reported in `recovery()`.
  [[nodiscard]] static Result<SweepJournal> open(const std::string& path);

  SweepJournal(SweepJournal&&) noexcept;
  SweepJournal& operator=(SweepJournal&&) noexcept;
  ~SweepJournal();

  const std::string& path() const;
  const RecoverySummary& recovery() const;

  /// Recovered per-cap records, in journal (= completion) order.
  const std::vector<JournalEntry>& entries() const;
  /// Whether a cap already has a durable record. Caps are matched
  /// exactly: records round-trip through max-precision decimal, which
  /// is bit-faithful for doubles.
  bool contains(double job_cap_watts) const;
  const JournalEntry* find(double job_cap_watts) const;

  /// Last intact basis checkpoint (empty when none survived).
  const std::vector<lp::WarmStart>& warm_starts() const;

  /// Recovered request intents, in journal (= admission) order.
  const std::vector<JournalRequest>& requests() const;

  /// Highest intact epoch stamp recovered or absorbed (0 = none: a
  /// journal that has never been touched by the failover layer).
  std::uint64_t epoch() const;

  /// Durably appends an `E` epoch stamp. Idempotent when the journal
  /// already carries `epoch` (no write); refuses with kStaleEpoch when
  /// the journal has seen a *higher* epoch (epochs never regress).
  [[nodiscard]] Status advance_epoch(std::uint64_t epoch);

  /// Fences this handle at `epoch`: every later append first absorbs
  /// any foreign appends from the file and fails with kStaleEpoch if a
  /// higher epoch stamp has landed. A deposed primary sharing the file
  /// with a promoted standby loses the race durably, not silently.
  void pin_epoch(std::uint64_t epoch);

  /// Current durable size in bytes (absorbing foreign appends first).
  /// Replication high-water marks are exactly these byte offsets.
  std::uint64_t size_bytes();

  /// Observer invoked after every durable append through this handle
  /// (the replication hub uses it to wake the streamer; the callback
  /// must not reenter the journal).
  void set_append_listener(std::function<void()> listener);

  /// Replication apply path: verifies `bytes` is a whole number of
  /// intact frames, that `offset` matches the current durable size, and
  /// appends the bytes verbatim (same write+fsync discipline), updating
  /// recovered state. kBadInput on offset mismatch (caller resyncs),
  /// kWireMalformed on framing/CRC damage - nothing is applied then.
  [[nodiscard]] Status append_raw(std::uint64_t offset, const std::string& bytes);

  /// Durably appends one per-cap record (write + fsync before return).
  /// An entry for an already-journaled cap is dropped as a duplicate.
  [[nodiscard]] Status append(const JournalEntry& entry);
  /// Durably appends a basis checkpoint. Empty snapshots are skipped.
  [[nodiscard]] Status append_basis(const std::vector<lp::WarmStart>& warm);
  /// Durably appends a request intent *before* any of its caps solve.
  /// Malformed requests (whitespace in id/kind) are kBadInput.
  [[nodiscard]] Status append_request(const JournalRequest& request);

 private:
  SweepJournal();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Options for `compact_journal`.
struct CompactOptions {
  /// Re-check the certificate gate on every kOk record during the
  /// rewrite (journal_entry_trusted): records that no longer prove
  /// their bound are dropped and will re-solve on the next resume.
  bool require_certificate = true;
  /// Test hook: stop after the rewritten journal is written and fsynced
  /// but *before* the atomic rename, simulating a crash mid-compaction.
  bool crash_before_rename = false;
};

/// What compaction did (or why it failed).
struct CompactResult {
  Status status;
  /// False when crash_before_rename stopped the rewrite (the original
  /// journal is untouched and the `.compact.tmp` leftover is inert).
  bool renamed = false;
  std::uint64_t bytes_before = 0;
  std::uint64_t bytes_after = 0;
  /// Highest epoch stamp carried over (0 = none).
  std::uint64_t epoch = 0;
  /// Caps kept (latest proven record per cap).
  int records_kept = 0;
  /// R frames dropped: superseded duplicates plus kOk records that
  /// failed the certificate re-check.
  int records_dropped = 0;
  /// Request intents kept (still owe at least one cap) / dropped.
  int requests_kept = 0;
  int requests_dropped = 0;
  /// Superseded basis checkpoints and epoch stamps collapsed away.
  int basis_dropped = 0;
  int epoch_records_dropped = 0;
};

/// Rewrites `path` keeping only the latest *proven* record per cap (the
/// certificate gate is re-checked on every kOk record), request intents
/// that still owe work, the last basis checkpoint, and a single epoch
/// stamp. Crash-safe: the replacement is written to `<path>.compact.tmp`,
/// fsynced, renamed over the original, and the directory fsynced - a
/// crash at any point leaves either the old or the new journal intact.
/// Offline only: compacting a journal another process is appending to
/// (or replicating from) would invalidate its byte offsets.
CompactResult compact_journal(const std::string& path,
                              const CompactOptions& options = {});

}  // namespace powerlim::robust
