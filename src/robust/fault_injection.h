// Deterministic fault injection for the solve pipeline.
//
// A FaultPlan describes a set of faults - forced solver statuses,
// corrupted LP coefficients, emptied Pareto frontiers - and is installed
// thread-locally with ScopedFaultPlan. robust::SolveDriver consults the
// active plan at each ladder attempt, and its formulation hooks consult
// it while frontiers are built, so every rung of the retry/degradation
// ladder can be exercised on demand. All faults are seeded and
// deterministic: a failing injection test replays bit-identically.
//
// Trace-corruption helpers (truncate/garble) operate on serialized trace
// text so tests can manufacture corrupt fixtures without hand-writing
// broken files.
#pragma once

#include <cstdint>
#include <string>

#include "lp/simplex.h"

namespace powerlim::robust {

/// Faults executed *inside a forked worker process* (robust/worker_pool)
/// rather than synthesized as solver statuses: the worker genuinely
/// dies, and the supervisor's containment/retry machinery is what gets
/// exercised.
enum class WorkerFault {
  kNone,
  /// abort() before the solve: signal death (SIGABRT), the SIGSEGV
  /// stand-in that sanitizers do not intercept.
  kCrash,
  /// Exit with the allocator-failure code, as if RLIMIT_AS had starved
  /// the solve (the real allocation path is exercised separately with an
  /// actual rlimit; injection keeps CI memory-safe).
  kOom,
  /// Sleep until the supervisor's deadline kills the worker.
  kHang,
};

/// Kebab-case names used by `powerlim sweep --inject-fail worker-*`:
/// "worker-crash", "worker-oom", "worker-hang". Returns false on an
/// unknown name (including "worker-none").
bool worker_fault_from_string(const std::string& name, WorkerFault* fault);
const char* to_string(WorkerFault fault);

/// Network faults for distributed sweeps, executed at either endpoint:
/// `powerlim serve-worker --inject-fail net-*` injures the worker side
/// of the connection, `powerlim sweep --inject-fail net-*` the
/// scheduler side. Each mode exercises one arm of the reassignment
/// ladder (robust/remote_worker.h).
enum class NetFault {
  kNone,
  /// Drop the connection mid-result-frame (torn frame + disconnect).
  kDrop,
  /// Go silent past the heartbeat deadline (dead-peer detection).
  kStall,
  /// Flip a byte inside a framed payload (CRC rejection).
  kCorrupt,
  /// Delay every frame by a sub-deadline amount: slow but alive, must
  /// NOT be classified as dead.
  kSlow,
  /// Worker-only: skip local certificate verification and corrupt the
  /// solution epsilon-subtly (a Byzantine "too good" bound); the
  /// scheduler's certificate gate must reject it.
  kLie,
};

/// Kebab-case names: "net-drop", "net-stall", "net-corrupt", "net-slow",
/// "net-lie". Returns false on an unknown name (including "net-none").
bool net_fault_from_string(const std::string& name, NetFault* fault);
const char* to_string(NetFault fault);

struct FaultPlan {
  std::uint64_t seed = 1;

  /// Override the first `fail_attempts` ladder attempts with
  /// `forced_status` instead of running the solver. Use a large value
  /// (e.g. 99) to exhaust the whole ladder and force the degradation
  /// fallback. 0 disables status forcing.
  int fail_attempts = 0;
  lp::SolveStatus forced_status = lp::SolveStatus::kNumericalError;

  /// When >= 0, the plan applies only to solves whose *job-level* cap is
  /// within `cap_tolerance` watts of this value - the "one injected
  /// failing cap in a sweep" scenario. Negative applies to every solve.
  double only_job_cap = -1.0;
  double cap_tolerance = 1e-6;

  /// When > 0, every LP constraint coefficient is scaled by a seeded
  /// factor in [10^-x, 10^+x] before each solve (via the
  /// LpScheduleOptions::mutate_model seam): genuinely corrupt numerics,
  /// not a synthesized status.
  double coefficient_noise_magnitude = 0.0;

  /// Drop every point of every task's Pareto frontier while the
  /// formulation is built (via FormulationHooks::frontier), forcing
  /// core::EmptyFrontierError.
  bool drop_all_pareto_points = false;

  /// When > 0, every vertex time and the makespan of an *optimal* solve
  /// result is shrunk by this relative amount after the solver returns
  /// but before acceptance - the "too good to be true" bound. Replay
  /// validation cannot see it (the schedule's configs are untouched);
  /// only the exact certificate checker catches it, via precedence rows
  /// that no longer cover the task durations. Exercises the
  /// kCertificateFailed path end to end.
  double corrupt_solution_epsilon = 0.0;

  /// Worker-process fault executed by forked workers whose cap matches
  /// (only_job_cap scopes this exactly like the status faults).
  WorkerFault worker_fault = WorkerFault::kNone;
  /// Spawn attempts (0-based, per cap) that execute the fault. The
  /// default injures only the first spawn, so the supervisor's
  /// retry-in-a-fresh-worker succeeds; 2+ exhausts the retry and forces
  /// the worker-crashed / resource-exhausted degradation.
  int worker_fault_attempts = 1;

  /// Network fault executed on matching caps of a distributed sweep
  /// (scheduler side when installed in the sweep process, worker side
  /// when passed to serve-worker).
  NetFault net_fault = NetFault::kNone;
  /// Job attempts (0-based, per cap) that execute the network fault.
  /// The default injures only the first attempt, so the retry on a
  /// different worker succeeds and the sweep stays byte-identical.
  int net_fault_attempts = 1;

  bool applies_to_cap(double job_cap_watts) const;
  bool forces_status() const { return fail_attempts > 0; }
};

/// Executes the active plan's worker fault for this cap/attempt, in the
/// current (worker) process. No-op when no plan is active, the fault is
/// kNone, the cap does not match, or `attempt` is past the injured
/// count. kCrash and kOom do not return.
void maybe_execute_worker_fault(double job_cap_watts, int attempt);

/// RAII installation of a fault plan for the current thread. Nested
/// scopes shadow (innermost wins); destruction restores the previous
/// plan. The plan must outlive the scope.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(const FaultPlan& plan);
  ~ScopedFaultPlan();
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;

  /// The innermost installed plan, or nullptr when no fault injection is
  /// active (the production fast path: one thread-local load).
  static const FaultPlan* active();

 private:
  const FaultPlan* prev_;
};

/// Truncates serialized trace text to roughly `keep_fraction` of its
/// lines, cutting the final kept line in half so the tail token is
/// malformed - the classic interrupted-copy corruption.
std::string truncate_trace_text(const std::string& text,
                                double keep_fraction);

/// Replaces one numeric token of one seeded-random data line with
/// non-numeric garbage. Deterministic for a given seed.
std::string garble_trace_token(const std::string& text, std::uint64_t seed);

}  // namespace powerlim::robust
