// Fail-soft wrappers for the pipeline's file-facing entry points.
//
// The lower layers report corrupt input with typed exceptions
// (dag::TraceParseError names file/line/token; schedule IO throws
// runtime_error). Sweep drivers and the CLI want Result<T> values they
// can branch on instead, with every failure classified into the
// robust::StatusCode taxonomy - these adapters do exactly that mapping
// and nothing else.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/schedule_io.h"
#include "dag/graph.h"
#include "robust/journal.h"
#include "robust/solve_driver.h"
#include "robust/status.h"
#include "robust/worker_pool.h"
#include "util/deadline.h"

namespace powerlim::robust {

/// Loads a trace, mapping parse failures (with their file/line/token
/// provenance preserved in the message) and IO failures to kBadInput.
[[nodiscard]] Result<dag::TaskGraph> load_trace_checked(const std::string& path);

/// Loads a saved schedule; failures map to kBadInput. When `graph` is
/// given, also validates that the schedule matches it (edge counts).
[[nodiscard]] Result<core::SavedSchedule> load_schedule_checked(
    const std::string& path, const dag::TaskGraph* graph = nullptr);

/// Full resilient sweep: one driver solve per cap, partial results
/// guaranteed (a failing cap degrades, it does not abort the sweep).
/// Returns the outcomes in cap order.
std::vector<SolveOutcome> sweep_caps(const dag::TaskGraph& graph,
                                     const machine::PowerModel& model,
                                     const machine::ClusterSpec& cluster,
                                     const std::vector<double>& job_caps,
                                     const SolveDriverOptions& options = {});

/// One row of a (possibly resumed) sweep: the same shape whether the cap
/// was solved this run or recovered from the journal, so a resumed sweep
/// renders byte-identically to an uninterrupted one (wall_ms inside
/// report_json is the designated timing exception).
struct SweepRow {
  double job_cap_watts = 0.0;
  StatusCode verdict = StatusCode::kInternal;
  bool degraded = false;
  double bound_seconds = -1.0;
  std::string fallback;
  std::string report_json;
  /// True when the row came from the journal instead of a fresh solve.
  bool from_journal = false;
};

struct ResilientSweepOptions {
  SolveDriverOptions driver;
  /// Journal file; empty disables journaling (plain in-memory sweep).
  std::string journal_path;
  /// Skip caps the journal already holds (requires journal_path).
  bool resume = false;
  /// Whole-sweep wall budget + cancellation. Checked between caps; the
  /// per-cap solves additionally observe it at pivot granularity (it is
  /// merged into each cap's supervision deadline). With workers > 1 the
  /// supervisor enforces it instead: expiry/cancel SIGKILLs in-flight
  /// workers and their caps resume next run.
  util::Deadline deadline;
  /// Process-isolated parallel solving. > 1 forks each cap's ladder into
  /// a supervised worker (at most `workers` in flight) with crash
  /// containment and one retry; a cap whose worker dies twice degrades
  /// to the Static-policy bound under a worker-crashed /
  /// resource-exhausted verdict. 1 (the default) runs today's serial
  /// in-process path bit-for-bit. Parallel sweeps skip warm-start basis
  /// checkpoints (workers share no cache).
  int workers = 1;
  /// Per-worker RLIMIT_AS budget, MiB (0 = unlimited; ignored under
  /// AddressSanitizer).
  long worker_mem_mb = 0;
  /// Per-worker RLIMIT_CPU budget, seconds (0 = unlimited).
  double worker_cpu_s = 0.0;
  /// Remote serve-worker endpoints ("host:port"). Non-empty routes the
  /// sweep through the distributed pool (robust/remote_worker.h): remote
  /// sessions and up to `workers` local fork workers share one queue,
  /// every lost cap walks the reassignment ladder, and each remote kOk
  /// result must pass the local certificate gate before it is journaled.
  std::vector<std::string> remotes;
  /// Per-remote-attempt wall ceiling, ms (0 derives it from the cap
  /// deadline, or leaves it unlimited when there is none).
  double remote_timeout_ms = 0.0;
  /// Heartbeat silence that declares a remote peer dead, ms (0 = the
  /// default in RemoteWorkerOptions).
  double remote_heartbeat_ms = 0.0;
  /// Streaming hook: called once per *fresh* row the moment it settles
  /// (journaled-resume rows are not replayed through it), after the row
  /// is journaled. The powerlimd executor uses this to ship each cap's
  /// result up its pipe while later caps still solve, so a client
  /// watching a long sweep sees rows trickle in instead of one burst.
  /// Must not throw; called from the sweep thread.
  std::function<void(const SweepRow&)> on_row;
};

struct ResilientSweepResult {
  /// One row per requested cap, in request order. Caps never reached
  /// (interrupted sweep) are absent.
  std::vector<SweepRow> rows;
  /// Journal recovery report (default-clean when journaling is off).
  RecoverySummary recovery;
  /// Caps solved this run / taken from the journal.
  int solved = 0;
  int resumed = 0;
  /// True when the sweep stopped early on cancellation or the sweep
  /// deadline; the journal holds every completed cap, so re-running
  /// with resume=true picks up exactly where this run stopped.
  bool interrupted = false;
  /// Why the sweep stopped early (kNone when it ran to completion).
  util::StopReason stop = util::StopReason::kNone;
  /// Worker-pool telemetry (all-zero for serial sweeps).
  WorkerPoolStats worker_stats;
};

/// Journaled, resumable cap sweep: the crash-consistent superset of
/// sweep_caps(). Every completed cap is durably journaled before the
/// next one starts; on resume=true, journaled caps are skipped and their
/// recovered rows merged in request order with the fresh ones. Returns a
/// Status only for journal-open failures (unwritable path); solve
/// failures degrade per-cap as usual and never fail the sweep.
[[nodiscard]] Result<ResilientSweepResult> resilient_sweep(
    const dag::TaskGraph& graph, const machine::PowerModel& model,
    const machine::ClusterSpec& cluster, const std::vector<double>& job_caps,
    const ResilientSweepOptions& options = {});

/// How an isolated worker (or daemon executor) died without shipping a
/// result for its cap.
struct WorkerFailure {
  /// Death classification (kWorkerCrashed / kResourceExhausted / ...).
  StatusCode outcome = StatusCode::kWorkerCrashed;
  /// Human-readable cause of the final spawn's death.
  std::string detail;
  /// Worker spawns the cap consumed before giving up.
  int spawns = 1;
  /// Telemetry (wall_ms / worker block): excluded from byte-identity.
  double wall_ms = 0.0;
  long peak_rss_kb = 0;
};

/// Synthesizes the degraded journal entry for a cap whose isolated
/// worker died without shipping a result: a RunReport with one
/// synthetic "worker" attempt describing the death and the
/// Static-policy fallback bound simulated in-process. Shared by the
/// worker pool's reassignment ladder and powerlimd's executor-crash
/// path, so a cap lost to a daemon executor crash degrades
/// byte-identically to one lost in an offline parallel sweep.
JournalEntry degraded_entry_for_failure(
    const dag::TaskGraph& graph, const machine::PowerModel& model,
    const machine::ClusterSpec& cluster, const SolveDriverOptions& driver_opt,
    double job_cap_watts, const WorkerFailure& failure);

}  // namespace powerlim::robust
