// Fail-soft wrappers for the pipeline's file-facing entry points.
//
// The lower layers report corrupt input with typed exceptions
// (dag::TraceParseError names file/line/token; schedule IO throws
// runtime_error). Sweep drivers and the CLI want Result<T> values they
// can branch on instead, with every failure classified into the
// robust::StatusCode taxonomy - these adapters do exactly that mapping
// and nothing else.
#pragma once

#include <string>
#include <vector>

#include "core/schedule_io.h"
#include "dag/graph.h"
#include "robust/solve_driver.h"
#include "robust/status.h"

namespace powerlim::robust {

/// Loads a trace, mapping parse failures (with their file/line/token
/// provenance preserved in the message) and IO failures to kBadInput.
Result<dag::TaskGraph> load_trace_checked(const std::string& path);

/// Loads a saved schedule; failures map to kBadInput. When `graph` is
/// given, also validates that the schedule matches it (edge counts).
Result<core::SavedSchedule> load_schedule_checked(
    const std::string& path, const dag::TaskGraph* graph = nullptr);

/// Full resilient sweep: one driver solve per cap, partial results
/// guaranteed (a failing cap degrades, it does not abort the sweep).
/// Returns the outcomes in cap order.
std::vector<SolveOutcome> sweep_caps(const dag::TaskGraph& graph,
                                     const machine::PowerModel& model,
                                     const machine::ClusterSpec& cluster,
                                     const std::vector<double>& job_caps,
                                     const SolveDriverOptions& options = {});

}  // namespace powerlim::robust
