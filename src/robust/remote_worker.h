// Fault-tolerant distributed sweeps: remote TCP cap-solve workers
// (tentpole of the robustness work, part 5).
//
// Two halves over one protocol:
//
//   * serve_worker() - the `powerlim serve-worker --listen host:port`
//     process. Accepts one scheduler connection at a time, receives the
//     trace + solve options once per connection, then forks one child
//     per cap-solve job exactly like the local worker pool (same rlimit
//     budgets, same exit-code classification) and streams framed
//     results back, with application-level heartbeats while the child
//     solves so the scheduler can tell slow-solve from dead-peer.
//
//   * run_distributed_pool() - the scheduler side. Mixes remote
//     serve-worker sessions with local fork workers in one event loop:
//     remote sessions pull caps from the front of the queue, free local
//     slots pull from the back, and every failure walks the
//     reassignment ladder below.
//
// Protocol "powerlim-remote v1", CRC-framed (robust/wire.h), over TCP:
//
//   scheduler -> worker   'T' handshake: config line + trace text
//                         'J' job: "cap=<watts> attempt=<n>"
//                         'Q' quit
//   worker -> scheduler   'A' handshake ack ("ok" | "error <why>")
//                         'H' heartbeat (periodic while a job solves)
//                         'R' result (serialized JournalEntry)
//                         'S' solution artifact (core::write_schedule
//                             text; follows every kOk 'R')
//                         'E' attempt failure ("<code> <detail>": the
//                             worker's child died and was classified)
//
// Reassignment ladder - a cap lost to disconnect, heartbeat silence,
// job timeout, corrupt frame, or a rejected result is:
//
//   1. retried once on a *different* worker (never the endpoint that
//      just lost it),
//   2. then forced onto a local fork worker,
//   3. then degraded to the Static-policy bound by the caller, exactly
//      like an exhausted local ladder.
//
// Trust model: a remote kOk result is accepted only after the caller's
// gate re-verifies the shipped solution artifact with the exact
// certificate checker, locally. A buggy or malicious peer can waste one
// attempt; it cannot poison the journal. Degraded / infeasible remote
// verdicts carry no "too good" bound to forge (a degraded bound is
// conservative by construction) and are accepted as reported.
//
// Connections are established with capped exponential backoff plus
// deterministic jitter; a peer that fails enough consecutive connects
// is declared dead and its pending caps drain to the survivors (and
// ultimately to local workers, so a sweep with every remote dead
// completes exactly like a local one).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "dag/graph.h"
#include "robust/fault_injection.h"
#include "robust/solve_driver.h"
#include "robust/status.h"
#include "robust/worker_pool.h"
#include "util/deadline.h"
#include "util/socket_io.h"

namespace powerlim::robust {

/// First line of the 'T' handshake payload; a version-skewed peer is
/// rejected in the 'A' ack instead of misparsing jobs.
inline constexpr char kRemoteProtoMagic[] = "powerlim-remote v1";

/// Solve options that cross the wire in the handshake (the subset of
/// SolveDriverOptions a remote solve must replicate for byte-identical
/// results).
struct RemoteSolveConfig {
  double cap_deadline_ms = 0.0;
  bool validate_replay = true;
  bool verify_certificate = true;
  bool discrete = false;
};

/// Builds the 'T' payload: magic, config line, then the serialized
/// trace (dag::write_trace).
std::string encode_handshake(const RemoteSolveConfig& config,
                             const dag::TaskGraph& graph);

/// Parses a 'T' payload. On failure returns false with *error set; the
/// trace text is returned unparsed (the caller owns trace validation so
/// a hostile trace surfaces as a clean 'A' error, not a crash).
bool decode_handshake(const std::string& payload, RemoteSolveConfig* config,
                      std::string* trace_text, std::string* error);

/// 'J' payload round-trip. The cap crosses as %.17g so both ends solve
/// bit-identical values.
std::string encode_job(double job_cap_watts, int attempt);
bool decode_job(const std::string& payload, double* job_cap_watts,
                int* attempt);

struct ServeWorkerOptions {
  util::Endpoint listen;  // port 0 binds an ephemeral port
  /// When set, the bound port is written here once listening (how tests
  /// and scripts discover an ephemeral port).
  std::string port_file;
  /// Exit after serving one connection (tests).
  bool once = false;
  /// Interval between 'H' frames while a child solves, ms.
  double heartbeat_ms = 100.0;
  /// Per-child rlimit budgets, exactly as for local pool workers. When
  /// wall_seconds is 0 it is derived from the handshake's cap deadline.
  WorkerLimits limits;
  /// Worker-side network fault injection (tests / CI fault matrix).
  NetFault fault = NetFault::kNone;
  /// Job attempts (0-based) the fault injures; later attempts are
  /// served honestly so reassignment converges.
  int fault_attempts = 1;
  /// Injected delay for NetFault::kSlow, ms (also the stall-probe
  /// granularity).
  double slow_delay_ms = 250.0;
  /// Graceful shutdown: when this token trips (SIGTERM handler), the
  /// in-flight child is cancelled via SIGTERM, its final frame is
  /// flushed to the scheduler, and serve_worker returns 0.
  const util::CancelToken* cancel = nullptr;
};

/// Runs the serve-worker accept loop until cancelled (or after one
/// connection with `once`). Returns a process exit code; 0 includes
/// cancellation-after-drain.
int serve_worker(const ServeWorkerOptions& options, std::ostream& out,
                 std::ostream& err);

/// Scheduler-side knobs for the remote half of a distributed pool.
struct RemoteWorkerOptions {
  std::vector<util::Endpoint> remotes;
  /// Prebuilt 'T' payload (encode_handshake), sent on every (re)connect.
  std::string handshake;
  /// Heartbeat silence that declares a busy peer dead, ms.
  double heartbeat_timeout_ms = 2000.0;
  /// Per-job wall ceiling on a remote attempt, ms (0 = none; heartbeat
  /// supervision still polices liveness).
  double job_timeout_ms = 0.0;
  double connect_timeout_ms = 1000.0;
  /// Capped exponential backoff between connect attempts, with
  /// deterministic jitter in [0.5, 1.5) seeded by `jitter_seed`.
  double backoff_initial_ms = 25.0;
  double backoff_max_ms = 1000.0;
  /// Consecutive connect failures after which an endpoint is dead.
  int max_connect_failures = 4;
  std::uint64_t jitter_seed = 1;
};

/// Transport telemetry for one settled cap, spliced into its report by
/// the caller (see TransportTelemetry / patch_transport_json).
struct TransportResult {
  bool remote = false;
  std::string endpoint;
  int retries = 0;
  double backoff_ms = 0.0;
  int heartbeat_misses = 0;
};

/// Byzantine gate: invoked for every remote kOk result with its 'S'
/// solution artifact before acceptance. A non-ok Status rejects the
/// result - classified like a corrupt frame, so the cap walks the
/// reassignment ladder.
using RemoteResultGate =
    std::function<Status(const JournalEntry& entry,
                         const std::string& solution_text)>;

/// Runs `tasks` across the remote endpoints plus up to
/// `local.workers` local fork workers (local.workers == 0 disables the
/// local mixing except as the ladder's forced-local fallback, which
/// always exists). Semantics mirror run_worker_pool: on_result fires in
/// completion order, interrupted pools SIGKILL local children, close
/// sessions, and leave unfinished tasks kSkipped.
WorkerPoolResult run_distributed_pool(
    const std::vector<WorkerTaskSpec>& tasks,
    const WorkerPoolOptions& local, const RemoteWorkerOptions& remote,
    const RemoteResultGate& gate, const util::Deadline& deadline,
    const std::function<void(const WorkerTaskResult&, std::size_t,
                             const TransportResult&)>& on_result);

}  // namespace powerlim::robust
