// Process-isolated parallel sweep workers with crash containment and
// resource budgets (tentpole of the robustness work, part 3).
//
// A cap sweep is embarrassingly parallel - one independent LP ladder
// per cap - but a serial in-process sweep dies whole when any single
// solve segfaults or OOMs. run_worker_pool() forks one child per task
// (up to `workers` in flight), runs the task's callback IN THE CHILD
// under optional setrlimit budgets (RLIMIT_AS memory, RLIMIT_CPU time),
// and ships the result back over a CRC-framed pipe (robust/wire.h).
// The parent supervises:
//
//   * clean exit + intact frame      -> result accepted
//   * signal death (SIGSEGV/SIGABRT) -> crash, contained
//   * allocator failure under the    -> resource-exhausted (workers
//     memory budget (kWorkerExitOom)    catch std::bad_alloc and exit
//                                       with this code)
//   * SIGXCPU (CPU budget)           -> resource-exhausted
//   * wall deadline overrun          -> SIGKILL by the parent, timed out
//   * clean exit, garbled frame      -> protocol error, treated as crash
//
// A failed task is retried once in a fresh worker; a second failure
// surfaces as a classified WorkerTaskResult the caller degrades exactly
// like an exhausted ladder rung. Results stream to the caller via
// on_result in completion order, so journal appends land as caps finish
// and a crash of the *parent* loses at most the in-flight caps.
//
// The pool is task-agnostic (the callback returns a JournalEntry), so
// tests drive it with hostile children - allocate-forever, sleep-
// forever, abort mid-write - without touching the LP stack.
#pragma once

#include <sys/types.h>

#include <functional>
#include <string>
#include <vector>

#include "robust/journal.h"
#include "robust/status.h"
#include "util/deadline.h"

namespace powerlim::robust {

/// Exit code a worker uses for "my allocator failed under the memory
/// budget" (caught std::bad_alloc). Distinct from crash-class codes so
/// the parent can classify resource exhaustion without a signal.
inline constexpr int kWorkerExitOom = 86;
/// Exit code for any other exception escaping the task callback.
inline constexpr int kWorkerExitFailure = 87;

/// Per-worker resource budgets, applied in the child before the task
/// runs. Zero means unlimited.
struct WorkerLimits {
  /// RLIMIT_AS, MiB. Ignored under AddressSanitizer (ASan reserves TBs
  /// of shadow address space; an AS limit would kill every worker).
  long mem_mb = 0;
  /// RLIMIT_CPU, seconds (rounded up; hard limit adds 2 s of grace).
  double cpu_seconds = 0.0;
  /// Parent-enforced wall budget per spawn, seconds: a worker alive
  /// past it is SIGKILLed and the attempt classified kTimedOut.
  double wall_seconds = 0.0;
};

/// How one task finally settled (after any retry).
enum class WorkerOutcome {
  kOk,
  kCrashed,            // signal death / unexpected exit / garbled frame
  kResourceExhausted,  // allocator failure or SIGXCPU under a budget
  kTimedOut,           // parent wall deadline killed it
  kSkipped,            // pool interrupted before the task ran
};

const char* to_string(WorkerOutcome outcome);

/// Maps a terminal (non-kOk) outcome onto the sweep taxonomy.
StatusCode status_code_for(WorkerOutcome outcome);

/// The task body, run in the forked child. `attempt` is 0 for the first
/// spawn, 1 for the retry. The returned entry is wire-framed to the
/// parent; throwing std::bad_alloc exits with kWorkerExitOom, any other
/// exception with kWorkerExitFailure.
using WorkerTask = std::function<JournalEntry(int attempt)>;

struct WorkerTaskSpec {
  /// Task identity in logs and results (the cap being solved).
  double job_cap_watts = 0.0;
  WorkerTask run;
};

/// One settled task.
struct WorkerTaskResult {
  WorkerOutcome outcome = WorkerOutcome::kSkipped;
  /// Valid when outcome == kOk.
  JournalEntry entry;
  /// Spawns consumed (1 = clean first try, 2 = retried).
  int spawns = 0;
  /// Peak RSS across this task's spawns, KiB (wait4 rusage).
  long peak_rss_kb = 0;
  /// Parent-observed wall time across this task's spawns, ms.
  double wall_ms = 0.0;
  /// Human-readable classification of the last failure ("signal 6
  /// (SIGABRT)", "exit 86 (allocator failure)", ...); empty when clean.
  std::string detail;
};

/// Pool-wide telemetry, aggregated into RunReport/CLI output. The
/// remote_* / certificate fields stay zero for purely local pools.
struct WorkerPoolStats {
  int tasks = 0;
  int spawned = 0;
  int clean = 0;
  int crashes = 0;
  int resource_exhausted = 0;
  int timeouts = 0;
  int retries = 0;
  long max_peak_rss_kb = 0;
  /// Caps settled by a remote serve-worker (distributed pools).
  int remote_clean = 0;
  /// Remote attempts lost to disconnect / timeout / corrupt frame /
  /// rejected result.
  int remote_failures = 0;
  /// Remote results rejected by the local certificate gate.
  int certificate_rejects = 0;
};

struct WorkerPoolOptions {
  /// Max children in flight. Clamped to >= 1.
  int workers = 2;
  WorkerLimits limits;
  /// Extra spawns after a failed attempt (the ISSUE ladder: one retry).
  int max_retries = 1;
};

struct WorkerPoolResult {
  /// One result per task, in task order (not completion order).
  std::vector<WorkerTaskResult> results;
  WorkerPoolStats stats;
  /// True when the deadline/cancel stopped the pool early; unfinished
  /// tasks are kSkipped and in-flight workers were SIGKILLed.
  bool interrupted = false;
  util::StopReason stop = util::StopReason::kNone;
};

/// Runs every task in a forked worker, at most `options.workers`
/// concurrently. `on_result` (optional) fires in the parent as each
/// task settles, in completion order - the journaling hook. `deadline`
/// is checked between dispatches and enforced on in-flight workers.
WorkerPoolResult run_worker_pool(
    const std::vector<WorkerTaskSpec>& tasks,
    const WorkerPoolOptions& options, const util::Deadline& deadline = {},
    const std::function<void(const WorkerTaskResult&, std::size_t)>&
        on_result = {});

// --- building blocks shared with the distributed pool / serve-worker ---

/// Applies the setrlimit budgets in the current (child) process. No-op
/// for zero budgets; RLIMIT_AS is compiled out under AddressSanitizer.
void apply_worker_limits(const WorkerLimits& limits);

/// What one worker *attempt* came back as, before retry policy.
struct WorkerAttemptVerdict {
  WorkerOutcome outcome = WorkerOutcome::kCrashed;
  /// Valid when outcome == kOk.
  JournalEntry entry;
  /// Optional 'S' frame shipped after the result: the solution artifact
  /// (core::write_schedule text) a remote verifies against the
  /// certificate gate. Empty for local pool workers.
  std::string solution_text;
  std::string detail;
};

/// Classifies one finished worker attempt from its wait() status and the
/// bytes it wrote before EOF. Accepts one 'R' result frame, optionally
/// followed by one 'S' solution frame; anything else on a clean exit is
/// a protocol error (kCrashed). `deadline_killed` marks a worker the
/// supervisor SIGKILLed for overrunning its wall budget.
WorkerAttemptVerdict classify_worker_exit(bool deadline_killed,
                                          int wait_status,
                                          const std::string& pipe_bytes,
                                          double expected_cap);

/// One forked worker (pid + the read end of its result pipe).
struct SpawnedWorker {
  pid_t pid = -1;
  int read_fd = -1;
};

/// Forks one worker for `spec` at `attempt` under `limits`. The child
/// closes every fd in `extra_close_fds` (sibling pipes, sockets - a
/// child holding a session socket open would suppress the peer's EOF),
/// runs the task, ships the framed result, and _exit()s. Returns false
/// on fork/pipe failure (errno preserved).
bool spawn_worker(const WorkerTaskSpec& spec, int attempt,
                  const WorkerLimits& limits, int worker_id,
                  const std::vector<int>& extra_close_fds,
                  SpawnedWorker* out);

}  // namespace powerlim::robust
