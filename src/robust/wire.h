// CRC-framed, length-prefixed pipe protocol between the sweep
// supervisor and its forked workers.
//
// A worker ships exactly one result frame up its pipe before _exit():
//
//   W <tag> <crc32-hex> <payload-bytes>\n<payload>
//
// mirroring the sweep journal's framing (same CRC-32, same hex/length
// header) so a frame is self-checking: the parent accepts a result only
// when the header parses, the length matches, and the CRC verifies.
// Anything else - a worker SIGSEGVing mid-write, an OOM kill truncating
// the payload, stray bytes from a corrupted child - is classified as a
// protocol error and handled like a crash (retry, then degrade), never
// trusted as data.
//
// All IO retries EINTR (util::posix_io): the supervisor takes SIGCHLD
// and deadline signals constantly, and a short read must not masquerade
// as corruption.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "robust/status.h"

namespace powerlim::robust {

/// One framed message. Tags in use: 'R' = per-cap result (payload is a
/// serialized JournalEntry, see robust/journal.h); the remote-worker
/// protocol (robust/remote_worker.h) adds handshake/job/heartbeat/
/// solution tags over the same framing.
struct WireFrame {
  char tag = 0;
  std::string payload;
};

/// Hard ceiling on one frame's payload. A length prefix above it is
/// hostile or corrupt by definition (the largest real payload - a
/// serialized 100k-task trace - is a few MiB) and is rejected *before*
/// any allocation, so a malicious peer cannot OOM the scheduler with a
/// 16-exabyte header.
inline constexpr std::size_t kMaxWirePayload = 64u << 20;  // 64 MiB

/// Ceiling on the frame header line ("W <tag> <crc8> <len>\n"): bytes
/// without a newline past this cannot be a valid header.
inline constexpr std::size_t kMaxWireHeader = 64;

/// Whole-frame ceiling: the most bytes one intact frame can occupy
/// (header line + newline + maximal payload). Both sides of every
/// socket protocol share this bound - a reader may buffer at most this
/// much per incomplete frame, and a connection whose undecoded backlog
/// exceeds it is hostile or corrupt and must be dropped. Keeping the
/// constant here (not per-daemon) is what makes the client and server
/// ceilings provably identical.
inline constexpr std::size_t kMaxFrameBytes =
    kMaxWireHeader + 1 + kMaxWirePayload;

/// Writes one frame to `fd` as a single EINTR-retried write. Pipes are
/// unidirectional with one reader, so no interleaving is possible.
/// Payloads over kMaxWirePayload are refused with kWireMalformed (the
/// peer would reject them anyway).
[[nodiscard]] Status write_wire_frame(int fd, char tag, const std::string& payload);

/// The frame as bytes (header + payload), for callers that own the
/// transport - e.g. socket sends with timeouts. Oversized payloads
/// return an empty string.
std::string encode_wire_frame(char tag, const std::string& payload);

/// Result of decoding a worker's buffered output.
enum class WireDecode {
  kOk,        // one intact frame decoded
  kEmpty,     // no bytes at all (worker died before writing)
  kCorrupt,   // bytes present but torn/CRC-mismatched/malformed
  kTrailing,  // intact frame followed by unexpected extra bytes
};

const char* to_string(WireDecode d);

/// Decodes the single frame a worker's pipe delivered (the parent reads
/// to EOF first; workers write exactly one frame). Never throws.
WireDecode decode_wire_frame(const std::string& bytes, WireFrame* out);

/// Decodes a *sequence* of frames (the remote worker ships 'R' then an
/// optional 'S' artifact on one pipe). kOk requires at least one frame
/// and every byte consumed; kTrailing means an intact prefix of frames
/// followed by a torn partial one.
WireDecode decode_wire_frames(const std::string& bytes,
                              std::vector<WireFrame>* out);

/// Drains `fd` to EOF into `*out`, retrying EINTR. Returns false on a
/// real read error.
bool drain_fd(int fd, std::string* out);

/// Incremental frame decoder over a byte stream (TCP). feed() appends
/// received bytes; next() pops the earliest complete frame. The stream
/// is *unresynchronizable* by design: any malformed header, hostile
/// length prefix (> max_payload, rejected before allocation), or CRC
/// mismatch poisons the stream permanently - after a torn frame there is
/// no trustworthy boundary to resume from, so the connection must be
/// dropped and the job retried elsewhere.
class FrameStream {
 public:
  explicit FrameStream(std::size_t max_payload = kMaxWirePayload)
      : max_payload_(max_payload) {}

  void feed(const std::string& bytes);

  /// kOk: *out holds the next frame. kEmpty: no complete frame buffered
  /// yet (wait for more bytes). kCorrupt: the stream is poisoned (see
  /// last_error()).
  WireDecode next(WireFrame* out);

  bool poisoned() const { return poisoned_; }
  const std::string& last_error() const { return error_; }
  /// Bytes buffered but not yet decoded.
  std::size_t buffered() const { return buffer_.size(); }

 private:
  void poison(const std::string& why);

  std::size_t max_payload_;
  std::string buffer_;
  bool poisoned_ = false;
  std::string error_;
};

}  // namespace powerlim::robust
