// CRC-framed, length-prefixed pipe protocol between the sweep
// supervisor and its forked workers.
//
// A worker ships exactly one result frame up its pipe before _exit():
//
//   W <tag> <crc32-hex> <payload-bytes>\n<payload>
//
// mirroring the sweep journal's framing (same CRC-32, same hex/length
// header) so a frame is self-checking: the parent accepts a result only
// when the header parses, the length matches, and the CRC verifies.
// Anything else - a worker SIGSEGVing mid-write, an OOM kill truncating
// the payload, stray bytes from a corrupted child - is classified as a
// protocol error and handled like a crash (retry, then degrade), never
// trusted as data.
//
// All IO retries EINTR (util::posix_io): the supervisor takes SIGCHLD
// and deadline signals constantly, and a short read must not masquerade
// as corruption.
#pragma once

#include <string>

#include "robust/status.h"

namespace powerlim::robust {

/// One framed message. Tags in use: 'R' = per-cap result (payload is a
/// serialized JournalEntry, see robust/journal.h).
struct WireFrame {
  char tag = 0;
  std::string payload;
};

/// Writes one frame to `fd` as a single EINTR-retried write. Pipes are
/// unidirectional with one reader, so no interleaving is possible.
Status write_wire_frame(int fd, char tag, const std::string& payload);

/// Result of decoding a worker's buffered output.
enum class WireDecode {
  kOk,        // one intact frame decoded
  kEmpty,     // no bytes at all (worker died before writing)
  kCorrupt,   // bytes present but torn/CRC-mismatched/malformed
  kTrailing,  // intact frame followed by unexpected extra bytes
};

const char* to_string(WireDecode d);

/// Decodes the single frame a worker's pipe delivered (the parent reads
/// to EOF first; workers write exactly one frame). Never throws.
WireDecode decode_wire_frame(const std::string& bytes, WireFrame* out);

/// Drains `fd` to EOF into `*out`, retrying EINTR. Returns false on a
/// real read error.
bool drain_fd(int fd, std::string* out);

}  // namespace powerlim::robust
