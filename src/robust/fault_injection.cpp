#include "robust/fault_injection.h"

#include <time.h>
#include <unistd.h>

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "robust/worker_pool.h"
#include "util/rng.h"

namespace powerlim::robust {

namespace {

thread_local const FaultPlan* g_active_plan = nullptr;

}  // namespace

bool FaultPlan::applies_to_cap(double job_cap_watts) const {
  if (only_job_cap < 0.0) return true;
  return std::abs(job_cap_watts - only_job_cap) <= cap_tolerance;
}

const char* to_string(WorkerFault fault) {
  switch (fault) {
    case WorkerFault::kNone:
      return "none";
    case WorkerFault::kCrash:
      return "worker-crash";
    case WorkerFault::kOom:
      return "worker-oom";
    case WorkerFault::kHang:
      return "worker-hang";
  }
  return "?";
}

bool worker_fault_from_string(const std::string& name, WorkerFault* fault) {
  for (WorkerFault f :
       {WorkerFault::kCrash, WorkerFault::kOom, WorkerFault::kHang}) {
    if (name == to_string(f)) {
      *fault = f;
      return true;
    }
  }
  return false;
}

const char* to_string(NetFault fault) {
  switch (fault) {
    case NetFault::kNone:
      return "none";
    case NetFault::kDrop:
      return "net-drop";
    case NetFault::kStall:
      return "net-stall";
    case NetFault::kCorrupt:
      return "net-corrupt";
    case NetFault::kSlow:
      return "net-slow";
    case NetFault::kLie:
      return "net-lie";
  }
  return "?";
}

bool net_fault_from_string(const std::string& name, NetFault* fault) {
  for (NetFault f : {NetFault::kDrop, NetFault::kStall, NetFault::kCorrupt,
                     NetFault::kSlow, NetFault::kLie}) {
    if (name == to_string(f)) {
      *fault = f;
      return true;
    }
  }
  return false;
}

void maybe_execute_worker_fault(double job_cap_watts, int attempt) {
  const FaultPlan* plan = ScopedFaultPlan::active();
  if (plan == nullptr || plan->worker_fault == WorkerFault::kNone) return;
  if (!plan->applies_to_cap(job_cap_watts)) return;
  if (attempt >= plan->worker_fault_attempts) return;
  switch (plan->worker_fault) {
    case WorkerFault::kCrash:
      std::abort();
    case WorkerFault::kOom:
      _exit(kWorkerExitOom);
    case WorkerFault::kHang:
      // Sleep until the supervisor's wall deadline SIGKILLs us. The loop
      // guards against spurious wakeups; a worker must not "recover".
      for (;;) {
        struct timespec ts = {3600, 0};
        nanosleep(&ts, nullptr);
      }
    case WorkerFault::kNone:
      break;
  }
}

ScopedFaultPlan::ScopedFaultPlan(const FaultPlan& plan)
    : prev_(g_active_plan) {
  g_active_plan = &plan;
}

ScopedFaultPlan::~ScopedFaultPlan() { g_active_plan = prev_; }

const FaultPlan* ScopedFaultPlan::active() { return g_active_plan; }

std::string truncate_trace_text(const std::string& text,
                                double keep_fraction) {
  if (keep_fraction < 0.0) keep_fraction = 0.0;
  if (keep_fraction > 1.0) keep_fraction = 1.0;

  std::vector<std::string> lines;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) lines.push_back(line);

  const std::size_t keep = static_cast<std::size_t>(
      static_cast<double>(lines.size()) * keep_fraction);
  std::ostringstream out;
  for (std::size_t i = 0; i + 1 < keep; ++i) out << lines[i] << '\n';
  if (keep > 0) {
    // Cut the last kept line in half so its tail token is malformed.
    const std::string& last = lines[keep - 1];
    out << last.substr(0, last.size() / 2) << '\n';
  }
  return out.str();
}

std::string garble_trace_token(const std::string& text, std::uint64_t seed) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) lines.push_back(line);

  // Candidate positions: (line, token) pairs where the token parses as a
  // number. Skips the header so the fault lands in a data directive.
  struct Pos {
    std::size_t line;
    std::size_t begin;
    std::size_t len;
  };
  std::vector<Pos> candidates;
  for (std::size_t li = 1; li < lines.size(); ++li) {
    const std::string& line = lines[li];
    std::size_t i = 0;
    while (i < line.size()) {
      while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
      const std::size_t begin = i;
      while (i < line.size() && !std::isspace(static_cast<unsigned char>(line[i]))) ++i;
      if (i > begin) {
        const std::string tok = line.substr(begin, i - begin);
        std::size_t used = 0;
        bool numeric = false;
        try {
          (void)std::stod(tok, &used);
          numeric = used == tok.size();
        } catch (const std::exception&) {
        }
        if (numeric) candidates.push_back({li, begin, i - begin});
      }
    }
  }
  if (candidates.empty()) return text;

  util::Rng rng(seed);
  const Pos& p = candidates[static_cast<std::size_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(candidates.size()) - 1))];
  std::string garbled = lines[p.line];
  garbled.replace(p.begin, p.len, "x?y");
  lines[p.line] = garbled;

  std::ostringstream out;
  for (const std::string& line : lines) out << line << '\n';
  return out.str();
}

}  // namespace powerlim::robust
