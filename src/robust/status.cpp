#include "robust/status.h"

namespace powerlim::robust {

const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kBadInput:
      return "bad-input";
    case StatusCode::kInfeasibleCap:
      return "infeasible-cap";
    case StatusCode::kEmptyFrontier:
      return "empty-frontier";
    case StatusCode::kSolverNumerical:
      return "solver-numerical";
    case StatusCode::kIterationLimit:
      return "iteration-limit";
    case StatusCode::kSolverUnbounded:
      return "solver-unbounded";
    case StatusCode::kReplayCapViolation:
      return "replay-cap-violation";
    case StatusCode::kCertificateFailed:
      return "certificate-failed";
    case StatusCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kWorkerCrashed:
      return "worker-crashed";
    case StatusCode::kResourceExhausted:
      return "resource-exhausted";
    case StatusCode::kWireMalformed:
      return "wire-malformed";
    case StatusCode::kNetError:
      return "net-error";
    case StatusCode::kStaleEpoch:
      return "stale-epoch";
    case StatusCode::kInternal:
      return "internal";
  }
  return "?";
}

bool status_code_from_string(const std::string& name, StatusCode* code) {
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kBadInput, StatusCode::kInfeasibleCap,
        StatusCode::kEmptyFrontier, StatusCode::kSolverNumerical,
        StatusCode::kIterationLimit, StatusCode::kSolverUnbounded,
        StatusCode::kReplayCapViolation, StatusCode::kCertificateFailed,
        StatusCode::kDeadlineExceeded,
        StatusCode::kCancelled, StatusCode::kWorkerCrashed,
        StatusCode::kResourceExhausted, StatusCode::kWireMalformed,
        StatusCode::kNetError, StatusCode::kStaleEpoch,
        StatusCode::kInternal}) {
    if (name == to_string(c)) {
      *code = c;
      return true;
    }
  }
  return false;
}

StatusCode from_solve_status(lp::SolveStatus status) {
  switch (status) {
    case lp::SolveStatus::kOptimal:
      return StatusCode::kOk;
    case lp::SolveStatus::kInfeasible:
      return StatusCode::kInfeasibleCap;
    case lp::SolveStatus::kUnbounded:
      return StatusCode::kSolverUnbounded;
    case lp::SolveStatus::kIterationLimit:
      return StatusCode::kIterationLimit;
    case lp::SolveStatus::kNumericalError:
      return StatusCode::kSolverNumerical;
    case lp::SolveStatus::kDeadlineExceeded:
      return StatusCode::kDeadlineExceeded;
    case lp::SolveStatus::kCancelled:
      return StatusCode::kCancelled;
  }
  return StatusCode::kInternal;
}

std::string Status::to_string() const {
  if (ok()) return "ok";
  std::string out = robust::to_string(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace powerlim::robust
