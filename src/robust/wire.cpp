#include "robust/wire.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "robust/journal.h"
#include "util/posix_io.h"

namespace powerlim::robust {

namespace {

constexpr char kPrefix = 'W';

struct ParsedHeader {
  char tag = 0;
  std::uint32_t crc = 0;
  unsigned long long len = 0;
};

/// Parses "W <tag> <crc8> <len>" (the text before the newline).
bool parse_header(const std::string& header, ParsedHeader* out) {
  char prefix = 0;
  char tag = 0;
  char crc_text[16] = {0};
  unsigned long long len = 0;
  if (std::sscanf(header.c_str(), "%c %c %15s %llu", &prefix, &tag, crc_text,
                  &len) != 4 ||
      prefix != kPrefix || std::strlen(crc_text) != 8) {
    return false;
  }
  char* end = nullptr;
  const std::uint32_t crc =
      static_cast<std::uint32_t>(std::strtoul(crc_text, &end, 16));
  if (end == crc_text || *end != '\0') return false;
  out->tag = tag;
  out->crc = crc;
  out->len = len;
  return true;
}

}  // namespace

const char* to_string(WireDecode d) {
  switch (d) {
    case WireDecode::kOk:
      return "ok";
    case WireDecode::kEmpty:
      return "empty";
    case WireDecode::kCorrupt:
      return "corrupt";
    case WireDecode::kTrailing:
      return "trailing-bytes";
  }
  return "?";
}

std::string encode_wire_frame(char tag, const std::string& payload) {
  if (payload.size() > kMaxWirePayload) return std::string();
  char header[48];
  std::snprintf(header, sizeof header, "%c %c %08" PRIx32 " %zu\n", kPrefix,
                tag, crc32(payload.data(), payload.size()), payload.size());
  std::string frame = header;
  frame += payload;
  return frame;
}

Status write_wire_frame(int fd, char tag, const std::string& payload) {
  if (payload.size() > kMaxWirePayload) {
    return Status(StatusCode::kWireMalformed,
                  "refusing to send a frame over the " +
                      std::to_string(kMaxWirePayload) +
                      "-byte payload ceiling");
  }
  const std::string frame = encode_wire_frame(tag, payload);
  if (util::write_full(fd, frame.data(), frame.size()) != 0) {
    return Status(StatusCode::kInternal,
                  std::string("wire write failed: ") + std::strerror(errno));
  }
  return Status::Ok();
}

WireDecode decode_wire_frame(const std::string& bytes, WireFrame* out) {
  if (bytes.empty()) return WireDecode::kEmpty;
  const std::size_t header_end = bytes.find('\n');
  if (header_end == std::string::npos) return WireDecode::kCorrupt;
  ParsedHeader h;
  if (!parse_header(bytes.substr(0, header_end), &h)) {
    return WireDecode::kCorrupt;
  }
  // A hostile length prefix is rejected here, before any payload-sized
  // work happens (the substr below is bounded by the actual bytes, but
  // the stream decoder would otherwise buffer until the claimed length
  // arrived).
  if (h.len > kMaxWirePayload) return WireDecode::kCorrupt;
  const std::size_t payload_start = header_end + 1;
  if (h.len > bytes.size() - payload_start) return WireDecode::kCorrupt;
  const std::string payload =
      bytes.substr(payload_start, static_cast<std::size_t>(h.len));
  if (crc32(payload.data(), payload.size()) != h.crc) {
    return WireDecode::kCorrupt;
  }
  out->tag = h.tag;
  out->payload = payload;
  return payload_start + h.len == bytes.size() ? WireDecode::kOk
                                               : WireDecode::kTrailing;
}

WireDecode decode_wire_frames(const std::string& bytes,
                              std::vector<WireFrame>* out) {
  out->clear();
  if (bytes.empty()) return WireDecode::kEmpty;
  FrameStream stream;
  stream.feed(bytes);
  WireFrame frame;
  for (;;) {
    const WireDecode d = stream.next(&frame);
    if (d == WireDecode::kOk) {
      out->push_back(frame);
      continue;
    }
    if (d == WireDecode::kCorrupt) return WireDecode::kCorrupt;
    break;  // kEmpty: nothing more decodable
  }
  if (out->empty()) return WireDecode::kCorrupt;
  return stream.buffered() == 0 ? WireDecode::kOk : WireDecode::kTrailing;
}

void FrameStream::feed(const std::string& bytes) {
  if (poisoned_) return;  // bytes after a torn frame are untrustworthy
  buffer_ += bytes;
}

void FrameStream::poison(const std::string& why) {
  poisoned_ = true;
  error_ = why;
  buffer_.clear();
}

WireDecode FrameStream::next(WireFrame* out) {
  if (poisoned_) return WireDecode::kCorrupt;
  if (buffer_.empty()) return WireDecode::kEmpty;
  const std::size_t header_end = buffer_.find('\n');
  if (header_end == std::string::npos) {
    if (buffer_.size() > kMaxWireHeader) {
      poison("no frame header within " + std::to_string(kMaxWireHeader) +
             " bytes");
      return WireDecode::kCorrupt;
    }
    return WireDecode::kEmpty;
  }
  if (header_end > kMaxWireHeader) {
    poison("frame header line too long");
    return WireDecode::kCorrupt;
  }
  ParsedHeader h;
  if (!parse_header(buffer_.substr(0, header_end), &h)) {
    poison("malformed frame header");
    return WireDecode::kCorrupt;
  }
  if (h.len > max_payload_) {
    // Rejected before buffering or allocating anything payload-sized:
    // the hostile prefix costs the peer nothing but this connection.
    poison("hostile length prefix (" + std::to_string(h.len) + " > " +
           std::to_string(max_payload_) + " byte ceiling)");
    return WireDecode::kCorrupt;
  }
  const std::size_t payload_start = header_end + 1;
  if (buffer_.size() - payload_start < h.len) return WireDecode::kEmpty;
  std::string payload =
      buffer_.substr(payload_start, static_cast<std::size_t>(h.len));
  if (crc32(payload.data(), payload.size()) != h.crc) {
    poison("frame CRC mismatch");
    return WireDecode::kCorrupt;
  }
  out->tag = h.tag;
  out->payload = std::move(payload);
  buffer_.erase(0, payload_start + static_cast<std::size_t>(h.len));
  return WireDecode::kOk;
}

bool drain_fd(int fd, std::string* out) {
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = util::read_some(fd, buf, sizeof buf);
    if (n < 0) return false;
    if (n == 0) return true;
    out->append(buf, static_cast<std::size_t>(n));
  }
}

}  // namespace powerlim::robust
