#include "robust/wire.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "robust/journal.h"
#include "util/posix_io.h"

namespace powerlim::robust {

namespace {

constexpr char kPrefix = 'W';

}  // namespace

const char* to_string(WireDecode d) {
  switch (d) {
    case WireDecode::kOk:
      return "ok";
    case WireDecode::kEmpty:
      return "empty";
    case WireDecode::kCorrupt:
      return "corrupt";
    case WireDecode::kTrailing:
      return "trailing-bytes";
  }
  return "?";
}

Status write_wire_frame(int fd, char tag, const std::string& payload) {
  char header[48];
  std::snprintf(header, sizeof header, "%c %c %08" PRIx32 " %zu\n", kPrefix,
                tag, crc32(payload.data(), payload.size()), payload.size());
  std::string frame = header;
  frame += payload;
  if (util::write_full(fd, frame.data(), frame.size()) != 0) {
    return Status(StatusCode::kInternal,
                  std::string("wire write failed: ") + std::strerror(errno));
  }
  return Status::Ok();
}

WireDecode decode_wire_frame(const std::string& bytes, WireFrame* out) {
  if (bytes.empty()) return WireDecode::kEmpty;
  const std::size_t header_end = bytes.find('\n');
  if (header_end == std::string::npos) return WireDecode::kCorrupt;
  const std::string header = bytes.substr(0, header_end);
  char prefix = 0;
  char tag = 0;
  char crc_text[16] = {0};
  unsigned long long len = 0;
  if (std::sscanf(header.c_str(), "%c %c %15s %llu", &prefix, &tag, crc_text,
                  &len) != 4 ||
      prefix != kPrefix || std::strlen(crc_text) != 8) {
    return WireDecode::kCorrupt;
  }
  const std::size_t payload_start = header_end + 1;
  if (len > bytes.size() - payload_start) return WireDecode::kCorrupt;
  const std::string payload = bytes.substr(payload_start, len);
  char* end = nullptr;
  const std::uint32_t want =
      static_cast<std::uint32_t>(std::strtoul(crc_text, &end, 16));
  if (end == crc_text || *end != '\0' ||
      crc32(payload.data(), payload.size()) != want) {
    return WireDecode::kCorrupt;
  }
  out->tag = tag;
  out->payload = payload;
  return payload_start + len == bytes.size() ? WireDecode::kOk
                                             : WireDecode::kTrailing;
}

bool drain_fd(int fd, std::string* out) {
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = util::read_some(fd, buf, sizeof buf);
    if (n < 0) return false;
    if (n == 0) return true;
    out->append(buf, static_cast<std::size_t>(n));
  }
}

}  // namespace powerlim::robust
