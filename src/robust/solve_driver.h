// Resilient solve pipeline: retry/degradation ladder around the windowed
// LP (tentpole of the robustness work).
//
// SolveDriver wraps WindowSweeper so that a cap sweep *always finishes*
// with a structured per-cap verdict instead of dying on the first
// numerical failure. Each solve walks a deterministic ladder:
//
//   1. "warm"        - warm-started solve (per-window basis cache)
//   2. "cold"        - warm-start cache dropped, plain re-solve
//   3. "refactor-20" - refactorize the basis every 20 pivots
//   4. "bland"       - Bland's anti-cycling rule from the first pivot
//   5. "perturb"     - cap nudged down by 1e-7 relative + looser tols
//                      (breaks ties that stall degenerate bases)
//
// and, when every rung fails, degrades to the Static-policy bound: the
// uniform-RAPL schedule is always simulable, so the sweep still reports
// an achievable (if conservative) time for the cap, clearly marked
// `degraded`. Only genuinely retryable failures walk the ladder -
// infeasible caps and bad inputs return immediately.
//
// An optimal LP solve is additionally *replay-validated*: the schedule is
// executed in the simulator and checked against the cap in the RAPL
// windowed-average sense (sim::check_cap); a violating schedule is
// treated as a failed attempt (kReplayCapViolation), not returned.
//
// Every attempt is recorded in a RunReport (rung, outcome, iterations,
// degenerate pivots, refactorizations, Bland engagement, primal
// residual, failed window) which serializes to JSON for artifact trails
// next to the schedule.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "check/certificate.h"
#include "core/windowed.h"
#include "robust/status.h"
#include "sim/replay.h"
#include "util/deadline.h"

namespace powerlim::robust {

/// RunReport JSON schema version. Bump whenever the serialized shape
/// changes; tests/robust/report_schema_test.cpp locks the current shape
/// with a golden string so accidental drift fails loudly.
/// Schema 4 added the `lint` and `certificate` blocks (verification
/// layer) and the `certificate-failed` verdict. Schema 5 added the
/// `transport` block (distributed sweeps): endpoint, retries,
/// backoff_ms, heartbeat_misses - zeroed for local solves and excluded
/// from byte-identity comparisons like the worker block. Schema 6 added
/// the `service` block (powerlimd daemon): queue depth, shed count, and
/// queue-wait / solve / total latency for caps solved through the serve
/// path - zeroed for offline solves and excluded from byte-identity
/// comparisons like worker/transport. Schema 7 added `epoch` and `role`
/// to the service block (high-availability failover): which failover
/// epoch the serving daemon held and whether it served as "primary" or
/// "standby" - empty/zero offline, excluded from byte-identity.
/// Schema 8 added `eta_nonzeros` and `lu_fill_ratio` to each ladder
/// attempt (sparse simplex basis telemetry; 0 on the dense backend) -
/// designated solver telemetry, excluded from byte-identity comparisons
/// alongside iterations/refactor_count.
inline constexpr int kRunReportSchemaVersion = 8;

/// One rung of the ladder, as executed.
struct SolveAttempt {
  std::string rung;
  StatusCode outcome = StatusCode::kInternal;
  /// True when the outcome was synthesized by the active FaultPlan
  /// rather than produced by a real solve.
  bool injected = false;
  std::string detail;
  long iterations = 0;
  long degenerate_pivots = 0;
  long refactor_count = 0;
  bool bland_engaged = false;
  double primal_infeasibility = 0.0;
  /// Sparse-backend basis telemetry (schema 8): summed peak eta-file
  /// nonzeros and worst LU fill ratio across windows. Both 0 when the
  /// attempt ran on the dense backend (the accuracy rungs do).
  long eta_nonzeros = 0;
  double lu_fill_ratio = 0.0;
  /// Barrier window whose solve failed (-1: none / not window-local).
  int failed_window = -1;
};

/// Post-replay cap-compliance record (only when an optimal solve was
/// replay-validated).
struct ReplayVerdict {
  bool checked = false;
  sim::CapCheck check;
};

/// Exact-certificate verdict echo (schema 4): the verdict for the
/// *accepted* solution when the cap ended kOk, or the last failing
/// verdict when certificate rejection contributed to degradation.
struct CertificateEcho {
  /// True when the checker ran for this cap at least once.
  bool checked = false;
  bool ok = false;
  /// True when weak duality was validated (solver duals available).
  bool duality_checked = false;
  double max_violation = 0.0;
  double duality_gap = 0.0;
  /// First failing rule's message; empty when ok.
  std::string detail;
};

/// Input-lint echo (schema 4): error/warning counts from the one-time
/// structural lint of the trace + machine model this driver solves.
struct LintEcho {
  bool checked = false;
  int errors = 0;
  int warnings = 0;
};

/// Worker-process supervision telemetry (schema 3). Zeroed for an
/// in-process solve; a forked sweep worker stamps it before shipping its
/// report, and the supervisor synthesizes it for caps whose workers
/// died. Like wall_ms, it is a telemetry field: excluded from resume /
/// serial-vs-parallel byte-identity comparisons.
struct WorkerTelemetry {
  /// True when the solve ran in an isolated worker process.
  bool isolated = false;
  /// Worker spawns this cap consumed (1 = clean first try, 2 = retried).
  int spawns = 0;
  /// Attempts that crashed/starved before this result (= spawns - 1
  /// when the final attempt succeeded).
  int retries = 0;
  /// Peak resident set over the cap's workers, KiB (0 = not measured).
  long peak_rss_kb = 0;
};

/// Remote-transport telemetry (schema 5). Zeroed unless the cap was
/// settled through a distributed sweep's coordinator, which splices the
/// real values into the worker-produced report (the worker cannot know
/// how many times its cap bounced between peers). Telemetry like
/// wall_ms/worker: excluded from byte-identity comparisons.
struct TransportTelemetry {
  /// True when the accepted result came from a remote serve-worker.
  bool remote = false;
  /// "host:port" of the worker that settled the cap (empty for local).
  std::string endpoint;
  /// Attempts lost (anywhere) before this cap settled.
  int retries = 0;
  /// Total connect-backoff wait accumulated by the settling session, ms.
  double backoff_ms = 0.0;
  /// Heartbeat intervals that elapsed silent while the cap solved
  /// remotely (below the dead-peer threshold - a slow, live worker).
  int heartbeat_misses = 0;
};

/// Daemon-service telemetry (schema 6). Zeroed unless the cap was
/// settled by a powerlimd request executor, which splices the real
/// values into the report it replies with (the solver cannot know how
/// long its request queued or how loaded the daemon was). The journal
/// keeps the *unpatched* report so daemon journals stay byte-compatible
/// with offline sweeps; only client replies carry the block filled in.
/// Telemetry like wall_ms/worker/transport: excluded from byte-identity
/// comparisons.
struct ServiceTelemetry {
  /// True when the cap was solved by a daemon on behalf of a request.
  bool served = false;
  /// Requests queued (admitted, not yet executing) when this cap's
  /// request was admitted.
  int queue_depth = 0;
  /// Requests the daemon had shed (replied `overloaded`) at that point.
  long shed_total = 0;
  /// Admission-to-execution wait for the owning request, ms.
  double queue_wait_ms = 0.0;
  /// Executor solve time for the owning request, ms.
  double solve_ms = 0.0;
  /// Admission-to-reply total for the owning request, ms.
  double total_ms = 0.0;
  /// Failover epoch the serving daemon held (schema 7; 0 offline).
  std::uint64_t epoch = 0;
  /// "primary" or "standby" when served, empty offline (schema 7).
  std::string role;
};

/// Resolved supervision/ladder options echoed into every RunReport so a
/// degraded or fault-injected run is reproducible from the report alone.
struct LadderEcho {
  bool enable_ladder = true;
  bool enable_fallback = true;
  bool validate_replay = true;
  /// Per-cap wall-clock budget, ms (0: unlimited).
  double cap_deadline_ms = 0.0;
  /// Whether a cancel token was attached to the solve.
  bool cancellable = false;
};

/// The structured verdict for one cap: what happened, how hard the
/// driver had to try, and what bound (if any) survived.
struct RunReport {
  /// Serialized-shape version (kRunReportSchemaVersion).
  int schema_version = kRunReportSchemaVersion;
  double job_cap_watts = 0.0;
  double socket_cap_watts = 0.0;
  /// Final classification. kOk: the LP bound stands. Anything else with
  /// `degraded` set: the failure class that exhausted the ladder, with
  /// the Static-policy bound substituted.
  StatusCode verdict = StatusCode::kInternal;
  std::string detail;
  /// True when `bound_seconds` is the Static-policy fallback, not the LP
  /// optimum. A degraded bound is *achievable but conservative*: it is
  /// an upper bound on the optimal time, where the LP bound is the
  /// near-optimal target itself.
  bool degraded = false;
  /// Fallback that produced the degraded bound ("static-policy").
  std::string fallback;
  /// LP bound when verdict == kOk; fallback time when degraded;
  /// < 0 when no bound of any kind was obtained.
  double bound_seconds = -1.0;
  double energy_joules = 0.0;
  double min_feasible_power_watts = 0.0;
  /// Wall-clock time the driver spent on this cap, ms (a timing field:
  /// excluded from resume byte-identity comparisons).
  double wall_ms = 0.0;
  /// True when a FaultPlan was active for this cap; `fault_seed` then
  /// reproduces the injected faults bit-identically.
  bool fault_active = false;
  std::uint64_t fault_seed = 0;
  /// Resolved supervision options for this solve.
  LadderEcho ladder;
  /// Worker-process telemetry (zeroed for in-process solves).
  WorkerTelemetry worker;
  /// Remote-transport telemetry (zeroed for local solves).
  TransportTelemetry transport;
  /// Daemon-service telemetry (zeroed for offline solves).
  ServiceTelemetry service;
  std::vector<SolveAttempt> attempts;
  ReplayVerdict replay;
  CertificateEcho certificate;
  LintEcho lint;

  /// Did this cap end with *some* usable bound (optimal or degraded)?
  bool usable() const {
    return verdict == StatusCode::kOk || (degraded && bound_seconds >= 0.0);
  }

  std::string to_json() const;
};

/// JSON array of per-cap reports (the sweep artifact).
std::string reports_to_json(const std::vector<RunReport>& reports);

/// Splices real transport telemetry into an already-serialized report
/// (remote workers ship their report as JSON; only the coordinator
/// knows the endpoint/retry history). Returns the input unchanged when
/// no "transport" block is present (pre-schema-5 journal records).
std::string patch_transport_json(const std::string& report_json,
                                 const TransportTelemetry& transport);

/// Splices real service telemetry into an already-serialized report (the
/// daemon's reply path; the journal keeps the unpatched bytes). Returns
/// the input unchanged when no "service" block is present (pre-schema-6
/// journal records).
std::string patch_service_json(const std::string& report_json,
                               const ServiceTelemetry& service);

/// Result of one driver solve: the LP result (meaningful when the
/// verdict is kOk), the validated/fallback simulation when one ran, and
/// the full report.
struct SolveOutcome {
  core::WindowedLpResult lp;
  /// Replay of the accepted schedule (kOk + validation on), or the
  /// Static-policy fallback simulation (degraded).
  std::optional<sim::SimResult> simulated;
  RunReport report;

  bool ok() const { return report.verdict == StatusCode::kOk; }
  bool usable() const { return report.usable(); }
};

struct SolveDriverOptions {
  /// Base LP options; power_cap is overwritten per solve and the ladder
  /// adjusts simplex knobs per rung.
  core::LpScheduleOptions lp;
  /// Replay-validate optimal schedules against the cap before accepting.
  bool validate_replay = true;
  /// Re-verify every optimal solve with the exact certificate checker
  /// before accepting it; a rejected certificate walks the ladder like a
  /// solver fault (kCertificateFailed) and degrades when exhausted.
  bool verify_certificate = true;
  check::CertificateOptions certificate;
  /// One-time structural lint of the trace + machine model (first solve),
  /// echoed into every RunReport. Lint findings never block the solve -
  /// the CLI input gate rejects bad traces up front; this echo records
  /// that the inputs of *this* run were (or were not) clean.
  bool lint_inputs = true;
  sim::CapCheckOptions cap_check;
  /// Replay physics (engine cluster/idle power are filled by the driver).
  sim::ReplayOptions replay;
  /// When false, only the first rung runs before falling back (tests).
  bool enable_ladder = true;
  /// When false, a fully failed ladder reports the failure with no
  /// Static-policy bound substituted.
  bool enable_fallback = true;
  /// Per-cap wall-clock budget in milliseconds; <= 0 means unlimited.
  /// The budget covers the whole ladder: when it runs out mid-rung the
  /// solve returns kDeadlineExceeded and degrades straight to the
  /// Static-policy fallback (which needs no LP) instead of burning the
  /// remaining rungs on instant failures.
  double cap_deadline_ms = 0.0;
  /// Cooperative cancellation, checked at pivot granularity (not owned;
  /// must outlive the driver). A tripped token ends the solve with
  /// kCancelled - terminal, no fallback.
  const util::CancelToken* cancel = nullptr;
  /// Outer wall budget over the whole sweep, merged (sooner-wins) with
  /// the per-cap budget into every solve's supervision deadline. When
  /// both carry cancel tokens, `cancel` above wins.
  util::Deadline deadline;
};

class SolveDriver {
 public:
  /// All references must outlive the driver. Formulation build errors
  /// (e.g. an empty frontier) are deferred: construction never throws,
  /// the first solve reports them as its verdict.
  SolveDriver(const dag::TaskGraph& graph, const machine::PowerModel& model,
              const machine::ClusterSpec& cluster,
              SolveDriverOptions options = {});
  ~SolveDriver();
  SolveDriver(SolveDriver&&) noexcept;
  SolveDriver& operator=(SolveDriver&&) noexcept;

  /// Runs the ladder for one job-level cap. Never throws: every failure
  /// mode lands in the report.
  SolveOutcome solve(double job_cap_watts) const;

  /// Per-cap sweep; one outcome per cap, in order, independent of
  /// individual failures.
  std::vector<SolveOutcome> sweep(const std::vector<double>& job_caps) const;

  /// Snapshot of the per-window warm-start cache (empty before the first
  /// solve). Journaled sweeps persist this as the checkpoint a resumed
  /// run warm-starts from.
  std::vector<lp::WarmStart> warm_starts() const;

  /// Seeds the warm-start cache from a checkpoint. Safe with stale or
  /// mismatched snapshots: a basis that does not fit is dropped and the
  /// solve falls back to a cold start.
  void restore_warm_starts(std::vector<lp::WarmStart> warm) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace powerlim::robust
