// Resilient solve pipeline: retry/degradation ladder around the windowed
// LP (tentpole of the robustness work).
//
// SolveDriver wraps WindowSweeper so that a cap sweep *always finishes*
// with a structured per-cap verdict instead of dying on the first
// numerical failure. Each solve walks a deterministic ladder:
//
//   1. "warm"        - warm-started solve (per-window basis cache)
//   2. "cold"        - warm-start cache dropped, plain re-solve
//   3. "refactor-20" - refactorize the basis every 20 pivots
//   4. "bland"       - Bland's anti-cycling rule from the first pivot
//   5. "perturb"     - cap nudged down by 1e-7 relative + looser tols
//                      (breaks ties that stall degenerate bases)
//
// and, when every rung fails, degrades to the Static-policy bound: the
// uniform-RAPL schedule is always simulable, so the sweep still reports
// an achievable (if conservative) time for the cap, clearly marked
// `degraded`. Only genuinely retryable failures walk the ladder -
// infeasible caps and bad inputs return immediately.
//
// An optimal LP solve is additionally *replay-validated*: the schedule is
// executed in the simulator and checked against the cap in the RAPL
// windowed-average sense (sim::check_cap); a violating schedule is
// treated as a failed attempt (kReplayCapViolation), not returned.
//
// Every attempt is recorded in a RunReport (rung, outcome, iterations,
// degenerate pivots, refactorizations, Bland engagement, primal
// residual, failed window) which serializes to JSON for artifact trails
// next to the schedule.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/windowed.h"
#include "robust/status.h"
#include "sim/replay.h"

namespace powerlim::robust {

/// One rung of the ladder, as executed.
struct SolveAttempt {
  std::string rung;
  StatusCode outcome = StatusCode::kInternal;
  /// True when the outcome was synthesized by the active FaultPlan
  /// rather than produced by a real solve.
  bool injected = false;
  std::string detail;
  long iterations = 0;
  long degenerate_pivots = 0;
  long refactor_count = 0;
  bool bland_engaged = false;
  double primal_infeasibility = 0.0;
  /// Barrier window whose solve failed (-1: none / not window-local).
  int failed_window = -1;
};

/// Post-replay cap-compliance record (only when an optimal solve was
/// replay-validated).
struct ReplayVerdict {
  bool checked = false;
  sim::CapCheck check;
};

/// The structured verdict for one cap: what happened, how hard the
/// driver had to try, and what bound (if any) survived.
struct RunReport {
  double job_cap_watts = 0.0;
  double socket_cap_watts = 0.0;
  /// Final classification. kOk: the LP bound stands. Anything else with
  /// `degraded` set: the failure class that exhausted the ladder, with
  /// the Static-policy bound substituted.
  StatusCode verdict = StatusCode::kInternal;
  std::string detail;
  /// True when `bound_seconds` is the Static-policy fallback, not the LP
  /// optimum. A degraded bound is *achievable but conservative*: it is
  /// an upper bound on the optimal time, where the LP bound is the
  /// near-optimal target itself.
  bool degraded = false;
  /// Fallback that produced the degraded bound ("static-policy").
  std::string fallback;
  /// LP bound when verdict == kOk; fallback time when degraded;
  /// < 0 when no bound of any kind was obtained.
  double bound_seconds = -1.0;
  double energy_joules = 0.0;
  double min_feasible_power_watts = 0.0;
  std::vector<SolveAttempt> attempts;
  ReplayVerdict replay;

  /// Did this cap end with *some* usable bound (optimal or degraded)?
  bool usable() const {
    return verdict == StatusCode::kOk || (degraded && bound_seconds >= 0.0);
  }

  std::string to_json() const;
};

/// JSON array of per-cap reports (the sweep artifact).
std::string reports_to_json(const std::vector<RunReport>& reports);

/// Result of one driver solve: the LP result (meaningful when the
/// verdict is kOk), the validated/fallback simulation when one ran, and
/// the full report.
struct SolveOutcome {
  core::WindowedLpResult lp;
  /// Replay of the accepted schedule (kOk + validation on), or the
  /// Static-policy fallback simulation (degraded).
  std::optional<sim::SimResult> simulated;
  RunReport report;

  bool ok() const { return report.verdict == StatusCode::kOk; }
  bool usable() const { return report.usable(); }
};

struct SolveDriverOptions {
  /// Base LP options; power_cap is overwritten per solve and the ladder
  /// adjusts simplex knobs per rung.
  core::LpScheduleOptions lp;
  /// Replay-validate optimal schedules against the cap before accepting.
  bool validate_replay = true;
  sim::CapCheckOptions cap_check;
  /// Replay physics (engine cluster/idle power are filled by the driver).
  sim::ReplayOptions replay;
  /// When false, only the first rung runs before falling back (tests).
  bool enable_ladder = true;
  /// When false, a fully failed ladder reports the failure with no
  /// Static-policy bound substituted.
  bool enable_fallback = true;
};

class SolveDriver {
 public:
  /// All references must outlive the driver. Formulation build errors
  /// (e.g. an empty frontier) are deferred: construction never throws,
  /// the first solve reports them as its verdict.
  SolveDriver(const dag::TaskGraph& graph, const machine::PowerModel& model,
              const machine::ClusterSpec& cluster,
              SolveDriverOptions options = {});
  ~SolveDriver();
  SolveDriver(SolveDriver&&) noexcept;
  SolveDriver& operator=(SolveDriver&&) noexcept;

  /// Runs the ladder for one job-level cap. Never throws: every failure
  /// mode lands in the report.
  SolveOutcome solve(double job_cap_watts) const;

  /// Per-cap sweep; one outcome per cap, in order, independent of
  /// individual failures.
  std::vector<SolveOutcome> sweep(const std::vector<double>& job_caps) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace powerlim::robust
