// Structured failure taxonomy for the solve pipeline.
//
// Every entry point of the pipeline (trace load -> Pareto frontier -> LP
// formulation -> solve -> replay) can fail: corrupt inputs, caps below
// idle power, simplex numerical breakdown, iteration limits, replayed
// schedules that bust the cap. Production sweeps (dozens of solves per
// trace) must treat these as expected events and degrade per-cap instead
// of aborting the whole run, so the robust layer reports them as typed
// Status values rather than untyped std::runtime_error.
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "lp/simplex.h"

namespace powerlim::robust {

enum class StatusCode {
  kOk,
  /// Malformed or inconsistent input: corrupt trace file, schedule that
  /// does not match its trace, NaN/negative caps.
  kBadInput,
  /// The requested power cap is below the smallest schedulable power
  /// (every task at its cheapest frontier point still exceeds the cap).
  kInfeasibleCap,
  /// A task's configuration frontier reduced to nothing - no Pareto
  /// point survived filtering, so the LP cannot be formulated.
  kEmptyFrontier,
  /// The simplex reported kNumericalError on every ladder rung.
  kSolverNumerical,
  /// The simplex hit its iteration cap on every ladder rung.
  kIterationLimit,
  /// The LP relaxation is unbounded (a formulation bug, surfaced
  /// structurally rather than thrown).
  kSolverUnbounded,
  /// Post-replay validation: the replayed schedule's windowed power
  /// exceeded cap + tolerance.
  kReplayCapViolation,
  /// The exact certificate checker (check/certificate.h) rejected an
  /// "optimal" solution: primal infeasibility or an unexplained duality
  /// gap when re-verified in exact rational arithmetic. Treated like a
  /// solver fault - the ladder retries, then degrades.
  kCertificateFailed,
  /// The per-cap wall-clock budget ran out. The ladder does not retry
  /// (an exhausted budget fails every later rung in O(1)); it degrades
  /// straight to the Static-policy fallback.
  kDeadlineExceeded,
  /// Cooperative cancellation (SIGINT/SIGTERM or a supervising driver)
  /// tripped mid-solve. Terminal: no retry, no fallback - the caller
  /// asked to stop, and a journaled sweep resumes from the last
  /// completed cap.
  kCancelled,
  /// An isolated worker process died (signal, unexpected exit, or a
  /// garbled result frame) on the retry as well as the first attempt.
  /// The supervisor degrades the cap to the Static-policy bound, same
  /// as an exhausted ladder.
  kWorkerCrashed,
  /// An isolated worker exceeded its resource budget (RLIMIT_AS
  /// allocation failure or RLIMIT_CPU SIGXCPU) on both attempts;
  /// degraded like kWorkerCrashed.
  kResourceExhausted,
  /// A wire frame was hostile or corrupt: oversized length prefix,
  /// malformed header, or CRC mismatch. The frame (and for stream
  /// transports the whole connection) is rejected, never partially
  /// trusted.
  kWireMalformed,
  /// Socket-level failure talking to a remote worker (connect refused,
  /// peer reset, heartbeat silence). Retryable against another worker.
  kNetError,
  /// A write was attempted under a superseded epoch: the journal (or the
  /// replication peer) has seen a higher failover epoch than the writer
  /// pinned. The write is refused - a deposed primary must fence itself
  /// instead of racing the promoted standby (split-brain protection).
  kStaleEpoch,
  /// Unexpected internal failure (wrapped exception).
  kInternal,
};

const char* to_string(StatusCode code);

/// Inverse of to_string for the kebab-case code names (used when reading
/// journaled sweep records back). Returns false on an unknown name.
bool status_code_from_string(const std::string& name, StatusCode* code);

/// Maps a raw solver status onto the pipeline taxonomy (kOptimal -> kOk).
StatusCode from_solve_status(lp::SolveStatus status);

/// A StatusCode plus a human-readable message. Statuses are cheap to
/// copy and compare; `ok()` is the success test everywhere.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status Ok() { return Status{}; }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>".
  std::string to_string() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Result<T>: either a value or a non-ok Status. The pipeline's
/// fail-soft return type; callers branch on ok() instead of catching.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-*)
  Result(Status status) : data_(std::move(status)) {
    if (std::get<Status>(data_).ok()) {
      // A Result constructed from a status must carry an error; an ok
      // status with no value is a logic error upstream.
      data_ = Status(StatusCode::kInternal, "ok status without a value");
    }
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOkStatus;
    return ok() ? kOkStatus : std::get<Status>(data_);
  }

  /// Value access; only valid when ok().
  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  const T& operator*() const& { return value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace powerlim::robust
