#include "robust/pipeline.h"

#include <sys/resource.h>

#include <cmath>
#include <cstddef>
#include <memory>
#include <optional>
#include <sstream>
#include <utility>

#include "check/certificate.h"
#include "core/pareto.h"
#include "dag/trace_io.h"
#include "robust/fault_injection.h"
#include "robust/remote_worker.h"
#include "runtime/static_policy.h"
#include "sim/engine.h"
#include "util/socket_io.h"

namespace powerlim::robust {

Result<dag::TaskGraph> load_trace_checked(const std::string& path) {
  try {
    return dag::load_trace(path);
  } catch (const dag::TraceParseError& e) {
    return Status(StatusCode::kBadInput, e.what());
  } catch (const std::exception& e) {
    return Status(StatusCode::kBadInput,
                  "cannot load trace '" + path + "': " + e.what());
  }
}

Result<core::SavedSchedule> load_schedule_checked(const std::string& path,
                                                  const dag::TaskGraph* graph) {
  try {
    core::SavedSchedule saved = core::load_schedule(path);
    if (graph != nullptr &&
        saved.schedule.num_edges() != graph->num_edges()) {
      return Status(StatusCode::kBadInput,
                    "schedule '" + path + "' does not match trace (" +
                        std::to_string(saved.schedule.num_edges()) +
                        " edges vs " + std::to_string(graph->num_edges()) +
                        ")");
    }
    return saved;
  } catch (const std::exception& e) {
    return Status(StatusCode::kBadInput,
                  "cannot load schedule '" + path + "': " + e.what());
  }
}

std::vector<SolveOutcome> sweep_caps(const dag::TaskGraph& graph,
                                     const machine::PowerModel& model,
                                     const machine::ClusterSpec& cluster,
                                     const std::vector<double>& job_caps,
                                     const SolveDriverOptions& options) {
  const SolveDriver driver(graph, model, cluster, options);
  return driver.sweep(job_caps);
}

namespace {

SweepRow row_from_report(const RunReport& rep) {
  SweepRow row;
  row.job_cap_watts = rep.job_cap_watts;
  row.verdict = rep.verdict;
  row.degraded = rep.degraded;
  row.bound_seconds = rep.bound_seconds;
  row.fallback = rep.fallback;
  row.report_json = rep.to_json();
  return row;
}

SweepRow row_from_entry(const JournalEntry& e) {
  SweepRow row;
  row.job_cap_watts = e.job_cap_watts;
  row.verdict = e.verdict;
  row.degraded = e.degraded;
  row.bound_seconds = e.bound_seconds;
  row.fallback = e.fallback;
  row.report_json = e.report_json;
  row.from_journal = true;
  return row;
}

JournalEntry entry_from_row(const SweepRow& row) {
  JournalEntry e;
  e.job_cap_watts = row.job_cap_watts;
  e.verdict = row.verdict;
  e.degraded = row.degraded;
  e.bound_seconds = row.bound_seconds;
  e.fallback = row.fallback;
  e.report_json = row.report_json;
  return e;
}

long current_peak_rss_kb() {
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<long>(ru.ru_maxrss);
}

/// Adapter from the worker pool's result record to the shared
/// degraded-entry synthesis below.
JournalEntry degraded_entry_for_dead_worker(
    const dag::TaskGraph& graph, const machine::PowerModel& model,
    const machine::ClusterSpec& cluster, const SolveDriverOptions& driver_opt,
    double cap, const WorkerTaskResult& r) {
  WorkerFailure failure;
  failure.outcome = status_code_for(r.outcome);
  failure.detail = r.detail;
  failure.spawns = r.spawns;
  failure.wall_ms = r.wall_ms;
  failure.peak_rss_kb = r.peak_rss_kb;
  return degraded_entry_for_failure(graph, model, cluster, driver_opt, cap,
                                    failure);
}

/// The workers > 1 path: resume-filter as usual, then dispatch every
/// pending cap through the fork-per-task pool. Results stream into the
/// journal in completion order (each cap durable the moment it lands);
/// rows are still assembled in request order. Basis checkpoints are
/// skipped - workers share no warm-start cache.
Result<ResilientSweepResult> parallel_resilient_sweep(
    const dag::TaskGraph& graph, const machine::PowerModel& model,
    const machine::ClusterSpec& cluster, const std::vector<double>& job_caps,
    const ResilientSweepOptions& options) {
  ResilientSweepResult out;

  std::optional<SweepJournal> journal;
  if (!options.journal_path.empty()) {
    Result<SweepJournal> opened = SweepJournal::open(options.journal_path);
    if (!opened.ok()) return opened.status();
    journal.emplace(std::move(opened).value());
    out.recovery = journal->recovery();
  }

  std::vector<std::optional<SweepRow>> slots(job_caps.size());
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < job_caps.size(); ++i) {
    if (journal && options.resume) {
      const JournalEntry* e = journal->find(job_caps[i]);
      // An untrusted record (kOk without a passed certificate) falls
      // through to a fresh solve. The journal keeps the old record (a
      // re-append would be dropped as a duplicate), so an untrusted cap
      // is re-solved on every resume - deliberately: trust is a property
      // of the record, not of how often it has been replayed.
      if (e != nullptr &&
          journal_entry_trusted(*e, options.driver.verify_certificate)) {
        slots[i] = row_from_entry(*e);
        ++out.resumed;
        continue;
      }
    }
    pending.push_back(i);
  }

  std::vector<WorkerTaskSpec> tasks;
  tasks.reserve(pending.size());
  for (std::size_t i : pending) {
    const double cap = job_caps[i];
    WorkerTaskSpec spec;
    spec.job_cap_watts = cap;
    spec.run = [&graph, &model, &cluster, &options, cap](int attempt) {
      maybe_execute_worker_fault(cap, attempt);
      const SolveDriver driver(graph, model, cluster, options.driver);
      SolveOutcome o = driver.solve(cap);
      o.report.worker.isolated = true;
      o.report.worker.spawns = attempt + 1;
      o.report.worker.retries = attempt;
      o.report.worker.peak_rss_kb = current_peak_rss_kb();
      return entry_from_row(row_from_report(o.report));
    };
    tasks.push_back(std::move(spec));
  }

  WorkerPoolOptions pool_opt;
  pool_opt.workers = options.workers;
  pool_opt.limits.mem_mb = options.worker_mem_mb;
  pool_opt.limits.cpu_seconds = options.worker_cpu_s;
  if (options.driver.cap_deadline_ms > 0.0) {
    // Per-spawn wall budget: the cap deadline plus grace for the
    // fallback simulation and result serialization. Catches workers
    // wedged where the pivot-granularity deadline cannot reach.
    pool_opt.limits.wall_seconds =
        options.driver.cap_deadline_ms / 1000.0 + 2.0;
  }

  Status journal_error;  // first append failure, surfaced after the pool
  bool dropped_cancelled = false;
  const auto on_result = [&](const WorkerTaskResult& r, std::size_t task_idx) {
    const std::size_t cap_idx = pending[task_idx];
    JournalEntry entry;
    if (r.outcome == WorkerOutcome::kOk) {
      // A worker that reports kCancelled (it inherits the parent's
      // SIGINT handling across fork) did not really settle its cap:
      // drop the result so a resumed run re-solves it for real.
      if (r.entry.verdict == StatusCode::kCancelled) {
        dropped_cancelled = true;
        return;
      }
      entry = r.entry;
    } else if (r.outcome == WorkerOutcome::kSkipped) {
      return;
    } else {
      entry = degraded_entry_for_dead_worker(graph, model, cluster,
                                             options.driver,
                                             job_caps[cap_idx], r);
    }
    if (journal && journal_error.ok()) {
      const Status st = journal->append(entry);
      if (!st.ok()) journal_error = st;
    }
    SweepRow row = row_from_entry(entry);
    row.from_journal = false;
    if (options.on_row) options.on_row(row);
    slots[cap_idx] = std::move(row);
    ++out.solved;
  };

  const WorkerPoolResult pool =
      run_worker_pool(tasks, pool_opt, options.deadline, on_result);
  out.worker_stats = pool.stats;
  if (!journal_error.ok()) return journal_error;
  if (pool.interrupted) {
    out.interrupted = true;
    out.stop = pool.stop;
  } else if (dropped_cancelled) {
    out.interrupted = true;
    out.stop = util::StopReason::kCancelled;
  }

  for (auto& slot : slots) {
    if (slot) out.rows.push_back(std::move(*slot));
  }
  return out;
}

/// The Byzantine gate: a remote kOk result is only as trustworthy as the
/// solution artifact it shipped. Re-verify the artifact locally with the
/// exact certificate checker against *our* trace and machine model - a
/// peer can waste an attempt, never poison the journal. Degraded /
/// infeasible verdicts are accepted upstream without a gate call (their
/// conservative bounds carry nothing worth forging).
RemoteResultGate make_certificate_gate(const dag::TaskGraph& graph,
                                       const machine::PowerModel& model,
                                       const machine::ClusterSpec& cluster,
                                       const ResilientSweepOptions& options) {
  if (!options.driver.verify_certificate) return nullptr;
  auto checker = std::make_shared<check::CertificateChecker>(
      graph, model, cluster, options.driver.certificate);
  return [checker, &graph, &model](const JournalEntry& e,
                                   const std::string& solution_text)
             -> Status {
    if (e.verdict != StatusCode::kOk) return Status::Ok();
    if (solution_text.empty()) {
      return Status(StatusCode::kCertificateFailed,
                    "remote kOk result shipped no solution artifact");
    }
    std::optional<core::SavedSchedule> saved;
    try {
      std::istringstream in(solution_text);
      saved.emplace(core::read_schedule(in));
    } catch (const std::exception& ex) {
      return Status(StatusCode::kWireMalformed,
                    std::string("unreadable solution artifact: ") + ex.what());
    }
    if (std::abs(saved->job_cap_watts - e.job_cap_watts) > 1e-9) {
      return Status(StatusCode::kCertificateFailed,
                    "solution artifact solves a different cap than claimed");
    }
    const double scale = std::max(1.0, std::abs(e.bound_seconds));
    if (std::abs(saved->makespan - e.bound_seconds) > 1e-9 * scale) {
      return Status(StatusCode::kCertificateFailed,
                    "solution artifact does not support the reported bound");
    }
    core::WindowedLpResult res;
    res.status = lp::SolveStatus::kOptimal;
    res.makespan = saved->makespan;
    res.schedule = std::move(saved->schedule);
    res.vertex_time = std::move(saved->vertex_time);
    // The artifact only round-trips the frontier points its mixture
    // references; rebuild the full frontiers from OUR trace and machine
    // model (same derivation as the formulation). The checker then
    // re-verifies the peer's mixture against trusted local data - a
    // forged duration/power inside the artifact is simply ignored.
    res.frontiers.resize(graph.num_edges());
    for (const dag::Edge& edge : graph.edges()) {
      if (!edge.is_task()) continue;
      res.frontiers[edge.id] =
          core::convex_frontier(model.enumerate(edge.work, edge.rank));
    }
    // No duals cross the wire, so weak duality is skipped; exact primal
    // feasibility alone already rejects any bound below the true
    // optimum (the schedule cannot finish that fast).
    const check::CertificateVerdict v =
        checker->verify(res, e.job_cap_watts, e.job_cap_watts);
    if (!v.checked) {
      return Status(StatusCode::kCertificateFailed,
                    "certificate gate could not verify the artifact: " +
                        v.detail);
    }
    if (!v.ok) {
      return Status(StatusCode::kCertificateFailed,
                    "certificate gate rejected the remote solution: " +
                        v.detail);
    }
    return Status::Ok();
  };
}

/// The --remote path: parallel_resilient_sweep's journaling/resume
/// skeleton dispatched through the distributed pool. The coordinator
/// splices real transport telemetry into every settled report; remote
/// kOk results pass the certificate gate before journaling.
Result<ResilientSweepResult> distributed_resilient_sweep(
    const dag::TaskGraph& graph, const machine::PowerModel& model,
    const machine::ClusterSpec& cluster, const std::vector<double>& job_caps,
    const ResilientSweepOptions& options) {
  RemoteWorkerOptions remote;
  for (const std::string& text : options.remotes) {
    util::Endpoint ep;
    if (!util::parse_endpoint(text, &ep) || ep.port == 0) {
      return Status(StatusCode::kBadInput,
                    "bad remote endpoint '" + text +
                        "' (want host:port with a nonzero port)");
    }
    remote.remotes.push_back(ep);
  }
  RemoteSolveConfig wire_config;
  wire_config.cap_deadline_ms = options.driver.cap_deadline_ms;
  wire_config.validate_replay = options.driver.validate_replay;
  wire_config.verify_certificate = options.driver.verify_certificate;
  wire_config.discrete = options.driver.lp.discrete;
  remote.handshake = encode_handshake(wire_config, graph);
  if (options.remote_heartbeat_ms > 0.0) {
    remote.heartbeat_timeout_ms = options.remote_heartbeat_ms;
  }
  if (options.remote_timeout_ms > 0.0) {
    remote.job_timeout_ms = options.remote_timeout_ms;
  } else if (options.driver.cap_deadline_ms > 0.0) {
    // The remote end enforces the cap deadline itself; this ceiling only
    // catches a peer that silently keeps heartbeating past it.
    remote.job_timeout_ms = options.driver.cap_deadline_ms + 5000.0;
  }

  ResilientSweepResult out;

  std::optional<SweepJournal> journal;
  if (!options.journal_path.empty()) {
    Result<SweepJournal> opened = SweepJournal::open(options.journal_path);
    if (!opened.ok()) return opened.status();
    journal.emplace(std::move(opened).value());
    out.recovery = journal->recovery();
  }

  std::vector<std::optional<SweepRow>> slots(job_caps.size());
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < job_caps.size(); ++i) {
    if (journal && options.resume) {
      const JournalEntry* e = journal->find(job_caps[i]);
      if (e != nullptr &&
          journal_entry_trusted(*e, options.driver.verify_certificate)) {
        slots[i] = row_from_entry(*e);
        ++out.resumed;
        continue;
      }
    }
    pending.push_back(i);
  }

  std::vector<WorkerTaskSpec> tasks;
  tasks.reserve(pending.size());
  for (std::size_t i : pending) {
    const double cap = job_caps[i];
    WorkerTaskSpec spec;
    spec.job_cap_watts = cap;
    spec.run = [&graph, &model, &cluster, &options, cap](int attempt) {
      maybe_execute_worker_fault(cap, attempt);
      const SolveDriver driver(graph, model, cluster, options.driver);
      SolveOutcome o = driver.solve(cap);
      o.report.worker.isolated = true;
      o.report.worker.spawns = attempt + 1;
      o.report.worker.retries = attempt;
      o.report.worker.peak_rss_kb = current_peak_rss_kb();
      return entry_from_row(row_from_report(o.report));
    };
    tasks.push_back(std::move(spec));
  }

  WorkerPoolOptions pool_opt;
  pool_opt.workers = options.workers;
  pool_opt.limits.mem_mb = options.worker_mem_mb;
  pool_opt.limits.cpu_seconds = options.worker_cpu_s;
  if (options.driver.cap_deadline_ms > 0.0) {
    pool_opt.limits.wall_seconds =
        options.driver.cap_deadline_ms / 1000.0 + 2.0;
  }

  const RemoteResultGate gate =
      make_certificate_gate(graph, model, cluster, options);

  Status journal_error;
  bool dropped_cancelled = false;
  const auto on_result = [&](const WorkerTaskResult& r, std::size_t task_idx,
                             const TransportResult& transport) {
    const std::size_t cap_idx = pending[task_idx];
    JournalEntry entry;
    if (r.outcome == WorkerOutcome::kOk) {
      if (r.entry.verdict == StatusCode::kCancelled) {
        dropped_cancelled = true;
        return;
      }
      entry = r.entry;
    } else if (r.outcome == WorkerOutcome::kSkipped) {
      return;
    } else {
      entry = degraded_entry_for_dead_worker(graph, model, cluster,
                                             options.driver,
                                             job_caps[cap_idx], r);
    }
    TransportTelemetry tt;
    tt.remote = transport.remote;
    tt.endpoint = transport.endpoint;
    tt.retries = transport.retries;
    tt.backoff_ms = transport.backoff_ms;
    tt.heartbeat_misses = transport.heartbeat_misses;
    entry.report_json = patch_transport_json(entry.report_json, tt);
    if (journal && journal_error.ok()) {
      const Status st = journal->append(entry);
      if (!st.ok()) journal_error = st;
    }
    SweepRow row = row_from_entry(entry);
    row.from_journal = false;
    if (options.on_row) options.on_row(row);
    slots[cap_idx] = std::move(row);
    ++out.solved;
  };

  const WorkerPoolResult pool = run_distributed_pool(
      tasks, pool_opt, remote, gate, options.deadline, on_result);
  out.worker_stats = pool.stats;
  if (!journal_error.ok()) return journal_error;
  if (pool.interrupted) {
    out.interrupted = true;
    out.stop = pool.stop;
  } else if (dropped_cancelled) {
    out.interrupted = true;
    out.stop = util::StopReason::kCancelled;
  }

  for (auto& slot : slots) {
    if (slot) out.rows.push_back(std::move(*slot));
  }
  return out;
}

}  // namespace

Result<ResilientSweepResult> resilient_sweep(
    const dag::TaskGraph& graph, const machine::PowerModel& model,
    const machine::ClusterSpec& cluster, const std::vector<double>& job_caps,
    const ResilientSweepOptions& options) {
  if (!options.remotes.empty()) {
    return distributed_resilient_sweep(graph, model, cluster, job_caps,
                                       options);
  }
  if (options.workers > 1) {
    return parallel_resilient_sweep(graph, model, cluster, job_caps, options);
  }

  ResilientSweepResult out;

  std::optional<SweepJournal> journal;
  if (!options.journal_path.empty()) {
    Result<SweepJournal> opened = SweepJournal::open(options.journal_path);
    if (!opened.ok()) return opened.status();
    journal.emplace(std::move(opened).value());
    out.recovery = journal->recovery();
  }

  SolveDriverOptions driver_opt = options.driver;
  driver_opt.deadline =
      util::Deadline::sooner(driver_opt.deadline, options.deadline);
  const SolveDriver driver(graph, model, cluster, driver_opt);
  if (journal && options.resume && !journal->warm_starts().empty()) {
    driver.restore_warm_starts(journal->warm_starts());
  }

  for (double cap : job_caps) {
    if (journal && options.resume) {
      const JournalEntry* e = journal->find(cap);
      if (e != nullptr &&
          journal_entry_trusted(*e, options.driver.verify_certificate)) {
        out.rows.push_back(row_from_entry(*e));
        ++out.resumed;
        continue;
      }
    }

    util::StopReason stop = options.deadline.stop_reason();
    if (stop != util::StopReason::kNone) {
      out.interrupted = true;
      out.stop = stop;
      break;
    }

    const SolveOutcome outcome = driver.solve(cap);

    // A cancelled cap did not complete: leave it out of the journal and
    // the rows so the resumed run re-solves it for real.
    if (outcome.report.verdict == StatusCode::kCancelled) {
      out.interrupted = true;
      out.stop = util::StopReason::kCancelled;
      break;
    }
    // Likewise a deadline verdict caused by the *sweep* budget (not the
    // per-cap one) is an interruption artifact, not the cap's true
    // outcome - re-running with a fresh budget should retry it.
    stop = options.deadline.stop_reason();
    if (stop != util::StopReason::kNone &&
        outcome.report.verdict == StatusCode::kDeadlineExceeded) {
      out.interrupted = true;
      out.stop = stop;
      break;
    }

    SweepRow row = row_from_report(outcome.report);
    if (journal) {
      // Row first, then the basis snapshot: a crash between the two
      // costs only the warm start, never the result.
      const Status st = journal->append(entry_from_row(row));
      if (!st.ok()) return st;
      const Status bs = journal->append_basis(driver.warm_starts());
      if (!bs.ok()) return bs;
    }
    if (options.on_row) options.on_row(row);
    out.rows.push_back(std::move(row));
    ++out.solved;
  }

  return out;
}

JournalEntry degraded_entry_for_failure(
    const dag::TaskGraph& graph, const machine::PowerModel& model,
    const machine::ClusterSpec& cluster, const SolveDriverOptions& driver_opt,
    double cap, const WorkerFailure& failure) {
  // A cap whose isolated worker died (or starved/overran its budgets)
  // gets the same treatment as an exhausted ladder: classify the
  // failure, then substitute the always-simulable Static-policy bound.
  // The supervisor synthesizes the report because the child left no
  // usable one behind.
  const int ranks = graph.num_ranks();
  RunReport rep;
  rep.job_cap_watts = cap;
  rep.socket_cap_watts = ranks > 0 ? cap / ranks : 0.0;
  rep.verdict = failure.outcome;
  rep.detail = "isolated worker failed after " +
               std::to_string(failure.spawns) +
               " spawn(s); last: " + failure.detail;
  rep.wall_ms = failure.wall_ms;
  rep.ladder.enable_ladder = driver_opt.enable_ladder;
  rep.ladder.enable_fallback = driver_opt.enable_fallback;
  rep.ladder.validate_replay = driver_opt.validate_replay;
  rep.ladder.cap_deadline_ms =
      driver_opt.cap_deadline_ms > 0.0 ? driver_opt.cap_deadline_ms : 0.0;
  rep.ladder.cancellable = driver_opt.cancel != nullptr;
  const FaultPlan* plan = ScopedFaultPlan::active();
  const bool faulted = plan && plan->applies_to_cap(cap);
  rep.fault_active = faulted;
  rep.fault_seed = faulted ? plan->seed : 0;
  rep.worker.isolated = true;
  rep.worker.spawns = failure.spawns;
  rep.worker.retries = failure.spawns > 0 ? failure.spawns - 1 : 0;
  rep.worker.peak_rss_kb = failure.peak_rss_kb;
  SolveAttempt att;
  att.rung = "worker";
  att.outcome = rep.verdict;
  att.detail = failure.detail;
  rep.attempts.push_back(std::move(att));
  if (driver_opt.enable_fallback) {
    try {
      runtime::StaticPolicy policy(model, ranks > 0 ? cap / ranks : cap);
      sim::EngineOptions eo;
      eo.cluster = cluster;
      eo.idle_power = model.idle_power();
      const sim::SimResult sim = sim::simulate(graph, policy, eo);
      rep.degraded = true;
      rep.fallback = "static-policy";
      rep.bound_seconds = sim.makespan;
      rep.energy_joules = sim.energy_joules;
    } catch (const std::exception& e) {
      rep.detail += "; static fallback also failed: ";
      rep.detail += e.what();
    }
  }
  return entry_from_row(row_from_report(rep));
}

}  // namespace powerlim::robust
