#include "robust/pipeline.h"

#include <optional>
#include <utility>

#include "dag/trace_io.h"

namespace powerlim::robust {

Result<dag::TaskGraph> load_trace_checked(const std::string& path) {
  try {
    return dag::load_trace(path);
  } catch (const dag::TraceParseError& e) {
    return Status(StatusCode::kBadInput, e.what());
  } catch (const std::exception& e) {
    return Status(StatusCode::kBadInput,
                  "cannot load trace '" + path + "': " + e.what());
  }
}

Result<core::SavedSchedule> load_schedule_checked(const std::string& path,
                                                  const dag::TaskGraph* graph) {
  try {
    core::SavedSchedule saved = core::load_schedule(path);
    if (graph != nullptr &&
        saved.schedule.num_edges() != graph->num_edges()) {
      return Status(StatusCode::kBadInput,
                    "schedule '" + path + "' does not match trace (" +
                        std::to_string(saved.schedule.num_edges()) +
                        " edges vs " + std::to_string(graph->num_edges()) +
                        ")");
    }
    return saved;
  } catch (const std::exception& e) {
    return Status(StatusCode::kBadInput,
                  "cannot load schedule '" + path + "': " + e.what());
  }
}

std::vector<SolveOutcome> sweep_caps(const dag::TaskGraph& graph,
                                     const machine::PowerModel& model,
                                     const machine::ClusterSpec& cluster,
                                     const std::vector<double>& job_caps,
                                     const SolveDriverOptions& options) {
  const SolveDriver driver(graph, model, cluster, options);
  return driver.sweep(job_caps);
}

namespace {

SweepRow row_from_report(const RunReport& rep) {
  SweepRow row;
  row.job_cap_watts = rep.job_cap_watts;
  row.verdict = rep.verdict;
  row.degraded = rep.degraded;
  row.bound_seconds = rep.bound_seconds;
  row.fallback = rep.fallback;
  row.report_json = rep.to_json();
  return row;
}

SweepRow row_from_entry(const JournalEntry& e) {
  SweepRow row;
  row.job_cap_watts = e.job_cap_watts;
  row.verdict = e.verdict;
  row.degraded = e.degraded;
  row.bound_seconds = e.bound_seconds;
  row.fallback = e.fallback;
  row.report_json = e.report_json;
  row.from_journal = true;
  return row;
}

JournalEntry entry_from_row(const SweepRow& row) {
  JournalEntry e;
  e.job_cap_watts = row.job_cap_watts;
  e.verdict = row.verdict;
  e.degraded = row.degraded;
  e.bound_seconds = row.bound_seconds;
  e.fallback = row.fallback;
  e.report_json = row.report_json;
  return e;
}

}  // namespace

Result<ResilientSweepResult> resilient_sweep(
    const dag::TaskGraph& graph, const machine::PowerModel& model,
    const machine::ClusterSpec& cluster, const std::vector<double>& job_caps,
    const ResilientSweepOptions& options) {
  ResilientSweepResult out;

  std::optional<SweepJournal> journal;
  if (!options.journal_path.empty()) {
    Result<SweepJournal> opened = SweepJournal::open(options.journal_path);
    if (!opened.ok()) return opened.status();
    journal.emplace(std::move(opened).value());
    out.recovery = journal->recovery();
  }

  SolveDriverOptions driver_opt = options.driver;
  driver_opt.deadline =
      util::Deadline::sooner(driver_opt.deadline, options.deadline);
  const SolveDriver driver(graph, model, cluster, driver_opt);
  if (journal && options.resume && !journal->warm_starts().empty()) {
    driver.restore_warm_starts(journal->warm_starts());
  }

  for (double cap : job_caps) {
    if (journal && options.resume) {
      if (const JournalEntry* e = journal->find(cap)) {
        out.rows.push_back(row_from_entry(*e));
        ++out.resumed;
        continue;
      }
    }

    util::StopReason stop = options.deadline.stop_reason();
    if (stop != util::StopReason::kNone) {
      out.interrupted = true;
      out.stop = stop;
      break;
    }

    const SolveOutcome outcome = driver.solve(cap);

    // A cancelled cap did not complete: leave it out of the journal and
    // the rows so the resumed run re-solves it for real.
    if (outcome.report.verdict == StatusCode::kCancelled) {
      out.interrupted = true;
      out.stop = util::StopReason::kCancelled;
      break;
    }
    // Likewise a deadline verdict caused by the *sweep* budget (not the
    // per-cap one) is an interruption artifact, not the cap's true
    // outcome - re-running with a fresh budget should retry it.
    stop = options.deadline.stop_reason();
    if (stop != util::StopReason::kNone &&
        outcome.report.verdict == StatusCode::kDeadlineExceeded) {
      out.interrupted = true;
      out.stop = stop;
      break;
    }

    SweepRow row = row_from_report(outcome.report);
    if (journal) {
      // Row first, then the basis snapshot: a crash between the two
      // costs only the warm start, never the result.
      const Status st = journal->append(entry_from_row(row));
      if (!st.ok()) return st;
      const Status bs = journal->append_basis(driver.warm_starts());
      if (!bs.ok()) return bs;
    }
    out.rows.push_back(std::move(row));
    ++out.solved;
  }

  return out;
}

}  // namespace powerlim::robust
