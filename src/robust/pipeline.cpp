#include "robust/pipeline.h"

#include "dag/trace_io.h"

namespace powerlim::robust {

Result<dag::TaskGraph> load_trace_checked(const std::string& path) {
  try {
    return dag::load_trace(path);
  } catch (const dag::TraceParseError& e) {
    return Status(StatusCode::kBadInput, e.what());
  } catch (const std::exception& e) {
    return Status(StatusCode::kBadInput,
                  "cannot load trace '" + path + "': " + e.what());
  }
}

Result<core::SavedSchedule> load_schedule_checked(const std::string& path,
                                                  const dag::TaskGraph* graph) {
  try {
    core::SavedSchedule saved = core::load_schedule(path);
    if (graph != nullptr &&
        saved.schedule.num_edges() != graph->num_edges()) {
      return Status(StatusCode::kBadInput,
                    "schedule '" + path + "' does not match trace (" +
                        std::to_string(saved.schedule.num_edges()) +
                        " edges vs " + std::to_string(graph->num_edges()) +
                        ")");
    }
    return saved;
  } catch (const std::exception& e) {
    return Status(StatusCode::kBadInput,
                  "cannot load schedule '" + path + "': " + e.what());
  }
}

std::vector<SolveOutcome> sweep_caps(const dag::TaskGraph& graph,
                                     const machine::PowerModel& model,
                                     const machine::ClusterSpec& cluster,
                                     const std::vector<double>& job_caps,
                                     const SolveDriverOptions& options) {
  const SolveDriver driver(graph, model, cluster, options);
  return driver.sweep(job_caps);
}

}  // namespace powerlim::robust
