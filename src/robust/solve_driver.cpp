#include "robust/solve_driver.h"

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <iomanip>
#include <sstream>
#include <utility>

#include "check/lint.h"
#include "robust/fault_injection.h"
#include "runtime/static_policy.h"
#include "sim/engine.h"

namespace powerlim::robust {

namespace {

/// Ladder order. "warm" relies on the sweeper's internal per-window
/// basis cache; every later rung drops it first so a poisoned basis
/// never seeds the retry.
constexpr const char* kRungs[] = {"warm", "cold", "refactor-20", "bland",
                                  "perturb"};
constexpr int kNumRungs = 5;

bool retryable(StatusCode code) {
  switch (code) {
    case StatusCode::kSolverNumerical:
    case StatusCode::kIterationLimit:
    case StatusCode::kSolverUnbounded:
    case StatusCode::kReplayCapViolation:
    case StatusCode::kCertificateFailed:
    case StatusCode::kInternal:
      return true;
    default:
      return false;
  }
}

/// Writes the elapsed milliseconds into *out when it leaves scope, so
/// every return path of solve() stamps RunReport::wall_ms.
class WallTimer {
 public:
  explicit WallTimer(double* out) : out_(out) {}
  ~WallTimer() {
    *out_ = std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start_)
                .count();
  }
  WallTimer(const WallTimer&) = delete;
  WallTimer& operator=(const WallTimer&) = delete;

 private:
  double* out_;
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

// --- minimal JSON emission (no external deps) ---

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_num(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os << std::setprecision(12) << v;
  return os.str();
}

void append_attempt(std::ostringstream& os, const SolveAttempt& a) {
  os << "{\"rung\":\"" << json_escape(a.rung) << "\","
     << "\"outcome\":\"" << to_string(a.outcome) << "\","
     << "\"injected\":" << (a.injected ? "true" : "false") << ","
     << "\"iterations\":" << a.iterations << ","
     << "\"degenerate_pivots\":" << a.degenerate_pivots << ","
     << "\"refactor_count\":" << a.refactor_count << ","
     << "\"bland_engaged\":" << (a.bland_engaged ? "true" : "false") << ","
     << "\"primal_infeasibility\":" << json_num(a.primal_infeasibility) << ","
     << "\"eta_nonzeros\":" << a.eta_nonzeros << ","
     << "\"lu_fill_ratio\":" << json_num(a.lu_fill_ratio) << ","
     << "\"failed_window\":" << a.failed_window << ","
     << "\"detail\":\"" << json_escape(a.detail) << "\"}";
}

/// The schema-5 transport block, emitted with a leading comma (shared by
/// to_json and patch_transport_json so the spliced shape cannot drift).
void append_transport(std::ostream& os, const TransportTelemetry& t) {
  os << ",\"transport\":{\"remote\":" << (t.remote ? "true" : "false")
     << ",\"endpoint\":\"" << json_escape(t.endpoint) << "\""
     << ",\"retries\":" << t.retries
     << ",\"backoff_ms\":" << json_num(t.backoff_ms)
     << ",\"heartbeat_misses\":" << t.heartbeat_misses << "}";
}

/// The schema-6 service block (schema 7 added epoch/role), emitted with
/// a leading comma (shared by to_json and patch_service_json so the
/// spliced shape cannot drift).
void append_service(std::ostream& os, const ServiceTelemetry& s) {
  os << ",\"service\":{\"served\":" << (s.served ? "true" : "false")
     << ",\"queue_depth\":" << s.queue_depth
     << ",\"shed_total\":" << s.shed_total
     << ",\"queue_wait_ms\":" << json_num(s.queue_wait_ms)
     << ",\"solve_ms\":" << json_num(s.solve_ms)
     << ",\"total_ms\":" << json_num(s.total_ms)
     << ",\"epoch\":" << s.epoch
     << ",\"role\":\"" << json_escape(s.role) << "\"}";
}

}  // namespace

std::string RunReport::to_json() const {
  std::ostringstream os;
  os << "{\"schema_version\":" << schema_version << ","
     << "\"job_cap_watts\":" << json_num(job_cap_watts) << ","
     << "\"socket_cap_watts\":" << json_num(socket_cap_watts) << ","
     << "\"verdict\":\"" << robust::to_string(verdict) << "\","
     << "\"detail\":\"" << json_escape(detail) << "\","
     << "\"degraded\":" << (degraded ? "true" : "false") << ","
     << "\"fallback\":\"" << json_escape(fallback) << "\","
     << "\"bound_seconds\":" << json_num(bound_seconds) << ","
     << "\"energy_joules\":" << json_num(energy_joules) << ","
     << "\"min_feasible_power_watts\":" << json_num(min_feasible_power_watts)
     << ",\"wall_ms\":" << json_num(wall_ms)
     << ",\"worker\":{\"isolated\":" << (worker.isolated ? "true" : "false")
     << ",\"spawns\":" << worker.spawns
     << ",\"retries\":" << worker.retries
     << ",\"peak_rss_kb\":" << worker.peak_rss_kb << "}";
  append_transport(os, transport);
  append_service(os, service);
  os << ",\"fault\":{\"active\":" << (fault_active ? "true" : "false")
     << ",\"seed\":" << fault_seed << "}"
     << ",\"ladder\":{\"enable_ladder\":"
     << (ladder.enable_ladder ? "true" : "false")
     << ",\"enable_fallback\":" << (ladder.enable_fallback ? "true" : "false")
     << ",\"validate_replay\":" << (ladder.validate_replay ? "true" : "false")
     << ",\"cap_deadline_ms\":" << json_num(ladder.cap_deadline_ms)
     << ",\"cancellable\":" << (ladder.cancellable ? "true" : "false") << "}"
     << ",\"attempts\":[";
  for (std::size_t i = 0; i < attempts.size(); ++i) {
    if (i) os << ",";
    append_attempt(os, attempts[i]);
  }
  os << "],\"replay\":{\"checked\":" << (replay.checked ? "true" : "false");
  if (replay.checked) {
    os << ",\"ok\":" << (replay.check.ok ? "true" : "false") << ","
       << "\"cap_watts\":" << json_num(replay.check.cap_watts) << ","
       << "\"peak_power_watts\":" << json_num(replay.check.peak_power) << ","
       << "\"max_windowed_power_watts\":"
       << json_num(replay.check.max_windowed_power) << ","
       << "\"violation_watts\":" << json_num(replay.check.violation_watts)
       << ",\"violation_seconds\":"
       << json_num(replay.check.violation_seconds);
  }
  os << "},\"certificate\":{\"checked\":"
     << (certificate.checked ? "true" : "false");
  if (certificate.checked) {
    os << ",\"ok\":" << (certificate.ok ? "true" : "false")
       << ",\"duality_checked\":"
       << (certificate.duality_checked ? "true" : "false")
       << ",\"max_violation\":" << json_num(certificate.max_violation)
       << ",\"duality_gap\":" << json_num(certificate.duality_gap)
       << ",\"detail\":\"" << json_escape(certificate.detail) << "\"";
  }
  os << "},\"lint\":{\"checked\":" << (lint.checked ? "true" : "false")
     << ",\"errors\":" << lint.errors << ",\"warnings\":" << lint.warnings
     << "}}";
  return os.str();
}

std::string patch_transport_json(const std::string& report_json,
                                 const TransportTelemetry& transport) {
  const std::string marker = "\"transport\":{";
  const std::size_t start = report_json.find(marker);
  if (start == std::string::npos) return report_json;
  // The block contains no nested braces (flat scalars only), so the
  // first '}' after the marker closes it.
  const std::size_t close = report_json.find('}', start + marker.size());
  if (close == std::string::npos) return report_json;
  std::ostringstream block;
  append_transport(block, transport);
  // append_transport emits a leading ",\"transport\":..."; drop the
  // comma (the original block's separator stays in place).
  const std::string replacement = block.str().substr(1);
  std::string out = report_json;
  out.replace(start, close + 1 - start, replacement);
  return out;
}

std::string patch_service_json(const std::string& report_json,
                               const ServiceTelemetry& service) {
  const std::string marker = "\"service\":{";
  const std::size_t start = report_json.find(marker);
  if (start == std::string::npos) return report_json;
  // Flat scalars only: the first '}' after the marker closes the block.
  const std::size_t close = report_json.find('}', start + marker.size());
  if (close == std::string::npos) return report_json;
  std::ostringstream block;
  append_service(block, service);
  const std::string replacement = block.str().substr(1);
  std::string out = report_json;
  out.replace(start, close + 1 - start, replacement);
  return out;
}

std::string reports_to_json(const std::vector<RunReport>& reports) {
  std::ostringstream os;
  os << "[\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (i) os << ",\n";
    os << "  " << reports[i].to_json();
  }
  os << "\n]\n";
  return os.str();
}

struct SolveDriver::Impl {
  const dag::TaskGraph* graph = nullptr;
  const machine::PowerModel* model = nullptr;
  const machine::ClusterSpec* cluster = nullptr;
  SolveDriverOptions options;
  core::FormulationHooks hooks;
  /// Built lazily so that a faulty build (empty frontier under an active
  /// FaultPlan) is reported per-solve and retried once the fault clears.
  mutable std::unique_ptr<core::WindowSweeper> sweeper;
  /// Warm-start checkpoint restored before the sweeper exists (journal
  /// resume installs it ahead of the first solve).
  mutable std::vector<lp::WarmStart> pending_warm;
  /// Built lazily on the first accepted solve. The checker re-derives
  /// windows/frontiers/event orders hook-free, so the cache is immune to
  /// the fault seams; it is cap-independent, so one instance serves a
  /// whole sweep.
  mutable std::unique_ptr<check::CertificateChecker> checker;
  /// One-time input-lint echo (stamped into every report once computed).
  mutable LintEcho lint_echo;

  const check::CertificateChecker& ensure_checker() const {
    if (!checker) {
      checker = std::make_unique<check::CertificateChecker>(
          *graph, *model, *cluster, options.certificate);
    }
    return *checker;
  }

  const LintEcho& ensure_lint() const {
    if (options.lint_inputs && !lint_echo.checked) {
      try {
        check::LintReport report = check::lint_trace(*graph);
        report.merge(check::lint_machine(*cluster));
        if (report.ok()) {
          report.merge(check::lint_configs(*graph, *model));
        }
        lint_echo.checked = true;
        lint_echo.errors = report.errors();
        lint_echo.warnings = report.warnings();
      } catch (const std::exception&) {
        // An un-lintable input counts as one error; the solve itself will
        // surface the structural failure with its own verdict.
        lint_echo.checked = true;
        lint_echo.errors = 1;
      }
    }
    return lint_echo;
  }

  bool ensure_sweeper(RunReport& report) const {
    if (sweeper) return true;
    try {
      sweeper = std::make_unique<core::WindowSweeper>(*graph, *model,
                                                      *cluster, &hooks);
      if (!pending_warm.empty()) {
        sweeper->restore_warm_starts(std::move(pending_warm));
        pending_warm.clear();
      }
      return true;
    } catch (const core::EmptyFrontierError& e) {
      report.verdict = StatusCode::kEmptyFrontier;
      report.detail = e.what();
    } catch (const std::exception& e) {
      report.verdict = StatusCode::kBadInput;
      report.detail = e.what();
    }
    return false;
  }

  /// The supervision deadline for one cap: the per-cap wall budget plus
  /// the cancel token (either may be absent).
  util::Deadline cap_deadline() const {
    const util::Deadline per_cap =
        options.cap_deadline_ms > 0.0
            ? util::Deadline::after(options.cap_deadline_ms / 1000.0,
                                    options.cancel)
            : util::Deadline::cancel_only(options.cancel);
    return util::Deadline::sooner(per_cap, options.deadline);
  }

  core::LpScheduleOptions rung_options(int rung, double job_cap,
                                       const util::Deadline& deadline) const {
    core::LpScheduleOptions o = options.lp;
    o.power_cap = job_cap;
    o.simplex.deadline = deadline;
    switch (rung) {
      case 0:  // warm: base options, sweeper cache in play
      case 1:  // cold: cache dropped by caller
        break;
      // The accuracy rungs (2+) run the dense backend outright: they are
      // reached only after the fast sparse path failed twice, and the
      // explicit inverse removes the eta-update drift dimension entirely
      // (lp::solve_lp serves the request sparse anyway when the model
      // exceeds lp::kDenseBackendMaxRows rows).
      case 2:  // refactor-20
        o.simplex.refactor_interval = 20;
        o.simplex.basis_backend = lp::BasisBackend::kDense;
        break;
      case 3:  // bland
        o.simplex.refactor_interval = 20;
        o.simplex.bland_trigger = 0;
        o.simplex.basis_backend = lp::BasisBackend::kDense;
        break;
      case 4:  // perturb: nudge the cap off the degenerate vertex and
               // accept slightly looser feasibility
        o.simplex.refactor_interval = 20;
        o.simplex.bland_trigger = 0;
        o.simplex.basis_backend = lp::BasisBackend::kDense;
        o.power_cap = job_cap * (1.0 - 1e-7);
        o.simplex.primal_tol = 1e-6;
        o.simplex.dual_tol = 1e-6;
        break;
      default:
        break;
    }
    return o;
  }
};

SolveDriver::SolveDriver(const dag::TaskGraph& graph,
                         const machine::PowerModel& model,
                         const machine::ClusterSpec& cluster,
                         SolveDriverOptions options)
    : impl_(std::make_unique<Impl>()) {
  impl_->graph = &graph;
  impl_->model = &model;
  impl_->cluster = &cluster;
  impl_->options = std::move(options);
  // Frontier fault seam: consulted during (lazy) sweeper construction.
  // Frontiers are cap-independent, so only_job_cap does not scope this
  // fault; drop_all_pareto_points empties every task's frontier.
  impl_->hooks.frontier = [](int /*edge_id*/,
                             std::vector<machine::Config>& frontier) {
    const FaultPlan* plan = ScopedFaultPlan::active();
    if (plan && plan->drop_all_pareto_points) frontier.clear();
  };
}

SolveDriver::~SolveDriver() = default;
SolveDriver::SolveDriver(SolveDriver&&) noexcept = default;
SolveDriver& SolveDriver::operator=(SolveDriver&&) noexcept = default;

SolveOutcome SolveDriver::solve(double job_cap_watts) const {
  const Impl& im = *impl_;
  const int ranks = im.graph->num_ranks();

  SolveOutcome out;
  RunReport& rep = out.report;
  WallTimer timer(&rep.wall_ms);
  rep.job_cap_watts = job_cap_watts;
  rep.socket_cap_watts = ranks > 0 ? job_cap_watts / ranks : 0.0;
  rep.ladder.enable_ladder = im.options.enable_ladder;
  rep.ladder.enable_fallback = im.options.enable_fallback;
  rep.ladder.validate_replay = im.options.validate_replay;
  rep.ladder.cap_deadline_ms =
      im.options.cap_deadline_ms > 0.0 ? im.options.cap_deadline_ms : 0.0;
  rep.ladder.cancellable = im.options.cancel != nullptr;
  rep.lint = im.ensure_lint();

  if (!std::isfinite(job_cap_watts) || job_cap_watts <= 0.0) {
    rep.verdict = StatusCode::kBadInput;
    rep.detail = "power cap must be a positive finite wattage";
    return out;
  }
  if (!im.ensure_sweeper(rep)) return out;

  rep.min_feasible_power_watts = im.sweeper->min_feasible_power();
  if (job_cap_watts < rep.min_feasible_power_watts - 1e-9) {
    rep.verdict = StatusCode::kInfeasibleCap;
    std::ostringstream msg;
    msg << "job needs at least " << rep.min_feasible_power_watts << " W ("
        << rep.min_feasible_power_watts / ranks << " W/socket)";
    rep.detail = msg.str();
    return out;
  }

  const FaultPlan* plan = ScopedFaultPlan::active();
  const bool faulted = plan && plan->applies_to_cap(job_cap_watts);
  rep.fault_active = faulted;
  rep.fault_seed = faulted ? plan->seed : 0;

  const util::Deadline deadline = im.cap_deadline();
  // Set when the wall budget dies mid-ladder: skip straight to the
  // Static-policy fallback (remaining rungs would fail in O(1) anyway).
  bool deadline_hit = false;

  const int rungs = im.options.enable_ladder ? kNumRungs : 1;
  for (int r = 0; r < rungs; ++r) {
    switch (deadline.stop_reason()) {
      case util::StopReason::kCancelled:
        rep.verdict = StatusCode::kCancelled;
        rep.detail = "cancelled before rung '" + std::string(kRungs[r]) + "'";
        return out;
      case util::StopReason::kDeadline:
        deadline_hit = true;
        break;
      case util::StopReason::kNone:
        break;
    }
    if (deadline_hit) break;

    SolveAttempt att;
    att.rung = kRungs[r];

    if (faulted && plan->forces_status() && r < plan->fail_attempts) {
      att.injected = true;
      att.outcome = from_solve_status(plan->forced_status);
      att.detail = std::string("injected ") + lp::to_string(plan->forced_status);
    } else {
      if (r > 0) im.sweeper->clear_warm_starts();
      core::LpScheduleOptions o = im.rung_options(r, job_cap_watts, deadline);
      if (faulted && plan->coefficient_noise_magnitude > 0.0) {
        const double mag = plan->coefficient_noise_magnitude;
        const std::uint64_t seed = plan->seed;
        o.mutate_model = [mag, seed](lp::Model& m) {
          m.perturb_nonzeros(mag, seed);
        };
      }
      try {
        core::WindowedLpResult res = im.sweeper->solve(o);
        if (faulted && plan->corrupt_solution_epsilon > 0.0 &&
            res.optimal()) {
          // "Too good to be true": shrink the claimed bound after the
          // solve. The schedule (and hence replay) is untouched; only the
          // exact certificate checker can catch this.
          const double shrink = 1.0 - plan->corrupt_solution_epsilon;
          res.makespan *= shrink;
          for (double& t : res.vertex_time) t *= shrink;
        }
        att.outcome = from_solve_status(res.status);
        att.iterations = res.iterations;
        att.degenerate_pivots = res.degenerate_pivots;
        att.refactor_count = res.refactor_count;
        att.bland_engaged = res.bland_engaged;
        att.primal_infeasibility = res.primal_infeasibility;
        att.eta_nonzeros = res.eta_nonzeros;
        att.lu_fill_ratio = res.lu_fill_ratio;
        att.failed_window = res.failed_window;
        if (res.optimal()) {
          bool accepted = true;
          if (im.options.validate_replay) {
            sim::ReplayOptions ro = im.options.replay;
            ro.engine.cluster = *im.cluster;
            ro.engine.idle_power = im.model->idle_power();
            const sim::SimResult sim = sim::replay_schedule(
                *im.graph, res.schedule, res.frontiers, ro, &res.vertex_time);
            const sim::CapCheck check =
                sim::check_cap(sim, job_cap_watts, im.options.cap_check);
            rep.replay.checked = true;
            rep.replay.check = check;
            out.simulated = sim;
            if (!check.ok) {
              accepted = false;
              att.outcome = StatusCode::kReplayCapViolation;
              std::ostringstream msg;
              msg << "replayed windowed power "
                  << check.max_windowed_power << " W exceeds cap "
                  << job_cap_watts << " W by " << check.violation_watts
                  << " W";
              att.detail = msg.str();
            }
          }
          if (accepted && im.options.verify_certificate) {
            const check::CertificateVerdict v =
                im.ensure_checker().verify(res, job_cap_watts, o.power_cap);
            rep.certificate.checked = true;
            rep.certificate.ok = v.checked && v.ok;
            rep.certificate.duality_checked = v.duality_checked;
            rep.certificate.max_violation = v.max_violation;
            rep.certificate.duality_gap = v.duality_gap;
            rep.certificate.detail = v.detail;
            if (!rep.certificate.ok) {
              accepted = false;
              att.outcome = StatusCode::kCertificateFailed;
              att.detail = v.detail.empty()
                               ? "certificate verification failed"
                               : v.detail;
            }
          }
          if (accepted) {
            rep.verdict = StatusCode::kOk;
            rep.bound_seconds = res.makespan;
            rep.energy_joules = res.energy_joules;
            rep.attempts.push_back(std::move(att));
            out.lp = std::move(res);
            return out;
          }
        }
      } catch (const core::EmptyFrontierError& e) {
        att.outcome = StatusCode::kEmptyFrontier;
        att.detail = e.what();
      } catch (const std::exception& e) {
        att.outcome = StatusCode::kInternal;
        att.detail = e.what();
      }
    }

    const StatusCode outcome = att.outcome;
    const std::string detail = att.detail;
    rep.attempts.push_back(std::move(att));
    if (outcome == StatusCode::kCancelled) {
      // Terminal and not degraded: the caller asked to stop. A journaled
      // sweep resumes this cap from scratch next run.
      rep.verdict = StatusCode::kCancelled;
      rep.detail = detail.empty() ? "cancelled mid-solve" : detail;
      return out;
    }
    if (outcome == StatusCode::kDeadlineExceeded) {
      deadline_hit = true;
      break;
    }
    if (!retryable(outcome)) {
      rep.verdict = outcome;
      rep.detail = detail;
      return out;
    }
  }

  // Ladder exhausted (or its wall budget died): classify by the final
  // attempt, then degrade to the always-simulable Static-policy bound so
  // the sweep keeps a usable number for this cap.
  if (rep.attempts.empty()) {
    // The budget was gone before the first rung even started.
    rep.verdict = StatusCode::kDeadlineExceeded;
    rep.detail = "cap deadline expired before the first ladder rung";
  } else if (deadline_hit) {
    rep.verdict = StatusCode::kDeadlineExceeded;
    rep.detail = "cap deadline expired after " +
                 std::to_string(rep.attempts.size()) +
                 " ladder attempt(s); last: " + rep.attempts.back().detail;
  } else {
    rep.verdict = rep.attempts.back().outcome;
    rep.detail = "all " + std::to_string(rep.attempts.size()) +
                 " ladder attempts failed; last: " + rep.attempts.back().detail;
  }
  if (im.options.enable_fallback) {
    try {
      runtime::StaticPolicy policy(*im.model, job_cap_watts / ranks);
      sim::EngineOptions eo;
      eo.cluster = *im.cluster;
      eo.idle_power = im.model->idle_power();
      const sim::SimResult sim = sim::simulate(*im.graph, policy, eo);
      rep.degraded = true;
      rep.fallback = "static-policy";
      rep.bound_seconds = sim.makespan;
      rep.energy_joules = sim.energy_joules;
      out.simulated = sim;
    } catch (const std::exception& e) {
      rep.detail += "; static fallback also failed: ";
      rep.detail += e.what();
    }
  }
  return out;
}

std::vector<lp::WarmStart> SolveDriver::warm_starts() const {
  if (!impl_->sweeper) return {};
  return impl_->sweeper->warm_starts();
}

void SolveDriver::restore_warm_starts(std::vector<lp::WarmStart> warm) const {
  if (impl_->sweeper) {
    impl_->sweeper->restore_warm_starts(std::move(warm));
  } else {
    impl_->pending_warm = std::move(warm);
  }
}

std::vector<SolveOutcome> SolveDriver::sweep(
    const std::vector<double>& job_caps) const {
  std::vector<SolveOutcome> out;
  out.reserve(job_caps.size());
  for (double cap : job_caps) out.push_back(solve(cap));
  return out;
}

}  // namespace powerlim::robust
