#include "robust/worker_pool.h"

#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <string>
#include <utility>

#include "robust/wire.h"
#include "util/log.h"
#include "util/posix_io.h"

// RLIMIT_AS under AddressSanitizer kills every worker at startup (ASan
// reserves terabytes of shadow address space), so memory budgets are
// compiled out of sanitizer builds.
#if defined(__SANITIZE_ADDRESS__)
#define POWERLIM_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define POWERLIM_ASAN 1
#endif
#endif
#ifndef POWERLIM_ASAN
#define POWERLIM_ASAN 0
#endif

namespace powerlim::robust {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

[[noreturn]] void child_run(int write_fd, const WorkerTaskSpec& spec,
                            int attempt, const WorkerLimits& limits,
                            int worker_id) {
  util::set_log_worker_id(worker_id);
  apply_worker_limits(limits);
  JournalEntry entry;
  try {
    entry = spec.run(attempt);
  } catch (const std::bad_alloc&) {
    _exit(kWorkerExitOom);
  } catch (...) {
    _exit(kWorkerExitFailure);
  }
  const Status st =
      write_wire_frame(write_fd, 'R', serialize_journal_entry(entry));
  _exit(st.ok() ? 0 : kWorkerExitFailure);
}

/// One spawned worker the parent is supervising.
struct InFlight {
  pid_t pid = -1;
  int fd = -1;  // read end of the result pipe
  std::size_t task = 0;
  int attempt = 0;
  std::string buffer;
  Clock::time_point start;
  bool deadline_killed = false;
};

std::string signal_detail(int sig) {
  std::string out = "signal " + std::to_string(sig);
  const char* name = ::strsignal(sig);
  if (name != nullptr) {
    out += " (";
    out += name;
    out += ")";
  }
  return out;
}

}  // namespace

void apply_worker_limits(const WorkerLimits& limits) {
  if (limits.mem_mb > 0 && !POWERLIM_ASAN) {
    const rlim_t bytes =
        static_cast<rlim_t>(limits.mem_mb) * 1024u * 1024u;
    struct rlimit r = {bytes, bytes};
    (void)::setrlimit(RLIMIT_AS, &r);
  }
  if (limits.cpu_seconds > 0.0) {
    const rlim_t soft =
        static_cast<rlim_t>(std::ceil(limits.cpu_seconds));
    struct rlimit r = {soft, soft + 2};
    (void)::setrlimit(RLIMIT_CPU, &r);
  }
}

WorkerAttemptVerdict classify_worker_exit(bool deadline_killed,
                                          int wait_status,
                                          const std::string& pipe_bytes,
                                          double expected_cap) {
  WorkerAttemptVerdict v;
  if (deadline_killed) {
    v.outcome = WorkerOutcome::kTimedOut;
    v.detail = "worker exceeded its wall budget and was SIGKILLed";
    return v;
  }
  if (WIFSIGNALED(wait_status)) {
    const int sig = WTERMSIG(wait_status);
    if (sig == SIGXCPU) {
      v.outcome = WorkerOutcome::kResourceExhausted;
      v.detail = "CPU budget exhausted (SIGXCPU)";
    } else {
      v.outcome = WorkerOutcome::kCrashed;
      v.detail = "worker died on " + signal_detail(sig);
    }
    return v;
  }
  const int code = WIFEXITED(wait_status) ? WEXITSTATUS(wait_status) : -1;
  if (code == kWorkerExitOom) {
    v.outcome = WorkerOutcome::kResourceExhausted;
    v.detail = "allocator failure under the memory budget (exit " +
               std::to_string(kWorkerExitOom) + ")";
    return v;
  }
  if (code != 0) {
    v.outcome = WorkerOutcome::kCrashed;
    v.detail = "worker exited with code " + std::to_string(code);
    return v;
  }
  std::vector<WireFrame> frames;
  const WireDecode decode = decode_wire_frames(pipe_bytes, &frames);
  const bool shape_ok =
      decode == WireDecode::kOk && !frames.empty() && frames[0].tag == 'R' &&
      frames.size() <= 2 && (frames.size() < 2 || frames[1].tag == 'S');
  if (!shape_ok || !parse_journal_entry(frames[0].payload, &v.entry)) {
    v.outcome = WorkerOutcome::kCrashed;
    v.detail = std::string("clean exit but unusable result frame (") +
               to_string(pipe_bytes.empty() ? WireDecode::kEmpty : decode) +
               ")";
    return v;
  }
  if (v.entry.job_cap_watts != expected_cap) {
    v.outcome = WorkerOutcome::kCrashed;
    v.detail = "result frame answers a different cap";
    return v;
  }
  if (frames.size() == 2) v.solution_text = frames[1].payload;
  v.outcome = WorkerOutcome::kOk;
  return v;
}

bool spawn_worker(const WorkerTaskSpec& spec, int attempt,
                  const WorkerLimits& limits, int worker_id,
                  const std::vector<int>& extra_close_fds,
                  SpawnedWorker* out) {
  int fds[2];
  if (::pipe(fds) != 0) return false;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return false;
  }
  if (pid == 0) {
    ::close(fds[0]);
    for (int fd : extra_close_fds) ::close(fd);
    child_run(fds[1], spec, attempt, limits, worker_id);
  }
  ::close(fds[1]);
  out->pid = pid;
  out->read_fd = fds[0];
  return true;
}

const char* to_string(WorkerOutcome outcome) {
  switch (outcome) {
    case WorkerOutcome::kOk:
      return "ok";
    case WorkerOutcome::kCrashed:
      return "worker-crashed";
    case WorkerOutcome::kResourceExhausted:
      return "resource-exhausted";
    case WorkerOutcome::kTimedOut:
      return "timed-out";
    case WorkerOutcome::kSkipped:
      return "skipped";
  }
  return "?";
}

StatusCode status_code_for(WorkerOutcome outcome) {
  switch (outcome) {
    case WorkerOutcome::kOk:
      return StatusCode::kOk;
    case WorkerOutcome::kCrashed:
      return StatusCode::kWorkerCrashed;
    case WorkerOutcome::kResourceExhausted:
      return StatusCode::kResourceExhausted;
    case WorkerOutcome::kTimedOut:
      return StatusCode::kDeadlineExceeded;
    case WorkerOutcome::kSkipped:
      return StatusCode::kCancelled;
  }
  return StatusCode::kInternal;
}

WorkerPoolResult run_worker_pool(
    const std::vector<WorkerTaskSpec>& tasks,
    const WorkerPoolOptions& options, const util::Deadline& deadline,
    const std::function<void(const WorkerTaskResult&, std::size_t)>&
        on_result) {
  WorkerPoolResult out;
  out.results.resize(tasks.size());
  out.stats.tasks = static_cast<int>(tasks.size());
  const int max_workers = options.workers < 1 ? 1 : options.workers;

  std::vector<InFlight> in_flight;
  std::size_t next_task = 0;
  int worker_seq = 0;

  auto spawn = [&](std::size_t task, int attempt) -> bool {
    // Drop inherited read ends of sibling pipes in the child; holding
    // them is harmless for EOF but leaks fds into long-lived workers.
    std::vector<int> sibling_fds;
    sibling_fds.reserve(in_flight.size());
    for (const InFlight& w : in_flight) sibling_fds.push_back(w.fd);
    SpawnedWorker spawned;
    if (!spawn_worker(tasks[task], attempt, options.limits, worker_seq,
                      sibling_fds, &spawned)) {
      return false;
    }
    InFlight w;
    w.pid = spawned.pid;
    w.fd = spawned.read_fd;
    w.task = task;
    w.attempt = attempt;
    w.start = Clock::now();
    in_flight.push_back(std::move(w));
    ++worker_seq;
    ++out.stats.spawned;
    return true;
  };

  // Reaps w (which has hit pipe EOF) and applies retry/settle policy.
  auto finalize = [&](InFlight& w) {
    ::close(w.fd);
    struct rusage ru = {};
    int status = 0;
    pid_t reaped;
    do {
      reaped = ::wait4(w.pid, &status, 0, &ru);
    } while (reaped < 0 && errno == EINTR);
    const long rss_kb = reaped == w.pid ? ru.ru_maxrss : 0;

    WorkerAttemptVerdict v = classify_worker_exit(
        w.deadline_killed, status, w.buffer, tasks[w.task].job_cap_watts);
    WorkerTaskResult& r = out.results[w.task];
    r.spawns = w.attempt + 1;
    r.peak_rss_kb = std::max(r.peak_rss_kb, rss_kb);
    r.wall_ms += ms_since(w.start);
    if (rss_kb > out.stats.max_peak_rss_kb) {
      out.stats.max_peak_rss_kb = rss_kb;
    }

    switch (v.outcome) {
      case WorkerOutcome::kOk:
        ++out.stats.clean;
        break;
      case WorkerOutcome::kCrashed:
        ++out.stats.crashes;
        break;
      case WorkerOutcome::kResourceExhausted:
        ++out.stats.resource_exhausted;
        break;
      case WorkerOutcome::kTimedOut:
        ++out.stats.timeouts;
        break;
      case WorkerOutcome::kSkipped:
        break;
    }

    if (v.outcome != WorkerOutcome::kOk &&
        w.attempt < options.max_retries &&
        deadline.stop_reason() == util::StopReason::kNone) {
      util::log_warn() << "cap " << tasks[w.task].job_cap_watts
                       << " W: worker attempt " << w.attempt + 1
                       << " failed (" << v.detail << "); retrying in a "
                       << "fresh worker";
      ++out.stats.retries;
      r.detail = v.detail;
      return std::make_pair(true, std::make_pair(w.task, w.attempt + 1));
    }

    r.outcome = v.outcome;
    r.entry = std::move(v.entry);
    if (v.outcome == WorkerOutcome::kOk) {
      r.detail.clear();
    } else {
      r.detail = v.detail;
    }
    if (on_result) on_result(r, w.task);
    return std::make_pair(false, std::make_pair(std::size_t{0}, 0));
  };

  auto kill_all_in_flight = [&] {
    for (InFlight& w : in_flight) {
      ::kill(w.pid, SIGKILL);
      ::close(w.fd);
      int status = 0;
      pid_t reaped;
      do {
        reaped = ::waitpid(w.pid, &status, 0);
      } while (reaped < 0 && errno == EINTR);
      out.results[w.task].outcome = WorkerOutcome::kSkipped;
      out.results[w.task].detail = "pool interrupted mid-solve";
    }
    in_flight.clear();
  };

  while (next_task < tasks.size() || !in_flight.empty()) {
    const util::StopReason stop = deadline.stop_reason();
    if (stop != util::StopReason::kNone) {
      out.interrupted = true;
      out.stop = stop;
      kill_all_in_flight();
      break;
    }

    while (static_cast<int>(in_flight.size()) < max_workers &&
           next_task < tasks.size()) {
      if (!spawn(next_task, 0)) {
        // fork/pipe failure: treat like a crashed first attempt so the
        // task still settles (possibly via retry below).
        out.results[next_task].outcome = WorkerOutcome::kCrashed;
        out.results[next_task].detail =
            std::string("cannot spawn worker: ") + std::strerror(errno);
        ++out.stats.crashes;
        if (on_result) on_result(out.results[next_task], next_task);
      }
      ++next_task;
    }
    if (in_flight.empty()) continue;

    std::vector<pollfd> fds;
    fds.reserve(in_flight.size());
    for (const InFlight& w : in_flight) {
      fds.push_back({w.fd, POLLIN, 0});
    }
    int rc;
    do {
      rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 20);
    } while (rc < 0 && errno == EINTR);

    // Enforce per-spawn wall budgets before draining: a hung worker
    // never produces POLLIN, so the kill is what un-wedges the pool
    // (EOF follows the kill and finalize classifies kTimedOut).
    if (options.limits.wall_seconds > 0.0) {
      for (InFlight& w : in_flight) {
        if (!w.deadline_killed &&
            ms_since(w.start) > options.limits.wall_seconds * 1000.0) {
          w.deadline_killed = true;
          ::kill(w.pid, SIGKILL);
        }
      }
    }

    std::vector<std::pair<std::size_t, int>> respawns;
    for (std::size_t i = in_flight.size(); i-- > 0;) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      InFlight& w = in_flight[i];
      char buf[1 << 16];
      const ssize_t n = util::read_some(w.fd, buf, sizeof buf);
      if (n > 0) {
        w.buffer.append(buf, static_cast<std::size_t>(n));
        continue;
      }
      // EOF (or error): the worker is done writing - settle it.
      const auto [retry, next] = finalize(w);
      if (retry) respawns.push_back(next);
      in_flight.erase(in_flight.begin() + static_cast<long>(i));
    }
    for (const auto& [task, attempt] : respawns) {
      if (!spawn(task, attempt)) {
        WorkerTaskResult& r = out.results[task];
        r.outcome = WorkerOutcome::kCrashed;
        r.detail = std::string("cannot respawn worker: ") +
                   std::strerror(errno);
        if (on_result) on_result(r, task);
      }
    }
  }

  return out;
}

}  // namespace powerlim::robust
