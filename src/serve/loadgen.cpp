#include "serve/loadgen.h"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>
#include <vector>

#include "robust/wire.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "util/posix_io.h"
#include "util/stats.h"

namespace powerlim::serve {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t).count();
}

/// The requests one honest client will run, in order. Synthesized
/// from clients*requests, or this client's round-robin share of the
/// replay file.
std::vector<ReplayItem> client_work(const LoadgenOptions& opt,
                                    int client_idx) {
  std::vector<ReplayItem> work;
  if (opt.replay.empty()) {
    ReplayItem item;
    item.kind = opt.caps.size() == 1 ? "bound" : "sweep";
    item.deadline_ms = opt.deadline_ms;
    item.caps = opt.caps;
    work.assign(static_cast<std::size_t>(opt.requests), item);
    return work;
  }
  for (std::size_t i = static_cast<std::size_t>(client_idx);
       i < opt.replay.size();
       i += static_cast<std::size_t>(opt.clients)) {
    work.push_back(opt.replay[i]);
  }
  return work;
}

/// One honest client: its share of the work, sequential submits, one
/// result line per request up the pipe:
/// "<ok|overloaded|error> <latency-ms>\n".
int run_client(const LoadgenOptions& opt, int client_idx, int write_fd) {
  const std::vector<ReplayItem> work = client_work(opt, client_idx);
  const bool failover = opt.endpoints.size() > 1;
  FailoverClient failover_client(opt.endpoints);
  ServeClient client;
  std::string lines;
  if (!failover && !client.connect(opt.server, /*timeout_s=*/10.0).ok()) {
    for (std::size_t r = 0; r < work.size(); ++r) lines += "error 0\n";
    (void)util::write_full(write_fd, lines.data(), lines.size());
    return 1;
  }
  for (std::size_t r = 0; r < work.size(); ++r) {
    ServeRequest req;
    {
      std::ostringstream id;
      id << "c" << client_idx << "-r" << r;
      req.id = id.str();
    }
    req.kind = work[r].kind;
    req.deadline_ms = work[r].deadline_ms;
    req.caps = work[r].caps;
    req.trace_text = opt.trace_text;

    const Clock::time_point start = Clock::now();
    const char* verdict = "error";
    if (failover) {
      const FailoverResult got = failover_client.request(
          req, /*connect_timeout_s=*/10.0, opt.wall_timeout_s);
      if (got.result.status == CollectStatus::kDone &&
          got.result.done.rows == static_cast<int>(req.caps.size()))
        verdict = "ok";
      else if (got.result.status == CollectStatus::kOverloaded)
        verdict = "overloaded";
    } else if (client.submit(req).ok()) {
      const CollectResult got = client.collect(req.id, opt.wall_timeout_s);
      if (got.status == CollectStatus::kDone &&
          got.done.rows == static_cast<int>(req.caps.size())) {
        verdict = "ok";
      } else if (got.status == CollectStatus::kOverloaded) {
        verdict = "overloaded";
      } else if (got.status == CollectStatus::kDisconnected) {
        // One reconnect: the daemon may have reaped us while we sat
        // between requests.
        if (!client.connect(opt.server, /*timeout_s=*/10.0).ok()) {
          verdict = "error";
        } else if (client.submit(req).ok()) {
          const CollectResult again =
              client.collect(req.id, opt.wall_timeout_s);
          if (again.status == CollectStatus::kDone &&
              again.done.rows == static_cast<int>(req.caps.size()))
            verdict = "ok";
          else if (again.status == CollectStatus::kOverloaded)
            verdict = "overloaded";
        }
      }
    }
    char line[64];
    std::snprintf(line, sizeof(line), "%s %.3f\n", verdict, ms_since(start));
    lines += line;
  }
  (void)util::write_full(write_fd, lines.data(), lines.size());
  return 0;
}

void send_raw(int fd, const std::string& bytes) {
  (void)util::send_all(fd, bytes.data(), bytes.size(), /*timeout_s=*/5.0);
}

/// The saboteur: one misbehaving peer per mode. It never reports
/// results - its entire job is to NOT take the daemon down with it.
int run_saboteur(const LoadgenOptions& opt) {
  std::string error;
  const int fd = util::connect_timeout(opt.server, 5.0, &error);
  if (fd < 0) return 1;

  if (opt.inject == "net-drop") {
    // Half a hello frame, then a hard close: the daemon's stream sees a
    // torn frame and must just drop the connection.
    const std::string hello =
        robust::encode_wire_frame(kTagHello, encode_hello());
    send_raw(fd, hello.substr(0, hello.size() / 2));
    ::close(fd);
    return 0;
  }
  if (opt.inject == "net-stall") {
    // Hold a partial frame open past the handshake timeout; the daemon
    // must reap us without stalling anyone else.
    send_raw(fd, "W ");
    ::usleep(static_cast<useconds_t>(opt.inject_hold_s * 1e6));
    ::close(fd);
    return 0;
  }
  if (opt.inject == "oversize") {
    // A hostile length prefix (way past kMaxWirePayload). The daemon
    // must reject it before allocating and drop us.
    send_raw(fd, "W U deadbeef 999999999999999\nx");
    ::usleep(static_cast<useconds_t>(opt.inject_hold_s * 1e6));
    ::close(fd);
    return 0;
  }
  if (opt.inject == "slow-read") {
    // Handshake + a real request, then never read a byte: the daemon's
    // replies back up in our socket until its progress timeout drops
    // us. Submit via the real client, then sit on the fd.
    ::close(fd);
    ServeClient client;
    if (!client.connect(opt.server, 5.0).ok()) return 1;
    ServeRequest req;
    req.id = "saboteur";
    req.kind = opt.caps.size() == 1 ? "bound" : "sweep";
    req.caps = opt.caps;
    req.trace_text = opt.trace_text;
    (void)client.submit(req);
    ::usleep(static_cast<useconds_t>(opt.inject_hold_s * 1e6));
    return 0;
  }
  ::close(fd);
  return 1;
}

}  // namespace

bool parse_replay_file(const std::string& path, std::vector<ReplayItem>* out,
                       std::string* error) {
  std::ifstream in(path);
  if (!in.is_open()) {
    if (error != nullptr) *error = path + ": cannot open";
    return false;
  }
  std::vector<ReplayItem> items;
  std::string line;
  long lineno = 0;
  auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      std::ostringstream os;
      os << path << ":" << lineno << ": " << why;
      *error = os.str();
    }
    return false;
  };
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields(line);
    ReplayItem item;
    std::string caps_csv;
    if (!(fields >> item.kind >> item.deadline_ms >> caps_csv))
      return fail("want '<kind> <deadline-ms> <cap[,cap...]>'");
    if (item.kind != "bound" && item.kind != "sweep")
      return fail("unknown kind '" + item.kind + "'");
    if (item.deadline_ms < 0.0) return fail("negative deadline");
    std::istringstream caps(caps_csv);
    std::string tok;
    while (std::getline(caps, tok, ',')) {
      char* tail = nullptr;
      const double cap = std::strtod(tok.c_str(), &tail);
      if (tok.empty() || tail == nullptr || *tail != '\0' || !(cap > 0.0))
        return fail("bad cap '" + tok + "'");
      item.caps.push_back(cap);
    }
    if (item.caps.empty()) return fail("no caps");
    items.push_back(std::move(item));
  }
  if (items.empty()) {
    lineno = 0;
    return fail("no requests in replay file");
  }
  *out = std::move(items);
  return true;
}

std::string LoadgenReport::to_json() const {
  std::ostringstream os;
  os << "{\"requests\":" << requests << ",\"ok\":" << ok
     << ",\"overloaded\":" << overloaded << ",\"errors\":" << errors
     << ",\"p50_ms\":" << p50_ms << ",\"p99_ms\":" << p99_ms
     << ",\"mean_ms\":" << mean_ms << ",\"wall_s\":" << wall_s
     << ",\"throughput_rps\":" << throughput_rps
     << ",\"saboteur\":" << (saboteur_ran ? "true" : "false") << "}";
  return os.str();
}

LoadgenReport run_loadgen(const LoadgenOptions& opt, std::ostream& err) {
  LoadgenReport report;
  const Clock::time_point start = Clock::now();

  struct Child {
    pid_t pid = -1;
    int pipe_fd = -1;
    bool saboteur = false;
  };
  std::vector<Child> children;

  auto spawn = [&](bool saboteur, int idx) {
    int pfd[2] = {-1, -1};
    if (!saboteur && ::pipe(pfd) != 0) return;
    const pid_t pid = ::fork();
    if (pid < 0) {
      if (pfd[0] >= 0) ::close(pfd[0]);
      if (pfd[1] >= 0) ::close(pfd[1]);
      return;
    }
    if (pid == 0) {
      for (const Child& c : children) {
        if (c.pipe_fd >= 0) ::close(c.pipe_fd);
      }
      if (saboteur) {
        ::_exit(run_saboteur(opt));
      }
      ::close(pfd[0]);
      ::_exit(run_client(opt, idx, pfd[1]));
    }
    if (pfd[1] >= 0) ::close(pfd[1]);
    children.push_back({pid, saboteur ? -1 : pfd[0], saboteur});
  };

  // The saboteur connects first so the honest fleet overlaps its whole
  // misbehaving lifetime.
  if (!opt.inject.empty()) spawn(/*saboteur=*/true, -1);
  for (int c = 0; c < opt.clients; ++c) spawn(/*saboteur=*/false, c);

  std::vector<double> ok_latencies;
  for (const Child& child : children) {
    if (child.pipe_fd >= 0) {
      std::string text;
      if (!robust::drain_fd(child.pipe_fd, &text)) text.clear();
      ::close(child.pipe_fd);
      std::istringstream lines(text);
      std::string verdict;
      double ms = 0.0;
      while (lines >> verdict >> ms) {
        ++report.requests;
        if (verdict == "ok") {
          ++report.ok;
          ok_latencies.push_back(ms);
        } else if (verdict == "overloaded") {
          ++report.overloaded;
        } else {
          ++report.errors;
        }
      }
    }
    int status = 0;
    (void)::waitpid(child.pid, &status, 0);
    if (child.saboteur) report.saboteur_ran = true;
  }

  // Clients that died without reporting every request still count.
  const long expected =
      opt.replay.empty()
          ? static_cast<long>(opt.clients) * static_cast<long>(opt.requests)
          : static_cast<long>(opt.replay.size());
  if (report.requests < expected) {
    report.errors += expected - report.requests;
    report.requests = expected;
  }

  report.wall_s = ms_since(start) / 1000.0;
  if (!ok_latencies.empty()) {
    std::sort(ok_latencies.begin(), ok_latencies.end());
    report.p50_ms = util::percentile(ok_latencies, 50.0);
    report.p99_ms = util::percentile(ok_latencies, 99.0);
    report.mean_ms = util::mean(ok_latencies);
  }
  if (report.wall_s > 0.0)
    report.throughput_rps = static_cast<double>(report.ok) / report.wall_s;

  err << "loadgen: " << report.ok << "/" << report.requests << " ok, "
      << report.overloaded << " overloaded, " << report.errors
      << " errors in " << report.wall_s << "s\n";
  return report;
}

}  // namespace powerlim::serve
