// powerlimd: the crash-safe, overload-tolerant bound/sweep daemon
// (tentpole of the service-robustness work).
//
// `powerlim serve` turns the resilient sweep stack into a long-running
// service: clients connect over TCP ("powerlimd v1", serve/protocol.h),
// submit bound/sweep requests, and get per-cap rows streamed back as
// they settle. The daemon is built on three invariants:
//
//   * Admission control, not collapse. Requests wait in a bounded queue
//     (--max-queue) with at most --max-active executing; a full queue
//     answers `overloaded` immediately instead of accepting work it
//     cannot finish, a queued request whose deadline passes is shed
//     before it wastes an executor, and a slow or stalled client can
//     only stall *its own* connection (per-connection write buffers
//     with progress timeouts), never the accept loop or other clients.
//
//   * Journal-first durability. Every admitted request is journaled as
//     a `Q` intent (per-trace journal under --state-dir) *before* its
//     first solve, and every settled cap as an `R` record before the
//     row is replied. A daemon killed mid-request (SIGKILL included)
//     restarts with `--resume` and finishes exactly the owed caps -
//     already-proven caps are served from the journal, never re-solved.
//     The journals are byte-compatible with offline `powerlim sweep
//     --journal` files: replies carry the schema-6 `service` telemetry
//     block patched in, journals keep the unpatched bytes.
//
//   * Fault degradation over refusal. Each request runs in a forked
//     executor wrapping robust::resilient_sweep, so worker crashes,
//     OOMs, hangs and remote-worker network faults walk the existing
//     retry/degradation ladder; if the executor itself dies it is
//     re-forked once for the unsettled caps, and a second death
//     degrades those caps to the Static-policy bound - the client
//     still gets a row per cap.
//
// Lifecycle: SIGTERM (via ServeOptions.cancel) drains - accepts stop,
// queued requests are shed as `overloaded` (reason "draining"), active
// executors finish, then the daemon exits 0. SIGHUP (via
// ServeOptions.reopen_flag) closes and reopens the journals of active
// requests. The daemon itself is single-threaded (one poll loop);
// parallelism lives in the forked executors and their worker pools.
//
// High availability (serve/repl.h): a primary streams its journals to
// warm standbys (`--standby-of HOST:PORT`) over the same port and
// heartbeats them every --repl-heartbeat-ms. A standby serves repeat
// queries whose caps are all proven in its replica journals and sheds
// everything else (reason "standby"); it becomes the primary on an
// operator `powerlim promote` or, with --promote-after-ms, on its own
// once the primary has been silent that long - either way by bumping
// the failover epoch, persisting it, and stamping it into every
// journal. A deposed primary that observes a higher epoch (on the
// replication link or fenced out of its own journals) drains and exits
// kExitFenced instead of racing the promoted standby.
#pragma once

#include <csignal>
#include <iosfwd>
#include <string>
#include <vector>

#include "machine/machine.h"
#include "machine/power_model.h"
#include "util/deadline.h"

namespace powerlim::serve {

struct ServeOptions {
  /// host:port to listen on (port 0 picks an ephemeral port).
  std::string listen = "127.0.0.1:0";
  /// When set, the bound port is written here (atomic rename), so tests
  /// and scripts can start the daemon on port 0 and discover the port.
  std::string port_file;
  /// Directory for per-trace journals (`sweep-<hash>.journal`) and
  /// their trace snapshots (`trace-<hash>.trace`). Created if absent.
  std::string state_dir = "powerlimd-state";
  /// Scan state_dir on startup and finish every journaled request
  /// intent whose caps lack trusted records (the post-SIGKILL path).
  bool resume = false;

  /// Admitted-but-not-executing ceiling; beyond it requests are shed
  /// with `overloaded` (reason "queue-full").
  int max_queue = 16;
  /// Concurrently executing requests (forked executors).
  int max_active = 1;

  /// Executor solve topology, forwarded to ResilientSweepOptions.
  int workers = 1;
  long worker_mem_mb = 0;
  double worker_cpu_s = 0.0;
  std::vector<std::string> remotes;
  double remote_timeout_ms = 0.0;
  double remote_heartbeat_ms = 0.0;
  /// Per-cap wall budget inside the executor, ms (0 = unlimited).
  double cap_deadline_ms = 0.0;

  /// Deadline applied to requests that do not carry one, ms (0 = none).
  double default_deadline_ms = 0.0;
  /// Ceiling clamped onto every request's deadline, ms (0 = no ceiling).
  double max_deadline_ms = 0.0;
  /// Extra wall grace past a request's deadline before its executor is
  /// SIGKILLed (the executor observes the deadline cooperatively and
  /// normally exits on its own well within this).
  double deadline_grace_ms = 2000.0;

  /// A connection that makes no handshake, or whose pending output makes
  /// no progress, for this long is dropped (slow-client containment).
  double io_timeout_s = 10.0;
  /// Idle (handshaken, nothing in flight) connections are reaped after
  /// this long.
  double idle_timeout_s = 300.0;

  /// SIGTERM hook: when this token trips, the daemon drains and exits.
  const util::CancelToken* cancel = nullptr;
  /// SIGHUP hook: when nonzero, journals of active requests are closed
  /// and reopened, and the flag is reset. Must be async-signal-safe to
  /// set (it is a plain sig_atomic_t the handler stores 1 into).
  volatile std::sig_atomic_t* reopen_flag = nullptr;

  /// Exit after this many requests have finished (0 = run forever).
  /// Test hook, mirroring serve-worker's --once.
  long max_requests = 0;

  /// Warm-standby mode: replicate from this "host:port" primary instead
  /// of executing work. Empty = primary.
  std::string standby_of;
  /// Standby only: auto-promote once the primary has been silent this
  /// long, ms (0 = promote only on operator command).
  double promote_after_ms = 0.0;
  /// Primary only: heartbeat/stream-reconciliation cadence toward
  /// connected standbys, ms.
  double repl_heartbeat_ms = 250.0;
};

/// serve() exit code when the daemon was *fenced*: it observed a higher
/// failover epoch (a standby was promoted past it) and refused to keep
/// writing. Distinct from 0/1 so supervisors restart it as a standby
/// instead of looping it as a primary.
inline constexpr int kExitFenced = 76;

/// Runs the daemon until drained (SIGTERM) or max_requests. Returns 0
/// on a clean drain, 1 on startup failure (bad listen address, port in
/// use past the retry budget, unusable state_dir). Progress goes to
/// `out`, errors to `err`. Install a ScopedFaultPlan before calling to
/// inject faults into every executor (they inherit it across fork).
int serve(const ServeOptions& options, const machine::PowerModel& model,
          const machine::ClusterSpec& cluster, std::ostream& out,
          std::ostream& err);

}  // namespace powerlim::serve
