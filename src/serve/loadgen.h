// Concurrent load generator for powerlimd.
//
// Forks N honest clients, each running M sequential requests over its
// own connection, and aggregates per-request latencies into the
// numbers that matter for an admission-controlled daemon: how many
// requests completed, how many were honestly shed as `overloaded`, and
// the p50/p99 latency of the ones that were served. One optional
// *saboteur* client runs alongside (--inject): it misbehaves at the
// protocol level - drops mid-frame, stalls holding a partial frame,
// submits then never reads, or sends a hostile oversized length prefix
// - and the honest clients' results prove the daemon contained it.
//
// Used by `powerlim loadgen`, bench/bench_serve.cpp, and the overload/
// containment tests.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "util/socket_io.h"

namespace powerlim::serve {

/// One replayed request, parsed from a `--replay` file line:
///   <kind> <deadline-ms> <cap[,cap...]>
/// Blank lines and `#` comments are skipped.
struct ReplayItem {
  std::string kind = "sweep";
  double deadline_ms = 0.0;
  std::vector<double> caps;
};

/// Parses a replay file. On failure returns false with a line-numbered
/// explanation in *error and leaves *out untouched.
bool parse_replay_file(const std::string& path, std::vector<ReplayItem>* out,
                       std::string* error);

struct LoadgenOptions {
  util::Endpoint server;
  /// Failover endpoint list (--endpoints). When it has more than one
  /// entry, honest clients route each request through FailoverClient -
  /// unreachable/shedding/dying endpoints advance to the next - instead
  /// of holding one connection to `server`.
  std::vector<util::Endpoint> endpoints;
  /// Replayed request mix (--replay, parse_replay_file). When
  /// non-empty it replaces the synthesized clients*requests fleet:
  /// items are dealt round-robin across `clients` processes and each
  /// client runs its share sequentially. `caps`/`deadline_ms` below
  /// are ignored for replayed items (the file carries its own).
  std::vector<ReplayItem> replay;
  /// Honest client processes.
  int clients = 4;
  /// Sequential requests per client (ignored when `replay` is set).
  int requests = 4;
  /// Caps each request sweeps.
  std::vector<double> caps;
  /// Trace every request solves (dag::write_trace text).
  std::string trace_text;
  /// Per-request deadline shipped to the daemon, ms (0 = none).
  double deadline_ms = 0.0;
  /// Client-side wall ceiling per request, s.
  double wall_timeout_s = 60.0;
  /// Saboteur mode: "" (none), "net-drop", "net-stall", "slow-read",
  /// "oversize".
  std::string inject;
  /// How long stall-style saboteurs hold their connection, s.
  double inject_hold_s = 2.0;
};

struct LoadgenReport {
  /// Requests attempted by honest clients (clients * requests).
  long requests = 0;
  long ok = 0;
  long overloaded = 0;
  long errors = 0;
  /// Latency percentiles over *served* (ok) requests, ms.
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  /// Whole-run wall time and served-request throughput.
  double wall_s = 0.0;
  double throughput_rps = 0.0;
  /// True when the saboteur (if any) ran and exited.
  bool saboteur_ran = false;

  std::string to_json() const;
};

/// Runs the fleet to completion and aggregates. Progress lines go to
/// `err` (stdout stays clean for --json consumers).
LoadgenReport run_loadgen(const LoadgenOptions& options, std::ostream& err);

}  // namespace powerlim::serve
