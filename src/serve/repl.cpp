#include "serve/repl.h"

#include <dirent.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ostream>
#include <utility>

#include "util/posix_io.h"

namespace powerlim::serve {

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

std::string journal_path(const std::string& state_dir,
                         const std::string& hash) {
  return state_dir + "/sweep-" + hash + ".journal";
}

std::string trace_path(const std::string& state_dir,
                       const std::string& hash) {
  return state_dir + "/trace-" + hash + ".trace";
}

bool valid_trace_hash(const std::string& hash) {
  if (hash.empty() || hash.size() > 16) return false;
  for (char c : hash) {
    const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!hex) return false;
  }
  return true;
}

std::vector<std::string> journal_hashes(const std::string& state_dir) {
  std::vector<std::string> hashes;
  DIR* dir = ::opendir(state_dir.c_str());
  if (dir == nullptr) return hashes;
  const std::string prefix = "sweep-";
  const std::string suffix = ".journal";
  while (struct dirent* ent = ::readdir(dir)) {
    const std::string name = ent->d_name;
    if (name.size() <= prefix.size() + suffix.size()) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
        0)
      continue;
    const std::string hash =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    if (valid_trace_hash(hash)) hashes.push_back(hash);
  }
  ::closedir(dir);
  std::sort(hashes.begin(), hashes.end());
  return hashes;
}

std::uint64_t load_epoch_file(const std::string& state_dir) {
  const std::string path = state_dir + "/epoch";
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return 0;
  char buf[64] = {};
  const ssize_t n = util::read_full(fd, buf, sizeof buf - 1);
  ::close(fd);
  if (n <= 0) return 0;
  std::uint64_t epoch = 0;
  if (std::sscanf(buf, "epoch=%llu",
                  reinterpret_cast<unsigned long long*>(&epoch)) != 1) {
    return 0;
  }
  return epoch;
}

bool store_epoch_file(const std::string& state_dir, std::uint64_t epoch,
                      std::string* error) {
  const std::string path = state_dir + "/epoch";
  const std::string tmp = path + ".tmp";
  const std::string body = "epoch=" + std::to_string(epoch) + "\n";
  const int fd = ::open(tmp.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    if (error) *error = errno_message(("open " + tmp).c_str());
    return false;
  }
  if (util::write_full(fd, body.data(), body.size()) != 0 ||
      util::fsync_full(fd) != 0) {
    if (error) *error = errno_message(("write " + tmp).c_str());
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error) *error = errno_message(("rename " + tmp).c_str());
    ::unlink(tmp.c_str());
    return false;
  }
  if (util::fsync_parent_dir(path) != 0) {
    if (error) *error = errno_message(("fsync dir of " + path).c_str());
    return false;
  }
  return true;
}

bool file_prefix_crc(const std::string& path, std::uint64_t offset,
                     std::uint32_t* crc_out) {
  std::string bytes;
  if (!read_file_range(path, 0, offset, &bytes)) return false;
  if (bytes.size() != offset) return false;
  *crc_out = robust::crc32(bytes.data(), bytes.size());
  return true;
}

bool read_file_range(const std::string& path, std::uint64_t offset,
                     std::size_t max_bytes, std::string* out) {
  out->clear();
  if (max_bytes == 0) return true;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  // Clamp to what the file can actually deliver *before* sizing the
  // buffer: max_bytes derives from a peer's replication mark, and a
  // corrupt or hostile offset must not translate into a huge resize.
  // Callers pre-clamp today; this keeps the function safe on its own.
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return false;
  }
  const std::uint64_t size = static_cast<std::uint64_t>(st.st_size);
  const std::size_t max_readable =
      offset >= size
          ? 0
          : static_cast<std::size_t>(
                std::min<std::uint64_t>(max_bytes, size - offset));
  if (max_readable == 0) {
    ::close(fd);
    return true;
  }
  out->resize(max_readable);
  std::size_t got = 0;
  while (got < max_readable) {
    const ssize_t n = util::retry_eintr([&] {
      return ::pread(fd, &(*out)[got], max_readable - got,
                     static_cast<off_t>(offset + got));
    });
    if (n < 0) {
      ::close(fd);
      out->clear();
      return false;
    }
    if (n == 0) break;  // EOF: short read is fine
    got += static_cast<std::size_t>(n);
  }
  ::close(fd);
  out->resize(got);
  return true;
}

// --- StandbyLink ---

struct StandbyLink::JournalSlot {
  std::unique_ptr<robust::SweepJournal> journal;
};

StandbyLink::StandbyLink(const Options& options, std::ostream& log)
    : opt_(options), log_(log), epoch_(options.epoch) {
  last_heard_ms_ = now_ms();
  next_dial_ms_ = 0.0;  // dial immediately on the first tick
}

StandbyLink::~StandbyLink() { close_link(); }

short StandbyLink::poll_events() const {
  return connecting_ ? POLLOUT : POLLIN;
}

double StandbyLink::silence_ms() const { return now_ms() - last_heard_ms_; }

void StandbyLink::touch() { last_heard_ms_ = now_ms(); }

void StandbyLink::close_link() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  connecting_ = false;
  helloed_ = false;
  stream_ = robust::FrameStream();
  journals_.clear();
}

void StandbyLink::drop_link(const std::string& why) {
  if (fd_ >= 0) {
    log_ << "powerlimd: standby: link to " << util::to_string(opt_.primary)
         << " dropped: " << why << "\n";
    ::close(fd_);
  }
  fd_ = -1;
  connecting_ = false;
  helloed_ = false;
  stream_ = robust::FrameStream();
  next_dial_ms_ = now_ms() + opt_.backoff_ms;
}

void StandbyLink::start_dial() {
  std::string error;
  fd_ = util::connect_start(opt_.primary, &error);
  if (fd_ < 0) {
    log_ << "powerlimd: standby: dial failed: " << error << "\n";
    next_dial_ms_ = now_ms() + opt_.backoff_ms;
    return;
  }
  connecting_ = true;
  reconnects_++;
}

void StandbyLink::tick() {
  if (fd_ >= 0) return;
  if (now_ms() < next_dial_ms_) return;
  start_dial();
}

bool StandbyLink::send_frame(char tag, const std::string& payload) {
  const std::string bytes = robust::encode_wire_frame(tag, payload);
  if (bytes.empty()) {
    drop_link("oversized frame on send");
    return false;
  }
  const util::IoStatus st =
      util::send_all(fd_, bytes.data(), bytes.size(), 10.0);
  if (st != util::IoStatus::kOk) {
    drop_link(std::string("send: ") + util::to_string(st));
    return false;
  }
  return true;
}

void StandbyLink::send_hello() {
  ReplHello hello;
  hello.epoch = epoch_;
  for (const std::string& hash : journal_hashes(opt_.state_dir)) {
    JournalSlot* slot = slot_for(hash);
    if (slot == nullptr) continue;
    ReplMark mark;
    mark.hash = hash;
    mark.offset = slot->journal->size_bytes();
    if (!file_prefix_crc(journal_path(opt_.state_dir, hash), mark.offset,
                         &mark.crc)) {
      continue;  // vanished or shrank underneath us; re-mark next dial
    }
    hello.marks.push_back(mark);
  }
  (void)send_frame(kTagReplHello, encode_repl_hello(hello));
}

void StandbyLink::on_pollable() {
  if (fd_ < 0) return;
  if (connecting_) {
    std::string error;
    const util::IoStatus st = util::connect_finish(fd_, &error);
    if (st != util::IoStatus::kOk) {
      drop_link(error.empty() ? util::to_string(st) : error);
      return;
    }
    connecting_ = false;
    touch();
    send_hello();
    return;
  }
  std::string bytes;
  const util::IoStatus st = util::recv_some(fd_, &bytes);
  if (st == util::IoStatus::kTimeout) return;  // spurious wakeup
  if (st != util::IoStatus::kOk) {
    drop_link(std::string("recv: ") + util::to_string(st));
    return;
  }
  stream_.feed(bytes);
  robust::WireFrame frame;
  while (true) {
    const robust::WireDecode d = stream_.next(&frame);
    if (d == robust::WireDecode::kEmpty) break;
    if (d != robust::WireDecode::kOk) {
      // Torn, CRC-damaged, or hostile-length bytes from the primary:
      // the stream is unresynchronizable, so drop and redial. Nothing
      // was applied from the bad frame; the next hello re-marks from
      // the durable high-water mark.
      rejected_++;
      drop_link("stream poisoned: " + stream_.last_error());
      return;
    }
    handle_frame(frame);
    if (fd_ < 0) return;  // a handler dropped the link
  }
}

void StandbyLink::adopt_epoch(std::uint64_t epoch) {
  if (epoch <= epoch_) return;
  epoch_ = epoch;
  std::string error;
  if (!store_epoch_file(opt_.state_dir, epoch_, &error)) {
    log_ << "powerlimd: standby: cannot persist epoch " << epoch_ << ": "
         << error << "\n";
  }
  log_ << "powerlimd: standby: adopted epoch " << epoch_ << "\n";
}

bool StandbyLink::check_epoch(std::uint64_t frame_epoch, const char* what) {
  if (frame_epoch < epoch_) {
    // A deposed primary is still streaming under a superseded epoch.
    // Refuse the bytes and sever - this standby may be about to be (or
    // already was) promoted past it.
    rejected_++;
    drop_link(std::string(what) + " under stale epoch " +
              std::to_string(frame_epoch) + " < " + std::to_string(epoch_));
    return false;
  }
  adopt_epoch(frame_epoch);
  return true;
}

StandbyLink::JournalSlot* StandbyLink::slot_for(const std::string& hash) {
  auto it = journals_.find(hash);
  if (it != journals_.end()) return it->second.get();
  auto opened = robust::SweepJournal::open(journal_path(opt_.state_dir, hash));
  if (!opened.ok()) {
    log_ << "powerlimd: standby: cannot open journal " << hash << ": "
         << opened.status().to_string() << "\n";
    return nullptr;
  }
  auto slot = std::make_unique<JournalSlot>();
  slot->journal =
      std::make_unique<robust::SweepJournal>(std::move(opened).value());
  return journals_.emplace(hash, std::move(slot)).first->second.get();
}

void StandbyLink::ack(const std::string& hash, std::uint64_t offset) {
  ReplAck a;
  a.hash = hash;
  a.offset = offset;
  a.epoch = epoch_;
  (void)send_frame(kTagReplAck, encode_repl_ack(a));
}

void StandbyLink::handle_frame(const robust::WireFrame& frame) {
  touch();
  switch (frame.tag) {
    case kTagReplHelloAck: {
      ReplHelloAck ack;
      if (!decode_repl_hello_ack(frame.payload, &ack)) {
        drop_link("malformed hello ack");
        return;
      }
      if (!ack.ok) {
        drop_link("primary refused: " + ack.error);
        return;
      }
      if (ack.epoch < epoch_) {
        // The dialed "primary" is behind this standby's epoch: it is
        // deposed (it will fence itself on our hello). Do not follow it.
        rejected_++;
        drop_link("primary epoch " + std::to_string(ack.epoch) +
                  " is stale (local " + std::to_string(epoch_) + ")");
        return;
      }
      adopt_epoch(ack.epoch);
      helloed_ = true;
      log_ << "powerlimd: standby: replicating from "
           << util::to_string(opt_.primary) << " at epoch " << epoch_
           << "\n";
      return;
    }
    case kTagReplHeartbeat: {
      std::uint64_t epoch = 0;
      if (!decode_repl_heartbeat(frame.payload, &epoch)) {
        drop_link("malformed heartbeat");
        return;
      }
      (void)check_epoch(epoch, "heartbeat");
      return;
    }
    case kTagReplTrace:
      handle_trace(frame.payload);
      return;
    case kTagReplJournal:
      handle_journal(frame.payload);
      return;
    case kTagReplResync:
      handle_resync(frame.payload);
      return;
    default:
      drop_link(std::string("unexpected frame '") + frame.tag + "'");
      return;
  }
}

void StandbyLink::handle_trace(const std::string& payload) {
  ReplTrace trace;
  if (!decode_repl_trace(payload, &trace)) {
    drop_link("malformed trace frame");
    return;
  }
  if (!valid_trace_hash(trace.hash)) {
    rejected_++;
    drop_link("hostile trace hash");
    return;
  }
  const std::string path = trace_path(opt_.state_dir, trace.hash);
  // O_EXCL: trace snapshots are immutable once taken (the hash *is* the
  // content key), so a re-sent snapshot after a reconnect is a no-op.
  const int fd = ::open(path.c_str(),
                        O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  if (fd < 0) {
    if (errno == EEXIST) return;
    log_ << "powerlimd: standby: cannot write " << path << ": "
         << std::strerror(errno) << "\n";
    return;
  }
  const bool ok = util::write_full(fd, trace.trace_text.data(),
                                   trace.trace_text.size()) == 0 &&
                  util::fsync_full(fd) == 0;
  ::close(fd);
  if (!ok || util::fsync_parent_dir(path) != 0) {
    log_ << "powerlimd: standby: cannot persist " << path << "\n";
    ::unlink(path.c_str());
  }
}

void StandbyLink::handle_journal(const std::string& payload) {
  ReplJournal j;
  if (!decode_repl_journal(payload, &j)) {
    drop_link("malformed journal frame");
    return;
  }
  if (!valid_trace_hash(j.hash)) {
    rejected_++;
    drop_link("hostile journal hash");
    return;
  }
  if (!check_epoch(j.epoch, "journal bytes")) return;
  JournalSlot* slot = slot_for(j.hash);
  if (slot == nullptr) return;
  const robust::Status st = slot->journal->append_raw(j.offset, j.bytes);
  if (st.ok()) {
    frames_applied_++;
    bytes_applied_ += static_cast<long>(j.bytes.size());
    ack(j.hash, slot->journal->size_bytes());
    return;
  }
  if (st.code() == robust::StatusCode::kBadInput) {
    // Offset mismatch: re-ack the durable mark so the primary rewinds
    // its stream (or resyncs us if our copy outran/diverged from its).
    ack(j.hash, slot->journal->size_bytes());
    return;
  }
  // kWireMalformed: torn or corrupt record bytes inside the frame.
  // Nothing was applied; sever and resync from the durable mark.
  rejected_++;
  drop_link("corrupt journal bytes for " + j.hash + ": " + st.to_string());
}

void StandbyLink::handle_resync(const std::string& payload) {
  ReplResync r;
  if (!decode_repl_resync(payload, &r)) {
    drop_link("malformed resync frame");
    return;
  }
  if (!valid_trace_hash(r.hash)) {
    rejected_++;
    drop_link("hostile resync hash");
    return;
  }
  // This copy's history diverged from the primary's (or outran it, e.g.
  // the standby survived an epoch the primary lost). Quarantine - never
  // delete - and restart the file from its header.
  journals_.erase(r.hash);
  const std::string path = journal_path(opt_.state_dir, r.hash);
  const std::string quarantine = path + ".divergent";
  ::unlink(quarantine.c_str());
  if (::rename(path.c_str(), quarantine.c_str()) != 0 && errno != ENOENT) {
    log_ << "powerlimd: standby: cannot quarantine " << path << ": "
         << std::strerror(errno) << "\n";
    return;
  }
  (void)util::fsync_parent_dir(path);
  resyncs_++;
  log_ << "powerlimd: standby: resync of " << r.hash << " (" << r.detail
       << "); old copy at " << quarantine << "\n";
  JournalSlot* slot = slot_for(r.hash);
  if (slot != nullptr) ack(r.hash, slot->journal->size_bytes());
}

}  // namespace powerlim::serve
