// Warm-standby replication for powerlimd: the standby half of
// "powerlimd-repl v1" plus the state-dir plumbing both roles share.
//
// A standby (`powerlim serve --standby-of HOST:PORT`) keeps a live
// second copy of the primary's --state-dir. The primary streams its
// journals *as bytes* ('J' frames of verbatim CRC-framed records from
// an exact byte offset), so the standby's journal files are
// byte-identical prefixes of the primary's - the same property offline
// `powerlim sweep --journal` files have - and every apply goes through
// SweepJournal::append_raw with the primary's own write+fsync
// discipline. The standby acks its durable high-water mark after each
// apply; a promoted standby therefore serves exactly the proven rows
// the primary had made durable, never a speculative reconstruction.
//
// Failover is *epoch-fenced*: a monotonically increasing epoch lives in
// three places that must agree - the `epoch` file in the state dir, `E`
// stamps inside every journal, and every replication frame. Promotion
// bumps the epoch; a deposed primary that comes back finds the higher
// epoch on its journals (kStaleEpoch), on the replication link (hello /
// ack exchange), and from clients that have seen the promoted standby -
// split-brain writes are refused at every layer, not just detected.
//
// The StandbyLink here is poll-loop shaped on purpose: the serve daemon
// owns the event loop, polls the link's fd alongside client
// connections, and calls tick()/on_pollable(). Reconnects use
// nonblocking connect_start/connect_finish so a dead primary never
// blocks the standby's read-only query service.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "robust/journal.h"
#include "robust/wire.h"
#include "serve/protocol.h"
#include "util/socket_io.h"

namespace powerlim::serve {

/// Journal / trace-snapshot paths for one trace hash under a state dir
/// (the layout contract shared by the daemon, the standby, and
/// `journal compact`).
std::string journal_path(const std::string& state_dir,
                         const std::string& hash);
std::string trace_path(const std::string& state_dir,
                       const std::string& hash);

/// True for a well-formed trace hash (1-16 lowercase hex chars). Every
/// hash that arrives over the replication link is validated with this
/// before it is spliced into a filesystem path - a hostile primary must
/// not name "../../etc/cron.d" as a journal.
bool valid_trace_hash(const std::string& hash);

/// Hashes of every sweep-<hash>.journal under `state_dir`, sorted.
/// Missing directory = empty list.
std::vector<std::string> journal_hashes(const std::string& state_dir);

/// Failover-epoch persistence: `<state_dir>/epoch` holds "epoch=<n>\n",
/// rewritten via tmp + fsync + rename + dir-fsync so a crash leaves
/// either the old or the new value. load returns 0 when the file is
/// absent or unparseable (a state dir the failover layer never touched).
std::uint64_t load_epoch_file(const std::string& state_dir);
bool store_epoch_file(const std::string& state_dir, std::uint64_t epoch,
                      std::string* error);

/// CRC-32 of the first `offset` bytes of `path`. False on IO error or a
/// file shorter than `offset`. This is the divergence detector behind
/// ReplMark: equal offsets with different CRCs mean different history.
bool file_prefix_crc(const std::string& path, std::uint64_t offset,
                     std::uint32_t* crc_out);

/// Reads [offset, offset + max_bytes) of `path` into *out (short at
/// EOF, so *out may come back smaller or empty). False on IO error or a
/// vanished file.
bool read_file_range(const std::string& path, std::uint64_t offset,
                     std::size_t max_bytes, std::string* out);

/// The standby side of the replication link. Owned by the serve daemon
/// when --standby-of is set; drives (re)connection, applies streamed
/// journal bytes and trace snapshots into the local state dir, acks
/// durable high-water marks, and tracks how long the primary has been
/// silent so the daemon can decide to auto-promote.
class StandbyLink {
 public:
  struct Options {
    util::Endpoint primary;
    std::string state_dir;
    /// Reconnect backoff after a failed dial or a dropped link, ms.
    double backoff_ms = 250.0;
    /// The epoch this standby believes in at start (from the epoch
    /// file / journal stamps). A primary acking a *lower* epoch is
    /// deposed and is refused.
    std::uint64_t epoch = 1;
  };

  StandbyLink(const Options& options, std::ostream& log);
  ~StandbyLink();
  StandbyLink(const StandbyLink&) = delete;
  StandbyLink& operator=(const StandbyLink&) = delete;

  /// The socket to poll, or -1 while between reconnect attempts.
  int fd() const { return fd_; }
  /// POLLOUT while a nonblocking connect is in flight, else POLLIN.
  short poll_events() const;
  /// Hello'd and streaming.
  bool connected() const { return fd_ >= 0 && helloed_; }

  /// Highest epoch adopted from the primary (>= options.epoch). The
  /// epoch file is persisted whenever this grows.
  std::uint64_t epoch() const { return epoch_; }

  /// Milliseconds since the primary was last heard from (any frame, or
  /// link construction when it never connected). The daemon's
  /// --promote-after-ms auto-promotion triggers on this.
  double silence_ms() const;

  /// Drives dial / backoff / hello; call every poll-loop tick.
  void tick();
  /// Handles a readable (or connect-completed) fd; call when poll fires.
  void on_pollable();
  /// Severs the link (promotion / shutdown) and closes every cached
  /// journal handle so the promoted daemon reopens them fresh.
  void close_link();

  /// Cumulative counters, for logs and tests.
  long frames_applied() const { return frames_applied_; }
  long bytes_applied() const { return bytes_applied_; }
  long resyncs() const { return resyncs_; }
  long rejected() const { return rejected_; }
  long reconnects() const { return reconnects_; }

 private:
  struct JournalSlot;

  void drop_link(const std::string& why);
  void start_dial();
  void send_hello();
  bool send_frame(char tag, const std::string& payload);
  void handle_frame(const robust::WireFrame& frame);
  void handle_trace(const std::string& payload);
  void handle_journal(const std::string& payload);
  void handle_resync(const std::string& payload);
  void adopt_epoch(std::uint64_t epoch);
  bool check_epoch(std::uint64_t frame_epoch, const char* what);
  JournalSlot* slot_for(const std::string& hash);
  void ack(const std::string& hash, std::uint64_t offset);
  void touch();

  Options opt_;
  std::ostream& log_;
  int fd_ = -1;
  bool connecting_ = false;
  bool helloed_ = false;
  std::uint64_t epoch_ = 0;
  robust::FrameStream stream_;
  double last_heard_ms_ = 0.0;   // monotonic, set by touch()
  double next_dial_ms_ = 0.0;    // monotonic, backoff gate
  long frames_applied_ = 0;
  long bytes_applied_ = 0;
  long resyncs_ = 0;
  long rejected_ = 0;
  long reconnects_ = 0;
  std::map<std::string, std::unique_ptr<JournalSlot>> journals_;
};

}  // namespace powerlim::serve
