#include "serve/protocol.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "robust/solve_driver.h"

namespace powerlim::serve {
namespace {

bool single_token(const std::string& s) {
  if (s.empty()) return false;
  return s.find_first_of(" \t\r\n") == std::string::npos;
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Splits `payload` at its first newline. Payloads with no newline get
/// an empty body (a done/error frame may legally carry no detail).
void split_first_line(const std::string& payload, std::string* line,
                      std::string* body) {
  const auto nl = payload.find('\n');
  if (nl == std::string::npos) {
    *line = payload;
    body->clear();
  } else {
    *line = payload.substr(0, nl);
    *body = payload.substr(nl + 1);
  }
}

/// Consumes a `key=value` token (tokens are space-separated) from the
/// front of `rest`. Returns false when the next token has a different
/// key or the line is exhausted.
bool take_field(std::string* rest, const char* key, std::string* value) {
  const std::string prefix = std::string(key) + "=";
  if (rest->compare(0, prefix.size(), prefix) != 0) return false;
  const auto end = rest->find(' ', prefix.size());
  if (end == std::string::npos) {
    *value = rest->substr(prefix.size());
    rest->clear();
  } else {
    *value = rest->substr(prefix.size(), end - prefix.size());
    rest->erase(0, end + 1);
  }
  return true;
}

bool parse_number(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_int(const std::string& text, long* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

bool valid_kind(const std::string& kind) {
  return kind == "bound" || kind == "sweep";
}

bool parse_u64(const std::string& text, std::uint64_t* out) {
  if (text.empty() || text.size() > 20) return false;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_crc(const std::string& text, std::uint32_t* out) {
  if (text.size() != 8) return false;
  for (char c : text) {
    const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!hex) return false;
  }
  *out = static_cast<std::uint32_t>(std::strtoul(text.c_str(), nullptr, 16));
  return true;
}

std::string crc_hex(std::uint32_t crc) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%08x", crc);
  return buf;
}

bool valid_role(const std::string& role) {
  return role == "primary" || role == "standby";
}

}  // namespace

std::string encode_hello() {
  std::ostringstream os;
  os << kServeProtoMagic << "\nschema=" << robust::kRunReportSchemaVersion
     << " proto=" << kServeProtoVersion;
  return os.str();
}

bool decode_hello(const std::string& payload, std::string* error) {
  std::string magic, versions;
  split_first_line(payload, &magic, &versions);
  if (magic != kServeProtoMagic) {
    *error = "bad magic (want \"" + std::string(kServeProtoMagic) + "\")";
    return false;
  }
  std::string schema_text, proto_text;
  std::string rest = versions;
  if (!take_field(&rest, "schema", &schema_text) ||
      !take_field(&rest, "proto", &proto_text) || !rest.empty()) {
    *error = "malformed hello version line";
    return false;
  }
  long schema = 0, proto = 0;
  if (!parse_int(schema_text, &schema) || !parse_int(proto_text, &proto)) {
    *error = "malformed hello version line";
    return false;
  }
  if (schema != robust::kRunReportSchemaVersion ||
      proto != kServeProtoVersion) {
    std::ostringstream os;
    os << "version skew: client schema=" << schema << " proto=" << proto
       << ", server schema=" << robust::kRunReportSchemaVersion
       << " proto=" << kServeProtoVersion;
    *error = os.str();
    return false;
  }
  error->clear();
  return true;
}

std::string encode_request(const ServeRequest& request) {
  if (!valid_kind(request.kind)) return "";
  if (request.kind == "bound" && request.caps.size() != 1) return "";
  if (!single_token(request.id)) return "";
  if (request.caps.empty()) return "";
  if (request.trace_text.empty()) return "";
  robust::JournalRequest jr;
  jr.id = request.id;
  jr.kind = request.kind;
  jr.deadline_ms = request.deadline_ms;
  jr.caps = request.caps;
  const std::string line = robust::serialize_journal_request(jr);
  if (line.empty()) return "";
  return line + "\n" + request.trace_text;
}

bool decode_request(const std::string& payload, ServeRequest* out,
                    std::string* error) {
  std::string line, trace;
  split_first_line(payload, &line, &trace);
  robust::JournalRequest jr;
  if (!robust::parse_journal_request(line, &jr)) {
    *error = "malformed request header";
    return false;
  }
  if (!valid_kind(jr.kind)) {
    *error = "unknown request kind \"" + jr.kind + "\"";
    return false;
  }
  if (jr.kind == "bound" && jr.caps.size() != 1) {
    *error = "bound request must carry exactly one cap";
    return false;
  }
  if (trace.empty()) {
    *error = "request carries no trace";
    return false;
  }
  out->id = jr.id;
  out->kind = jr.kind;
  out->deadline_ms = jr.deadline_ms;
  out->caps = jr.caps;
  out->trace_text = trace;
  error->clear();
  return true;
}

std::string encode_row(const ServeRow& row) {
  if (!single_token(row.id)) return "";
  const std::string body = robust::serialize_journal_entry(row.entry);
  if (body.empty()) return "";
  return "id=" + row.id + "\n" + body;
}

bool decode_row(const std::string& payload, ServeRow* out) {
  std::string line, body;
  split_first_line(payload, &line, &body);
  std::string rest = line;
  std::string id;
  if (!take_field(&rest, "id", &id) || !rest.empty() || !single_token(id)) {
    return false;
  }
  robust::JournalEntry entry;
  if (!robust::parse_journal_entry(body, &entry)) return false;
  out->id = id;
  out->entry = std::move(entry);
  return true;
}

std::string encode_overloaded(const ServeOverloaded& o) {
  if (!single_token(o.id) || !single_token(o.reason)) return "";
  return "id=" + o.id + " reason=" + o.reason + "\n" + o.detail;
}

bool decode_overloaded(const std::string& payload, ServeOverloaded* out) {
  std::string line, detail;
  split_first_line(payload, &line, &detail);
  std::string rest = line;
  std::string id, reason;
  if (!take_field(&rest, "id", &id) || !take_field(&rest, "reason", &reason) ||
      !rest.empty() || !single_token(id) || !single_token(reason)) {
    return false;
  }
  out->id = id;
  out->reason = reason;
  out->detail = detail;
  return true;
}

std::string encode_done(const ServeDone& d) {
  if (!single_token(d.id) || !single_token(d.status)) return "";
  std::ostringstream os;
  os << "id=" << d.id << " status=" << d.status << " rows=" << d.rows
     << " resumed=" << d.resumed << " shed_total=" << d.shed_total
     << " queue_depth=" << d.queue_depth
     << " queue_wait_ms=" << format_double(d.queue_wait_ms)
     << " solve_ms=" << format_double(d.solve_ms)
     << " total_ms=" << format_double(d.total_ms) << "\n"
     << d.detail;
  return os.str();
}

bool decode_done(const std::string& payload, ServeDone* out) {
  std::string line, detail;
  split_first_line(payload, &line, &detail);
  std::string rest = line;
  std::string id, status, rows, resumed, shed, depth, wait, solve, total;
  if (!take_field(&rest, "id", &id) || !take_field(&rest, "status", &status) ||
      !take_field(&rest, "rows", &rows) ||
      !take_field(&rest, "resumed", &resumed) ||
      !take_field(&rest, "shed_total", &shed) ||
      !take_field(&rest, "queue_depth", &depth) ||
      !take_field(&rest, "queue_wait_ms", &wait) ||
      !take_field(&rest, "solve_ms", &solve) ||
      !take_field(&rest, "total_ms", &total) || !rest.empty() ||
      !single_token(id) || !single_token(status)) {
    return false;
  }
  long rows_n = 0, resumed_n = 0, shed_n = 0, depth_n = 0;
  double wait_v = 0.0, solve_v = 0.0, total_v = 0.0;
  if (!parse_int(rows, &rows_n) || !parse_int(resumed, &resumed_n) ||
      !parse_int(shed, &shed_n) || !parse_int(depth, &depth_n) ||
      !parse_number(wait, &wait_v) || !parse_number(solve, &solve_v) ||
      !parse_number(total, &total_v)) {
    return false;
  }
  out->id = id;
  out->status = status;
  out->rows = static_cast<int>(rows_n);
  out->resumed = static_cast<int>(resumed_n);
  out->shed_total = shed_n;
  out->queue_depth = static_cast<int>(depth_n);
  out->queue_wait_ms = wait_v;
  out->solve_ms = solve_v;
  out->total_ms = total_v;
  out->detail = detail;
  return true;
}

std::string encode_error(const std::string& id, const std::string& detail) {
  const std::string tok = single_token(id) ? id : "-";
  return "id=" + tok + "\n" + detail;
}

bool decode_error(const std::string& payload, std::string* id,
                  std::string* detail) {
  std::string line;
  split_first_line(payload, &line, detail);
  std::string rest = line;
  if (!take_field(&rest, "id", id) || !rest.empty() || !single_token(*id)) {
    return false;
  }
  return true;
}

std::string encode_hello_ack(const HelloAck& ack) {
  if (!ack.ok) return "error " + ack.error;
  if (!valid_role(ack.role)) return "";
  return "ok epoch=" + std::to_string(ack.epoch) + " role=" + ack.role;
}

bool decode_hello_ack(const std::string& payload, HelloAck* out) {
  HelloAck ack;
  if (payload.compare(0, 6, "error ") == 0) {
    ack.error = payload.substr(6);
    *out = ack;
    return true;
  }
  if (payload.compare(0, 3, "ok ") != 0) return false;
  std::string rest = payload.substr(3);
  std::string epoch_text, role;
  if (!take_field(&rest, "epoch", &epoch_text) ||
      !take_field(&rest, "role", &role) || !rest.empty()) {
    return false;
  }
  if (!parse_u64(epoch_text, &ack.epoch) || !valid_role(role)) return false;
  ack.ok = true;
  ack.role = role;
  *out = ack;
  return true;
}

std::string encode_promote_ack(const PromoteAck& ack) {
  if (!ack.ok) return "error " + ack.error;
  return "ok epoch=" + std::to_string(ack.epoch);
}

bool decode_promote_ack(const std::string& payload, PromoteAck* out) {
  PromoteAck ack;
  if (payload.compare(0, 6, "error ") == 0) {
    ack.error = payload.substr(6);
    *out = ack;
    return true;
  }
  if (payload.compare(0, 3, "ok ") != 0) return false;
  std::string rest = payload.substr(3);
  std::string epoch_text;
  if (!take_field(&rest, "epoch", &epoch_text) || !rest.empty()) return false;
  if (!parse_u64(epoch_text, &ack.epoch)) return false;
  ack.ok = true;
  *out = ack;
  return true;
}

std::string encode_repl_hello(const ReplHello& hello) {
  std::ostringstream os;
  os << kReplProtoMagic << "\nschema=" << robust::kRunReportSchemaVersion
     << " proto=" << kServeProtoVersion << " epoch=" << hello.epoch;
  for (const ReplMark& mark : hello.marks) {
    if (!single_token(mark.hash)) return "";
    os << "\nhash=" << mark.hash << " off=" << mark.offset
       << " crc=" << crc_hex(mark.crc);
  }
  return os.str();
}

bool decode_repl_hello(const std::string& payload, ReplHello* out,
                       std::string* error) {
  std::istringstream lines(payload);
  std::string line;
  if (!std::getline(lines, line) || line != kReplProtoMagic) {
    *error = "bad magic (want \"" + std::string(kReplProtoMagic) + "\")";
    return false;
  }
  if (!std::getline(lines, line)) {
    *error = "missing repl version line";
    return false;
  }
  std::string rest = line;
  std::string schema_text, proto_text, epoch_text;
  long schema = 0, proto = 0;
  ReplHello hello;
  if (!take_field(&rest, "schema", &schema_text) ||
      !take_field(&rest, "proto", &proto_text) ||
      !take_field(&rest, "epoch", &epoch_text) || !rest.empty() ||
      !parse_int(schema_text, &schema) || !parse_int(proto_text, &proto) ||
      !parse_u64(epoch_text, &hello.epoch)) {
    *error = "malformed repl version line";
    return false;
  }
  if (schema != robust::kRunReportSchemaVersion ||
      proto != kServeProtoVersion) {
    std::ostringstream os;
    os << "version skew: standby schema=" << schema << " proto=" << proto
       << ", primary schema=" << robust::kRunReportSchemaVersion
       << " proto=" << kServeProtoVersion;
    *error = os.str();
    return false;
  }
  while (std::getline(lines, line)) {
    std::string mark_rest = line;
    std::string hash, off_text, crc_text;
    ReplMark mark;
    if (!take_field(&mark_rest, "hash", &hash) ||
        !take_field(&mark_rest, "off", &off_text) ||
        !take_field(&mark_rest, "crc", &crc_text) || !mark_rest.empty() ||
        !single_token(hash) || !parse_u64(off_text, &mark.offset) ||
        !parse_crc(crc_text, &mark.crc)) {
      *error = "malformed repl mark line";
      return false;
    }
    mark.hash = hash;
    hello.marks.push_back(std::move(mark));
  }
  error->clear();
  *out = std::move(hello);
  return true;
}

std::string encode_repl_hello_ack(const ReplHelloAck& ack) {
  if (!ack.ok) return "error " + ack.error;
  return "ok epoch=" + std::to_string(ack.epoch);
}

bool decode_repl_hello_ack(const std::string& payload, ReplHelloAck* out) {
  ReplHelloAck ack;
  if (payload.compare(0, 6, "error ") == 0) {
    ack.error = payload.substr(6);
    *out = ack;
    return true;
  }
  if (payload.compare(0, 3, "ok ") != 0) return false;
  std::string rest = payload.substr(3);
  std::string epoch_text;
  if (!take_field(&rest, "epoch", &epoch_text) || !rest.empty()) return false;
  if (!parse_u64(epoch_text, &ack.epoch)) return false;
  ack.ok = true;
  *out = ack;
  return true;
}

std::string encode_repl_trace(const ReplTrace& trace) {
  if (!single_token(trace.hash) || trace.trace_text.empty()) return "";
  return "hash=" + trace.hash + "\n" + trace.trace_text;
}

bool decode_repl_trace(const std::string& payload, ReplTrace* out) {
  std::string line, body;
  split_first_line(payload, &line, &body);
  std::string rest = line;
  std::string hash;
  if (!take_field(&rest, "hash", &hash) || !rest.empty() ||
      !single_token(hash) || body.empty()) {
    return false;
  }
  out->hash = hash;
  out->trace_text = body;
  return true;
}

std::string encode_repl_journal(const ReplJournal& journal) {
  if (!single_token(journal.hash)) return "";
  return "hash=" + journal.hash + " off=" + std::to_string(journal.offset) +
         " epoch=" + std::to_string(journal.epoch) + "\n" + journal.bytes;
}

bool decode_repl_journal(const std::string& payload, ReplJournal* out) {
  std::string line, body;
  split_first_line(payload, &line, &body);
  std::string rest = line;
  std::string hash, off_text, epoch_text;
  ReplJournal j;
  if (!take_field(&rest, "hash", &hash) ||
      !take_field(&rest, "off", &off_text) ||
      !take_field(&rest, "epoch", &epoch_text) || !rest.empty() ||
      !single_token(hash) || !parse_u64(off_text, &j.offset) ||
      !parse_u64(epoch_text, &j.epoch)) {
    return false;
  }
  j.hash = hash;
  j.bytes = std::move(body);
  *out = std::move(j);
  return true;
}

std::string encode_repl_ack(const ReplAck& ack) {
  if (!single_token(ack.hash)) return "";
  return "hash=" + ack.hash + " off=" + std::to_string(ack.offset) +
         " epoch=" + std::to_string(ack.epoch);
}

bool decode_repl_ack(const std::string& payload, ReplAck* out) {
  std::string rest = payload;
  std::string hash, off_text, epoch_text;
  ReplAck ack;
  if (!take_field(&rest, "hash", &hash) ||
      !take_field(&rest, "off", &off_text) ||
      !take_field(&rest, "epoch", &epoch_text) || !rest.empty() ||
      !single_token(hash) || !parse_u64(off_text, &ack.offset) ||
      !parse_u64(epoch_text, &ack.epoch)) {
    return false;
  }
  ack.hash = hash;
  *out = ack;
  return true;
}

std::string encode_repl_heartbeat(std::uint64_t epoch) {
  return "epoch=" + std::to_string(epoch);
}

bool decode_repl_heartbeat(const std::string& payload,
                           std::uint64_t* epoch) {
  std::string rest = payload;
  std::string epoch_text;
  if (!take_field(&rest, "epoch", &epoch_text) || !rest.empty()) {
    return false;
  }
  return parse_u64(epoch_text, epoch);
}

std::string encode_repl_resync(const ReplResync& resync) {
  if (!single_token(resync.hash)) return "";
  return "hash=" + resync.hash + "\n" + resync.detail;
}

bool decode_repl_resync(const std::string& payload, ReplResync* out) {
  std::string line, detail;
  split_first_line(payload, &line, &detail);
  std::string rest = line;
  std::string hash;
  if (!take_field(&rest, "hash", &hash) || !rest.empty() ||
      !single_token(hash)) {
    return false;
  }
  out->hash = hash;
  out->detail = detail;
  return true;
}

}  // namespace powerlim::serve
