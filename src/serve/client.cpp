#include "serve/client.h"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <sstream>

#include "util/posix_io.h"

namespace powerlim::serve {

namespace {

using Clock = std::chrono::steady_clock;

double remaining_s(Clock::time_point end) {
  return std::chrono::duration<double>(end - Clock::now()).count();
}

}  // namespace

const char* to_string(CollectStatus s) {
  switch (s) {
    case CollectStatus::kDone:
      return "done";
    case CollectStatus::kOverloaded:
      return "overloaded";
    case CollectStatus::kRequestError:
      return "request-error";
    case CollectStatus::kTimeout:
      return "timeout";
    case CollectStatus::kDisconnected:
      return "disconnected";
  }
  return "?";
}

ServeClient::~ServeClient() { close(); }

void ServeClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  stream_ = robust::FrameStream();
}

robust::Status ServeClient::connect(const util::Endpoint& server,
                                    double timeout_s) {
  close();
  std::string error;
  fd_ = util::connect_timeout(server, timeout_s, &error);
  if (fd_ < 0) {
    return {robust::StatusCode::kNetError,
            "connect " + util::to_string(server) + ": " + error};
  }
  const std::string hello = robust::encode_wire_frame(kTagHello,
                                                      encode_hello());
  if (util::send_all(fd_, hello.data(), hello.size(), timeout_s) !=
      util::IoStatus::kOk) {
    close();
    return {robust::StatusCode::kNetError, "hello send failed"};
  }
  robust::WireFrame ack;
  const robust::Status st = read_frame(&ack, timeout_s);
  if (!st.ok()) {
    close();
    return st;
  }
  HelloAck parsed;
  if (ack.tag != kTagHelloAck || !decode_hello_ack(ack.payload, &parsed)) {
    close();
    return {robust::StatusCode::kWireMalformed,
            "handshake rejected: unexpected handshake reply"};
  }
  if (!parsed.ok) {
    close();
    return {robust::StatusCode::kWireMalformed,
            "handshake rejected: " + parsed.error};
  }
  epoch_ = parsed.epoch;
  role_ = parsed.role;
  return robust::Status::Ok();
}

robust::Status ServeClient::promote(std::uint64_t* epoch_out,
                                    double timeout_s) {
  if (fd_ < 0)
    return {robust::StatusCode::kNetError, "not connected"};
  const std::string bytes = robust::encode_wire_frame(kTagPromote, "");
  if (util::send_all(fd_, bytes.data(), bytes.size(), timeout_s) !=
      util::IoStatus::kOk) {
    close();
    return {robust::StatusCode::kNetError, "promote send failed"};
  }
  robust::WireFrame frame;
  const robust::Status st = read_frame(&frame, timeout_s);
  if (!st.ok()) {
    close();
    return st;
  }
  PromoteAck ack;
  if (frame.tag != kTagPromoteAck ||
      !decode_promote_ack(frame.payload, &ack)) {
    close();
    return {robust::StatusCode::kWireMalformed,
            "unexpected promote reply"};
  }
  if (!ack.ok)
    return {robust::StatusCode::kNetError, "promote refused: " + ack.error};
  epoch_ = ack.epoch;
  role_ = "primary";
  if (epoch_out != nullptr) *epoch_out = ack.epoch;
  return robust::Status::Ok();
}

robust::Status ServeClient::submit(const ServeRequest& request) {
  if (fd_ < 0)
    return {robust::StatusCode::kNetError, "not connected"};
  const std::string payload = encode_request(request);
  if (payload.empty())
    return {robust::StatusCode::kBadInput, "malformed request"};
  const std::string bytes = robust::encode_wire_frame(kTagRequest, payload);
  if (bytes.empty())
    return {robust::StatusCode::kBadInput, "request exceeds frame ceiling"};
  if (util::send_all(fd_, bytes.data(), bytes.size(), /*timeout_s=*/30.0) !=
      util::IoStatus::kOk) {
    close();
    return {robust::StatusCode::kNetError, "request send failed"};
  }
  return robust::Status::Ok();
}

robust::Status ServeClient::read_frame(robust::WireFrame* out,
                                       double timeout_s) {
  const auto end =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_s));
  for (;;) {
    switch (stream_.next(out)) {
      case robust::WireDecode::kOk:
        return robust::Status::Ok();
      case robust::WireDecode::kEmpty:
        break;
      default:
        return {robust::StatusCode::kWireMalformed, stream_.last_error()};
    }
    const double left = remaining_s(end);
    if (left <= 0.0)
      return {robust::StatusCode::kDeadlineExceeded, "reply timed out"};
    pollfd pfd{fd_, POLLIN, 0};
    const int n = util::retry_eintr([&] {
      return ::poll(&pfd, 1, static_cast<int>(left * 1000.0) + 1);
    });
    if (n < 0)
      return {robust::StatusCode::kNetError, "poll failed"};
    if (n == 0) continue;
    std::string bytes;
    const util::IoStatus st = util::recv_some(fd_, &bytes);
    if (st == util::IoStatus::kDisconnected)
      return {robust::StatusCode::kNetError, "server closed the connection"};
    if (st == util::IoStatus::kError)
      return {robust::StatusCode::kNetError, "recv failed"};
    stream_.feed(bytes);
  }
}

CollectResult ServeClient::collect(const std::string& request_id,
                                   double wall_timeout_s) {
  CollectResult result;
  const auto end =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(wall_timeout_s));
  for (;;) {
    robust::WireFrame frame;
    const robust::Status st = read_frame(&frame, remaining_s(end));
    if (!st.ok()) {
      result.status = st.code() == robust::StatusCode::kDeadlineExceeded
                          ? CollectStatus::kTimeout
                          : CollectStatus::kDisconnected;
      result.error_detail = st.message();
      return result;
    }
    switch (frame.tag) {
      case kTagRow: {
        ServeRow row;
        if (decode_row(frame.payload, &row) && row.id == request_id)
          result.rows.push_back(std::move(row));
        break;
      }
      case kTagDone: {
        ServeDone done;
        if (decode_done(frame.payload, &done) && done.id == request_id) {
          result.status = CollectStatus::kDone;
          result.done = std::move(done);
          return result;
        }
        break;
      }
      case kTagOverloaded: {
        ServeOverloaded o;
        if (decode_overloaded(frame.payload, &o) && o.id == request_id) {
          result.status = CollectStatus::kOverloaded;
          result.overloaded = std::move(o);
          return result;
        }
        break;
      }
      case kTagError: {
        std::string id, detail;
        if (decode_error(frame.payload, &id, &detail) &&
            (id == request_id || id == "-")) {
          result.status = CollectStatus::kRequestError;
          result.error_detail = detail;
          return result;
        }
        break;
      }
      default:
        result.status = CollectStatus::kDisconnected;
        result.error_detail = "unexpected frame tag";
        return result;
    }
  }
}

FailoverResult FailoverClient::request(const ServeRequest& request,
                                       double connect_timeout_s,
                                       double wall_timeout_s, int rounds,
                                       double retry_backoff_s) {
  FailoverResult out;
  std::ostringstream trail;
  const auto end =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(wall_timeout_s));
  for (int round = 0; round < rounds; ++round) {
    for (const util::Endpoint& ep : endpoints_) {
      double left = remaining_s(end);
      if (left <= 0.0) {
        out.result.status = CollectStatus::kTimeout;
        out.result.error_detail = "failover wall timeout";
        out.detail = trail.str();
        return out;
      }
      ++out.attempts;
      ServeClient client;
      robust::Status st = client.connect(
          ep, std::max(0.1, std::min(connect_timeout_s, left)));
      if (!st.ok()) {
        trail << util::to_string(ep) << ": " << st.message() << "; ";
        continue;
      }
      if (client.epoch() < max_epoch_) {
        // A server behind the highest epoch this client has witnessed
        // is a deposed primary (or a stale standby): taking its answer
        // could resurrect pre-failover history. Refuse it.
        trail << util::to_string(ep) << ": stale epoch "
              << client.epoch() << " < " << max_epoch_ << "; ";
        continue;
      }
      max_epoch_ = std::max(max_epoch_, client.epoch());
      st = client.submit(request);
      if (!st.ok()) {
        trail << util::to_string(ep) << ": " << st.message() << "; ";
        continue;
      }
      CollectResult res = client.collect(request.id, remaining_s(end));
      switch (res.status) {
        case CollectStatus::kDone:
        case CollectStatus::kRequestError:
          out.result = std::move(res);
          out.served_by = ep;
          out.detail = trail.str();
          return out;
        case CollectStatus::kTimeout:
          out.result = std::move(res);
          out.served_by = ep;
          out.detail = trail.str();
          return out;
        case CollectStatus::kOverloaded:
          // Typed shed (a standby's "standby", a primary's
          // "queue-full"/"draining"): remember it as the provisional
          // outcome and try the next endpoint. Requests are idempotent,
          // so resubmitting elsewhere cannot double-solve a cap.
          trail << util::to_string(ep) << ": overloaded ("
                << res.overloaded.reason << "); ";
          out.result = std::move(res);
          out.served_by = ep;
          break;
        case CollectStatus::kDisconnected:
          // Mid-collect death (SIGKILLed primary): drop the partial
          // rows - the journal-backed retry serves them again - and
          // fail over.
          trail << util::to_string(ep) << ": " << res.error_detail << "; ";
          break;
      }
    }
    if (round + 1 < rounds && retry_backoff_s > 0.0 &&
        remaining_s(end) > retry_backoff_s) {
      ::usleep(static_cast<useconds_t>(retry_backoff_s * 1e6));
    }
  }
  out.detail = trail.str();
  if (out.result.status == CollectStatus::kDisconnected &&
      out.result.error_detail.empty()) {
    out.result.error_detail = "every endpoint failed: " + out.detail;
  }
  return out;
}

}  // namespace powerlim::serve
