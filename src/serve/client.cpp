#include "serve/client.h"

#include <poll.h>
#include <unistd.h>

#include <chrono>

#include "util/posix_io.h"

namespace powerlim::serve {

namespace {

using Clock = std::chrono::steady_clock;

double remaining_s(Clock::time_point end) {
  return std::chrono::duration<double>(end - Clock::now()).count();
}

}  // namespace

const char* to_string(CollectStatus s) {
  switch (s) {
    case CollectStatus::kDone:
      return "done";
    case CollectStatus::kOverloaded:
      return "overloaded";
    case CollectStatus::kRequestError:
      return "request-error";
    case CollectStatus::kTimeout:
      return "timeout";
    case CollectStatus::kDisconnected:
      return "disconnected";
  }
  return "?";
}

ServeClient::~ServeClient() { close(); }

void ServeClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  stream_ = robust::FrameStream();
}

robust::Status ServeClient::connect(const util::Endpoint& server,
                                    double timeout_s) {
  close();
  std::string error;
  fd_ = util::connect_timeout(server, timeout_s, &error);
  if (fd_ < 0) {
    return {robust::StatusCode::kNetError,
            "connect " + util::to_string(server) + ": " + error};
  }
  const std::string hello = robust::encode_wire_frame(kTagHello,
                                                      encode_hello());
  if (util::send_all(fd_, hello.data(), hello.size(), timeout_s) !=
      util::IoStatus::kOk) {
    close();
    return {robust::StatusCode::kNetError, "hello send failed"};
  }
  robust::WireFrame ack;
  const robust::Status st = read_frame(&ack, timeout_s);
  if (!st.ok()) {
    close();
    return st;
  }
  if (ack.tag != kTagHelloAck || ack.payload != "ok") {
    const std::string why = ack.tag == kTagHelloAck
                                ? ack.payload
                                : "unexpected handshake reply";
    close();
    return {robust::StatusCode::kWireMalformed, "handshake rejected: " + why};
  }
  return robust::Status::Ok();
}

robust::Status ServeClient::submit(const ServeRequest& request) {
  if (fd_ < 0)
    return {robust::StatusCode::kNetError, "not connected"};
  const std::string payload = encode_request(request);
  if (payload.empty())
    return {robust::StatusCode::kBadInput, "malformed request"};
  const std::string bytes = robust::encode_wire_frame(kTagRequest, payload);
  if (bytes.empty())
    return {robust::StatusCode::kBadInput, "request exceeds frame ceiling"};
  if (util::send_all(fd_, bytes.data(), bytes.size(), /*timeout_s=*/30.0) !=
      util::IoStatus::kOk) {
    close();
    return {robust::StatusCode::kNetError, "request send failed"};
  }
  return robust::Status::Ok();
}

robust::Status ServeClient::read_frame(robust::WireFrame* out,
                                       double timeout_s) {
  const auto end =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_s));
  for (;;) {
    switch (stream_.next(out)) {
      case robust::WireDecode::kOk:
        return robust::Status::Ok();
      case robust::WireDecode::kEmpty:
        break;
      default:
        return {robust::StatusCode::kWireMalformed, stream_.last_error()};
    }
    const double left = remaining_s(end);
    if (left <= 0.0)
      return {robust::StatusCode::kDeadlineExceeded, "reply timed out"};
    pollfd pfd{fd_, POLLIN, 0};
    const int n = util::retry_eintr([&] {
      return ::poll(&pfd, 1, static_cast<int>(left * 1000.0) + 1);
    });
    if (n < 0)
      return {robust::StatusCode::kNetError, "poll failed"};
    if (n == 0) continue;
    std::string bytes;
    const util::IoStatus st = util::recv_some(fd_, &bytes);
    if (st == util::IoStatus::kDisconnected)
      return {robust::StatusCode::kNetError, "server closed the connection"};
    if (st == util::IoStatus::kError)
      return {robust::StatusCode::kNetError, "recv failed"};
    stream_.feed(bytes);
  }
}

CollectResult ServeClient::collect(const std::string& request_id,
                                   double wall_timeout_s) {
  CollectResult result;
  const auto end =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(wall_timeout_s));
  for (;;) {
    robust::WireFrame frame;
    const robust::Status st = read_frame(&frame, remaining_s(end));
    if (!st.ok()) {
      result.status = st.code() == robust::StatusCode::kDeadlineExceeded
                          ? CollectStatus::kTimeout
                          : CollectStatus::kDisconnected;
      result.error_detail = st.message();
      return result;
    }
    switch (frame.tag) {
      case kTagRow: {
        ServeRow row;
        if (decode_row(frame.payload, &row) && row.id == request_id)
          result.rows.push_back(std::move(row));
        break;
      }
      case kTagDone: {
        ServeDone done;
        if (decode_done(frame.payload, &done) && done.id == request_id) {
          result.status = CollectStatus::kDone;
          result.done = std::move(done);
          return result;
        }
        break;
      }
      case kTagOverloaded: {
        ServeOverloaded o;
        if (decode_overloaded(frame.payload, &o) && o.id == request_id) {
          result.status = CollectStatus::kOverloaded;
          result.overloaded = std::move(o);
          return result;
        }
        break;
      }
      case kTagError: {
        std::string id, detail;
        if (decode_error(frame.payload, &id, &detail) &&
            (id == request_id || id == "-")) {
          result.status = CollectStatus::kRequestError;
          result.error_detail = detail;
          return result;
        }
        break;
      }
      default:
        result.status = CollectStatus::kDisconnected;
        result.error_detail = "unexpected frame tag";
        return result;
    }
  }
}

}  // namespace powerlim::serve
