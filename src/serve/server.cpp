#include "serve/server.h"

#include <dirent.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <ostream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "dag/trace_io.h"
#include "robust/journal.h"
#include "robust/pipeline.h"
#include "robust/solve_driver.h"
#include "robust/wire.h"
#include "serve/protocol.h"
#include "serve/repl.h"
#include "util/posix_io.h"
#include "util/socket_io.h"

namespace powerlim::serve {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t).count();
}

double sec_since(Clock::time_point t) { return ms_since(t) / 1000.0; }

/// crc32 of the trace text, hex: the per-trace key under --state-dir.
/// Requests for the same graph share one journal (and its proven caps)
/// no matter which client sends them.
std::string trace_hash(const std::string& text) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x",
                robust::crc32(text.data(), text.size()));
  return buf;
}

/// One client connection. Reads decode through a FrameStream (poisoned
/// stream = hostile/corrupt peer = drop); writes accumulate in `outbuf`
/// and flush nonblocking, so one stalled reader never blocks the loop.
struct Conn {
  int fd = -1;
  std::uint64_t id = 0;
  robust::FrameStream stream;
  std::string outbuf;
  bool handshaken = false;
  /// A standby's replication connection (first frame was 'H'): exempt
  /// from idle reaping, speaks only repl frames from here on.
  bool repl = false;
  /// Flush what is buffered, then close (post-skew-ack, drain).
  bool closing = false;
  Clock::time_point opened = Clock::now();
  Clock::time_point last_read = Clock::now();
  Clock::time_point last_progress = Clock::now();
};

/// One admitted request, through its whole life: queued -> executing
/// (forked executor streaming 'R' frames up a pipe) -> finished.
struct Request {
  std::uint64_t conn_id = 0;  ///< 0 = internal (startup resume).
  std::string id;
  std::string kind;
  bool has_deadline = false;
  Clock::time_point deadline{};
  std::vector<double> caps;
  /// Caps owed a fresh solve (requested minus journal-trusted).
  std::vector<double> pending;
  /// Pending caps already settled (journaled + replied) this run.
  std::vector<double> settled;
  std::string trace_text;
  std::string hash;
  std::unique_ptr<robust::SweepJournal> journal;
  int resumed = 0;
  int rows = 0;
  int queue_depth_at_admit = 0;
  long shed_at_admit = 0;
  Clock::time_point admitted = Clock::now();
  Clock::time_point exec_start{};
  // Executor state.
  pid_t pid = -1;
  int pipe_fd = -1;
  robust::FrameStream pipe_stream;
  int spawns = 0;
  bool deadline_killed = false;
  bool pipe_poisoned = false;
};

class Daemon {
 public:
  Daemon(const ServeOptions& options, const machine::PowerModel& model,
         const machine::ClusterSpec& cluster, std::ostream& out,
         std::ostream& err)
      : opt_(options), model_(model), cluster_(cluster), out_(out),
        err_(err) {}

  int run();

 private:
  // --- startup ---
  bool setup_state_dir();
  bool setup_listen();
  bool setup_epoch();
  void startup_resume();

  // --- poll loop stages ---
  void poll_once();
  void accept_clients();
  void read_conn(Conn& conn);
  void handle_frame(Conn& conn, const robust::WireFrame& frame);
  void handle_request(Conn& conn, const robust::WireFrame& frame);
  void flush_conn(Conn& conn);
  void reap_conns();
  void pump_pipe(Request& req);
  void handle_pipe_frame(Request& req, const robust::WireFrame& frame);
  void reap_executors();
  void check_deadlines();
  void schedule();
  void begin_drain(const char* why);

  // --- request plumbing ---
  void admit(std::uint64_t conn_id, ServeRequest&& sr);
  void spawn_executor(Request& req);
  int run_executor(const Request& req, int write_fd);
  void executor_died(Request& req, int wait_status);
  void degrade_unsettled(Request& req, const std::string& death);
  void finish(Request& req, const std::string& status,
              const std::string& detail);
  std::vector<double> unsettled(const Request& req) const;

  // --- replies ---
  void send_frame(std::uint64_t conn_id, char tag, const std::string& payload);
  void send_overloaded(std::uint64_t conn_id, const std::string& id,
                       const std::string& reason, const std::string& detail);
  void reply_row(Request& req, const robust::JournalEntry& entry);
  robust::ServiceTelemetry telemetry_for(const Request& req) const;
  void drop_conn(std::uint64_t conn_id, const char* why);

  // --- high availability ---
  /// Per-connected-standby streaming state on the primary.
  struct StandbyPeer {
    /// The standby's last-reported epoch.
    std::uint64_t epoch = 0;
    /// Bytes streamed ('J' frames emitted) per journal hash.
    std::map<std::string, std::uint64_t> sent;
    /// Bytes the standby has acked durable per journal hash.
    std::map<std::string, std::uint64_t> acked;
    /// Trace snapshots already shipped this connection.
    std::set<std::string> traces_sent;
  };

  const char* role_name() const { return standby_ ? "standby" : "primary"; }
  /// Stamps epoch_ into a freshly-opened journal, pins the handle, and
  /// attaches the replication wake-up listener. False when the journal
  /// already carries a higher epoch - the caller must fence.
  bool stamp_journal(robust::SweepJournal& journal, const std::string& hash);
  void handle_repl_hello(Conn& conn, const robust::WireFrame& frame);
  void handle_repl_ack(Conn& conn, const robust::WireFrame& frame);
  void handle_promote(Conn& conn);
  void handle_standby_request(std::uint64_t conn_id, ServeRequest&& sr);
  /// Standby -> primary transition (operator command or heartbeat loss).
  void promote_self(const char* why);
  /// A higher epoch was observed: refuse all further writes and drain.
  void fence_self(const std::string& why);
  /// Streams journal deltas (and first-time trace snapshots) to every
  /// connected standby; `hashes` limits the pass (empty = all).
  void repl_stream(const std::vector<std::string>& hashes);
  void stream_journal_to(std::uint64_t conn_id, const std::string& hash);
  void send_resync(std::uint64_t conn_id, const std::string& hash,
                   const std::string& why);
  /// Per-iteration HA work: standby link upkeep / primary heartbeats.
  void repl_tick();

  const ServeOptions& opt_;
  const machine::PowerModel& model_;
  const machine::ClusterSpec& cluster_;
  std::ostream& out_;
  std::ostream& err_;

  int listen_fd_ = -1;
  std::uint64_t next_conn_id_ = 1;
  std::map<std::uint64_t, Conn> conns_;
  std::deque<Request> queued_;
  std::vector<Request> active_;
  long shed_total_ = 0;
  long finished_ = 0;
  long degraded_caps_ = 0;
  bool draining_ = false;

  // High-availability state.
  bool standby_ = false;
  bool fenced_ = false;
  std::uint64_t epoch_ = 1;
  std::unique_ptr<StandbyLink> standby_link_;
  std::map<std::uint64_t, StandbyPeer> standbys_;  // keyed by conn id
  /// Journal hashes with unstreamed appends (poked by the journal
  /// append listener; drained by repl_stream).
  std::set<std::string> repl_dirty_;
  Clock::time_point last_heartbeat_ = Clock::now();
};

// ---------------------------------------------------------------------------
// Startup.

bool Daemon::setup_state_dir() {
  if (opt_.state_dir.empty()) {
    err_ << "powerlimd: --state-dir must not be empty\n";
    return false;
  }
  if (::mkdir(opt_.state_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    err_ << "powerlimd: cannot create state dir '" << opt_.state_dir
         << "': " << std::strerror(errno) << "\n";
    return false;
  }
  return true;
}

bool Daemon::setup_listen() {
  util::Endpoint ep;
  if (!util::parse_endpoint(opt_.listen, &ep)) {
    err_ << "powerlimd: bad --listen address '" << opt_.listen << "'\n";
    return false;
  }
  // A daemon restarting over a dying predecessor races the kernel
  // releasing the port; EADDRINUSE is typed precisely so this bounded
  // retry exists instead of a fatal error.
  std::string error;
  for (int attempt = 0; attempt < 50; ++attempt) {
    const util::ListenStatus st =
        util::listen_tcp_status(ep.host, ep.port, &listen_fd_, &error);
    if (st == util::ListenStatus::kOk) break;
    if (st != util::ListenStatus::kAddrInUse || attempt == 49) {
      err_ << "powerlimd: listen failed (" << util::to_string(st)
           << "): " << error << "\n";
      return false;
    }
    ::usleep(100 * 1000);
  }
  const int port = util::bound_port(listen_fd_);
  out_ << "powerlimd: listening on " << ep.host << ":" << port << "\n";
  out_.flush();
  if (!opt_.port_file.empty()) {
    // Write-then-rename so a polling reader never sees a partial file.
    const std::string tmp = opt_.port_file + ".tmp";
    {
      std::ofstream pf(tmp, std::ios::trunc);
      pf << port << "\n";
      if (!pf) {
        err_ << "powerlimd: cannot write port file '" << opt_.port_file
             << "'\n";
        return false;
      }
    }
    if (std::rename(tmp.c_str(), opt_.port_file.c_str()) != 0) {
      err_ << "powerlimd: cannot move port file into place: "
           << std::strerror(errno) << "\n";
      return false;
    }
  }
  return true;
}

bool Daemon::setup_epoch() {
  // The epoch this daemon serves under is the highest epoch recorded
  // anywhere in the state dir: the epoch file and every journal's `E`
  // stamps (the two can disagree after a crash mid-promotion; taking
  // the max makes promotion monotonic either way). Floor of 1 so "never
  // failed over" and "no epoch yet" are distinguishable from stamps.
  epoch_ = std::max<std::uint64_t>(1, load_epoch_file(opt_.state_dir));
  for (const std::string& hash : journal_hashes(opt_.state_dir)) {
    auto opened =
        robust::SweepJournal::open(journal_path(opt_.state_dir, hash));
    if (!opened.ok()) continue;
    epoch_ = std::max(epoch_, opened.value().epoch());
  }
  std::string error;
  if (!store_epoch_file(opt_.state_dir, epoch_, &error)) {
    err_ << "powerlimd: cannot persist epoch: " << error << "\n";
    return false;
  }
  out_ << "powerlimd: " << role_name() << " at epoch " << epoch_ << "\n";
  out_.flush();
  return true;
}

bool Daemon::stamp_journal(robust::SweepJournal& journal,
                           const std::string& hash) {
  const robust::Status st = journal.advance_epoch(epoch_);
  if (!st.ok()) {
    err_ << "powerlimd: journal " << hash << " refuses epoch " << epoch_
         << ": " << st.to_string() << "\n";
    return false;
  }
  journal.pin_epoch(epoch_);
  journal.set_append_listener([this, hash] { repl_dirty_.insert(hash); });
  return true;
}

void Daemon::startup_resume() {
  DIR* dir = ::opendir(opt_.state_dir.c_str());
  if (dir == nullptr) return;
  std::vector<std::string> hashes;
  while (struct dirent* de = ::readdir(dir)) {
    const std::string name = de->d_name;
    const std::string prefix = "sweep-", suffix = ".journal";
    if (name.size() > prefix.size() + suffix.size() &&
        name.compare(0, prefix.size(), prefix) == 0 &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      hashes.push_back(name.substr(
          prefix.size(), name.size() - prefix.size() - suffix.size()));
    }
  }
  ::closedir(dir);
  std::sort(hashes.begin(), hashes.end());

  for (const std::string& hash : hashes) {
    const std::string journal_path =
        opt_.state_dir + "/sweep-" + hash + ".journal";
    const std::string trace_path =
        opt_.state_dir + "/trace-" + hash + ".trace";
    auto opened = robust::SweepJournal::open(journal_path);
    if (!opened.ok()) {
      err_ << "powerlimd: resume: cannot open " << journal_path << ": "
           << opened.status().to_string() << "\n";
      continue;
    }
    auto journal =
        std::make_unique<robust::SweepJournal>(std::move(opened).value());
    if (!stamp_journal(*journal, hash)) {
      fence_self("resume: journal " + hash + " carries a newer epoch");
      return;
    }
    // The work owed is the union of every journaled intent's caps minus
    // the caps that already have trusted records.
    std::vector<double> owed;
    for (const robust::JournalRequest& jr : journal->requests()) {
      for (double cap : jr.caps) {
        const robust::JournalEntry* entry = journal->find(cap);
        if (entry != nullptr &&
            robust::journal_entry_trusted(*entry, /*require_certificate=*/true))
          continue;
        if (std::find(owed.begin(), owed.end(), cap) == owed.end())
          owed.push_back(cap);
      }
    }
    if (owed.empty()) continue;

    std::ifstream tf(trace_path);
    std::stringstream buf;
    buf << tf.rdbuf();
    if (!tf) {
      err_ << "powerlimd: resume: missing trace snapshot " << trace_path
           << "; " << owed.size() << " cap(s) cannot be resumed\n";
      continue;
    }
    Request req;
    req.conn_id = 0;
    req.id = "resume-" + hash;
    req.kind = "sweep";
    req.caps = owed;
    req.pending = owed;
    req.trace_text = buf.str();
    req.hash = hash;
    req.journal = std::move(journal);
    try {
      std::istringstream in(req.trace_text);
      (void)dag::read_trace(in, trace_path);
    } catch (const std::exception& e) {
      err_ << "powerlimd: resume: corrupt trace snapshot " << trace_path
           << ": " << e.what() << "\n";
      continue;
    }
    out_ << "powerlimd: resume: " << owed.size() << " cap(s) owed for trace "
         << hash << "\n";
    // Resume work was promised before this process existed; it bypasses
    // the admission queue bound and carries no (long-expired) deadline.
    queued_.push_back(std::move(req));
  }
  out_.flush();
}

// ---------------------------------------------------------------------------
// Poll loop.

int Daemon::run() {
  util::ignore_sigpipe();
  if (!setup_state_dir()) return 1;
  if (!opt_.standby_of.empty()) {
    util::Endpoint primary;
    if (!util::parse_endpoint(opt_.standby_of, &primary)) {
      err_ << "powerlimd: bad --standby-of address '" << opt_.standby_of
           << "'\n";
      return 1;
    }
    standby_ = true;
    if (!setup_epoch() || !setup_listen()) return 1;
    StandbyLink::Options lo;
    lo.primary = primary;
    lo.state_dir = opt_.state_dir;
    lo.epoch = epoch_;
    lo.backoff_ms = std::max(50.0, opt_.repl_heartbeat_ms);
    standby_link_ = std::make_unique<StandbyLink>(lo, out_);
  } else {
    if (!setup_epoch() || !setup_listen()) return 1;
  }
  // A standby defers resume until promotion: the primary owns the
  // owed work while it lives.
  if (opt_.resume && !standby_) startup_resume();

  for (;;) {
    if (opt_.cancel != nullptr && opt_.cancel->cancelled() && !draining_)
      begin_drain("signal");
    if (opt_.reopen_flag != nullptr && *opt_.reopen_flag != 0) {
      *opt_.reopen_flag = 0;
      int reopened = 0;
      for (Request& req : active_) {
        if (!req.journal) continue;
        const std::string path = req.journal->path();
        req.journal.reset();
        auto r = robust::SweepJournal::open(path);
        if (r.ok()) {
          req.journal =
              std::make_unique<robust::SweepJournal>(std::move(r).value());
          // Re-stamp: the reopened handle must be fenced and must keep
          // poking the replication streamer, exactly like the original.
          // Replication itself is reopen-proof - the hub streams from
          // the journal *file* by offset, not from this handle.
          if (!stamp_journal(*req.journal, req.hash)) {
            fence_self("reopen: journal " + req.hash +
                       " carries a newer epoch");
          }
          ++reopened;
        } else {
          err_ << "powerlimd: reopen failed for " << path << ": "
               << r.status().to_string() << "\n";
        }
      }
      out_ << "powerlimd: reopened " << reopened << " journal(s)\n";
      out_.flush();
    }

    check_deadlines();
    schedule();
    repl_tick();
    poll_once();
    reap_executors();
    reap_conns();

    if (opt_.max_requests > 0 && finished_ >= opt_.max_requests &&
        !draining_) {
      begin_drain("max-requests");
    }
    if (draining_ && active_.empty() && queued_.empty()) {
      // flush_conn can drop (erase) a failed connection, so iterate a
      // snapshot of ids, not the live map.
      std::vector<std::uint64_t> ids;
      for (auto& [id, conn] : conns_) ids.push_back(id);
      bool flushed = true;
      for (std::uint64_t id : ids) {
        auto it = conns_.find(id);
        if (it == conns_.end()) continue;
        flush_conn(it->second);
        it = conns_.find(id);
        if (it != conns_.end() && !it->second.outbuf.empty()) flushed = false;
      }
      if (flushed) break;
    }
  }

  for (auto& [id, conn] : conns_) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  if (standby_link_) standby_link_->close_link();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  out_ << "powerlimd: drained; served " << finished_ << " request(s), shed "
       << shed_total_ << ", degraded " << degraded_caps_ << " cap(s)\n";
  out_.flush();
  return fenced_ ? kExitFenced : 0;
}

void Daemon::begin_drain(const char* why) {
  draining_ = true;
  out_ << "powerlimd: draining (" << why << "): " << active_.size()
       << " active, " << queued_.size() << " queued\n";
  out_.flush();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (Request& req : queued_) {
    ++shed_total_;
    send_overloaded(req.conn_id, req.id, "draining",
                    "daemon is shutting down; resubmit elsewhere");
    req.journal.reset();
  }
  queued_.clear();
}

void Daemon::poll_once() {
  std::vector<pollfd> fds;
  std::vector<std::uint64_t> conn_ids;
  std::vector<std::size_t> active_idx;

  if (listen_fd_ >= 0)
    fds.push_back({listen_fd_, POLLIN, 0});
  const std::size_t first_conn = fds.size();
  for (auto& [id, conn] : conns_) {
    short events = POLLIN;
    if (!conn.outbuf.empty()) events |= POLLOUT;
    fds.push_back({conn.fd, events, 0});
    conn_ids.push_back(id);
  }
  const std::size_t first_pipe = fds.size();
  for (std::size_t i = 0; i < active_.size(); ++i) {
    if (active_[i].pipe_fd >= 0) {
      fds.push_back({active_[i].pipe_fd, POLLIN, 0});
      active_idx.push_back(i);
    }
  }
  // The standby's replication link rides the same poll: POLLOUT while
  // its nonblocking dial is in flight, POLLIN once streaming.
  std::size_t link_slot = fds.size();
  if (standby_link_ && standby_link_->fd() >= 0) {
    fds.push_back({standby_link_->fd(), standby_link_->poll_events(), 0});
  }

  const int n = util::retry_eintr(
      [&] { return ::poll(fds.data(), fds.size(), /*timeout_ms=*/100); });
  if (n <= 0) return;

  if (standby_link_ && link_slot < fds.size() &&
      (fds[link_slot].revents & (POLLIN | POLLOUT | POLLHUP | POLLERR)) !=
          0) {
    standby_link_->on_pollable();
  }

  if (listen_fd_ >= 0 && (fds[0].revents & POLLIN) != 0) accept_clients();

  for (std::size_t i = first_conn; i < first_pipe; ++i) {
    auto it = conns_.find(conn_ids[i - first_conn]);
    if (it == conns_.end()) continue;
    if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0)
      read_conn(it->second);
    auto again = conns_.find(conn_ids[i - first_conn]);
    if (again != conns_.end() && (fds[i].revents & POLLOUT) != 0)
      flush_conn(again->second);
  }

  for (std::size_t i = first_pipe; i < link_slot; ++i) {
    if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      const std::size_t idx = active_idx[i - first_pipe];
      if (idx < active_.size()) pump_pipe(active_[idx]);
    }
  }
}

void Daemon::accept_clients() {
  for (;;) {
    util::IoStatus st = util::IoStatus::kOk;
    const int fd = util::accept_timeout(listen_fd_, /*timeout_s=*/0.0, &st);
    if (fd < 0) return;  // kTimeout (incl. aborted handshakes) or kError
    Conn conn;
    conn.fd = fd;
    conn.id = next_conn_id_++;
    conns_.emplace(conn.id, std::move(conn));
  }
}

void Daemon::read_conn(Conn& conn) {
  std::string bytes;
  const util::IoStatus st = util::recv_some(conn.fd, &bytes);
  if (st == util::IoStatus::kDisconnected || st == util::IoStatus::kError) {
    drop_conn(conn.id, "peer closed");
    return;
  }
  if (bytes.empty()) return;
  conn.last_read = Clock::now();
  conn.stream.feed(bytes);
  // A backlog no single intact frame can explain is hostile (e.g. a
  // length prefix the decoder already refused to allocate).
  if (conn.stream.buffered() > robust::kMaxFrameBytes) {
    drop_conn(conn.id, "oversized frame backlog");
    return;
  }
  const std::uint64_t id = conn.id;
  for (;;) {
    auto it = conns_.find(id);
    if (it == conns_.end()) return;  // a frame handler dropped us
    robust::WireFrame frame;
    const robust::WireDecode d = it->second.stream.next(&frame);
    if (d == robust::WireDecode::kEmpty) return;
    if (d != robust::WireDecode::kOk) {
      drop_conn(id, it->second.stream.last_error().c_str());
      return;
    }
    handle_frame(it->second, frame);
  }
}

void Daemon::handle_frame(Conn& conn, const robust::WireFrame& frame) {
  if (frame.tag == kTagHello && !conn.repl) {
    std::string why;
    if (decode_hello(frame.payload, &why)) {
      conn.handshaken = true;
      HelloAck ack;
      ack.ok = true;
      ack.epoch = epoch_;
      ack.role = role_name();
      send_frame(conn.id, kTagHelloAck, encode_hello_ack(ack));
    } else {
      // Version skew gets a readable ack, then the connection ends: a
      // mismatched peer must never have a request half-parsed. Mark
      // closing *before* sending - a send failure drops (frees) conn.
      conn.closing = true;
      HelloAck ack;
      ack.error = why;
      send_frame(conn.id, kTagHelloAck, encode_hello_ack(ack));
    }
    return;
  }
  if (frame.tag == kTagReplHello && !conn.handshaken) {
    handle_repl_hello(conn, frame);
    return;
  }
  if (conn.repl) {
    if (frame.tag == kTagReplAck) {
      handle_repl_ack(conn, frame);
      return;
    }
    drop_conn(conn.id, "non-repl frame on repl connection");
    return;
  }
  if (!conn.handshaken) {
    drop_conn(conn.id, "request before handshake");
    return;
  }
  if (frame.tag == kTagRequest) {
    handle_request(conn, frame);
    return;
  }
  if (frame.tag == kTagPromote) {
    handle_promote(conn);
    return;
  }
  drop_conn(conn.id, "unknown frame tag");
}

void Daemon::handle_request(Conn& conn, const robust::WireFrame& frame) {
  // Everything below works with the id, not the reference: any reply
  // can drop (free) the connection when its socket fails mid-send.
  const std::uint64_t conn_id = conn.id;
  ServeRequest sr;
  std::string why;
  if (!decode_request(frame.payload, &sr, &why)) {
    send_frame(conn_id, kTagError, encode_error("-", why));
    return;
  }
  if (draining_) {
    ++shed_total_;
    send_overloaded(conn_id, sr.id, "draining", "daemon is shutting down");
    return;
  }
  if (standby_) {
    handle_standby_request(conn_id, std::move(sr));
    return;
  }
  if (static_cast<int>(queued_.size()) >= opt_.max_queue) {
    // Shed *now*: an honest "overloaded" in microseconds beats an
    // accepted request the daemon cannot schedule before its deadline.
    ++shed_total_;
    std::ostringstream detail;
    detail << "queue at capacity (" << queued_.size() << "/" << opt_.max_queue
           << "), " << active_.size() << " active";
    send_overloaded(conn_id, sr.id, "queue-full", detail.str());
    return;
  }
  try {
    std::istringstream in(sr.trace_text);
    (void)dag::read_trace(in, "request:" + sr.id);
  } catch (const std::exception& e) {
    send_frame(conn_id, kTagError, encode_error(sr.id, e.what()));
    return;
  }
  admit(conn_id, std::move(sr));
}

void Daemon::admit(std::uint64_t conn_id, ServeRequest&& sr) {
  Request req;
  req.conn_id = conn_id;
  req.id = sr.id;
  req.kind = sr.kind;
  req.caps = sr.caps;
  req.trace_text = std::move(sr.trace_text);
  req.hash = trace_hash(req.trace_text);
  double deadline_ms = sr.deadline_ms > 0.0 ? sr.deadline_ms
                                            : opt_.default_deadline_ms;
  if (opt_.max_deadline_ms > 0.0 &&
      (deadline_ms <= 0.0 || deadline_ms > opt_.max_deadline_ms)) {
    deadline_ms = opt_.max_deadline_ms;
  }
  if (deadline_ms > 0.0) {
    req.has_deadline = true;
    req.deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                      std::chrono::duration<double, std::milli>(
                                          deadline_ms));
  }

  // Snapshot the trace once per hash: the journal's resume path needs
  // the graph after a SIGKILL, and the snapshot is what makes a `Q`
  // intent self-contained.
  const std::string trace_path =
      opt_.state_dir + "/trace-" + req.hash + ".trace";
  const int tfd = ::open(trace_path.c_str(),
                         O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  if (tfd >= 0) {
    const bool ok =
        util::write_full(tfd, req.trace_text.data(), req.trace_text.size()) ==
            0 &&
        util::fsync_full(tfd) == 0;
    ::close(tfd);
    if (!ok || util::fsync_parent_dir(trace_path) != 0) {
      send_frame(conn_id, kTagError,
                 encode_error(req.id, "cannot persist trace snapshot"));
      return;
    }
  } else if (errno != EEXIST) {
    send_frame(conn_id, kTagError,
               encode_error(req.id, "cannot persist trace snapshot"));
    return;
  }

  const std::string journal_path =
      opt_.state_dir + "/sweep-" + req.hash + ".journal";
  auto opened = robust::SweepJournal::open(journal_path);
  if (!opened.ok()) {
    send_frame(conn_id, kTagError,
               encode_error(req.id, "cannot open journal: " +
                                        opened.status().to_string()));
    return;
  }
  req.journal =
      std::make_unique<robust::SweepJournal>(std::move(opened).value());
  if (!stamp_journal(*req.journal, req.hash)) {
    send_frame(conn_id, kTagError,
               encode_error(req.id, "daemon fenced by a newer epoch"));
    fence_self("admit: journal " + req.hash + " carries a newer epoch");
    return;
  }

  req.queue_depth_at_admit = static_cast<int>(queued_.size());
  req.shed_at_admit = shed_total_;

  // Serve every already-proven cap straight from the journal - the
  // certificate-gated trust predicate decides, not file presence.
  for (double cap : req.caps) {
    const robust::JournalEntry* entry = req.journal->find(cap);
    if (entry != nullptr &&
        robust::journal_entry_trusted(*entry, /*require_certificate=*/true)) {
      ++req.resumed;
      reply_row(req, *entry);
    } else {
      req.pending.push_back(cap);
    }
  }

  if (req.pending.empty()) {
    finish(req, "ok", "all caps served from journal");
    return;
  }

  // Journal the intent *before* the first solve: from here on a SIGKILL
  // leaves a `Q` record whose unproven caps --resume will finish.
  robust::JournalRequest jr;
  jr.id = req.id;
  jr.kind = req.kind;
  jr.deadline_ms = sr.deadline_ms;
  jr.caps = req.caps;
  const robust::Status st = req.journal->append_request(jr);
  if (!st.ok()) {
    send_frame(conn_id, kTagError,
               encode_error(req.id,
                            "cannot journal request: " + st.to_string()));
    if (st.code() == robust::StatusCode::kStaleEpoch) {
      fence_self("admit: journal " + req.hash + " fenced the intent");
    }
    return;
  }
  queued_.push_back(std::move(req));
}

// ---------------------------------------------------------------------------
// Scheduling and executors.

void Daemon::check_deadlines() {
  // Shed queued requests whose deadline already passed - executing them
  // would burn an executor on a reply nobody can use.
  for (auto it = queued_.begin(); it != queued_.end();) {
    if (it->conn_id != 0 && it->has_deadline && Clock::now() > it->deadline) {
      ++shed_total_;
      send_overloaded(it->conn_id, it->id, "deadline",
                      "deadline passed while queued");
      it = queued_.erase(it);
    } else {
      ++it;
    }
  }
  // SIGKILL executors that overstayed the deadline grace (the executor
  // observes the deadline cooperatively; this is the backstop for a
  // wedged one).
  for (Request& req : active_) {
    if (req.pid > 0 && req.has_deadline && !req.deadline_killed &&
        ms_since(req.deadline) > opt_.deadline_grace_ms) {
      ::kill(req.pid, SIGKILL);
      req.deadline_killed = true;
    }
  }
}

void Daemon::schedule() {
  while (!queued_.empty() &&
         static_cast<int>(active_.size()) < opt_.max_active) {
    Request req = std::move(queued_.front());
    queued_.pop_front();
    req.exec_start = Clock::now();
    active_.push_back(std::move(req));
    spawn_executor(active_.back());
  }
}

void Daemon::spawn_executor(Request& req) {
  int pfd[2];
  if (::pipe(pfd) != 0) {
    degrade_unsettled(req, "pipe() failed: " + std::string(strerror(errno)));
    return;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(pfd[0]);
    ::close(pfd[1]);
    degrade_unsettled(req, "fork() failed: " + std::string(strerror(errno)));
    return;
  }
  if (pid == 0) {
    // Executor child: drop every daemon fd except the result pipe.
    if (listen_fd_ >= 0) ::close(listen_fd_);
    for (auto& [id, conn] : conns_) {
      if (conn.fd >= 0) ::close(conn.fd);
    }
    for (Request& other : active_) {
      if (other.pipe_fd >= 0) ::close(other.pipe_fd);
    }
    ::close(pfd[0]);
    ::_exit(run_executor(req, pfd[1]));
  }
  ::close(pfd[1]);
  // Nonblocking read end: a dead executor whose worker children still
  // hold the inherited write end must never block the daemon's drain.
  const int flags = ::fcntl(pfd[0], F_GETFL, 0);
  if (flags >= 0) ::fcntl(pfd[0], F_SETFL, flags | O_NONBLOCK);
  req.pid = pid;
  req.pipe_fd = pfd[0];
  req.pipe_stream = robust::FrameStream();
  req.pipe_poisoned = false;
  ++req.spawns;
}

int Daemon::run_executor(const Request& req, int write_fd) {
  // The caps this spawn owes: pending minus what an earlier spawn of
  // the same request already settled.
  std::vector<double> caps;
  for (double cap : req.pending) {
    if (std::find(req.settled.begin(), req.settled.end(), cap) ==
        req.settled.end())
      caps.push_back(cap);
  }
  try {
    std::istringstream in(req.trace_text);
    const dag::TaskGraph graph = dag::read_trace(in, "request:" + req.id);

    robust::ResilientSweepOptions ropt;
    ropt.driver.cap_deadline_ms = opt_.cap_deadline_ms;
    // A cancel token keeps executor reports byte-identical to offline
    // `sweep` runs (which always attach one); SIGTERM trips it so a
    // draining daemon can interrupt executors cleanly before the
    // SIGKILL grace backstop.
    static util::CancelToken executor_cancel;
    struct sigaction sa = {};
    sa.sa_handler = [](int) { executor_cancel.cancel(); };
    sigemptyset(&sa.sa_mask);
    sigaction(SIGTERM, &sa, nullptr);
    ropt.driver.cancel = &executor_cancel;
    ropt.workers = opt_.workers;
    ropt.worker_mem_mb = opt_.worker_mem_mb;
    ropt.worker_cpu_s = opt_.worker_cpu_s;
    ropt.remotes = opt_.remotes;
    ropt.remote_timeout_ms = opt_.remote_timeout_ms;
    ropt.remote_heartbeat_ms = opt_.remote_heartbeat_ms;
    if (req.has_deadline) {
      const double remain_s = std::max(
          0.0, -ms_since(req.deadline) / 1000.0);
      ropt.deadline = util::Deadline::after(remain_s, &executor_cancel);
    } else {
      ropt.deadline = util::Deadline::cancel_only(&executor_cancel);
    }
    // The daemon journals; the executor only streams. Shipping each row
    // the moment it settles is what lets the parent journal it (and
    // reply) while later caps still solve - a SIGKILL between rows
    // loses at most the cap in flight.
    ropt.on_row = [write_fd](const robust::SweepRow& row) {
      robust::JournalEntry entry;
      entry.job_cap_watts = row.job_cap_watts;
      entry.verdict = row.verdict;
      entry.degraded = row.degraded;
      entry.bound_seconds = row.bound_seconds;
      entry.fallback = row.fallback;
      entry.report_json = row.report_json;
      (void)robust::write_wire_frame(write_fd, 'R',
                                     robust::serialize_journal_entry(entry));
    };

    const auto result =
        robust::resilient_sweep(graph, model_, cluster_, caps, ropt);
    if (!result.ok()) return 1;
    if (result.value().interrupted) return 75;
    return 0;
  } catch (...) {
    return 1;
  }
}

void Daemon::pump_pipe(Request& req) {
  char buf[65536];
  const ssize_t n = util::read_some(req.pipe_fd, buf, sizeof(buf));
  if (n <= 0) return;  // EOF and errors resolve via waitpid
  req.pipe_stream.feed(std::string(buf, static_cast<std::size_t>(n)));
  for (;;) {
    robust::WireFrame frame;
    const robust::WireDecode d = req.pipe_stream.next(&frame);
    if (d == robust::WireDecode::kEmpty) break;
    if (d != robust::WireDecode::kOk) {
      // A torn frame from our own executor means the executor is gone
      // or corrupt mid-write; treat it exactly like a crash.
      if (!req.pipe_poisoned && req.pid > 0) ::kill(req.pid, SIGKILL);
      req.pipe_poisoned = true;
      break;
    }
    handle_pipe_frame(req, frame);
  }
}

void Daemon::handle_pipe_frame(Request& req, const robust::WireFrame& frame) {
  robust::JournalEntry entry;
  if (frame.tag != 'R' ||
      !robust::parse_journal_entry(frame.payload, &entry)) {
    if (!req.pipe_poisoned && req.pid > 0) ::kill(req.pid, SIGKILL);
    req.pipe_poisoned = true;
    return;
  }
  // A fenced daemon must not reply rows it can no longer journal (the
  // promoted standby owns the history now); drop them - the caps stay
  // owed and the client retries against the new primary.
  if (fenced_) return;
  // Journal first (unpatched bytes - byte-compatible with offline
  // sweeps), reply second (service telemetry patched into the copy).
  if (req.journal) {
    const robust::Status st = req.journal->append(entry);
    if (!st.ok()) {
      err_ << "powerlimd: journal append failed for " << req.id << ": "
           << st.to_string() << "\n";
      if (st.code() == robust::StatusCode::kStaleEpoch) {
        fence_self("row append for " + req.id + " fenced");
        return;
      }
    }
  }
  req.settled.push_back(entry.job_cap_watts);
  reply_row(req, entry);
}

void Daemon::reap_executors() {
  for (std::size_t i = 0; i < active_.size();) {
    Request& req = active_[i];
    int wait_status = 0;
    const pid_t r = req.pid > 0
                        ? ::waitpid(req.pid, &wait_status, WNOHANG)
                        : -1;
    if (req.pid > 0 && r == 0) {
      ++i;
      continue;
    }
    if (req.pid > 0) {
      // Drain whatever the executor wrote before dying; rows that made
      // it out whole are real results. Nonblocking reads: stop at
      // EAGAIN too, in case orphaned worker children still hold the
      // write end open.
      for (;;) {
        char buf[65536];
        const ssize_t n = util::read_some(req.pipe_fd, buf, sizeof(buf));
        if (n <= 0) break;
        req.pipe_stream.feed(std::string(buf, static_cast<std::size_t>(n)));
      }
      for (;;) {
        robust::WireFrame frame;
        if (req.pipe_stream.next(&frame) != robust::WireDecode::kOk) break;
        handle_pipe_frame(req, frame);
      }
      ::close(req.pipe_fd);
      req.pipe_fd = -1;
      req.pid = -1;
      executor_died(req, wait_status);
    }
    if (req.pid < 0 && req.pipe_fd < 0) {
      active_.erase(active_.begin() + static_cast<long>(i));
    } else {
      ++i;
    }
  }
}

void Daemon::executor_died(Request& req, int wait_status) {
  if (fenced_) {
    // No retry, no degraded rows: a fenced daemon has nothing durable
    // to offer. The unsettled caps are owed to the promoted standby.
    finish(req, "error", "daemon fenced by a newer epoch");
    return;
  }
  const bool clean_exit = WIFEXITED(wait_status);
  const int code = clean_exit ? WEXITSTATUS(wait_status) : -1;
  const bool all_settled = unsettled(req).empty();

  if (clean_exit && code == 0 && all_settled && !req.pipe_poisoned) {
    finish(req, "ok", "");
    return;
  }
  if (clean_exit && code == 75 && !req.pipe_poisoned) {
    // The executor stopped cooperatively at the deadline; every settled
    // cap is journaled, the rest are owed to --resume.
    finish(req, "deadline-exceeded",
           std::to_string(unsettled(req).size()) + " cap(s) unfinished");
    return;
  }
  if (req.deadline_killed) {
    finish(req, "deadline-exceeded",
           "executor killed at deadline; " +
               std::to_string(unsettled(req).size()) + " cap(s) unfinished");
    return;
  }

  std::ostringstream death;
  if (WIFSIGNALED(wait_status)) {
    death << "executor killed by signal " << WTERMSIG(wait_status);
  } else if (req.pipe_poisoned) {
    death << "executor result stream corrupt";
  } else {
    death << "executor exited with code " << code;
  }
  if (req.spawns < 2) {
    // One fresh executor gets the unsettled caps; a request never
    // consumes more than two executors.
    spawn_executor(req);
    return;
  }
  degrade_unsettled(req, death.str());
}

void Daemon::degrade_unsettled(Request& req, const std::string& death) {
  // Second executor death: the remaining caps degrade to the
  // Static-policy bound through the same path an offline parallel
  // sweep uses for a twice-dead worker, so daemon and offline tables
  // stay byte-identical (modulo telemetry).
  const std::vector<double> owed = unsettled(req);
  int degraded = 0;
  try {
    std::istringstream in(req.trace_text);
    const dag::TaskGraph graph = dag::read_trace(in, "request:" + req.id);
    robust::SolveDriverOptions driver_opt;
    driver_opt.cap_deadline_ms = opt_.cap_deadline_ms;
    // Offline sweeps always attach a cancel token, and the degraded
    // report records that ("cancellable") - attach one here too so the
    // degraded rows stay byte-identical with offline degraded rows.
    static const util::CancelToken never_cancelled;
    driver_opt.cancel = &never_cancelled;
    for (double cap : owed) {
      robust::WorkerFailure failure;
      failure.outcome = robust::StatusCode::kWorkerCrashed;
      failure.detail = death;
      failure.spawns = req.spawns;
      const robust::JournalEntry entry = robust::degraded_entry_for_failure(
          graph, model_, cluster_, driver_opt, cap, failure);
      if (req.journal) {
        const robust::Status st = req.journal->append(entry);
        if (!st.ok()) {
          err_ << "powerlimd: journal append failed for " << req.id << ": "
               << st.to_string() << "\n";
        }
      }
      req.settled.push_back(cap);
      reply_row(req, entry);
      ++degraded;
      ++degraded_caps_;
    }
  } catch (const std::exception& e) {
    finish(req, "error", death + "; degrade failed: " + e.what());
    return;
  }
  finish(req, "ok",
         death + "; " + std::to_string(degraded) + " cap(s) degraded");
}

std::vector<double> Daemon::unsettled(const Request& req) const {
  std::vector<double> owed;
  for (double cap : req.pending) {
    if (std::find(req.settled.begin(), req.settled.end(), cap) ==
        req.settled.end())
      owed.push_back(cap);
  }
  return owed;
}

void Daemon::finish(Request& req, const std::string& status,
                    const std::string& detail) {
  ServeDone d;
  d.id = req.id;
  d.status = status;
  d.rows = req.rows;
  d.resumed = req.resumed;
  d.shed_total = shed_total_;
  d.queue_depth = static_cast<int>(queued_.size());
  d.queue_wait_ms = req.exec_start.time_since_epoch().count() != 0
                        ? std::chrono::duration<double, std::milli>(
                              req.exec_start - req.admitted)
                              .count()
                        : 0.0;
  d.solve_ms = req.exec_start.time_since_epoch().count() != 0
                   ? ms_since(req.exec_start)
                   : 0.0;
  d.total_ms = ms_since(req.admitted);
  d.detail = detail;
  send_frame(req.conn_id, kTagDone, encode_done(d));
  req.journal.reset();
  ++finished_;
  out_ << "powerlimd: " << req.id << " " << status << " rows=" << d.rows
       << " resumed=" << d.resumed << " total_ms=" << d.total_ms << "\n";
  out_.flush();
}

// ---------------------------------------------------------------------------
// Replies and connection hygiene.

void Daemon::send_frame(std::uint64_t conn_id, char tag,
                        const std::string& payload) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;  // client left; the journal has it
  const std::string bytes = robust::encode_wire_frame(tag, payload);
  if (bytes.empty()) return;
  it->second.outbuf += bytes;
  flush_conn(it->second);
}

void Daemon::send_overloaded(std::uint64_t conn_id, const std::string& id,
                             const std::string& reason,
                             const std::string& detail) {
  ServeOverloaded o;
  o.id = id;
  o.reason = reason;
  o.detail = detail;
  send_frame(conn_id, kTagOverloaded, encode_overloaded(o));
}

robust::ServiceTelemetry Daemon::telemetry_for(const Request& req) const {
  robust::ServiceTelemetry s;
  s.served = true;
  s.queue_depth = req.queue_depth_at_admit;
  s.shed_total = req.shed_at_admit;
  const bool executing = req.exec_start.time_since_epoch().count() != 0;
  s.queue_wait_ms = executing ? std::chrono::duration<double, std::milli>(
                                    req.exec_start - req.admitted)
                                    .count()
                              : 0.0;
  s.solve_ms = executing ? ms_since(req.exec_start) : 0.0;
  s.total_ms = ms_since(req.admitted);
  s.epoch = epoch_;
  s.role = role_name();
  return s;
}

void Daemon::reply_row(Request& req, const robust::JournalEntry& entry) {
  ++req.rows;
  if (req.conn_id == 0) return;
  ServeRow row;
  row.id = req.id;
  row.entry = entry;
  row.entry.report_json =
      robust::patch_service_json(entry.report_json, telemetry_for(req));
  const std::string payload = encode_row(row);
  if (!payload.empty()) send_frame(req.conn_id, kTagRow, payload);
}

void Daemon::flush_conn(Conn& conn) {
  if (conn.outbuf.empty()) return;
  std::size_t sent = 0;
  const util::IoStatus st = util::send_nonblock(
      conn.fd, conn.outbuf.data(), conn.outbuf.size(), &sent);
  if (sent > 0) {
    conn.outbuf.erase(0, sent);
    conn.last_progress = Clock::now();
  }
  // kTimeout = socket buffer full; the poll loop re-arms POLLOUT while
  // outbuf is non-empty, so just come back later.
  if (st == util::IoStatus::kOk || st == util::IoStatus::kTimeout) return;
  drop_conn(conn.id, "send failed");
}

void Daemon::drop_conn(std::uint64_t conn_id, const char* why) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  (void)why;
  if (it->second.fd >= 0) ::close(it->second.fd);
  conns_.erase(it);
  standbys_.erase(conn_id);
}

void Daemon::reap_conns() {
  std::vector<std::uint64_t> doomed;
  for (auto& [id, conn] : conns_) {
    if (conn.closing && conn.outbuf.empty()) {
      doomed.push_back(id);
      continue;
    }
    // A connection that never completes its handshake, or whose
    // buffered replies make no progress, is a stalled or hostile
    // client: drop it so its buffer cannot grow without bound. Its
    // requests keep running - the journal still gets every row.
    if (!conn.handshaken && sec_since(conn.opened) > opt_.io_timeout_s) {
      doomed.push_back(id);
      continue;
    }
    if (!conn.outbuf.empty() &&
        sec_since(conn.last_progress) > opt_.io_timeout_s) {
      doomed.push_back(id);
      continue;
    }
    // Repl connections are legitimately read-silent for long stretches
    // (acks only flow while journal bytes do); the primary's heartbeats
    // keep the socket honest, so exempt them from idle reaping.
    if (conn.handshaken && !conn.repl && conn.outbuf.empty() &&
        sec_since(conn.last_read) > opt_.idle_timeout_s) {
      bool in_flight = false;
      for (const Request& req : queued_) {
        if (req.conn_id == id) in_flight = true;
      }
      for (const Request& req : active_) {
        if (req.conn_id == id) in_flight = true;
      }
      if (!in_flight) doomed.push_back(id);
    }
  }
  for (std::uint64_t id : doomed) drop_conn(id, "reaped");
}

// ---------------------------------------------------------------------------
// High availability: replication hub (primary side) and failover.

void Daemon::handle_repl_hello(Conn& conn, const robust::WireFrame& frame) {
  const std::uint64_t conn_id = conn.id;
  ReplHello hello;
  std::string why;
  ReplHelloAck ack;
  if (!decode_repl_hello(frame.payload, &hello, &why)) {
    conn.closing = true;
    ack.error = why;
    send_frame(conn_id, kTagReplHelloAck, encode_repl_hello_ack(ack));
    return;
  }
  if (standby_) {
    conn.closing = true;
    ack.error = "peer is a standby; replicate from the primary";
    send_frame(conn_id, kTagReplHelloAck, encode_repl_hello_ack(ack));
    return;
  }
  if (draining_ || fenced_) {
    conn.closing = true;
    ack.error = fenced_ ? "daemon is fenced" : "daemon is draining";
    send_frame(conn_id, kTagReplHelloAck, encode_repl_hello_ack(ack));
    return;
  }
  if (hello.epoch > epoch_) {
    // The dialing standby was promoted past us: *we* are the deposed
    // primary. Refuse the link and fence - this is how a rebooted
    // ex-primary learns it lost without sharing a filesystem.
    conn.closing = true;
    ack.error = "stale primary: standby epoch " +
                std::to_string(hello.epoch) + " > local epoch " +
                std::to_string(epoch_);
    send_frame(conn_id, kTagReplHelloAck, encode_repl_hello_ack(ack));
    fence_self("repl hello carried epoch " + std::to_string(hello.epoch));
    return;
  }
  conn.handshaken = true;
  conn.repl = true;
  StandbyPeer peer;
  peer.epoch = hello.epoch;
  struct PendingResync {
    std::string hash;
    std::string why;
  };
  std::vector<PendingResync> resyncs;
  for (const ReplMark& mark : hello.marks) {
    if (!valid_trace_hash(mark.hash)) {
      drop_conn(conn_id, "hostile mark hash");
      return;
    }
    const std::string path = journal_path(opt_.state_dir, mark.hash);
    struct stat sb = {};
    const std::uint64_t local =
        ::stat(path.c_str(), &sb) == 0
            ? static_cast<std::uint64_t>(sb.st_size)
            : 0;
    std::uint32_t crc = 0;
    if (mark.offset > local) {
      resyncs.push_back({mark.hash, "standby holds bytes the primary lacks"});
    } else if (!file_prefix_crc(path, mark.offset, &crc) ||
               crc != mark.crc) {
      // Equal-length prefixes with different CRCs are different
      // histories - the one case offsets alone cannot catch.
      resyncs.push_back({mark.hash, "journal history diverged"});
    } else {
      peer.sent[mark.hash] = mark.offset;
      peer.acked[mark.hash] = mark.offset;
    }
  }
  standbys_[conn_id] = std::move(peer);
  ack.ok = true;
  ack.epoch = epoch_;
  send_frame(conn_id, kTagReplHelloAck, encode_repl_hello_ack(ack));
  for (const PendingResync& r : resyncs) {
    if (conns_.find(conn_id) == conns_.end()) return;
    send_resync(conn_id, r.hash, r.why);
  }
  out_ << "powerlimd: standby connected (epoch " << hello.epoch << ", "
       << hello.marks.size() << " mark(s))\n";
  out_.flush();
  repl_stream(journal_hashes(opt_.state_dir));
}

void Daemon::handle_repl_ack(Conn& conn, const robust::WireFrame& frame) {
  const std::uint64_t conn_id = conn.id;
  ReplAck ack;
  if (!decode_repl_ack(frame.payload, &ack)) {
    drop_conn(conn_id, "malformed repl ack");
    return;
  }
  if (ack.epoch > epoch_) {
    drop_conn(conn_id, "fenced");
    fence_self("repl ack carried epoch " + std::to_string(ack.epoch));
    return;
  }
  if (!valid_trace_hash(ack.hash)) {
    drop_conn(conn_id, "hostile ack hash");
    return;
  }
  auto pit = standbys_.find(conn_id);
  if (pit == standbys_.end()) {
    drop_conn(conn_id, "ack before repl hello");
    return;
  }
  StandbyPeer& peer = pit->second;
  peer.epoch = std::max(peer.epoch, ack.epoch);
  const std::string path = journal_path(opt_.state_dir, ack.hash);
  struct stat sb = {};
  const std::uint64_t local = ::stat(path.c_str(), &sb) == 0
                                  ? static_cast<std::uint64_t>(sb.st_size)
                                  : 0;
  if (ack.offset > local) {
    send_resync(conn_id, ack.hash, "standby holds bytes the primary lacks");
    return;
  }
  std::uint64_t& sent = peer.sent[ack.hash];
  std::uint64_t& acked = peer.acked[ack.hash];
  if (ack.offset > sent) {
    // An ack for bytes we never streamed. The one innocent case is a
    // freshly-reset replica acking its deterministic header (post-
    // resync); anything else is history we cannot vouch for.
    if (ack.offset != robust::journal_header_bytes()) {
      send_resync(conn_id, ack.hash, "ack beyond streamed bytes");
      return;
    }
    sent = ack.offset;
  } else if (ack.offset == acked && ack.offset < sent) {
    // The same mark twice with bytes outstanding: the standby refused
    // an apply (offset mismatch). Rewind and restream from its mark.
    sent = ack.offset;
  }
  acked = ack.offset;
  if (sent < local) repl_dirty_.insert(ack.hash);
}

void Daemon::send_resync(std::uint64_t conn_id, const std::string& hash,
                         const std::string& why) {
  auto it = standbys_.find(conn_id);
  if (it != standbys_.end()) {
    it->second.sent.erase(hash);
    it->second.acked.erase(hash);
  }
  ReplResync r;
  r.hash = hash;
  r.detail = why;
  send_frame(conn_id, kTagReplResync, encode_repl_resync(r));
}

void Daemon::stream_journal_to(std::uint64_t conn_id,
                               const std::string& hash) {
  // Backpressure ceiling: a standby that cannot drain its socket gets
  // its remaining delta on a later pass instead of an unbounded buffer
  // (the same slow-peer containment clients get).
  constexpr std::size_t kReplSoftBuffer = 1u << 20;
  constexpr std::size_t kReplChunk = 256u << 10;

  auto cit = conns_.find(conn_id);
  auto pit = standbys_.find(conn_id);
  if (cit == conns_.end() || pit == standbys_.end()) return;
  if (cit->second.outbuf.size() > kReplSoftBuffer) {
    repl_dirty_.insert(hash);
    return;
  }
  if (pit->second.traces_sent.insert(hash).second) {
    std::ifstream tf(trace_path(opt_.state_dir, hash));
    std::stringstream buf;
    buf << tf.rdbuf();
    if (tf) {
      ReplTrace t;
      t.hash = hash;
      t.trace_text = buf.str();
      send_frame(conn_id, kTagReplTrace, encode_repl_trace(t));
      if (conns_.find(conn_id) == conns_.end()) return;
      pit = standbys_.find(conn_id);
      if (pit == standbys_.end()) return;
    } else {
      pit->second.traces_sent.erase(hash);  // not snapshotted yet; retry
    }
  }
  const std::string path = journal_path(opt_.state_dir, hash);
  struct stat sb = {};
  if (::stat(path.c_str(), &sb) != 0) return;
  const std::uint64_t size = static_cast<std::uint64_t>(sb.st_size);
  const std::uint64_t header = robust::journal_header_bytes();
  // Never stream the magic line: every replica's journal is created
  // with the identical header, so byte `header` is where histories can
  // first differ.
  std::uint64_t from = std::max(pit->second.sent[hash], header);
  pit->second.sent[hash] = from;
  while (from < size) {
    std::string bytes;
    const std::size_t want =
        static_cast<std::size_t>(std::min<std::uint64_t>(size - from,
                                                         kReplChunk));
    if (!read_file_range(path, from, want, &bytes) || bytes.empty()) return;
    ReplJournal j;
    j.hash = hash;
    j.offset = from;
    j.epoch = epoch_;
    j.bytes = std::move(bytes);
    const std::uint64_t len = j.bytes.size();
    send_frame(conn_id, kTagReplJournal, encode_repl_journal(j));
    cit = conns_.find(conn_id);
    pit = standbys_.find(conn_id);
    if (cit == conns_.end() || pit == standbys_.end()) return;
    from += len;
    pit->second.sent[hash] = from;
    if (cit->second.outbuf.size() > kReplSoftBuffer) {
      repl_dirty_.insert(hash);
      return;
    }
  }
}

void Daemon::repl_stream(const std::vector<std::string>& hashes) {
  if (standbys_.empty()) return;
  std::vector<std::uint64_t> ids;
  for (const auto& [id, peer] : standbys_) ids.push_back(id);
  for (std::uint64_t id : ids) {
    for (const std::string& hash : hashes) stream_journal_to(id, hash);
  }
}

void Daemon::repl_tick() {
  if (standby_) {
    if (!standby_link_) return;
    standby_link_->tick();
    epoch_ = std::max(epoch_, standby_link_->epoch());
    if (!draining_ && opt_.promote_after_ms > 0.0 &&
        standby_link_->silence_ms() > opt_.promote_after_ms) {
      promote_self("heartbeat-loss");
    }
    return;
  }
  if (fenced_) return;
  if (standbys_.empty()) {
    repl_dirty_.clear();
    last_heartbeat_ = Clock::now();
    return;
  }
  if (ms_since(last_heartbeat_) >= opt_.repl_heartbeat_ms) {
    last_heartbeat_ = Clock::now();
    std::vector<std::uint64_t> ids;
    for (const auto& [id, peer] : standbys_) ids.push_back(id);
    const std::string beat = encode_repl_heartbeat(epoch_);
    for (std::uint64_t id : ids) {
      send_frame(id, kTagReplHeartbeat, beat);
    }
    // Reconciliation pass (cheap stat-compares when nothing changed):
    // catches appends from foreign writers sharing the state dir,
    // which never poke the dirty set.
    repl_dirty_.clear();
    repl_stream(journal_hashes(opt_.state_dir));
    return;
  }
  if (!repl_dirty_.empty()) {
    const std::vector<std::string> dirty(repl_dirty_.begin(),
                                         repl_dirty_.end());
    repl_dirty_.clear();
    repl_stream(dirty);
  }
}

void Daemon::handle_promote(Conn& conn) {
  const std::uint64_t conn_id = conn.id;
  PromoteAck ack;
  if (fenced_ || draining_) {
    ack.error = fenced_ ? "daemon is fenced" : "daemon is draining";
  } else {
    if (standby_) promote_self("operator");
    ack.ok = true;
    ack.epoch = epoch_;
  }
  send_frame(conn_id, kTagPromoteAck, encode_promote_ack(ack));
}

void Daemon::promote_self(const char* why) {
  if (!standby_) return;
  std::uint64_t highest = epoch_;
  if (standby_link_) {
    highest = std::max(highest, standby_link_->epoch());
    standby_link_->close_link();
    standby_link_.reset();
  }
  epoch_ = highest + 1;
  standby_ = false;
  std::string error;
  if (!store_epoch_file(opt_.state_dir, epoch_, &error)) {
    err_ << "powerlimd: promote: cannot persist epoch " << epoch_ << ": "
         << error << "\n";
  }
  // Stamp the new epoch into every journal: from this moment a deposed
  // primary sharing these files is durably fenced out of them.
  for (const std::string& hash : journal_hashes(opt_.state_dir)) {
    auto opened =
        robust::SweepJournal::open(journal_path(opt_.state_dir, hash));
    if (!opened.ok()) {
      err_ << "powerlimd: promote: cannot open " << hash << ": "
           << opened.status().to_string() << "\n";
      continue;
    }
    const robust::Status st = opened.value().advance_epoch(epoch_);
    if (!st.ok()) {
      err_ << "powerlimd: promote: cannot stamp " << hash << ": "
           << st.to_string() << "\n";
    }
  }
  out_ << "powerlimd: promoted to primary at epoch " << epoch_ << " ("
       << why << ")\n";
  out_.flush();
  // The promoted primary owns the owed work now: finish every journaled
  // intent whose caps still lack trusted records. Proven rows are
  // served from the replica journal, never re-solved.
  if (opt_.resume) startup_resume();
}

void Daemon::fence_self(const std::string& why) {
  if (fenced_) return;
  fenced_ = true;
  err_ << "powerlimd: fenced (" << why
       << "): a newer primary exists; draining\n";
  err_.flush();
  // Active executors' rows can no longer be journaled or trusted; kill
  // them rather than reply with results outside the durable history.
  for (Request& req : active_) {
    if (req.pid > 0) ::kill(req.pid, SIGKILL);
  }
  if (!draining_) begin_drain("fenced");
}

void Daemon::handle_standby_request(std::uint64_t conn_id,
                                    ServeRequest&& sr) {
  // A standby is a read replica: it serves a request if and only if
  // *every* cap has a trusted (certificate-gated) record in the replica
  // journal; anything less is shed with a typed reason so failover
  // clients move on to the primary. No partial row streams - a half
  // answer would duplicate rows once the client retries elsewhere.
  Request req;
  req.conn_id = conn_id;
  req.id = sr.id;
  req.kind = sr.kind;
  req.caps = sr.caps;
  req.trace_text = std::move(sr.trace_text);
  req.hash = trace_hash(req.trace_text);
  const std::string path = journal_path(opt_.state_dir, req.hash);
  int proven = 0;
  std::unique_ptr<robust::SweepJournal> journal;
  struct stat sb = {};
  if (::stat(path.c_str(), &sb) == 0) {
    auto opened = robust::SweepJournal::open(path);
    if (opened.ok()) {
      journal = std::make_unique<robust::SweepJournal>(
          std::move(opened).value());
      for (double cap : req.caps) {
        const robust::JournalEntry* entry = journal->find(cap);
        if (entry != nullptr &&
            robust::journal_entry_trusted(*entry,
                                          /*require_certificate=*/true)) {
          ++proven;
        }
      }
    }
  }
  if (journal == nullptr ||
      proven != static_cast<int>(req.caps.size())) {
    ++shed_total_;
    send_overloaded(conn_id, req.id, "standby",
                    "read-only standby (" + std::to_string(proven) + "/" +
                        std::to_string(req.caps.size()) +
                        " caps proven); retry against the primary");
    return;
  }
  for (double cap : req.caps) {
    ++req.resumed;
    reply_row(req, *journal->find(cap));
  }
  finish(req, "ok", "served from standby replica");
}

}  // namespace

int serve(const ServeOptions& options, const machine::PowerModel& model,
          const machine::ClusterSpec& cluster, std::ostream& out,
          std::ostream& err) {
  Daemon daemon(options, model, cluster, out, err);
  return daemon.run();
}

}  // namespace powerlim::serve
