// Client side of the powerlimd protocol.
//
// ServeClient owns one connection: connect + version handshake, then
// any number of sequential requests, each collected as streamed 'R'
// rows plus one terminal frame ('D' done / 'O' overloaded / 'E'
// error). Every receive is deadline-bounded - a dead or stalled daemon
// costs the caller at most the timeout, never a hung process - and the
// response stream runs through the same poisoning FrameStream the
// daemon uses, so a corrupt byte ends the connection instead of
// yielding a half-trusted row.
//
// Used by `powerlim query` (one request, table to stdout), the load
// generator (serve/loadgen.h), and the serve tests.
#pragma once

#include <string>
#include <vector>

#include "robust/status.h"
#include "robust/wire.h"
#include "serve/protocol.h"
#include "util/socket_io.h"

namespace powerlim::serve {

/// How one collected request ended.
enum class CollectStatus {
  /// 'D' received; rows hold every streamed row, done the summary.
  kDone,
  /// 'O' received; the daemon shed the request (see overloaded.reason).
  kOverloaded,
  /// 'E' received; error_detail explains.
  kRequestError,
  /// The wall timeout passed with no terminal frame.
  kTimeout,
  /// The connection died or the stream was poisoned mid-collect.
  kDisconnected,
};

const char* to_string(CollectStatus s);

struct CollectResult {
  CollectStatus status = CollectStatus::kDisconnected;
  std::vector<ServeRow> rows;
  ServeDone done;
  ServeOverloaded overloaded;
  std::string error_detail;
};

class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient();
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Connects and completes the hello handshake. A version-skewed
  /// server's "error ..." ack comes back as kWireMalformed with the
  /// server's skew description in the message. On success epoch()/role()
  /// report what the server declared in its ack.
  [[nodiscard]] robust::Status connect(const util::Endpoint& server,
                         double timeout_s = 5.0);

  /// The failover epoch and role ("primary"/"standby") the server
  /// declared at handshake. Valid after a successful connect().
  std::uint64_t epoch() const { return epoch_; }
  const std::string& role() const { return role_; }

  /// Asks the server to become (or confirm it is) the primary: sends
  /// 'P', waits for the 'p' ack. On Ok *epoch_out (if non-null) holds
  /// the server's post-promotion epoch.
  [[nodiscard]] robust::Status promote(std::uint64_t* epoch_out,
                         double timeout_s = 10.0);

  /// Sends one request frame ('U'). The reply is gathered separately
  /// with collect(), so a caller may render rows as they stream.
  [[nodiscard]] robust::Status submit(const ServeRequest& request);

  /// Gathers the reply for `request_id` until its terminal frame or
  /// `wall_timeout_s`. Frames for other request ids are dropped (the
  /// daemon serves one connection's requests in submit order).
  CollectResult collect(const std::string& request_id,
                        double wall_timeout_s = 60.0);

  bool connected() const { return fd_ >= 0; }
  void close();

  /// The raw socket, for tests that sabotage the connection.
  int fd() const { return fd_; }

 private:
  [[nodiscard]] robust::Status read_frame(robust::WireFrame* out, double timeout_s);

  int fd_ = -1;
  robust::FrameStream stream_;
  std::uint64_t epoch_ = 0;
  std::string role_;
};

/// How one failover-aware request ended (FailoverClient::request).
struct FailoverResult {
  CollectResult result;
  /// The endpoint that produced `result` (meaningful when attempted).
  util::Endpoint served_by;
  /// Endpoints tried, including the one that answered.
  int attempts = 0;
  /// Human-readable trail of per-endpoint failures, for diagnostics.
  std::string detail;
};

/// Client-side failover over an ordered endpoint list (--endpoints).
///
/// Requests are idempotent by construction - the daemon serves proven
/// caps from its journal and only solves the remainder - so the retry
/// policy is simple: walk the endpoints, submit to the first one that
/// handshakes, and move on when a server is unreachable, sheds
/// (overloaded: a standby answering "standby", a primary answering
/// "queue-full"/"draining"), or dies mid-collect. Split-brain safety:
/// the highest epoch seen in any handshake is remembered and a server
/// acking a *lower* epoch is refused outright - a deposed primary
/// cannot serve this client stale history, even if it answers first.
class FailoverClient {
 public:
  explicit FailoverClient(std::vector<util::Endpoint> endpoints)
      : endpoints_(std::move(endpoints)) {}

  /// One request, tried across endpoints (each at most `rounds` times,
  /// in order, with `retry_backoff_s` between full passes). Terminal
  /// replies (done / request-error) return immediately; unreachable,
  /// shedding, or mid-stream-dying endpoints advance to the next.
  FailoverResult request(const ServeRequest& request,
                         double connect_timeout_s = 5.0,
                         double wall_timeout_s = 120.0, int rounds = 3,
                         double retry_backoff_s = 0.25);

  /// Highest epoch any endpoint has declared to this client.
  std::uint64_t max_epoch() const { return max_epoch_; }

 private:
  std::vector<util::Endpoint> endpoints_;
  std::uint64_t max_epoch_ = 0;
};

}  // namespace powerlim::serve
