// Client side of the powerlimd protocol.
//
// ServeClient owns one connection: connect + version handshake, then
// any number of sequential requests, each collected as streamed 'R'
// rows plus one terminal frame ('D' done / 'O' overloaded / 'E'
// error). Every receive is deadline-bounded - a dead or stalled daemon
// costs the caller at most the timeout, never a hung process - and the
// response stream runs through the same poisoning FrameStream the
// daemon uses, so a corrupt byte ends the connection instead of
// yielding a half-trusted row.
//
// Used by `powerlim query` (one request, table to stdout), the load
// generator (serve/loadgen.h), and the serve tests.
#pragma once

#include <string>
#include <vector>

#include "robust/status.h"
#include "robust/wire.h"
#include "serve/protocol.h"
#include "util/socket_io.h"

namespace powerlim::serve {

/// How one collected request ended.
enum class CollectStatus {
  /// 'D' received; rows hold every streamed row, done the summary.
  kDone,
  /// 'O' received; the daemon shed the request (see overloaded.reason).
  kOverloaded,
  /// 'E' received; error_detail explains.
  kRequestError,
  /// The wall timeout passed with no terminal frame.
  kTimeout,
  /// The connection died or the stream was poisoned mid-collect.
  kDisconnected,
};

const char* to_string(CollectStatus s);

struct CollectResult {
  CollectStatus status = CollectStatus::kDisconnected;
  std::vector<ServeRow> rows;
  ServeDone done;
  ServeOverloaded overloaded;
  std::string error_detail;
};

class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient();
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Connects and completes the hello handshake. A version-skewed
  /// server's "error ..." ack comes back as kWireMalformed with the
  /// server's skew description in the message.
  robust::Status connect(const util::Endpoint& server,
                         double timeout_s = 5.0);

  /// Sends one request frame ('U'). The reply is gathered separately
  /// with collect(), so a caller may render rows as they stream.
  robust::Status submit(const ServeRequest& request);

  /// Gathers the reply for `request_id` until its terminal frame or
  /// `wall_timeout_s`. Frames for other request ids are dropped (the
  /// daemon serves one connection's requests in submit order).
  CollectResult collect(const std::string& request_id,
                        double wall_timeout_s = 60.0);

  bool connected() const { return fd_ >= 0; }
  void close();

  /// The raw socket, for tests that sabotage the connection.
  int fd() const { return fd_; }

 private:
  robust::Status read_frame(robust::WireFrame* out, double timeout_s);

  int fd_ = -1;
  robust::FrameStream stream_;
};

}  // namespace powerlim::serve
