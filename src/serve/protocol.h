// Wire protocol of the powerlimd daemon ("powerlimd v1").
//
// powerlimd serves bound/sweep requests over the same CRC framing the
// rest of the distributed layer uses (robust/wire.h): every message is
// one self-checking frame, torn or hostile bytes poison the connection,
// and both sides share the kMaxFrameBytes buffer ceiling. One
// connection carries:
//
//   client -> daemon   'T' hello: "powerlimd v1\nschema=<n> proto=<n>"
//                      'U' request: journal-request line + "\n" + trace
//   daemon -> client   'A' hello ack ("ok" | "error <why>")
//                      'R' row: "id=<id>\n" + serialized JournalEntry
//                          (one per cap, streamed as caps settle)
//                      'O' overloaded / shed: id, typed reason, detail
//                      'D' done: id, terminal status, counts, latencies
//                      'E' request error: "id=<id>\n<detail>"
//
// The 'U' header line is *exactly* the journal's `Q` record payload
// (robust/journal.h serialize_journal_request), so the daemon journals
// the admission intent byte-for-byte as it arrived; and an 'R' row body
// is exactly a journal `R` payload, so a served row and a journaled row
// are the same bytes (the daemon patches the schema-6 `service` block
// into the *reply copy* only - the journal stays byte-compatible with
// offline `powerlim sweep --journal` files).
//
// Version skew is settled at hello time: a client whose schema or proto
// differs gets "error ..." in the 'A' ack and nothing else, never a
// misparsed request.
#pragma once

#include <string>
#include <vector>

#include "robust/journal.h"

namespace powerlim::serve {

/// First line of the 'T' hello payload.
inline constexpr char kServeProtoMagic[] = "powerlimd v1";
/// Protocol revision pinned next to the RunReport schema in the hello.
inline constexpr int kServeProtoVersion = 1;

// Frame tags (client -> daemon).
inline constexpr char kTagHello = 'T';
inline constexpr char kTagRequest = 'U';
// Frame tags (daemon -> client).
inline constexpr char kTagHelloAck = 'A';
inline constexpr char kTagRow = 'R';
inline constexpr char kTagOverloaded = 'O';
inline constexpr char kTagDone = 'D';
inline constexpr char kTagError = 'E';

/// Builds the 'T' payload for this build's schema/proto versions.
std::string encode_hello();

/// Server-side hello check. Returns true when magic, schema and proto
/// all match this build; otherwise false with a human-readable skew
/// description in *error (which becomes the 'A' "error ..." ack).
bool decode_hello(const std::string& payload, std::string* error);

/// One bound/sweep request. `kind` is "bound" (exactly one cap) or
/// "sweep"; ids are single tokens, unique per connection (the client
/// matches replies by id).
struct ServeRequest {
  std::string id;
  std::string kind;
  /// Client-side deadline for the whole request, ms (0 = none). The
  /// daemon sheds the request (reason "deadline") rather than reply
  /// later than this.
  double deadline_ms = 0.0;
  std::vector<double> caps;
  /// dag::write_trace text of the graph to solve.
  std::string trace_text;
};

/// 'U' payload round-trip. encode returns "" on a malformed request
/// (whitespace in id/kind, no caps, "bound" with != 1 cap).
std::string encode_request(const ServeRequest& request);
bool decode_request(const std::string& payload, ServeRequest* out,
                    std::string* error);

/// One streamed row: the journal entry for a settled cap, with the
/// reply copy's `service` block patched by the daemon.
struct ServeRow {
  std::string id;
  robust::JournalEntry entry;
};

std::string encode_row(const ServeRow& row);
bool decode_row(const std::string& payload, ServeRow* out);

/// Load-shed reply. `reason` is typed so clients and tests can branch:
///   queue-full  admission queue at --max-queue, request never admitted
///   deadline    the request's own deadline passed before it could run
///   draining    daemon is shutting down (SIGTERM drain)
struct ServeOverloaded {
  std::string id;
  std::string reason;
  std::string detail;
};

std::string encode_overloaded(const ServeOverloaded& o);
bool decode_overloaded(const std::string& payload, ServeOverloaded* out);

/// Terminal per-request summary. `status`:
///   ok                 every cap settled (possibly degraded rows)
///   deadline-exceeded  killed at the request deadline; rows already
///                      streamed are valid and journaled
///   cancelled          daemon shut down mid-request (resume completes)
///   error              executor failed twice with no degradable graph
struct ServeDone {
  std::string id;
  std::string status;
  int rows = 0;
  int resumed = 0;
  long shed_total = 0;
  int queue_depth = 0;
  double queue_wait_ms = 0.0;
  double solve_ms = 0.0;
  double total_ms = 0.0;
  std::string detail;
};

std::string encode_done(const ServeDone& d);
bool decode_done(const std::string& payload, ServeDone* out);

/// 'E' payload: "id=<id>\n<detail>".
std::string encode_error(const std::string& id, const std::string& detail);
bool decode_error(const std::string& payload, std::string* id,
                  std::string* detail);

}  // namespace powerlim::serve
