// Wire protocol of the powerlimd daemon ("powerlimd v1").
//
// powerlimd serves bound/sweep requests over the same CRC framing the
// rest of the distributed layer uses (robust/wire.h): every message is
// one self-checking frame, torn or hostile bytes poison the connection,
// and both sides share the kMaxFrameBytes buffer ceiling. One
// connection carries:
//
//   client -> daemon   'T' hello: "powerlimd v1\nschema=<n> proto=<n>"
//                      'U' request: journal-request line + "\n" + trace
//                      'P' promote: operator asks a standby to take over
//   daemon -> client   'A' hello ack ("ok epoch=<e> role=<r>" |
//                          "error <why>")
//                      'R' row: "id=<id>\n" + serialized JournalEntry
//                          (one per cap, streamed as caps settle)
//                      'O' overloaded / shed: id, typed reason, detail
//                      'D' done: id, terminal status, counts, latencies
//                      'E' request error: "id=<id>\n<detail>"
//                      'p' promote ack ("ok epoch=<e>" | "error <why>")
//
// The same port also speaks the replication sub-protocol
// ("powerlimd-repl v1"): a warm standby's first frame is 'H' instead of
// 'T', which flips the connection into repl mode:
//
//   standby -> primary 'H' repl hello: magic, schema/proto/epoch, one
//                          high-water mark per local journal (absolute
//                          byte offset + CRC of the prefix, so the
//                          primary detects divergent history, not just
//                          missing bytes)
//                      'k' ack: durable high-water mark after an apply
//   primary -> standby 'h' repl hello ack ("ok epoch=<e>" | "error ...")
//                      'G' trace snapshot (idempotent, sent up front)
//                      'J' journal bytes: verbatim frames from byte
//                          offset <off> of journal <hash>, stamped with
//                          the primary's epoch
//                      'K' heartbeat carrying the primary's epoch
//                      'Y' resync: the standby's copy diverged or
//                          outran the primary; quarantine and refetch
//
// The 'U' header line is *exactly* the journal's `Q` record payload
// (robust/journal.h serialize_journal_request), so the daemon journals
// the admission intent byte-for-byte as it arrived; and an 'R' row body
// is exactly a journal `R` payload, so a served row and a journaled row
// are the same bytes (the daemon patches the `service` block into the
// *reply copy* only - the journal stays byte-compatible with offline
// `powerlim sweep --journal` files).
//
// Version skew is settled at hello time: a client whose schema or proto
// differs gets "error ..." in the 'A' ack and nothing else, never a
// misparsed request.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "robust/journal.h"

namespace powerlim::serve {

/// First line of the 'T' hello payload.
inline constexpr char kServeProtoMagic[] = "powerlimd v1";
/// First line of the 'H' repl hello payload.
inline constexpr char kReplProtoMagic[] = "powerlimd-repl v1";
/// Protocol revision pinned next to the RunReport schema in the hello.
/// v2: hello ack carries epoch/role; promote and replication frames.
inline constexpr int kServeProtoVersion = 2;

// Frame tags (client -> daemon).
inline constexpr char kTagHello = 'T';
inline constexpr char kTagRequest = 'U';
inline constexpr char kTagPromote = 'P';
// Frame tags (daemon -> client).
inline constexpr char kTagHelloAck = 'A';
inline constexpr char kTagRow = 'R';
inline constexpr char kTagOverloaded = 'O';
inline constexpr char kTagDone = 'D';
inline constexpr char kTagError = 'E';
inline constexpr char kTagPromoteAck = 'p';
// Replication frame tags (standby -> primary).
inline constexpr char kTagReplHello = 'H';
inline constexpr char kTagReplAck = 'k';
// Replication frame tags (primary -> standby).
inline constexpr char kTagReplHelloAck = 'h';
inline constexpr char kTagReplTrace = 'G';
inline constexpr char kTagReplJournal = 'J';
inline constexpr char kTagReplHeartbeat = 'K';
inline constexpr char kTagReplResync = 'Y';

/// Builds the 'T' payload for this build's schema/proto versions.
std::string encode_hello();

/// Server-side hello check. Returns true when magic, schema and proto
/// all match this build; otherwise false with a human-readable skew
/// description in *error (which becomes the 'A' "error ..." ack).
bool decode_hello(const std::string& payload, std::string* error);

/// The 'A' hello ack: accepted hellos carry the daemon's failover
/// epoch and role so clients can prefer the newest primary and refuse
/// a deposed one.
struct HelloAck {
  bool ok = false;
  std::uint64_t epoch = 0;
  /// "primary" or "standby".
  std::string role;
  /// Refusal detail when !ok.
  std::string error;
};

std::string encode_hello_ack(const HelloAck& ack);
bool decode_hello_ack(const std::string& payload, HelloAck* out);

/// One bound/sweep request. `kind` is "bound" (exactly one cap) or
/// "sweep"; ids are single tokens, unique per connection (the client
/// matches replies by id).
struct ServeRequest {
  std::string id;
  std::string kind;
  /// Client-side deadline for the whole request, ms (0 = none). The
  /// daemon sheds the request (reason "deadline") rather than reply
  /// later than this.
  double deadline_ms = 0.0;
  std::vector<double> caps;
  /// dag::write_trace text of the graph to solve.
  std::string trace_text;
};

/// 'U' payload round-trip. encode returns "" on a malformed request
/// (whitespace in id/kind, no caps, "bound" with != 1 cap).
std::string encode_request(const ServeRequest& request);
bool decode_request(const std::string& payload, ServeRequest* out,
                    std::string* error);

/// One streamed row: the journal entry for a settled cap, with the
/// reply copy's `service` block patched by the daemon.
struct ServeRow {
  std::string id;
  robust::JournalEntry entry;
};

std::string encode_row(const ServeRow& row);
bool decode_row(const std::string& payload, ServeRow* out);

/// Load-shed reply. `reason` is typed so clients and tests can branch:
///   queue-full  admission queue at --max-queue, request never admitted
///   deadline    the request's own deadline passed before it could run
///   draining    daemon is shutting down (SIGTERM drain)
struct ServeOverloaded {
  std::string id;
  std::string reason;
  std::string detail;
};

std::string encode_overloaded(const ServeOverloaded& o);
bool decode_overloaded(const std::string& payload, ServeOverloaded* out);

/// Terminal per-request summary. `status`:
///   ok                 every cap settled (possibly degraded rows)
///   deadline-exceeded  killed at the request deadline; rows already
///                      streamed are valid and journaled
///   cancelled          daemon shut down mid-request (resume completes)
///   error              executor failed twice with no degradable graph
struct ServeDone {
  std::string id;
  std::string status;
  int rows = 0;
  int resumed = 0;
  long shed_total = 0;
  int queue_depth = 0;
  double queue_wait_ms = 0.0;
  double solve_ms = 0.0;
  double total_ms = 0.0;
  std::string detail;
};

std::string encode_done(const ServeDone& d);
bool decode_done(const std::string& payload, ServeDone* out);

/// 'E' payload: "id=<id>\n<detail>".
std::string encode_error(const std::string& id, const std::string& detail);
bool decode_error(const std::string& payload, std::string* id,
                  std::string* detail);

/// 'p' promote ack: "ok epoch=<e>" (idempotent on an already-primary
/// daemon) or "error <why>".
struct PromoteAck {
  bool ok = false;
  std::uint64_t epoch = 0;
  std::string error;
};

std::string encode_promote_ack(const PromoteAck& ack);
bool decode_promote_ack(const std::string& payload, PromoteAck* out);

/// One journal high-water mark in a repl hello: how many bytes of
/// journal `hash` the standby holds durably, plus the CRC-32 of those
/// bytes. The CRC lets the primary distinguish "behind" (stream the
/// delta) from "divergent" (this file has a different history - force a
/// resync) - offsets alone cannot tell those apart.
struct ReplMark {
  std::string hash;
  std::uint64_t offset = 0;
  std::uint32_t crc = 0;
};

/// 'H' payload: repl magic + schema/proto/epoch line + one mark line
/// per local journal.
struct ReplHello {
  std::uint64_t epoch = 0;
  std::vector<ReplMark> marks;
};

std::string encode_repl_hello(const ReplHello& hello);
/// Strict parse + version check (same skew rules as the client hello).
bool decode_repl_hello(const std::string& payload, ReplHello* out,
                       std::string* error);

/// 'h' payload: "ok epoch=<e>" | "error <why>".
struct ReplHelloAck {
  bool ok = false;
  std::uint64_t epoch = 0;
  std::string error;
};

std::string encode_repl_hello_ack(const ReplHelloAck& ack);
bool decode_repl_hello_ack(const std::string& payload, ReplHelloAck* out);

/// 'G' payload: "hash=<h>\n<trace text>". Idempotent on the standby
/// (same bytes may arrive again after a reconnect).
struct ReplTrace {
  std::string hash;
  std::string trace_text;
};

std::string encode_repl_trace(const ReplTrace& trace);
bool decode_repl_trace(const std::string& payload, ReplTrace* out);

/// 'J' payload: "hash=<h> off=<n> epoch=<e>\n<verbatim journal frames>".
/// `offset` is the absolute byte offset in the journal file where
/// `bytes` begins; the standby applies only at an exact match.
struct ReplJournal {
  std::string hash;
  std::uint64_t offset = 0;
  std::uint64_t epoch = 0;
  std::string bytes;
};

std::string encode_repl_journal(const ReplJournal& journal);
bool decode_repl_journal(const std::string& payload, ReplJournal* out);

/// 'k' payload: "hash=<h> off=<n> epoch=<e>" - the standby's durable
/// high-water mark for one journal after an apply.
struct ReplAck {
  std::string hash;
  std::uint64_t offset = 0;
  std::uint64_t epoch = 0;
};

std::string encode_repl_ack(const ReplAck& ack);
bool decode_repl_ack(const std::string& payload, ReplAck* out);

/// 'K' payload: "epoch=<e>". Sent periodically by the primary; a
/// standby that misses enough of them may auto-promote.
std::string encode_repl_heartbeat(std::uint64_t epoch);
bool decode_repl_heartbeat(const std::string& payload, std::uint64_t* epoch);

/// 'Y' payload: "hash=<h>\n<why>". The standby quarantines its copy of
/// that journal and re-acks from the fresh (header-only) file.
struct ReplResync {
  std::string hash;
  std::string detail;
};

std::string encode_repl_resync(const ReplResync& resync);
bool decode_repl_resync(const std::string& payload, ReplResync* out);

}  // namespace powerlim::serve
