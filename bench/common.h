// Shared harness code for the per-figure bench binaries.
//
// Every binary reproduces one table or figure from the paper's evaluation
// (see DESIGN.md's experiment index) and prints the same rows/series the
// paper reports. Absolute seconds differ - the substrate is a simulator,
// not Cab - but the series *shape* (who wins, by roughly what factor,
// where the crossovers sit) is the reproduction target; EXPERIMENTS.md
// records paper-vs-measured for each.
//
// All binaries accept:  [--ranks N] [--iterations N] [--csv]
//                       [--json FILE]  (machine-readable artifact for CI)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/windowed.h"
#include "machine/power_model.h"
#include "runtime/comparison.h"
#include "util/table.h"

namespace powerlim::bench {

struct BenchArgs {
  int ranks = 8;
  int iterations = 12;
  bool csv = false;
  /// When set, emit() also writes the table as a JSON artifact here
  /// (e.g. CI's BENCH_headline.json).
  std::string json_path;
};

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ranks") == 0 && i + 1 < argc) {
      args.ranks = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--iterations") == 0 && i + 1 < argc) {
      args.iterations = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      args.csv = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      args.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: %s [--ranks N] [--iterations N] [--csv] [--json FILE]\n",
          argv[0]);
      std::exit(0);
    }
  }
  return args;
}

inline void emit(const util::Table& table, const BenchArgs& args) {
  if (args.csv) {
    std::fputs(table.to_csv().c_str(), stdout);
  } else {
    std::fputs(table.to_string().c_str(), stdout);
  }
  if (!args.json_path.empty()) {
    std::FILE* f = std::fopen(args.json_path.c_str(), "w");
    if (f) {
      std::fputs(table.to_json().c_str(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "cannot write %s\n", args.json_path.c_str());
    }
  }
}

/// The machine every bench runs on (defaults model Cab's Xeon E5-2670).
inline const machine::PowerModel& model() {
  static const machine::PowerModel m{machine::SocketSpec{}};
  return m;
}

inline const machine::ClusterSpec& cluster() {
  static const machine::ClusterSpec c{};
  return c;
}

/// Runs the three-way comparison for one trace and per-socket cap. Pass
/// a prebuilt WindowSweeper when sweeping many caps over one trace.
inline runtime::ComparisonResult run_cap(
    const dag::TaskGraph& graph, double socket_watts,
    const core::WindowSweeper* sweeper = nullptr) {
  runtime::ComparisonOptions o;
  o.job_cap_watts = socket_watts * graph.num_ranks();
  return runtime::compare_methods(graph, model(), cluster(), o, nullptr,
                                  sweeper);
}

/// Per-socket cap grids used by the paper's figures.
inline std::vector<double> caps_30_to_80() {
  return {30, 35, 40, 45, 50, 55, 60, 65, 70, 75, 80};
}
inline std::vector<double> caps_40_to_80() {
  return {40, 45, 50, 55, 60, 65, 70, 75, 80};
}
inline std::vector<double> caps_30_to_70() {
  return {30, 35, 40, 45, 50, 55, 60, 65, 70};
}

inline std::string fmt(double v, int digits = 2) {
  return util::Table::num(v, digits);
}

/// Shared body of the per-application figures (11, 13, 14, 15): LP and
/// Conductor improvement over Static across a cap grid.
inline void per_app_figure(const char* figure, const char* app_name,
                           const dag::TaskGraph& graph,
                           const std::vector<double>& caps,
                           const BenchArgs& args) {
  std::printf("== %s: %s improvement vs. Static (%%) ==\n", figure, app_name);
  std::printf("ranks=%d iterations taken from trace (first 3 discarded)\n\n",
              graph.num_ranks());
  util::Table t({"socket_w", "LP", "Conductor", "static_s", "conductor_s",
                 "lp_s"});
  const core::WindowSweeper sweeper(graph, model(), cluster());
  for (double cap : caps) {
    const runtime::ComparisonResult r = run_cap(graph, cap, &sweeper);
    if (!r.lp.feasible) {
      t.add_row({fmt(cap, 0), "n/s", "n/s", "-", "-", "-"});
      continue;
    }
    t.add_row({fmt(cap, 0), fmt(r.lp_vs_static(), 1),
               fmt(r.conductor_vs_static(), 1),
               fmt(r.static_alloc.window_seconds, 2),
               fmt(r.conductor.window_seconds, 2),
               fmt(r.lp.window_seconds, 2)});
  }
  emit(t, args);
}

}  // namespace powerlim::bench
