// Headline aggregates (abstract + Section 6 summary).
//
// Paper numbers over the full app x cap grid:
//   * Static trails near-optimal LP performance by up to 74.9% (BT, 30 W);
//   * current reallocation systems (Conductor) trail the LP by up to 41.1%;
//   * Conductor improves on Static by 6.7% on average;
//   * the LP indicates 10.8% average potential improvement over Static;
//   * Conductor's worst regression vs Static is -2.6% (SP).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/benchmarks.h"
#include "bench/common.h"
#include "util/stats.h"

using namespace powerlim;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);

  struct App {
    const char* name;
    dag::TaskGraph graph;
    std::vector<double> caps;
  };
  std::vector<App> grid;
  grid.push_back({"BT",
                  apps::make_bt({.ranks = args.ranks,
                                 .iterations = args.iterations}),
                  bench::caps_30_to_70()});
  grid.push_back({"CoMD",
                  apps::make_comd({.ranks = args.ranks,
                                   .iterations = args.iterations}),
                  bench::caps_30_to_80()});
  grid.push_back({"LULESH",
                  apps::make_lulesh({.ranks = args.ranks,
                                     .iterations = args.iterations}),
                  bench::caps_40_to_80()});
  grid.push_back({"SP",
                  apps::make_sp({.ranks = args.ranks,
                                 .iterations = args.iterations}),
                  bench::caps_40_to_80()});

  std::vector<double> lp_vs_static, lp_vs_cond, cond_vs_static;
  std::string argmax_static = "-", argmax_cond = "-";
  double max_static = -1e9, max_cond = -1e9, worst_cond = 1e9;
  std::string argworst_cond = "-";

  for (const App& app : grid) {
    const core::WindowSweeper sweeper(app.graph, bench::model(),
                                      bench::cluster());
    for (double cap : app.caps) {
      const auto r = bench::run_cap(app.graph, cap, &sweeper);
      if (!r.lp.feasible) continue;
      const std::string where =
          std::string(app.name) + "@" + bench::fmt(cap, 0) + "W";
      lp_vs_static.push_back(r.lp_vs_static());
      lp_vs_cond.push_back(r.lp_vs_conductor());
      cond_vs_static.push_back(r.conductor_vs_static());
      if (r.lp_vs_static() > max_static) {
        max_static = r.lp_vs_static();
        argmax_static = where;
      }
      if (r.lp_vs_conductor() > max_cond) {
        max_cond = r.lp_vs_conductor();
        argmax_cond = where;
      }
      if (r.conductor_vs_static() < worst_cond) {
        worst_cond = r.conductor_vs_static();
        argworst_cond = where;
      }
    }
  }

  std::printf("== Headline aggregates over the full grid "
              "(%zu feasible points) ==\n\n",
              lp_vs_static.size());
  util::Table t({"metric", "measured", "paper", "at"});
  t.add_row({"max LP-over-Static", bench::fmt(max_static, 1) + "%", "74.9%",
             argmax_static});
  t.add_row({"max LP-over-Conductor", bench::fmt(max_cond, 1) + "%", "41.1%",
             argmax_cond});
  t.add_row({"avg LP-over-Static", bench::fmt(util::mean(lp_vs_static), 1) +
                                       "%",
             "10.8%", "-"});
  t.add_row({"avg Conductor-over-Static",
             bench::fmt(util::mean(cond_vs_static), 1) + "%", "6.7%", "-"});
  t.add_row({"worst Conductor regression", bench::fmt(worst_cond, 1) + "%",
             "-2.6%", argworst_cond});
  bench::emit(t, args);
  return 0;
}
