// Figure 2: the paper's illustrative task graph and execution timeline
// for a simple application (Isend/Recv/Wait between two ranks).
//
// Not an evaluation figure - this regenerates the *illustration*: the DAG
// structure (2a) and a concrete timeline with tasks, slack and the message
// (2b), from the same micro-benchmark Figure 8 later sweeps.
#include <cstdio>

#include "apps/exchange.h"
#include "bench/common.h"
#include "dag/trace_io.h"
#include "runtime/static_policy.h"
#include "sim/export.h"

using namespace powerlim;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  (void)args;
  const dag::TaskGraph g = apps::two_rank_exchange();

  std::printf("== Figure 2a: application task graph ==\n\n");
  util::Table t({"edge", "kind", "rank", "src", "dst"});
  for (const dag::Edge& e : g.edges()) {
    t.add_row({"A" + std::to_string(e.id + 1),
               e.is_task() ? "task" : "message",
               e.is_task() ? std::to_string(e.rank) : "-",
               g.vertex(e.src).label, g.vertex(e.dst).label});
  }
  std::printf("%s\n", t.to_string().c_str());

  std::printf("== Figure 2b: one execution timeline (Static @ 50 W) ==\n\n");
  runtime::StaticPolicy policy(bench::model(), 50.0);
  sim::EngineOptions eo;
  eo.cluster = bench::cluster();
  eo.idle_power = bench::model().idle_power();
  const sim::SimResult res = sim::simulate(g, policy, eo);
  std::printf("%s", sim::ascii_timeline(g, res, 76).c_str());
  std::printf("\nrank 1 blocks in Recv ('.') until rank 0's Isend lands - "
              "the slack the\npaper's LP later converts into power for the "
              "critical rank.\n");
  return 0;
}
