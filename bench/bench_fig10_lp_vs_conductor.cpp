// Figure 10: potential speedup of LP-derived schedules vs. Conductor.
//
// Paper shape: Conductor's distance to the LP is uncorrelated with the
// power cap; CoMD, SP and LULESH sit within a few percent of optimal, BT
// trails the most (24% at 30 W).
#include <cstdio>

#include "apps/benchmarks.h"
#include "bench/common.h"

using namespace powerlim;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);

  struct App {
    const char* name;
    dag::TaskGraph graph;
  };
  std::vector<App> apps_list;
  apps_list.push_back(
      {"BT", apps::make_bt({.ranks = args.ranks, .iterations = args.iterations})});
  apps_list.push_back({"CoMD", apps::make_comd({.ranks = args.ranks,
                                                .iterations = args.iterations})});
  apps_list.push_back({"LULESH", apps::make_lulesh({.ranks = args.ranks,
                                                    .iterations = args.iterations})});
  apps_list.push_back(
      {"SP", apps::make_sp({.ranks = args.ranks, .iterations = args.iterations})});

  std::printf("== Figure 10: LP vs. Conductor potential improvement (%%) ==\n");
  std::printf("ranks=%d iterations=%d (first 3 discarded)\n\n", args.ranks,
              args.iterations);
  // One sweeper per app: frontiers/events are built once per trace.
  std::vector<core::WindowSweeper> sweepers;
  for (const App& app : apps_list) {
    sweepers.emplace_back(app.graph, bench::model(), bench::cluster());
  }
  util::Table t({"socket_w", "BT", "CoMD", "LULESH", "SP"});
  for (double cap : bench::caps_30_to_80()) {
    std::vector<std::string> row{bench::fmt(cap, 0)};
    for (std::size_t a = 0; a < apps_list.size(); ++a) {
      const App& app = apps_list[a];
      const auto r = bench::run_cap(app.graph, cap, &sweepers[a]);
      row.push_back(r.lp.feasible ? bench::fmt(r.lp_vs_conductor(), 1)
                                  : "n/s");
    }
    t.add_row(row);
  }
  bench::emit(t, args);
  return 0;
}
