// Ablation: which ingredient of Conductor buys what?
//
// The paper discusses the decomposition qualitatively (Section 6):
// configuration selection alone has less overhead but loses the benefit of
// non-uniform power; reallocation is what attacks load imbalance. This
// bench isolates the ladder on an imbalanced app (BT) and a balanced one
// (SP):
//   Static                  uniform caps, 8 threads, RAPL only
//   Adagio                  + slack-directed slowdown (energy, not time)
//   Conductor -realloc      + Pareto configuration selection, uniform power
//   Conductor (full)        + per-rank power reallocation
//   LP bound                offline optimum
#include <cstdio>

#include "apps/benchmarks.h"
#include "bench/common.h"
#include "core/windowed.h"
#include "runtime/adagio.h"
#include "runtime/conductor.h"
#include "runtime/static_policy.h"
#include "sim/measure.h"
#include "sim/replay.h"

using namespace powerlim;

namespace {

struct Row {
  double seconds;
  double energy;
  double peak;
};

Row measure(const dag::TaskGraph& g, sim::Policy& policy,
            const sim::EngineOptions& eo) {
  const sim::SimResult r = sim::simulate(g, policy, eo);
  return {sim::steady_window_seconds(g, r, 3), r.energy_joules, r.peak_power};
}

void run_app(const char* name, const dag::TaskGraph& g, double socket,
             const bench::BenchArgs& args) {
  const double job_cap = socket * g.num_ranks();
  sim::EngineOptions eo;
  eo.cluster = bench::cluster();
  eo.idle_power = bench::model().idle_power();

  runtime::StaticPolicy st(bench::model(), socket);
  const Row r_static = measure(g, st, eo);

  runtime::AdagioPolicy ad(bench::model(), socket);
  const Row r_adagio = measure(g, ad, eo);

  runtime::ConductorOptions no_realloc;
  no_realloc.donation_rate = 0.0;
  runtime::ConductorPolicy cnr(bench::model(), g.num_ranks(), job_cap,
                               no_realloc);
  const Row r_cnr = measure(g, cnr, eo);

  runtime::ConductorPolicy cfull(bench::model(), g.num_ranks(), job_cap);
  const Row r_full = measure(g, cfull, eo);

  const auto lp = core::solve_windowed_lp(g, bench::model(), bench::cluster(),
                                          {.power_cap = job_cap});
  Row r_lp{0, 0, 0};
  if (lp.optimal()) {
    sim::ReplayOptions ro;
    ro.engine = eo;
    const sim::SimResult res = sim::replay_schedule(g, lp.schedule,
                                                    lp.frontiers, ro,
                                                    &lp.vertex_time);
    r_lp = {sim::steady_window_seconds(g, res, 3), res.energy_joules,
            res.peak_power};
  }

  std::printf("-- %s @ %.0f W/socket --\n", name, socket);
  util::Table t({"method", "time_s", "vs_static", "energy_kJ", "peak_w"});
  auto add = [&](const char* m, const Row& r) {
    t.add_row({m, bench::fmt(r.seconds, 2),
               util::Table::pct(r_static.seconds / r.seconds - 1.0, 1),
               bench::fmt(r.energy / 1e3, 2), bench::fmt(r.peak, 0)});
  };
  add("Static", r_static);
  add("Adagio", r_adagio);
  add("Conductor -realloc", r_cnr);
  add("Conductor", r_full);
  if (lp.optimal()) add("LP bound", r_lp);
  bench::emit(t, args);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  if (args.iterations < 12) args.iterations = 16;
  std::printf("== Ablation: Conductor's ingredients ==\n\n");
  const dag::TaskGraph bt =
      apps::make_bt({.ranks = args.ranks, .iterations = args.iterations});
  const dag::TaskGraph sp =
      apps::make_sp({.ranks = args.ranks, .iterations = args.iterations});
  for (double socket : {35.0, 50.0}) {
    run_app("BT (imbalanced)", bt, socket, args);
    run_app("SP (balanced)", sp, socket, args);
  }
  std::printf("expected shape: reallocation is what wins on BT; on SP every "
              "adaptive layer\ncan only add overhead (the paper's Figure 14 "
              "story). Adagio cuts energy, not time.\n");
  return 0;
}
