// powerlimd service-level benchmark.
//
// Boots a real daemon on an ephemeral port, drives it with the loadgen
// fleet (>= 8 concurrent client processes, each running sequential
// bound/sweep requests over its own connection), and reports the
// numbers an admission-controlled service is judged by: served /
// overloaded / error counts, p50/p99/mean latency of served requests,
// and throughput. Three scenarios per run: a clean fleet, a fleet
// sharing the daemon with a net-stall saboteur (partial frame held open
// past the handshake timeout), and one with a slow-read saboteur
// (submits, never reads). The saboteur rows demonstrate containment:
// honest-client numbers should not collapse.
//
// CI archives the --json artifact as BENCH_serve.json.
#include <signal.h>
#include <stdlib.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "apps/benchmarks.h"
#include "bench/common.h"
#include "dag/trace_io.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "util/deadline.h"
#include "util/socket_io.h"

using namespace powerlim;

namespace {

util::CancelToken g_daemon_cancel;
extern "C" void handle_term(int) { g_daemon_cancel.cancel(); }

/// Forks a powerlimd bound to an ephemeral port; returns its pid and
/// fills `endpoint` once the port file appears.
pid_t spawn_daemon(const std::string& dir, util::Endpoint* endpoint) {
  const std::string port_file = dir + "/port";
  const pid_t pid = ::fork();
  if (pid < 0) return -1;
  if (pid == 0) {
    struct sigaction sa = {};
    sa.sa_handler = handle_term;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGTERM, &sa, nullptr);
    serve::ServeOptions so;
    so.listen = "127.0.0.1:0";
    so.port_file = port_file;
    so.state_dir = dir + "/state";
    so.max_active = 2;
    so.cancel = &g_daemon_cancel;
    std::ostringstream sink;
    ::_exit(serve::serve(so, bench::model(), bench::cluster(), sink, sink));
  }
  for (int i = 0; i < 100; ++i) {
    std::FILE* f = std::fopen(port_file.c_str(), "r");
    if (f) {
      int port = 0;
      const bool got = std::fscanf(f, "%d", &port) == 1;
      std::fclose(f);
      if (got && port > 0) {
        endpoint->host = "127.0.0.1";
        endpoint->port = port;
        return pid;
      }
    }
    ::usleep(100 * 1000);
  }
  ::kill(pid, SIGKILL);
  ::waitpid(pid, nullptr, 0);
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);

  const dag::TaskGraph graph = apps::make_comd(
      {.ranks = args.ranks, .iterations = args.iterations});
  std::ostringstream trace;
  dag::write_trace(trace, graph);

  char dir_template[] = "/tmp/bench_serve.XXXXXX";
  const char* dir = ::mkdtemp(dir_template);
  if (dir == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }

  util::Endpoint endpoint;
  const pid_t daemon = spawn_daemon(dir, &endpoint);
  if (daemon < 0) {
    std::fprintf(stderr, "daemon failed to start\n");
    return 1;
  }

  std::printf("== powerlimd under load (CoMD, ranks=%d) ==\n", args.ranks);
  std::printf("daemon at %s, 8 clients x 3 requests per scenario\n\n",
              util::to_string(endpoint).c_str());

  util::Table t({"scenario", "ok", "overloaded", "errors", "p50_ms",
                 "p99_ms", "mean_ms", "throughput_rps"});
  const std::vector<std::string> scenarios = {"clean", "net-stall",
                                              "slow-read"};
  bool any_served = false;
  for (const std::string& scenario : scenarios) {
    serve::LoadgenOptions lo;
    lo.server = endpoint;
    lo.clients = 8;
    lo.requests = 3;
    for (double w : {60.0, 70.0, 80.0}) {
      lo.caps.push_back(w * graph.num_ranks());
    }
    lo.trace_text = trace.str();
    if (scenario != "clean") lo.inject = scenario;
    std::ostringstream progress;
    const serve::LoadgenReport r = serve::run_loadgen(lo, progress);
    any_served |= r.ok > 0;
    t.add_row({scenario, std::to_string(r.ok), std::to_string(r.overloaded),
               std::to_string(r.errors), bench::fmt(r.p50_ms, 2),
               bench::fmt(r.p99_ms, 2), bench::fmt(r.mean_ms, 2),
               bench::fmt(r.throughput_rps, 2)});
  }
  bench::emit(t, args);

  ::kill(daemon, SIGTERM);
  int status = 0;
  (void)::waitpid(daemon, &status, 0);
  const bool clean_exit = WIFEXITED(status) && WEXITSTATUS(status) == 0;
  if (!clean_exit) std::fprintf(stderr, "daemon did not drain cleanly\n");
  return any_served && clean_exit ? 0 : 1;
}
