// powerlimd failover benchmark: what an outage actually costs clients.
//
// Boots a real primary + warm-standby pair per trial, primes replicated
// state with a small sweep, SIGKILLs the primary, and measures the two
// numbers a high-availability story is judged by:
//
//   promote_ms   promotion latency: SIGKILL -> the standby answering
//                handshakes as the primary (operator `promote` round
//                trip, or --promote-after-ms heartbeat-loss detection);
//   downtime_ms  client-visible downtime: SIGKILL -> a failover-aware
//                client (--endpoints walk) getting a served reply
//                again. Repeat queries of journal-proven caps are
//                served read-only by the standby *before* promotion,
//                so read downtime is an endpoint walk, not a failover.
//
// Two scenarios, p50/p99 over the trials: "operator" (explicit
// `powerlim promote`) and "heartbeat-loss" (standby self-promotes after
// --promote-after-ms of primary silence - its floor is that threshold).
//
// CI archives the --json artifact as BENCH_failover.json.
#include <signal.h>
#include <stdlib.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/benchmarks.h"
#include "bench/common.h"
#include "dag/trace_io.h"
#include "serve/client.h"
#include "serve/repl.h"
#include "serve/server.h"
#include "util/deadline.h"
#include "util/socket_io.h"
#include "util/stats.h"

using namespace powerlim;

namespace {

constexpr int kTrials = 6;
constexpr double kPromoteAfterMs = 250.0;

util::CancelToken g_daemon_cancel;
extern "C" void handle_term(int) { g_daemon_cancel.cancel(); }

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

/// Forks one powerlimd; `standby_of` empty = primary. Returns the pid
/// and fills `endpoint` once the port file appears, or -1.
pid_t spawn_daemon(const std::string& dir, const std::string& state_dir,
                   const std::string& standby_of, double promote_after_ms,
                   util::Endpoint* endpoint) {
  static int counter = 0;
  const std::string port_file = dir + "/port" + std::to_string(counter++);
  const pid_t pid = ::fork();
  if (pid < 0) return -1;
  if (pid == 0) {
    struct sigaction sa = {};
    sa.sa_handler = handle_term;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGTERM, &sa, nullptr);
    serve::ServeOptions so;
    so.listen = "127.0.0.1:0";
    so.port_file = port_file;
    so.state_dir = state_dir;
    so.max_active = 1;
    so.standby_of = standby_of;
    so.promote_after_ms = promote_after_ms;
    so.repl_heartbeat_ms = 25.0;
    so.cancel = &g_daemon_cancel;
    std::ostringstream sink;
    ::_exit(serve::serve(so, bench::model(), bench::cluster(), sink, sink));
  }
  for (int i = 0; i < 200; ++i) {
    std::FILE* f = std::fopen(port_file.c_str(), "r");
    if (f) {
      int port = 0;
      const bool got = std::fscanf(f, "%d", &port) == 1;
      std::fclose(f);
      if (got && port > 0) {
        endpoint->host = "127.0.0.1";
        endpoint->port = port;
        return pid;
      }
    }
    ::usleep(50 * 1000);
  }
  ::kill(pid, SIGKILL);
  ::waitpid(pid, nullptr, 0);
  return -1;
}

void reap(pid_t pid, int sig) {
  if (pid <= 0) return;
  ::kill(pid, sig);
  ::waitpid(pid, nullptr, 0);
}

/// All replicated journals byte-identical between the two state dirs.
bool caught_up(const std::string& a, const std::string& b) {
  const std::vector<std::string> hashes = serve::journal_hashes(a);
  if (hashes.empty() || hashes != serve::journal_hashes(b)) return false;
  for (const std::string& h : hashes) {
    if (slurp(serve::journal_path(a, h)) != slurp(serve::journal_path(b, h)))
      return false;
  }
  return true;
}

struct TrialSamples {
  double promote_ms = -1.0;
  double downtime_ms = -1.0;
  bool ok = false;
};

/// One boot-prime-kill-failover cycle.
TrialSamples run_trial(const std::string& base, int index, bool operator_mode,
                       const std::string& trace_text,
                       const std::vector<double>& caps) {
  TrialSamples s;
  const std::string dir =
      base + "/" + (operator_mode ? "op" : "hb") + std::to_string(index);
  ::mkdir(dir.c_str(), 0755);
  util::Endpoint ep_p, ep_s;
  const pid_t primary =
      spawn_daemon(dir, dir + "/p", "", 0.0, &ep_p);
  if (primary < 0) return s;
  const pid_t standby =
      spawn_daemon(dir, dir + "/s", util::to_string(ep_p),
                   operator_mode ? 0.0 : kPromoteAfterMs, &ep_s);
  if (standby < 0) {
    reap(primary, SIGKILL);
    return s;
  }

  // Prime: solve the caps once on the primary, wait for the standby's
  // replica to be byte-identical.
  serve::ServeRequest req;
  req.id = "prime";
  req.kind = "sweep";
  req.caps = caps;
  req.trace_text = trace_text;
  serve::FailoverClient prime({ep_p});
  const serve::FailoverResult primed = prime.request(req);
  bool replicated = false;
  if (primed.result.status == serve::CollectStatus::kDone) {
    for (int i = 0; i < 2000 && !replicated; ++i) {
      replicated = caught_up(dir + "/p", dir + "/s");
      if (!replicated) ::usleep(5 * 1000);
    }
  }
  if (!replicated) {
    reap(primary, SIGKILL);
    reap(standby, SIGKILL);
    return s;
  }

  const double t0 = now_ms();
  ::kill(primary, SIGKILL);
  ::waitpid(primary, nullptr, 0);

  // Client-visible downtime: a failover-aware repeat query (the dead
  // primary listed first) until a served reply. The standby serves
  // journal-proven caps read-only, so this settles pre-promotion.
  for (int attempt = 0; s.downtime_ms < 0 && attempt < 200; ++attempt) {
    serve::ServeRequest rq = req;
    rq.id = "rq" + std::to_string(attempt);
    serve::FailoverClient fc({ep_p, ep_s});
    const serve::FailoverResult got =
        fc.request(rq, /*connect_timeout_s=*/1.0, /*wall_timeout_s=*/30.0,
                   /*rounds=*/1, /*retry_backoff_s=*/0.0);
    if (got.result.status == serve::CollectStatus::kDone &&
        got.result.rows.size() == caps.size()) {
      s.downtime_ms = now_ms() - t0;
    }
  }

  // Promotion latency: until the standby answers handshakes as primary.
  if (operator_mode) {
    serve::ServeClient op;
    std::uint64_t epoch = 0;
    if (op.connect(ep_s).ok() && op.promote(&epoch).ok() && epoch >= 2) {
      s.promote_ms = now_ms() - t0;
    }
  } else {
    for (int i = 0; i < 2000 && s.promote_ms < 0; ++i) {
      serve::ServeClient probe;
      if (probe.connect(ep_s, 1.0).ok() && probe.role() == "primary") {
        s.promote_ms = now_ms() - t0;
      } else {
        ::usleep(5 * 1000);
      }
    }
  }

  reap(standby, SIGTERM);
  s.ok = s.promote_ms >= 0 && s.downtime_ms >= 0;
  return s;
}

std::string pct(std::vector<double> xs, double p) {
  if (xs.empty()) return "-";
  return bench::fmt(util::percentile(xs, p), 1);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);

  const dag::TaskGraph graph = apps::make_comd({.ranks = 2, .iterations = 3});
  std::ostringstream trace;
  dag::write_trace(trace, graph);
  std::vector<double> caps;
  for (double w : {60.0, 70.0}) caps.push_back(w * graph.num_ranks());

  char dir_template[] = "/tmp/bench_failover.XXXXXX";
  const char* base = ::mkdtemp(dir_template);
  if (base == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }

  std::printf("== powerlimd failover: promotion latency and downtime ==\n");
  std::printf(
      "%d trials per scenario; heartbeat 25 ms, --promote-after-ms %.0f\n\n",
      kTrials, kPromoteAfterMs);

  util::Table t({"scenario", "trials", "promote_p50_ms", "promote_p99_ms",
                 "downtime_p50_ms", "downtime_p99_ms"});
  bool all_ok = true;
  for (const bool operator_mode : {true, false}) {
    std::vector<double> promote, downtime;
    for (int i = 0; i < kTrials; ++i) {
      const TrialSamples s =
          run_trial(base, i, operator_mode, trace.str(), caps);
      if (!s.ok) {
        all_ok = false;
        continue;
      }
      promote.push_back(s.promote_ms);
      downtime.push_back(s.downtime_ms);
    }
    t.add_row({operator_mode ? "operator" : "heartbeat-loss",
               std::to_string(promote.size()), pct(promote, 50),
               pct(promote, 99), pct(downtime, 50), pct(downtime, 99)});
  }
  bench::emit(t, args);
  return all_ok ? 0 : 1;
}
