// Robustness: are the reproduction's conclusions an artifact of the
// analytic machine model's constants? Re-runs the headline comparison
// (BT @ 30 W/socket: LP >> Conductor > Static) while perturbing the
// power-model parameters over wide ranges.
//
// Expected: magnitudes move, the ordering and the "largest gains at the
// lowest caps" shape do not.
#include <cstdio>

#include "apps/benchmarks.h"
#include "bench/common.h"
#include "runtime/comparison.h"

using namespace powerlim;

namespace {

struct Variant {
  const char* name;
  machine::SocketSpec spec;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const dag::TaskGraph g =
      apps::make_bt({.ranks = args.ranks, .iterations = args.iterations});

  std::vector<Variant> variants;
  variants.push_back({"baseline", machine::SocketSpec{}});
  {
    machine::SocketSpec s;
    s.p_static = 10.0;
    variants.push_back({"low leakage (p_static 10W)", s});
  }
  {
    machine::SocketSpec s;
    s.p_static = 22.0;
    variants.push_back({"high leakage (p_static 22W)", s});
  }
  {
    machine::SocketSpec s;
    s.alpha = 2.0;
    variants.push_back({"shallow DVFS curve (alpha 2.0)", s});
  }
  {
    machine::SocketSpec s;
    s.alpha = 3.0;
    variants.push_back({"steep DVFS curve (alpha 3.0)", s});
  }
  {
    machine::SocketSpec s;
    s.p_uncore_max = 16.0;
    variants.push_back({"heavy uncore (16W)", s});
  }
  {
    machine::SocketSpec s;
    s.f_vmin_ghz = 1.2;  // no voltage floor within the DVFS range
    variants.push_back({"no voltage floor", s});
  }

  std::printf("== Sensitivity: BT @ 30 & 50 W/socket under model "
              "perturbations ==\n\n");
  util::Table t({"model variant", "cap_w", "LP_vs_static", "cond_vs_static",
                 "ordering"});
  for (const Variant& var : variants) {
    const machine::PowerModel model{var.spec};
    for (double cap : {30.0, 50.0}) {
      runtime::ComparisonOptions o;
      o.job_cap_watts = cap * args.ranks;
      const auto r =
          runtime::compare_methods(g, model, bench::cluster(), o);
      if (!r.lp.feasible) {
        t.add_row({var.name, bench::fmt(cap, 0), "n/s", "n/s", "-"});
        continue;
      }
      const bool ordered =
          r.lp.window_seconds <= r.conductor.window_seconds * 1.005 &&
          r.conductor.window_seconds <=
              r.static_alloc.window_seconds * 1.005;
      t.add_row({var.name, bench::fmt(cap, 0),
                 bench::fmt(r.lp_vs_static(), 1) + "%",
                 bench::fmt(r.conductor_vs_static(), 1) + "%",
                 ordered ? "LP<=Cond<=Static holds" : "VIOLATED"});
    }
  }
  bench::emit(t, args);
  std::printf(
      "\nlow-cap gains must exceed 50 W gains in every variant for the "
      "paper's\n\"largest advantages at low power\" claim to be "
      "model-robust.\n\nexpected exception: when the cap sits barely above "
      "the leakage floor\n(high-leakage @ 30 W leaves ~8 W of dynamic "
      "headroom), any runtime that\never slows a task loses to do-nothing "
      "Static - the same mechanism behind\nthe paper's SP regressions, "
      "amplified. The LP bound stays correctly ordered.\n");
  return 0;
}
