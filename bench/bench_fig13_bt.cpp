// Figure 13: BT - LP and Conductor improvement over Static.
//
// Paper shape: at 30 W Static trails the LP by ~75% and Conductor by ~50%
// (i.e. LP leads Conductor by ~24%); the three converge within ~5% at
// high caps. The gains come from non-uniform power allocation against
// BT-MZ's strong, stable zone imbalance.
#include "apps/benchmarks.h"
#include "bench/common.h"

using namespace powerlim;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const dag::TaskGraph g =
      apps::make_bt({.ranks = args.ranks, .iterations = args.iterations});
  bench::per_app_figure("Figure 13", "BT", g, bench::caps_30_to_70(), args);
  return 0;
}
