// Figure 15: LULESH - LP and Conductor improvement over Static.
//
// Paper shape: the LP shows >14% headroom over Static at every cap
// (35.6% at 40 W); Conductor achieves ~99% of the LP's performance and
// even matches its schedule at 50 W - both pick 4-5 threads where Static
// is stuck at 8 and loses to cache contention.
#include "apps/benchmarks.h"
#include "bench/common.h"

using namespace powerlim;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const dag::TaskGraph g =
      apps::make_lulesh({.ranks = args.ranks, .iterations = args.iterations});
  bench::per_app_figure("Figure 15", "LULESH", g, bench::caps_40_to_80(),
                        args);
  return 0;
}
