// Table 3: task characteristics for a single iteration of LULESH at an
// average of 50 W per processor, long-running tasks only.
//
// Paper values (for scale, on Cab):
//   method     median_time  stdev_power  threads  median_freq
//   Static     4.889        0.009        8        0.8834
//   Conductor  3.614        0.118        5        0.9942
//   LP         3.611        0.125        4-5      1.0
// Shape targets: Static pinned at 8 threads with depressed frequency and
// near-zero cross-socket power spread; Conductor and the LP pick 4-5
// threads at (near-)full frequency with a visible power spread, and their
// median times nearly coincide, well below Static's.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/benchmarks.h"
#include "bench/common.h"
#include "core/windowed.h"
#include "runtime/conductor.h"
#include "runtime/static_policy.h"
#include "sim/replay.h"
#include "util/stats.h"

using namespace powerlim;

namespace {

struct RowStats {
  double median_time = 0;
  double stdev_power = 0;
  double median_threads = 0;
  double min_threads = 0, max_threads = 0;
  double median_freq_norm = 0;
  int count = 0;
};

RowStats collect(const dag::TaskGraph& g, const sim::SimResult& res,
                 int iteration, double min_duration) {
  std::vector<double> times, powers, threads, freqs;
  for (const dag::Edge& e : g.edges()) {
    if (!e.is_task() || e.iteration != iteration) continue;
    const sim::TaskRecord& t = res.tasks[e.id];
    if (t.duration() < min_duration) continue;
    times.push_back(t.duration());
    powers.push_back(t.power);
    threads.push_back(t.threads);
    freqs.push_back(t.ghz / 2.6);
  }
  RowStats out;
  out.count = static_cast<int>(times.size());
  out.median_time = util::median(times);
  out.stdev_power = util::stdev(powers);
  out.median_threads = util::median(threads);
  if (!threads.empty()) {
    out.min_threads = *std::min_element(threads.begin(), threads.end());
    out.max_threads = *std::max_element(threads.begin(), threads.end());
  }
  out.median_freq_norm = util::median(freqs);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  if (args.iterations < 10) args.iterations = 12;
  const double socket = 50.0;
  const dag::TaskGraph g = apps::make_lulesh(
      {.ranks = args.ranks, .iterations = args.iterations});
  const double job_cap = socket * args.ranks;
  const int probe_iteration = args.iterations - 3;  // steady state

  sim::EngineOptions eo;
  eo.cluster = bench::cluster();
  eo.idle_power = bench::model().idle_power();

  runtime::StaticPolicy st(bench::model(), socket);
  const sim::SimResult rs = sim::simulate(g, st, eo);

  runtime::ConductorPolicy cond(bench::model(), args.ranks, job_cap);
  const sim::SimResult rc = sim::simulate(g, cond, eo);

  const auto lp = core::solve_windowed_lp(g, bench::model(), bench::cluster(),
                                          {.power_cap = job_cap});
  if (!lp.optimal()) {
    std::printf("LP infeasible\n");
    return 1;
  }
  sim::ReplayOptions ro;
  ro.engine = eo;
  const sim::SimResult rl =
      sim::replay_schedule(g, lp.schedule, lp.frontiers, ro, &lp.vertex_time);

  // "Long-running": at least half the median Static main-phase task.
  std::vector<double> st_durs;
  for (const dag::Edge& e : g.edges()) {
    if (e.is_task() && e.iteration == probe_iteration) {
      st_durs.push_back(rs.tasks[e.id].duration());
    }
  }
  std::sort(st_durs.begin(), st_durs.end());
  const double threshold = 0.5 * st_durs[st_durs.size() / 2 + st_durs.size() / 4];

  const RowStats a = collect(g, rs, probe_iteration, threshold);
  const RowStats b = collect(g, rc, probe_iteration, threshold);
  const RowStats c = collect(g, rl, probe_iteration, threshold);

  std::printf("== Table 3: LULESH single iteration @ %.0f W/socket "
              "(job cap %.0f W), long tasks only ==\n\n",
              socket, job_cap);
  util::Table t({"method", "median_time_s", "stdev_power_w", "threads",
                 "median_freq_norm", "tasks"});
  auto thread_str = [](const RowStats& r) {
    if (r.min_threads == r.max_threads) {
      return bench::fmt(r.median_threads, 0);
    }
    return bench::fmt(r.min_threads, 0) + "-" + bench::fmt(r.max_threads, 0);
  };
  t.add_row({"Static", bench::fmt(a.median_time, 3),
             bench::fmt(a.stdev_power, 3), thread_str(a),
             bench::fmt(a.median_freq_norm, 4), std::to_string(a.count)});
  t.add_row({"Conductor", bench::fmt(b.median_time, 3),
             bench::fmt(b.stdev_power, 3), thread_str(b),
             bench::fmt(b.median_freq_norm, 4), std::to_string(b.count)});
  t.add_row({"LP", bench::fmt(c.median_time, 3), bench::fmt(c.stdev_power, 3),
             thread_str(c), bench::fmt(c.median_freq_norm, 4),
             std::to_string(c.count)});
  bench::emit(t, args);

  std::printf("\nshape checks:\n");
  std::printf("  Static at 8 threads: %s\n",
              a.median_threads == 8 ? "yes" : "NO");
  std::printf("  Conductor/LP below 8 threads: %s\n",
              (b.median_threads < 8 && c.median_threads < 8) ? "yes" : "NO");
  std::printf("  Conductor/LP frequency above Static's: %s\n",
              (b.median_freq_norm > a.median_freq_norm &&
               c.median_freq_norm > a.median_freq_norm)
                  ? "yes"
                  : "NO");
  std::printf("  power spread (stdev) larger for Conductor/LP: %s\n",
              (b.stdev_power > a.stdev_power && c.stdev_power > a.stdev_power)
                  ? "yes"
                  : "NO");
  std::printf("  Conductor median time within 2%% of LP: %s\n",
              b.median_time <= c.median_time * 1.02 ? "yes" : "NO");
  return 0;
}
