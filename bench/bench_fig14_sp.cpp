// Figure 14: SP - LP and Conductor improvement over Static.
//
// Paper shape: SP is well balanced, so the LP shows little room; Conductor
// *lags* Static slightly (average -1.5%, worst -2.6%) because it
// misidentifies the critical path under SP's uncorrelated per-iteration
// noise and pays DVFS + reallocation overheads.
#include "apps/benchmarks.h"
#include "bench/common.h"

using namespace powerlim;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const dag::TaskGraph g =
      apps::make_sp({.ranks = args.ranks, .iterations = args.iterations});
  bench::per_app_figure("Figure 14", "SP", g, bench::caps_40_to_80(), args);
  return 0;
}
