// Ablation: the LP pipeline's own design choices.
//
//  1. Windowed vs. monolithic solve - same objective, wildly different
//     cost (the barrier decomposition of dag/windows.h).
//  2. Paced vs. unpaced replay - pacing each MPI call to its scheduled
//     time is what keeps p2p traces under the cap.
//  3. Continuous mixtures vs. discrete rounding - what realizability
//     costs (Section 3.2's two modes).
//  4. Slack-power assumption - the LP charges slack at task power
//     (Section 3.3); an idle-slack machine would leave this much margin.
#include <chrono>
#include <cstdio>

#include "apps/benchmarks.h"
#include "bench/common.h"
#include "core/lp_formulation.h"
#include "core/windowed.h"
#include "runtime/static_policy.h"
#include "sim/power_window.h"
#include "sim/replay.h"

using namespace powerlim;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  const dag::TaskGraph g = apps::make_lulesh(
      {.ranks = args.ranks, .iterations = args.iterations});
  const double socket = 45.0;
  const double cap = socket * args.ranks;

  std::printf("== Ablation: LP pipeline design choices (LULESH, %d ranks, "
              "%d iterations, %.0f W/socket) ==\n\n",
              args.ranks, args.iterations, socket);

  // 1. Windowed vs monolithic.
  auto t0 = std::chrono::steady_clock::now();
  const auto windowed = core::solve_windowed_lp(g, bench::model(),
                                                bench::cluster(),
                                                {.power_cap = cap});
  const double t_windowed = seconds_since(t0);
  t0 = std::chrono::steady_clock::now();
  const core::LpFormulation mono(g, bench::model(), bench::cluster());
  const auto mono_res = mono.solve({.power_cap = cap});
  const double t_mono = seconds_since(t0);
  util::Table t1({"solve", "objective_s", "wall_s", "simplex_iters"});
  t1.add_row({"windowed (default)", bench::fmt(windowed.makespan, 4),
              bench::fmt(t_windowed, 3), std::to_string(windowed.iterations)});
  t1.add_row({"monolithic (paper form)", bench::fmt(mono_res.makespan, 4),
              bench::fmt(t_mono, 3), std::to_string(mono_res.iterations)});
  bench::emit(t1, args);
  std::printf("objective agreement: %.4f%%\n\n",
              (windowed.makespan / mono_res.makespan - 1.0) * 100.0);

  // 2. Paced vs unpaced replay.
  sim::ReplayOptions ro;
  ro.engine.cluster = bench::cluster();
  ro.engine.idle_power = bench::model().idle_power();
  const auto paced = sim::replay_schedule(g, windowed.schedule,
                                          windowed.frontiers, ro,
                                          &windowed.vertex_time);
  const auto unpaced = sim::replay_schedule(g, windowed.schedule,
                                            windowed.frontiers, ro, nullptr);
  util::Table t2({"replay", "time_s", "peak_w", "over_cap_ms",
                  "rapl_10ms_avg_w"});
  t2.add_row({"paced (default)", bench::fmt(paced.makespan, 4),
              bench::fmt(paced.peak_power, 2),
              bench::fmt(paced.violation_seconds(cap) * 1e3, 3),
              bench::fmt(sim::max_windowed_power(paced, 0.01), 2)});
  t2.add_row({"unpaced (ASAP)", bench::fmt(unpaced.makespan, 4),
              bench::fmt(unpaced.peak_power, 2),
              bench::fmt(unpaced.violation_seconds(cap) * 1e3, 3),
              bench::fmt(sim::max_windowed_power(unpaced, 0.01), 2)});
  bench::emit(t2, args);
  std::printf("(identical rows are themselves a finding: the LP stretches "
              "non-critical tasks\nto fill their spans, so the ASAP replay "
              "already lands on the scheduled times\nand pacing acts as a "
              "safety net for degenerate/rounded schedules)\n\n");

  // 3. Continuous vs discrete rounding.
  const core::TaskSchedule rounded =
      core::round_to_discrete(windowed.schedule, windowed.frontiers);
  const auto replay_rounded = sim::replay_schedule(g, rounded,
                                                   windowed.frontiers, ro,
                                                   nullptr);
  util::Table t3({"configurations", "time_s", "peak_w", "rapl_10ms_avg_w"});
  t3.add_row({"continuous mixtures", bench::fmt(paced.makespan, 4),
              bench::fmt(paced.peak_power, 2),
              bench::fmt(sim::max_windowed_power(paced, 0.01), 2)});
  t3.add_row({"discrete rounding", bench::fmt(replay_rounded.makespan, 4),
              bench::fmt(replay_rounded.peak_power, 2),
              bench::fmt(sim::max_windowed_power(replay_rounded, 0.01), 2)});
  bench::emit(t3, args);
  std::printf("(discrete rounding may drift off the cap in either direction; "
              "the paper's\nvalidation replays both modes)\n\n");

  // 4. Slack power assumption - measured on a Static run, which (unlike
  // the LP, which stretches tasks into their slack) leaves ranks genuinely
  // idle at collectives.
  {
    runtime::StaticPolicy st(bench::model(), socket);
    sim::EngineOptions task_pow = ro.engine;
    const sim::SimResult a = sim::simulate(g, st, task_pow);
    runtime::StaticPolicy st2(bench::model(), socket);
    sim::EngineOptions idle_pow = ro.engine;
    idle_pow.slack_power = sim::SlackPower::kIdle;
    const sim::SimResult b = sim::simulate(g, st2, idle_pow);
    util::Table t4({"slack_power (Static run)", "energy_kJ", "avg_power_w",
                    "peak_w"});
    t4.add_row({"task power (paper Sec 3.3)",
                bench::fmt(a.energy_joules / 1e3, 2),
                bench::fmt(a.average_power, 1), bench::fmt(a.peak_power, 1)});
    t4.add_row({"idle power", bench::fmt(b.energy_joules / 1e3, 2),
                bench::fmt(b.average_power, 1), bench::fmt(b.peak_power, 1)});
    bench::emit(t4, args);
    std::printf("(the task-power assumption is conservative: real slack "
                "draws less, so the\nLP's power accounting upper-bounds the "
                "machine's)\n");
  }
  return 0;
}
