// Google-benchmark microbenchmarks for the substrates themselves: simplex
// solve throughput, windowed LP end-to-end, discrete-event engine
// throughput, and frontier construction. These are not paper figures; they
// document the cost profile of the toolchain.
#include <benchmark/benchmark.h>

#include "apps/benchmarks.h"
#include "apps/exchange.h"
#include "core/flow_ilp.h"
#include "core/lp_formulation.h"
#include "core/pareto.h"
#include "core/windowed.h"
#include "lp/simplex.h"
#include "machine/power_model.h"
#include "runtime/static_policy.h"
#include "sim/engine.h"
#include "util/rng.h"

namespace {

using namespace powerlim;

const machine::PowerModel& model() {
  static const machine::PowerModel m{machine::SocketSpec{}};
  return m;
}

void BM_SimplexRandomDense(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(42);
  lp::Model m(lp::Sense::kMinimize);
  std::vector<lp::Variable> vars;
  for (int j = 0; j < n; ++j) {
    vars.push_back(m.add_variable(0, 10, rng.uniform(-1, 1)));
  }
  for (int i = 0; i < n; ++i) {
    std::vector<lp::Term> terms;
    for (int j = 0; j < n; ++j) {
      if (rng.uniform(0, 1) < 0.3) terms.push_back({vars[j], rng.uniform(-2, 2)});
    }
    if (!terms.empty()) m.add_le(terms, rng.uniform(1, 10));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(lp::solve_lp(m));
  }
}
BENCHMARK(BM_SimplexRandomDense)->Arg(20)->Arg(60)->Arg(150);

void BM_LpFormulationSingleWindow(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const dag::TaskGraph g = apps::make_comd({.ranks = ranks, .iterations = 1});
  const machine::ClusterSpec cluster;
  const core::LpFormulation form(g, model(), cluster);
  for (auto _ : state) {
    benchmark::DoNotOptimize(form.solve({.power_cap = ranks * 45.0}));
  }
}
BENCHMARK(BM_LpFormulationSingleWindow)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_WindowedLpLulesh(benchmark::State& state) {
  const int iters = static_cast<int>(state.range(0));
  const dag::TaskGraph g = apps::make_lulesh({.ranks = 8, .iterations = iters});
  const machine::ClusterSpec cluster;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::solve_windowed_lp(g, model(), cluster, {.power_cap = 8 * 50.0}));
  }
}
BENCHMARK(BM_WindowedLpLulesh)->Arg(2)->Arg(8);

void BM_EngineStaticLulesh(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const dag::TaskGraph g = apps::make_lulesh({.ranks = ranks, .iterations = 10});
  sim::EngineOptions eo;
  eo.idle_power = model().idle_power();
  for (auto _ : state) {
    runtime::StaticPolicy policy(model(), 50.0);
    benchmark::DoNotOptimize(sim::simulate(g, policy, eo));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(g.num_edges()));
}
BENCHMARK(BM_EngineStaticLulesh)->Arg(8)->Arg(32);

void BM_FlowIlpExchange(benchmark::State& state) {
  const dag::TaskGraph g = apps::two_rank_exchange();
  const machine::ClusterSpec cluster;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_flow_ilp(
        g, model(), cluster, {.power_cap = 100.0}));
  }
}
BENCHMARK(BM_FlowIlpExchange);

void BM_TraceGeneration(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        apps::make_lulesh({.ranks = ranks, .iterations = 10}));
  }
}
BENCHMARK(BM_TraceGeneration)->Arg(8)->Arg(32);

void BM_ConvexFrontier(benchmark::State& state) {
  machine::TaskWork w;
  w.cpu_seconds = 5.0;
  w.mem_seconds = 1.0;
  const auto configs = model().enumerate(w);
  for (auto _ : state) {
    auto copy = configs;
    benchmark::DoNotOptimize(core::convex_frontier(std::move(copy)));
  }
}
BENCHMARK(BM_ConvexFrontier);

}  // namespace

BENCHMARK_MAIN();
