// Google-benchmark microbenchmarks for the substrates themselves: simplex
// solve throughput (dense and sparse basis backends side by side, with a
// per-pivot FTRAN/BTRAN/pricing/ratio time breakdown), windowed LP
// end-to-end, discrete-event engine throughput, and frontier
// construction. These are not paper figures; they document the cost
// profile of the toolchain. CI archives the JSON form of this output as
// BENCH_perf_micro.json on every push (--benchmark_out).
#include <benchmark/benchmark.h>

#include <algorithm>

#include "apps/benchmarks.h"
#include "apps/exchange.h"
#include "core/flow_ilp.h"
#include "core/lp_formulation.h"
#include "core/pareto.h"
#include "core/windowed.h"
#include "lp/simplex.h"
#include "machine/power_model.h"
#include "runtime/static_policy.h"
#include "sim/engine.h"
#include "util/rng.h"

namespace {

using namespace powerlim;

const machine::PowerModel& model() {
  static const machine::PowerModel m{machine::SocketSpec{}};
  return m;
}

/// Shared solve loop for the backend benchmarks: solves `m` repeatedly on
/// `backend` with per-bucket timing enabled, then reports simplex
/// iterations/sec plus the per-pivot cost of each phase of a pivot
/// (FTRAN, BTRAN, pricing, ratio test, eta/inverse update, refactor).
/// The buckets come from SimplexStats::*_ns (collect_timing), so the
/// breakdown is the solver's own accounting, not an external profile.
void solve_backend_loop(benchmark::State& state, const lp::Model& m,
                        lp::BasisBackend backend) {
  lp::SimplexOptions opt;
  opt.basis_backend = backend;
  opt.collect_timing = true;
  long iters = 0;
  lp::SimplexStats acc;
  for (auto _ : state) {
    const lp::Solution sol = lp::solve_lp(m, opt);
    benchmark::DoNotOptimize(sol.objective);
    if (!sol.optimal()) state.SkipWithError("solve not optimal");
    iters += sol.stats.iterations;
    acc.ftran_ns += sol.stats.ftran_ns;
    acc.btran_ns += sol.stats.btran_ns;
    acc.pricing_ns += sol.stats.pricing_ns;
    acc.ratio_ns += sol.stats.ratio_ns;
    acc.update_ns += sol.stats.update_ns;
    acc.factor_ns += sol.stats.factor_ns;
    acc.eta_nonzeros = std::max(acc.eta_nonzeros, sol.stats.eta_nonzeros);
    acc.lu_fill_ratio = std::max(acc.lu_fill_ratio, sol.stats.lu_fill_ratio);
  }
  const double piv = iters > 0 ? static_cast<double>(iters) : 1.0;
  state.counters["iters_per_sec"] = benchmark::Counter(
      static_cast<double>(iters), benchmark::Counter::kIsRate);
  state.counters["ftran_ns_per_pivot"] = acc.ftran_ns / piv;
  state.counters["btran_ns_per_pivot"] = acc.btran_ns / piv;
  state.counters["pricing_ns_per_pivot"] = acc.pricing_ns / piv;
  state.counters["ratio_ns_per_pivot"] = acc.ratio_ns / piv;
  state.counters["update_ns_per_pivot"] = acc.update_ns / piv;
  state.counters["factor_ns_per_pivot"] = acc.factor_ns / piv;
  state.counters["peak_eta_nonzeros"] =
      static_cast<double>(acc.eta_nonzeros);
  state.counters["lu_fill_ratio"] = acc.lu_fill_ratio;
  state.counters["rows"] = static_cast<double>(m.num_constraints());
  state.counters["cols"] = static_cast<double>(m.num_variables());
}

/// Paper-scale LPs: one barrier window of the CoMD trace at the given
/// rank count, solved through the same lp::Model the production windowed
/// pipeline builds. Arg 0 = ranks, arg 1 = backend (0 dense, 1 sparse);
/// CI diffs the dense and sparse rows of this benchmark side by side.
void BM_SimplexPaperWindow(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const lp::BasisBackend backend = state.range(1) != 0
                                       ? lp::BasisBackend::kSparse
                                       : lp::BasisBackend::kDense;
  const dag::TaskGraph g = apps::make_comd({.ranks = ranks, .iterations = 1});
  const machine::ClusterSpec cluster;
  const core::LpFormulation form(g, model(), cluster);
  const core::BuiltModel built =
      form.build_model({.power_cap = ranks * 45.0});
  solve_backend_loop(state, built.model, backend);
}
BENCHMARK(BM_SimplexPaperWindow)
    ->ArgNames({"ranks", "sparse"})
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({32, 0})
    ->Args({32, 1})
    ->Args({64, 0})
    ->Args({64, 1});

/// Paper-scale whole-trace LP: the full CoMD run formulated as ONE LP,
/// no barrier decomposition — the problem size the paper's Section 5
/// scaling discussion is about, and the case the sparse backend was
/// built for (the windowed path keeps each window small; the whole-trace
/// LP grows with iterations and is where dense O(m^2) pivots drown).
void BM_SimplexWholeTrace(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const lp::BasisBackend backend = state.range(1) != 0
                                       ? lp::BasisBackend::kSparse
                                       : lp::BasisBackend::kDense;
  const dag::TaskGraph g =
      apps::make_comd({.ranks = ranks, .iterations = 12});
  const machine::ClusterSpec cluster;
  const core::LpFormulation form(g, model(), cluster);
  const core::BuiltModel built =
      form.build_model({.power_cap = ranks * 45.0});
  solve_backend_loop(state, built.model, backend);
}
BENCHMARK(BM_SimplexWholeTrace)
    ->ArgNames({"ranks", "sparse"})
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({32, 0})
    ->Args({32, 1})
    ->Unit(benchmark::kMillisecond);

/// Banded synthetic LP: bandwidth-4 >= rows over box variables. This is
/// the sparse backend's best case (near-fill-free LU, O(band) FTRANs)
/// and the dense backend's worst (every pivot still touches the full
/// m^2 inverse), so the dense/sparse gap here is the headline speedup
/// the sparse rewrite exists to deliver. Sizes stay below
/// lp::kDenseBackendMaxRows so the dense rows are genuinely dense.
lp::Model banded_model(int m) {
  util::Rng rng(7);
  lp::Model mod(lp::Sense::kMinimize);
  std::vector<lp::Variable> x;
  x.reserve(static_cast<std::size_t>(m));
  for (int j = 0; j < m; ++j) {
    x.push_back(mod.add_variable(0.0, 10.0, rng.uniform(0.5, 1.5)));
  }
  for (int i = 0; i < m; ++i) {
    std::vector<lp::Term> terms;
    for (int k = 0; k < 4 && i + k < m; ++k) {
      terms.push_back({x[i + k], k == 0 ? 1.0 : rng.uniform(0.1, 0.5)});
    }
    mod.add_ge(terms, rng.uniform(1.0, 2.0));
  }
  return mod;
}

void BM_SimplexBandedSynthetic(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const lp::BasisBackend backend = state.range(1) != 0
                                       ? lp::BasisBackend::kSparse
                                       : lp::BasisBackend::kDense;
  const lp::Model m = banded_model(rows);
  solve_backend_loop(state, m, backend);
}
BENCHMARK(BM_SimplexBandedSynthetic)
    ->ArgNames({"rows", "sparse"})
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({512, 0})
    ->Args({512, 1})
    ->Args({1536, 0})
    ->Args({1536, 1})
    ->Unit(benchmark::kMillisecond);

void BM_LpFormulationSingleWindow(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const dag::TaskGraph g = apps::make_comd({.ranks = ranks, .iterations = 1});
  const machine::ClusterSpec cluster;
  const core::LpFormulation form(g, model(), cluster);
  for (auto _ : state) {
    benchmark::DoNotOptimize(form.solve({.power_cap = ranks * 45.0}));
  }
}
BENCHMARK(BM_LpFormulationSingleWindow)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_WindowedLpLulesh(benchmark::State& state) {
  const int iters = static_cast<int>(state.range(0));
  const dag::TaskGraph g = apps::make_lulesh({.ranks = 8, .iterations = iters});
  const machine::ClusterSpec cluster;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::solve_windowed_lp(g, model(), cluster, {.power_cap = 8 * 50.0}));
  }
}
BENCHMARK(BM_WindowedLpLulesh)->Arg(2)->Arg(8);

void BM_EngineStaticLulesh(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const dag::TaskGraph g = apps::make_lulesh({.ranks = ranks, .iterations = 10});
  sim::EngineOptions eo;
  eo.idle_power = model().idle_power();
  for (auto _ : state) {
    runtime::StaticPolicy policy(model(), 50.0);
    benchmark::DoNotOptimize(sim::simulate(g, policy, eo));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(g.num_edges()));
}
BENCHMARK(BM_EngineStaticLulesh)->Arg(8)->Arg(32);

void BM_FlowIlpExchange(benchmark::State& state) {
  const dag::TaskGraph g = apps::two_rank_exchange();
  const machine::ClusterSpec cluster;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_flow_ilp(
        g, model(), cluster, {.power_cap = 100.0}));
  }
}
BENCHMARK(BM_FlowIlpExchange);

void BM_TraceGeneration(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        apps::make_lulesh({.ranks = ranks, .iterations = 10}));
  }
}
BENCHMARK(BM_TraceGeneration)->Arg(8)->Arg(32);

void BM_ConvexFrontier(benchmark::State& state) {
  machine::TaskWork w;
  w.cpu_seconds = 5.0;
  w.mem_seconds = 1.0;
  const auto configs = model().enumerate(w);
  for (auto _ : state) {
    auto copy = configs;
    benchmark::DoNotOptimize(core::convex_frontier(std::move(copy)));
  }
}
BENCHMARK(BM_ConvexFrontier);

}  // namespace

BENCHMARK_MAIN();
