// Section 6.2: overhead accounting.
//
// Paper numbers: 34 us median profiler cost per instrumented MPI call
// (< 0.05% of run time); 145 us median per-task DVFS transition during
// schedule replay; 566 us per power-reallocation decision, amortized over
// 5-10 Pcontrol windows. This bench reproduces the *accounting*: it
// measures what those charges amount to on a replayed LP schedule and a
// Conductor run of LULESH.
#include <cstdio>
#include <vector>

#include "apps/benchmarks.h"
#include "bench/common.h"
#include "core/windowed.h"
#include "runtime/conductor.h"
#include "sim/replay.h"
#include "util/stats.h"

using namespace powerlim;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  const double socket = 50.0;
  const dag::TaskGraph g = apps::make_lulesh(
      {.ranks = args.ranks, .iterations = args.iterations});
  const double job_cap = socket * args.ranks;

  std::printf("== Section 6.2: overhead accounting ==\n\n");

  // Profiling: one instrumented record per MPI call (= per DAG vertex
  // touch per rank). The tracer costs 34 us per call.
  std::size_t mpi_calls = 0;
  for (const dag::Vertex& v : g.vertices()) {
    mpi_calls += v.rank == -1 ? static_cast<std::size_t>(g.num_ranks()) : 1;
  }

  sim::EngineOptions eo;
  eo.cluster = bench::cluster();
  eo.idle_power = bench::model().idle_power();

  const auto lp = core::solve_windowed_lp(g, bench::model(), bench::cluster(),
                                          {.power_cap = job_cap});
  if (!lp.optimal()) {
    std::printf("LP infeasible\n");
    return 1;
  }
  sim::ReplayOptions ro;
  ro.engine = eo;
  const sim::SimResult with = sim::replay_schedule(g, lp.schedule,
                                                   lp.frontiers, ro,
                                                   &lp.vertex_time);
  ro.charge_dvfs_overhead = false;
  const sim::SimResult without = sim::replay_schedule(g, lp.schedule,
                                                      lp.frontiers, ro,
                                                      &lp.vertex_time);

  std::vector<double> per_task;
  int switched = 0, tasks = 0;
  for (const auto& t : with.tasks) {
    if (t.edge_id < 0) continue;
    ++tasks;
    per_task.push_back(t.switch_overhead);
    if (t.switch_overhead > 0) ++switched;
  }

  const double profiling_s =
      static_cast<double>(mpi_calls) *
      machine::Overheads::kProfilingPerMpiCall / g.num_ranks();

  util::Table t({"overhead", "value"});
  t.add_row({"instrumented MPI calls (per rank avg)",
             bench::fmt(static_cast<double>(mpi_calls) / g.num_ranks(), 0)});
  t.add_row({"profiling cost per rank (s)", bench::fmt(profiling_s, 4)});
  t.add_row({"profiling share of run time",
             util::Table::pct(profiling_s / with.makespan, 3)});
  t.add_row({"replay: tasks charged a DVFS transition",
             std::to_string(switched) + "/" + std::to_string(tasks)});
  t.add_row({"replay: mean switch overhead per task (us)",
             bench::fmt(util::mean(per_task) * 1e6, 1)});
  t.add_row({"replay: makespan with overheads (s)",
             bench::fmt(with.makespan, 4)});
  t.add_row({"replay: makespan without overheads (s)",
             bench::fmt(without.makespan, 4)});
  t.add_row({"replay: total overhead share",
             util::Table::pct(
                 (with.makespan - without.makespan) / without.makespan, 3)});

  // Conductor reallocation cost: run with and without the 566 us charge on
  // a collective-only trace (CoMD) with the adaptive knobs frozen, so the
  // two runs differ only by the charge. (Adaptive decisions depend on
  // observed slack, which the charge itself perturbs; freezing makes the
  // differencing exact.)
  const dag::TaskGraph comd = apps::make_comd(
      {.ranks = args.ranks, .iterations = args.iterations});
  runtime::ConductorOptions copt;
  copt.donation_rate = 0.0;
  copt.slack_safety = 0.0;
  copt.realloc_period = 1;
  runtime::ConductorPolicy cwith(bench::model(), args.ranks, job_cap, copt);
  const double t_with = sim::simulate(comd, cwith, eo).makespan;
  copt.realloc_overhead_s = 0.0;
  runtime::ConductorPolicy cwithout(bench::model(), args.ranks, job_cap,
                                    copt);
  const double t_without = sim::simulate(comd, cwithout, eo).makespan;
  const int reallocs = args.iterations - 4;
  t.add_row({"conductor: reallocation decisions", std::to_string(reallocs)});
  t.add_row({"conductor: cost per decision (us)",
             bench::fmt((t_with - t_without) / reallocs * 1e6, 1)});
  bench::emit(t, args);

  std::printf("\npaper reference: 34 us/MPI call (<0.05%% of time), "
              "145 us median DVFS transition, 566 us per reallocation\n");
  return 0;
}
