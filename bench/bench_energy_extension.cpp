// Extension: energy-bounded scheduling (Rountree et al., SC'07 - the
// paper's most-related prior work, Section 7) implemented over the same
// pipeline: minimize execution energy subject to finishing within
// (1 + allowance) of the unconstrained optimum, per barrier window.
//
// Expected shape (from that literature): slack alone funds real savings
// at zero allowance on imbalanced apps (the classic "free" energy), and
// savings grow quickly with the first few percent of allowance before
// flattening - the energy-delay knee.
#include <cstdio>

#include "apps/benchmarks.h"
#include "bench/common.h"
#include "core/windowed.h"

using namespace powerlim;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);

  struct App {
    const char* name;
    dag::TaskGraph graph;
  };
  std::vector<App> grid;
  grid.push_back(
      {"BT", apps::make_bt({.ranks = args.ranks, .iterations = args.iterations})});
  grid.push_back({"CoMD", apps::make_comd({.ranks = args.ranks,
                                           .iterations = args.iterations})});
  grid.push_back({"SP", apps::make_sp({.ranks = args.ranks,
                                       .iterations = args.iterations})});

  std::printf("== Extension: minimum energy vs. allowed slowdown ==\n\n");
  for (const App& app : grid) {
    const auto fast = core::solve_windowed_lp(
        app.graph, bench::model(), bench::cluster(),
        {.power_cap = lp::kInfinity});
    if (!fast.optimal()) continue;
    std::printf("-- %s (makespan-optimal: %.2f s, %.2f kJ) --\n", app.name,
                fast.makespan, fast.energy_joules / 1e3);
    util::Table t({"allowance", "time_s", "energy_kJ", "energy_saved"});
    for (double a : {0.0, 0.01, 0.02, 0.05, 0.10, 0.20, 0.50}) {
      const auto res = core::solve_windowed_energy_lp(
          app.graph, bench::model(), bench::cluster(), a);
      if (!res.optimal()) continue;
      t.add_row({util::Table::pct(a, 0), bench::fmt(res.makespan, 2),
                 bench::fmt(res.energy_joules / 1e3, 2),
                 util::Table::pct(
                     1.0 - res.energy_joules / fast.energy_joules, 1)});
    }
    bench::emit(t, args);
    std::printf("\n");
  }
  std::printf("shape: imbalanced apps (BT) save energy even at 0%% "
              "allowance (slack-funded);\nbalanced apps (SP) need real "
              "slowdown to save anything.\n");
  return 0;
}
