// Extension: machine-level power partitioning across concurrent jobs.
//
// The paper's setting (Section 1) is a machine whose total power is
// "divided across multiple simultaneous jobs". This bench closes the loop
// the paper defers to resource-manager work: profile three jobs with the
// LP, then split the machine budget min-max optimally and compare against
// the naive equal split.
//
// Expected shape: the optimizer starves jobs past their saturation point
// and feeds power-hungry jobs, beating equal split by a growing margin as
// the machine budget tightens.
#include <cstdio>

#include "apps/benchmarks.h"
#include "bench/common.h"
#include "core/partition.h"

using namespace powerlim;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const int r = args.ranks;

  struct Job {
    const char* name;
    dag::TaskGraph graph;
  };
  std::vector<Job> jobs;
  jobs.push_back(
      {"BT", apps::make_bt({.ranks = r, .iterations = args.iterations})});
  jobs.push_back(
      {"CoMD", apps::make_comd({.ranks = r, .iterations = args.iterations})});
  jobs.push_back(
      {"SP", apps::make_sp({.ranks = r, .iterations = args.iterations})});

  // Profile each job over a cap sweep.
  std::vector<double> sweep;
  for (double w = 24.0; w <= 90.0; w += 6.0) sweep.push_back(w * r);
  std::vector<core::PowerProfile> profiles;
  for (const Job& j : jobs) {
    profiles.push_back(
        core::profile_job(j.graph, bench::model(), bench::cluster(), sweep));
    std::printf("%s profile: %.0f W -> %.1f s ... %.0f W -> %.1f s\n",
                j.name, profiles.back().points().front().cap_watts,
                profiles.back().points().front().seconds,
                profiles.back().points().back().cap_watts,
                profiles.back().points().back().seconds);
  }
  std::printf("\n");

  util::Table t({"machine_w", "equal_split_s", "optimized_s", "gain",
                 "BT_w", "CoMD_w", "SP_w"});
  for (double machine : {3.0 * r * 30.0, 3.0 * r * 40.0, 3.0 * r * 55.0,
                         3.0 * r * 75.0}) {
    const auto opt = core::partition_power(profiles, machine);
    double naive = 0.0;
    for (const auto& p : profiles) {
      naive = std::max(naive, p.time_at(machine / 3.0));
    }
    if (!opt.feasible) {
      t.add_row({bench::fmt(machine, 0), bench::fmt(naive, 1), "n/s", "-",
                 "-", "-", "-"});
      continue;
    }
    t.add_row({bench::fmt(machine, 0), bench::fmt(naive, 1),
               bench::fmt(opt.makespan, 1),
               util::Table::pct(naive / opt.makespan - 1.0, 1),
               bench::fmt(opt.caps[0], 0), bench::fmt(opt.caps[1], 0),
               bench::fmt(opt.caps[2], 0)});
  }
  bench::emit(t, args);
  return 0;
}
