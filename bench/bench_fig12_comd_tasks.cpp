// Figure 12: task duration vs. power for long-running tasks of CoMD under
// an average per-socket constraint of 30 W - LP schedule vs. Static.
//
// Paper shape: Static pins every socket at the 30 W limit, which throttles
// DVFS and pushes task durations to 1.3-1.47s; the LP allocates power
// non-uniformly (many tasks above 30 W, up to 36 W) and keeps the longest
// task near 1.2s without violating the *job-level* constraint. Absolute
// durations differ on the simulated machine; the relationships are the
// reproduction target.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/benchmarks.h"
#include "bench/common.h"
#include "core/windowed.h"
#include "runtime/static_policy.h"
#include "sim/replay.h"
#include "util/stats.h"

using namespace powerlim;

namespace {

struct TaskPoint {
  double power;
  double duration;
};

std::vector<TaskPoint> long_tasks(const dag::TaskGraph& g,
                                  const sim::SimResult& res,
                                  double min_duration) {
  std::vector<TaskPoint> out;
  for (const dag::Edge& e : g.edges()) {
    if (!e.is_task() || e.iteration < 3) continue;
    const sim::TaskRecord& t = res.tasks[e.id];
    if (t.duration() >= min_duration) {
      out.push_back({t.power, t.duration()});
    }
  }
  return out;
}

void summarize(const char* name, const std::vector<TaskPoint>& pts,
               const bench::BenchArgs& args) {
  std::vector<double> p, d;
  for (const TaskPoint& t : pts) {
    p.push_back(t.power);
    d.push_back(t.duration);
  }
  const util::Summary sp = util::summarize(p);
  const util::Summary sd = util::summarize(d);
  util::Table t({"method", "tasks", "dur_min", "dur_median", "dur_max",
                 "pow_min", "pow_median", "pow_max"});
  t.add_row({name, std::to_string(pts.size()), bench::fmt(sd.min, 3),
             bench::fmt(sd.median, 3), bench::fmt(sd.max, 3),
             bench::fmt(sp.min, 1), bench::fmt(sp.median, 1),
             bench::fmt(sp.max, 1)});
  bench::emit(t, args);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  if (args.iterations < 20) args.iterations = 30;  // scatter needs samples
  const double socket = 30.0;
  const dag::TaskGraph g =
      apps::make_comd({.ranks = args.ranks, .iterations = args.iterations});
  const double job_cap = socket * args.ranks;

  std::printf("== Figure 12: CoMD long-task duration vs. power @ %.0f W/socket ==\n\n",
              socket);

  // Static.
  sim::EngineOptions eo;
  eo.cluster = bench::cluster();
  eo.idle_power = bench::model().idle_power();
  runtime::StaticPolicy st(bench::model(), socket);
  const sim::SimResult rs = sim::simulate(g, st, eo);

  // LP, replayed.
  const auto lp = core::solve_windowed_lp(g, bench::model(), bench::cluster(),
                                          {.power_cap = job_cap});
  if (!lp.optimal()) {
    std::printf("LP infeasible at this constraint\n");
    return 1;
  }
  sim::ReplayOptions ro;
  ro.engine = eo;
  const sim::SimResult rl =
      sim::replay_schedule(g, lp.schedule, lp.frontiers, ro, &lp.vertex_time);

  // Long-running = at least half the median Static task.
  std::vector<double> all_static;
  for (const dag::Edge& e : g.edges()) {
    if (e.is_task()) all_static.push_back(rs.tasks[e.id].duration());
  }
  const double threshold = 0.5 * util::median(all_static);

  const auto pts_static = long_tasks(g, rs, threshold);
  const auto pts_lp = long_tasks(g, rl, threshold);
  summarize("Static", pts_static, args);
  std::printf("\n");
  summarize("LP", pts_lp, args);

  // Scatter sample (every Nth point) for plotting.
  std::printf("\nscatter sample (power_w, duration_s):\n");
  util::Table sc({"method", "power_w", "duration_s"});
  const std::size_t stride = std::max<std::size_t>(1, pts_lp.size() / 40);
  for (std::size_t i = 0; i < pts_lp.size(); i += stride) {
    sc.add_row({"LP", bench::fmt(pts_lp[i].power, 2),
                bench::fmt(pts_lp[i].duration, 3)});
  }
  for (std::size_t i = 0; i < pts_static.size(); i += stride) {
    sc.add_row({"Static", bench::fmt(pts_static[i].power, 2),
                bench::fmt(pts_static[i].duration, 3)});
  }
  bench::emit(sc, args);

  // Paper-shape checks.
  double lp_over_limit = 0;
  for (const TaskPoint& t : pts_lp) {
    if (t.power > socket + 0.5) ++lp_over_limit;
  }
  double static_max_power = 0, lp_max_dur = 0, static_max_dur = 0;
  for (const TaskPoint& t : pts_static) {
    static_max_power = std::max(static_max_power, t.power);
    static_max_dur = std::max(static_max_dur, t.duration);
  }
  for (const TaskPoint& t : pts_lp) lp_max_dur = std::max(lp_max_dur, t.duration);
  std::printf("\nLP tasks above the %.0f W per-socket limit: %.0f%% "
              "(job-level cap still respected: peak %.1f W <= %.1f W)\n",
              socket, 100.0 * lp_over_limit / pts_lp.size(), rl.peak_power,
              job_cap + 1e-9);
  std::printf("Static never exceeds the socket limit: %s (max %.2f W)\n",
              static_max_power <= socket + 1e-6 ? "yes" : "NO",
              static_max_power);
  std::printf("LP longest task %.3f s vs Static longest %.3f s\n", lp_max_dur,
              static_max_dur);
  return 0;
}
